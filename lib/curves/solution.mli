(** A point of a three-dimensional solution curve: required time and load
    versus total buffer area (paper Fig. 8), carrying the partial structure
    it stands for.

    The load and required-time dimensions are what make the principle of
    dynamic programming valid for the problem; the area dimension is what
    lets the user trade area against speed (Section I). *)

type 'a t = {
  req : float;   (** required time at the solution's root, ps — larger is better *)
  load : float;  (** capacitance at the root, fF — smaller is better *)
  area : float;  (** total buffer area, 1000 lambda^2 — smaller is better *)
  data : 'a;     (** the structure (or provenance) this point stands for *)
}

val make : req:float -> load:float -> area:float -> 'a -> 'a t

(** [dominates s1 s2] — Definition 6: [s2] is inferior to [s1] iff
    load(s1) <= load(s2), req(s2) <= req(s1) and area(s1) <= area(s2).
    A solution dominates itself. *)
val dominates : 'a t -> 'a t -> bool

(** Total order used for deterministic curve layout: decreasing required
    time, then increasing load, then increasing area. *)
val compare_key : 'a t -> 'a t -> int

val map : ('a -> 'b) -> 'a t -> 'b t

(** [quantise ~req_grid ~load_grid ~area_grid s] buckets the coordinates
    pessimistically: required time rounded down, load and area up.  A grid
    of 0 leaves that dimension untouched. *)
val quantise :
  req_grid:float -> load_grid:float -> area_grid:float -> 'a t -> 'a t

(** Scalar bucketing used by {!quantise}: [grid_down] rounds down to a
    multiple of the grid (required time), [grid_up] rounds up (load,
    area); a grid of 0 is the identity.  Exposed so the batch curve
    kernel quantises coordinates with bit-identical arithmetic. *)
val grid_down : float -> float -> float

val grid_up : float -> float -> float

val pp : Format.formatter -> 'a t -> unit
