type 'a t = { req : float; load : float; area : float; data : 'a }

let make ~req ~load ~area data = { req; load; area; data }

let dominates s1 s2 =
  s1.load <= s2.load && s2.req <= s1.req && s1.area <= s2.area

let compare_key s1 s2 =
  let c = Float.compare s2.req s1.req in
  if c <> 0 then c
  else
    let c = Float.compare s1.load s2.load in
    if c <> 0 then c else Float.compare s1.area s2.area

let map f s = { req = s.req; load = s.load; area = s.area; data = f s.data }

(* Scalar bucketing helpers, shared with the batch curve kernel so a
   coordinate quantised during a builder sweep is bit-identical to one
   quantised through [quantise]. *)
let[@inline] grid_down grid v = if grid = 0.0 then v else floor (v /. grid) *. grid

let[@inline] grid_up grid v = if grid = 0.0 then v else ceil (v /. grid) *. grid

let quantise ~req_grid ~load_grid ~area_grid s =
  { s with
    req = grid_down req_grid s.req;
    load = grid_up load_grid s.load;
    area = grid_up area_grid s.area }

let pp ppf s =
  Format.fprintf ppf "(req=%.1f load=%.2f area=%.2f)" s.req s.load s.area
