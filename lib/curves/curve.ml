(* Array-backed frontier kernel.

   A curve is a sorted (Solution.compare_key), pairwise non-dominated
   array of solutions.  The empty curve is its own constructor so the
   polymorphic [empty] constant generalises (a bare [|]|] would be
   weakly typed under the value restriction); every non-empty curve
   carries a non-empty array.

   The batch path is [Builder]: candidates accumulate into
   structure-of-arrays floatarray storage (req/load/area) plus a data
   array, and [Builder.build] prunes the whole bag at once with one
   stable sort and one staircase sweep.  The sweep exploits the key
   order (req descending, then load, then area ascending): a processed
   point can only be dominated by an earlier one, and a kept point is
   never invalidated later, so maintaining the 2-D (load, area) minima
   staircase of the kept points answers every dominance query with a
   binary search.  Cost: O(P log P) for the sort plus O(log F) per
   query and O(F) per staircase insertion (F = frontier size, F << P
   in the DP hot paths), versus O(P·F) list rebuilding for P repeated
   [add]s. *)

type 'a t =
  | Empty
  | F of 'a Solution.t array

let empty = Empty

let is_empty = function Empty -> true | F _ -> false

let size = function Empty -> 0 | F arr -> Array.length arr

let to_array = function Empty -> [||] | F arr -> arr

let to_list c = Array.to_list (to_array c)

let strictly_dominates a b =
  Solution.dominates a b && Solution.compare_key a b <> 0

module Builder = struct
  type 'a b = {
    mutable req : floatarray;
    mutable load : floatarray;
    mutable area : floatarray;
    mutable data : 'a array; (* empty until the first push, then >= len *)
    mutable len : int;
  }

  let create ?(hint = 16) () =
    let hint = max 4 hint in
    { req = Float.Array.create hint;
      load = Float.Array.create hint;
      area = Float.Array.create hint;
      data = [||];
      len = 0 }

  let length b = b.len

  let clear b = b.len <- 0

  (* Ensure room for one more element; [elt] seeds the data array (an
     'a array cannot grow without a fill element). *)
  let reserve b elt =
    let cap = Float.Array.length b.req in
    if b.len = cap then begin
      let ncap = 2 * cap in
      let grow a =
        let n = Float.Array.create ncap in
        Float.Array.blit a 0 n 0 b.len;
        n
      in
      b.req <- grow b.req;
      b.load <- grow b.load;
      b.area <- grow b.area
    end;
    let cap = Float.Array.length b.req in
    if Array.length b.data < cap then begin
      let nd = Array.make cap elt in
      Array.blit b.data 0 nd 0 b.len;
      b.data <- nd
    end

  let push b ~req ~load ~area data =
    reserve b data;
    Float.Array.set b.req b.len req;
    Float.Array.set b.load b.len load;
    Float.Array.set b.area b.len area;
    b.data.(b.len) <- data;
    b.len <- b.len + 1

  let add b (s : 'a Solution.t) =
    push b ~req:s.Solution.req ~load:s.Solution.load ~area:s.Solution.area
      s.Solution.data

  let add_curve b c =
    match c with Empty -> () | F arr -> Array.iter (add b) arr

  (* One stable sort + one staircase sweep over the accumulated bag.
     Ties (equal keys) keep the earliest push, matching the incremental
     [add]'s first-wins behaviour, which is why the sort must be
     stable.  [grids] quantises every coordinate before the sweep (the
     per-candidate quantisation of the DP cores, fused into the batch
     pass). *)
  let build ?(name = "Curve.Builder.build") ?(grids = (0.0, 0.0, 0.0)) b =
    let n = b.len in
    if n = 0 then Empty
    else begin
      let req_grid, load_grid, area_grid = grids in
      let quantised =
        req_grid <> 0.0 || load_grid <> 0.0 || area_grid <> 0.0
      in
      let qreq, qload, qarea =
        if not quantised then (b.req, b.load, b.area)
        else begin
          let qr = Float.Array.create n
          and ql = Float.Array.create n
          and qa = Float.Array.create n in
          for i = 0 to n - 1 do
            Float.Array.set qr i
              (Solution.grid_down req_grid (Float.Array.get b.req i));
            Float.Array.set ql i
              (Solution.grid_up load_grid (Float.Array.get b.load i));
            Float.Array.set qa i
              (Solution.grid_up area_grid (Float.Array.get b.area i))
          done;
          (qr, ql, qa)
        end
      in
      let idx = Array.init n (fun i -> i) in
      Array.stable_sort
        (fun i j ->
           let c =
             Float.compare (Float.Array.get qreq j) (Float.Array.get qreq i)
           in
           if c <> 0 then c
           else
             let c =
               Float.compare (Float.Array.get qload i)
                 (Float.Array.get qload j)
             in
             if c <> 0 then c
             else
               Float.compare (Float.Array.get qarea i)
                 (Float.Array.get qarea j))
        idx;
      (* Staircase of the kept points' (load, area) minima: load strictly
         increasing, area strictly decreasing. *)
      let st_load = Float.Array.create n in
      let st_area = Float.Array.create n in
      let st_len = ref 0 in
      let keep = Array.make n 0 in
      let nkeep = ref 0 in
      for t = 0 to n - 1 do
        let i = idx.(t) in
        let l = Float.Array.get qload i and a = Float.Array.get qarea i in
        (* Rightmost staircase entry with load <= l (all kept points have
           req >= this one's, so load/area decide dominance). *)
        let p =
          let lo = ref 0 and hi = ref !st_len in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if Float.Array.get st_load mid <= l then lo := mid + 1
            else hi := mid
          done;
          !lo - 1
        in
        let dominated = p >= 0 && Float.Array.get st_area p <= a in
        if not dominated then begin
          keep.(!nkeep) <- i;
          incr nkeep;
          (* Insert (l, a): entries with load >= l and area >= a are now
             redundant; areas decrease rightward so they form a run. *)
          let q =
            if p >= 0 && Float.Array.get st_load p = l then p else p + 1
          in
          let r = ref q in
          while !r < !st_len && Float.Array.get st_area !r >= a do incr r done;
          let removed = !r - q in
          if removed = 0 then begin
            Float.Array.blit st_load q st_load (q + 1) (!st_len - q);
            Float.Array.blit st_area q st_area (q + 1) (!st_len - q);
            incr st_len
          end
          else if removed > 1 then begin
            Float.Array.blit st_load !r st_load (q + 1) (!st_len - !r);
            Float.Array.blit st_area !r st_area (q + 1) (!st_len - !r);
            st_len := !st_len - removed + 1
          end;
          Float.Array.set st_load q l;
          Float.Array.set st_area q a
        end
      done;
      let out =
        Array.init !nkeep (fun t ->
            let i = keep.(t) in
            Solution.make
              ~req:(Float.Array.get qreq i)
              ~load:(Float.Array.get qload i)
              ~area:(Float.Array.get qarea i)
              b.data.(i))
      in
      F (Contract.check_arr ~name out)
    end
end

(* Incremental insertion: binary-search placement over the sorted array,
   then a prefix dominance scan (only earlier elements can dominate [s])
   and a suffix filter (only later elements can be dominated by [s]). *)
let add c s =
  match c with
  | Empty -> F [| s |]
  | F arr ->
    let n = Array.length arr in
    (* First index whose key is greater than [s]'s. *)
    let pos =
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Solution.compare_key arr.(mid) s <= 0 then lo := mid + 1
        else hi := mid
      done;
      !lo
    in
    if pos > 0 && Solution.compare_key arr.(pos - 1) s = 0 then c
    else begin
      (* Every element before [pos] has req >= s.req, so domination of
         [s] reduces to load/area. *)
      let dominated = ref false in
      let i = ref 0 in
      while (not !dominated) && !i < pos do
        let x = arr.(!i) in
        if x.Solution.load <= s.Solution.load
           && x.Solution.area <= s.Solution.area
        then dominated := true;
        incr i
      done;
      if !dominated then c
      else begin
        (* Elements from [pos] on have req <= s.req: drop those [s]
           dominates. *)
        let survives x =
          not
            (s.Solution.load <= x.Solution.load
             && s.Solution.area <= x.Solution.area)
        in
        let kept = ref 0 in
        for i = pos to n - 1 do
          if survives arr.(i) then incr kept
        done;
        let out = Array.make (pos + 1 + !kept) s in
        Array.blit arr 0 out 0 pos;
        let w = ref (pos + 1) in
        for i = pos to n - 1 do
          if survives arr.(i) then begin
            out.(!w) <- arr.(i);
            incr w
          end
        done;
        F (Contract.check_sorted_arr ~name:"Curve.add" out)
      end
    end

let of_list sols =
  let b = Builder.create ~hint:(List.length sols) () in
  List.iter (Builder.add b) sols;
  Builder.build ~name:"Curve.of_list" b

let union a b =
  match (a, b) with
  | Empty, c | c, Empty -> c
  | F _, F _ ->
    let bld = Builder.create ~hint:(size a + size b) () in
    Builder.add_curve bld a;
    Builder.add_curve bld b;
    Builder.build ~name:"Curve.union" bld

let map_data f c =
  match c with Empty -> Empty | F arr -> F (Array.map (Solution.map f) arr)

let map_solutions f c =
  match c with
  | Empty -> Empty
  | F arr ->
    let bld = Builder.create ~hint:(Array.length arr) () in
    Array.iter (fun s -> Builder.add bld (f s)) arr;
    Builder.build ~name:"Curve.map_solutions" bld

let fold f acc c = Array.fold_left f acc (to_array c)

let iter f c = Array.iter f (to_array c)

let best_req = function Empty -> None | F arr -> Some arr.(0)

let best_under_area c ~area =
  match c with
  | Empty -> None
  | F arr ->
    (* Curve order is req-descending, so the first fitting point wins. *)
    let n = Array.length arr in
    let rec find i =
      if i >= n then None
      else if arr.(i).Solution.area <= area then Some arr.(i)
      else find (i + 1)
    in
    find 0

let best_min_area c ~req =
  match c with
  | Empty -> None
  | F arr ->
    (* The curve is req-descending: stop at the first element below the
       floor instead of scanning the whole frontier. *)
    let n = Array.length arr in
    let rec scan i best =
      if i >= n then best
      else
        let s = arr.(i) in
        if s.Solution.req < req then best
        else
          let best =
            match best with
            | Some b when b.Solution.area <= s.Solution.area -> best
            | Some _ | None -> Some s
          in
          scan (i + 1) best
    in
    scan 0 None

let cap_impl ~max_size c =
  if max_size < 2 then invalid_arg "Curve.cap: max_size < 2";
  match c with
  | Empty -> Empty
  | F arr ->
    let n = Array.length arr in
    if n <= max_size then c
    else begin
      (* Always keep the extreme point of each dimension (best required
         time, least load, least area), then spread the rest evenly along
         the required-time axis. *)
      let extreme proj =
        let best = ref 0 in
        Array.iteri
          (fun i s -> if proj s < proj arr.(!best) then best := i)
          arr;
        arr.(!best)
      in
      let keep =
        [ arr.(0); extreme (fun s -> s.Solution.load);
          extreme (fun s -> s.Solution.area); arr.(n - 1) ]
      in
      let spread = max 0 (max_size - List.length keep) in
      let picked =
        List.init spread (fun k -> arr.(1 + (k * (n - 2) / max 1 spread)))
      in
      let bld = Builder.create ~hint:max_size () in
      List.iter (Builder.add bld) keep;
      List.iter (Builder.add bld) picked;
      let capped = Builder.build ~name:"Curve.cap" bld in
      (* For very small caps the four kept extremes may overflow the cap;
         truncate in curve order as a last resort. *)
      if size capped <= max_size then capped
      else
        match capped with
        | Empty -> Empty
        | F a -> F (Array.sub a 0 max_size)
    end

let cap ~max_size c = cap_impl ~max_size c

let quantise_load ~grid c =
  if grid <= 0.0 then invalid_arg "Curve.quantise_load: grid <= 0";
  match c with
  | Empty -> Empty
  | F _ ->
    let bld = Builder.create ~hint:(size c) () in
    Builder.add_curve bld c;
    Builder.build ~name:"Curve.quantise_load" ~grids:(0.0, grid, 0.0) bld

let quantise ~req_grid ~load_grid ~area_grid c =
  if req_grid < 0.0 || load_grid < 0.0 || area_grid < 0.0 then
    invalid_arg "Curve.quantise: negative grid";
  match c with
  | Empty -> Empty
  | F _ ->
    let bld = Builder.create ~hint:(size c) () in
    Builder.add_curve bld c;
    Builder.build ~name:"Curve.quantise"
      ~grids:(req_grid, load_grid, area_grid) bld

let is_frontier c =
  let arr = to_array c in
  let n = Array.length arr in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        strictly_dominates arr.(i) arr.(j)
        || strictly_dominates arr.(j) arr.(i)
      then ok := false
    done
  done;
  !ok

let pp ppf c =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Solution.pp)
    (to_list c)
