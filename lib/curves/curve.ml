(* Array-backed frontier kernel.

   A curve is a sorted (Solution.compare_key), pairwise non-dominated
   array of solutions.  The empty curve is its own constructor so the
   polymorphic [empty] constant generalises (a bare [|]|] would be
   weakly typed under the value restriction); every non-empty curve
   carries a non-empty array.

   The batch path is [Builder]: candidates accumulate into
   structure-of-arrays floatarray storage (req/load/area) plus a data
   array, and [Builder.build] prunes the whole bag at once with one
   stable sort and one staircase sweep.  The sweep exploits the key
   order (req descending, then load, then area ascending): a processed
   point can only be dominated by an earlier one, and a kept point is
   never invalidated later, so maintaining the 2-D (load, area) minima
   staircase of the kept points answers every dominance query with a
   binary search.  Cost: O(P log P) for the sort plus O(log F) per
   query and O(F) per staircase insertion (F = frontier size, F << P
   in the DP hot paths), versus O(P·F) list rebuilding for P repeated
   [add]s. *)

type 'a t =
  | Empty
  | F of 'a Solution.t array

let empty = Empty

let is_empty = function Empty -> true | F _ -> false

let size = function Empty -> 0 | F arr -> Array.length arr

let to_array = function Empty -> [||] | F arr -> arr

let to_list c = Array.to_list (to_array c)

let strictly_dominates a b =
  Solution.dominates a b && Solution.compare_key a b <> 0

module Builder = struct
  type 'a b = {
    mutable req : floatarray;
    mutable load : floatarray;
    mutable area : floatarray;
    mutable data : 'a array; (* empty until the first push, then >= len *)
    mutable len : int;
    (* Build-time scratch, owned by the builder so a cleared and reused
       builder allocates nothing on the next build (grow-only; sized to
       the push-storage capacity in one step).  [qreq]/[qload]/[qarea]
       hold the quantised coordinates, [rb]/[lb]/[ab] their integer
       buckets for the packed sort path, [keys] the sort keys, [keep]
       the surviving indices and [st_load]/[st_area] the staircase. *)
    mutable qreq : floatarray;
    mutable qload : floatarray;
    mutable qarea : floatarray;
    mutable rb : int array;
    mutable lb : int array;
    mutable ab : int array;
    mutable keys : int array;
    mutable tmp : int array;
    mutable keep : int array;
    mutable st_load : floatarray;
    mutable st_area : floatarray;
  }

  let create ?(hint = 16) () =
    let hint = max 4 hint in
    { req = Float.Array.create hint;
      load = Float.Array.create hint;
      area = Float.Array.create hint;
      data = [||];
      len = 0;
      qreq = Float.Array.create 0;
      qload = Float.Array.create 0;
      qarea = Float.Array.create 0;
      rb = [||];
      lb = [||];
      ab = [||];
      keys = [||];
      tmp = [||];
      keep = [||];
      st_load = Float.Array.create 0;
      st_area = Float.Array.create 0 }

  let length b = b.len

  (* [clear] keeps all storage (including payload references past the
     new length, until they are overwritten by later pushes — scratch
     builders hold whatever the hot path last routed, never less). *)
  let clear b = b.len <- 0

  (* Ensure room for one more element; [elt] seeds the data array (an
     'a array cannot grow without a fill element). *)
  let reserve b elt =
    let cap = Float.Array.length b.req in
    if b.len = cap then begin
      let ncap = 2 * cap in
      let grow a =
        let n = Float.Array.create ncap in
        Float.Array.blit a 0 n 0 b.len;
        n
      in
      b.req <- grow b.req;
      b.load <- grow b.load;
      b.area <- grow b.area
    end;
    let cap = Float.Array.length b.req in
    if Array.length b.data < cap then begin
      let nd = Array.make cap elt in
      Array.blit b.data 0 nd 0 b.len;
      b.data <- nd
    end

  (* Inlined into the DP push sites so the float coordinates reach the
     floatarray stores unboxed instead of boxing at the call. *)
  let[@inline] push b ~req ~load ~area data =
    reserve b data;
    Float.Array.set b.req b.len req;
    Float.Array.set b.load b.len load;
    Float.Array.set b.area b.len area;
    b.data.(b.len) <- data;
    b.len <- b.len + 1

  (* Boxing-free coordinate hand-off for the DP hot paths: an all-float
     record is flat (fields stored unboxed), so a cost writer fills it
     with plain float stores and [push_cost] moves the fields straight
     into the floatarray columns — no (req, load, area) tuple and no
     boxed floats per candidate, which the non-flambda compiler cannot
     eliminate on its own at a function boundary. *)
  type cost = { mutable creq : float; mutable cload : float; mutable carea : float }

  let new_cost () = { creq = 0.0; cload = 0.0; carea = 0.0 }

  let push_cost b (c : cost) data =
    reserve b data;
    Float.Array.set b.req b.len c.creq;
    Float.Array.set b.load b.len c.cload;
    Float.Array.set b.area b.len c.carea;
    b.data.(b.len) <- data;
    b.len <- b.len + 1

  let add b (s : 'a Solution.t) =
    push b ~req:s.Solution.req ~load:s.Solution.load ~area:s.Solution.area
      s.Solution.data

  let add_curve b c =
    match c with Empty -> () | F arr -> Array.iter (add b) arr

  (* Grow every scratch array to the push-storage capacity (>= len) in
     one step, so a long-lived builder reaches a fixed point and later
     builds allocate nothing here. *)
  let ensure_scratch b =
    let cap = Float.Array.length b.req in
    if Array.length b.keys < cap then begin
      b.qreq <- Float.Array.create cap;
      b.qload <- Float.Array.create cap;
      b.qarea <- Float.Array.create cap;
      b.rb <- Array.make cap 0;
      b.lb <- Array.make cap 0;
      b.ab <- Array.make cap 0;
      b.keys <- Array.make cap 0;
      b.tmp <- Array.make cap 0;
      b.keep <- Array.make cap 0;
      b.st_load <- Float.Array.create cap;
      b.st_area <- Float.Array.create cap
    end

  (* Ascending bottom-up merge sort of [keys.(0 .. n-1)] with direct
     (monomorphic, inlinable) int comparisons, merging back and forth
     between [keys] and the builder-owned [tmp] scratch — the packed-key
     sort path.  Hand-written because the stdlib cannot sort a prefix of
     a larger scratch array, and [Array.stable_sort] allocates a fresh
     run buffer per call; direct int compares are also markedly faster
     than going through a comparator closure.  Small runs are seeded
     with a binary-insertion pass, like the stdlib's cutoff. *)
  let sort_ints keys tmp n =
    let run = 16 in
    let lo = ref 0 in
    while !lo < n do
      let hi = min n (!lo + run) in
      for i = !lo + 1 to hi - 1 do
        let v = keys.(i) in
        let j = ref i in
        while !j > !lo && keys.(!j - 1) > v do
          keys.(!j) <- keys.(!j - 1);
          decr j
        done;
        keys.(!j) <- v
      done;
      lo := hi
    done;
    let src = ref keys and dst = ref tmp in
    let width = ref run in
    while !width < n do
      let s = !src and d = !dst in
      let lo = ref 0 in
      while !lo < n do
        let mid = min n (!lo + !width) in
        let hi = min n (mid + !width) in
        let i = ref !lo and j = ref mid and w = ref !lo in
        while !i < mid && !j < hi do
          if s.(!i) <= s.(!j) then begin
            d.(!w) <- s.(!i);
            incr i
          end
          else begin
            d.(!w) <- s.(!j);
            incr j
          end;
          incr w
        done;
        while !i < mid do
          d.(!w) <- s.(!i);
          incr i;
          incr w
        done;
        while !j < hi do
          d.(!w) <- s.(!j);
          incr j;
          incr w
        done;
        lo := hi
      done;
      let t = !src in
      src := !dst;
      dst := t;
      width := 2 * !width
    done;
    if !src != keys then Array.blit !src 0 keys 0 n (* lint: physical-eq *)

  (* The same bottom-up merge sort under a comparator closure — the
     fallback for un- or partially-quantised builds, whose keys live in
     the coordinate floatarrays.  Stable (merges keep the left run on
     ties), and the comparator also tie-breaks on the push index, so
     both sort paths reproduce a stable sort of the coordinate keys. *)
  let sort_idx keys tmp n cmp =
    let run = 16 in
    let lo = ref 0 in
    while !lo < n do
      let hi = min n (!lo + run) in
      for i = !lo + 1 to hi - 1 do
        let v = keys.(i) in
        let j = ref i in
        while !j > !lo && cmp keys.(!j - 1) v > 0 do
          keys.(!j) <- keys.(!j - 1);
          decr j
        done;
        keys.(!j) <- v
      done;
      lo := hi
    done;
    let src = ref keys and dst = ref tmp in
    let width = ref run in
    while !width < n do
      let s = !src and d = !dst in
      let lo = ref 0 in
      while !lo < n do
        let mid = min n (!lo + !width) in
        let hi = min n (mid + !width) in
        let i = ref !lo and j = ref mid and w = ref !lo in
        while !i < mid && !j < hi do
          if cmp s.(!i) s.(!j) <= 0 then begin
            d.(!w) <- s.(!i);
            incr i
          end
          else begin
            d.(!w) <- s.(!j);
            incr j
          end;
          incr w
        done;
        while !i < mid do
          d.(!w) <- s.(!i);
          incr i;
          incr w
        done;
        while !j < hi do
          d.(!w) <- s.(!j);
          incr j;
          incr w
        done;
        lo := hi
      done;
      let t = !src in
      src := !dst;
      dst := t;
      width := 2 * !width
    done;
    if !src != keys then Array.blit !src 0 keys 0 n (* lint: physical-eq *)

  (* Quantisation buckets stay bit-exact and order-preserving as ints as
     long as |bucket| stays far below 2^53: [float_of_int] is exact and
     [f *. grid] is strictly monotone in f (adjacent multiples differ by
     [grid], rounding error is ~|f*grid|*2^-53, so collapses need
     |f| ~ 2^52).  2^45 leaves a wide margin and bounds the packed bit
     budget.  Negative zero is rejected: its bucket would collide with
     +0.0's while [Float.compare] separates them. *)
  let bucket_limit = 0x2000_0000_0000p0 (* 2^45 *)

  let bucket_ok f =
    Float.abs f <= bucket_limit && not (f = 0.0 && 1.0 /. f < 0.0)

  (* Smallest width such that [v < 2^width] ([v >= 0]). *)
  let bits v =
    let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
    go 0 v

  (* One sort + one staircase sweep over the accumulated bag.  Ties
     (equal coordinate keys) keep the earliest push, matching the
     incremental [add]'s first-wins behaviour.  [grids] quantises every
     coordinate before the sweep (the per-candidate quantisation of the
     DP cores, fused into the batch pass).

     With all three grids positive the sort runs on one packed int key
     per candidate — (req desc, load asc, area asc, push index) offset
     into disjoint bit fields — instead of chasing three floatarrays
     through a comparator; the float comparator remains as the fallback
     for un- or partially-quantised builds and for out-of-range buckets,
     and orders identically (DESIGN.md §9).

     [epsilon] > 0 additionally drops a candidate when some kept point
     is within [epsilon] of it in both load and area (at automatically
     no-worse req, given the sweep order) — epsilon-domination subsumes
     exact domination, so the kept set stays mutually non-inferior.
     [max_frontier] > 0 stops the sweep after that many survivors; the
     result is the best-req prefix of the unbounded frontier.  Both
     default off, and exact mode is byte-identical to the knob-free
     build. *)
  let build ?(name = "Curve.Builder.build") ?(grids = (0.0, 0.0, 0.0))
      ?(epsilon = 0.0) ?(max_frontier = 0) b =
    let n = b.len in
    if epsilon < 0.0 then invalid_arg "Curve.Builder.build: epsilon < 0";
    if max_frontier < 0 then
      invalid_arg "Curve.Builder.build: max_frontier < 0";
    if n = 0 then Empty
    else begin
      ensure_scratch b;
      let cap = if max_frontier = 0 then max_int else max_frontier in
      let req_grid, load_grid, area_grid = grids in
      let quantised =
        req_grid <> 0.0 || load_grid <> 0.0 || area_grid <> 0.0
      in
      let qreq = if quantised then b.qreq else b.req in
      let qload = if quantised then b.qload else b.load in
      let qarea = if quantised then b.qarea else b.area in
      (* Pass 1: quantise into the q scratch; when all grids are
         positive, also derive the integer buckets (same divisions, so
         [bucket *. grid] reproduces grid_down/grid_up bit-exactly). *)
      let packed = ref (req_grid > 0.0 && load_grid > 0.0 && area_grid > 0.0) in
      let minr = ref max_int and maxr = ref min_int in
      let minl = ref max_int and maxl = ref min_int in
      let mina = ref max_int and maxa = ref min_int in
      if !packed then begin
        let i = ref 0 in
        while !packed && !i < n do
          let fr = Float.floor (Float.Array.get b.req !i /. req_grid) in
          let fl = Float.ceil (Float.Array.get b.load !i /. load_grid) in
          let fa = Float.ceil (Float.Array.get b.area !i /. area_grid) in
          if not (bucket_ok fr && bucket_ok fl && bucket_ok fa) then
            packed := false
          else begin
            Float.Array.set qreq !i (fr *. req_grid);
            Float.Array.set qload !i (fl *. load_grid);
            Float.Array.set qarea !i (fa *. area_grid);
            let ri = int_of_float fr in
            let li = int_of_float fl in
            let ai = int_of_float fa in
            b.rb.(!i) <- ri;
            b.lb.(!i) <- li;
            b.ab.(!i) <- ai;
            if ri < !minr then minr := ri;
            if ri > !maxr then maxr := ri;
            if li < !minl then minl := li;
            if li > !maxl then maxl := li;
            if ai < !mina then mina := ai;
            if ai > !maxa then maxa := ai
          end;
          incr i
        done
      end;
      if (not !packed) && quantised then
        for i = 0 to n - 1 do
          Float.Array.set qreq i
            (Solution.grid_down req_grid (Float.Array.get b.req i));
          Float.Array.set qload i
            (Solution.grid_up load_grid (Float.Array.get b.load i));
          Float.Array.set qarea i
            (Solution.grid_up area_grid (Float.Array.get b.area i))
        done;
      let bi = bits (n - 1) in
      let use_packed =
        !packed
        && bits (!maxr - !minr) + bits (!maxl - !minl) + bits (!maxa - !mina)
           + bi
           <= 62
      in
      if use_packed then begin
        (* Field layout, most significant first: req (inverted so the
           ascending int sort yields req-descending), load, area, push
           index.  All fields are offset to start at 0, so the key is a
           non-negative int and plain int comparison is the full
           lexicographic order. *)
        let sa = bi in
        let sl = sa + bits (!maxa - !mina) in
        let sr = sl + bits (!maxl - !minl) in
        for i = 0 to n - 1 do
          b.keys.(i) <-
            ((!maxr - b.rb.(i)) lsl sr)
            lor ((b.lb.(i) - !minl) lsl sl)
            lor ((b.ab.(i) - !mina) lsl sa)
            lor i
        done;
        sort_ints b.keys b.tmp n
      end
      else begin
        for i = 0 to n - 1 do
          b.keys.(i) <- i
        done;
        sort_idx b.keys b.tmp n (fun i j ->
            let c =
              Float.compare (Float.Array.get qreq j) (Float.Array.get qreq i)
            in
            if c <> 0 then c
            else
              let c =
                Float.compare (Float.Array.get qload i)
                  (Float.Array.get qload j)
              in
              if c <> 0 then c
              else
                let c =
                  Float.compare (Float.Array.get qarea i)
                    (Float.Array.get qarea j)
                in
                if c <> 0 then c else Int.compare i j)
      end;
      let imask = (1 lsl bi) - 1 in
      (* Staircase of the kept points' (load, area) minima: load strictly
         increasing, area strictly decreasing. *)
      let st_load = b.st_load and st_area = b.st_area in
      let st_len = ref 0 in
      let keep = b.keep in
      let nkeep = ref 0 in
      let t = ref 0 in
      while !t < n && !nkeep < cap do
        let i =
          if use_packed then b.keys.(!t) land imask else b.keys.(!t)
        in
        let l = Float.Array.get qload i and a = Float.Array.get qarea i in
        (* Rightmost staircase entry with load <= l + epsilon (all kept
           points have req >= this one's, so load/area decide dominance;
           at epsilon 0 this is the exact dominance query). *)
        let lb = l +. epsilon and ab = a +. epsilon in
        let p =
          let lo = ref 0 and hi = ref !st_len in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if Float.Array.get st_load mid <= lb then lo := mid + 1
            else hi := mid
          done;
          !lo - 1
        in
        let dominated = p >= 0 && Float.Array.get st_area p <= ab in
        if not dominated then begin
          keep.(!nkeep) <- i;
          incr nkeep;
          (* Re-find the insertion point for the exact [l] (the query
             above ran at [l + epsilon]); with epsilon 0 the staircase
             position is [p] itself, so this second search is skipped. *)
          let p =
            if epsilon = 0.0 then p
            else begin
              let lo = ref 0 and hi = ref !st_len in
              while !lo < !hi do
                let mid = (!lo + !hi) / 2 in
                if Float.Array.get st_load mid <= l then lo := mid + 1
                else hi := mid
              done;
              !lo - 1
            end
          in
          (* Insert (l, a): entries with load >= l and area >= a are now
             redundant; areas decrease rightward so they form a run. *)
          let q =
            if p >= 0 && Float.Array.get st_load p = l then p else p + 1
          in
          let r = ref q in
          while !r < !st_len && Float.Array.get st_area !r >= a do incr r done;
          let removed = !r - q in
          if removed = 0 then begin
            Float.Array.blit st_load q st_load (q + 1) (!st_len - q);
            Float.Array.blit st_area q st_area (q + 1) (!st_len - q);
            incr st_len
          end
          else if removed > 1 then begin
            Float.Array.blit st_load !r st_load (q + 1) (!st_len - !r);
            Float.Array.blit st_area !r st_area (q + 1) (!st_len - !r);
            st_len := !st_len - removed + 1
          end;
          Float.Array.set st_load q l;
          Float.Array.set st_area q a
        end;
        incr t
      done;
      let out =
        Array.init !nkeep (fun t ->
            let i = keep.(t) in
            Solution.make
              ~req:(Float.Array.get qreq i)
              ~load:(Float.Array.get qload i)
              ~area:(Float.Array.get qarea i)
              b.data.(i))
      in
      F (Contract.check_arr ~name out)
    end
end

(* Incremental insertion: binary-search placement over the sorted array,
   then a prefix dominance scan (only earlier elements can dominate [s])
   and a suffix filter (only later elements can be dominated by [s]). *)
let add c s =
  match c with
  | Empty -> F [| s |]
  | F arr ->
    let n = Array.length arr in
    (* First index whose key is greater than [s]'s. *)
    let pos =
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Solution.compare_key arr.(mid) s <= 0 then lo := mid + 1
        else hi := mid
      done;
      !lo
    in
    if pos > 0 && Solution.compare_key arr.(pos - 1) s = 0 then c
    else begin
      (* Every element before [pos] has req >= s.req, so domination of
         [s] reduces to load/area. *)
      let dominated = ref false in
      let i = ref 0 in
      while (not !dominated) && !i < pos do
        let x = arr.(!i) in
        if x.Solution.load <= s.Solution.load
           && x.Solution.area <= s.Solution.area
        then dominated := true;
        incr i
      done;
      if !dominated then c
      else begin
        (* Elements from [pos] on have req <= s.req: drop those [s]
           dominates. *)
        let survives x =
          not
            (s.Solution.load <= x.Solution.load
             && s.Solution.area <= x.Solution.area)
        in
        let kept = ref 0 in
        for i = pos to n - 1 do
          if survives arr.(i) then incr kept
        done;
        let out = Array.make (pos + 1 + !kept) s in
        Array.blit arr 0 out 0 pos;
        let w = ref (pos + 1) in
        for i = pos to n - 1 do
          if survives arr.(i) then begin
            out.(!w) <- arr.(i);
            incr w
          end
        done;
        F (Contract.check_sorted_arr ~name:"Curve.add" out)
      end
    end

let of_list sols =
  let b = Builder.create ~hint:(List.length sols) () in
  List.iter (Builder.add b) sols;
  Builder.build ~name:"Curve.of_list" b

let union a b =
  match (a, b) with
  | Empty, c | c, Empty -> c
  | F _, F _ ->
    let bld = Builder.create ~hint:(size a + size b) () in
    Builder.add_curve bld a;
    Builder.add_curve bld b;
    Builder.build ~name:"Curve.union" bld

let map_data f c =
  match c with Empty -> Empty | F arr -> F (Array.map (Solution.map f) arr)

let map_solutions f c =
  match c with
  | Empty -> Empty
  | F arr ->
    let bld = Builder.create ~hint:(Array.length arr) () in
    Array.iter (fun s -> Builder.add bld (f s)) arr;
    Builder.build ~name:"Curve.map_solutions" bld

let fold f acc c = Array.fold_left f acc (to_array c)

let iter f c = Array.iter f (to_array c)

let best_req = function Empty -> None | F arr -> Some arr.(0)

let best_under_area c ~area =
  match c with
  | Empty -> None
  | F arr ->
    (* Curve order is req-descending, so the first fitting point wins. *)
    let n = Array.length arr in
    let rec find i =
      if i >= n then None
      else if arr.(i).Solution.area <= area then Some arr.(i)
      else find (i + 1)
    in
    find 0

let best_min_area c ~req =
  match c with
  | Empty -> None
  | F arr ->
    (* The curve is req-descending: stop at the first element below the
       floor instead of scanning the whole frontier. *)
    let n = Array.length arr in
    let rec scan i best =
      if i >= n then best
      else
        let s = arr.(i) in
        if s.Solution.req < req then best
        else
          let best =
            match best with
            | Some b when b.Solution.area <= s.Solution.area -> best
            | Some _ | None -> Some s
          in
          scan (i + 1) best
    in
    scan 0 None

let cap_impl ?scratch ~max_size c =
  if max_size < 2 then invalid_arg "Curve.cap: max_size < 2";
  match c with
  | Empty -> Empty
  | F arr ->
    let n = Array.length arr in
    if n <= max_size then c
    else begin
      (* Always keep the extreme point of each dimension (best required
         time, least load, least area), then spread the rest evenly along
         the required-time axis.  Everything goes straight into the
         builder — a caller-threaded scratch one on the hot paths — in
         the same order the old list-based construction pushed, so the
         first-wins tie behaviour of [Builder.build] is unchanged. *)
      let bld =
        match scratch with
        | Some b ->
          Builder.clear b;
          b
        | None -> Builder.create ~hint:max_size ()
      in
      let extreme proj =
        let best = ref 0 in
        Array.iteri
          (fun i s -> if proj s < proj arr.(!best) then best := i)
          arr;
        arr.(!best)
      in
      let n_extremes = 4 in
      Builder.add bld arr.(0);
      Builder.add bld (extreme (fun s -> s.Solution.load));
      Builder.add bld (extreme (fun s -> s.Solution.area));
      Builder.add bld arr.(n - 1);
      let spread = max 0 (max_size - n_extremes) in
      for k = 0 to spread - 1 do
        Builder.add bld arr.(1 + (k * (n - 2) / max 1 spread))
      done;
      let capped = Builder.build ~name:"Curve.cap" bld in
      (* For very small caps the four kept extremes may overflow the cap;
         truncate in curve order as a last resort. *)
      if size capped <= max_size then capped
      else
        match capped with
        | Empty -> Empty
        | F a -> F (Array.sub a 0 max_size)
    end

let cap ?scratch ~max_size c = cap_impl ?scratch ~max_size c

let quantise_load ~grid c =
  if grid <= 0.0 then invalid_arg "Curve.quantise_load: grid <= 0";
  match c with
  | Empty -> Empty
  | F _ ->
    let bld = Builder.create ~hint:(size c) () in
    Builder.add_curve bld c;
    Builder.build ~name:"Curve.quantise_load" ~grids:(0.0, grid, 0.0) bld

let quantise ~req_grid ~load_grid ~area_grid c =
  if req_grid < 0.0 || load_grid < 0.0 || area_grid < 0.0 then
    invalid_arg "Curve.quantise: negative grid";
  match c with
  | Empty -> Empty
  | F _ ->
    let bld = Builder.create ~hint:(size c) () in
    Builder.add_curve bld c;
    Builder.build ~name:"Curve.quantise"
      ~grids:(req_grid, load_grid, area_grid) bld

(* Pairwise non-domination scan; only reachable when the sorted-order
   invariant is somehow broken (see [is_frontier]). *)
let is_frontier_quadratic arr =
  let n = Array.length arr in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        strictly_dominates arr.(i) arr.(j)
        || strictly_dominates arr.(j) arr.(i)
      then ok := false
    done
  done;
  !ok

let is_frontier c =
  let arr = to_array c in
  let n = Array.length arr in
  let sorted = ref true in
  for i = 0 to n - 2 do
    if Solution.compare_key arr.(i) arr.(i + 1) > 0 then sorted := false
  done;
  if not !sorted then
    (* Can only happen through an invariant bug elsewhere; keep the old
       order-insensitive answer rather than trusting the sweep below. *)
    is_frontier_quadratic arr
  else begin
    (* Sorted-order staircase pass (the dominance structure of
       [Builder.build]): in compare_key order a point can only be
       strictly dominated by an earlier one, so one (load, area) minima
       staircase over the prefix answers every query — O(n log n)
       instead of the pairwise O(n^2) scan.  Equal-key runs are queried
       before any of them is inserted: exact duplicates never strictly
       dominate each other. *)
    let st_load = Float.Array.create n in
    let st_area = Float.Array.create n in
    let st_len = ref 0 in
    let query l a =
      let lo = ref 0 and hi = ref !st_len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Float.Array.get st_load mid <= l then lo := mid + 1 else hi := mid
      done;
      let p = !lo - 1 in
      p >= 0 && Float.Array.get st_area p <= a
    in
    let insert l a =
      let lo = ref 0 and hi = ref !st_len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Float.Array.get st_load mid <= l then lo := mid + 1 else hi := mid
      done;
      let p = !lo - 1 in
      if not (p >= 0 && Float.Array.get st_area p <= a) then begin
        let q = if p >= 0 && Float.Array.get st_load p = l then p else p + 1 in
        let r = ref q in
        while !r < !st_len && Float.Array.get st_area !r >= a do incr r done;
        let removed = !r - q in
        if removed = 0 then begin
          Float.Array.blit st_load q st_load (q + 1) (!st_len - q);
          Float.Array.blit st_area q st_area (q + 1) (!st_len - q);
          incr st_len
        end
        else if removed > 1 then begin
          Float.Array.blit st_load !r st_load (q + 1) (!st_len - !r);
          Float.Array.blit st_area !r st_area (q + 1) (!st_len - !r);
          st_len := !st_len - removed + 1
        end;
        Float.Array.set st_load q l;
        Float.Array.set st_area q a
      end
    in
    let ok = ref true in
    let g = ref 0 in
    while !ok && !g < n do
      let h = ref (!g + 1) in
      while !h < n && Solution.compare_key arr.(!g) arr.(!h) = 0 do
        incr h
      done;
      for t = !g to !h - 1 do
        if query arr.(t).Solution.load arr.(t).Solution.area then ok := false
      done;
      if !ok then
        for t = !g to !h - 1 do
          insert arr.(t).Solution.load arr.(t).Solution.area
        done;
      g := !h
    done;
    !ok
  end

let pp ppf c =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Solution.pp)
    (to_list c)
