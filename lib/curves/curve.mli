(** Non-inferior three-dimensional solution curves.

    A curve holds only mutually non-inferior solutions (Definition 6) and
    keeps them in the deterministic {!Solution.compare_key} order, backed
    by a sorted array.  All dynamic programs in the repository combine,
    extend and prune these curves; Lemma 9 (pruning loses no non-inferior
    solution) is enforced here and property-tested in
    [test/test_curves.ml] and [test/test_curve_kernel.ml] (observational
    equivalence against the list-based {!Curve_reference}).

    The DP hot paths should not [add] candidates one at a time: they
    accumulate a whole cell-root's candidate bag into a {!Builder} and
    prune once with {!Builder.build} — one stable sort plus one staircase
    sweep instead of a per-candidate frontier rebuild (DESIGN.md §"Curve
    kernel"). *)

type 'a t

val empty : 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

(** Solutions in {!Solution.compare_key} order. *)
val to_list : 'a t -> 'a Solution.t list

(** Batch accumulator: push candidate coordinates (and their payloads)
    into structure-of-arrays storage, then prune the whole bag at once.
    Ties on {!Solution.compare_key} keep the earliest push, matching the
    incremental {!add}. *)
module Builder : sig
  type 'a b

  (** [create ?hint ()] is an empty accumulator with initial capacity
      [hint] (it grows as needed). *)
  val create : ?hint:int -> unit -> 'a b

  (** [push b ~req ~load ~area data] records one candidate without
      allocating a {!Solution.t} — the hot paths push raw costs and defer
      building the carried structure to the frontier survivors. *)
  val push : 'a b -> req:float -> load:float -> area:float -> 'a -> unit

  (** Mutable all-float coordinate carrier for the DP hot paths.  An
      all-float record is stored flat, so a cost computation can write
      its three results as unboxed float stores and {!push_cost} can
      move them straight into the builder's columns — no [(req, load,
      area)] tuple and no boxed floats per candidate, which the
      non-flambda compiler cannot eliminate across a function boundary
      on its own (DESIGN.md §9). *)
  type cost = {
    mutable creq : float;
    mutable cload : float;
    mutable carea : float;
  }

  val new_cost : unit -> cost

  (** [push_cost b c data] is [push] reading its coordinates from [c]. *)
  val push_cost : 'a b -> cost -> 'a -> unit

  (** [add b s] pushes an existing solution. *)
  val add : 'a b -> 'a Solution.t -> unit

  (** [add_curve b c] pushes every solution of [c]. *)
  val add_curve : 'a b -> 'a t -> unit

  (** Candidates pushed so far (pre-pruning). *)
  val length : 'a b -> int

  (** Forget all pushed candidates, keeping all storage — including the
      sort/staircase scratch grown by previous {!build}s, so a cleared
      builder reused across a DP's cells reaches a fixed point where
      steady-state builds allocate only the survivor array.  A cleared
      builder is observationally identical to a fresh one (property
      tested in [test/test_curve_kernel.ml]). *)
  val clear : 'a b -> unit

  (** [build ?name ?grids ?epsilon ?max_frontier b] prunes the
      accumulated bag to its non-inferior frontier: one sort + one
      staircase sweep, O(P log P + P·F_insert) for P candidates and
      frontier size F, versus O(P·F) for P repeated {!add}s.  [grids]
      applies {!Solution.quantise} bucketing to every candidate during
      the sweep (the DP cores' per-candidate quantisation, fused into
      the batch pass); with all three grids positive the sort runs on
      packed int keys instead of a float comparator (DESIGN.md §9).
      [name] labels {!Contract} violations.

      [epsilon > 0] additionally drops candidates epsilon-dominated by a
      kept point (within [epsilon] in both load and area at no-worse
      req, measured on the quantised coordinates); [max_frontier > 0]
      keeps only that prefix of the frontier (best req first).  Both
      default off; [~epsilon:0.0] and an unreachably large
      [max_frontier] are byte-identical to the exact build.  The result
      is always mutually non-inferior — epsilon-domination subsumes
      exact domination — so every {!Contract} invariant holds in every
      mode. *)
  val build :
    ?name:string ->
    ?grids:float * float * float ->
    ?epsilon:float ->
    ?max_frontier:int ->
    'a b ->
    'a t
end

(** [add curve s] inserts [s] unless an existing solution dominates it and
    removes every solution [s] dominates.  Placement is a binary search
    over the sorted array; kept for genuinely incremental callers — batch
    producers should use {!Builder}. *)
val add : 'a t -> 'a Solution.t -> 'a t

val of_list : 'a Solution.t list -> 'a t

(** [union a b] is the pruned merge of both curves. *)
val union : 'a t -> 'a t -> 'a t

(** [map_data f c] maps only the carried payloads; coordinates — and
    hence the frontier — are unchanged.  This is how hot paths
    materialise deferred payloads after {!Builder.build}. *)
val map_data : ('a -> 'b) -> 'a t -> 'b t

(** [map_solutions f c] rebuilds the curve from [f] applied to each
    solution, re-pruning (used to push a solution through a wire or a
    buffer, which changes all three coordinates). *)
val map_solutions : ('a Solution.t -> 'b Solution.t) -> 'a t -> 'b t

val fold : ('acc -> 'a Solution.t -> 'acc) -> 'acc -> 'a t -> 'acc

val iter : ('a Solution.t -> unit) -> 'a t -> unit

(** Solution with the largest required time, ties broken by smaller load
    then area (the curve's first element). *)
val best_req : 'a t -> 'a Solution.t option

(** [best_under_area curve ~area] is the max-required-time solution with
    area at most [area] (problem variant I). *)
val best_under_area : 'a t -> area:float -> 'a Solution.t option

(** [best_min_area curve ~req] is the min-area solution with required time
    at least [req] (problem variant II).  The scan early-exits at the
    first element below the floor (the curve is req-descending). *)
val best_min_area : 'a t -> req:float -> 'a Solution.t option

(** [cap ?scratch ~max_size curve] reduces the curve to at most
    [max_size] points by keeping an even spread along the required-time
    axis (always keeping both extremes); [max_size >= 2].  Hot paths
    pass [scratch] — a builder cleared and reused for the selection —
    so capping allocates only the surviving points (DESIGN.md §5, §9). *)
val cap : ?scratch:'a Builder.b -> max_size:int -> 'a t -> 'a t

(** [quantise_load ~grid curve] rounds every load {e up} to a multiple of
    [grid] and re-prunes — the "capacitances mapped to polynomially bounded
    integers" proviso of Lemmas 1 and 10.  Rounding up is pessimistic, so
    any solution kept remains electrically valid. *)
val quantise_load : grid:float -> 'a t -> 'a t

(** [quantise ~req_grid ~load_grid ~area_grid curve] buckets all three
    dimensions pessimistically (required time down, load and area up) and
    re-prunes.  With all three grids set, the frontier size is bounded by
    the number of distinct (load, area) buckets, which is what makes the
    paper's dynamic programs pseudo-polynomial without the instability of
    a hard count cap.  A grid of 0 leaves that dimension untouched. *)
val quantise :
  req_grid:float -> load_grid:float -> area_grid:float -> 'a t -> 'a t

(** [is_frontier c] checks the internal invariant: no element dominates
    another.  Exposed for tests. *)
val is_frontier : 'a t -> bool

val pp : Format.formatter -> 'a t -> unit
