(* The pre-batch, list-based frontier implementation, kept verbatim as
   the executable specification of the curve operations.  The qcheck
   suite in test/test_curve_kernel.ml asserts that the array-backed
   batch kernel in Curve is observationally equivalent to this module
   on random solution bags.  Not used by any DP core. *)

type 'a t = 'a Solution.t list
(* Invariant: sorted by Solution.compare_key; pairwise non-dominated. *)

let empty = []

let size = List.length

let to_list c = c

(* Single pass exploiting the sort order: an element before the insertion
   point (higher req, or equal req with no worse load/area) can dominate
   [s] but never be dominated by it; after the insertion point it is the
   reverse. *)
let add c s =
  let rec drop = function
    | [] -> []
    | x :: rest ->
      if Solution.dominates s x then drop rest else x :: drop rest
  in
  let rec scan acc = function
    | [] -> List.rev (s :: acc)
    | x :: rest as l ->
      let cmp = Solution.compare_key x s in
      if cmp = 0 then c
      else if cmp < 0 then
        if Solution.dominates x s then c else scan (x :: acc) rest
      else List.rev_append acc (s :: drop l)
  in
  scan [] c

let of_list sols = List.fold_left add empty sols

let union a b = List.fold_left add a b

let map_solutions f c = of_list (List.map f c)

let best_min_area c ~req =
  let fits s = s.Solution.req >= req in
  List.fold_left
    (fun acc s ->
       if not (fits s) then acc
       else
         match acc with
         | Some best when best.Solution.area <= s.Solution.area -> acc
         | _ -> Some s)
    None c

let cap ~max_size c =
  if max_size < 2 then invalid_arg "Curve_reference.cap: max_size < 2";
  let n = List.length c in
  if n <= max_size then c
  else begin
    let arr = Array.of_list c in
    (* Always keep the extreme point of each dimension (best required
       time, least load, least area), then spread the rest evenly along
       the required-time axis. *)
    let extreme proj =
      let best = ref 0 in
      Array.iteri (fun i s -> if proj s < proj arr.(!best) then best := i) arr;
      arr.(!best)
    in
    let keep =
      [ arr.(0); extreme (fun s -> s.Solution.load);
        extreme (fun s -> s.Solution.area); arr.(n - 1) ]
    in
    let spread = max 0 (max_size - List.length keep) in
    let picked =
      List.init spread (fun k -> arr.(1 + (k * (n - 2) / max 1 spread)))
    in
    let capped =
      List.sort_uniq Solution.compare_key (keep @ picked) |> of_list
    in
    (* For very small caps the four kept extremes may overflow the cap;
       truncate in curve order as a last resort. *)
    if List.length capped <= max_size then capped
    else List.filteri (fun i _ -> i < max_size) capped
  end

let quantise_load ~grid c =
  if grid <= 0.0 then invalid_arg "Curve_reference.quantise_load: grid <= 0";
  let round_up s =
    let q = ceil (s.Solution.load /. grid) *. grid in
    { s with Solution.load = q }
  in
  map_solutions round_up c

let quantise ~req_grid ~load_grid ~area_grid c =
  if req_grid < 0.0 || load_grid < 0.0 || area_grid < 0.0 then
    invalid_arg "Curve_reference.quantise: negative grid";
  map_solutions (Solution.quantise ~req_grid ~load_grid ~area_grid) c
