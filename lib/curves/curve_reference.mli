(** The pre-batch, list-based curve implementation, retained as the
    executable specification for the array-backed batch kernel in
    {!Curve}.  [test/test_curve_kernel.ml] property-tests that both
    produce identical frontiers (same solutions, same order, same
    tie-breaks) for every batch operation.  Not used by the DP cores. *)

type 'a t = 'a Solution.t list

val empty : 'a t

val size : 'a t -> int

val to_list : 'a t -> 'a Solution.t list

(** Incremental insert with domination pruning — the O(frontier) list
    rebuild the batch kernel replaces. *)
val add : 'a t -> 'a Solution.t -> 'a t

val of_list : 'a Solution.t list -> 'a t

val union : 'a t -> 'a t -> 'a t

val map_solutions : ('a Solution.t -> 'b Solution.t) -> 'a t -> 'b t

(** Reference for the early-exit {!Curve.best_min_area}: folds the whole
    list. *)
val best_min_area : 'a t -> req:float -> 'a Solution.t option

val cap : max_size:int -> 'a t -> 'a t

val quantise_load : grid:float -> 'a t -> 'a t

val quantise :
  req_grid:float -> load_grid:float -> area_grid:float -> 'a t -> 'a t
