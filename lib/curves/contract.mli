(** Runtime invariant contracts for solution curves.

    The static lint rules (see DESIGN.md "Correctness tooling") protect
    the code that maintains curve invariants; this module checks the
    invariants themselves at runtime.  Enabled when the process starts
    with [MERLIN_CHECK=1] (or via {!set_enabled}); disabled it costs one
    branch per curve operation.

    The checked invariants are the ones {!Curve} relies on:
    {ol {- solutions strictly sorted by {!Solution.compare_key};}
        {- pairwise non-inferior (Definition 6's frontier property).}} *)

val enabled : unit -> bool

(** Programmatic override, used by tests. *)
val set_enabled : bool -> unit

(** [check ~name sols] returns [sols]; when enabled, first asserts both
    invariants and raises [Invalid_argument] naming [name] (the curve
    operation) on a violation.  O(n²) when enabled. *)
val check : name:string -> 'a Solution.t list -> 'a Solution.t list

(** Sortedness only — O(n), cheap enough for the per-insertion hot path
    ({!Curve.add}). *)
val check_sorted : name:string -> 'a Solution.t list -> 'a Solution.t list

(** Array flavours of the same two checks, used by the array-backed
    curve kernel so verification never round-trips through a list. *)
val check_arr : name:string -> 'a Solution.t array -> 'a Solution.t array

val check_sorted_arr :
  name:string -> 'a Solution.t array -> 'a Solution.t array
