let enabled_ref =
  ref
    (match Sys.getenv_opt "MERLIN_CHECK" with
     | Some "1" -> true
     | Some _ | None -> false)

let enabled () = !enabled_ref

let set_enabled b = enabled_ref := b

let fail ~name msg =
  invalid_arg (Printf.sprintf "Contract.check: %s: %s" name msg)

let strictly_dominates a b =
  Solution.dominates a b && Solution.compare_key a b <> 0

let verify_sorted ~name sols =
  let rec sorted = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
      if Solution.compare_key a b >= 0 then
        fail ~name "solutions out of compare_key order";
      sorted rest
  in
  sorted sols

let verify_frontier ~name sols =
  let rec frontier = function
    | [] -> ()
    | s :: rest ->
      List.iter
        (fun x ->
           if strictly_dominates s x || strictly_dominates x s then
             fail ~name "curve holds an inferior solution")
        rest;
      frontier rest
  in
  frontier sols

(* O(n): cheap enough to run after every [Curve.add] (curve construction
   stays quadratic, not cubic, under MERLIN_CHECK=1). *)
let check_sorted ~name sols =
  if !enabled_ref then verify_sorted ~name sols;
  sols

(* O(n^2): the full invariant, for the bulk operations. *)
let check ~name sols =
  if !enabled_ref then begin
    verify_sorted ~name sols;
    verify_frontier ~name sols
  end;
  sols

let verify_sorted_arr ~name sols =
  for i = 0 to Array.length sols - 2 do
    if Solution.compare_key sols.(i) sols.(i + 1) >= 0 then
      fail ~name "solutions out of compare_key order"
  done

(* Requires [sols] strictly sorted by compare_key ([check_arr] runs
   [verify_sorted_arr] first).  Under that order an element can only be
   strictly dominated by an earlier one, so a single (load, area)
   minima-staircase sweep — the same structure [Curve.Builder.build]
   prunes with — answers every dominance query: O(n log n) per check
   instead of the former pairwise O(n^2) scan, which made contract-mode
   runs quadratic per join. *)
let verify_frontier_arr ~name sols =
  let n = Array.length sols in
  let st_load = Float.Array.create n in
  let st_area = Float.Array.create n in
  let st_len = ref 0 in
  for i = 0 to n - 1 do
    let l = sols.(i).Solution.load and a = sols.(i).Solution.area in
    let p =
      let lo = ref 0 and hi = ref !st_len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Float.Array.get st_load mid <= l then lo := mid + 1 else hi := mid
      done;
      !lo - 1
    in
    if p >= 0 && Float.Array.get st_area p <= a then
      fail ~name "curve holds an inferior solution";
    let q = if p >= 0 && Float.Array.get st_load p = l then p else p + 1 in
    let r = ref q in
    while !r < !st_len && Float.Array.get st_area !r >= a do incr r done;
    let removed = !r - q in
    if removed = 0 then begin
      Float.Array.blit st_load q st_load (q + 1) (!st_len - q);
      Float.Array.blit st_area q st_area (q + 1) (!st_len - q);
      incr st_len
    end
    else if removed > 1 then begin
      Float.Array.blit st_load !r st_load (q + 1) (!st_len - !r);
      Float.Array.blit st_area !r st_area (q + 1) (!st_len - !r);
      st_len := !st_len - removed + 1
    end;
    Float.Array.set st_load q l;
    Float.Array.set st_area q a
  done

let check_sorted_arr ~name sols =
  if !enabled_ref then verify_sorted_arr ~name sols;
  sols

let check_arr ~name sols =
  if !enabled_ref then begin
    verify_sorted_arr ~name sols;
    verify_frontier_arr ~name sols
  end;
  sols
