let enabled_ref =
  ref
    (match Sys.getenv_opt "MERLIN_CHECK" with
     | Some "1" -> true
     | Some _ | None -> false)

let enabled () = !enabled_ref

let set_enabled b = enabled_ref := b

let fail ~name msg =
  invalid_arg (Printf.sprintf "Contract.check: %s: %s" name msg)

let strictly_dominates a b =
  Solution.dominates a b && Solution.compare_key a b <> 0

let verify_sorted ~name sols =
  let rec sorted = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
      if Solution.compare_key a b >= 0 then
        fail ~name "solutions out of compare_key order";
      sorted rest
  in
  sorted sols

let verify_frontier ~name sols =
  let rec frontier = function
    | [] -> ()
    | s :: rest ->
      List.iter
        (fun x ->
           if strictly_dominates s x || strictly_dominates x s then
             fail ~name "curve holds an inferior solution")
        rest;
      frontier rest
  in
  frontier sols

(* O(n): cheap enough to run after every [Curve.add] (curve construction
   stays quadratic, not cubic, under MERLIN_CHECK=1). *)
let check_sorted ~name sols =
  if !enabled_ref then verify_sorted ~name sols;
  sols

(* O(n^2): the full invariant, for the bulk operations. *)
let check ~name sols =
  if !enabled_ref then begin
    verify_sorted ~name sols;
    verify_frontier ~name sols
  end;
  sols

let verify_sorted_arr ~name sols =
  for i = 0 to Array.length sols - 2 do
    if Solution.compare_key sols.(i) sols.(i + 1) >= 0 then
      fail ~name "solutions out of compare_key order"
  done

let verify_frontier_arr ~name sols =
  let n = Array.length sols in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if
        strictly_dominates sols.(i) sols.(j)
        || strictly_dominates sols.(j) sols.(i)
      then fail ~name "curve holds an inferior solution"
    done
  done

let check_sorted_arr ~name sols =
  if !enabled_ref then verify_sorted_arr ~name sols;
  sols

let check_arr ~name sols =
  if !enabled_ref then begin
    verify_sorted_arr ~name sols;
    verify_frontier_arr ~name sols
  end;
  sols
