open Merlin_geometry
open Merlin_tech
open Merlin_net
open Merlin_curves
open Merlin_order
open Merlin_core

let candidate_set ?(limit = 40) (net : Net.t) =
  Array.of_list (Hanan.reduced (Net.terminals net) ~limit)

let curve ~tech ?(max_curve = 12) ?(bbox_slack = 0.4) ~candidates ~order
    (net : Net.t) =
  if not (Order.is_permutation order) || Order.length order <> Net.n_sinks net
  then invalid_arg "Ptree.curve: bad order";
  let k = Array.length candidates in
  let source_index =
    let rec find p =
      if p >= k then invalid_arg "Ptree.curve: source not in candidates"
      else if Point.equal candidates.(p) net.Net.source then p
      else find (p + 1)
    in
    find 0
  in
  let active =
    Array.init k (fun i ->
        if i = 0 then source_index
        else if i <= source_index then i - 1
        else i)
  in
  let terminals =
    Array.map (fun id -> Star_ptree.Sink_term (Net.sink net id)) order
  in
  let per_candidate =
    Star_ptree.run ~tech ~buffers:[||] ~trials:1 ~max_curve
      ~grids:(0.0, 0.0, 0.0) ~bbox_slack ~candidates ~active ~terminals ()
  in
  let bld = Curve.Builder.create () in
  Array.iter
    (Curve.iter (fun sol ->
       let at_source = Build.extend_wire tech ~to_:net.Net.source sol in
       let gate = Delay_model.delay net.Net.driver ~load:at_source.Solution.load in
       Curve.Builder.push bld
         ~req:(at_source.Solution.req -. gate)
         ~load:at_source.Solution.load ~area:at_source.Solution.area
         at_source.Solution.data))
    per_candidate;
  Curve.Builder.build ~name:"Ptree.to_driver" bld

let route ~tech ?max_curve ?candidates ?order (net : Net.t) =
  let candidates =
    match candidates with Some c -> c | None -> candidate_set net
  in
  let order = match order with Some o -> o | None -> Tsp.order net in
  let c = curve ~tech ?max_curve ~candidates ~order net in
  match Curve.best_req c with
  | Some sol -> sol.Solution.data.Build.tree
  | None -> assert false (* nonempty net always yields a routing *)
