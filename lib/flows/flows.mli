(** The experimental setups of the paper's Section IV behind one entry
    point, each taking a net to a buffered routing tree:

    - Flow I ([Lttree_ptree]): fanout optimization with LTTREE
      (required-time sink order) followed by PTREE routing of every
      level (TSP order), buffers embedded at the center of mass of the
      sinks they drive.
    - Flow II ([Ptree_vg]): PTREE routing of the whole net (TSP order)
      followed by van Ginneken buffer insertion on the fixed tree.
    - Flow III ([Merlin]): MERLIN hierarchical buffered routing
      generation under a {!Merlin_core.Objective.t}.
    - Flow IV ([Hier]): two-level hierarchical decomposition for
      100–2000-sink nets ({!Merlin_hier.Hier}) — cluster the sinks,
      route every cluster with a flat [inner] flow (farmed across the
      {!Merlin_exec.Pool} when one is given), route the cluster roots
      as pseudo-sinks with the same flow, stitch and re-verify.

    All flows report the same figures of merit, measured with the same
    Elmore/4-parameter evaluator. *)

open Merlin_tech
open Merlin_net
open Merlin_rtree

type metrics = {
  flow : string;
  area : float;        (** total buffer area, 1000 lambda^2 *)
  delay : float;       (** net delay (max sink req - root req), ps *)
  root_req : float;    (** required time at the driver input, ps *)
  runtime : float;     (** wall-clock seconds *)
  n_buffers : int;
  wirelength : int;    (** grid units *)
  loops : int;         (** MERLIN iterations (1 for flows I and II;
                           summed over all parts for flow IV) *)
  clusters : int;      (** flow IV cluster count; 0 for the flat flows *)
  levels : int;        (** flow IV decomposition depth ({!Merlin_hier.Hier}:
                           1 = flat, 2 = clusters + flat top, 3+ = the
                           top net was decomposed again); 0 for the
                           flat flows *)
  cluster_sizes : int list;  (** flow IV sinks per first-level cluster,
                                 in cluster order; [] for the flat
                                 flows *)
  tree : Rtree.t;
}

(** Which flow to run, with its knobs.  [Merlin.cfg = None] picks
    {!Merlin_core.Config.scaled} per net. *)
type algo =
  | Lttree_ptree of { max_fanout : int }
  | Ptree_vg of { refine_seg : int option }
  | Merlin of {
      cfg : Merlin_core.Config.t option;
      objective : Merlin_core.Objective.t;
    }
  | Hier of {
      cluster : Merlin_hier.Cluster.config;
      inner : algo;  (** the flat flow run per cluster and at the top
                         level; must not itself be [Hier] *)
    }

(** A complete, self-contained routing request: the algorithm plus the
    technology and buffer library it runs against.  This is the unit
    the serving layer fingerprints and caches. *)
type spec = {
  tech : Tech.t;
  buffers : Buffer_lib.t;
  algo : algo;
}

(** Tight MERLIN knobs used as the hierarchical flow's default [inner]
    configuration: a hier run pays the inner flow once per cluster, so
    the default trades per-cluster quality for speed (the top level
    re-optimizes over cluster roots). *)
val hier_merlin_cfg : Merlin_core.Config.t

(** [default_algo name] maps the CLI/wire flow names ["lttree-ptree"],
    ["ptree-vg"], ["merlin"] and ["hier"] to an {!algo} with default
    knobs. *)
val default_algo : string -> algo option

(** Raised by {!run} when a constrained MERLIN objective is infeasible
    on the final solution curve. *)
exception Infeasible of string

(** [run ?pool spec net] — the single entry point all front ends
    (CLI, bench, circuit driver, serving daemon) go through.  [?pool]
    only affects where flow IV routes its clusters (never the result:
    hier output is bit-identical with and without a pool); the flat
    flows ignore it.  Raises [Invalid_argument] on a [Hier] spec whose
    [inner] is itself [Hier]. *)
val run : ?pool:Merlin_exec.Pool.t -> spec -> Net.t -> metrics

(** [wire_metrics ?with_tree m] converts to the shared wire schema
    ({!Merlin_report.Metrics}); the routing tree is omitted unless
    [with_tree]. *)
val wire_metrics : ?with_tree:bool -> metrics -> Merlin_report.Metrics.t

(** The three flat flows on one net, in order I, II, III. *)
val all :
  tech:Tech.t ->
  buffers:Buffer_lib.t ->
  ?cfg3:Merlin_core.Config.t ->
  Net.t ->
  metrics list
