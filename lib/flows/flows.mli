(** The experimental setups of the paper's Section IV behind one entry
    point, each taking a net to a buffered routing tree:

    - Flow I ([Lttree_ptree]): fanout optimization with LTTREE
      (required-time sink order) followed by PTREE routing of every
      level (TSP order), buffers embedded at the center of mass of the
      sinks they drive.
    - Flow II ([Ptree_vg]): PTREE routing of the whole net (TSP order)
      followed by van Ginneken buffer insertion on the fixed tree.
    - Flow III ([Merlin]): MERLIN hierarchical buffered routing
      generation under a {!Merlin_core.Objective.t}.

    All flows report the same figures of merit, measured with the same
    Elmore/4-parameter evaluator. *)

open Merlin_tech
open Merlin_net
open Merlin_rtree

type metrics = {
  flow : string;
  area : float;        (** total buffer area, 1000 lambda^2 *)
  delay : float;       (** net delay (max sink req - root req), ps *)
  root_req : float;    (** required time at the driver input, ps *)
  runtime : float;     (** wall-clock seconds *)
  n_buffers : int;
  wirelength : int;    (** grid units *)
  loops : int;         (** MERLIN iterations (1 for flows I and II) *)
  tree : Rtree.t;
}

(** Which flow to run, with its knobs.  [Merlin.cfg = None] picks
    {!Merlin_core.Config.scaled} per net. *)
type algo =
  | Lttree_ptree of { max_fanout : int }
  | Ptree_vg of { refine_seg : int option }
  | Merlin of {
      cfg : Merlin_core.Config.t option;
      objective : Merlin_core.Objective.t;
    }

(** A complete, self-contained routing request: the algorithm plus the
    technology and buffer library it runs against.  This is the unit
    the serving layer fingerprints and caches. *)
type spec = {
  tech : Tech.t;
  buffers : Buffer_lib.t;
  algo : algo;
}

(** [default_algo name] maps the CLI/wire flow names ["lttree-ptree"],
    ["ptree-vg"] and ["merlin"] to an {!algo} with default knobs. *)
val default_algo : string -> algo option

(** Raised by {!run} when a constrained MERLIN objective is infeasible
    on the final solution curve. *)
exception Infeasible of string

(** [run spec net] — the single entry point all front ends
    (CLI, bench, circuit driver, serving daemon) go through. *)
val run : spec -> Net.t -> metrics

(** [wire_metrics ?with_tree m] converts to the shared wire schema
    ({!Merlin_report.Metrics}); the routing tree is omitted unless
    [with_tree]. *)
val wire_metrics : ?with_tree:bool -> metrics -> Merlin_report.Metrics.t

(** [flow1 ~tech ~buffers net] — LTTREE + PTREE. [max_fanout] bounds the
    LT-tree level width (default 10).
    @deprecated Use {!run} with [Lttree_ptree]. *)
val flow1 :
  tech:Tech.t -> buffers:Buffer_lib.t -> ?max_fanout:int -> Net.t -> metrics

(** [flow2 ~tech ~buffers net] — PTREE + van Ginneken.  As in the paper,
    buffer sites are the fixed routing's own Steiner points; [refine_seg]
    optionally splits long edges (a stronger flow than the paper's
    Setup II).
    @deprecated Use {!run} with [Ptree_vg]. *)
val flow2 :
  tech:Tech.t -> buffers:Buffer_lib.t -> ?refine_seg:int -> Net.t -> metrics

(** [flow3 ~tech ~buffers net] — MERLIN, with {!Merlin_core.Config.scaled}
    knobs by default and the [Best_req] objective.
    @deprecated Use {!run} with [Merlin]. *)
val flow3 :
  tech:Tech.t ->
  buffers:Buffer_lib.t ->
  ?cfg:Merlin_core.Config.t ->
  Net.t ->
  metrics

(** All three flows on one net, in order I, II, III. *)
val all :
  tech:Tech.t ->
  buffers:Buffer_lib.t ->
  ?cfg3:Merlin_core.Config.t ->
  Net.t ->
  metrics list
