open Merlin_geometry
open Merlin_tech
open Merlin_net
open Merlin_rtree

type metrics = {
  flow : string;
  area : float;
  delay : float;
  root_req : float;
  runtime : float;
  n_buffers : int;
  wirelength : int;
  loops : int;
  clusters : int;
  levels : int;
  cluster_sizes : int list;
  tree : Rtree.t;
}

(* Wall-clock runtimes come from the monotonic clock: gettimeofday is
   NTP-step sensitive and would corrupt the runtime/speedup columns. *)
let timed f = Merlin_exec.Clock.timed f

let metrics_of_tree ~flow ~tech ~loops ?(clusters = 0) ?(levels = 0)
    ?(cluster_sizes = []) ~runtime (net : Net.t) tree =
  let ev = Eval.net tech net tree in
  { flow;
    area = ev.Eval.area;
    delay = ev.Eval.net_delay;
    root_req = ev.Eval.root_req;
    runtime;
    n_buffers = Rtree.n_buffers tree;
    wirelength = ev.Eval.wirelength;
    loops;
    clusters;
    levels;
    cluster_sizes;
    tree }

(* ---------- Flow I: LTTREE + PTREE ---------- *)

(* Embed one LT-tree level: route [directs] plus (optionally) the next
   chain link — already embedded, presented as a pseudo-sink — from
   [source] driven by [driver_model].  The routed pseudo-leaf is then
   substituted by the actual subtree. *)
let route_level ~tech ~source ~driver_model ~directs ~sub =
  let pseudo_id = List.length directs in
  let local_sinks =
    List.mapi (fun i s -> Sink.make ~id:i ~pt:s.Sink.pt ~cap:s.Sink.cap ~req:s.Sink.req)
      directs
  in
  let local_sinks, substitute =
    match sub with
    | None -> (local_sinks, None)
    | Some (subtree, sub_req, sub_load) ->
      let pseudo =
        Sink.make ~id:pseudo_id ~pt:(Rtree.attach_point subtree) ~cap:sub_load
          ~req:sub_req
      in
      (local_sinks @ [ pseudo ], Some subtree)
  in
  let local_net =
    Net.make ~name:"lt-level" ~source ~driver:driver_model local_sinks
  in
  let routed = Merlin_ptree.Ptree.route ~tech local_net in
  (* Map local leaves back: real sinks to the originals, the pseudo sink
     to the embedded chain subtree. *)
  let original = Array.of_list directs in
  let rec restore = function
    | Rtree.Leaf s ->
      if s.Sink.id = pseudo_id then
        (match substitute with
         | Some subtree -> subtree
         | None ->
           invalid_arg "Flows.route_level: pseudo sink without a subtree")
      else Rtree.Leaf original.(s.Sink.id)
    | Rtree.Node n ->
      Rtree.Node { n with Rtree.children = List.map restore n.Rtree.children }
  in
  restore routed

let run_flow1 ~tech ~buffers ~max_fanout (net : Net.t) =
  let build () =
    let sinks = Array.to_list net.Net.sinks in
    let best =
      Merlin_lttree.Lttree.best ~buffers ~max_fanout ~driver:net.Net.driver
        sinks
    in
    let plan = best.Merlin_curves.Solution.data in
    let rec embed_chain (c : Merlin_lttree.Lttree.chain) =
      let sub =
        match c.Merlin_lttree.Lttree.chain with
        | None -> None
        | Some next ->
          let subtree = embed_chain next in
          let ev = Eval.subtree tech subtree in
          Some (subtree, ev.Eval.req, ev.Eval.load)
      in
      (* Place the link's buffer at the center of mass of what it directly
         drives: its own sinks and the next link's position. *)
      let anchor_pts =
        List.map (fun s -> s.Sink.pt) c.Merlin_lttree.Lttree.directs
        @ (match sub with
           | None -> []
           | Some (subtree, _, _) -> [ Rtree.attach_point subtree ])
      in
      let pos = Point.center_of_mass anchor_pts in
      let routed =
        route_level ~tech ~source:pos
          ~driver_model:c.Merlin_lttree.Lttree.buffer.Buffer_lib.model
          ~directs:c.Merlin_lttree.Lttree.directs ~sub
      in
      (* The level's buffer sits at [pos] and drives the routed level. *)
      Rtree.node ~buffer:c.Merlin_lttree.Lttree.buffer pos [ routed ]
    in
    let sub =
      match plan.Merlin_lttree.Lttree.root_chain with
      | None -> None
      | Some c ->
        let subtree = embed_chain c in
        let ev = Eval.subtree tech subtree in
        Some (subtree, ev.Eval.req, ev.Eval.load)
    in
    route_level ~tech ~source:net.Net.source ~driver_model:net.Net.driver
      ~directs:plan.Merlin_lttree.Lttree.root_directs ~sub
  in
  let tree, runtime = timed build in
  metrics_of_tree ~flow:"I:LTTREE+PTREE" ~tech ~loops:1 ~runtime net tree

(* ---------- Flow II: PTREE + van Ginneken ---------- *)

let run_flow2 ~tech ~buffers ~refine_seg (net : Net.t) =
  (* The paper's Flow II applies [Gi90] to the fixed PTREE routing: buffer
     sites are the routing's own Steiner/branch points.  Pass [refine_seg]
     to additionally split long edges (stronger than the paper's setup). *)
  let build () =
    let routed = Merlin_ptree.Ptree.route ~tech net in
    Merlin_ginneken.Van_ginneken.insert ~tech ~buffers ?refine_seg net routed
  in
  let tree, runtime = timed build in
  metrics_of_tree ~flow:"II:PTREE+VG" ~tech ~loops:1 ~runtime net tree

(* ---------- Flow III: MERLIN ---------- *)

exception Infeasible of string

let run_flow3 ~tech ~buffers ~cfg ~objective (net : Net.t) =
  let cfg =
    match cfg with
    | Some c -> c
    | None -> Merlin_core.Config.scaled (Net.n_sinks net)
  in
  let out, runtime =
    timed (fun () -> Merlin_core.Merlin.run ~cfg ~objective ~tech ~buffers net)
  in
  match out with
  | None ->
    (* Only the constrained objectives can be infeasible; Best_req
       always yields a curve point. *)
    raise
      (Infeasible
         (Format.asprintf
            "objective %a infeasible on the final solution curve"
            Merlin_core.Objective.pp objective))
  | Some out ->
    let chosen =
      match objective with
      | Merlin_core.Objective.Best_req ->
        (* The paper extracts "the solution with the best trade-off
           between required time and total buffer area": take the
           cheapest solution within two quantisation buckets of the best
           required time. *)
        let curve = out.Merlin_core.Merlin.curve in
        let best = out.Merlin_core.Merlin.best in
        let slack = 2.0 *. cfg.Merlin_core.Config.quant_req in
        (match
           Merlin_curves.Curve.best_min_area curve
             ~req:(best.Merlin_curves.Solution.req -. slack)
         with
         | Some s -> s
         | None -> best)
      | Merlin_core.Objective.Max_req_under_area _
      | Merlin_core.Objective.Min_area_over_req _ ->
        (* A constrained objective already names its curve point. *)
        out.Merlin_core.Merlin.best
    in
    metrics_of_tree ~flow:"III:MERLIN" ~tech
      ~loops:out.Merlin_core.Merlin.loops ~runtime net
      chosen.Merlin_curves.Solution.data.Merlin_core.Build.tree

(* ---------- The unified entry point ---------- *)

type algo =
  | Lttree_ptree of { max_fanout : int }
  | Ptree_vg of { refine_seg : int option }
  | Merlin of {
      cfg : Merlin_core.Config.t option;
      objective : Merlin_core.Objective.t;
    }
  | Hier of {
      cluster : Merlin_hier.Cluster.config;
      inner : algo;
    }

type spec = {
  tech : Tech.t;
  buffers : Buffer_lib.t;
  algo : algo;
}

(* Per-cluster MERLIN knobs for the hierarchical flow.  A hier run pays
   the inner flow once per cluster (dozens of times on a 1000-sink
   net), so the default leans hard toward speed: small frontier, few
   candidates, coarse quantisation, two loops.  The cluster trees only
   need to be locally good — the top level re-optimizes over their
   roots. *)
let hier_merlin_cfg =
  { Merlin_core.Config.default with
    Merlin_core.Config.alpha = 4;
    max_curve = 3;
    candidate_limit = 4;
    buffer_trials = 2;
    quant_req = 50.0;
    quant_load = 30.0;
    quant_area = 20.0;
    max_iters = 1 }

let default_algo = function
  | "lttree-ptree" -> Some (Lttree_ptree { max_fanout = 10 })
  | "ptree-vg" -> Some (Ptree_vg { refine_seg = None })
  | "merlin" ->
    Some (Merlin { cfg = None; objective = Merlin_core.Objective.Best_req })
  | "hier" ->
    Some
      (Hier
         { cluster = Merlin_hier.Cluster.default;
           inner =
             Merlin
               { cfg = Some hier_merlin_cfg;
                 objective = Merlin_core.Objective.Best_req } })
  | _ -> None

(* ---------- Flow IV: two-level hierarchical ---------- *)

let rec run ?pool ({ tech; buffers; algo } as spec) net =
  match algo with
  | Lttree_ptree { max_fanout } -> run_flow1 ~tech ~buffers ~max_fanout net
  | Ptree_vg { refine_seg } -> run_flow2 ~tech ~buffers ~refine_seg net
  | Merlin { cfg; objective } -> run_flow3 ~tech ~buffers ~cfg ~objective net
  | Hier { cluster; inner } ->
    (match inner with
     | Hier _ -> invalid_arg "Flows.run: hier inner flow must be flat"
     | Lttree_ptree _ | Ptree_vg _ | Merlin _ -> ());
    let inner_spec = { spec with algo = inner } in
    let h, runtime =
      timed (fun () ->
          Merlin_hier.Hier.route ~tech ~cluster ?pool
            (* The inner run's only nondeterminism is its runtime
               telemetry (Clock.timed); the routed tree and every other
               metric are bit-identical at any -j, which is what the
               hier determinism qcheck suite pins down. *)
            ~route:(fun _part sub -> run inner_spec sub) (* check: nondet-ok *)
            ~tree_of:(fun (m : metrics) -> m.tree)
            net)
    in
    (* [parts] already contains every level's routes including the
       root-most one — sum once. *)
    let loops =
      Array.fold_left
        (fun acc (m : metrics) -> acc + m.loops)
        0 h.Merlin_hier.Hier.parts
    in
    metrics_of_tree ~flow:"IV:HIER" ~tech ~loops
      ~clusters:h.Merlin_hier.Hier.n_clusters
      ~levels:h.Merlin_hier.Hier.levels
      ~cluster_sizes:(Array.to_list h.Merlin_hier.Hier.sizes)
      ~runtime net h.Merlin_hier.Hier.tree

let wire_metrics ?(with_tree = false) (m : metrics) =
  { Merlin_report.Metrics.flow = m.flow;
    area = m.area;
    delay = m.delay;
    root_req = m.root_req;
    runtime = m.runtime;
    n_buffers = m.n_buffers;
    wirelength = m.wirelength;
    loops = m.loops;
    clusters = m.clusters;
    levels = m.levels;
    cluster_sizes = m.cluster_sizes;
    tree = (if with_tree then Some m.tree else None) }

let all ~tech ~buffers ?cfg3 net =
  let on algo = run { tech; buffers; algo } net in
  [ on (Lttree_ptree { max_fanout = 10 });
    on (Ptree_vg { refine_seg = None });
    on (Merlin { cfg = cfg3; objective = Merlin_core.Objective.Best_req }) ]
