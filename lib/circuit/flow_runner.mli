(** Full-circuit experiment driver (Table 2).

    For a placed circuit, applies one of the paper's three flows to every
    net (most critical first, required times refreshed from STA between
    nets), then reports post-layout area, critical-path delay and total
    runtime — the three columns of Table 2.

    With [jobs > 1] (or an external pool) nets are optimized in
    {e speculative waves} on the execution engine: a wave of [jobs] nets
    is optimized in parallel against the frozen report, then committed
    in the sequential order, re-running any net whose required times
    were moved by an earlier commit of the same wave.  The result is
    byte-identical to the sequential path for every [jobs]; parallelism
    only changes how much speculative work is wasted. *)

open Merlin_tech

type flow = Flow1 | Flow2 | Flow3 | Flow4
(** [Flow4] is the two-level hierarchical flow (MERLIN per cluster, a
    buffered tree over cluster roots; see {!Merlin_hier.Hier}) — nets
    small enough for one cluster reduce to [Flow3].  Its results are
    verified against the same STA refresh loop as the flat flows. *)

val flow_name : flow -> string

type result = {
  circuit : string;
  flow : flow;
  area : float;          (** gates + buffers, 1000 lambda^2 *)
  delay : float;         (** post-optimization critical path, ps *)
  runtime : float;       (** monotonic wall-clock seconds for the flow *)
  n_buffers : int;
  wirelength : int;
  nets_optimized : int;
  nets_timed_out : int;  (** nets skipped by [net_timeout_s] (0 without it) *)
}

(** [run ~tech ~buffers ~flow netlist] — the netlist must be placed.
    [min_sinks] skips nets with fewer sinks (default 2: single-sink nets
    keep their direct wire).  [merlin_cfg] overrides Flow-3 knobs
    (default {!Merlin_core.Config.scaled} per net, capped at the paper's
    Table-2 setting of at most 3 loops).

    [jobs] (default 1) sets the wave width and, when no [pool] is
    given, the worker-domain count of a pool created for the call.
    Pass [pool] to reuse an external {!Merlin_exec.Pool} (its
    telemetry then accumulates across runs); [jobs]/[Pool.size] set
    the wave width.  [net_timeout_s] bounds each net's optimization:
    an expired net keeps its star routing and is counted in
    [nets_timed_out] (this trades determinism for robustness — leave
    it unset for reproducible results). *)
val run :
  tech:Tech.t ->
  buffers:Buffer_lib.t ->
  flow:flow ->
  ?min_sinks:int ->
  ?merlin_cfg:(int -> Merlin_core.Config.t) ->
  ?jobs:int ->
  ?pool:Merlin_exec.Pool.t ->
  ?net_timeout_s:float ->
  Netlist.t ->
  result

(** [nets ~tech netlist] extracts the multi-sink nets of a placed
    circuit from the initial (star-routed) STA snapshot, in node order
    — the per-net inputs a batch serving request carries.  Names are
    the STA's ["circuit#nN"], stable across runs and usable as ECO
    manifest keys.  [min_sinks] as in {!run} (default 2). *)
val nets :
  tech:Tech.t ->
  ?min_sinks:int ->
  Netlist.t ->
  (string * Merlin_net.Net.t) list

(** All three flows on one circuit. *)
val run_all :
  tech:Tech.t ->
  buffers:Buffer_lib.t ->
  ?min_sinks:int ->
  ?jobs:int ->
  ?pool:Merlin_exec.Pool.t ->
  Netlist.t ->
  result list
