open Merlin_geometry

type gate = { kind : Gate.kind; fanins : int array }

type t = {
  name : string;
  n_inputs : int;
  gates : gate array;
  outputs : int list;
  positions : Point.t array;
}

let n_nodes t = t.n_inputs + Array.length t.gates

let node_of_gate t g = t.n_inputs + g

let gate_of_node t node =
  if node >= t.n_inputs then Some (node - t.n_inputs) else None

let fanouts t =
  let fo = Array.make (n_nodes t) [] in
  Array.iteri
    (fun g gate ->
       Array.iter (fun node -> fo.(node) <- g :: fo.(node)) gate.fanins)
    t.gates;
  Array.map List.rev fo

let gate_area t =
  Array.fold_left (fun acc g -> acc +. g.kind.Gate.area) 0.0 t.gates

let validate t =
  if t.n_inputs < 1 then invalid_arg "Netlist.validate: no inputs";
  Array.iteri
    (fun g gate ->
       if Array.length gate.fanins <> gate.kind.Gate.n_inputs then
         invalid_arg (Printf.sprintf "Netlist.validate: gate %d arity mismatch" g);
       Array.iter
         (fun node ->
            if node < 0 || node >= t.n_inputs + g then
              invalid_arg
                (Printf.sprintf "Netlist.validate: gate %d fanin %d out of order" g node))
         gate.fanins)
    t.gates;
  List.iter
    (fun node ->
       if node < 0 || node >= n_nodes t then
         invalid_arg "Netlist.validate: bad output node")
    t.outputs;
  if Array.length t.positions <> n_nodes t then
    invalid_arg "Netlist.validate: positions length mismatch"

let pp_stats ppf t =
  Format.fprintf ppf "%s: %d inputs, %d gates, %d outputs, area=%.0f" t.name
    t.n_inputs (Array.length t.gates) (List.length t.outputs) (gate_area t)
