open Merlin_net
module Pool = Merlin_exec.Pool
module Clock = Merlin_exec.Clock

type flow = Flow1 | Flow2 | Flow3 | Flow4

let flow_name = function
  | Flow1 -> "I:LTTREE+PTREE"
  | Flow2 -> "II:PTREE+VG"
  | Flow3 -> "III:MERLIN"
  | Flow4 -> "IV:HIER"

type result = {
  circuit : string;
  flow : flow;
  area : float;
  delay : float;
  runtime : float;
  n_buffers : int;
  wirelength : int;
  nets_optimized : int;
  nets_timed_out : int;
}

let default_merlin_cfg n =
  let cfg = Merlin_core.Config.scaled n in
  (* Table 2 setup: at most 3 MERLIN loops per net, alpha = 10. *)
  { cfg with
    Merlin_core.Config.max_iters = min 3 cfg.Merlin_core.Config.max_iters;
    alpha = min 10 (max 2 cfg.Merlin_core.Config.alpha) }

let optimize_net ~tech ~buffers ~flow ~merlin_cfg net =
  let algo =
    match flow with
    | Flow1 -> Merlin_flows.Flows.Lttree_ptree { max_fanout = 10 }
    | Flow2 -> Merlin_flows.Flows.Ptree_vg { refine_seg = None }
    | Flow3 ->
      Merlin_flows.Flows.Merlin
        { cfg = Some (merlin_cfg (Net.n_sinks net));
          objective = Merlin_core.Objective.Best_req }
    | Flow4 ->
      (* Two-level decomposition with tight MERLIN knobs per cluster.
         Small nets cluster to k = 1 and reduce to a fast flat MERLIN
         run; the knobs are per-cluster, not per-net. *)
      Merlin_flows.Flows.Hier
        { cluster = Merlin_hier.Cluster.default;
          inner =
            Merlin_flows.Flows.Merlin
              { cfg = Some Merlin_flows.Flows.hier_merlin_cfg;
                objective = Merlin_core.Objective.Best_req } }
  in
  let m =
    Merlin_flows.Flows.run { Merlin_flows.Flows.tech; buffers; algo } net
  in
  m.Merlin_flows.Flows.tree

(* The optimization input for a node is a pure function of the frozen
   STA report; between reports only the sinks' required times can move
   (positions and loads are netlist geometry).  Equal reqs therefore
   mean the speculative result equals what a fresh run would return. *)
let same_reqs (a : Net.t) (b : Net.t) =
  Array.length a.Net.sinks = Array.length b.Net.sinks
  && Array.for_all2
       (fun (sa : Sink.t) (sb : Sink.t) -> Float.equal sa.Sink.req sb.Sink.req)
       a.Net.sinks b.Net.sinks

let rec take_wave k acc = function
  | x :: rest when k > 0 -> take_wave (k - 1) (x :: acc) rest
  | rest -> (List.rev acc, rest)

let run ~tech ~buffers ~flow ?(min_sinks = 2) ?merlin_cfg ?(jobs = 1) ?pool
    ?net_timeout_s netlist =
  let merlin_cfg =
    match merlin_cfg with Some f -> f | None -> default_merlin_cfg
  in
  let jobs = max 1 jobs in
  let t0 = Clock.monotonic_s () in
  let sta = ref (Sta.init netlist) in
  let report = ref (Sta.analyse ~tech !sta) in
  (* Most critical nets first: order by driver slack. *)
  let nodes =
    List.init (Netlist.n_nodes netlist) (fun node -> node)
    |> List.filter (fun node ->
           List.length (Sta.sink_gates !sta node) >= min_sinks)
    |> List.sort
         (fun a b ->
            let slack r node = r.Sta.required.(node) -. r.Sta.ready.(node) in
            Float.compare (slack !report a) (slack !report b))
  in
  let optimized = ref 0 in
  let timed_out = ref 0 in
  let optimize net = optimize_net ~tech ~buffers ~flow ~merlin_cfg net in
  let commit node tree =
    sta := Sta.with_routing !sta ~node tree;
    incr optimized;
    (* Refresh timing so later nets see updated required times. *)
    report := Sta.analyse ~tech ~clock:!report.Sta.clock !sta
  in
  (match (pool, net_timeout_s) with
   | None, None when jobs = 1 ->
     (* The reference sequential path: one net at a time against a
        report refreshed after every commit. *)
     List.iter
       (fun node ->
          match Sta.net_for_optimization !sta !report node with
          | None -> ()
          | Some net -> commit node (optimize net))
       nodes
   | _ ->
     (* Speculative waves.  A wave of [jobs] nets is snapshot against
        the current report and optimized in parallel; commits then
        replay in the sequential order, and any net whose inputs were
        changed by an earlier commit in the same wave is re-run against
        the fresh report.  The output is therefore byte-identical to
        the sequential path for every [jobs]; speculation only decides
        how much parallel work is wasted, never the result. *)
     let run_in_pool pool =
       let wave_size = max jobs (max 1 (Pool.size pool)) in
       let optimize_budget p net =
         match net_timeout_s with
         | None -> Some (optimize net)
         | Some budget -> (
           match Pool.run_timeout p ~timeout_s:budget (fun () -> optimize net) with
           | Pool.Done tree -> Some tree
           | Pool.Timed_out ->
             incr timed_out;
             None
           | Pool.Failed exn -> raise exn)
       in
       let rec waves pending =
         match pending with
         | [] -> ()
         | pending ->
           let wave, rest = take_wave wave_size [] pending in
           let snap =
             List.filter_map
               (fun node ->
                  match Sta.net_for_optimization !sta !report node with
                  | None -> None
                  | Some net -> Some (node, net))
               wave
           in
           let speculated =
             match net_timeout_s with
             | None ->
               Pool.map ~chunk:1 pool
                 (fun (_, net) -> Some (optimize net))
                 snap
             | Some budget ->
               (* One future per net, awaited under its own budget from
                  the orchestrating caller; an expired net keeps its
                  star routing. *)
               let futs =
                 List.map
                   (fun (_, net) -> Pool.submit pool (fun () -> optimize net))
                   snap
               in
               List.map
                 (fun fut ->
                    match Pool.await_timeout ~timeout_s:budget fut with
                    | Pool.Done tree -> Some tree
                    | Pool.Timed_out ->
                      incr timed_out;
                      None
                    | Pool.Failed exn -> raise exn)
                 futs
           in
           List.iter2
             (fun (node, net) outcome ->
                match outcome with
                | None -> () (* timed out: net keeps its star routing *)
                | Some tree -> (
                  match Sta.net_for_optimization !sta !report node with
                  | None -> ()
                  | Some net' ->
                    if same_reqs net net' then commit node tree
                    else (
                      (* Stale speculation: an earlier commit moved this
                         net's required times.  Redo it exactly as the
                         sequential loop would have seen it. *)
                      match optimize_budget pool net' with
                      | Some tree' -> commit node tree'
                      | None -> ())))
             snap speculated;
           waves rest
       in
       waves nodes
     in
     (match pool with
      | Some p -> run_in_pool p
      | None ->
        Pool.with_pool ~domains:jobs (fun p -> run_in_pool p)));
  let final = Sta.analyse ~tech !sta in
  { circuit = netlist.Netlist.name;
    flow;
    area = Netlist.gate_area netlist +. Sta.total_buffer_area !sta;
    delay = final.Sta.critical;
    runtime = Clock.elapsed_s t0;
    n_buffers =
      Array.fold_left
        (fun acc r ->
           match r with
           | None -> acc
           | Some t -> acc + Merlin_rtree.Rtree.n_buffers t)
        0 !sta.Sta.routing;
    wirelength = Sta.total_wirelength !sta;
    nets_optimized = !optimized;
    nets_timed_out = !timed_out }

(* Net extraction for batch serving: the per-driver nets of the star
   STA snapshot, exactly as the sequential [run] loop would first see
   them, in node order.  Names come from [Sta.net_for_optimization]
   ("circuit#nN"), so they are stable across runs and usable as ECO
   manifest keys. *)
let nets ~tech ?(min_sinks = 2) netlist =
  let sta = Sta.init netlist in
  let report = Sta.analyse ~tech sta in
  List.init (Netlist.n_nodes netlist) (fun node -> node)
  |> List.filter (fun node ->
         List.length (Sta.sink_gates sta node) >= min_sinks)
  |> List.filter_map (fun node ->
         match Sta.net_for_optimization sta report node with
         | None -> None
         | Some net -> Some (net.Net.name, net))

let run_all ~tech ~buffers ?min_sinks ?jobs ?pool netlist =
  [ run ~tech ~buffers ~flow:Flow1 ?min_sinks ?jobs ?pool netlist;
    run ~tech ~buffers ~flow:Flow2 ?min_sinks ?jobs ?pool netlist;
    run ~tech ~buffers ~flow:Flow3 ?min_sinks ?jobs ?pool netlist ]
