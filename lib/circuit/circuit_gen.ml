open Merlin_geometry

let table2_specs =
  [ ("C1355", 3630.0, 8.18, 1276.0);
    ("C1908", 7768.0, 14.47, 2560.0);
    ("C2670", 9428.0, 12.40, 1699.0);
    ("C3540", 15762.0, 22.17, 5436.0);
    ("C432", 3574.0, 10.13, 1382.0);
    ("C6288", 28497.0, 52.94, 13547.0);
    ("C7552", 35189.0, 19.80, 9250.0);
    ("Alu4", 8191.0, 15.69, 2842.0);
    ("B9", 1210.0, 2.81, 271.0);
    ("Dalu", 10344.0, 18.59, 3465.0);
    ("Desa", 32388.0, 27.00, 19427.0);
    ("Duke2", 5499.0, 9.00, 2554.0);
    ("K2", 22823.0, 26.66, 5831.0);
    ("Rot", 8315.0, 7.80, 1572.0);
    ("T481", 8917.0, 10.12, 5239.0) ]

let no_positions ~n = Array.make n Point.origin

(* Layered random DAG: gates are assigned to levels; each gate reads from
   nodes at strictly lower levels, preferring recent ones (locality), which
   yields the long-and-narrow structure of mapped combinational logic and a
   realistic fanout distribution (most nets small, a few large). *)
let random ~seed ~n_gates ~n_inputs ~name =
  if n_gates < 1 || n_inputs < 2 then invalid_arg "Circuit_gen.random: n_gates < 1 || n_inputs < 2";
  let rng = Random.State.make [| seed; n_gates; n_inputs |] in
  let pick_arity () =
    match Random.State.int rng 10 with
    | 0 | 1 -> 1
    | 2 | 3 | 4 | 5 -> 2
    | 6 | 7 | 8 -> 3
    | _ -> 4
  in
  let gates =
    Array.init n_gates (fun g ->
        let avail = n_inputs + g in
        let arity = min (pick_arity ()) (min 4 avail) in
        let kind = Gate.pick ~rng ~n_inputs:arity in
        let pick_fanin () =
          (* Locality: half the picks come from the most recent quarter. *)
          if g > 8 && Random.State.bool rng then
            n_inputs + g - 1 - Random.State.int rng (max 1 (g / 4))
          else Random.State.int rng avail
        in
        let rec distinct acc k =
          if k = 0 then acc
          else
            let f = pick_fanin () in
            if List.mem f acc then distinct acc k
            else distinct (f :: acc) (k - 1)
        in
        { Netlist.kind; fanins = Array.of_list (distinct [] arity) })
  in
  (* Outputs: every gate output nobody reads, plus a few sampled others. *)
  let read = Array.make (n_inputs + n_gates) false in
  Array.iter
    (fun g -> Array.iter (fun f -> read.(f) <- true) g.Netlist.fanins)
    gates;
  let outputs = ref [] in
  for g = n_gates - 1 downto 0 do
    if not read.(n_inputs + g) then outputs := (n_inputs + g) :: !outputs
  done;
  let netlist =
    { Netlist.name;
      n_inputs;
      gates;
      outputs = !outputs;
      positions = no_positions ~n:(n_inputs + n_gates) }
  in
  Netlist.validate netlist;
  netlist

let generate ?(scale_down = 40) ~name () =
  let area =
    match List.assoc_opt name (List.map (fun (n, a, _, _) -> (n, a)) table2_specs) with
    | Some a -> a
    | None -> 8000.0
  in
  let avg_gate_area = 2.2 in
  let n_gates =
    max 30 (int_of_float (area /. avg_gate_area) / scale_down)
  in
  let n_inputs = max 4 (n_gates / 6) in
  random ~seed:(Hashtbl.hash name) ~n_gates ~n_inputs ~name
