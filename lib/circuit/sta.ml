open Merlin_tech
open Merlin_net
open Merlin_rtree

type t = {
  netlist : Netlist.t;
  routing : Rtree.t option array;
  gen : int;
}

(* Netlists are frozen once [init] validates them, so a generation id
   stamped at init time identifies the netlist for memoisation without
   resorting to physical equality.  Atomic: [init] may be called from
   several domains at once under the execution engine. *)
let generation = Atomic.make 0

let init netlist =
  Netlist.validate netlist;
  { netlist;
    routing = Array.make (Netlist.n_nodes netlist) None;
    gen = 1 + Atomic.fetch_and_add generation 1 }

let with_routing t ~node tree =
  let routing = Array.copy t.routing in
  routing.(node) <- Some tree;
  { t with routing }

let star_tree (net : Net.t) =
  Rtree.node net.Net.source
    (Array.to_list (Array.map Rtree.leaf net.Net.sinks))

let driver_model t node =
  match Netlist.gate_of_node t.netlist node with
  | None -> Gate.input_pad.Gate.model
  | Some g -> t.netlist.Netlist.gates.(g).Netlist.kind.Gate.model

(* Domain-local: concurrent STA over different netlists must not thrash
   (or tear) a shared memo slot. *)
let fanouts_memo : (int * int list array) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let sink_gates t node =
  let fo =
    match Domain.DLS.get fanouts_memo with
    | Some (gen, fo) when gen = t.gen -> fo
    | Some _ | None ->
      let fo = Netlist.fanouts t.netlist in
      Domain.DLS.set fanouts_memo (Some (t.gen, fo));
      fo
  in
  fo.(node)

(* The net of [node] with the given per-sink required times (0 when only
   arrival propagation is needed). *)
let net_with_reqs t node reqs =
  match sink_gates t node with
  | [] -> None
  | gates ->
    let sinks =
      List.mapi
        (fun i g ->
           let kind = t.netlist.Netlist.gates.(g).Netlist.kind in
           Sink.make ~id:i
             ~pt:t.netlist.Netlist.positions.(Netlist.node_of_gate t.netlist g)
             ~cap:kind.Gate.input_cap ~req:(reqs g))
        gates
    in
    Some
      (Net.make
         ~name:(Printf.sprintf "%s#n%d" t.netlist.Netlist.name node)
         ~source:t.netlist.Netlist.positions.(node)
         ~driver:(driver_model t node) sinks)

type report = {
  ready : float array;
  required : float array;
  critical : float;
  clock : float;
}

(* Delay from "driver ready" to each fanout pin (driver gate delay under
   the net load, plus the routed wire/buffer path). *)
let pin_delays ~tech t node =
  match net_with_reqs t node (fun _ -> 0.0) with
  | None -> []
  | Some net ->
    let tree =
      match t.routing.(node) with Some tree -> tree | None -> star_tree net
    in
    let arrivals =
      List.sort
        (fun (a, _) (b, _) -> Int.compare a b)
        (Eval.sink_arrivals tech net tree)
    in
    (* Sink id [i] is the [i]-th fanout gate by construction. *)
    List.map2 (fun g (_, d) -> (g, d)) (sink_gates t node) arrivals

(* A primary output pin: charge the driver a nominal pad load on top of
   whatever its net does. *)
let po_delay t node ready =
  ready +. Delay_model.delay (driver_model t node) ~load:15.0

let analyse ?clock ~tech t =
  let nl = t.netlist in
  let n = Netlist.n_nodes nl in
  let ready = Array.make n 0.0 in
  let pin_time = Hashtbl.create 64 in
  (* pin_time (driver_node, sink_gate) = arrival at that pin *)
  for node = 0 to n - 1 do
    let r =
      match Netlist.gate_of_node nl node with
      | None -> 0.0
      | Some g ->
        Array.fold_left
          (fun acc fanin ->
             match Hashtbl.find_opt pin_time (fanin, g) with
             | Some v -> max acc v
             | None -> acc)
          0.0 nl.Netlist.gates.(g).Netlist.fanins
    in
    ready.(node) <- r;
    List.iter
      (fun (g, d) -> Hashtbl.replace pin_time (node, g) (r +. d))
      (pin_delays ~tech t node)
  done;
  let critical =
    List.fold_left
      (fun acc node -> max acc (po_delay t node ready.(node)))
      0.0 nl.Netlist.outputs
  in
  let clock = match clock with Some c -> c | None -> critical in
  let required = Array.make n infinity in
  List.iter
    (fun node ->
       let slack_free = clock -. (po_delay t node ready.(node) -. ready.(node)) in
       required.(node) <- min required.(node) slack_free)
    nl.Netlist.outputs;
  for node = n - 1 downto 0 do
    List.iter
      (fun (g, d) ->
         let gnode = Netlist.node_of_gate nl g in
         required.(node) <- min required.(node) (required.(gnode) -. d))
      (pin_delays ~tech t node)
  done;
  { ready; required; critical; clock }

let net_for_optimization t report node =
  net_with_reqs t node (fun g ->
      report.required.(Netlist.node_of_gate t.netlist g))

let total_buffer_area t =
  Array.fold_left
    (fun acc r ->
       match r with None -> acc | Some tree -> acc +. Rtree.buffer_area tree)
    0.0 t.routing

let total_wirelength t =
  (* Unrouted nets count their star wirelength. *)
  let acc = ref 0 in
  Array.iteri
    (fun node r ->
       match r with
       | Some tree -> acc := !acc + Rtree.wirelength tree
       | None ->
         (match net_with_reqs t node (fun _ -> 0.0) with
          | None -> ()
          | Some net -> acc := !acc + Rtree.wirelength (star_tree net)))
    t.routing;
  !acc
