(** Two-tier result cache: in-memory {!Lru} in front, an optional
    persistent {!Store} behind it.

    The scheduler programs against this interface so memory-only and
    store-backed deployments share one code path.  {!find} consults
    memory, then the store (decoding the blob and promoting the value
    into memory — a warm store refills a restarted daemon without pool
    work); {!add} writes through to both tiers.  Blobs that fail the
    store checksum or the codec decode read as misses, never errors. *)

type 'a codec = {
  encode : 'a -> string;
  decode : string -> 'a option;  (** [None] = undecodable, treat as miss *)
}

type 'a t

(** [create ?store ~capacity ()] — [store] attaches the persistent
    tier together with the value codec.  Raises [Invalid_argument]
    when [capacity < 1] (from {!Lru.create}). *)
val create : ?store:Store.t * 'a codec -> capacity:int -> unit -> 'a t

val find : 'a t -> string -> 'a option

val add : 'a t -> string -> 'a -> unit

type stats = {
  memory : Lru.stats;
  store : Store.stats option;  (** [None] without a persistent tier *)
}

val stats : 'a t -> stats
