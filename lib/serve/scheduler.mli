(** Cache-or-compute scheduling onto the {!Merlin_exec.Pool}.

    {!schedule} answers a known key from the LRU cache without
    submitting a pool task; a miss computes on the pool, bounded by the
    per-request deadline when one is given, and caches only successes.

    In-flight identical requests are deduplicated: concurrent misses on
    one key submit exactly one pool task.  The first arrival leads and
    computes; the rest block until it publishes and then inherit its
    outcome — a joined success reports [Hit] (the value came from
    memory, not a pool task of this request's own), and a leader's
    timeout or failure is every joiner's too. *)

type 'a t

val create : ?cache_capacity:int -> Merlin_exec.Pool.t -> 'a t

type 'a outcome =
  | Done of { value : 'a; cached : Wire.cache_status }
  | Timed_out of float  (** the expired budget, seconds *)
  | Failed of exn

(** [schedule t ~key ?deadline_s job] — cache lookup, then pool
    execution.  Never raises: job exceptions come back as [Failed]. *)
val schedule :
  'a t -> key:string -> ?deadline_s:float -> (unit -> 'a) -> 'a outcome

val cache_stats : 'a t -> Lru.stats

(** The underlying pool (for telemetry and shutdown). *)
val pool : 'a t -> Merlin_exec.Pool.t
