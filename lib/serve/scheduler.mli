(** Cache-or-compute scheduling onto the {!Merlin_exec.Pool}.

    {!schedule} answers a known key from the two-tier {!Cache} without
    submitting a pool task; a miss computes on the pool, bounded by the
    per-request deadline when one is given, and caches only successes.

    In-flight identical requests are deduplicated: concurrent misses on
    one key submit exactly one pool task.  The first arrival leads and
    computes; the rest block until it publishes and then inherit its
    outcome — a joined success reports [Hit] (the value came from
    memory, not a pool task of this request's own), and a leader's
    timeout or failure is every joiner's too.

    {!run_batch} fans a list of independent keyed jobs over the pool
    with a small worker team; items share the cache, dedup table and
    pool with every other request in the daemon. *)

type 'a t

(** [create ~cache pool] — the caller owns the cache (and its optional
    persistent store); the scheduler only reads and writes it. *)
val create : cache:'a Cache.t -> Merlin_exec.Pool.t -> 'a t

type 'a outcome =
  | Done of { value : 'a; cached : Wire.cache_status }
  | Timed_out of float  (** the expired budget, seconds *)
  | Failed of exn

(** [schedule t ~key ?deadline_s job] — cache lookup, then pool
    execution.  Never raises: job exceptions come back as [Failed]. *)
val schedule :
  'a t -> key:string -> ?deadline_s:float -> (unit -> 'a) -> 'a outcome

type 'a item_outcome =
  | Item of 'a outcome
  | Item_cancelled  (** the probe fired before this item ran *)

(** [run_batch t ?deadline_s ?workers ~cancelled ~on_item items] runs
    every [(key, job)] through {!schedule} from a team of [workers]
    threads (default: the pool size) and blocks until all items are
    reported.  [cancelled] is probed before each item starts; once it
    returns [true], remaining items are reported [Item_cancelled]
    without computing (in-flight items still finish).  [on_item i
    outcome] is called once per item, from whichever worker ran it and
    in completion order — callers needing mutual exclusion or
    deterministic order synchronise inside it and key off [i]. *)
val run_batch :
  'a t ->
  ?deadline_s:float ->
  ?workers:int ->
  cancelled:(unit -> bool) ->
  on_item:(int -> 'a item_outcome -> unit) ->
  (string * (unit -> 'a)) list ->
  unit

val cache_stats : 'a t -> Cache.stats

(** The underlying pool (for telemetry and shutdown). *)
val pool : 'a t -> Merlin_exec.Pool.t
