(* Cache-or-compute scheduling layer between the server and the domain
   pool.

   A hit answers from the LRU without touching the pool (no task is
   submitted — the smoke test asserts pool.submitted stays flat across
   a repeated request).  A miss runs the job on the pool, bounded by
   the per-request deadline when one is given; only successful results
   enter the cache, so a timeout or failure is retried from scratch on
   the next identical request.

   The cache does not deduplicate in-flight work: two identical
   requests racing through a miss both compute.  Routing flows are
   deterministic, so the loser's [Lru.add] overwrites the winner's
   with an equal value — wasteful, never wrong — and a found/computed
   distinction per request stays exact.

   Timeouts and failures are already counted by the pool
   ([stats.timed_out], [stats.failed]); cache traffic by {!Lru}.  The
   scheduler adds no counters of its own. *)

module Pool = Merlin_exec.Pool

type 'a t = {
  pool : Pool.t;
  cache : 'a Lru.t;
}

type 'a outcome =
  | Done of { value : 'a; cached : Wire.cache_status }
  | Timed_out of float
  | Failed of exn

let create ?(cache_capacity = 256) pool =
  { pool; cache = Lru.create ~capacity:cache_capacity }

let schedule t ~key ?deadline_s job =
  match Lru.find t.cache key with
  | Some value -> Done { value; cached = Wire.Hit }
  | None -> (
    match deadline_s with
    | None -> (
      match Pool.await (Pool.submit t.pool job) with
      | value ->
        Lru.add t.cache key value;
        Done { value; cached = Wire.Miss }
      | exception e -> Failed e)
    | Some timeout_s -> (
      match Pool.run_timeout t.pool ~timeout_s job with
      | Pool.Done value ->
        Lru.add t.cache key value;
        Done { value; cached = Wire.Miss }
      | Pool.Timed_out -> Timed_out timeout_s
      | Pool.Failed e -> Failed e))

let cache_stats t = Lru.stats t.cache

let pool t = t.pool
