(* Cache-or-compute scheduling layer between the server and the domain
   pool.

   A hit answers from the LRU without touching the pool (no task is
   submitted — the smoke test asserts pool.submitted stays flat across
   a repeated request).  A miss runs the job on the pool, bounded by
   the per-request deadline when one is given; only successful results
   enter the cache, so a timeout or failure is retried from scratch on
   the next identical request.

   In-flight work is deduplicated.  Identical requests racing through a
   miss used to each submit a pool task — harmless for correctness
   (flows are deterministic) but a stampede: N concurrent copies of the
   same routing flow occupy N pool slots computing one answer.  Now the
   first miss becomes the leader for its key; later arrivals find the
   key in the pending table and block on a condition variable until the
   leader publishes.  Joiners inherit the leader's outcome — including
   its timeout or failure, since theirs would have been the same work
   under (at most) the same remaining budget — except that a joined
   [Done] reports [Hit]: the value came from this process's memory, not
   from a pool task of its own, which keeps the found/computed
   distinction per request exact and the smoke test's
   one-task-per-unique-key invariant true under concurrency.

   [t.lock] guards the pending table only.  The leader computes with
   the lock released (the pool blocks for the whole flow), and
   [Lru.find]/[Lru.add] take the cache's own lock inside [t.lock] on
   the double-check — that nesting is the Scheduler.lock > Lru.lock
   edge in lock-order.spec.

   Timeouts and failures are already counted by the pool
   ([stats.timed_out], [stats.failed]); cache traffic by {!Lru}.  The
   scheduler adds no counters of its own. *)

module Pool = Merlin_exec.Pool

type 'a outcome =
  | Done of { value : 'a; cached : Wire.cache_status }
  | Timed_out of float
  | Failed of exn

(* One in-flight computation; joiners wait on [t.cond] until the
   leader fills [outcome]. *)
type 'a flight = { mutable outcome : 'a outcome option }

type 'a t = {
  pool : Pool.t;
  cache : 'a Lru.t;
  lock : Mutex.t;
  cond : Condition.t;
  pending : (string, 'a flight) Hashtbl.t;
}

let create ?(cache_capacity = 256) pool =
  { pool;
    cache = Lru.create ~capacity:cache_capacity;
    lock = Mutex.create ();
    cond = Condition.create ();
    pending = Hashtbl.create 16 }

let schedule t ~key ?deadline_s job =
  match Lru.find t.cache key with
  | Some value -> Done { value; cached = Wire.Hit }
  | None -> (
    let role =
      Mutex.protect t.lock (fun () ->
          match Hashtbl.find_opt t.pending key with
          | Some fl -> `Join fl
          | None -> (
            (* Double-check under the lock: the leader for this key may
               have published and left between our miss and here. *)
            match Lru.find t.cache key with
            | Some value -> `Hit value
            | None ->
              let fl = { outcome = None } in
              Hashtbl.replace t.pending key fl;
              `Lead fl))
    in
    match role with
    | `Hit value -> Done { value; cached = Wire.Hit }
    | `Join fl ->
      let outcome =
        Mutex.protect t.lock (fun () ->
            let rec wait () =
              match fl.outcome with
              | Some o -> o
              | None ->
                Condition.wait t.cond t.lock;
                wait ()
            in
            wait ())
      in
      (match outcome with
       | Done { value; _ } -> Done { value; cached = Wire.Hit }
       | (Timed_out _ | Failed _) as o -> o)
    | `Lead fl ->
      let outcome =
        match deadline_s with
        | None -> (
          match Pool.await (Pool.submit t.pool job) with
          | value ->
            Lru.add t.cache key value;
            Done { value; cached = Wire.Miss }
          | exception e -> Failed e)
        | Some timeout_s -> (
          match Pool.run_timeout t.pool ~timeout_s job with
          | Pool.Done value ->
            Lru.add t.cache key value;
            Done { value; cached = Wire.Miss }
          | Pool.Timed_out -> Timed_out timeout_s
          | Pool.Failed e -> Failed e
          | exception e -> Failed e)
      in
      Mutex.protect t.lock (fun () ->
          fl.outcome <- Some outcome;
          Hashtbl.remove t.pending key;
          Condition.broadcast t.cond);
      outcome)

let cache_stats t = Lru.stats t.cache

let pool t = t.pool
