(* Cache-or-compute scheduling layer between the server and the domain
   pool.

   A hit answers from the cache without touching the pool (no task is
   submitted — the smoke test asserts pool.submitted stays flat across
   a repeated request).  The cache is the two-tier {!Cache}: memory in
   front, optionally a persistent store behind it, so a restarted
   daemon with a warm store also answers without pool work.  A miss
   runs the job on the pool, bounded by the per-request deadline when
   one is given; only successful results enter the cache, so a timeout
   or failure is retried from scratch on the next identical request.

   In-flight work is deduplicated.  Identical requests racing through a
   miss used to each submit a pool task — harmless for correctness
   (flows are deterministic) but a stampede: N concurrent copies of the
   same routing flow occupy N pool slots computing one answer.  Now the
   first miss becomes the leader for its key; later arrivals find the
   key in the pending table and block on a condition variable until the
   leader publishes.  Joiners inherit the leader's outcome — including
   its timeout or failure, since theirs would have been the same work
   under (at most) the same remaining budget — except that a joined
   [Done] reports [Hit]: the value came from this process's memory, not
   from a pool task of its own, which keeps the found/computed
   distinction per request exact and the smoke test's
   one-task-per-unique-key invariant true under concurrency.

   [t.lock] guards the pending table only.  The leader computes with
   the lock released (the pool blocks for the whole flow), and
   [Cache.find]/[Cache.add] take the LRU's lock (and the store's, for
   counters) inside [t.lock] on the double-check — that nesting is the
   Scheduler.lock > Lru.lock (> Store.lock) chain in lock-order.spec.

   [run_batch] fans a list of independent jobs over the pool: a small
   team of threads pulls indices off a shared atomic counter and runs
   each through {!schedule}, so batch items share the cache, the
   dedup table and the pool's scheduling with every other request in
   the daemon.  A cancellation probe is consulted before each item;
   cancelled items are reported without computing.  Item completion
   order is nondeterministic (that is the point), so [on_item] carries
   the item's index — callers that need determinism key off it. *)

module Pool = Merlin_exec.Pool

type 'a outcome =
  | Done of { value : 'a; cached : Wire.cache_status }
  | Timed_out of float
  | Failed of exn

(* One in-flight computation; joiners wait on [t.cond] until the
   leader fills [outcome]. *)
type 'a flight = { mutable outcome : 'a outcome option }

type 'a t = {
  pool : Pool.t;
  cache : 'a Cache.t;
  lock : Mutex.t;
  cond : Condition.t;
  pending : (string, 'a flight) Hashtbl.t;
}

let create ~cache pool =
  { pool;
    cache;
    lock = Mutex.create ();
    cond = Condition.create ();
    pending = Hashtbl.create 16 }

let schedule t ~key ?deadline_s job =
  match Cache.find t.cache key with
  | Some value -> Done { value; cached = Wire.Hit }
  | None -> (
    let role =
      Mutex.protect t.lock (fun () ->
          match Hashtbl.find_opt t.pending key with
          | Some fl -> `Join fl
          | None -> (
            (* Double-check under the lock: the leader for this key may
               have published and left between our miss and here. *)
            match Cache.find t.cache key with
            | Some value -> `Hit value
            | None ->
              let fl = { outcome = None } in
              Hashtbl.replace t.pending key fl;
              `Lead fl))
    in
    match role with
    | `Hit value -> Done { value; cached = Wire.Hit }
    | `Join fl ->
      let outcome =
        Mutex.protect t.lock (fun () ->
            let rec wait () =
              match fl.outcome with
              | Some o -> o
              | None ->
                Condition.wait t.cond t.lock;
                wait ()
            in
            wait ())
      in
      (match outcome with
       | Done { value; _ } -> Done { value; cached = Wire.Hit }
       | (Timed_out _ | Failed _) as o -> o)
    | `Lead fl ->
      let outcome =
        match deadline_s with
        | None -> (
          match Pool.await (Pool.submit t.pool job) with
          | value ->
            Cache.add t.cache key value;
            Done { value; cached = Wire.Miss }
          | exception e -> Failed e)
        | Some timeout_s -> (
          match Pool.run_timeout t.pool ~timeout_s job with
          | Pool.Done value ->
            Cache.add t.cache key value;
            Done { value; cached = Wire.Miss }
          | Pool.Timed_out -> Timed_out timeout_s
          | Pool.Failed e -> Failed e
          | exception e -> Failed e)
      in
      Mutex.protect t.lock (fun () ->
          fl.outcome <- Some outcome;
          Hashtbl.remove t.pending key;
          Condition.broadcast t.cond);
      outcome)

type 'a item_outcome =
  | Item of 'a outcome
  | Item_cancelled

let run_batch t ?deadline_s ?workers ~cancelled ~on_item items =
  let items = Array.of_list items in
  let n = Array.length items in
  if n > 0 then begin
    let workers =
      match workers with
      | Some w -> max 1 w
      | None -> max 1 (Pool.size t.pool)
    in
    let workers = min workers n in
    let next = Atomic.make 0 in
    (* Each worker claims indices off the shared counter until the list
       is exhausted.  [on_item] runs on the claiming worker — callers
       synchronise inside it. *)
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let key, job = items.(i) in
          let outcome =
            if cancelled () then Item_cancelled
            else Item (schedule t ~key ?deadline_s job)
          in
          on_item i outcome;
          loop ()
        end
      in
      loop ()
    in
    let helpers =
      List.init (workers - 1) (fun _ -> Thread.create worker ())
    in
    (* The calling thread is the last worker, so a one-worker batch
       runs entirely inline. *)
    worker ();
    List.iter Thread.join helpers
  end

let cache_stats t = Cache.stats t.cache

let pool t = t.pool
