(** Wire protocol of the routing service, version 2.

    Frames are a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON.  Every payload is a versioned envelope carrying
    [v], a [job] correlation id echoed on every frame of that job, a
    [seq] frame ordinal (0 on single-frame exchanges) and [type].

    Version 2 adds multi-frame jobs: a {!Batch} request carries a whole
    netlist and streams back one {!Progress} frame per net plus a
    terminal {!Batch_done} summary; an optional fingerprint manifest
    turns the batch into an ECO re-route where unchanged nets are
    answered {!Unchanged} without computing.  Decoders are
    version-dispatched and total — version-1 frames still decode (the
    v1 [id] becomes [job]; v1 admin frames get job [""]), and malformed
    input of any version yields a structured [Error], never an
    exception or a dead socket.

    The routing problem travels as a {!Merlin_flows.Flows.spec} plus
    the net in canonical {!Merlin_net.Net_io} text; {!request_key}
    hashes exactly those two, which makes it the cache key: it
    separates requests that could legally differ (sink order, tech,
    knobs) and nothing else, and is identical across protocol versions
    so one persistent store serves both. *)

(** Protocol version spoken by a peer, as learned from its frames. *)
type proto = V1 | V2

type request = {
  job : string;  (** client-chosen, echoed in the reply *)
  spec : Merlin_flows.Flows.spec;
  net : Merlin_net.Net.t;
  deadline_s : float option;  (** per-request compute budget *)
  want_tree : bool;  (** include the routing tree in the reply *)
}

type batch = {
  job : string;
  spec : Merlin_flows.Flows.spec;  (** one spec for every net *)
  nets : (string * Merlin_net.Net.t) list;
      (** (name, net); names are echoed in progress frames *)
  deadline_s : float option;  (** per-net compute budget *)
  want_tree : bool;
  manifest : (string * string) list option;
      (** ECO mode: (name, {!Merlin_net.Net_io.fingerprint}) of the
          previously routed netlist; a net whose fingerprint still
          matches is answered {!Unchanged} without re-routing *)
}

type admin_op =
  | Stats
  | Ping
  | Drain  (** finish in-flight work, refuse new routes *)
  | Shutdown

type client_msg =
  | Route of request
  | Batch of batch
  | Admin of { job : string; op : admin_op }

type error_kind =
  | Bad_request
  | Infeasible
  | Timeout
  | Draining
  | Internal

type cache_status = Hit | Miss

(** Outcome of one net within a batch. *)
type net_status =
  | Routed of { cached : cache_status; metrics : Merlin_report.Metrics.t }
  | Unchanged  (** ECO: fingerprint matched the manifest *)
  | Net_failed of { kind : error_kind; message : string }
  | Cancelled  (** job cancelled before this net ran *)

type progress = {
  job : string;
  seq : int;  (** 1-based frame ordinal within the job's reply stream *)
  index : int;  (** position of the net in the batch request *)
  name : string;
  status : net_status;
}

type summary = {
  total : int;
  routed : int;  (** computed on the pool *)
  hits : int;  (** answered from a cache tier *)
  unchanged : int;  (** ECO skips *)
  failed : int;
  cancelled : int;
  wall_s : float;
}

type server_msg =
  | Reply of {
      job : string;
      cached : cache_status;
      metrics : Merlin_report.Metrics.t;
    }
  | Progress of progress
  | Batch_done of { job : string; seq : int; summary : summary }
  | Refused of { job : string; kind : error_kind; message : string }
      (** [job] is [""] when the defect predates knowing the job *)
  | Stats_reply of { job : string; stats : Merlin_report.Json.t }
  | Pong of { job : string }
  | Admin_ok of { job : string; what : string }

(** [request_key spec net] — hex digest identifying the routing problem;
    the cache key of both tiers.  Version-independent. *)
val request_key : Merlin_flows.Flows.spec -> Merlin_net.Net.t -> string

val spec_to_json : Merlin_flows.Flows.spec -> Merlin_report.Json.t

val spec_of_json :
  Merlin_report.Json.t -> (Merlin_flows.Flows.spec, string) result

val error_kind_to_string : error_kind -> string

(** Always encodes version 2. *)
val encode_client : client_msg -> string

(** Accepts versions 1 and 2; reports which one the frame spoke so the
    server can answer in kind. *)
val decode_client : string -> (proto * client_msg, string) result

(** [encode_server ?proto m] renders [m] for a peer speaking [proto]
    (default [V2]).  The v1 grammar has no multi-frame kinds, so
    encoding {!Progress} or {!Batch_done} as [V1] raises
    [Invalid_argument] — a v1 peer cannot have sent the batch that
    produces them. *)
val encode_server : ?proto:proto -> server_msg -> string

val decode_server : string -> (proto * server_msg, string) result

(** Frame-size guard applied by readers when none is given: 64 MiB. *)
val default_max_frame : int

type read_error =
  | Closed  (** orderly EOF at a frame boundary *)
  | Truncated  (** EOF mid-frame *)
  | Oversized of int  (** declared length beyond the limit *)

val write_frame : Unix.file_descr -> string -> unit

val read_frame :
  ?max_frame:int -> Unix.file_descr -> (string, read_error) result
