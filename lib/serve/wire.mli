(** Wire protocol of the routing service.

    Frames are a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON.  Every payload carries a protocol version;
    decoders are total ([Error], never an exception), so a malformed
    request always yields a structured error reply rather than a dead
    socket.

    The routing problem travels as a {!Merlin_flows.Flows.spec} plus
    the net in canonical {!Merlin_net.Net_io} text; {!request_key}
    hashes exactly those two, which makes it the cache key: it
    separates requests that could legally differ (sink order, tech,
    knobs) and nothing else. *)

type request = {
  id : string;  (** client-chosen, echoed in the reply *)
  spec : Merlin_flows.Flows.spec;
  net : Merlin_net.Net.t;
  deadline_s : float option;  (** per-request compute budget *)
  want_tree : bool;  (** include the routing tree in the reply *)
}

type client_msg =
  | Route of request
  | Stats
  | Ping
  | Drain  (** finish in-flight work, refuse new routes *)
  | Shutdown

type error_kind =
  | Bad_request
  | Infeasible
  | Timeout
  | Draining
  | Internal

type cache_status = Hit | Miss

type server_msg =
  | Reply of {
      id : string;
      cached : cache_status;
      metrics : Merlin_report.Metrics.t;
    }
  | Refused of { id : string option; kind : error_kind; message : string }
  | Stats_reply of Merlin_report.Json.t
  | Pong
  | Admin_ok of string

(** [request_key spec net] — hex digest identifying the routing problem;
    the LRU cache key. *)
val request_key : Merlin_flows.Flows.spec -> Merlin_net.Net.t -> string

val spec_to_json : Merlin_flows.Flows.spec -> Merlin_report.Json.t

val spec_of_json : Merlin_report.Json.t -> (Merlin_flows.Flows.spec, string) result

val encode_client : client_msg -> string

val decode_client : string -> (client_msg, string) result

val encode_server : server_msg -> string

val decode_server : string -> (server_msg, string) result

(** Frame-size guard applied by readers when none is given: 64 MiB. *)
val default_max_frame : int

type read_error =
  | Closed  (** orderly EOF at a frame boundary *)
  | Truncated  (** EOF mid-frame *)
  | Oversized of int  (** declared length beyond the limit *)

val write_frame : Unix.file_descr -> string -> unit

val read_frame :
  ?max_frame:int -> Unix.file_descr -> (string, read_error) result
