(* Persistent content-addressed blob store under the serving cache.

   One file per key ([dir/<key>.blob]); keys are request_key hex
   digests, so the namespace is flat and filename-safe by construction
   (validated, not assumed).  Writes go through a tmp file in the same
   directory and an atomic [Unix.rename], so a reader never observes a
   partial write: it either finds the old blob, the new blob, or
   nothing.

   Reads are corruption-tolerant by checksum: a blob is a one-line
   header carrying the payload's MD5 and length, then the payload.  A
   truncated file, a torn header or flipped bytes fail the check and
   come back as [None] (plus an [errors] tick) — the caller recomputes
   and rewrites, it never crashes on a damaged store.  Writes are
   best-effort for the same reason: a full disk degrades the daemon to
   memory-only caching instead of killing it.

   [t.lock] guards only the counters and the tmp-name sequence; file
   I/O runs outside it (concurrent writers of one key race to an
   atomic rename — last one wins, both blobs were valid). *)

type t = {
  dir : string;
  lock : Mutex.t;
  mutable tmp_seq : int;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable errors : int;         (* damaged blobs seen + failed writes *)
  mutable bytes_read : int;
  mutable bytes_written : int;
}

type stats = {
  hits : int;
  misses : int;
  writes : int;
  errors : int;
  bytes_read : int;
  bytes_written : int;
}

let magic = "merlin-store 1"

let key_ok key =
  String.length key > 0
  && String.for_all
       (fun c ->
          (c >= '0' && c <= '9')
          || (c >= 'a' && c <= 'z')
          || (c >= 'A' && c <= 'Z')
          || Char.equal c '-' || Char.equal c '_')
       key

let validate_key fn key =
  if not (key_ok key) then
    invalid_arg (fn ^ ": invalid store key " ^ Printf.sprintf "%S" key)

let mkdir_p dir =
  let rec go dir =
    if not (Sys.file_exists dir) then begin
      go (Filename.dirname dir);
      match Unix.mkdir dir 0o755 with
      | () -> ()
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let open_dir dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Store.open_dir: %s is not a directory" dir);
  { dir;
    lock = Mutex.create ();
    tmp_seq = 0;
    hits = 0;
    misses = 0;
    writes = 0;
    errors = 0;
    bytes_read = 0;
    bytes_written = 0 }

let path_of t key = Filename.concat t.dir (key ^ ".blob")

(* Header + checksum verification; any structural defect is [None]. *)
let parse_blob raw =
  match String.index_opt raw '\n' with
  | None -> None
  | Some i -> (
    let header = String.sub raw 0 i in
    let payload = String.sub raw (i + 1) (String.length raw - i - 1) in
    match String.split_on_char ' ' header with
    | [ "merlin-store"; "1"; digest; len ] -> (
      match int_of_string_opt len with
      | Some n
        when n = String.length payload
             && String.equal digest (Digest.to_hex (Digest.string payload)) ->
        Some payload
      | Some _ | None -> None)
    | _ -> None)

let find t key =
  validate_key "Store.find" key;
  match open_in_bin (path_of t key) with
  | exception Sys_error _ ->
    (* Not on disk (or unreadable): a plain miss. *)
    Mutex.protect t.lock (fun () -> t.misses <- t.misses + 1);
    None
  | ic -> (
    let raw =
      match really_input_string ic (in_channel_length ic) with
      | raw -> Some raw
      | exception End_of_file -> None
      | exception Sys_error _ -> None
    in
    close_in_noerr ic;
    match Option.bind raw parse_blob with
    | Some payload ->
      Mutex.protect t.lock (fun () ->
          t.hits <- t.hits + 1;
          t.bytes_read <- t.bytes_read + String.length payload);
      Some payload
    | None ->
      (* Present but damaged (truncated, torn, garbage): recompute. *)
      Mutex.protect t.lock (fun () ->
          t.errors <- t.errors + 1;
          t.misses <- t.misses + 1);
      None)

let add t key payload =
  validate_key "Store.add" key;
  let seq =
    Mutex.protect t.lock (fun () ->
        t.tmp_seq <- t.tmp_seq + 1;
        t.tmp_seq)
  in
  (* Same-directory tmp name so the rename cannot cross filesystems;
     the leading dot keeps half-written blobs invisible to readers
     (they only ever open <key>.blob). *)
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf ".tmp-%d-%d" (Unix.getpid ()) seq)
  in
  let blob =
    Printf.sprintf "%s %s %d\n%s" magic
      (Digest.to_hex (Digest.string payload))
      (String.length payload) payload
  in
  let written =
    match open_out_bin tmp with
    | exception Sys_error _ -> false
    | oc -> (
      match
        output_string oc blob;
        close_out oc
      with
      | () -> (
        match Unix.rename tmp (path_of t key) with
        | () -> true
        | exception Unix.Unix_error _ ->
          (try Sys.remove tmp with Sys_error _ -> ());
          false)
      | exception Sys_error _ ->
        close_out_noerr oc;
        (try Sys.remove tmp with Sys_error _ -> ());
        false)
  in
  Mutex.protect t.lock (fun () ->
      if written then begin
        t.writes <- t.writes + 1;
        t.bytes_written <- t.bytes_written + String.length payload
      end
      else t.errors <- t.errors + 1)

let stats t =
  Mutex.protect t.lock (fun () ->
      { hits = t.hits;
        misses = t.misses;
        writes = t.writes;
        errors = t.errors;
        bytes_read = t.bytes_read;
        bytes_written = t.bytes_written })
