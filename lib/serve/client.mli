(** Blocking client for the routing service: one request, one reply, in
    order, over a connection the caller owns. *)

type t

(** Raises [Unix.Unix_error] when the socket cannot be connected. *)
val connect_unix : ?max_frame:int -> string -> t

(** [connect_tcp host port] — [host] is a literal address or a name to
    resolve.  Raises [Unix.Unix_error] / [Failure]. *)
val connect_tcp : ?max_frame:int -> string -> int -> t

(** [call t msg] sends one message and blocks for its reply; transport
    and decode problems come back as [Error]. *)
val call : t -> Wire.client_msg -> (Wire.server_msg, string) result

val close : t -> unit
