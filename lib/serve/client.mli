(** Session client for the routing service: connect once, send
    requests, iterate streamed reply frames.  All calls block; the
    caller owns the connection. *)

type t

(** Raises [Unix.Unix_error] when the socket cannot be connected. *)
val connect_unix : ?max_frame:int -> string -> t

(** [connect_tcp host port] — [host] is a literal address or a name to
    resolve.  Raises [Unix.Unix_error] / [Failure]. *)
val connect_tcp : ?max_frame:int -> string -> int -> t

(** [call t msg] sends one message and blocks for its single reply;
    transport and decode problems come back as [Error]. *)
val call : t -> Wire.client_msg -> (Wire.server_msg, string) result

(** One message out, no reply read — for driving a stream by hand. *)
val send : t -> Wire.client_msg -> (unit, string) result

(** One reply frame in. *)
val read : t -> (Wire.server_msg, string) result

(** [run_batch t b ~on_progress] submits the batch and blocks draining
    its reply stream, calling [on_progress] on each {!Wire.Progress}
    frame in arrival order; returns the terminal {!Wire.Batch_done}
    summary.  A [Refused] for the job (e.g. a draining server) is
    returned as [Error]. *)
val run_batch :
  t ->
  Wire.batch ->
  on_progress:(Wire.progress -> unit) ->
  (Wire.summary, string) result

val close : t -> unit
