(** Thread-safe LRU result cache with hit/miss/eviction telemetry.

    All operations are O(1) and serialise on one internal mutex; the
    scheduler and every connection-handler thread share one instance.
    {!find} counts a hit or a miss and refreshes recency; {!add}
    inserts (or refreshes) an entry and evicts the least recently used
    one when past capacity. *)

type 'a t

(** Raises [Invalid_argument] when [capacity < 1]. *)
val create : capacity:int -> 'a t

val find : 'a t -> string -> 'a option

val add : 'a t -> string -> 'a -> unit

type stats = {
  capacity : int;
  size : int;
  hits : int;
  misses : int;
  evictions : int;
}

(** Consistent snapshot of the counters. *)
val stats : 'a t -> stats
