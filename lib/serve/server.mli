(** The routing-service daemon.

    [start] binds a Unix-domain socket (and optionally a TCP one),
    spawns an accept thread per listener and a thread per connection,
    and schedules route requests onto a {!Merlin_exec.Pool} through the
    {!Scheduler} cache.  Every malformed or failing request gets a
    structured error reply — a connection only closes on unrecoverable
    framing damage or peer EOF.

    [Drain] makes the server refuse new routes while stats/ping keep
    working and in-flight computes finish; [Shutdown] additionally
    wakes {!wait}, which closes the listeners, lets the active requests
    drain, joins the accept threads and shuts the pool down. *)

type config = {
  socket_path : string;
  tcp : (string * int) option;  (** optional [(address, port)] listener *)
  domains : int option;  (** pool size; [None] = recommended count *)
  cache_capacity : int;
  default_deadline_s : float option;
      (** budget applied to requests that carry none *)
  max_frame : int;
}

(** Unix socket only, 256-entry cache, no default deadline,
    {!Wire.default_max_frame}. *)
val default_config : socket_path:string -> config

type t

(** Bind, listen and serve in background threads; returns immediately.
    Raises [Unix.Unix_error] if a listener cannot be bound. *)
val start : config -> t

(** Block until a [Shutdown] request (or {!stop}) arrives, then finish
    in-flight work, release the sockets and shut the pool down. *)
val wait : t -> unit

(** Programmatic shutdown: {!wait} with the stop already requested.
    Idempotent. *)
val stop : t -> unit

(** The TCP port actually bound ([config.tcp] with port 0 asks the
    kernel for an ephemeral one); [None] without a TCP listener. *)
val tcp_port : t -> int option
