(** The routing-service daemon.

    [start] binds a Unix-domain socket (and optionally a TCP one),
    spawns an accept thread per listener and a thread per connection,
    and schedules route requests onto a {!Merlin_exec.Pool} through the
    {!Scheduler} and its two-tier {!Cache} (LRU memory plus, when
    [store_dir] is set, a persistent {!Store} that survives restarts).
    Every malformed or failing request gets a structured error reply —
    a connection only closes on unrecoverable framing damage or peer
    EOF — and replies are rendered in the protocol version the request
    spoke, so v1 clients keep working.

    A {!Wire.Batch} request fans its nets over the pool and streams one
    {!Wire.Progress} frame per net plus a terminal {!Wire.Batch_done}
    summary; with a manifest, unchanged nets are answered
    [Unchanged] without computing (ECO).  Queued batch nets cancel on
    client disconnect or drain.

    [Drain] makes the server refuse new routes while stats/ping keep
    working and in-flight computes finish; [Shutdown] additionally
    wakes {!wait}, which closes the listeners, lets the active requests
    drain, joins the accept threads and shuts the pool down. *)

type config = {
  socket_path : string;
  tcp : (string * int) option;  (** optional [(address, port)] listener *)
  domains : int option;  (** pool size; [None] = recommended count *)
  cache_capacity : int;
  store_dir : string option;
      (** persistent cache tier; [None] = memory only *)
  default_deadline_s : float option;
      (** budget applied to requests that carry none *)
  max_frame : int;
}

(** Unix socket only, 256-entry cache, no store, no default deadline,
    {!Wire.default_max_frame}. *)
val default_config : socket_path:string -> config

type t

(** Bind, listen and serve in background threads; returns immediately.
    Raises [Unix.Unix_error] if a listener cannot be bound and
    [Invalid_argument] if [store_dir] exists and is not a directory. *)
val start : config -> t

(** Block until a [Shutdown] request (or {!stop}) arrives, then finish
    in-flight work, release the sockets and shut the pool down. *)
val wait : t -> unit

(** Programmatic shutdown: {!wait} with the stop already requested.
    Idempotent. *)
val stop : t -> unit

(** The TCP port actually bound ([config.tcp] with port 0 asks the
    kernel for an ephemeral one); [None] without a TCP listener. *)
val tcp_port : t -> int option
