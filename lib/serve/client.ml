(* Blocking client for the routing service: one request, one reply, in
   order, over a connection the caller owns.  Used by `merlin-cli
   submit` and the serve smoke test. *)

type t = {
  fd : Unix.file_descr;
  max_frame : int;
}

let connect_unix ?(max_frame = Wire.default_max_frame) path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  { fd; max_frame }

let connect_tcp ?(max_frame = Wire.default_max_frame) host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
        failwith (Printf.sprintf "Client.connect_tcp: no address for %S" host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found ->
        failwith (Printf.sprintf "Client.connect_tcp: unknown host %S" host))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  { fd; max_frame }

let read_error_to_string = function
  | Wire.Closed -> "connection closed by server"
  | Wire.Truncated -> "connection lost mid-reply"
  | Wire.Oversized n -> Printf.sprintf "reply frame of %d bytes too large" n

let call t msg =
  match Wire.write_frame t.fd (Wire.encode_client msg) with
  | () -> (
    match Wire.read_frame ~max_frame:t.max_frame t.fd with
    | Error e -> Error (read_error_to_string e)
    | Ok payload -> Wire.decode_server payload)
  | exception Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "send failed: %s" (Unix.error_message err))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
