(* Session client for the routing service: one connection, requests
   answered in order.  [call] is the one-shot request/reply shape;
   [run_batch] drives a multi-frame batch job, handing each [Progress]
   frame to the caller as it arrives and returning the terminal
   summary.  Used by `merlin-cli submit`, the serve smoke test and the
   serve benchmark. *)

type t = {
  fd : Unix.file_descr;
  max_frame : int;
}

let connect_unix ?(max_frame = Wire.default_max_frame) path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  { fd; max_frame }

let connect_tcp ?(max_frame = Wire.default_max_frame) host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
        failwith (Printf.sprintf "Client.connect_tcp: no address for %S" host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found ->
        failwith (Printf.sprintf "Client.connect_tcp: unknown host %S" host))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  { fd; max_frame }

let read_error_to_string = function
  | Wire.Closed -> "connection closed by server"
  | Wire.Truncated -> "connection lost mid-reply"
  | Wire.Oversized n -> Printf.sprintf "reply frame of %d bytes too large" n

let send t msg =
  match Wire.write_frame t.fd (Wire.encode_client msg) with
  | () -> Ok ()
  | exception Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "send failed: %s" (Unix.error_message err))

let read t =
  match Wire.read_frame ~max_frame:t.max_frame t.fd with
  | Error e -> Error (read_error_to_string e)
  | Ok payload -> Result.map snd (Wire.decode_server payload)

let call t msg =
  match send t msg with
  | Error _ as e -> e
  | Ok () -> read t

(* The batch stream in order: progress frames until the terminal
   [Batch_done].  A [Refused] for our job is terminal too (the server
   answers a draining-refused batch with a single error frame); any
   other shape means the peers disagree about the protocol, which is an
   [Error], not something to skip. *)
let run_batch t (b : Wire.batch) ~on_progress =
  match send t (Wire.Batch b) with
  | Error _ as e -> e
  | Ok () ->
    let rec drain () =
      match read t with
      | Error _ as e -> e
      | Ok (Wire.Progress p) ->
        on_progress p;
        drain ()
      | Ok (Wire.Batch_done { summary; _ }) -> Ok summary
      | Ok (Wire.Refused { kind; message; _ }) ->
        Error
          (Printf.sprintf "%s: %s" (Wire.error_kind_to_string kind) message)
      | Ok (Wire.Reply _ | Wire.Stats_reply _ | Wire.Pong _ | Wire.Admin_ok _)
        ->
        Error "Client.run_batch: unexpected single-route reply in batch stream"
    in
    drain ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
