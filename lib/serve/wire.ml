(* Wire protocol of the routing service, version 2.

   Frames: a 4-byte big-endian payload length followed by that many
   bytes of UTF-8 JSON.  Length-prefixing keeps framing independent of
   payload content (trees and nets may contain anything) and lets the
   reader refuse oversized frames before allocating.

   Every payload is a versioned envelope: ["v"] (protocol version),
   ["job"] (client-chosen correlation id, echoed on every frame of the
   job — "" where no job applies), ["seq"] (frame ordinal within the
   job's reply stream; 0 on single-frame exchanges) and ["type"].
   Version 2 adds multi-frame jobs: a [Batch] request carries a whole
   netlist and streams back one [Progress] frame per net plus a
   terminal [Batch_done] summary, with an optional fingerprint
   manifest turning the batch into an ECO re-route (nets whose
   {!Merlin_net.Net_io.fingerprint} matches the manifest are answered
   [Unchanged] without computing).

   Decoders are version-dispatched and total — version-1 single-route
   frames still decode (the v1 [id] field becomes [job], admin frames
   get job ""), and malformed input of any version becomes an [Error]
   the server answers with a structured [Refused], never an exception
   and never a dead socket.  [encode_server ~proto] renders replies in
   the peer's protocol version so v1 clients keep working; the v1
   grammar has no multi-frame kinds, so rendering [Progress] or
   [Batch_done] as v1 is a caller bug and raises.

   The routing problem travels as a {!Merlin_flows.Flows.spec}
   (tech + buffer library + algorithm knobs) plus the net in its
   canonical Net_io text form.  The cache key is derived from exactly
   these two: [request_key] hashes the canonical spec JSON together
   with the net fingerprint, so a key separates any two requests that
   could legally produce different answers (different sink order,
   different tech, different knobs) and nothing else — and it is
   version-independent, so a v2 daemon's store serves v1 traffic. *)

open Merlin_tech
open Merlin_net
module Flows = Merlin_flows.Flows
module Json = Merlin_report.Json
module Metrics = Merlin_report.Metrics

let version = 2

type proto = V1 | V2

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type request = {
  job : string;               (* client-chosen, echoed in the reply *)
  spec : Flows.spec;
  net : Net.t;
  deadline_s : float option;  (* per-request compute budget *)
  want_tree : bool;           (* include the routing tree in the reply *)
}

type batch = {
  job : string;
  spec : Flows.spec;                      (* one spec for every net *)
  nets : (string * Net.t) list;           (* (name, net), name echoed *)
  deadline_s : float option;              (* per-net compute budget *)
  want_tree : bool;
  manifest : (string * string) list option;
      (* ECO mode: (name, fingerprint) of the previously routed nets;
         a net whose fingerprint still matches is not re-routed *)
}

type admin_op = Stats | Ping | Drain | Shutdown

type client_msg =
  | Route of request
  | Batch of batch
  | Admin of { job : string; op : admin_op }

type error_kind =
  | Bad_request
  | Infeasible
  | Timeout
  | Draining
  | Internal

type cache_status = Hit | Miss

type net_status =
  | Routed of { cached : cache_status; metrics : Metrics.t }
  | Unchanged                     (* ECO: fingerprint matched the manifest *)
  | Net_failed of { kind : error_kind; message : string }
  | Cancelled                     (* job cancelled before this net ran *)

type progress = {
  job : string;
  seq : int;        (* 1-based frame ordinal within the job *)
  index : int;      (* position of the net in the batch request *)
  name : string;
  status : net_status;
}

type summary = {
  total : int;
  routed : int;     (* computed on the pool *)
  hits : int;       (* answered from a cache tier *)
  unchanged : int;  (* ECO skips *)
  failed : int;
  cancelled : int;
  wall_s : float;
}

type server_msg =
  | Reply of { job : string; cached : cache_status; metrics : Metrics.t }
  | Progress of progress
  | Batch_done of { job : string; seq : int; summary : summary }
  | Refused of { job : string; kind : error_kind; message : string }
      (* job "" when the defect predates knowing the job *)
  | Stats_reply of { job : string; stats : Json.t }
  | Pong of { job : string }
  | Admin_ok of { job : string; what : string }

(* ------------------------------------------------------------------ *)
(* JSON helpers (total decoders)                                       *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let fnum name j =
  let* v = field name j in
  match Json.to_num v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S: expected a number" name)

let fint name j =
  let* f = fnum name j in
  if Float.is_integer f then Ok (int_of_float f)
  else Error (Printf.sprintf "field %S: expected an integer" name)

let fstr name j =
  let* v = field name j in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: expected a string" name)

let fbool_opt ~default name j =
  match Json.member name j with
  | None -> Ok default
  | Some v -> (
    match Json.to_bool v with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "field %S: expected a bool" name))

let fnum_opt name j =
  match Json.member name j with
  | None -> Ok None
  | Some v -> (
    match Json.to_num v with
    | Some f -> Ok (Some f)
    | None -> Error (Printf.sprintf "field %S: expected a number" name))

let num f = Json.Num f

let int i = Json.Num (float_of_int i)

(* ------------------------------------------------------------------ *)
(* Spec encoding                                                       *)
(* ------------------------------------------------------------------ *)

let tech_to_json (t : Tech.t) =
  Json.Obj
    [ ("name", Json.Str t.Tech.name);
      ("unit_wire_res", num t.Tech.unit_wire_res);
      ("unit_wire_cap", num t.Tech.unit_wire_cap);
      ("unit_wire_area", num t.Tech.unit_wire_area) ]

let tech_of_json j =
  let* name = fstr "name" j in
  let* unit_wire_res = fnum "unit_wire_res" j in
  let* unit_wire_cap = fnum "unit_wire_cap" j in
  let* unit_wire_area = fnum "unit_wire_area" j in
  Ok { Tech.name; unit_wire_res; unit_wire_cap; unit_wire_area }

let model_to_json (m : Delay_model.t) =
  Json.Obj
    [ ("d0", num m.Delay_model.d0);
      ("r_drive", num m.Delay_model.r_drive);
      ("k_slew", num m.Delay_model.k_slew);
      ("s0", num m.Delay_model.s0) ]

let model_of_json j =
  let* d0 = fnum "d0" j in
  let* r_drive = fnum "r_drive" j in
  let* k_slew = fnum "k_slew" j in
  let* s0 = fnum "s0" j in
  Ok (Delay_model.make ~d0 ~r_drive ~k_slew ~s0)

let buffer_to_json (b : Buffer_lib.buffer) =
  Json.Obj
    [ ("name", Json.Str b.Buffer_lib.name);
      ("area", num b.Buffer_lib.area);
      ("input_cap", num b.Buffer_lib.input_cap);
      ("model", model_to_json b.Buffer_lib.model) ]

let buffer_of_json j =
  let* name = fstr "name" j in
  let* area = fnum "area" j in
  let* input_cap = fnum "input_cap" j in
  let* model = Result.bind (field "model" j) model_of_json in
  Ok { Buffer_lib.name; area; input_cap; model }

let buffers_of_json j =
  match Json.to_list j with
  | None -> Error "field \"buffers\": expected an array"
  | Some [] -> Error "field \"buffers\": empty buffer library"
  | Some bs ->
    let* rev =
      List.fold_left
        (fun acc b ->
           let* acc = acc in
           let* b = buffer_of_json b in
           Ok (b :: acc))
        (Ok []) bs
    in
    Ok (Array.of_list (List.rev rev))

let objective_to_json (o : Merlin_core.Objective.t) =
  match o with
  | Merlin_core.Objective.Best_req -> Json.Obj [ ("kind", Json.Str "best") ]
  | Merlin_core.Objective.Max_req_under_area budget ->
    Json.Obj [ ("kind", Json.Str "area"); ("bound", num budget) ]
  | Merlin_core.Objective.Min_area_over_req floor ->
    Json.Obj [ ("kind", Json.Str "req"); ("bound", num floor) ]

let objective_of_json j =
  let* kind = fstr "kind" j in
  match kind with
  | "best" -> Ok Merlin_core.Objective.Best_req
  | "area" ->
    let* b = fnum "bound" j in
    Ok (Merlin_core.Objective.Max_req_under_area b)
  | "req" ->
    let* b = fnum "bound" j in
    Ok (Merlin_core.Objective.Min_area_over_req b)
  | other -> Error (Printf.sprintf "objective kind %S (best|area|req)" other)

let chain_placement_to_string = function
  | Merlin_core.Config.All_positions -> "all_positions"
  | Merlin_core.Config.Flush_ends -> "flush_ends"

let cfg_to_json (c : Merlin_core.Config.t) =
  let open Merlin_core.Config in
  Json.Obj
    [ ("alpha", int c.alpha);
      ("max_curve", int c.max_curve);
      ("quant_req", num c.quant_req);
      ("quant_load", num c.quant_load);
      ("quant_area", num c.quant_area);
      ("candidate_limit", int c.candidate_limit);
      ("buffer_trials", int c.buffer_trials);
      ("bbox_slack", num c.bbox_slack);
      ("full_hanan", Json.Bool c.full_hanan);
      ("chain_placement", Json.Str (chain_placement_to_string c.chain_placement));
      ("bubbling", Json.Bool c.bubbling);
      ("max_iters", int c.max_iters);
      ("curve_epsilon", num c.curve_epsilon);
      ("max_frontier", int c.max_frontier) ]

(* Missing knobs default from [Config.default] — clients override only
   what they care about; [Config.validate] rejects nonsense ranges. *)
let cfg_of_json j =
  let open Merlin_core.Config in
  let d = default in
  let* alpha = match Json.member "alpha" j with None -> Ok d.alpha | Some _ -> fint "alpha" j in
  let* max_curve = match Json.member "max_curve" j with None -> Ok d.max_curve | Some _ -> fint "max_curve" j in
  let* quant_req = match Json.member "quant_req" j with None -> Ok d.quant_req | Some _ -> fnum "quant_req" j in
  let* quant_load = match Json.member "quant_load" j with None -> Ok d.quant_load | Some _ -> fnum "quant_load" j in
  let* quant_area = match Json.member "quant_area" j with None -> Ok d.quant_area | Some _ -> fnum "quant_area" j in
  let* candidate_limit = match Json.member "candidate_limit" j with None -> Ok d.candidate_limit | Some _ -> fint "candidate_limit" j in
  let* buffer_trials = match Json.member "buffer_trials" j with None -> Ok d.buffer_trials | Some _ -> fint "buffer_trials" j in
  let* bbox_slack = match Json.member "bbox_slack" j with None -> Ok d.bbox_slack | Some _ -> fnum "bbox_slack" j in
  let* full_hanan = fbool_opt ~default:d.full_hanan "full_hanan" j in
  let* bubbling = fbool_opt ~default:d.bubbling "bubbling" j in
  let* max_iters = match Json.member "max_iters" j with None -> Ok d.max_iters | Some _ -> fint "max_iters" j in
  let* curve_epsilon = match Json.member "curve_epsilon" j with None -> Ok d.curve_epsilon | Some _ -> fnum "curve_epsilon" j in
  let* max_frontier = match Json.member "max_frontier" j with None -> Ok d.max_frontier | Some _ -> fint "max_frontier" j in
  let* chain_placement =
    match Json.member "chain_placement" j with
    | None -> Ok d.chain_placement
    | Some v -> (
      match Json.to_str v with
      | Some "all_positions" -> Ok All_positions
      | Some "flush_ends" -> Ok Flush_ends
      | Some other ->
        Error
          (Printf.sprintf "chain_placement %S (all_positions|flush_ends)" other)
      | None -> Error "field \"chain_placement\": expected a string")
  in
  let cfg =
    { alpha; max_curve; quant_req; quant_load; quant_area; candidate_limit;
      buffer_trials; bbox_slack; full_hanan; chain_placement; bubbling;
      max_iters; curve_epsilon; max_frontier }
  in
  match validate cfg with
  | () -> Ok cfg
  | exception Invalid_argument msg -> Error msg

let strategy_to_string = function
  | Merlin_hier.Cluster.Kmeans -> "kmeans"
  | Merlin_hier.Cluster.Sweep -> "sweep"

let cluster_to_json (c : Merlin_hier.Cluster.config) =
  Json.Obj
    ([ ("target_size", int c.Merlin_hier.Cluster.target_size) ]
    @ (match c.Merlin_hier.Cluster.n_clusters with
       | None -> []
       | Some k -> [ ("n_clusters", int k) ])
    @ [ ("strategy", Json.Str (strategy_to_string c.Merlin_hier.Cluster.strategy));
        ("max_iters", int c.Merlin_hier.Cluster.max_iters) ])

(* Missing clustering knobs default from [Cluster.default], like the
   MERLIN cfg above. *)
let cluster_of_json j =
  let open Merlin_hier.Cluster in
  let d = default in
  let* target_size =
    match Json.member "target_size" j with
    | None -> Ok d.target_size
    | Some _ -> fint "target_size" j
  in
  let* n_clusters =
    match Json.member "n_clusters" j with
    | None -> Ok None
    | Some _ -> Result.map Option.some (fint "n_clusters" j)
  in
  let* max_iters =
    match Json.member "max_iters" j with
    | None -> Ok d.max_iters
    | Some _ -> fint "max_iters" j
  in
  let* strategy =
    match Json.member "strategy" j with
    | None -> Ok d.strategy
    | Some v -> (
      match Json.to_str v with
      | Some "kmeans" -> Ok Kmeans
      | Some "sweep" -> Ok Sweep
      | Some other -> Error (Printf.sprintf "strategy %S (kmeans|sweep)" other)
      | None -> Error "field \"strategy\": expected a string")
  in
  if target_size < 1 then Error "cluster: target_size must be >= 1"
  else if max_iters < 0 then Error "cluster: max_iters must be >= 0"
  else if (match n_clusters with Some k -> k < 1 | None -> false) then
    Error "cluster: n_clusters must be >= 1"
  else Ok { target_size; n_clusters; strategy; max_iters }

let rec algo_to_json (a : Flows.algo) =
  match a with
  | Flows.Lttree_ptree { max_fanout } ->
    Json.Obj
      [ ("flow", Json.Str "lttree-ptree"); ("max_fanout", int max_fanout) ]
  | Flows.Ptree_vg { refine_seg } ->
    Json.Obj
      ([ ("flow", Json.Str "ptree-vg") ]
      @ (match refine_seg with
         | None -> []
         | Some s -> [ ("refine_seg", int s) ]))
  | Flows.Merlin { cfg; objective } ->
    Json.Obj
      ([ ("flow", Json.Str "merlin"); ("objective", objective_to_json objective) ]
      @ (match cfg with None -> [] | Some c -> [ ("cfg", cfg_to_json c) ]))
  | Flows.Hier { cluster; inner } ->
    Json.Obj
      [ ("flow", Json.Str "hier");
        ("cluster", cluster_to_json cluster);
        ("inner", algo_to_json inner) ]

let rec algo_of_json j =
  let* flow = fstr "flow" j in
  match flow with
  | "lttree-ptree" ->
    let* max_fanout =
      match Json.member "max_fanout" j with
      | None -> Ok 10
      | Some _ -> fint "max_fanout" j
    in
    Ok (Flows.Lttree_ptree { max_fanout })
  | "ptree-vg" ->
    let* refine_seg =
      match Json.member "refine_seg" j with
      | None -> Ok None
      | Some _ -> Result.map Option.some (fint "refine_seg" j)
    in
    Ok (Flows.Ptree_vg { refine_seg })
  | "merlin" ->
    let* objective =
      match Json.member "objective" j with
      | None -> Ok Merlin_core.Objective.Best_req
      | Some o -> objective_of_json o
    in
    let* cfg =
      match Json.member "cfg" j with
      | None -> Ok None
      | Some c -> Result.map Option.some (cfg_of_json c)
    in
    Ok (Flows.Merlin { cfg; objective })
  | "hier" ->
    let* cluster =
      match Json.member "cluster" j with
      | None -> Ok Merlin_hier.Cluster.default
      | Some c -> cluster_of_json c
    in
    let* inner =
      match Json.member "inner" j with
      | None ->
        Ok (Flows.Merlin { cfg = None; objective = Merlin_core.Objective.Best_req })
      | Some i -> algo_of_json i
    in
    (match inner with
     | Flows.Hier _ -> Error "hier: inner flow must be flat"
     | Flows.Lttree_ptree _ | Flows.Ptree_vg _ | Flows.Merlin _ ->
       Ok (Flows.Hier { cluster; inner }))
  | other ->
    Error (Printf.sprintf "flow %S (lttree-ptree|ptree-vg|merlin|hier)" other)

let spec_to_json (s : Flows.spec) =
  Json.Obj
    [ ("tech", tech_to_json s.Flows.tech);
      ("buffers", Json.List (Array.to_list (Array.map buffer_to_json s.Flows.buffers)));
      ("algo", algo_to_json s.Flows.algo) ]

let spec_of_json j =
  let* tech = Result.bind (field "tech" j) tech_of_json in
  let* buffers = Result.bind (field "buffers" j) buffers_of_json in
  let* algo = Result.bind (field "algo" j) algo_of_json in
  Ok { Flows.tech; buffers; algo }

(* ------------------------------------------------------------------ *)
(* Cache key                                                           *)
(* ------------------------------------------------------------------ *)

let request_key (spec : Flows.spec) net =
  let spec_text = Json.to_string (spec_to_json spec) in
  Digest.to_hex
    (Digest.string (spec_text ^ "\x00" ^ Net_io.fingerprint net))

(* ------------------------------------------------------------------ *)
(* Shared message pieces                                               *)
(* ------------------------------------------------------------------ *)

let error_kind_to_string = function
  | Bad_request -> "bad-request"
  | Infeasible -> "infeasible"
  | Timeout -> "timeout"
  | Draining -> "draining"
  | Internal -> "internal"

let error_kind_of_string = function
  | "bad-request" -> Some Bad_request
  | "infeasible" -> Some Infeasible
  | "timeout" -> Some Timeout
  | "draining" -> Some Draining
  | "internal" -> Some Internal
  | _ -> None

let admin_type = function
  | Stats -> "stats"
  | Ping -> "ping"
  | Drain -> "drain"
  | Shutdown -> "shutdown"

let net_of_text text =
  match Net_io.of_string text with
  | net -> Ok net
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let decode_cached j =
  match Json.to_bool j with
  | Some true -> Ok Hit
  | Some false -> Ok Miss
  | None -> Error "field \"cached\": expected a bool"

(* The v2 envelope: every frame leads with v/job/seq/type.  Single-frame
   exchanges carry seq 0. *)
let envelope ~job ~seq ty fields =
  Json.Obj
    (("v", int version)
    :: ("job", Json.Str job)
    :: ("seq", int seq)
    :: ("type", Json.Str ty)
    :: fields)

(* ------------------------------------------------------------------ *)
(* Client messages                                                     *)
(* ------------------------------------------------------------------ *)

let route_fields (r : request) =
  [ ("spec", spec_to_json r.spec); ("net", Json.Str (Net_io.to_string r.net)) ]
  @ (match r.deadline_s with None -> [] | Some d -> [ ("deadline_s", num d) ])
  @ if r.want_tree then [ ("want_tree", Json.Bool true) ] else []

let batch_fields (b : batch) =
  [ ("spec", spec_to_json b.spec);
    ("nets",
     Json.List
       (List.map
          (fun (name, net) ->
             Json.Obj
               [ ("name", Json.Str name);
                 ("net", Json.Str (Net_io.to_string net)) ])
          b.nets)) ]
  @ (match b.deadline_s with None -> [] | Some d -> [ ("deadline_s", num d) ])
  @ (if b.want_tree then [ ("want_tree", Json.Bool true) ] else [])
  @
  match b.manifest with
  | None -> []
  | Some entries ->
    [ ("manifest",
       Json.List
         (List.map
            (fun (name, fp) ->
               Json.Obj
                 [ ("name", Json.Str name); ("fingerprint", Json.Str fp) ])
            entries)) ]

let client_msg_to_json (m : client_msg) =
  match m with
  | Route r -> envelope ~job:r.job ~seq:0 "route" (route_fields r)
  | Batch b -> envelope ~job:b.job ~seq:0 "batch" (batch_fields b)
  | Admin { job; op } -> envelope ~job ~seq:0 (admin_type op) []

let decode_route_body ~job j =
  let* spec = Result.bind (field "spec" j) spec_of_json in
  let* net = Result.bind (fstr "net" j) net_of_text in
  let* deadline_s = fnum_opt "deadline_s" j in
  let* want_tree = fbool_opt ~default:false "want_tree" j in
  Ok (Route { job; spec; net; deadline_s; want_tree })

let decode_named_list ~what ~value_field decode_value j =
  match Json.to_list j with
  | None -> Error (Printf.sprintf "field %S: expected an array" what)
  | Some items ->
    let* rev =
      List.fold_left
        (fun acc item ->
           let* acc = acc in
           let* name = fstr "name" item in
           let* v = Result.bind (field value_field item) decode_value in
           Ok ((name, v) :: acc))
        (Ok []) items
    in
    Ok (List.rev rev)

let decode_batch_body ~job j =
  let* spec = Result.bind (field "spec" j) spec_of_json in
  let* nets =
    Result.bind (field "nets" j)
      (decode_named_list ~what:"nets" ~value_field:"net" (fun v ->
           match Json.to_str v with
           | Some text -> net_of_text text
           | None -> Error "field \"net\": expected a string"))
  in
  let* deadline_s = fnum_opt "deadline_s" j in
  let* want_tree = fbool_opt ~default:false "want_tree" j in
  let* manifest =
    match Json.member "manifest" j with
    | None -> Ok None
    | Some m ->
      Result.map Option.some
        (decode_named_list ~what:"manifest" ~value_field:"fingerprint"
           (fun v ->
              match Json.to_str v with
              | Some fp -> Ok fp
              | None -> Error "field \"fingerprint\": expected a string")
           m)
  in
  Ok (Batch { job; spec; nets; deadline_s; want_tree; manifest })

let client_msg_of_v2 j =
  let* job = fstr "job" j in
  let* ty = fstr "type" j in
  match ty with
  | "stats" -> Ok (Admin { job; op = Stats })
  | "ping" -> Ok (Admin { job; op = Ping })
  | "drain" -> Ok (Admin { job; op = Drain })
  | "shutdown" -> Ok (Admin { job; op = Shutdown })
  | "route" -> decode_route_body ~job j
  | "batch" -> decode_batch_body ~job j
  | other ->
    Error
      (Printf.sprintf
         "message type %S (route|batch|stats|ping|drain|shutdown)" other)

(* v1 compatibility: the pre-envelope grammar.  [id] becomes [job];
   admin frames carried no correlation id, so they map to job "". *)
let client_msg_of_v1 j =
  let* ty = fstr "type" j in
  match ty with
  | "stats" -> Ok (Admin { job = ""; op = Stats })
  | "ping" -> Ok (Admin { job = ""; op = Ping })
  | "drain" -> Ok (Admin { job = ""; op = Drain })
  | "shutdown" -> Ok (Admin { job = ""; op = Shutdown })
  | "route" ->
    let* job = fstr "id" j in
    decode_route_body ~job j
  | other ->
    Error
      (Printf.sprintf "message type %S (route|stats|ping|drain|shutdown)"
         other)

let client_msg_of_json j =
  let* v = fint "v" j in
  match v with
  | 1 -> Result.map (fun m -> (V1, m)) (client_msg_of_v1 j)
  | 2 -> Result.map (fun m -> (V2, m)) (client_msg_of_v2 j)
  | v ->
    Error
      (Printf.sprintf "protocol version %d unsupported (expected 1 or %d)" v
         version)

(* ------------------------------------------------------------------ *)
(* Server messages                                                     *)
(* ------------------------------------------------------------------ *)

let status_to_json (s : net_status) =
  match s with
  | Routed { cached; metrics } ->
    Json.Obj
      [ ("state", Json.Str "routed");
        ("cached", Json.Bool (match cached with Hit -> true | Miss -> false));
        ("metrics", Metrics.to_json metrics) ]
  | Unchanged -> Json.Obj [ ("state", Json.Str "unchanged") ]
  | Net_failed { kind; message } ->
    Json.Obj
      [ ("state", Json.Str "failed");
        ("kind", Json.Str (error_kind_to_string kind));
        ("message", Json.Str message) ]
  | Cancelled -> Json.Obj [ ("state", Json.Str "cancelled") ]

let status_of_json j =
  let* state = fstr "state" j in
  match state with
  | "routed" ->
    let* cached = Result.bind (field "cached" j) decode_cached in
    let* metrics = Result.bind (field "metrics" j) Metrics.of_json in
    Ok (Routed { cached; metrics })
  | "unchanged" -> Ok Unchanged
  | "failed" ->
    let* kind_s = fstr "kind" j in
    let* kind =
      match error_kind_of_string kind_s with
      | Some k -> Ok k
      | None -> Error (Printf.sprintf "error kind %S" kind_s)
    in
    let* message = fstr "message" j in
    Ok (Net_failed { kind; message })
  | "cancelled" -> Ok Cancelled
  | other ->
    Error
      (Printf.sprintf "net state %S (routed|unchanged|failed|cancelled)" other)

let summary_to_json (s : summary) =
  Json.Obj
    [ ("total", int s.total);
      ("routed", int s.routed);
      ("hits", int s.hits);
      ("unchanged", int s.unchanged);
      ("failed", int s.failed);
      ("cancelled", int s.cancelled);
      ("wall_s", num s.wall_s) ]

let summary_of_json j =
  let* total = fint "total" j in
  let* routed = fint "routed" j in
  let* hits = fint "hits" j in
  let* unchanged = fint "unchanged" j in
  let* failed = fint "failed" j in
  let* cancelled = fint "cancelled" j in
  let* wall_s = fnum "wall_s" j in
  Ok { total; routed; hits; unchanged; failed; cancelled; wall_s }

let server_msg_to_v2_json (m : server_msg) =
  match m with
  | Reply { job; cached; metrics } ->
    envelope ~job ~seq:0 "reply"
      [ ("cached", Json.Bool (match cached with Hit -> true | Miss -> false));
        ("metrics", Metrics.to_json metrics) ]
  | Progress { job; seq; index; name; status } ->
    envelope ~job ~seq "progress"
      [ ("index", int index);
        ("name", Json.Str name);
        ("status", status_to_json status) ]
  | Batch_done { job; seq; summary } ->
    envelope ~job ~seq "batch-done" [ ("summary", summary_to_json summary) ]
  | Refused { job; kind; message } ->
    envelope ~job ~seq:0 "error"
      [ ("kind", Json.Str (error_kind_to_string kind));
        ("message", Json.Str message) ]
  | Stats_reply { job; stats } -> envelope ~job ~seq:0 "stats" [ ("stats", stats) ]
  | Pong { job } -> envelope ~job ~seq:0 "pong" []
  | Admin_ok { job; what } ->
    envelope ~job ~seq:0 "ok" [ ("what", Json.Str what) ]

(* Replies rendered for a v1 peer: the pre-envelope grammar.  The v1
   grammar cannot express multi-frame kinds — and a v1 peer cannot have
   sent the [Batch] that produces them — so asking for one is a caller
   bug, not a protocol state. *)
let server_msg_to_v1_json (m : server_msg) =
  let v1 ty fields = Json.Obj (("v", int 1) :: ("type", Json.Str ty) :: fields) in
  match m with
  | Reply { job; cached; metrics } ->
    v1 "reply"
      [ ("id", Json.Str job);
        ("cached", Json.Bool (match cached with Hit -> true | Miss -> false));
        ("metrics", Metrics.to_json metrics) ]
  | Refused { job; kind; message } ->
    v1 "error"
      ((if String.equal job "" then [] else [ ("id", Json.Str job) ])
      @ [ ("kind", Json.Str (error_kind_to_string kind));
          ("message", Json.Str message) ])
  | Stats_reply { stats; _ } -> v1 "stats" [ ("stats", stats) ]
  | Pong _ -> v1 "pong" []
  | Admin_ok { what; _ } -> v1 "ok" [ ("what", Json.Str what) ]
  | Progress _ | Batch_done _ ->
    invalid_arg "Wire.encode_server: v1 cannot carry multi-frame replies"

let server_msg_of_v2 j =
  let* job = fstr "job" j in
  let* ty = fstr "type" j in
  match ty with
  | "pong" -> Ok (Pong { job })
  | "ok" ->
    let* what = fstr "what" j in
    Ok (Admin_ok { job; what })
  | "stats" ->
    let* stats = field "stats" j in
    Ok (Stats_reply { job; stats })
  | "reply" ->
    let* cached = Result.bind (field "cached" j) decode_cached in
    let* metrics = Result.bind (field "metrics" j) Metrics.of_json in
    Ok (Reply { job; cached; metrics })
  | "progress" ->
    let* seq = fint "seq" j in
    let* index = fint "index" j in
    let* name = fstr "name" j in
    let* status = Result.bind (field "status" j) status_of_json in
    Ok (Progress { job; seq; index; name; status })
  | "batch-done" ->
    let* seq = fint "seq" j in
    let* summary = Result.bind (field "summary" j) summary_of_json in
    Ok (Batch_done { job; seq; summary })
  | "error" ->
    let* kind_s = fstr "kind" j in
    let* kind =
      match error_kind_of_string kind_s with
      | Some k -> Ok k
      | None -> Error (Printf.sprintf "error kind %S" kind_s)
    in
    let* message = fstr "message" j in
    Ok (Refused { job; kind; message })
  | other ->
    Error
      (Printf.sprintf
         "message type %S (reply|progress|batch-done|error|stats|pong|ok)"
         other)

let server_msg_of_v1 j =
  let* ty = fstr "type" j in
  match ty with
  | "pong" -> Ok (Pong { job = "" })
  | "ok" ->
    let* what = fstr "what" j in
    Ok (Admin_ok { job = ""; what })
  | "stats" ->
    let* stats = field "stats" j in
    Ok (Stats_reply { job = ""; stats })
  | "reply" ->
    let* job = fstr "id" j in
    let* cached = Result.bind (field "cached" j) decode_cached in
    let* metrics = Result.bind (field "metrics" j) Metrics.of_json in
    Ok (Reply { job; cached; metrics })
  | "error" ->
    let* kind_s = fstr "kind" j in
    let* kind =
      match error_kind_of_string kind_s with
      | Some k -> Ok k
      | None -> Error (Printf.sprintf "error kind %S" kind_s)
    in
    let* message = fstr "message" j in
    let job = Option.value (Option.bind (Json.member "id" j) Json.to_str) ~default:"" in
    Ok (Refused { job; kind; message })
  | other ->
    Error (Printf.sprintf "message type %S (reply|error|stats|pong|ok)" other)

let server_msg_of_json j =
  let* v = fint "v" j in
  match v with
  | 1 -> Result.map (fun m -> (V1, m)) (server_msg_of_v1 j)
  | 2 -> Result.map (fun m -> (V2, m)) (server_msg_of_v2 j)
  | v ->
    Error
      (Printf.sprintf "protocol version %d unsupported (expected 1 or %d)" v
         version)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let decode_client text =
  match Json.of_string text with
  | j -> client_msg_of_json j
  | exception Json.Parse_error msg -> Error msg

let decode_server text =
  match Json.of_string text with
  | j -> server_msg_of_json j
  | exception Json.Parse_error msg -> Error msg

let encode_client m = Json.to_string (client_msg_to_json m)

let encode_server ?(proto = V2) m =
  match proto with
  | V2 -> Json.to_string (server_msg_to_v2_json m)
  | V1 -> Json.to_string (server_msg_to_v1_json m)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let default_max_frame = 64 * 1024 * 1024

type read_error =
  | Closed            (* orderly EOF before any byte of a frame *)
  | Truncated         (* EOF mid-frame *)
  | Oversized of int  (* declared length beyond the limit *)

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

let write_frame fd payload =
  let n = String.length payload in
  let buf = Bytes.create (4 + n) in
  Bytes.set_int32_be buf 0 (Int32.of_int n);
  Bytes.blit_string payload 0 buf 4 n;
  write_all fd buf 0 (4 + n)

(* [read_exact] distinguishes EOF-at-a-frame-boundary (orderly close)
   from EOF mid-frame (peer died); EINTR restarts. *)
let read_exact fd buf len =
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> if off = 0 then Error Closed else Error Truncated
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_frame ?(max_frame = default_max_frame) fd =
  let hdr = Bytes.create 4 in
  let* () = read_exact fd hdr 4 in
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > max_frame then Error (Oversized len)
  else begin
    let buf = Bytes.create len in
    match read_exact fd buf len with
    | Ok () -> Ok (Bytes.unsafe_to_string buf)
    | Error Closed | Error Truncated -> Error Truncated (* EOF after header *)
    | Error (Oversized _ as e) -> Error e
  end
