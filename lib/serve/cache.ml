(* Two-tier result cache: the in-memory LRU in front, an optional
   persistent {!Store} behind it.

   The scheduler depends on this interface, not on the concrete LRU —
   memory-only and store-backed servers share one code path.  A find
   consults memory first; a memory miss falls through to the store,
   decodes the blob and promotes the value back into memory, so a
   restarted daemon refills its hot set from disk instead of the pool.
   An add writes through to both tiers.

   The store holds strings; the value codec travels with the backend.
   A blob that passes the store's checksum but no longer decodes
   (schema drift) is treated as a miss — the caller recomputes and the
   write-through replaces the stale blob. *)

type 'a codec = {
  encode : 'a -> string;
  decode : string -> 'a option;
}

type 'a t = {
  memory : 'a Lru.t;
  backend : (Store.t * 'a codec) option;
}

let create ?store ~capacity () =
  { memory = Lru.create ~capacity; backend = store }

let find t key =
  match Lru.find t.memory key with
  | Some _ as hit -> hit
  | None -> (
    match t.backend with
    | None -> None
    | Some (store, codec) -> (
      match Option.bind (Store.find store key) codec.decode with
      | None -> None
      | Some value ->
        Lru.add t.memory key value;
        Some value))

let add t key value =
  Lru.add t.memory key value;
  match t.backend with
  | None -> ()
  | Some (store, codec) -> Store.add store key (codec.encode value)

type stats = {
  memory : Lru.stats;
  store : Store.stats option;
}

let stats (t : 'a t) =
  { memory = Lru.stats t.memory;
    store = Option.map (fun (s, _) -> Store.stats s) t.backend }
