(** Persistent content-addressed blob store — the on-disk tier under
    the serving cache.

    One file per key under the store directory; writes are atomic
    (same-directory tmp file + [Unix.rename]), so readers see the old
    blob, the new blob, or nothing — never a partial write.  Blobs are
    checksummed: a truncated, torn or garbage file reads back as
    [None] (counted in [errors]) rather than raising, so a damaged
    store degrades to recompute-and-rewrite.  Failed writes (full
    disk, permissions) are likewise swallowed into [errors]: the
    daemon degrades to memory-only caching.

    Thread-safe; the internal lock covers only counters, file I/O runs
    unlocked (last atomic rename of a key wins). *)

type t

(** Creates the directory (and parents) when missing.  Raises
    [Invalid_argument] when the path exists and is not a directory. *)
val open_dir : string -> t

(** Keys must be filename-safe ([0-9a-zA-Z-_], nonempty) — request
    keys are hex digests, which always qualify; anything else raises
    [Invalid_argument]. *)
val find : t -> string -> string option

val add : t -> string -> string -> unit

type stats = {
  hits : int;
  misses : int;      (** absent blobs; damaged ones count here too *)
  writes : int;      (** blobs durably renamed into place *)
  errors : int;      (** damaged blobs seen + failed writes *)
  bytes_read : int;  (** payload bytes of successful reads *)
  bytes_written : int;
}

(** Consistent snapshot of the counters. *)
val stats : t -> stats
