(* Thread-safe LRU result cache.

   Hashtbl for lookup plus an intrusive doubly-linked recency list:
   find and add are O(1), eviction pops the list tail.  One mutex
   guards everything — connection handler threads and the scheduler
   share the cache, and the critical sections are a few pointer swaps,
   so finer-grained locking would buy nothing.  Hit/miss/eviction
   counters live under the same lock so a stats snapshot is
   consistent. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards the most recent end *)
  mutable next : 'a node option;  (* towards the least recent end *)
}

type 'a t = {
  capacity : int;
  tbl : (string, 'a node) Hashtbl.t;
  lock : Mutex.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
  mutable size : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  capacity : int;
  size : int;
  hits : int;
  misses : int;
  evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { capacity;
    tbl = Hashtbl.create (2 * capacity);
    lock = Mutex.create ();
    head = None;
    tail = None;
    size = 0;
    hits = 0;
    misses = 0;
    evictions = 0 }

(* List surgery below assumes t.lock is held. *)

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> ());
  t.head <- Some node;
  match t.tail with None -> t.tail <- Some node | Some _ -> ()

let find t key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None ->
        t.misses <- t.misses + 1;
        None
      | Some node ->
        t.hits <- t.hits + 1;
        unlink t node;
        push_front t node;
        Some node.value)

let add t key value =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some node ->
        node.value <- value;
        unlink t node;
        push_front t node
      | None ->
        let node = { key; value; prev = None; next = None } in
        Hashtbl.replace t.tbl key node;
        push_front t node;
        t.size <- t.size + 1;
        if t.size > t.capacity then (
          match t.tail with
          | None -> ()  (* capacity >= 1 and size > capacity: unreachable *)
          | Some lru ->
            unlink t lru;
            Hashtbl.remove t.tbl lru.key;
            t.size <- t.size - 1;
            t.evictions <- t.evictions + 1))

let stats t =
  Mutex.protect t.lock (fun () ->
      { capacity = t.capacity;
        size = t.size;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions })
