(* The routing-service daemon.

   One accept-loop thread per listener (Unix-domain socket always, TCP
   optionally) and one thread per connection; compute happens on the
   shared {!Merlin_exec.Pool} via {!Scheduler}, so connection threads
   only block, they never burn a domain.  A connection thread owns its
   socket exclusively — requests on one connection are answered in
   order, concurrency comes from multiple connections.  Within a batch
   the scheduler's worker team emits progress frames concurrently, so
   each connection carries an emitter whose mutex serialises frame
   writes and latches the first write failure ([dead]): once the peer
   is gone, remaining batch items cancel instead of computing for a
   broken pipe.

   The cache is the two-tier {!Cache}: LRU memory in front and, when
   [store_dir] is set, a persistent content-addressed {!Store} behind
   it holding {!Merlin_report.Metrics} blobs.  Values are cached with
   the tree attached and stripped per-reply, so one cache entry serves
   both tree-less and [want_tree] requests — and a restarted daemon
   answers repeat traffic from disk with zero pool submissions.

   Error discipline: every decodable defect in a request produces a
   structured [Refused] reply on the same connection; the socket only
   dies on framing damage we cannot resynchronise from (oversized or
   truncated frames).  A connection-level exception closes that
   connection and nothing else.  Replies are rendered in the protocol
   version the request spoke, so v1 clients keep working.

   Drain/shutdown: [Drain] flips the server to refusing new routes and
   batches ([Refused Draining]) and cancels the queued remainder of
   in-flight batches, while stats/ping keep answering and in-flight
   computes finish.  [Shutdown] drains and additionally wakes {!wait},
   which closes the listeners, waits for the active-request count to
   reach zero, joins the accept threads and shuts the pool down. *)

module Pool = Merlin_exec.Pool
module Clock = Merlin_exec.Clock
module Flows = Merlin_flows.Flows
module Json = Merlin_report.Json
module Metrics = Merlin_report.Metrics
module Net_io = Merlin_net.Net_io

type config = {
  socket_path : string;
  tcp : (string * int) option;
  domains : int option;
  cache_capacity : int;
  store_dir : string option;
  default_deadline_s : float option;
  max_frame : int;
}

let default_config ~socket_path =
  { socket_path;
    tcp = None;
    domains = None;
    cache_capacity = 256;
    store_dir = None;
    default_deadline_s = None;
    max_frame = Wire.default_max_frame }

type t = {
  cfg : config;
  sched : Metrics.t Scheduler.t;
  lock : Mutex.t;
  cond : Condition.t;
  listeners : Unix.file_descr list;  (* closed by [wait], after the joins *)
  tcp_fd : Unix.file_descr option;
  mutable accept_threads : Thread.t list;
  mutable draining : bool;
  mutable stopping : bool;
  mutable active : int;       (* route requests / batches being computed *)
  mutable connections : int;  (* accepted so far *)
  mutable requests : int;     (* frames dispatched *)
  mutable batches : int;      (* batch jobs accepted *)
  mutable refused : int;      (* error replies sent *)
  started_at : float;
}

(* Per-connection frame writer.  [em] serialises writes (batch workers
   emit progress concurrently with each other); [dead] latches the
   first write failure so the rest of the job cancels instead of
   writing into a broken pipe. *)
type emitter = {
  fd : Unix.file_descr;
  em : Mutex.t;
  mutable dead : bool;
}

(* Cached values cross the store as canonical metrics JSON; a blob that
   no longer decodes (schema drift) reads as a miss and is rewritten. *)
let metrics_codec : Metrics.t Cache.codec =
  { Cache.encode = (fun m -> Json.to_string (Metrics.to_json m));
    decode =
      (fun text ->
         match Json.of_string text with
         | j -> (
           match Metrics.of_json j with Ok m -> Some m | Error _ -> None)
         | exception Json.Parse_error _ -> None) }

(* Entries are cached with the tree attached; replies strip it unless
   asked, so one entry serves both shapes of request. *)
let reply_metrics ~want_tree (m : Metrics.t) =
  if want_tree then m else { m with Metrics.tree = None }

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let int_field n i = (n, Json.Num (float_of_int i))

let stats_json t =
  let server, cache, pool =
    Mutex.protect t.lock (fun () ->
        ( Json.Obj
            [ int_field "connections" t.connections;
              int_field "requests" t.requests;
              int_field "batches" t.batches;
              int_field "refused" t.refused;
              int_field "active" t.active;
              ("draining", Json.Bool t.draining);
              ("uptime_s", Json.Num (Clock.elapsed_s t.started_at)) ],
          Scheduler.cache_stats t.sched,
          Pool.stats (Scheduler.pool t.sched) ))
  in
  let mem = cache.Cache.memory in
  let cache_json =
    Json.Obj
      ([ int_field "capacity" mem.Lru.capacity;
         int_field "size" mem.Lru.size;
         int_field "hits" mem.Lru.hits;
         int_field "misses" mem.Lru.misses;
         int_field "evictions" mem.Lru.evictions ]
      @
      match cache.Cache.store with
      | None -> []
      | Some s ->
        [ ("store",
           Json.Obj
             [ int_field "hits" s.Store.hits;
               int_field "misses" s.Store.misses;
               int_field "writes" s.Store.writes;
               int_field "errors" s.Store.errors;
               int_field "bytes_read" s.Store.bytes_read;
               int_field "bytes_written" s.Store.bytes_written ]) ])
  in
  let pool_json =
    Json.Obj
      [ int_field "domains" pool.Pool.domains;
        int_field "submitted" pool.Pool.submitted;
        int_field "completed" pool.Pool.completed;
        int_field "failed" pool.Pool.failed;
        int_field "cancelled" pool.Pool.cancelled;
        int_field "timed_out" pool.Pool.timed_out ]
  in
  Json.Obj [ ("server", server); ("cache", cache_json); ("pool", pool_json) ]

(* ------------------------------------------------------------------ *)
(* Frame emission                                                      *)
(* ------------------------------------------------------------------ *)

let emit_frame em payload =
  Mutex.protect em.em (fun () ->
      if not em.dead then
        (* The emitter lock exists to serialise frame writes on this
           connection; only this connection's frames wait behind a slow
           peer, and a dead peer latches [dead] instead of blocking. *)
        match Wire.write_frame em.fd payload (* check: blocking-ok *) with
        | () -> ()
        | exception Unix.Unix_error _ -> em.dead <- true)

let send t proto em (reply : Wire.server_msg) =
  (match reply with
   | Wire.Refused _ ->
     Mutex.protect t.lock (fun () -> t.refused <- t.refused + 1)
   | Wire.Reply _ | Wire.Progress _ | Wire.Batch_done _ | Wire.Stats_reply _
   | Wire.Pong _ | Wire.Admin_ok _ -> ());
  emit_frame em (Wire.encode_server ~proto reply)

(* ------------------------------------------------------------------ *)
(* Single-route dispatch                                               *)
(* ------------------------------------------------------------------ *)

let route t (r : Wire.request) =
  let refused =
    Mutex.protect t.lock (fun () ->
        if t.draining then true
        else begin
          t.active <- t.active + 1;
          false
        end)
  in
  if refused then
    Wire.Refused
      { job = r.Wire.job;
        kind = Wire.Draining;
        message = "server is draining; not accepting new routes" }
  else begin
    let finish () =
      Mutex.protect t.lock (fun () ->
          t.active <- t.active - 1;
          Condition.broadcast t.cond)
    in
    let key = Wire.request_key r.Wire.spec r.Wire.net in
    let deadline_s =
      match r.Wire.deadline_s with
      | Some _ as d -> d
      | None -> t.cfg.default_deadline_s
    in
    let spec = r.Wire.spec and net = r.Wire.net in
    (* Hand the job the scheduler's own pool: the hierarchical flow
       farms its clusters as nested pool tasks (helping [Pool.await]
       makes nested submit deadlock-free); flat flows ignore it. *)
    let pool = Scheduler.pool t.sched in
    let outcome =
      match
        (* Flows.run's only nondeterminism is its runtime telemetry
           (Clock.timed); the cached payload is replay-identical bar
           the runtime field, which every comparison zeroes. *)
        Scheduler.schedule t.sched ~key ?deadline_s (fun () ->
            Flows.wire_metrics ~with_tree:true
              (Flows.run ~pool spec net (* check: nondet-ok *)))
      with
      | o -> finish (); o
      | exception e -> finish (); raise e
    in
    match outcome with
    | Scheduler.Done { value; cached } ->
      Wire.Reply
        { job = r.Wire.job;
          cached;
          metrics = reply_metrics ~want_tree:r.Wire.want_tree value }
    | Scheduler.Timed_out budget ->
      Wire.Refused
        { job = r.Wire.job;
          kind = Wire.Timeout;
          message =
            Printf.sprintf "deadline of %gs exceeded; result abandoned" budget }
    | Scheduler.Failed (Flows.Infeasible msg) ->
      Wire.Refused { job = r.Wire.job; kind = Wire.Infeasible; message = msg }
    | Scheduler.Failed e ->
      Wire.Refused
        { job = r.Wire.job;
          kind = Wire.Internal;
          message = Printexc.to_string e }
  end

(* ------------------------------------------------------------------ *)
(* Batch dispatch                                                      *)
(* ------------------------------------------------------------------ *)

let status_of_outcome ~want_tree (o : Metrics.t Scheduler.item_outcome) =
  match o with
  | Scheduler.Item (Scheduler.Done { value; cached }) ->
    Wire.Routed { cached; metrics = reply_metrics ~want_tree value }
  | Scheduler.Item (Scheduler.Timed_out budget) ->
    Wire.Net_failed
      { kind = Wire.Timeout;
        message =
          Printf.sprintf "deadline of %gs exceeded; result abandoned" budget }
  | Scheduler.Item (Scheduler.Failed (Flows.Infeasible msg)) ->
    Wire.Net_failed { kind = Wire.Infeasible; message = msg }
  | Scheduler.Item (Scheduler.Failed e) ->
    Wire.Net_failed { kind = Wire.Internal; message = Printexc.to_string e }
  | Scheduler.Item_cancelled -> Wire.Cancelled

(* One batch: ECO-partition against the manifest, fan the rest over the
   pool via [Scheduler.run_batch], stream a [Progress] frame as each
   net settles, close with a [Batch_done] summary.  The summary is
   computed from the per-index status table, not from arrival order, so
   it is deterministic for a given set of outcomes at any pool size. *)
let handle_batch t em (b : Wire.batch) =
  let job = b.Wire.job in
  let refused =
    Mutex.protect t.lock (fun () ->
        if t.draining then true
        else begin
          t.active <- t.active + 1;
          t.batches <- t.batches + 1;
          false
        end)
  in
  if refused then
    send t Wire.V2 em
      (Wire.Refused
         { job;
           kind = Wire.Draining;
           message = "server is draining; not accepting new routes" })
  else
    Fun.protect
      ~finally:(fun () ->
        Mutex.protect t.lock (fun () ->
            t.active <- t.active - 1;
            Condition.broadcast t.cond))
      (fun () ->
        let started = Clock.monotonic_s () in
        let spec = b.Wire.spec in
        let want_tree = b.Wire.want_tree in
        let deadline_s =
          match b.Wire.deadline_s with
          | Some _ as d -> d
          | None -> t.cfg.default_deadline_s
        in
        let nets = Array.of_list b.Wire.nets in
        let n = Array.length nets in
        let statuses = Array.make n None in
        let seq = ref 0 in
        let emit index name status =
          Mutex.protect em.em (fun () ->
              statuses.(index) <- Some status;
              if not em.dead then begin
                incr seq;
                let payload =
                  Wire.encode_server
                    (Wire.Progress { job; seq = !seq; index; name; status })
                in
                (* Serialised per-connection write; see [emit_frame]. *)
                match Wire.write_frame em.fd payload (* check: blocking-ok *) with
                | () -> ()
                | exception Unix.Unix_error _ -> em.dead <- true
              end)
        in
        (* ECO partition: a net whose fingerprint still matches the
           manifest is answered [Unchanged] up front, before any pool
           work; everything else routes. *)
        let fps = Hashtbl.create 16 in
        (match b.Wire.manifest with
         | None -> ()
         | Some entries ->
           List.iter (fun (name, fp) -> Hashtbl.replace fps name fp) entries);
        let to_route = ref [] in
        Array.iteri
          (fun i (name, net) ->
             let unchanged =
               match Hashtbl.find_opt fps name with
               | Some fp -> String.equal fp (Net_io.fingerprint net)
               | None -> false
             in
             if unchanged then emit i name Wire.Unchanged
             else to_route := (i, name, net) :: !to_route)
          nets;
        let to_route = Array.of_list (List.rev !to_route) in
        let pool = Scheduler.pool t.sched in
        let items =
          Array.to_list
            (Array.map
               (fun (_, _, net) ->
                  ( Wire.request_key spec net,
                    fun () ->
                      (* Same replay-identical-bar-runtime argument as
                         the single-route path. *)
                      Flows.wire_metrics ~with_tree:true
                        (Flows.run ~pool spec net) ))
               to_route)
        in
        (* Queued nets cancel on client disconnect or drain; in-flight
           ones finish (their result is still worth caching). *)
        let cancelled () =
          Mutex.protect em.em (fun () -> em.dead)
          || Mutex.protect t.lock (fun () -> t.draining)
        in
        let on_item i outcome =
          let index, name, _ = to_route.(i) in
          emit index name (status_of_outcome ~want_tree outcome)
        in
        Scheduler.run_batch t.sched ?deadline_s ~cancelled ~on_item items;
        let routed = ref 0 and hits = ref 0 and unchanged = ref 0 in
        let failed = ref 0 and cancelled_n = ref 0 in
        Array.iter
          (fun st ->
             match st with
             | Some (Wire.Routed { cached = Wire.Miss; _ }) -> incr routed
             | Some (Wire.Routed { cached = Wire.Hit; _ }) -> incr hits
             | Some Wire.Unchanged -> incr unchanged
             | Some (Wire.Net_failed _) -> incr failed
             | Some Wire.Cancelled | None -> incr cancelled_n)
          statuses;
        let summary =
          { Wire.total = n;
            routed = !routed;
            hits = !hits;
            unchanged = !unchanged;
            failed = !failed;
            cancelled = !cancelled_n;
            wall_s = Clock.elapsed_s started }
        in
        Mutex.protect em.em (fun () ->
            incr seq;
            if not em.dead then
              let payload =
                Wire.encode_server
                  (Wire.Batch_done { job; seq = !seq; summary })
              in
              (* Serialised per-connection write; see [emit_frame]. *)
              match Wire.write_frame em.fd payload (* check: blocking-ok *) with
              | () -> ()
              | exception Unix.Unix_error _ -> em.dead <- true))

(* ------------------------------------------------------------------ *)
(* Connection handling                                                 *)
(* ------------------------------------------------------------------ *)

let request_stop t =
  Mutex.protect t.lock (fun () ->
      t.draining <- true;
      t.stopping <- true;
      Condition.broadcast t.cond)

let dispatch t proto em (msg : Wire.client_msg) =
  match msg with
  | Wire.Route r -> send t proto em (route t r)
  | Wire.Batch b -> handle_batch t em b
  | Wire.Admin { job; op } -> (
    match op with
    | Wire.Stats ->
      send t proto em (Wire.Stats_reply { job; stats = stats_json t })
    | Wire.Ping -> send t proto em (Wire.Pong { job })
    | Wire.Drain ->
      Mutex.protect t.lock (fun () -> t.draining <- true);
      send t proto em (Wire.Admin_ok { job; what = "draining" })
    | Wire.Shutdown ->
      Mutex.protect t.lock (fun () -> t.draining <- true);
      send t proto em (Wire.Admin_ok { job; what = "shutdown" }))

let handle_connection t fd =
  let em = { fd; em = Mutex.create (); dead = false } in
  let rec loop () =
    match Wire.read_frame ~max_frame:t.cfg.max_frame fd with
    | Error Wire.Closed -> ()
    | Error Wire.Truncated -> ()  (* peer died mid-frame; nothing to say *)
    | Error (Wire.Oversized n) ->
      (* The stream cannot be resynchronised past an oversized frame:
         refuse loudly, then close. *)
      send t Wire.V2 em
        (Wire.Refused
           { job = "";
             kind = Wire.Bad_request;
             message =
               Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
                 t.cfg.max_frame })
    | Ok payload ->
      Mutex.protect t.lock (fun () -> t.requests <- t.requests + 1);
      (match Wire.decode_client payload with
       | Error msg ->
         send t Wire.V2 em
           (Wire.Refused { job = ""; kind = Wire.Bad_request; message = msg });
         loop ()
       | Ok (proto, msg) ->
         dispatch t proto em msg;
         (match msg with
          | Wire.Admin { op = Wire.Shutdown; _ } -> request_stop t
          | _ -> ());
         loop ())
  in
  (match loop () with
   | () -> ()
   | exception e ->
     (* A broken connection must never take the daemon down. *)
     Logs.debug (fun m ->
         m "serve: connection error: %s" (Printexc.to_string e)));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Closing an fd does not wake a thread blocked in accept(2) on Linux,
   so the accept loop polls the stop flag through a short select
   timeout instead of blocking; the listener is only closed by [wait],
   after this thread is joined. *)
let accept_loop t listener =
  let stopping () = Mutex.protect t.lock (fun () -> t.stopping) in
  let rec loop () =
    if stopping () then ()
    else
      match Unix.select [ listener ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true listener with
        | fd, _ ->
          Mutex.protect t.lock (fun () -> t.connections <- t.connections + 1);
          ignore (Thread.create (fun () -> handle_connection t fd) ());
          loop ()
        | exception
            Unix.Unix_error
              ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
          ->
          loop ()
        | exception Unix.Unix_error _ ->
          (* The listener is unusable; nothing left to accept. *)
          ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  fd

let listen_tcp host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ ->
      failwith (Printf.sprintf "Server.listen_tcp: invalid address %S" host)
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (addr, port));
     Unix.listen fd 64
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  fd

let start cfg =
  (* A peer closing mid-write must surface as EPIPE, not kill us. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* Open the store before anything that needs tearing down: a bad
     store path fails the whole start cleanly. *)
  let store =
    match cfg.store_dir with
    | None -> None
    | Some dir -> Some (Store.open_dir dir, metrics_codec)
  in
  let cache = Cache.create ?store ~capacity:cfg.cache_capacity () in
  let pool = Pool.create ?domains:cfg.domains () in
  let sched = Scheduler.create ~cache pool in
  let unix_fd =
    match listen_unix cfg.socket_path with
    | fd -> fd
    | exception e ->
      Pool.shutdown pool;
      raise e
  in
  let tcp_fd =
    match cfg.tcp with
    | None -> None
    | Some (host, port) -> (
      match listen_tcp host port with
      | fd -> Some fd
      | exception e ->
        (try Unix.close unix_fd with Unix.Unix_error _ -> ());
        Pool.shutdown pool;
        raise e)
  in
  let listeners =
    unix_fd :: (match tcp_fd with None -> [] | Some fd -> [ fd ])
  in
  let t =
    { cfg;
      sched;
      lock = Mutex.create ();
      cond = Condition.create ();
      listeners;
      tcp_fd;
      accept_threads = [];
      draining = false;
      stopping = false;
      active = 0;
      connections = 0;
      requests = 0;
      batches = 0;
      refused = 0;
      started_at = Clock.monotonic_s () }
  in
  t.accept_threads <-
    List.map (fun fd -> Thread.create (fun () -> accept_loop t fd) ()) listeners;
  t

let wait t =
  Mutex.protect t.lock (fun () ->
      while not t.stopping do
        Condition.wait t.cond t.lock
      done;
      while t.active > 0 do
        Condition.wait t.cond t.lock
      done);
  List.iter Thread.join t.accept_threads;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listeners;
  Pool.shutdown (Scheduler.pool t.sched);
  try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ()

let stop t =
  request_stop t;
  wait t

(* Port 0 in [config.tcp] asks the kernel for an ephemeral port; this
   reports the one actually bound. *)
let tcp_port t =
  match t.tcp_fd with
  | None -> None
  | Some fd -> (
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, port) -> Some port
    | Unix.ADDR_UNIX _ -> None)
