(* The routing-service daemon.

   One accept-loop thread per listener (Unix-domain socket always, TCP
   optionally) and one thread per connection; compute happens on the
   shared {!Merlin_exec.Pool} via {!Scheduler}, so connection threads
   only block, they never burn a domain.  A connection thread owns its
   socket exclusively — requests on one connection are answered in
   order, concurrency comes from multiple connections.

   Error discipline: every decodable defect in a request produces a
   structured [Refused] reply on the same connection; the socket only
   dies on framing damage we cannot resynchronise from (oversized or
   truncated frames).  A connection-level exception closes that
   connection and nothing else.

   Drain/shutdown: [Drain] flips the server to refusing new routes
   ([Refused Draining]) while stats/ping keep answering and in-flight
   computes finish.  [Shutdown] drains and additionally wakes {!wait},
   which closes the listeners, waits for the active-request count to
   reach zero, joins the accept threads and shuts the pool down. *)

module Pool = Merlin_exec.Pool
module Clock = Merlin_exec.Clock
module Flows = Merlin_flows.Flows
module Json = Merlin_report.Json

type config = {
  socket_path : string;
  tcp : (string * int) option;
  domains : int option;
  cache_capacity : int;
  default_deadline_s : float option;
  max_frame : int;
}

let default_config ~socket_path =
  { socket_path;
    tcp = None;
    domains = None;
    cache_capacity = 256;
    default_deadline_s = None;
    max_frame = Wire.default_max_frame }

type t = {
  cfg : config;
  sched : Flows.metrics Scheduler.t;
  lock : Mutex.t;
  cond : Condition.t;
  listeners : Unix.file_descr list;  (* closed by [wait], after the joins *)
  tcp_fd : Unix.file_descr option;
  mutable accept_threads : Thread.t list;
  mutable draining : bool;
  mutable stopping : bool;
  mutable active : int;       (* route requests being computed *)
  mutable connections : int;  (* accepted so far *)
  mutable requests : int;     (* frames dispatched *)
  mutable refused : int;      (* error replies sent *)
  started_at : float;
}

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let int_field n i = (n, Json.Num (float_of_int i))

let stats_json t =
  let server, cache, pool =
    Mutex.protect t.lock (fun () ->
        ( Json.Obj
            [ int_field "connections" t.connections;
              int_field "requests" t.requests;
              int_field "refused" t.refused;
              int_field "active" t.active;
              ("draining", Json.Bool t.draining);
              ("uptime_s", Json.Num (Clock.elapsed_s t.started_at)) ],
          Scheduler.cache_stats t.sched,
          Pool.stats (Scheduler.pool t.sched) ))
  in
  let cache_json =
    Json.Obj
      [ int_field "capacity" cache.Lru.capacity;
        int_field "size" cache.Lru.size;
        int_field "hits" cache.Lru.hits;
        int_field "misses" cache.Lru.misses;
        int_field "evictions" cache.Lru.evictions ]
  in
  let pool_json =
    Json.Obj
      [ int_field "domains" pool.Pool.domains;
        int_field "submitted" pool.Pool.submitted;
        int_field "completed" pool.Pool.completed;
        int_field "failed" pool.Pool.failed;
        int_field "cancelled" pool.Pool.cancelled;
        int_field "timed_out" pool.Pool.timed_out ]
  in
  Json.Obj [ ("server", server); ("cache", cache_json); ("pool", pool_json) ]

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let route t (r : Wire.request) =
  let refused =
    Mutex.protect t.lock (fun () ->
        if t.draining then true
        else begin
          t.active <- t.active + 1;
          false
        end)
  in
  if refused then
    Wire.Refused
      { id = Some r.Wire.id;
        kind = Wire.Draining;
        message = "server is draining; not accepting new routes" }
  else begin
    let finish () =
      Mutex.protect t.lock (fun () ->
          t.active <- t.active - 1;
          Condition.broadcast t.cond)
    in
    let key = Wire.request_key r.Wire.spec r.Wire.net in
    let deadline_s =
      match r.Wire.deadline_s with
      | Some _ as d -> d
      | None -> t.cfg.default_deadline_s
    in
    let spec = r.Wire.spec and net = r.Wire.net in
    (* Hand the job the scheduler's own pool: the hierarchical flow
       farms its clusters as nested pool tasks (helping [Pool.await]
       makes nested submit deadlock-free); flat flows ignore it. *)
    let pool = Scheduler.pool t.sched in
    let outcome =
      match
        (* Flows.run's only nondeterminism is its runtime telemetry
           (Clock.timed); the cached payload is replay-identical bar
           the runtime field, which every comparison zeroes. *)
        Scheduler.schedule t.sched ~key ?deadline_s (fun () ->
            Flows.run ~pool spec net (* check: nondet-ok *))
      with
      | o -> finish (); o
      | exception e -> finish (); raise e
    in
    match outcome with
    | Scheduler.Done { value; cached } ->
      Wire.Reply
        { id = r.Wire.id;
          cached;
          metrics = Flows.wire_metrics ~with_tree:r.Wire.want_tree value }
    | Scheduler.Timed_out budget ->
      Wire.Refused
        { id = Some r.Wire.id;
          kind = Wire.Timeout;
          message =
            Printf.sprintf "deadline of %gs exceeded; result abandoned" budget }
    | Scheduler.Failed (Flows.Infeasible msg) ->
      Wire.Refused { id = Some r.Wire.id; kind = Wire.Infeasible; message = msg }
    | Scheduler.Failed e ->
      Wire.Refused
        { id = Some r.Wire.id;
          kind = Wire.Internal;
          message = Printexc.to_string e }
  end

let request_stop t =
  Mutex.protect t.lock (fun () ->
      t.draining <- true;
      t.stopping <- true;
      Condition.broadcast t.cond)

let dispatch t (msg : Wire.client_msg) =
  match msg with
  | Wire.Route r -> route t r
  | Wire.Stats -> Wire.Stats_reply (stats_json t)
  | Wire.Ping -> Wire.Pong
  | Wire.Drain ->
    Mutex.protect t.lock (fun () -> t.draining <- true);
    Wire.Admin_ok "draining"
  | Wire.Shutdown ->
    Mutex.protect t.lock (fun () -> t.draining <- true);
    Wire.Admin_ok "shutdown"

(* ------------------------------------------------------------------ *)
(* Connection handling                                                 *)
(* ------------------------------------------------------------------ *)

let send t fd (reply : Wire.server_msg) =
  (match reply with
   | Wire.Refused _ -> Mutex.protect t.lock (fun () -> t.refused <- t.refused + 1)
   | _ -> ());
  Wire.write_frame fd (Wire.encode_server reply)

let handle_connection t fd =
  let rec loop () =
    match Wire.read_frame ~max_frame:t.cfg.max_frame fd with
    | Error Wire.Closed -> ()
    | Error Wire.Truncated -> ()  (* peer died mid-frame; nothing to say *)
    | Error (Wire.Oversized n) ->
      (* The stream cannot be resynchronised past an oversized frame:
         refuse loudly, then close. *)
      send t fd
        (Wire.Refused
           { id = None;
             kind = Wire.Bad_request;
             message =
               Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
                 t.cfg.max_frame })
    | Ok payload ->
      Mutex.protect t.lock (fun () -> t.requests <- t.requests + 1);
      (match Wire.decode_client payload with
       | Error msg ->
         send t fd
           (Wire.Refused { id = None; kind = Wire.Bad_request; message = msg });
         loop ()
       | Ok msg ->
         send t fd (dispatch t msg);
         (match msg with
          | Wire.Shutdown -> request_stop t
          | _ -> ());
         loop ())
  in
  (match loop () with
   | () -> ()
   | exception e ->
     (* A broken connection must never take the daemon down. *)
     Logs.debug (fun m ->
         m "serve: connection error: %s" (Printexc.to_string e)));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Closing an fd does not wake a thread blocked in accept(2) on Linux,
   so the accept loop polls the stop flag through a short select
   timeout instead of blocking; the listener is only closed by [wait],
   after this thread is joined. *)
let accept_loop t listener =
  let stopping () = Mutex.protect t.lock (fun () -> t.stopping) in
  let rec loop () =
    if stopping () then ()
    else
      match Unix.select [ listener ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true listener with
        | fd, _ ->
          Mutex.protect t.lock (fun () -> t.connections <- t.connections + 1);
          ignore (Thread.create (fun () -> handle_connection t fd) ());
          loop ()
        | exception
            Unix.Unix_error
              ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
          ->
          loop ()
        | exception Unix.Unix_error _ ->
          (* The listener is unusable; nothing left to accept. *)
          ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  fd

let listen_tcp host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ ->
      failwith (Printf.sprintf "Server.listen_tcp: invalid address %S" host)
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (addr, port));
     Unix.listen fd 64
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  fd

let start cfg =
  (* A peer closing mid-write must surface as EPIPE, not kill us. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let pool = Pool.create ?domains:cfg.domains () in
  let sched = Scheduler.create ~cache_capacity:cfg.cache_capacity pool in
  let unix_fd = listen_unix cfg.socket_path in
  let tcp_fd =
    match cfg.tcp with
    | None -> None
    | Some (host, port) -> (
      match listen_tcp host port with
      | fd -> Some fd
      | exception e ->
        (try Unix.close unix_fd with Unix.Unix_error _ -> ());
        Pool.shutdown pool;
        raise e)
  in
  let listeners =
    unix_fd :: (match tcp_fd with None -> [] | Some fd -> [ fd ])
  in
  let t =
    { cfg;
      sched;
      lock = Mutex.create ();
      cond = Condition.create ();
      listeners;
      tcp_fd;
      accept_threads = [];
      draining = false;
      stopping = false;
      active = 0;
      connections = 0;
      requests = 0;
      refused = 0;
      started_at = Clock.monotonic_s () }
  in
  t.accept_threads <-
    List.map (fun fd -> Thread.create (fun () -> accept_loop t fd) ()) listeners;
  t

let wait t =
  Mutex.protect t.lock (fun () ->
      while not t.stopping do
        Condition.wait t.cond t.lock
      done;
      while t.active > 0 do
        Condition.wait t.cond t.lock
      done);
  List.iter Thread.join t.accept_threads;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listeners;
  Pool.shutdown (Scheduler.pool t.sched);
  try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ()

let stop t =
  request_stop t;
  wait t

(* Port 0 in [config.tcp] asks the kernel for an ephemeral port; this
   reports the one actually bound. *)
let tcp_port t =
  match t.tcp_fd with
  | None -> None
  | Some fd -> (
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, port) -> Some port
    | Unix.ADDR_UNIX _ -> None)
