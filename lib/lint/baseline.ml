(* Finding baselines: a committed inventory of accepted findings, so CI
   fails only when *new* findings appear.  Matching deliberately ignores
   line/column — the (rule, file, message) triple is stable under
   unrelated edits, a line number is not.  Multiplicity is tracked: a
   baseline entry with [count = n] absorbs at most [n] identical
   findings; the (n+1)-th is new. *)

module Json = Merlin_report.Json

type entry = {
  rule : string;
  file : string;
  message : string;
  count : int;
}

type t = entry list

let key ~rule ~file ~message = rule ^ "\x00" ^ file ^ "\x00" ^ message

let key_of_finding (f : Finding.t) =
  key ~rule:f.Finding.rule ~file:f.Finding.file ~message:f.Finding.message

let of_findings findings =
  let tbl : (string, entry) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (f : Finding.t) ->
       let k = key_of_finding f in
       match Hashtbl.find_opt tbl k with
       | Some e -> Hashtbl.replace tbl k { e with count = e.count + 1 }
       | None ->
         Hashtbl.replace tbl k
           { rule = f.Finding.rule;
             file = f.Finding.file;
             message = f.Finding.message;
             count = 1 };
         order := k :: !order)
    findings;
  List.rev !order
  |> List.filter_map (fun k -> Hashtbl.find_opt tbl k)

(* One finding per line keeps committed baselines diff-reviewable. *)
let to_string entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"version\": 1,\n  \"findings\": [";
  List.iteri
    (fun i e ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf "\n    ";
       Buffer.add_string buf
         (Json.to_string
            (Json.Obj
               [ ("rule", Json.Str e.rule);
                 ("file", Json.Str e.file);
                 ("message", Json.Str e.message);
                 ("count", Json.Num (float_of_int e.count)) ])))
    entries;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* ---------- parsing (native format) ---------- *)

let entry_of_json j =
  match
    ( Option.bind (Json.member "rule" j) Json.to_str,
      Option.bind (Json.member "file" j) Json.to_str,
      Option.bind (Json.member "message" j) Json.to_str )
  with
  | Some rule, Some file, Some message ->
    let count =
      match Option.bind (Json.member "count" j) Json.to_num with
      | Some f when f >= 1.0 -> int_of_float f
      | Some _ | None -> 1
    in
    Ok { rule; file; message; count }
  | _ -> Error "baseline entry must carry rule/file/message strings"

let of_native j =
  match Option.bind (Json.member "findings" j) Json.to_list with
  | None -> Error "baseline: missing \"findings\" array"
  | Some items ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest -> (
        match entry_of_json item with
        | Ok e -> go (e :: acc) rest
        | Error _ as e -> e)
    in
    go [] items

(* ---------- parsing (SARIF 2.1) ---------- *)

(* A SARIF log is accepted wherever a baseline is: runs[].results[] with
   ruleId, message.text and the first physical location's uri.  This is
   exactly what merlin_check --format sarif emits, so a CI artifact can
   be promoted to a baseline verbatim. *)
let of_sarif j =
  match Option.bind (Json.member "runs" j) Json.to_list with
  | None -> Error "sarif: missing \"runs\" array"
  | Some runs ->
    let results =
      List.concat_map
        (fun run ->
           Option.bind (Json.member "results" run) Json.to_list
           |> Option.value ~default:[])
        runs
    in
    let findings =
      List.filter_map
        (fun r ->
           let rule =
             Option.bind (Json.member "ruleId" r) Json.to_str
           in
           let message =
             Option.bind (Json.member "message" r) (Json.member "text")
             |> Fun.flip Option.bind Json.to_str
           in
           let file =
             Option.bind (Json.member "locations" r) Json.to_list
             |> Fun.flip Option.bind (fun locs ->
                 match locs with loc :: _ -> Some loc | [] -> None)
             |> Fun.flip Option.bind (Json.member "physicalLocation")
             |> Fun.flip Option.bind (Json.member "artifactLocation")
             |> Fun.flip Option.bind (Json.member "uri")
             |> Fun.flip Option.bind Json.to_str
           in
           match (rule, file, message) with
           | Some rule, Some file, Some message ->
             Some
               (Finding.make ~file ~line:1 ~col:0 ~rule
                  ~severity:Finding.Warning message)
           | _ -> None)
        results
    in
    Ok (of_findings findings)

let of_json j =
  match Json.member "runs" j with
  | Some _ -> of_sarif j
  | None -> of_native j

let of_string text =
  match Json.of_string text with
  | j -> of_json j
  | exception Json.Parse_error msg -> Error msg

let load path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    text
  with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let save path entries =
  let oc = open_out_bin path in
  output_string oc (to_string entries);
  close_out oc

(* ---------- application ---------- *)

let apply_detailed baseline findings =
  let budget : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
       let k = key ~rule:e.rule ~file:e.file ~message:e.message in
       let prev = Option.value (Hashtbl.find_opt budget k) ~default:0 in
       Hashtbl.replace budget k (prev + e.count))
    baseline;
  let survivors =
    List.filter
      (fun f ->
         let k = key_of_finding f in
         match Hashtbl.find_opt budget k with
         | Some n when n > 0 ->
           Hashtbl.replace budget k (n - 1);
           false
         | Some _ | None -> true)
      findings
  in
  (* Whatever budget is left over is stale.  Several entries can share a
     key (hand-merged baselines); the residue is charged to them in file
     order so the reported counts add up to the leftover exactly. *)
  let stale = ref [] in
  let live = ref [] in
  List.iter
    (fun e ->
       let k = key ~rule:e.rule ~file:e.file ~message:e.message in
       let leftover = Option.value (Hashtbl.find_opt budget k) ~default:0 in
       let r = min e.count leftover in
       Hashtbl.replace budget k (leftover - r);
       if r > 0 then stale := { e with count = r } :: !stale;
       if e.count - r > 0 then live := { e with count = e.count - r } :: !live)
    baseline;
  (survivors, List.rev !stale, List.rev !live)

let apply baseline findings =
  let survivors, _, _ = apply_detailed baseline findings in
  survivors
