(** Lint driver: file collection, parsing, rule dispatch, rendering.

    Parses with [compiler-libs] ([Parse] + [Ast_iterator]); a file that
    fails to parse yields a single [parse-error] finding at the failure
    location instead of aborting the run. *)

(** Lint one source text.  [filename] decides implementation vs interface
    parsing ([.mli] suffix) and whether lib-only rules apply (a [lib]
    path segment).  Runs AST rules only; file-set rules (R6) need
    {!lint_paths}.

    Waivers are audited: a [lint:] waiver comment on a line where the
    named rule reported nothing — or naming no rule at all — yields a
    warning-severity [stale-waiver] finding, as does a [check:] waiver
    with a token the typed tier does not define.  Waivers must not
    rot. *)
val lint_string :
  ?rules:(module Rule.S) list -> filename:string -> string -> Finding.t list

(** All [.ml]/[.mli] files under the given files/directories, sorted;
    directories starting with ['.'] or ['_'] (e.g. [_build]) and
    fixture trees ([*_fixtures]) are skipped. *)
val collect_files : string list -> string list

(** Collect files, run AST rules per file and file-set rules over the
    whole set; findings sorted by file and position. *)
val lint_paths :
  ?rules:(module Rule.S) list -> string list -> Finding.t list

val has_errors : Finding.t list -> bool

(** One [file:line:col [rule] message] line per finding. *)
val render_text : Finding.t list -> string

(** [{"findings":[...],"errors":N,"total":N}] *)
val render_json : Finding.t list -> string

(** One GitHub Actions workflow command per finding
    ([::error file=F,line=L,col=C::[rule] message]) so CI runs annotate
    the diff in place; messages are property-escaped. *)
val render_github : Finding.t list -> string
