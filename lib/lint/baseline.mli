(** Finding baselines: a committed inventory of accepted findings so CI
    fails only on {e new} findings.

    Matching ignores line/column — the (rule, file, message) triple is
    stable under unrelated edits.  Multiplicity counts: an entry with
    [count = n] absorbs at most [n] identical findings. *)

type entry = {
  rule : string;
  file : string;
  message : string;
  count : int;
}

type t = entry list

(** Aggregate findings into baseline entries (first-seen order, counts
    merged). *)
val of_findings : Finding.t list -> t

(** Render in the committed one-entry-per-line layout. *)
val to_string : t -> string

(** Parse a baseline.  Accepts both the native format written by
    {!to_string} and a SARIF 2.1 log (runs[].results[]), so a CI SARIF
    artifact can be promoted to a baseline verbatim. *)
val of_string : string -> (t, string) result

val load : string -> (t, string) result

val save : string -> t -> unit

(** [apply baseline findings] drops findings absorbed by the baseline,
    in order; findings beyond an entry's [count] are kept. *)
val apply : t -> Finding.t list -> Finding.t list

(** Like {!apply}, but also splits the baseline by what it absorbed:
    [(survivors, stale, live)] where [stale] holds each entry's
    unconsumed residue (count = findings it no longer matches — prune
    these) and [live] the consumed part (count = findings it still
    absorbs — the pruned baseline to rewrite).  [stale] and [live]
    partition the budget: an entry can appear in both with its count
    split. *)
val apply_detailed : t -> Finding.t list -> Finding.t list * t * t
