(** The common shape of a lint rule and the per-file checking context. *)

type ctx = {
  filename : string;
  in_lib : bool;  (** the file lives under a [lib] directory *)
  line_waived : token:string -> line:int -> bool;
      (** true when the line carries a [(* lint: <token> *)] waiver *)
  emit : Finding.t -> unit;
}

module type S = sig
  val name : string
  (** Rule identifier, shown in [[rule]] brackets and used as the waiver
      token. *)

  val severity : Finding.severity

  val doc : string
  (** One-line description for [--rules] style listings and DESIGN.md. *)

  val hooks : ctx -> Ast_iterator.iterator -> Ast_iterator.iterator
  (** Wrap the iterator built so far with this rule's AST checks.  Rules
      with no per-AST work return the iterator unchanged. *)

  val files : string list -> Finding.t list
  (** Checks over the whole scanned file set (e.g. sibling [.mli]
      presence).  Most rules return []. *)
end

(** Emit a finding unless the line carries the rule's waiver token. *)
val report :
  ctx ->
  rule:string ->
  severity:Finding.severity ->
  ?waiver:string ->
  loc:Location.t ->
  string ->
  unit

(** Does the path contain a [lib] directory segment? *)
val path_in_lib : string -> bool

(** Helpers for rules that only implement one side of the signature. *)
val no_hooks : ctx -> Ast_iterator.iterator -> Ast_iterator.iterator

val no_files : string list -> Finding.t list
