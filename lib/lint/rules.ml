open Parsetree

(* Override just the expression hook, chaining to the iterator built so
   far.  [self] stays the fully-composed iterator, so recursion reaches
   every rule exactly once per node. *)
let on_expr prev check =
  let expr self e =
    check e;
    prev.Ast_iterator.expr self e
  in
  { prev with Ast_iterator.expr }

(* R1 — no polymorphic =/<>/compare on structured data.  The parsetree is
   untyped, so the check is syntactic: flag comparisons where an operand
   is visibly structured (constructor, list, tuple, record, array,
   closure), and any first-class use of polymorphic [compare].  Scalar
   literals and bool constructors pass. *)
module Poly_compare = struct
  let name = "poly-compare"

  let severity = Finding.Error

  let doc =
    "polymorphic =/<>/compare on structured data; use a dedicated \
     compare/equal (e.g. Solution.compare_key, Point.compare) or a \
     pattern match"

  let rec structural e =
    match e.pexp_desc with
    | Pexp_tuple _ | Pexp_record _ | Pexp_array _ | Pexp_fun _
    | Pexp_function _ ->
      true
    | Pexp_construct ({ txt = Longident.Lident ("true" | "false"); _ }, None)
      ->
      false
    | Pexp_construct _ | Pexp_variant _ -> true
    | Pexp_constraint (inner, _) | Pexp_open (_, inner) -> structural inner
    | _ -> false

  let is_poly_eq = function
    | Longident.Lident (("=" | "<>") as op) -> Some op
    | Longident.Ldot (Longident.Lident "Stdlib", (("=" | "<>") as op)) ->
      Some op
    | _ -> None

  let is_poly_compare = function
    | Longident.Lident "compare"
    | Longident.Ldot (Longident.Lident "Stdlib", "compare") ->
      true
    | _ -> false

  let hooks ctx prev =
    on_expr prev (fun e ->
        match e.pexp_desc with
        | Pexp_apply
            ({ pexp_desc = Pexp_ident { txt; _ }; _ }, ((_ :: _ :: _) as args))
          -> (
          match is_poly_eq txt with
          | Some op when List.exists (fun (_, a) -> structural a) args ->
            Rule.report ctx ~rule:name ~severity ~waiver:name
              ~loc:e.pexp_loc
              (Printf.sprintf
                 "polymorphic (%s) on structured data; use a dedicated \
                  equality or a pattern match"
                 op)
          | _ -> ())
        | Pexp_ident { txt; loc } when is_poly_compare txt ->
          Rule.report ctx ~rule:name ~severity ~waiver:name ~loc
            "polymorphic compare; use a dedicated compare function"
        | _ -> ())

  let files = Rule.no_files
end

(* R2 — no raising accessors in lib/: Hashtbl.find, List.hd, List.nth,
   Option.get.  Library code must use the _opt forms or pattern matches
   so failure is a value, not an untyped Not_found/Failure. *)
module Raising_accessor = struct
  let name = "raising-accessor"

  let severity = Finding.Error

  let doc =
    "raising accessor (Hashtbl.find, List.hd, List.nth, Option.get) in \
     lib/; use the _opt form or a pattern match"

  let banned = function
    | Longident.Ldot (Longident.Lident "Hashtbl", "find") ->
      Some ("Hashtbl.find", "Hashtbl.find_opt")
    | Longident.Ldot (Longident.Lident "List", "hd") ->
      Some ("List.hd", "a pattern match")
    | Longident.Ldot (Longident.Lident "List", "nth") ->
      Some ("List.nth", "List.nth_opt")
    | Longident.Ldot (Longident.Lident "Option", "get") ->
      Some ("Option.get", "a pattern match")
    | _ -> None

  let hooks ctx prev =
    if not ctx.Rule.in_lib then prev
    else
      on_expr prev (fun e ->
          match e.pexp_desc with
          | Pexp_ident { txt; loc } -> (
            match banned txt with
            | Some (bad, instead) ->
              Rule.report ctx ~rule:name ~severity ~waiver:name ~loc
                (Printf.sprintf "%s raises; use %s" bad instead)
            | None -> ())
          | _ -> ())

  let files = Rule.no_files
end

(* R3 — no physical equality.  ==/!= on immutable data is a semantic
   trap; the only sanctioned uses carry an explicit per-line waiver. *)
module Physical_eq = struct
  let name = "physical-eq"

  let severity = Finding.Error

  let doc =
    "physical equality ==/!=; use structural equality or add a \
     same-line [lint: physical-eq] waiver"

  let hooks ctx prev =
    on_expr prev (fun e ->
        match e.pexp_desc with
        | Pexp_ident { txt = Longident.Lident (("==" | "!=") as op); loc }
        | Pexp_ident
            { txt =
                Longident.Ldot
                  (Longident.Lident "Stdlib", (("==" | "!=") as op));
              loc } ->
          Rule.report ctx ~rule:name ~severity ~waiver:name ~loc
            (Printf.sprintf
               "physical equality (%s); compare structurally or add a \
                same-line [lint: physical-eq] waiver"
               op)
        | _ -> ())

  let files = Rule.no_files
end

(* R4 — failwith/invalid_arg messages must start with "Module.function:"
   so a raised error names its origin.  Checked on the leading string
   constant (direct literal, "..." ^ tail, or a sprintf format); dynamic
   messages with no visible literal are skipped. *)
module Error_prefix = struct
  let name = "error-prefix"

  let severity = Finding.Error

  let doc =
    "failwith/invalid_arg message must be prefixed \"Module.function:\""

  let rec leading_string e =
    match e.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> Some s
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident "^"; _ }; _ },
          (_, lhs) :: _ ) ->
      leading_string lhs
    | Pexp_apply (_, args) ->
      (* sprintf-style call: the format literal is the first constant
         string argument. *)
      List.find_map
        (fun (_, a) ->
           match a.pexp_desc with
           | Pexp_constant (Pconst_string (s, _, _)) -> Some s
           | _ -> None)
        args
    | _ -> None

  let prefix_ok msg =
    match String.index_opt msg ':' with
    | None | Some 0 -> false
    | Some i ->
      let prefix = String.sub msg 0 i in
      (match prefix.[0] with 'A' .. 'Z' -> true | _ -> false)
      && String.contains prefix '.'
      && String.for_all
           (fun c ->
              match c with
              | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' | '\'' ->
                true
              | _ -> false)
           prefix

  let raiser = function
    | Longident.Lident (("failwith" | "invalid_arg") as f)
    | Longident.Ldot
        (Longident.Lident "Stdlib", (("failwith" | "invalid_arg") as f)) ->
      Some f
    | _ -> None

  let hooks ctx prev =
    on_expr prev (fun e ->
        match e.pexp_desc with
        | Pexp_apply
            ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (Asttypes.Nolabel, arg) :: _)
          -> (
          match raiser txt with
          | None -> ()
          | Some f -> (
            match leading_string arg with
            | Some msg when not (prefix_ok msg) ->
              Rule.report ctx ~rule:name ~severity ~waiver:name
                ~loc:e.pexp_loc
                (Printf.sprintf
                   "%s message %S must start with \"Module.function:\"" f
                   msg)
            | Some _ | None -> ()))
        | _ -> ())

  let files = Rule.no_files
end

(* R5 — no catch-all exception handlers: [try ... with _ ->] swallows
   Out_of_memory, Stack_overflow and every programming error. *)
module Catch_all = struct
  let name = "catch-all"

  let severity = Finding.Error

  let doc = "catch-all try ... with _ ->; match specific exceptions"

  let rec catch_all_pat p =
    match p.ppat_desc with
    | Ppat_any -> true
    | Ppat_alias (inner, _) -> catch_all_pat inner
    | Ppat_or (a, b) -> catch_all_pat a || catch_all_pat b
    | _ -> false

  let hooks ctx prev =
    on_expr prev (fun e ->
        match e.pexp_desc with
        | Pexp_try (_, cases) ->
          List.iter
            (fun case ->
               if catch_all_pat case.pc_lhs then
                 Rule.report ctx ~rule:name ~severity ~waiver:name
                   ~loc:case.pc_lhs.ppat_loc
                   "catch-all exception handler; match specific exceptions")
            cases
        | _ -> ())

  let files = Rule.no_files
end

(* R6 — every lib/**/*.ml needs a sibling .mli: the interface is where
   invariants are documented and abstraction enforced. *)
module Mli_sibling = struct
  let name = "mli-sibling"

  let severity = Finding.Error

  let doc = "every lib/**/*.ml must have a sibling .mli"

  let hooks = Rule.no_hooks

  let files paths =
    List.filter_map
      (fun path ->
         if Filename.check_suffix path ".ml" && Rule.path_in_lib path then
           let mli = path ^ "i" in
           if List.mem mli paths || Sys.file_exists mli then None
           else
             Some
               (Finding.make ~file:path ~line:1 ~col:0 ~rule:name ~severity
                  "missing sibling .mli interface")
         else None)
      paths
end

(* R7 — no incremental Curve.add inside loops in the DP core.  The hot
   paths must accumulate candidates into a Curve.Builder and prune once
   per batch (one sort + one sweep); a per-candidate [Curve.add] inside a
   for/while body or an iter/fold callback rebuilds the frontier per
   candidate and silently reverts the batch kernel.  Genuinely
   incremental call sites carry a same-line [lint: curve-add-in-loop]
   waiver. *)
module Curve_add_in_loop = struct
  let name = "curve-add-in-loop"

  let severity = Finding.Error

  let doc =
    "Curve.add inside a loop or iter/fold callback in the DP core; \
     accumulate into Curve.Builder and build once per batch"

  let path_in_core path =
    Rule.path_in_lib path
    && List.exists
         (String.equal "core")
         (String.split_on_char '/' path)

  let is_curve_add = function
    | Longident.Ldot (Longident.Lident "Curve", "add")
    | Longident.Ldot
        (Longident.Ldot (Longident.Lident "Merlin_curves", "Curve"), "add") ->
      true
    | _ -> false

  let is_iterish = function
    | Longident.Ldot (_, ("iter" | "iteri" | "fold" | "fold_left" | "fold_right"))
      ->
      true
    | _ -> false

  (* Scan a loop body (or callback argument) for Curve.add idents with a
     dedicated sub-iterator; [seen] dedups sites reached through nested
     loops. *)
  let scan ctx seen root =
    let expr self e =
      (match e.pexp_desc with
       | Pexp_ident { txt; loc } when is_curve_add txt ->
         let key =
           (loc.Location.loc_start.Lexing.pos_lnum,
            loc.Location.loc_start.Lexing.pos_cnum)
         in
         if not (Hashtbl.mem seen key) then begin
           Hashtbl.add seen key ();
           Rule.report ctx ~rule:name ~severity ~waiver:name ~loc
             "Curve.add inside a loop; accumulate into a Curve.Builder \
              and build once"
         end
       | _ -> ());
      Ast_iterator.default_iterator.expr self e
    in
    let sub = { Ast_iterator.default_iterator with expr } in
    sub.expr sub root

  let hooks ctx prev =
    if not (path_in_core ctx.Rule.filename) then prev
    else begin
      let seen = Hashtbl.create 8 in
      on_expr prev (fun e ->
          match e.pexp_desc with
          | Pexp_for (_, _, _, _, body) | Pexp_while (_, body) ->
            scan ctx seen body
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
            when is_iterish txt ->
            List.iter (fun (_, arg) -> scan ctx seen arg) args
          | _ -> ())
    end

  let files = Rule.no_files
end

(* R8 — no Curve.Builder.create inside loops in the DP hot paths
   (lib/core and lib/lttree).  The arena discipline (DESIGN.md §9) is
   one long-lived builder per DP context, cleared between batches, so
   steady-state builds allocate only their survivor arrays; a create
   inside a for/while body or an iter/fold callback reallocates the
   push storage and the sort/staircase scratch on every batch and
   silently reverts the zero-allocation kernel.  Deliberate per-batch
   builders carry a same-line [lint: builder-create-in-loop] waiver. *)
module Builder_create_in_loop = struct
  let name = "builder-create-in-loop"

  let severity = Finding.Error

  let doc =
    "Curve.Builder.create inside a loop or iter/fold callback in a DP \
     hot path; hoist one builder out and clear it between batches"

  let path_in_hot path =
    Rule.path_in_lib path
    && List.exists
         (fun seg -> String.equal "core" seg || String.equal "lttree" seg)
         (String.split_on_char '/' path)

  let is_builder_create = function
    | Longident.Ldot
        (Longident.Ldot (Longident.Lident "Curve", "Builder"), "create")
    | Longident.Ldot
        ( Longident.Ldot
            ( Longident.Ldot (Longident.Lident "Merlin_curves", "Curve"),
              "Builder" ),
          "create" ) ->
      true
    | _ -> false

  let is_iterish = function
    | Longident.Ldot (_, ("iter" | "iteri" | "fold" | "fold_left" | "fold_right"))
      ->
      true
    | _ -> false

  let scan ctx seen root =
    let expr self e =
      (match e.pexp_desc with
       | Pexp_ident { txt; loc } when is_builder_create txt ->
         let key =
           (loc.Location.loc_start.Lexing.pos_lnum,
            loc.Location.loc_start.Lexing.pos_cnum)
         in
         if not (Hashtbl.mem seen key) then begin
           Hashtbl.add seen key ();
           Rule.report ctx ~rule:name ~severity ~waiver:name ~loc
             "Curve.Builder.create inside a loop; hoist the builder out \
              and clear it between batches"
         end
       | _ -> ());
      Ast_iterator.default_iterator.expr self e
    in
    let sub = { Ast_iterator.default_iterator with expr } in
    sub.expr sub root

  let hooks ctx prev =
    if not (path_in_hot ctx.Rule.filename) then prev
    else begin
      let seen = Hashtbl.create 8 in
      on_expr prev (fun e ->
          match e.pexp_desc with
          | Pexp_for (_, _, _, _, body) | Pexp_while (_, body) ->
            scan ctx seen body
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
            when is_iterish txt ->
            List.iter (fun (_, arg) -> scan ctx seen arg) args
          | _ -> ())
    end

  let files = Rule.no_files
end

let all : (module Rule.S) list =
  [ (module Poly_compare);
    (module Raising_accessor);
    (module Physical_eq);
    (module Error_prefix);
    (module Catch_all);
    (module Mli_sibling);
    (module Curve_add_in_loop);
    (module Builder_create_in_loop) ]
