(** Same-line waiver comment scanning, shared by the syntactic tier
    and merlin_check's typed tier.  One definition of the waiver
    comment grammar and of the typed-tier token list. *)

(** All same-line [lint: <token>] marks in a source text as
    [(line, token)] pairs; a line can carry several. *)
val lint_marks : string -> (int * string) list

(** All same-line [check: <token>] marks in a source text. *)
val check_marks : string -> (int * string) list

(** The tokens the typed rules consume: [domain-safe] (C1), [exn-flow]
    (C2), [dead-export] (C3), [lock-order] (C4), [blocking-ok] (C5),
    [fd-escape] (C6), [nondet-ok] (C7-C9). *)
val check_tokens : string list
