(** The project rule set, R1–R6 (see DESIGN.md "Correctness tooling").

    - R1 [poly-compare]: no polymorphic [=]/[<>]/[compare] on structured
      data (syntactic check on the untyped parsetree).
    - R2 [raising-accessor]: no [Hashtbl.find]/[List.hd]/[List.nth]/
      [Option.get] in [lib/].
    - R3 [physical-eq]: no [==]/[!=] without a same-line
      [lint: physical-eq] waiver.
    - R4 [error-prefix]: [failwith]/[invalid_arg] messages start with
      ["Module.function:"].
    - R5 [catch-all]: no [try ... with _ ->].
    - R6 [mli-sibling]: every [lib/**/*.ml] has a sibling [.mli].

    Every rule accepts a same-line comment waiver carrying
    [lint: <rule-name>]; the driver reports waivers that suppress
    nothing as [stale-waiver] warnings (see {!Driver.lint_string}). *)

module Poly_compare : Rule.S

module Raising_accessor : Rule.S

module Physical_eq : Rule.S

module Error_prefix : Rule.S

module Catch_all : Rule.S

module Mli_sibling : Rule.S

val all : (module Rule.S) list
