(* Same-line waiver comment scanning, shared by the syntactic tier
   (Driver) and the typed tier (merlin_check's Waivers): a comment
   carrying [lint: <token>] (or, for the typed tier, [check: <token>])
   waives one rule on its line.  This module is the single definition
   of the comment grammar and of the typed-tier token list, so a token
   like [nondet-ok] exists exactly once.

   The opener strings are assembled from pieces so this very file can
   never be mistaken for carrying a waiver. *)

let lint_opener = "(* " ^ "lint: "

let check_opener = "(* " ^ "check: "

let is_token_char c =
  match c with 'a' .. 'z' | '0' .. '9' | '-' -> true | _ -> false

let token_at line i =
  let n = String.length line in
  let rec stop j = if j < n && is_token_char line.[j] then stop (j + 1) else j in
  let j = stop i in
  if j > i then Some (String.sub line i (j - i)) else None

(* All [(line, token)] waiver marks in [text] for a given opener.  A
   line can carry several waivers (several rules waived at once). *)
let scan ~opener text =
  let on = String.length opener in
  let marks = ref [] in
  List.iteri
    (fun i line ->
       let n = String.length line in
       let rec from pos =
         if pos + on > n then ()
         else if String.sub line pos on = opener then (
           (match token_at line (pos + on) with
            | Some token -> marks := (i + 1, token) :: !marks
            | None -> ());
           from (pos + on))
         else from (pos + 1)
       in
       from 0)
    (String.split_on_char '\n' text);
  List.rev !marks

let lint_marks text = scan ~opener:lint_opener text

let check_marks text = scan ~opener:check_opener text

(* Tokens merlin_check's typed rules consume; the linter can only vet
   check-waivers for being well-formed, staleness of the valid ones is
   merlin_check's job (it knows which lines its rules would flag). *)
let check_tokens =
  [ "domain-safe"; "exn-flow"; "dead-export"; "lock-order"; "blocking-ok";
    "fd-escape"; "nondet-ok" ]
