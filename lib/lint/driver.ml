(* ---------- waivers ---------- *)

(* The waiver comment grammar and the typed-tier token list live in
   Waiver_mark (shared with merlin_check); the driver owns staleness of
   the lint-tier marks only. *)

let stale_waiver_rule = "stale-waiver"

let rule_names rules =
  List.map (fun (module R : Rule.S) -> R.name) rules

(* Stale-waiver findings for one file: every [lint:] waiver that no rule
   consumed (either the rule never fired on that line, or the token is
   not a rule name at all), plus [check:] waivers with unknown tokens.
   Knownness is judged against the full rule registry, not the active
   subset: under a --rules filter a waiver for a deselected rule is
   neither stale nor unknown — this run cannot tell. *)
let stale_findings ~filename ~rules ~lint_marks ~check_marks ~used =
  let known = rule_names Rules.all in
  let active = rule_names rules in
  let stale_lint =
    List.filter_map
      (fun (line, token) ->
         if Hashtbl.mem used (line, token) then None
         else if
           List.exists (String.equal token) known
           && not (List.exists (String.equal token) active)
         then None
         else
           let message =
             if List.exists (String.equal token) known then
               Printf.sprintf
                 "stale waiver: no %s finding on this line to suppress" token
             else Printf.sprintf "waiver names unknown lint rule %S" token
           in
           Some
             (Finding.make ~file:filename ~line ~col:0
                ~rule:stale_waiver_rule ~severity:Finding.Warning message))
      lint_marks
  in
  let stale_check =
    List.filter_map
      (fun (line, token) ->
         if List.exists (String.equal token) Waiver_mark.check_tokens then
           None
         else
           Some
             (Finding.make ~file:filename ~line ~col:0
                ~rule:stale_waiver_rule ~severity:Finding.Warning
                (Printf.sprintf "waiver names unknown check rule %S" token)))
      check_marks
  in
  stale_lint @ stale_check

let build_iterator ctx rules =
  List.fold_left
    (fun it (module R : Rule.S) -> R.hooks ctx it)
    Ast_iterator.default_iterator rules

let parse_error_finding exn =
  match Location.error_of_exn exn with
  | Some (`Ok err) ->
    let main = err.Location.main in
    let message = Format.asprintf "%t" main.Location.txt in
    Some
      (Finding.of_location ~rule:"parse-error" ~severity:Finding.Error
         ~message main.Location.loc)
  | Some `Already_displayed | None -> None

let lint_string ?(rules = Rules.all) ~filename text =
  let findings = ref [] in
  let lint_marks = Waiver_mark.lint_marks text in
  let check_marks = Waiver_mark.check_marks text in
  let used : (int * string, unit) Hashtbl.t = Hashtbl.create 8 in
  let line_waived ~token ~line =
    if
      List.exists
        (fun (l, t) -> l = line && String.equal t token)
        lint_marks
    then (
      Hashtbl.replace used (line, token) ();
      true)
    else false
  in
  let ctx =
    { Rule.filename;
      in_lib = Rule.path_in_lib filename;
      line_waived;
      emit = (fun f -> findings := f :: !findings) }
  in
  let iterator = build_iterator ctx rules in
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf filename;
  (match
     if Filename.check_suffix filename ".mli" then
       `Intf (Parse.interface lexbuf)
     else `Impl (Parse.implementation lexbuf)
   with
   | `Impl ast -> iterator.Ast_iterator.structure iterator ast
   | `Intf ast -> iterator.Ast_iterator.signature iterator ast
   | exception ((Syntaxerr.Error _ | Lexer.Error _) as exn) -> (
     match parse_error_finding exn with
     | Some f -> findings := f :: !findings
     | None -> raise exn));
  let stale =
    stale_findings ~filename ~rules ~lint_marks ~check_marks ~used
  in
  List.sort Finding.compare_order (stale @ !findings)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let lint_file ?rules path = lint_string ?rules ~filename:path (read_file path)

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

(* [_build] is named explicitly on top of the [_]/[.] prefix rule so a
   renamed dune build dir in a stale checkout can never be linted.
   [*_fixtures] trees hold deliberately-bad analyzer inputs (lint and
   check fixtures under test/) and are only ever linted when named
   explicitly. *)
let skip_dir name =
  name = "_build"
  || (String.length name > 0 && (name.[0] = '.' || name.[0] = '_'))
  || Filename.check_suffix name "_fixtures"

let collect_files paths =
  let rec walk acc path =
    if Sys.is_directory path then
      Array.to_list (Sys.readdir path)
      |> List.sort String.compare
      |> List.fold_left
           (fun acc name ->
              let child = Filename.concat path name in
              if Sys.is_directory child then
                if skip_dir name then acc else walk acc child
              else if is_source child then child :: acc
              else acc)
           acc
    else if is_source path then path :: acc
    else acc
  in
  List.sort String.compare (List.fold_left walk [] paths)

let lint_paths ?(rules = Rules.all) paths =
  let files = collect_files paths in
  let per_file = List.concat_map (fun f -> lint_file ~rules f) files in
  let file_set =
    List.concat_map (fun (module R : Rule.S) -> R.files files) rules
  in
  List.sort Finding.compare_order (per_file @ file_set)

let has_errors findings = List.exists Finding.is_error findings

let render_text findings =
  String.concat "" (List.map (fun f -> Finding.to_text f ^ "\n") findings)

let render_json findings =
  let errors = List.length (List.filter Finding.is_error findings) in
  Printf.sprintf "{\"findings\":[%s],\"errors\":%d,\"total\":%d}\n"
    (String.concat "," (List.map Finding.to_json findings))
    errors (List.length findings)

(* GitHub Actions workflow commands: data after [::] is property-escaped
   so multi-line or %-bearing messages survive the annotation parser. *)
let github_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '%' -> Buffer.add_string buf "%25"
       | '\n' -> Buffer.add_string buf "%0A"
       | '\r' -> Buffer.add_string buf "%0D"
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_github findings =
  String.concat ""
    (List.map
       (fun (f : Finding.t) ->
          let kind =
            match f.Finding.severity with
            | Finding.Error -> "error"
            | Finding.Warning -> "warning"
          in
          Printf.sprintf "::%s file=%s,line=%d,col=%d::[%s] %s\n" kind
            (github_escape f.Finding.file)
            f.Finding.line f.Finding.col f.Finding.rule
            (github_escape f.Finding.message))
       findings)
