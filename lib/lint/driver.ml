let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i =
    i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
  in
  nn = 0 || at 0

(* A waiver is a same-line comment [(* lint: <token> *)].  Tokens are the
   rule names; scanning is per physical line of the original source. *)
let waiver_table text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  fun ~token ~line ->
    line >= 1 && line <= Array.length lines
    && contains_sub lines.(line - 1) ("lint: " ^ token)

let build_iterator ctx rules =
  List.fold_left
    (fun it (module R : Rule.S) -> R.hooks ctx it)
    Ast_iterator.default_iterator rules

let parse_error_finding exn =
  match Location.error_of_exn exn with
  | Some (`Ok err) ->
    let main = err.Location.main in
    let message = Format.asprintf "%t" main.Location.txt in
    Some
      (Finding.of_location ~rule:"parse-error" ~severity:Finding.Error
         ~message main.Location.loc)
  | Some `Already_displayed | None -> None

let lint_string ?(rules = Rules.all) ~filename text =
  let findings = ref [] in
  let ctx =
    { Rule.filename;
      in_lib = Rule.path_in_lib filename;
      line_waived = waiver_table text;
      emit = (fun f -> findings := f :: !findings) }
  in
  let iterator = build_iterator ctx rules in
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf filename;
  (match
     if Filename.check_suffix filename ".mli" then
       `Intf (Parse.interface lexbuf)
     else `Impl (Parse.implementation lexbuf)
   with
   | `Impl ast -> iterator.Ast_iterator.structure iterator ast
   | `Intf ast -> iterator.Ast_iterator.signature iterator ast
   | exception ((Syntaxerr.Error _ | Lexer.Error _) as exn) -> (
     match parse_error_finding exn with
     | Some f -> findings := f :: !findings
     | None -> raise exn));
  List.sort Finding.compare_order !findings

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let lint_file ?rules path = lint_string ?rules ~filename:path (read_file path)

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

(* [_build] is named explicitly on top of the [_]/[.] prefix rule so a
   renamed dune build dir in a stale checkout can never be linted. *)
let skip_dir name =
  name = "_build"
  || (String.length name > 0 && (name.[0] = '.' || name.[0] = '_'))

let collect_files paths =
  let rec walk acc path =
    if Sys.is_directory path then
      Array.to_list (Sys.readdir path)
      |> List.sort String.compare
      |> List.fold_left
           (fun acc name ->
              let child = Filename.concat path name in
              if Sys.is_directory child then
                if skip_dir name then acc else walk acc child
              else if is_source child then child :: acc
              else acc)
           acc
    else if is_source path then path :: acc
    else acc
  in
  List.sort String.compare (List.fold_left walk [] paths)

let lint_paths ?(rules = Rules.all) paths =
  let files = collect_files paths in
  let per_file = List.concat_map (fun f -> lint_file ~rules f) files in
  let file_set =
    List.concat_map (fun (module R : Rule.S) -> R.files files) rules
  in
  List.sort Finding.compare_order (per_file @ file_set)

let has_errors findings = List.exists Finding.is_error findings

let render_text findings =
  String.concat "" (List.map (fun f -> Finding.to_text f ^ "\n") findings)

let render_json findings =
  let errors = List.length (List.filter Finding.is_error findings) in
  Printf.sprintf "{\"findings\":[%s],\"errors\":%d,\"total\":%d}\n"
    (String.concat "," (List.map Finding.to_json findings))
    errors (List.length findings)
