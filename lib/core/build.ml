open Merlin_geometry
open Merlin_tech
open Merlin_net
open Merlin_rtree
open Merlin_curves

type t = { tree : Rtree.t; members : Catree.member list }

type sol = t Solution.t

let of_sink s =
  Solution.make ~req:s.Sink.req ~load:s.Sink.cap ~area:0.0
    { tree = Rtree.Leaf s; members = [ Catree.Direct s.Sink.id ] }

let root (s : sol) = Rtree.attach_point s.Solution.data.tree

(* Children of a tree when grafted under a new unbuffered node at the same
   location: splice to avoid stacking zero-length degenerate nodes. *)
let graft_children at tree =
  match tree with
  | Rtree.Node { loc; buffer = None; children } when Point.equal loc at ->
    children
  | Rtree.Leaf _ | Rtree.Node _ -> [ tree ]

let extend_wire tech ~to_ (s : sol) =
  let data = s.Solution.data in
  let from = Rtree.attach_point data.tree in
  if Point.equal from to_ then
    match data.tree with
    | Rtree.Node _ -> s
    | Rtree.Leaf _ ->
      { s with Solution.data = { data with tree = Rtree.node to_ [ data.tree ] } }
  else begin
    let len = Point.manhattan from to_ in
    let req = s.Solution.req -. Tech.wire_elmore tech ~len ~load:s.Solution.load in
    let load = s.Solution.load +. Tech.wire_cap tech len in
    Solution.make ~req ~load ~area:s.Solution.area
      { data with tree = Rtree.node to_ [ data.tree ] }
  end

let add_root_buffer b (s : sol) =
  let data = s.Solution.data in
  let at = Rtree.attach_point data.tree in
  let req = s.Solution.req -. Buffer_lib.delay b ~load:s.Solution.load in
  let tree = Rtree.node ~buffer:b at (graft_children at data.tree) in
  Solution.make ~req ~load:b.Buffer_lib.input_cap
    ~area:(s.Solution.area +. b.Buffer_lib.area)
    { data with tree }

(* Cost-only twins of the three moves, for the batch DP loops: they
   compute the exact (req, load, area) the move would produce — the same
   float expressions, so results are bit-identical — without building the
   routing tree.  The results are written into a caller-owned
   Curve.Builder.cost record (flat all-float storage) instead of being
   returned: non-flambda cannot deforest a returned tuple, so a
   tuple-returning version allocates the tuple plus three boxed floats
   per candidate in the hottest loops of the whole program.  The loops
   push the record with Curve.Builder.push_cost and materialise trees
   only for frontier survivors. *)

let extend_wire_cost_into (c : Curve.Builder.cost) tech ~to_ (s : sol) =
  let from = Rtree.attach_point s.Solution.data.tree in
  if Point.equal from to_ then begin
    c.Curve.Builder.creq <- s.Solution.req;
    c.Curve.Builder.cload <- s.Solution.load;
    c.Curve.Builder.carea <- s.Solution.area
  end
  else begin
    let len = Point.manhattan from to_ in
    c.Curve.Builder.creq <-
      s.Solution.req -. Tech.wire_elmore tech ~len ~load:s.Solution.load;
    c.Curve.Builder.cload <- s.Solution.load +. Tech.wire_cap tech len;
    c.Curve.Builder.carea <- s.Solution.area
  end

let add_root_buffer_cost_into (c : Curve.Builder.cost) b (s : _ Solution.t) =
  c.Curve.Builder.creq <- s.Solution.req -. Buffer_lib.delay b ~load:s.Solution.load;
  c.Curve.Builder.cload <- b.Buffer_lib.input_cap;
  c.Curve.Builder.carea <- s.Solution.area +. b.Buffer_lib.area

let join_cost_into (c : Curve.Builder.cost) (a : _ Solution.t) (b : _ Solution.t) =
  let ra = a.Solution.req and rb = b.Solution.req in
  c.Curve.Builder.creq <- (if ra <= rb then ra else rb);
  c.Curve.Builder.cload <- a.Solution.load +. b.Solution.load;
  c.Curve.Builder.carea <- a.Solution.area +. b.Solution.area

let join at (a : sol) (b : sol) =
  if not (Point.equal (root a) at && Point.equal (root b) at) then
    invalid_arg "Build.join: solutions not rooted at the join point";
  let children =
    graft_children at a.Solution.data.tree @ graft_children at b.Solution.data.tree
  in
  Solution.make
    ~req:(min a.Solution.req b.Solution.req)
    ~load:(a.Solution.load +. b.Solution.load)
    ~area:(a.Solution.area +. b.Solution.area)
    { tree = Rtree.node at children;
      members = a.Solution.data.members @ b.Solution.data.members }
