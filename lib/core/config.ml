type chain_placement = All_positions | Flush_ends

type t = {
  alpha : int;
  max_curve : int;
  quant_req : float;
  quant_load : float;
  quant_area : float;
  candidate_limit : int;
  buffer_trials : int;
  bbox_slack : float;
  full_hanan : bool;
  chain_placement : chain_placement;
  bubbling : bool;
  max_iters : int;
  curve_epsilon : float;
  max_frontier : int;
}

let default =
  { alpha = 8;
    max_curve = 8;
    quant_req = 10.0;
    quant_load = 10.0;
    quant_area = 8.0;
    candidate_limit = 16;
    buffer_trials = 8;
    bbox_slack = 0.25;
    full_hanan = false;
    chain_placement = Flush_ends;
    bubbling = true;
    max_iters = 10;
    curve_epsilon = 0.0;
    max_frontier = 0 }

let paper_table1 =
  { default with
    alpha = 15;
    full_hanan = true;
    candidate_limit = 40;
    max_curve = 10;
    quant_req = 5.0;
    quant_load = 6.0;
    quant_area = 4.0;
    chain_placement = All_positions }

let paper_table2 =
  { default with alpha = 10; full_hanan = false; max_iters = 3 }

let scaled n =
  if n <= 10 then { default with max_curve = 10 }
  else if n <= 20 then { default with max_iters = 6 }
  else if n <= 40 then
    { default with
      candidate_limit = 14;
      max_curve = 6;
      quant_req = 20.0;
      quant_load = 15.0;
      quant_area = 10.0;
      buffer_trials = 6;
      chain_placement = Flush_ends;
      max_iters = 3 }
  else
    { default with
      alpha = 6;
      candidate_limit = 10;
      max_curve = 5;
      quant_req = 30.0;
      quant_load = 20.0;
      quant_area = 15.0;
      buffer_trials = 5;
      chain_placement = Flush_ends;
      max_iters = 2 }

let validate t =
  if t.alpha < 2 then invalid_arg "Config.validate: alpha < 2";
  if t.max_curve < 2 then invalid_arg "Config.validate: max_curve < 2";
  if t.candidate_limit < 1 then invalid_arg "Config.validate: candidate_limit < 1";
  if t.buffer_trials < 1 then invalid_arg "Config.validate: buffer_trials < 1";
  if t.bbox_slack < 0.0 then invalid_arg "Config.validate: bbox_slack < 0";
  if t.max_iters < 1 then invalid_arg "Config.validate: max_iters < 1";
  if t.quant_req < 0.0 || t.quant_load < 0.0 || t.quant_area < 0.0 then
    invalid_arg "Config.validate: negative quantisation grid";
  if t.curve_epsilon < 0.0 then
    invalid_arg "Config.validate: curve_epsilon < 0";
  if t.max_frontier < 0 then invalid_arg "Config.validate: max_frontier < 0";
  if t.max_frontier = 1 then
    invalid_arg "Config.validate: max_frontier = 1 (use >= 2, or 0 for off)"
