(** Tuning knobs of the MERLIN engine.

    The defaults follow the paper where it states values (alpha = 15 for
    Table 1, alpha = 10 and reduced Hanan candidates for Table 2); the
    pruning knobs implement the pseudo-polynomial provisos of Lemmas 1/10
    and are documented per-experiment in EXPERIMENTS.md. *)

type chain_placement =
  | All_positions
      (** the inner sub-group may sit anywhere inside the enclosing window
          (the paper's Fig. 9 loops) *)
  | Flush_ends
      (** restrict the inner sub-group to the window ends — a faster,
          slightly restricted hierarchy used for very large nets *)

type t = {
  alpha : int;  (** max branching factor of the C-alpha tree (>= 2) *)
  max_curve : int;
      (** safety cap on every solution curve (>= 2), Curve.cap; with the
          quantisation grids below the natural frontier rarely reaches it *)
  quant_req : float;
      (** required-time bucket, ps (0 disables); rounded down *)
  quant_load : float;
      (** load bucket, fF (0 disables); rounded up — the paper's
          "polynomially bounded integer capacitances" proviso *)
  quant_area : float;
      (** buffer-area bucket, 1000 lambda^2 (0 disables); rounded up *)
  candidate_limit : int;  (** cap on the candidate-location count *)
  buffer_trials : int;
      (** number of evenly spaced library buffers tried when closing a
          routing root (the full library stays available; this is the
          pruning-of-equivalent-drive-strengths knob, cf. the paper's
          observation that the effective fanout bound depends on the
          library, not the problem size) *)
  bbox_slack : float;
      (** candidate locations outside the terminals' bounding box inflated
          by this fraction are not offered to a merge (the source location
          is always kept) *)
  full_hanan : bool;
      (** use the complete Hanan grid (Table 1 setup) rather than the
          reduced set, subject to [candidate_limit] *)
  chain_placement : chain_placement;
  bubbling : bool;
      (** enable the chi_1..chi_3 grouping structures (local
          order-perturbation).  Disabling restricts the engine to the
          single given order (chi_0 only) — the ablation that isolates the
          paper's core contribution *)
  max_iters : int;  (** bound on MERLIN outer-loop iterations *)
  curve_epsilon : float;
      (** epsilon-domination slack applied by every frontier build in the
          *PTREE kernel (same units as the quantised coordinates): a
          candidate within [curve_epsilon] (load and area, at no better
          req) of a kept point is dropped.  0 disables — exact mode is
          byte-identical to builds without the knob.  DESIGN.md §9. *)
  max_frontier : int;
      (** hard cap on survivors kept by every frontier build (the
          width-capped sweep keeps the best-req prefix of the exact
          frontier).  0 disables; >= 2 otherwise.  Unlike [max_curve]
          (applied after a build by {!Curve.cap}, keeping spread), this
          truncates inside the sweep and so also bounds the work of
          downstream joins.  DESIGN.md §9. *)
}

val default : t

(** Table 1 setup: alpha = 15, full Hanan candidates. *)
val paper_table1 : t

(** Table 2 setup: alpha = 10, reduced Hanan, at most 3 MERLIN loops. *)
val paper_table2 : t

(** [scaled n] picks knobs by net size: paper-faithful below 20 sinks,
    progressively tighter pruning and [Flush_ends] above. *)
val scaled : int -> t

(** Raises [Invalid_argument] if a field is out of range. *)
val validate : t -> unit
