open Merlin_geometry
open Merlin_curves

type terminal =
  | Sink_term of Merlin_net.Sink.t
  | Sub_term of Build.t Curve.t array

(* Evenly spaced subset of the library tried at every routing root.  The
   library is a graded single-parameter family, so a spread of strengths
   loses little; the knob is documented in Config. *)
let buffer_subset buffers ~trials =
  let n = Array.length buffers in
  if n <= trials then buffers
  else
    Array.init trials (fun i -> buffers.(i * (n - 1) / (max 1 (trials - 1))))

(* Deferred payload of the buffer-closure batch: frontier survivors that
   were already in the curve keep their tree; buffered candidates build
   theirs only after pruning. *)
type close_payload =
  | Kept of Build.t
  | Buffered of Merlin_tech.Buffer_lib.buffer * Build.sol

(* Bounding box of the points a terminal can occupy. *)
let terminal_box candidates = function
  | Sink_term s -> Rect.make s.Merlin_net.Sink.pt s.Merlin_net.Sink.pt
  | Sub_term sub ->
    let pts = ref [] in
    Array.iteri
      (fun p c -> if not (Curve.is_empty c) then pts := candidates.(p) :: !pts)
      sub;
    (match !pts with
     | [] -> invalid_arg "Star_ptree.terminal_box: sub-terminal with empty curves"
     | pts -> Rect.bounding_box pts)

(* Operation counters used by the diagnostics in bench/ and by tuning
   sessions; atomic so concurrent flows under the execution engine do
   not lose increments, and still free next to the curve work. *)
let n_join_adds = Atomic.make 0
let n_close_adds = Atomic.make 0
let n_pull_adds = Atomic.make 0
let n_base_adds = Atomic.make 0
let n_cells = Atomic.make 0
let n_pulls = Atomic.make 0

(* Bytes-moved telemetry: [Gc.allocated_bytes] deltas around each kernel
   entry point (join, buffer closure, pull, base), plus join-build and
   survivor counts so bytes-per-join and mean frontier width fall out of
   a single counter snapshot.  [Gc.allocated_bytes] is per-domain, so a
   delta taken inside one task is that task's own allocation; the atomic
   accumulation makes the totals safe under the execution engine. *)
let n_joins = Atomic.make 0
let n_join_survivors = Atomic.make 0
let bytes_join = Atomic.make 0
let bytes_close = Atomic.make 0
let bytes_pull = Atomic.make 0
let bytes_base = Atomic.make 0

let add_bytes counter before =
  ignore
    (Atomic.fetch_and_add counter
       (int_of_float (Gc.allocated_bytes () -. before)))

let run ?(epsilon = 0.0) ?(max_frontier = 0) ~tech ~buffers ~trials ~max_curve
    ~grids ~bbox_slack ~candidates ~active ~terminals () =
  let m = Array.length terminals and k = Array.length candidates in
  if m = 0 then invalid_arg "Star_ptree.run: no terminals";
  if k = 0 then invalid_arg "Star_ptree.run: no candidates";
  if Array.length active = 0 then
    invalid_arg "Star_ptree.run: no active candidates";
  let subset = buffer_subset buffers ~trials in
  let req_grid, load_grid, area_grid = grids in
  (* One scratch builder per payload type for the whole DP (the builders
     own their sort/staircase scratch, see Curve.Builder): joins, buffer
     closures, extend-to-root batches (pull and sub-terminal bases never
     interleave) and cap selections.  Steady-state cells allocate only
     their survivor arrays.  [build] wraps Curve.Builder.build with the
     run-wide epsilon / frontier-cap knobs (both default off = exact). *)
  let join_bld = Curve.Builder.create () in
  let close_bld = Curve.Builder.create () in
  let extend_bld = Curve.Builder.create () in
  let cap_bld = Curve.Builder.create () in
  let build ~name bld = Curve.Builder.build ~name ~epsilon ~max_frontier bld in
  let finish curve = Curve.cap ~scratch:cap_bld ~max_size:max_curve curve in
  (* One flat cost record threaded through every cost computation of the
     run: Build.*_cost_into writes the three coordinates as unboxed
     float stores, [push_quant] quantises them in place (the same
     floor/ceil expressions as Solution.grid_down/grid_up, so
     bit-identical) and Curve.Builder.push_cost moves them into the
     builder columns.  No (req, load, area) tuple and no boxed floats
     per candidate — spelled out manually because the non-flambda
     compiler does not deforest tuples across function boundaries. *)
  let cost = Curve.Builder.new_cost () in
  let push_quant bld payload =
    if req_grid <> 0.0 then
      cost.Curve.Builder.creq <-
        floor (cost.Curve.Builder.creq /. req_grid) *. req_grid;
    if load_grid <> 0.0 then
      cost.Curve.Builder.cload <-
        ceil (cost.Curve.Builder.cload /. load_grid) *. load_grid;
    if area_grid <> 0.0 then
      cost.Curve.Builder.carea <-
        ceil (cost.Curve.Builder.carea /. area_grid) *. area_grid;
    Curve.Builder.push_cost bld cost payload
  in
  (* Try each buffer on every unbuffered root; re-buffering an existing
     buffer (a same-point repeater) is dominated by picking the right
     single size from the graded library, so it is skipped.  Two push
     passes — existing solutions first, then buffered candidates — so
     equal-cost ties resolve exactly as they did when the candidates were
     added one by one into the existing curve. *)
  let close_buffers curve =
    if Curve.is_empty curve then curve
    else begin
      let before = Gc.allocated_bytes () in
      let bld = close_bld in
      Curve.Builder.clear bld;
      Curve.iter
        (fun sol ->
           Curve.Builder.push bld ~req:sol.Solution.req ~load:sol.Solution.load
             ~area:sol.Solution.area (Kept sol.Solution.data))
        curve;
      Curve.iter
        (fun sol ->
           match sol.Solution.data.Build.tree with
           | Merlin_rtree.Rtree.Node { buffer = Some _; _ } -> ()
           | Merlin_rtree.Rtree.Leaf _
           | Merlin_rtree.Rtree.Node { buffer = None; _ } ->
             Array.iter
               (fun b ->
                  Atomic.incr n_close_adds;
                  Build.add_root_buffer_cost_into cost b sol;
                  push_quant bld (Buffered (b, sol)))
               subset)
        curve;
      let out =
        build ~name:"Star_ptree.close_buffers" bld
        |> Curve.map_data (function
          | Kept data -> data
          | Buffered (b, sol) -> (Build.add_root_buffer b sol).Solution.data)
      in
      add_bytes bytes_close before;
      out
    end
  in
  let term_boxes = Array.map (terminal_box candidates) terminals in
  (* Bounding box of terminals i..j, precomputed for all ranges by
     extending each row left to right: O(m^2) once, instead of an O(j-i)
     refold inside every cell_active call (O(m^3) over the run). *)
  let range_box =
    let tbl = Array.make (m * m) term_boxes.(0) in
    for i = 0 to m - 1 do
      tbl.((i * m) + i) <- term_boxes.(i);
      for j = i + 1 to m - 1 do
        let prev = tbl.((i * m) + j - 1) in
        tbl.((i * m) + j) <-
          Rect.bounding_box
            [ prev.Rect.lo; prev.Rect.hi; term_boxes.(j).Rect.lo;
              term_boxes.(j).Rect.hi ]
      done
    done;
    tbl
  in
  (* Active candidates of a cell: global actives within the inflated box of
     the cell's terminals.  The first global active is always kept (the
     caller places the source there, see Bubble_construct) so every cell
     can route toward the driver. *)
  let cell_active i j =
    let box = range_box.((i * m) + j) in
    let margin =
      1 + int_of_float (bbox_slack *. float_of_int (Rect.half_perimeter box))
    in
    let box = Rect.inflate box margin in
    let keep idx p = idx = 0 || Rect.contains box candidates.(p) in
    let inside = ref [] in
    for idx = Array.length active - 1 downto 0 do
      if keep idx active.(idx) then inside := active.(idx) :: !inside
    done;
    Array.of_list !inside
  in
  (* Each computed cell holds curves at its own active roots plus a memo of
     lazy relocations to other roots — the paper's d(p,p') move applied on
     demand instead of as a k^2 sweep. *)
  let table = Array.make (m * m) None in
  let idx i j = (i * m) + j in
  (* Materialise an extend-to-[root] batch: coordinates were already
     pushed (quantised) from extend_wire_cost; only frontier survivors
     grow a wire in their tree. *)
  let materialise_extend root curve =
    Curve.map_data
      (fun sol -> (Build.extend_wire tech ~to_:root sol).Solution.data)
      curve
  in
  let pull computed p =
    Atomic.incr n_pulls;
    let before = Gc.allocated_bytes () in
    let root = candidates.(p) in
    let bld = extend_bld in
    Curve.Builder.clear bld;
    Array.iter
      (Curve.iter (fun sol ->
         Atomic.incr n_pull_adds;
         Build.extend_wire_cost_into cost tech ~to_:root sol;
         push_quant bld sol))
      computed;
    let out =
      finish (materialise_extend root (build ~name:"Star_ptree.pull" bld))
    in
    add_bytes bytes_pull before;
    out
  in
  let cell_at i j p =
    match table.(idx i j) with
    | None -> assert false (* cells are filled in bottom-up order *)
    | Some (computed, memo) ->
      if not (Curve.is_empty computed.(p)) then computed.(p)
      else begin
        match memo.(p) with
        | Some curve -> curve
        | None ->
          let curve = pull computed p in
          memo.(p) <- Some curve;
          curve
      end
  in
  let compute_cell i j =
    let cell_act = cell_active i j in
    let computed = Array.make k Curve.empty in
    let raw =
      if i = j then fun p ->
        let before = Gc.allocated_bytes () in
        let root = candidates.(p) in
        let out =
          match terminals.(i) with
          | Sink_term s ->
            Atomic.incr n_base_adds;
            Curve.add Curve.empty
              (Solution.quantise ~req_grid ~load_grid ~area_grid
                 (Build.extend_wire tech ~to_:root (Build.of_sink s)))
          | Sub_term sub ->
            let bld = extend_bld in
            Curve.Builder.clear bld;
            Array.iter
              (Curve.iter (fun sol ->
                 Atomic.incr n_base_adds;
                 Build.extend_wire_cost_into cost tech ~to_:root sol;
                 push_quant bld sol))
              sub;
            materialise_extend root (build ~name:"Star_ptree.raw" bld)
        in
        add_bytes bytes_base before;
        out
      else fun p ->
        let root = candidates.(p) in
        (* Memoised relocations first, so any pull they trigger is
           attributed to [bytes_pull] instead of this join's delta. *)
        for u = i to j - 1 do
          ignore (cell_at i u p);
          ignore (cell_at (u + 1) j p)
        done;
        let before = Gc.allocated_bytes () in
        (* The join product: push every (a, b) cost pair, prune once, and
           only build the joined trees that survive. *)
        let bld = join_bld in
        Curve.Builder.clear bld;
        for u = i to j - 1 do
          let left = cell_at i u p and right = cell_at (u + 1) j p in
          if not (Curve.is_empty left || Curve.is_empty right) then
            Curve.iter
              (fun a ->
                 Curve.iter
                   (fun b ->
                      Atomic.incr n_join_adds;
                      Build.join_cost_into cost a b;
                      push_quant bld (a, b))
                   right)
              left
        done;
        let out =
          build ~name:"Star_ptree.join" bld
          |> Curve.map_data (fun (a, b) -> (Build.join root a b).Solution.data)
        in
        Atomic.incr n_joins;
        ignore (Atomic.fetch_and_add n_join_survivors (Curve.size out));
        add_bytes bytes_join before;
        out
    in
    Atomic.incr n_cells;
    Array.iter
      (fun p -> computed.(p) <- finish (close_buffers (finish (raw p))))
      cell_act;
    table.(idx i j) <- Some (computed, Array.make k None)
  in
  for i = 0 to m - 1 do
    compute_cell i i
  done;
  for len = 2 to m do
    for i = 0 to m - len do
      compute_cell i (i + len - 1)
    done
  done;
  match table.(idx 0 (m - 1)) with
  | Some (top, _) -> top
  | None -> assert false
