open Merlin_geometry
open Merlin_curves

type terminal =
  | Sink_term of Merlin_net.Sink.t
  | Sub_term of Build.t Curve.t array

(* Evenly spaced subset of the library tried at every routing root.  The
   library is a graded single-parameter family, so a spread of strengths
   loses little; the knob is documented in Config. *)
let buffer_subset buffers ~trials =
  let n = Array.length buffers in
  if n <= trials then buffers
  else
    Array.init trials (fun i -> buffers.(i * (n - 1) / (max 1 (trials - 1))))

let finish ~max_curve curve = Curve.cap ~max_size:max_curve curve

(* Bounding box of the points a terminal can occupy. *)
let terminal_box candidates = function
  | Sink_term s -> Rect.make s.Merlin_net.Sink.pt s.Merlin_net.Sink.pt
  | Sub_term sub ->
    let pts = ref [] in
    Array.iteri
      (fun p c -> if not (Curve.is_empty c) then pts := candidates.(p) :: !pts)
      sub;
    (match !pts with
     | [] -> invalid_arg "Star_ptree.terminal_box: sub-terminal with empty curves"
     | pts -> Rect.bounding_box pts)

(* Operation counters used by the diagnostics in bench/ and by tuning
   sessions; atomic so concurrent flows under the execution engine do
   not lose increments, and still free next to the curve work. *)
let n_join_adds = Atomic.make 0
let n_close_adds = Atomic.make 0
let n_pull_adds = Atomic.make 0
let n_base_adds = Atomic.make 0
let n_cells = Atomic.make 0
let n_pulls = Atomic.make 0

let run ~tech ~buffers ~trials ~max_curve ~grids ~bbox_slack ~candidates
    ~active ~terminals =
  let m = Array.length terminals and k = Array.length candidates in
  if m = 0 then invalid_arg "Star_ptree.run: no terminals";
  if k = 0 then invalid_arg "Star_ptree.run: no candidates";
  if Array.length active = 0 then
    invalid_arg "Star_ptree.run: no active candidates";
  let subset = buffer_subset buffers ~trials in
  let req_grid, load_grid, area_grid = grids in
  let quant_add acc s =
    Curve.add acc (Solution.quantise ~req_grid ~load_grid ~area_grid s)
  in
  (* Try each buffer on every unbuffered root; re-buffering an existing
     buffer (a same-point repeater) is dominated by picking the right
     single size from the graded library, so it is skipped. *)
  let close_buffers curve =
    Curve.fold
      (fun acc sol ->
         match sol.Solution.data.Build.tree with
         | Merlin_rtree.Rtree.Node { buffer = Some _; _ } -> acc
         | Merlin_rtree.Rtree.Leaf _ | Merlin_rtree.Rtree.Node { buffer = None; _ } ->
           Array.fold_left
             (fun acc b ->
                Atomic.incr n_close_adds;
                quant_add acc (Build.add_root_buffer b sol))
             acc subset)
      curve curve
  in
  let term_boxes = Array.map (terminal_box candidates) terminals in
  (* Active candidates of a cell: global actives within the inflated box of
     the cell's terminals.  The first global active is always kept (the
     caller places the source there, see Bubble_construct) so every cell
     can route toward the driver. *)
  let cell_active i j =
    let box = ref term_boxes.(i) in
    for t = i + 1 to j do
      box :=
        Rect.bounding_box
          [ !box.Rect.lo; !box.Rect.hi; term_boxes.(t).Rect.lo;
            term_boxes.(t).Rect.hi ]
    done;
    let margin =
      1 + int_of_float (bbox_slack *. float_of_int (Rect.half_perimeter !box))
    in
    let box = Rect.inflate !box margin in
    let keep idx p = idx = 0 || Rect.contains box candidates.(p) in
    let inside = ref [] in
    for idx = Array.length active - 1 downto 0 do
      if keep idx active.(idx) then inside := active.(idx) :: !inside
    done;
    Array.of_list !inside
  in
  (* Each computed cell holds curves at its own active roots plus a memo of
     lazy relocations to other roots — the paper's d(p,p') move applied on
     demand instead of as a k^2 sweep. *)
  let table = Array.make (m * m) None in
  let idx i j = (i * m) + j in
  let pull computed p =
    Atomic.incr n_pulls;
    let root = candidates.(p) in
    let from acc curve =
      Curve.fold
        (fun acc sol -> Atomic.incr n_pull_adds; quant_add acc (Build.extend_wire tech ~to_:root sol))
        acc curve
    in
    finish ~max_curve (Array.fold_left from Curve.empty computed)
  in
  let cell_at i j p =
    match table.(idx i j) with
    | None -> assert false (* cells are filled in bottom-up order *)
    | Some (computed, memo) ->
      if not (Curve.is_empty computed.(p)) then computed.(p)
      else begin
        match memo.(p) with
        | Some curve -> curve
        | None ->
          let curve = pull computed p in
          memo.(p) <- Some curve;
          curve
      end
  in
  let compute_cell i j =
    let cell_act = cell_active i j in
    let computed = Array.make k Curve.empty in
    let raw =
      if i = j then fun p ->
        let root = candidates.(p) in
        match terminals.(i) with
        | Sink_term s ->
          Atomic.incr n_base_adds;
          quant_add Curve.empty
            (Build.extend_wire tech ~to_:root (Build.of_sink s))
        | Sub_term sub ->
          let attach acc curve =
            Curve.fold
              (fun acc sol ->
                 Atomic.incr n_base_adds;
                 quant_add acc (Build.extend_wire tech ~to_:root sol))
              acc curve
          in
          Array.fold_left attach Curve.empty sub
      else fun p ->
        let root = candidates.(p) in
        let acc = ref Curve.empty in
        for u = i to j - 1 do
          let left = cell_at i u p and right = cell_at (u + 1) j p in
          if not (Curve.is_empty left || Curve.is_empty right) then
            Curve.iter
              (fun a ->
                 Curve.iter
                   (fun b -> Atomic.incr n_join_adds; acc := quant_add !acc (Build.join root a b))
                   right)
              left
        done;
        !acc
    in
    Atomic.incr n_cells;
    Array.iter
      (fun p ->
         computed.(p) <- finish ~max_curve (close_buffers (finish ~max_curve (raw p))))
      cell_act;
    table.(idx i j) <- Some (computed, Array.make k None)
  in
  for i = 0 to m - 1 do
    compute_cell i i
  done;
  for len = 2 to m do
    for i = 0 to m - len do
      compute_cell i (i + len - 1)
    done
  done;
  match table.(idx 0 (m - 1)) with
  | Some (top, _) -> top
  | None -> assert false
