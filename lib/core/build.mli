(** Partial buffered-routing solutions and the elementary moves of the
    dynamic programs.

    A partial solution couples the geometric routing tree with the
    C-alpha-tree member list of the sinks it covers (in realised order).
    The three moves — extending through a wire, adding a buffer at the
    root, joining two subtrees at a common point — each update the
    (required time, load, area) coordinates per the Elmore / 4-parameter
    models, which is all the curve DP needs. *)

open Merlin_geometry
open Merlin_tech
open Merlin_net
open Merlin_rtree
open Merlin_curves

type t = {
  tree : Rtree.t;
  members : Catree.member list;  (** realised order of covered terminals *)
}

type sol = t Solution.t

(** [of_sink s] is the trivial solution: the sink itself, rooted at the
    sink's own location. *)
val of_sink : Sink.t -> sol

(** [extend_wire tech ~to_ s] re-roots [s] at [to_] through a rectilinear
    wire: required time drops by the Elmore delay of the wire, load grows
    by the wire capacitance.  A zero-length extension re-uses the root. *)
val extend_wire : Tech.t -> to_:Point.t -> sol -> sol

(** [add_root_buffer b s] drives [s] with buffer [b] placed at the root:
    required time drops by the buffer's gate delay at the current load,
    the load becomes the buffer input capacitance, the area grows. *)
val add_root_buffer : Buffer_lib.buffer -> sol -> sol

(** [join at a b] merges two solutions rooted at the same point [at]:
    required time is the minimum, load and area add, member lists
    concatenate in (a, b) order.  Raises [Invalid_argument] if either root
    is elsewhere. *)
val join : Point.t -> sol -> sol -> sol

(** The root attachment point. *)
val root : sol -> Point.t

(** Cost-only twins of the moves above: the (required time, load, area)
    the move would produce, computed with the same float expressions (so
    bit-identical), without constructing the routing tree.  Results are
    written into a caller-owned {!Curve.Builder.cost} record — flat
    all-float storage, so the hot loops move three floats per candidate
    without allocating a tuple or boxing (DESIGN.md §9).  The batch DP
    loops push the record with {!Curve.Builder.push_cost} and
    materialise trees only for the frontier survivors. *)

val extend_wire_cost_into : Curve.Builder.cost -> Tech.t -> to_:Point.t -> sol -> unit

val add_root_buffer_cost_into :
  Curve.Builder.cost -> Buffer_lib.buffer -> 'a Solution.t -> unit

val join_cost_into :
  Curve.Builder.cost -> 'a Solution.t -> 'b Solution.t -> unit
