(** The *PTREE engine (paper Section 3.2.3).

    Given an ordered list of terminals — direct sinks and at most a few
    already-constructed sub-groups — and a set of candidate locations, the
    engine computes, for every candidate root p, the non-inferior
    three-dimensional solution curve of rectilinear buffered routings of
    the terminals that respect the terminal order (the P_Tree property),
    may place a buffer at any routing root (the * of *P_Tree) and may route
    through other candidate locations (the d(p,p') relocation of the
    paper's recurrence).

    The interval DP follows the paper's recurrences:
    - S_b(p,i,j) = min over u of S(p,i,u) + S(p,u+1,j) (joins at p)
    - S(p,i,j)  = min over p' of d(p,p') + S_b(p',i,j) (one-hop moves;
      multi-hop paths compose across DP levels since Manhattan distance is
      a metric, and buffered hops are covered because every curve is
      "closed" under root-buffer insertion before it is extended). *)

open Merlin_geometry
open Merlin_tech
open Merlin_net
open Merlin_curves

type terminal =
  | Sink_term of Sink.t
  | Sub_term of Build.t Curve.t array
      (** an already-built sub-group: one curve per candidate index, each
          solution rooted at that candidate *)

(** [run ~tech ~buffers ~trials ~max_curve ~load_grid ~candidates ~active
    ~terminals] is the per-candidate solution curve array (length
    [Array.length candidates]) for routing all [terminals] rooted at each
    candidate whose index appears in [active]; curves at inactive indices
    are empty.  [trials] bounds how many library buffers are tried at each
    root (evenly spaced over the graded library); [grids] are the
    (req, load, area) quantisation buckets of {!Curve.quantise}.  Every returned curve is
    closed under root-buffer insertion.  [epsilon] and [max_frontier]
    are {!Curve.Builder.build}'s frontier knobs, applied to every build
    of the DP ({!Config.t}'s [curve_epsilon] / [max_frontier]; both
    default off, leaving the exact kernel byte-identical).  Raises
    [Invalid_argument] on empty [terminals], [candidates] or [active]. *)
(**/**)
val n_join_adds : int Atomic.t
val n_close_adds : int Atomic.t
val n_pull_adds : int Atomic.t
val n_base_adds : int Atomic.t
val n_cells : int Atomic.t
val n_pulls : int Atomic.t

(* Bytes-moved telemetry: Gc.allocated_bytes deltas accumulated around
   each kernel entry point, plus join-build/survivor counts, consumed by
   `bench/main.exe curve --json` and `merlin-cli route --stats`. *)
val n_joins : int Atomic.t
val n_join_survivors : int Atomic.t
val bytes_join : int Atomic.t
val bytes_close : int Atomic.t
val bytes_pull : int Atomic.t
val bytes_base : int Atomic.t
(**/**)

val run :
  ?epsilon:float ->
  ?max_frontier:int ->
  tech:Tech.t ->
  buffers:Buffer_lib.t ->
  trials:int ->
  max_curve:int ->
  grids:float * float * float ->
  bbox_slack:float ->
  candidates:Point.t array ->
  active:int array ->
  terminals:terminal array ->
  unit ->
  Build.t Curve.t array
