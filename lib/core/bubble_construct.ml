open Merlin_geometry
open Merlin_tech
open Merlin_net
open Merlin_curves
open Merlin_order

type result = {
  curve : Build.t Curve.t;
  candidates : Point.t array;
  merges : int;
}

let candidate_set (cfg : Config.t) net =
  let pts = Net.terminals net in
  let limit =
    if cfg.Config.full_hanan then cfg.Config.candidate_limit
    else min cfg.Config.candidate_limit (max 8 (2 * Net.n_sinks net))
  in
  Array.of_list (Hanan.reduced pts ~limit)

let hierarchy (sol : Build.t Solution.t) =
  Catree.level sol.Solution.data.Build.members

let realized_order sol = Order.of_list (Catree.sinks_in_order (hierarchy sol))

(* A closed sub-group becomes a single chain member when absorbed by the
   enclosing level. *)
let as_chain_terminal curves =
  let wrap (sol : Build.t Solution.t) =
    let data = sol.Solution.data in
    { sol with
      Solution.data =
        { data with Build.members = [ Catree.Chain (Catree.level data.Build.members) ] } }
  in
  Star_ptree.Sub_term (Array.map (fun c -> Curve.map_solutions wrap c) curves)

let construct ?candidates ~cfg ~tech ~buffers (net : Net.t) order =
  Config.validate cfg;
  if not (Order.is_permutation order) || Order.length order <> Net.n_sinks net
  then invalid_arg "Bubble_construct.construct: bad order";
  let n = Net.n_sinks net in
  let alpha = cfg.Config.alpha in
  let candidates =
    match candidates with
    | None -> candidate_set cfg net
    | Some given ->
      (* The source must be a candidate (it anchors every active set). *)
      if Array.exists (Point.equal net.Net.source) given then given
      else Array.append [| net.Net.source |] given
  in
  let k = Array.length candidates in
  let source_index =
    (* The source is a net terminal, hence always in the candidate set. *)
    let rec find p =
      if p >= k then 0
      else if Point.equal candidates.(p) net.Net.source then p
      else find (p + 1)
    in
    find 0
  in
  (* Convention shared with Star_ptree: the source is the first active. *)
  let all_active =
    Array.init k (fun i ->
        if i = 0 then source_index
        else if i <= source_index then i - 1
        else i)
  in
  let merges = ref 0 in
  let star ~active terminals =
    incr merges;
    Star_ptree.run ~epsilon:cfg.Config.curve_epsilon
      ~max_frontier:cfg.Config.max_frontier ~tech ~buffers
      ~trials:cfg.Config.buffer_trials ~max_curve:cfg.Config.max_curve
      ~grids:(cfg.Config.quant_req, cfg.Config.quant_load, cfg.Config.quant_area)
      ~bbox_slack:cfg.Config.bbox_slack ~candidates ~active ~terminals ()
  in
  (* Merge accumulators, shared by every window of the construction: one
     scratch builder per candidate, cleared on first use inside a window
     (the stamp check), plus one cap-selection scratch.  A window touches
     few candidates, so the pool stays small while merges allocate only
     their surviving curves. *)
  let merge_blds = Array.make k None in
  let merge_stamp = Array.make k 0 in
  let window_id = ref 0 in
  let cap_bld = Curve.Builder.create () in
  (* Gamma table: (covered length, structure code, right window end) ->
     per-candidate curves.  Only non-empty entries are stored. *)
  let gamma : (int * int * int, Build.t Curve.t array) Hashtbl.t =
    Hashtbl.create 256
  in
  let gamma_find len e r =
    Hashtbl.find_opt gamma (len, Grouping.code e, r)
  in
  let gamma_put len e r curves =
    if Array.exists (fun c -> not (Curve.is_empty c)) curves then
      Hashtbl.replace gamma (len, Grouping.code e, r) curves
  in
  let sink_at pos = Net.sink net order.(pos) in
  let structures =
    if cfg.Config.bubbling then Grouping.all else [ Grouping.Chi0 ]
  in
  (* INITIALIZATION (Fig. 9 lines 1-4): single-sink paths, one entry per
     grouping structure whose window fits. *)
  let sink_base = Hashtbl.create 16 in
  let base_curves pos =
    match Hashtbl.find_opt sink_base pos with
    | Some curves -> curves
    | None ->
      let curves =
        star ~active:all_active [| Star_ptree.Sink_term (sink_at pos) |]
      in
      Hashtbl.replace sink_base pos curves;
      curves
  in
  (* Candidates offered to a merge: those inside the covered sinks' bounding
     box inflated by the configured slack, plus the source. *)
  let active_for covered_positions =
    let pts = List.map (fun pos -> (sink_at pos).Sink.pt) covered_positions in
    let box = Rect.bounding_box pts in
    let margin =
      1 + int_of_float (cfg.Config.bbox_slack *. float_of_int (Rect.half_perimeter box))
    in
    let box = Rect.inflate box margin in
    let inside = ref [] in
    for p = k - 1 downto 0 do
      if p <> source_index && Rect.contains box candidates.(p) then
        inside := p :: !inside
    done;
    Array.of_list (source_index :: !inside)
  in
  let init_one e =
    let stretch = Grouping.stretch e in
    for r = stretch to n - 1 do
      match Grouping.covered ~r ~len:1 e with
      | [ pos ] -> gamma_put 1 e r (base_curves pos)
      | _ -> assert false
    done
  in
  List.iter
    (fun e -> if Grouping.valid ~len:1 e then init_one e)
    structures;
  (* CONSTRUCTION (Fig. 9 lines 5-20). *)
  let module IS = Set.Make (Int) in
  let merge_window ~cov_len ~e_out ~r_out =
    let covered_out = Grouping.covered ~r:r_out ~len:cov_len e_out in
    let set_out = IS.of_list covered_out in
    let start_out = Grouping.window_start ~r:r_out ~len:cov_len e_out in
    let active = active_for covered_out in
    (* Per-candidate batch accumulators (most candidates never receive a
       curve): every inner placement's curves are pushed and the frontier
       computed once per candidate, instead of a re-pruning union per
       placement.  Builders come from the construct-level pool; the stamp
       marks which candidates this window actually touched. *)
    incr window_id;
    let acc_builder p =
      let bld =
        match merge_blds.(p) with
        | Some bld -> bld
        | None ->
          let bld = Curve.Builder.create () in
          merge_blds.(p) <- Some bld;
          bld
      in
      if merge_stamp.(p) <> !window_id then begin
        merge_stamp.(p) <- !window_id;
        Curve.Builder.clear bld
      end;
      bld
    in
    let seen_signatures = Hashtbl.create 16 in
    let try_inner l_in e_in r_in =
      match gamma_find l_in e_in r_in with
      | None -> ()
      | Some inner_curves ->
        let covered_in = Grouping.covered ~r:r_in ~len:l_in e_in in
        let set_in = IS.of_list covered_in in
        (* Line 15: skip if the inner group covers a sink outside the
           enclosing group. *)
        if IS.subset set_in set_out then begin
          let directs = IS.elements (IS.diff set_out set_in) in
          let start_in = Grouping.window_start ~r:r_in ~len:l_in e_in in
          let sl = Grouping.skipped_left ~r:r_in ~len:l_in e_in in
          let sr = Grouping.skipped_right ~r:r_in ~len:l_in e_in in
          let skipped_at opt pos =
            match opt with Some p -> p = pos | None -> false
          in
          let is_bubbled pos = skipped_at sl pos || skipped_at sr pos in
          let lefts =
            List.filter (fun pos -> pos < start_in && not (is_bubbled pos)) directs
          and rights =
            List.filter (fun pos -> pos > r_in && not (is_bubbled pos)) directs
          in
          let opt_term skipped =
            match skipped with
            | Some pos when IS.mem pos set_out ->
              [ Star_ptree.Sink_term (sink_at pos) ]
            | Some _ | None -> []
          in
          let sink_terms = List.map (fun pos -> Star_ptree.Sink_term (sink_at pos)) in
          (* A single-sink chain is just that sink: routing-wise the two
             are identical, and collapsing them lets the signature check
             below share merges across equivalent (e, r) placements. *)
          let chain_terms, chain_sig =
            if l_in = 1 then (sink_terms covered_in, covered_in)
            else
              ( [ as_chain_terminal inner_curves ],
                [ -1000000 - (((l_in * 4) + Grouping.code e_in) * 1024) - r_in ] )
          in
          let signature =
            List.map (fun pos -> pos) lefts
            @ List.map (fun (pos : int) -> pos) (List.filter (fun pos -> IS.mem pos set_out) (Option.to_list sl))
            @ chain_sig
            @ List.map (fun (pos : int) -> pos) (List.filter (fun pos -> IS.mem pos set_out) (Option.to_list sr))
            @ rights
          in
          if not (Hashtbl.mem seen_signatures signature) then begin
            Hashtbl.add seen_signatures signature ();
            let terminals =
              sink_terms lefts
              @ opt_term sl
              @ chain_terms
              @ opt_term sr
              @ sink_terms rights
            in
            (* Every direct sink must be accounted for: left of, bubbled
               out of, or right of the inner window. *)
            assert (List.length terminals = 1 + (cov_len - l_in));
            let out = star ~active (Array.of_list terminals) in
            Array.iteri
              (fun p c ->
                 if not (Curve.is_empty c) then
                   Curve.Builder.add_curve (acc_builder p) c)
              out
          end
        end
    in
    let inner_r_positions l_in' =
      let lo = start_out + l_in' - 1 and hi = r_out in
      match cfg.Config.chain_placement with
      | Config.All_positions -> List.init (max 0 (hi - lo + 1)) (fun i -> lo + i)
      | Config.Flush_ends ->
        if lo > hi then [] else if lo = hi then [ lo ] else [ lo; hi ]
    in
    for l_in = max 1 (cov_len - alpha + 1) to cov_len - 1 do
      List.iter
        (fun e_in ->
           if Grouping.valid ~len:l_in e_in then begin
             let l_in' = l_in + Grouping.stretch e_in in
             List.iter (fun r_in -> try_inner l_in e_in r_in)
               (inner_r_positions l_in')
           end)
        structures
    done;
    let capped =
      Array.init k (fun p ->
          if merge_stamp.(p) <> !window_id then Curve.empty
          else
            match merge_blds.(p) with
            | None -> Curve.empty
            | Some bld ->
              Curve.cap ~scratch:cap_bld ~max_size:cfg.Config.max_curve
                (Curve.Builder.build ~name:"Bubble_construct.merge"
                   ~epsilon:cfg.Config.curve_epsilon
                   ~max_frontier:cfg.Config.max_frontier bld))
    in
    gamma_put cov_len e_out r_out capped
  in
  for cov_len = 2 to n do
    List.iter
      (fun e_out ->
         if Grouping.valid ~len:cov_len e_out then begin
           let l_out' = cov_len + Grouping.stretch e_out in
           for r_out = l_out' - 1 to n - 1 do
             merge_window ~cov_len ~e_out ~r_out
           done
         end)
      structures
  done;
  (* EXTRACTION (Fig. 9 lines 21-23): connect the driver. *)
  let final =
    match gamma_find n Grouping.Chi0 (n - 1) with
    | None -> Curve.empty
    | Some top ->
      let bld = Curve.Builder.create () in
      Array.iter
        (Curve.iter (fun sol ->
           let at_source = Build.extend_wire tech ~to_:net.Net.source sol in
           let gate =
             Delay_model.delay net.Net.driver ~load:at_source.Solution.load
           in
           Curve.Builder.push bld
             ~req:(at_source.Solution.req -. gate)
             ~load:at_source.Solution.load ~area:at_source.Solution.area
             at_source.Solution.data))
        top;
      Curve.Builder.build ~name:"Bubble_construct.to_driver" bld
  in
  { curve = final; candidates; merges = !merges }
