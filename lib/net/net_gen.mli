(** Random net generation following the paper's experimental recipe
    (Section IV): sinks of a mapped net have known loads and required
    times; their locations are drawn uniformly at random inside a bounding
    box sized so that the interconnect delay is approximately equal to a
    gate delay.

    All generators are deterministic in their [seed]. *)

open Merlin_tech

(** [box_side tech ~target_delay] is the side (grid units) of a square box
    whose corner-to-corner Elmore wire delay is approximately
    [target_delay] ps. *)
val box_side : Tech.t -> target_delay:float -> int

(** [random_net ~seed ~name ~n tech] builds an [n]-sink net:
    - box sized so the interconnect delay of the net is about one gate
      delay: a routed tree strings several box-sides of wire in series
      and wire delay is quadratic in length, so the corner-to-corner
      Elmore target is [wire_gate_ratio] (default 0.25) of a gate delay,
    - sink loads uniform in [15, 50] fF (mapped-netlist input pins),
    - required times spread over a window of a few gate delays,
    - driver placed on the box edge. *)
val random_net :
  seed:int ->
  name:string ->
  n:int ->
  ?driver:Delay_model.t ->
  ?wire_gate_ratio:float ->
  Tech.t ->
  Net.t

(** [normalize_seed seed] folds any [int] seed into [0, 2^30) with
    word-size-independent (Int64) arithmetic, so the same seed names the
    same net on 32- and 64-bit builds.  Identity on [0, 2^30) — all
    historical seeds, so existing nets (and the golden route) are
    unchanged. *)
val normalize_seed : int -> int

(** Large-net shapes for the hierarchical flow (100–2000 sinks):
    - [Clock_grid]: clock pins on a jittered square grid, light uniform
      loads, one common required time;
    - [High_fanout]: a scan/reset-style signal, uniform spray of light
      input pins;
    - [Clustered]: a few dense placement blobs — the natural best case
      for sink clustering. *)
type shape = Clock_grid | High_fanout | Clustered

(** ["clock-grid"], ["high-fanout"], ["clustered"] — the CLI/bench
    names. *)
val shape_name : shape -> string

val shape_of_string : string -> shape option

(** [large_net ~seed ~name ~shape ~n tech] builds an [n]-sink net of the
    given shape in a box spanning several gate delays of wire (which is
    what makes buffering and decomposition necessary).  Deterministic in
    ([seed], [shape], [n]) across word sizes. *)
val large_net :
  seed:int ->
  name:string ->
  shape:shape ->
  n:int ->
  ?driver:Delay_model.t ->
  Tech.t ->
  Net.t

(** The 18 Table-1 nets: (circuit, net name, sink count) exactly as the
    paper lists them. *)
val table1_specs : (string * string * int) list

(** [table1_nets tech] instantiates the 18 nets, seeded by their names. *)
val table1_nets : Tech.t -> (string * string * Net.t) list
