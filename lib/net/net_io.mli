(** Plain-text (de)serialisation of nets, one item per line:

    {v
    net <name>
    source <x> <y>
    driver <d0> <r_drive> <k_slew> <s0>
    sink <id> <x> <y> <cap> <req>
    ...
    v}

    The text form is canonical: floats print as the shortest decimal
    that parses back to the same value, so [to_string] is stable under
    save/load round trips and doubles as the fingerprint pre-image. *)

val to_string : Net.t -> string

(** [fingerprint net] — hex digest of the canonical text without the
    name line.  Two nets differing only in sink order (the ids) hash
    differently — every flow is order-sensitive, so order is part of
    the problem — while renaming, saving and reloading a net preserves
    its fingerprint.  This is the net component of the serving layer's
    cache key. *)
val fingerprint : Net.t -> string

(** Raises [Failure] with a line-numbered message on malformed input. *)
val of_string : string -> Net.t

val save : string -> Net.t -> unit

val load : string -> Net.t
