(** Plain-text (de)serialisation of nets, one item per line:

    {v
    net <name>
    source <x> <y>
    driver <d0> <r_drive> <k_slew> <s0>
    sink <id> <x> <y> <cap> <req>
    ...
    v}

    The text form is canonical: floats print as the shortest decimal
    that parses back to the same value, so [to_string] is stable under
    save/load round trips and doubles as the fingerprint pre-image. *)

val to_string : Net.t -> string

(** [fingerprint net] — hex digest of the canonical text without the
    name line.  Two nets differing only in sink order (the ids) hash
    differently — every flow is order-sensitive, so order is part of
    the problem — while renaming, saving and reloading a net preserves
    its fingerprint.  This is the net component of the serving layer's
    cache key. *)
val fingerprint : Net.t -> string

(** Raises [Failure] with a line-numbered message on malformed input. *)
val of_string : string -> Net.t

(** Canonical multi-net (netlist file) form: the [to_string] blocks
    concatenated — every "net <name>" line starts a new record, so the
    single-net and multi-net forms are mutually parseable. *)
val to_string_many : Net.t list -> string

(** Splits on "net" header lines and parses each record with
    {!of_string}; empty input yields [[]].  Raises [Failure] (with
    record-relative line numbers) on malformed records or content
    before the first header. *)
val of_string_many : string -> Net.t list

val save : string -> Net.t -> unit

val load : string -> Net.t

val save_many : string -> Net.t list -> unit

val load_many : string -> Net.t list
