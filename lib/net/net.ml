open Merlin_geometry
open Merlin_tech

type t = {
  name : string;
  source : Point.t;
  driver : Delay_model.t;
  sinks : Sink.t array;
}

let make ~name ~source ~driver sinks =
  (match sinks with [] -> invalid_arg "Net.make: no sinks" | _ :: _ -> ());
  let arr = Array.of_list sinks in
  Array.iteri
    (fun i s ->
       if s.Sink.id <> i then
         invalid_arg
           (Printf.sprintf "Net.make: sink at index %d has id %d" i s.Sink.id))
    arr;
  { name; source; driver; sinks = arr }

let n_sinks t = Array.length t.sinks

let sink t i = t.sinks.(i)

let terminals t =
  t.source :: Array.to_list (Array.map (fun s -> s.Sink.pt) t.sinks)

let bounding_box t = Rect.bounding_box (terminals t)

let total_sink_cap t =
  Array.fold_left (fun acc s -> acc +. s.Sink.cap) 0.0 t.sinks

(* A mid-size 0.35um-class cell: weak enough that driving a multi-fanout
   net unbuffered is painful, which is the regime the paper evaluates. *)
let default_driver =
  Delay_model.make ~d0:80.0 ~r_drive:6000.0 ~k_slew:0.12 ~s0:30.0

let pp ppf t =
  Format.fprintf ppf "net %s: src=%a, %d sinks" t.name Point.pp t.source
    (n_sinks t)
