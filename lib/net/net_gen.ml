open Merlin_geometry
open Merlin_tech

(* Solve (r*c/2) * L^2 * ps_per_ohm_ff = target_delay for L. *)
let box_side tech ~target_delay =
  let rc =
    tech.Tech.unit_wire_res *. tech.Tech.unit_wire_cap /. 2.0
    *. Tech.ps_per_ohm_ff
  in
  int_of_float (sqrt (target_delay /. rc))

let uniform st lo hi = lo +. (Random.State.float st (hi -. lo))

(* Word-size-independent seed folding.  [Random.State.make] hashes the
   seed array with a word-size-independent mix, but only for values that
   fit every word size: a seed >= 2^30 (or negative) is representable on
   64-bit and not on 32-bit, so the same "seed" would name different
   nets.  Fold those through splitmix64 on Int64 (identical arithmetic
   everywhere) into [0, 2^30).  Seeds already in [0, 2^30) — every
   in-repo call site, including [Hashtbl.hash] results — pass through
   unchanged, keeping historical nets (and the golden route) intact. *)
let splitmix64 z =
  let open Int64 in
  let z = add z 0x9e3779b97f4a7c15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let normalize_seed seed =
  if seed >= 0 && seed < 0x4000_0000 then seed
  else Int64.to_int (Int64.logand (splitmix64 (Int64.of_int seed)) 0x3fff_ffffL)

let random_net ~seed ~name ~n ?(driver = Net.default_driver)
    ?(wire_gate_ratio = 0.25) tech =
  if n < 1 then invalid_arg "Net_gen.random_net: n < 1";
  let st =
    Random.State.make [| normalize_seed seed; n; 0x4d45524c (* "MERL" *) |]
  in
  let gate_delay = Delay_model.delay driver ~load:30.0 in
  let side = box_side tech ~target_delay:(wire_gate_ratio *. gate_delay) in
  let point () =
    Point.make (Random.State.int st (side + 1)) (Random.State.int st (side + 1))
  in
  let req_window = 4.0 *. gate_delay in
  let base_req = 10.0 *. gate_delay in
  (* Gate input pins of a mapped 0.35um netlist: tens of fF.  Heavy sink
     loads are what make the logic-domain fanout problem (Flow I's LTTREE
     phase) nontrivial, as in the paper's mapped benchmarks. *)
  let sink id =
    Sink.make ~id ~pt:(point ())
      ~cap:(uniform st 15.0 50.0)
      ~req:(base_req +. uniform st 0.0 req_window)
  in
  let sinks = List.init n sink in
  let source = Point.make 0 (Random.State.int st (side + 1)) in
  Net.make ~name ~source ~driver sinks

(* ---------- large-net shapes (the hierarchical-flow workload) ---------- *)

type shape = Clock_grid | High_fanout | Clustered

let shape_name = function
  | Clock_grid -> "clock-grid"
  | High_fanout -> "high-fanout"
  | Clustered -> "clustered"

let shape_of_string = function
  | "clock-grid" -> Some Clock_grid
  | "high-fanout" -> Some High_fanout
  | "clustered" -> Some Clustered
  | _ -> None

let shape_tag = function Clock_grid -> 1 | High_fanout -> 2 | Clustered -> 3

let clamp v lo hi = min (max v lo) hi

let large_net ~seed ~name ~shape ~n ?(driver = Net.default_driver) tech =
  if n < 1 then invalid_arg "Net_gen.large_net: n < 1";
  let st =
    Random.State.make
      [| normalize_seed seed; n; shape_tag shape; 0x4d45524c (* "MERL" *) |]
  in
  let gate_delay = Delay_model.delay driver ~load:30.0 in
  (* A big net spans many gate delays of wire — that is exactly why it
     needs buffering and decomposition. *)
  let side = box_side tech ~target_delay:(4.0 *. gate_delay) in
  let base_req = 20.0 *. gate_delay in
  let sinks =
    match shape with
    | Clock_grid ->
      (* Clock pins on a jittered ceil(sqrt n) grid: near-uniform light
         loads, one common required time. *)
      let g = int_of_float (ceil (sqrt (float_of_int n))) in
      let cell = max 1 (side / g) in
      let jitter () = Random.State.int st (max 1 (cell / 4)) in
      List.init n (fun i ->
          let col = i mod g and row = i / g in
          let x = clamp ((col * cell) + jitter ()) 0 side
          and y = clamp ((row * cell) + jitter ()) 0 side in
          Sink.make ~id:i ~pt:(Point.make x y)
            ~cap:(uniform st 8.0 12.0) ~req:base_req)
    | High_fanout ->
      (* A scan-enable / reset style signal: uniform spray of light gate
         input pins, mildly spread required times. *)
      List.init n (fun i ->
          let pt =
            Point.make
              (Random.State.int st (side + 1))
              (Random.State.int st (side + 1))
          in
          Sink.make ~id:i ~pt ~cap:(uniform st 5.0 20.0)
            ~req:(base_req +. uniform st 0.0 (2.0 *. gate_delay)))
    | Clustered ->
      (* Placement blobs: a few dense groups, mapped-netlist loads.  The
         natural best case for the clustering front end. *)
      let blobs = max 3 (n / 40) in
      let centers =
        Array.init blobs (fun _ ->
            Point.make
              (Random.State.int st (side + 1))
              (Random.State.int st (side + 1)))
      in
      let spread = max 1 (side / 12) in
      List.init n (fun i ->
          let c = centers.(Random.State.int st blobs) in
          let dx = Random.State.int st ((2 * spread) + 1) - spread
          and dy = Random.State.int st ((2 * spread) + 1) - spread in
          let pt =
            Point.make
              (clamp (c.Point.x + dx) 0 side)
              (clamp (c.Point.y + dy) 0 side)
          in
          Sink.make ~id:i ~pt ~cap:(uniform st 15.0 50.0)
            ~req:(base_req +. uniform st 0.0 (4.0 *. gate_delay)))
  in
  let source = Point.make 0 (Random.State.int st (side + 1)) in
  Net.make ~name ~source ~driver sinks

let table1_specs =
  [ ("C432", "net1", 16); ("C432", "net2", 16); ("C432", "net3", 10);
    ("C1355", "net4", 9); ("C1355", "net5", 9); ("C1355", "net6", 13);
    ("C3540", "net7", 12); ("C3540", "net8", 35); ("C3540", "net9", 73);
    ("C5315", "net10", 49); ("C5315", "net11", 21); ("C5315", "net12", 50);
    ("C6288", "net13", 16); ("C6288", "net14", 20); ("C6288", "net15", 60);
    ("C7552", "net16", 12); ("C7552", "net17", 16); ("C7552", "net18", 23) ]

let table1_nets tech =
  let instantiate (circuit, net_name, n) =
    let seed = Hashtbl.hash (circuit, net_name) in
    (circuit, net_name, random_net ~seed ~name:net_name ~n tech)
  in
  List.map instantiate table1_specs
