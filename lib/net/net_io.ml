open Merlin_geometry
open Merlin_tech

(* Shortest decimal that parses back to the same float.  The text form
   doubles as the canonical fingerprint pre-image, so printing must be
   lossless: save -> load -> fingerprint has to land on the same key a
   live in-memory net hashes to. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else begin
    let exact p =
      let s = Printf.sprintf "%.*g" p f in
      if Float.equal (float_of_string s) f then Some s else None
    in
    match exact 12 with
    | Some s -> s
    | None ->
      (match exact 15 with
       | Some s -> s
       | None -> Printf.sprintf "%.17g" f)
  end

let to_string (net : Net.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "net %s\n" net.Net.name);
  Buffer.add_string buf
    (Printf.sprintf "source %d %d\n" net.Net.source.Point.x
       net.Net.source.Point.y);
  let d = net.Net.driver in
  Buffer.add_string buf
    (Printf.sprintf "driver %s %s %s %s\n"
       (float_repr d.Delay_model.d0)
       (float_repr d.Delay_model.r_drive)
       (float_repr d.Delay_model.k_slew)
       (float_repr d.Delay_model.s0));
  Array.iter
    (fun s ->
       Buffer.add_string buf
         (Printf.sprintf "sink %d %d %d %s %s\n" s.Sink.id s.Sink.pt.Point.x
            s.Sink.pt.Point.y
            (float_repr s.Sink.cap)
            (float_repr s.Sink.req)))
    net.Net.sinks;
  Buffer.contents buf

(* The cache key has to separate nets that differ only in sink order —
   every flow is order-sensitive (MERLIN is only *semi*
   order-independent), so order is part of the problem, not noise.  The
   canonical text keeps sinks in id order, which IS the sink order
   ([Net.make] pins [sinks.(i).id = i]).  The name line is dropped:
   renaming a net does not change the routing problem, so it must not
   split the cache.  Reloading a saved net reproduces the text
   byte-for-byte because [float_repr] prints losslessly and
   text -> float -> text is stable. *)
let fingerprint (net : Net.t) =
  let text = to_string net in
  let body =
    match String.index_opt text '\n' with
    | Some i -> String.sub text (i + 1) (String.length text - i - 1)
    | None -> text
  in
  Digest.to_hex (Digest.string body)

let fail lineno msg = failwith (Printf.sprintf "Net_io.of_string: line %d: %s" lineno msg)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let name = ref None and source = ref None and driver = ref None in
  let sinks = ref [] in
  let parse lineno line =
    match String.split_on_char ' ' (String.trim line) with
    | [ "" ] -> ()
    | [ "net"; n ] -> name := Some n
    | [ "source"; x; y ] ->
      (try source := Some (Point.make (int_of_string x) (int_of_string y))
       with Failure _ -> fail lineno "bad source coordinates")
    | [ "driver"; d0; r; k; s0 ] ->
      (try
         driver :=
           Some
             (Delay_model.make ~d0:(float_of_string d0)
                ~r_drive:(float_of_string r) ~k_slew:(float_of_string k)
                ~s0:(float_of_string s0))
       with Failure _ -> fail lineno "bad driver parameters")
    | [ "sink"; id; x; y; cap; req ] ->
      (try
         let s =
           Sink.make ~id:(int_of_string id)
             ~pt:(Point.make (int_of_string x) (int_of_string y))
             ~cap:(float_of_string cap) ~req:(float_of_string req)
         in
         sinks := s :: !sinks
       with Failure _ -> fail lineno "bad sink fields")
    | _ -> fail lineno (Printf.sprintf "unrecognised line %S" line)
  in
  List.iteri (fun i line -> parse (i + 1) line) lines;
  match (!name, !source, !driver) with
  | Some name, Some source, Some driver ->
    Net.make ~name ~source ~driver (List.rev !sinks)
  | None, _, _ -> failwith "Net_io.of_string: missing 'net' line"
  | _, None, _ -> failwith "Net_io.of_string: missing 'source' line"
  | _, _, None -> failwith "Net_io.of_string: missing 'driver' line"

(* A netlist file is just nets concatenated: every [to_string] block
   starts with its own "net <name>" line, which doubles as the record
   separator, so the multi-net form needs no extra framing. *)
let to_string_many nets = String.concat "" (List.map to_string nets)

let of_string_many text =
  let is_header line =
    let line = String.trim line in
    String.length line >= 4 && String.equal (String.sub line 0 4) "net "
  in
  let chunk_to_net chunk =
    match chunk with
    | [] -> None
    | lines -> Some (of_string (String.concat "\n" (List.rev lines)))
  in
  let rec go acc chunk = function
    | [] -> (
      match chunk_to_net chunk with
      | None -> List.rev acc
      | Some net -> List.rev (net :: acc))
    | line :: rest ->
      if is_header line then
        let acc =
          match chunk_to_net chunk with None -> acc | Some net -> net :: acc
        in
        go acc [ line ] rest
      else (
        match chunk with
        | [] ->
          if String.equal (String.trim line) "" then go acc [] rest
          else
            failwith
              (Printf.sprintf
                 "Net_io.of_string_many: content before the first 'net' \
                  line: %S"
                 line)
        | _ :: _ -> go acc (line :: chunk) rest)
  in
  go [] [] (String.split_on_char '\n' text)

let save path net =
  let oc = open_out path in
  output_string oc (to_string net);
  close_out oc

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

let save_many path nets =
  let oc = open_out path in
  output_string oc (to_string_many nets);
  close_out oc

let load_many path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string_many text
