(** Minimal JSON tree, parser and printer — the repository's single
    JSON layer (lint/check baselines and reports, the {!Metrics} wire
    format, bench emitters, the serving protocol), with no external
    dependency.  Finite numbers print as the shortest decimal that
    parses back to the same float, so documents survive
    encode→decode→encode byte-identically. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Raised by {!of_string} on malformed input, with a position-carrying
    message. *)
exception Parse_error of string

(** Serialize compactly (no trailing newline). *)
val to_string : t -> string

(** Parse a complete JSON document.  Trailing non-whitespace is an
    error.  Raises {!Parse_error}. *)
val of_string : string -> t

(** [member k j] is the field [k] of object [j], if any. *)
val member : string -> t -> t option

val to_list : t -> t list option

val to_str : t -> string option

val to_bool : t -> bool option

val to_num : t -> float option
