(* Minimal JSON tree, parser and printer — the single JSON layer of
   the repository, shared by the lint/check baselines and reports, the
   metrics wire format (Metrics), the bench emitters and the serving
   protocol (Merlin_serve.Wire).  Depending on yojson for that would
   drag a new package into a repo that otherwise needs none. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* ---------- printing ---------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest decimal that parses back to the same float: wire payloads
   (metrics, cached replies) must survive encode -> decode -> encode
   byte-identically, which "%g"'s 6 significant digits do not. *)
let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if not (Float.is_finite f) then "null"
  else begin
    let exact p =
      let s = Printf.sprintf "%.*g" p f in
      if Float.equal (float_of_string s) f then Some s else None
    in
    match exact 12 with
    | Some s -> s
    | None ->
      (match exact 15 with
       | Some s -> s
       | None -> Printf.sprintf "%.17g" f)
  end

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
         if i > 0 then Buffer.add_char buf ',';
         write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         Buffer.add_char buf '"';
         Buffer.add_string buf (escape k);
         Buffer.add_string buf "\":";
         write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* ---------- parsing ---------- *)

type state = { text : string; mutable pos : int }

let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error "Json.parse: expected %c at %d, found %c" c st.pos c'
  | None -> error "Json.parse: expected %c at %d, found end of input" c st.pos

let expect_lit st lit value =
  let n = String.length lit in
  if st.pos + n <= String.length st.text && String.sub st.text st.pos n = lit
  then (
    st.pos <- st.pos + n;
    value)
  else error "Json.parse: invalid literal at %d" st.pos

(* Encode a Unicode scalar value as UTF-8 bytes.  Baselines only ever
   carry what [escape] produced (BMP at most), so surrogate pairs are
   decoded but unpaired surrogates are kept verbatim. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then (
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
  else if cp < 0x10000 then (
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
  else (
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> error "Json.parse: invalid hex digit %c" c

let parse_hex4 st =
  if st.pos + 4 > String.length st.text then
    error "Json.parse: truncated \\u escape at %d" st.pos
  else begin
    let v =
      (hex_digit st.text.[st.pos] lsl 12)
      lor (hex_digit st.text.[st.pos + 1] lsl 8)
      lor (hex_digit st.text.[st.pos + 2] lsl 4)
      lor hex_digit st.text.[st.pos + 3]
    in
    st.pos <- st.pos + 4;
    v
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error "Json.parse: unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      (match peek st with
       | None -> error "Json.parse: unterminated escape"
       | Some 'n' -> Buffer.add_char buf '\n'; advance st
       | Some 't' -> Buffer.add_char buf '\t'; advance st
       | Some 'r' -> Buffer.add_char buf '\r'; advance st
       | Some 'b' -> Buffer.add_char buf '\b'; advance st
       | Some 'f' -> Buffer.add_char buf '\012'; advance st
       | Some ('"' | '\\' | '/') ->
         Buffer.add_char buf (Option.value (peek st) ~default:'?');
         advance st
       | Some 'u' ->
         advance st;
         let cp = parse_hex4 st in
         let cp =
           if cp >= 0xD800 && cp <= 0xDBFF
              && st.pos + 1 < String.length st.text
              && st.text.[st.pos] = '\\'
              && st.text.[st.pos + 1] = 'u'
           then begin
             st.pos <- st.pos + 2;
             let lo = parse_hex4 st in
             0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
           end
           else cp
         in
         add_utf8 buf cp
       | Some c -> error "Json.parse: invalid escape \\%c" c);
      loop ())
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
      advance st;
      true
    | _ -> false
  in
  while consume () do
    ()
  done;
  let s = String.sub st.text start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> error "Json.parse: invalid number %S at %d" s start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error "Json.parse: unexpected end of input"
  | Some 'n' -> expect_lit st "null" Null
  | Some 't' -> expect_lit st "true" (Bool true)
  | Some 'f' -> expect_lit st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if (match peek st with Some ']' -> true | _ -> false) then (
      advance st;
      List [])
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> error "Json.parse: expected , or ] at %d" st.pos
      in
      List (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if (match peek st with Some '}' -> true | _ -> false) then (
      advance st;
      Obj [])
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((k, v) :: acc)
        | _ -> error "Json.parse: expected , or } at %d" st.pos
      in
      Obj (fields [])
    end
  | Some ('0' .. '9' | '-') -> parse_number st
  | Some c -> error "Json.parse: unexpected character %c at %d" c st.pos

let of_string text =
  let st = { text; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
   | None -> ()
   | Some c -> error "Json.parse: trailing garbage %c at %d" c st.pos);
  v

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_num = function Num f -> Some f | _ -> None
