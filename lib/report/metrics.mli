(** Versioned wire format for flow metrics — the one JSON schema shared
    by the serving protocol, [merlin-cli route --json] and the bench
    BENCH_*.json emitters.

    The document carries a ["v"] major-version field ({!version});
    {!of_json} refuses documents from any other version.  The routing
    tree is optional on the wire: replies are compact unless the client
    asked for the tree. *)

open Merlin_rtree

(** Schema major version written by {!to_json} and required by
    {!of_json}. *)
val version : int

type t = {
  flow : string;       (** flow label, e.g. ["III:MERLIN"] *)
  area : float;        (** total buffer area, 1000 lambda^2 *)
  delay : float;       (** net delay, ps *)
  root_req : float;    (** required time at the driver input, ps *)
  runtime : float;     (** wall-clock seconds *)
  n_buffers : int;
  wirelength : int;    (** grid units *)
  loops : int;         (** MERLIN iterations (1 for flows I and II) *)
  clusters : int;      (** hierarchical-flow cluster count; 0 for flat
                           flows, and then omitted from the document *)
  levels : int;        (** hierarchical-flow decomposition depth; 0 for
                           flat flows, and then omitted from the
                           document *)
  cluster_sizes : int list;  (** hierarchical-flow sinks per first-level
                                 cluster; [] for flat flows, and then
                                 omitted from the document *)
  tree : Rtree.t option;  (** routing tree, omitted from compact replies *)
}

val to_json : t -> Json.t

(** Total decoder: malformed input is an [Error] with a field-naming
    message, never an exception (wire input must not kill a server). *)
val of_json : Json.t -> (t, string) result
