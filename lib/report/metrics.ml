(* Versioned wire format for flow metrics.

   One schema shared by every emitter: the serving protocol
   (Merlin_serve.Wire), `merlin-cli route --json` and the bench
   BENCH_*.json rows all go through [to_json]/[of_json] instead of
   hand-rolled printers.  The [v] field gates schema evolution: a
   decoder refuses documents from a newer major version instead of
   misreading them.

   The routing tree is optional on the wire — replies are compact by
   default and a client opts in — so [t] mirrors
   [Merlin_flows.Flows.metrics] with [tree : Rtree.t option]. *)

open Merlin_geometry
open Merlin_tech
open Merlin_net
open Merlin_rtree

let version = 1

type t = {
  flow : string;
  area : float;
  delay : float;
  root_req : float;
  runtime : float;
  n_buffers : int;
  wirelength : int;
  loops : int;
  clusters : int;
  levels : int;
  cluster_sizes : int list;
  tree : Rtree.t option;
}

(* ---------- encoding ---------- *)

let num f = Json.Num f

let int i = Json.Num (float_of_int i)

let model_to_json (m : Delay_model.t) =
  Json.Obj
    [ ("d0", num m.Delay_model.d0);
      ("r_drive", num m.Delay_model.r_drive);
      ("k_slew", num m.Delay_model.k_slew);
      ("s0", num m.Delay_model.s0) ]

let buffer_to_json (b : Buffer_lib.buffer) =
  Json.Obj
    [ ("name", Json.Str b.Buffer_lib.name);
      ("area", num b.Buffer_lib.area);
      ("input_cap", num b.Buffer_lib.input_cap);
      ("model", model_to_json b.Buffer_lib.model) ]

let sink_to_json (s : Sink.t) =
  Json.Obj
    [ ("id", int s.Sink.id);
      ("x", int s.Sink.pt.Point.x);
      ("y", int s.Sink.pt.Point.y);
      ("cap", num s.Sink.cap);
      ("req", num s.Sink.req) ]

let rec tree_to_json = function
  | Rtree.Leaf s -> Json.Obj [ ("sink", sink_to_json s) ]
  | Rtree.Node n ->
    let buffer =
      match n.Rtree.buffer with
      | None -> []
      | Some b -> [ ("buffer", buffer_to_json b) ]
    in
    Json.Obj
      ([ ("x", int n.Rtree.loc.Point.x); ("y", int n.Rtree.loc.Point.y) ]
      @ buffer
      @ [ ("children", Json.List (List.map tree_to_json n.Rtree.children)) ])

let to_json (m : t) =
  let tree =
    match m.tree with None -> [] | Some t -> [ ("tree", tree_to_json t) ]
  in
  (* [clusters]/[levels]/[cluster_sizes] appear only for the
     hierarchical flow, so flat-flow documents stay byte-identical to
     schema-v1 emitters that predate the fields (old decoders also read
     the new flat documents). *)
  let clusters = if m.clusters > 0 then [ ("clusters", int m.clusters) ] else [] in
  let levels = if m.levels > 0 then [ ("levels", int m.levels) ] else [] in
  let cluster_sizes =
    match m.cluster_sizes with
    | [] -> []
    | sizes -> [ ("cluster_sizes", Json.List (List.map int sizes)) ]
  in
  Json.Obj
    ([ ("v", int version);
       ("flow", Json.Str m.flow);
       ("area", num m.area);
       ("delay", num m.delay);
       ("root_req", num m.root_req);
       ("runtime", num m.runtime);
       ("n_buffers", int m.n_buffers);
       ("wirelength", int m.wirelength);
       ("loops", int m.loops) ]
    @ clusters @ levels @ cluster_sizes @ tree)

(* ---------- decoding ---------- *)

(* Field accessors returning [Result]: decoding wire input must never
   raise — a malformed request becomes a structured error reply. *)

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let fnum name j =
  Result.bind (field name j) (fun v ->
      match Json.to_num v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S: expected a number" name))

let fint name j =
  Result.bind (fnum name j) (fun f ->
      if Float.is_integer f then Ok (int_of_float f)
      else Error (Printf.sprintf "field %S: expected an integer" name))

let fstr name j =
  Result.bind (field name j) (fun v ->
      match Json.to_str v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "field %S: expected a string" name))

let ( let* ) = Result.bind

let model_of_json j =
  let* d0 = fnum "d0" j in
  let* r_drive = fnum "r_drive" j in
  let* k_slew = fnum "k_slew" j in
  let* s0 = fnum "s0" j in
  Ok (Delay_model.make ~d0 ~r_drive ~k_slew ~s0)

let buffer_of_json j =
  let* name = fstr "name" j in
  let* area = fnum "area" j in
  let* input_cap = fnum "input_cap" j in
  let* model = Result.bind (field "model" j) model_of_json in
  Ok { Buffer_lib.name; area; input_cap; model }

let sink_of_json j =
  let* id = fint "id" j in
  let* x = fint "x" j in
  let* y = fint "y" j in
  let* cap = fnum "cap" j in
  let* req = fnum "req" j in
  Ok (Sink.make ~id ~pt:(Point.make x y) ~cap ~req)

let rec tree_of_json j =
  match Json.member "sink" j with
  | Some s -> Result.map (fun s -> Rtree.Leaf s) (sink_of_json s)
  | None ->
    let* x = fint "x" j in
    let* y = fint "y" j in
    let* buffer =
      match Json.member "buffer" j with
      | None -> Ok None
      | Some b -> Result.map Option.some (buffer_of_json b)
    in
    let* children =
      match Option.bind (Json.member "children" j) Json.to_list with
      | None -> Error "tree node: missing children"
      | Some [] -> Error "tree node: empty children"
      | Some cs ->
        List.fold_left
          (fun acc c ->
             let* acc = acc in
             let* c = tree_of_json c in
             Ok (c :: acc))
          (Ok []) cs
        |> Result.map List.rev
    in
    Ok (Rtree.Node { Rtree.loc = Point.make x y; buffer; children })

let of_json j =
  let* v = fint "v" j in
  if v <> version then
    Error (Printf.sprintf "metrics version %d unsupported (expected %d)" v version)
  else
    let* flow = fstr "flow" j in
    let* area = fnum "area" j in
    let* delay = fnum "delay" j in
    let* root_req = fnum "root_req" j in
    let* runtime = fnum "runtime" j in
    let* n_buffers = fint "n_buffers" j in
    let* wirelength = fint "wirelength" j in
    let* loops = fint "loops" j in
    let* clusters =
      match Json.member "clusters" j with
      | None -> Ok 0
      | Some _ -> fint "clusters" j
    in
    let* levels =
      match Json.member "levels" j with
      | None -> Ok 0
      | Some _ -> fint "levels" j
    in
    let* cluster_sizes =
      match Json.member "cluster_sizes" j with
      | None -> Ok []
      | Some v ->
        (match Json.to_list v with
         | None -> Error "field \"cluster_sizes\": expected a list"
         | Some items ->
           List.fold_left
             (fun acc item ->
                let* acc = acc in
                match Json.to_num item with
                | Some f when Float.is_integer f ->
                  Ok (int_of_float f :: acc)
                | Some _ | None ->
                  Error "field \"cluster_sizes\": expected integers")
             (Ok []) items
           |> Result.map List.rev)
    in
    let* tree =
      match Json.member "tree" j with
      | None -> Ok None
      | Some t -> Result.map Option.some (tree_of_json t)
    in
    Ok
      { flow; area; delay; root_req; runtime; n_buffers; wirelength; loops;
        clusters; levels; cluster_sizes; tree }
