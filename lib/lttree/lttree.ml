open Merlin_tech
open Merlin_net
open Merlin_curves

type chain = {
  buffer : Buffer_lib.buffer;
  directs : Sink.t list;
  chain : chain option;
}

type plan = { root_directs : Sink.t list; root_chain : chain option }

let rec chain_sinks c =
  c.directs @ (match c.chain with None -> [] | Some sub -> chain_sinks sub)

let plan_sinks p =
  p.root_directs
  @ (match p.root_chain with None -> [] | Some c -> chain_sinks c)

let rec chain_area c =
  c.buffer.Buffer_lib.area
  +. (match c.chain with None -> 0.0 | Some sub -> chain_area sub)

let plan_area p =
  match p.root_chain with None -> 0.0 | Some c -> chain_area c

let n_levels p =
  let rec depth = function None -> 0 | Some c -> 1 + depth c.chain in
  1 + depth p.root_chain

(* DP over suffixes of the required-time-sorted sink array.  F(i) is the
   curve of chain links driving sinks i..n-1: pick the direct group i..j,
   try every buffer to drive (group + next link), recurse on j+1. *)
let curve ~buffers ~max_fanout sinks =
  (match sinks with
   | [] -> invalid_arg "Lttree.curve: no sinks"
   | _ :: _ -> ());
  if max_fanout < 2 then invalid_arg "Lttree.curve: max_fanout < 2";
  let arr =
    Array.of_list
      (List.sort (fun a b -> Float.compare a.Sink.req b.Sink.req) sinks)
  in
  let n = Array.length arr in
  (* Prefix-style sums over the suffix groups. *)
  let group i j = Array.to_list (Array.sub arr i (j - i + 1)) in
  let group_load i j =
    let total = ref 0.0 in
    for t = i to j do total := !total +. arr.(t).Sink.cap done;
    !total
  in
  let group_req i = arr.(i).Sink.req in
  (* memo.(i) = curve of chain links for suffix i..n-1 (each link carries
     its own buffer).  Filled bottom-up (largest i first) so every cell's
     dependencies are ready when it fills, which lets one scratch builder
     serve all cells — a recursive formulation would interleave a
     callee's builder fill with the caller's. *)
  let memo = Array.make (n + 1) Curve.empty in
  let links i = memo.(i) in
  let bld = Curve.Builder.create () in
  for i = n - 1 downto 0 do
    Curve.Builder.clear bld;
    let try_group j =
      (* directs i..j; remaining j+1.. goes to the next link. *)
      let directs = group i j in
      let d_load = group_load i j and d_req = group_req i in
      let close_with_buffer ~req ~load ~area ~link_chain =
        Array.iter
          (fun b ->
             let breq = req -. Buffer_lib.delay b ~load in
             Curve.Builder.push bld ~req:breq ~load:b.Buffer_lib.input_cap
               ~area:(area +. b.Buffer_lib.area)
               { buffer = b; directs; chain = link_chain })
          buffers
      in
      if j = n - 1 then
        close_with_buffer ~req:d_req ~load:d_load ~area:0.0 ~link_chain:None
      else
        Curve.iter
          (fun (next : chain Solution.t) ->
             close_with_buffer
               ~req:(min d_req next.Solution.req)
               ~load:(d_load +. next.Solution.load)
               ~area:next.Solution.area
               ~link_chain:(Some next.Solution.data))
          (links (j + 1))
    in
    (* The link drives (j - i + 1) sinks plus the next link if any. *)
    for j = i to min (n - 1) (i + max_fanout - 1) do
      let width = j - i + 1 + (if j = n - 1 then 0 else 1) in
      if width <= max_fanout then try_group j
    done;
    memo.(i) <- Curve.Builder.build ~name:"Lttree.links" bld
  done;
  (* Root level: the driver (not a buffer) drives directs 0..j plus
     optionally the chain starting at j+1. *)
  let out = Curve.Builder.create () in
  let root_group j =
    let directs = group 0 j in
    let d_load = group_load 0 j and d_req = group_req 0 in
    if j = n - 1 then
      Curve.Builder.push out ~req:d_req ~load:d_load ~area:0.0
        { root_directs = directs; root_chain = None }
    else
      Curve.iter
        (fun (next : chain Solution.t) ->
           Curve.Builder.push out
             ~req:(min d_req next.Solution.req)
             ~load:(d_load +. next.Solution.load)
             ~area:next.Solution.area
             { root_directs = directs; root_chain = Some next.Solution.data })
        (links (j + 1))
  in
  for j = 0 to n - 1 do
    let width = j + 1 + (if j = n - 1 then 0 else 1) in
    if width <= max_fanout then root_group j
  done;
  Curve.Builder.build ~name:"Lttree.root" out

let best ~buffers ~max_fanout ~driver sinks =
  let c = curve ~buffers ~max_fanout sinks in
  let with_driver =
    Curve.map_solutions
      (fun s ->
         { s with
           Solution.req =
             s.Solution.req -. Delay_model.delay driver ~load:s.Solution.load })
      c
  in
  match Curve.best_req with_driver with
  | Some s -> s
  | None -> assert false (* curve is never empty for nonempty sinks *)
