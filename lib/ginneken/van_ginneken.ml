open Merlin_geometry
open Merlin_tech
open Merlin_net
open Merlin_rtree
open Merlin_curves
open Merlin_core

let buffer_subset buffers ~trials =
  let n = Array.length buffers in
  if n <= trials then buffers
  else
    Array.init trials (fun i -> buffers.(i * (n - 1) / (max 1 (trials - 1))))

let curve ~tech ~buffers ?trials ?(max_curve = 16) ?refine_seg tree =
  let subset =
    match trials with
    | None -> buffers
    | Some trials -> buffer_subset buffers ~trials
  in
  let tree =
    match refine_seg with
    | None -> tree
    | Some max_seg -> Rtree.refine ~max_seg tree
  in
  let cap c = Curve.cap ~max_size:max_curve c in
  (* Existing solutions first, buffered candidates second, one batch
     prune — the same tie-resolution as adding each candidate into the
     existing curve, without the per-candidate frontier rebuilds. *)
  let close c =
    let bld = Curve.Builder.create ~hint:(Curve.size c * (1 + Array.length subset)) () in
    Curve.Builder.add_curve bld c;
    Curve.iter
      (fun sol ->
         Array.iter
           (fun b -> Curve.Builder.add bld (Build.add_root_buffer b sol))
           subset)
      c;
    Curve.Builder.build ~name:"Van_ginneken.close" bld
  in
  let rec walk = function
    | Rtree.Leaf s ->
      cap (close (Curve.add Curve.empty (Build.of_sink s)))
    | Rtree.Node n ->
      let child_curve child =
        Curve.map_solutions
          (fun sol -> Build.extend_wire tech ~to_:n.Rtree.loc sol)
          (walk child)
      in
      let join2 acc child =
        let c = child_curve child in
        match acc with
        | None -> Some c
        | Some acc ->
          let bld =
            Curve.Builder.create ~hint:(Curve.size acc * Curve.size c) ()
          in
          Curve.iter
            (fun a ->
               Curve.iter
                 (fun b -> Curve.Builder.add bld (Build.join n.Rtree.loc a b))
                 c)
            acc;
          Some (cap (Curve.Builder.build ~name:"Van_ginneken.join" bld))
      in
      let joined =
        match List.fold_left join2 None n.Rtree.children with
        | Some c -> c
        | None -> assert false (* nodes have nonempty children *)
      in
      (* Preexisting buffers are kept as fixed parts of the tree. *)
      let with_own_buffer =
        match n.Rtree.buffer with
        | None -> joined
        | Some b ->
          Curve.map_solutions (fun sol -> Build.add_root_buffer b sol) joined
      in
      cap (close with_own_buffer)
  in
  walk tree

let insert ~tech ~buffers ?trials ?max_curve ?refine_seg (net : Net.t) tree =
  if not (Point.equal (Rtree.attach_point tree) net.Net.source) then
    invalid_arg "Van_ginneken.insert: tree not rooted at the net source";
  (* Under curve caps the refined DP is not strictly monotone versus the
     node-only one, so evaluate both and keep the better tree. *)
  let best_of c =
    let with_driver =
      Curve.map_solutions
        (fun s ->
           { s with
             Solution.req =
               s.Solution.req
               -. Delay_model.delay net.Net.driver ~load:s.Solution.load })
        c
    in
    match Curve.best_req with_driver with
    | Some sol -> sol
    | None -> assert false (* the unbuffered variant always survives *)
  in
  let node_only = best_of (curve ~tech ~buffers ?trials ?max_curve tree) in
  let chosen =
    match refine_seg with
    | None -> node_only
    | Some _ ->
      let refined =
        best_of (curve ~tech ~buffers ?trials ?max_curve ?refine_seg tree)
      in
      if refined.Solution.req >= node_only.Solution.req then refined
      else node_only
  in
  chosen.Solution.data.Build.tree
