(** Determinism & purity summaries for the C7-C9 rules: a
    seeded-source table and two interprocedural fixpoints over
    {!Concur}'s resolved call graph, classifying every inventoried
    function as pure, deterministic-effectful, or nondeterministic
    (with the call chain down to the source). *)

(** (path suffix, display name) of the nondeterministic sources:
    unseeded [Random.*] ([Random.State] passes), wall/CPU clocks, [Gc]
    statistics, [Domain.self], environment reads, temp-file creation,
    the monotonic [Clock]. *)
val sources : (string list * string) list

(** [Nondet trace]: the call chain to the source, source last, e.g.
    [["Flows.run"; "Flows.timed"; "Clock.timed"]]. *)
type klass = Pure | Det_effectful | Nondet of string list

type t

(** Direct-evidence scan per function, then propagation over the call
    graph until stable.  Functions from [exempt_units] (raw unit
    names; the pool implementation) are never classified
    nondeterministic — their clock reads implement the engine's
    telemetry and cannot reach a task result. *)
val build : ?exempt_units:string list -> Concur.project -> t

val classify : t -> Concur.fn -> klass

(** First (source-order) nondeterministic reference in a subtree: a
    source-table hit or a reference to a nondet-classified project
    function, with its location and trace.  [unit_name] and the alias
    environment drive call resolution, so this works inside arbitrary
    closures. *)
val nondet_use :
  t ->
  unit_name:string ->
  Pathx.alias_env ->
  Typedtree.expression ->
  (Location.t * string list) option

(** ["Flows.run > Flows.timed > Clock.timed"]. *)
val render_trace : string list -> string
