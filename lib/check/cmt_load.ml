(* Loading .cmt/.cmti artifacts into per-compilation-unit records.

   dune writes one .cmt per module (and a .cmti when there is an .mli)
   under lib/<d>/.<lib>.objs/byte/ and <dir>/.<exe>.eobjs/byte/; the
   loader walks any directory tree, picks both up and merges them by
   unit name.  Files whose magic number does not match this compiler's
   cmt magic are skipped silently (stale artifacts from another
   switch); files that then still fail to load produce a warning
   finding instead of aborting the whole run. *)

module Finding = Merlin_lint.Finding

type t = {
  name : string;
  source : string option;
  intf_source : string option;
  impl : Typedtree.structure option;
  intf : Typedtree.signature option;
}

(* Entry-point compilation units: roots of the reference graph, never
   analysis targets for dead-export.  Classified from the source path
   recorded in the cmt. *)
let entry_dirs = [ "bin"; "bench"; "test"; "examples" ]

let split_path path = String.split_on_char '/' path

let is_entry_source path =
  List.exists
    (fun comp -> List.exists (String.equal comp) entry_dirs)
    (split_path path)

(* The pool implementation itself: the one place allowed to mutate
   shared state, under its own lock discipline. *)
let is_pool_internal_source path =
  let rec under = function
    | "lib" :: "exec" :: _ -> true
    | _ :: rest -> under rest
    | [] -> false
  in
  under (split_path path)

let is_entry u =
  match u.source with
  | Some s -> is_entry_source s
  | None -> ( match u.intf_source with Some s -> is_entry_source s | None -> false)

let is_pool_internal u =
  match u.source with Some s -> is_pool_internal_source s | None -> false

(* A generated library alias module (merlin_exec.ml-gen): pure module
   aliases, no user-written interface. *)
let is_alias_unit u =
  match u.source with
  | Some s -> Filename.check_suffix s ".ml-gen"
  | None -> false

(* A cmt artifact starts with the cmt magic — or with the cmi magic
   when the unit's cmi is embedded, which is the on-disk shape of every
   .cmti and of the .cmt of any module without an .mli (read_cmt skips
   the cmi part itself). *)
let has_cmt_magic path =
  let magics = [ Config.cmt_magic_number; Config.cmi_magic_number ] in
  let n =
    List.fold_left (fun acc m -> max acc (String.length m)) 0 magics
  in
  match open_in_bin path with
  | ic ->
    let head =
      match really_input_string ic n with
      | s -> Some s
      | exception End_of_file -> None
    in
    close_in ic;
    (match head with
     | Some s ->
       List.exists
         (fun m -> String.equal (String.sub s 0 (String.length m)) m)
         magics
     | None -> false)
  | exception Sys_error _ -> false

type raw = {
  raw_name : string;
  raw_source : string option;
  raw_annots : Cmt_format.binary_annots;
}

let load_error_finding path msg =
  Finding.make ~file:path ~line:1 ~col:0 ~rule:"cmt-error"
    ~severity:Finding.Warning
    (Printf.sprintf "failed to load cmt artifact: %s" msg)

let read_raw path =
  match Cmt_format.read_cmt path with
  | infos ->
    Ok
      { raw_name = infos.Cmt_format.cmt_modname;
        raw_source = infos.Cmt_format.cmt_sourcefile;
        raw_annots = infos.Cmt_format.cmt_annots }
  | exception Cmi_format.Error _ ->
    Error (load_error_finding path "bad cmi payload")
  | exception Cmt_format.Error _ ->
    Error (load_error_finding path "not a typedtree")
  | exception Sys_error msg -> Error (load_error_finding path msg)
  | exception Failure msg -> Error (load_error_finding path msg)

let is_cmt_file path =
  Filename.check_suffix path ".cmt" || Filename.check_suffix path ".cmti"

(* Fixture trees hold deliberately-bad analyzer inputs; never pick
   their artifacts up from a project-wide walk. *)
let skip_dir name = Filename.check_suffix name "_fixtures"

let collect_cmt_files roots =
  let rec walk acc path =
    if Sys.is_directory path then
      Array.to_list (Sys.readdir path)
      |> List.sort String.compare
      |> List.fold_left
           (fun acc name ->
              let child = Filename.concat path name in
              if Sys.is_directory child then
                if skip_dir name then acc else walk acc child
              else if is_cmt_file child then child :: acc
              else acc)
           acc
    else if is_cmt_file path then path :: acc
    else acc
  in
  List.sort String.compare (List.fold_left walk [] roots)

(* Executables in different directories share module names (every
   (name main) executable compiles a Dune__exe__Main), so unit identity
   for merging must include the source directory — keying on the module
   name alone would let one main.ml's typedtree shadow another's and
   silently drop its references from the dead-export graph. *)
let unit_key raw =
  match raw.raw_source with
  | Some s -> raw.raw_name ^ "|" ^ Filename.dirname s
  | None -> raw.raw_name

let load_files paths =
  let units : (string, t) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let errors = ref [] in
  List.iter
    (fun path ->
       if has_cmt_magic path then (
         match read_raw path with
         | Error f -> errors := f :: !errors
         | Ok raw ->
           let key = unit_key raw in
           let existing =
             match Hashtbl.find_opt units key with
             | Some u -> u
             | None ->
               order := key :: !order;
               { name = raw.raw_name;
                 source = None;
                 intf_source = None;
                 impl = None;
                 intf = None }
           in
           let merged =
             match raw.raw_annots with
             | Cmt_format.Implementation str ->
               { existing with impl = Some str; source = raw.raw_source }
             | Cmt_format.Interface sg ->
               { existing with intf = Some sg; intf_source = raw.raw_source }
             | _ -> existing
           in
           Hashtbl.replace units key merged))
    paths;
  let loaded =
    List.rev !order |> List.filter_map (fun name -> Hashtbl.find_opt units name)
  in
  (loaded, List.rev !errors)

let load_roots roots = load_files (collect_cmt_files roots)
