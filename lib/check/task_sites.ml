(* Task-submission sites: applications of the pool API (or the flow
   orchestrator) with a literal closure argument.  C1 and C2 both
   analyze exactly these closures — code that will run on another
   domain and whose exceptions surface only at await.

   Matching is suffix-based on normalized paths (see Pathx), so
   [Merlin_exec.Pool.submit], a local [module Pool = Merlin_exec.Pool]
   alias and a fixture's stub [Pool] module all match.  A closure that
   reaches the pool through a variable or a record field is not seen —
   a documented false negative. *)

(* (suffix, display name) of the functions whose closure arguments
   escape to worker domains. *)
let sinks =
  [ ([ "Pool"; "submit" ], "Pool.submit");
    ([ "Pool"; "map" ], "Pool.map");
    ([ "Pool"; "run_timeout" ], "Pool.run_timeout");
    ([ "Flow_runner"; "run" ], "Flow_runner.run");
    (* The serving layer's cache-or-compute entry point forwards its
       closure to Pool.submit/run_timeout; the closure built at the
       call site is the one that escapes to a worker domain. *)
    ([ "Scheduler"; "schedule" ], "Scheduler.schedule");
    (* Batch fan-out: both the per-item jobs and the [on_item] /
       [cancelled] callbacks run on the batch worker team, concurrent
       with the caller. *)
    ([ "Scheduler"; "run_batch" ], "Scheduler.run_batch");
    (* The hierarchical flow farms its [route] callback over the pool
       ([Pool.map ~chunk:1] per cluster); the closure handed to
       [Hier.route] is the one that escapes to worker domains. *)
    ([ "Hier"; "route" ], "Hier.route") ]

type site = {
  sink : string;  (** display name, e.g. ["Pool.map"] *)
  closure : Typedtree.expression;  (** the literal [fun ...] argument *)
}

(* Resolved-if-possible, syntactic otherwise: a stubbed local [Pool]
   module has no global path, but its dotted name still matches. *)
let comps_of env p =
  match Pathx.resolve env p with
  | Some comps -> Some comps
  | None -> Option.map Pathx.normalize (Pathx.flatten p)

let sink_of env fn =
  match fn.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) ->
    Option.bind (comps_of env p) (fun comps ->
        List.find_map
          (fun (suffix, name) ->
             if Pathx.has_suffix ~suffix comps then Some name else None)
          sinks)
  | _ -> None

let is_closure e =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function _ -> true
  | _ -> false

let collect env str =
  let found = ref [] in
  let iter =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
           (match e.Typedtree.exp_desc with
            | Typedtree.Texp_apply (fn, args) -> (
              match sink_of env fn with
              | None -> ()
              | Some sink ->
                List.iter
                  (fun (_, arg) ->
                     match arg with
                     | Some a when is_closure a ->
                       found := { sink; closure = a } :: !found
                     | _ -> ())
                  args)
            | _ -> ());
           Tast_iterator.default_iterator.expr sub e) }
  in
  iter.Tast_iterator.structure iter str;
  List.rev !found
