(* C4 — lock-order.

   The project lock graph has an edge held -> acquired for every
   acquisition site (Mutex.lock, Mutex.protect, a protect-like helper,
   or a call whose summary acquires locks) reached while another lock
   region is active.  Two findings come out of it:

   - a cycle: some interleaving of the participating threads
     deadlocks.  A self-edge is the degenerate case — stdlib mutexes
     are not reentrant, so re-acquiring a held lock deadlocks alone.

   - a spec violation: the committed lock-order spec (lock-order.spec,
     outermost first) ranks both endpoints and the edge acquires a
     lower-ranked (outer) lock while holding a higher-ranked (inner)
     one.  Cycles need two call paths to disagree before they are
     visible; the spec catches the first one.

   Edges whose endpoints the spec does not rank are only checked for
   cycles, so adding a lock never fails the build until it is either
   ranked or inverted. *)

module Finding = Merlin_lint.Finding

let rule = "lock-order"

(* ---------- spec ---------- *)

(* One lock name per line, outermost (acquired first) at the top;
   '#' comments and blank lines ignored. *)
let spec_of_string text =
  let lines = String.split_on_char '\n' text in
  let entries =
    List.filter_map
      (fun line ->
         let line = String.trim line in
         if String.length line = 0 || line.[0] = '#' then None
         else Some line)
      lines
  in
  let rec dup = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else dup rest
  in
  match dup entries with
  | Some name -> Error (Printf.sprintf "lock %S listed twice" name)
  | None -> Ok entries

let load_spec path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    text
  with
  | text -> spec_of_string text
  | exception Sys_error msg -> Error msg

(* ---------- cycle detection ---------- *)

(* [reaches succs a b]: b reachable from a following edges. *)
let reaches succs a b =
  let seen = Hashtbl.create 16 in
  let rec go n =
    if Hashtbl.mem seen n then false
    else begin
      Hashtbl.replace seen n ();
      match Hashtbl.find_opt succs n with
      | None -> false
      | Some ns -> List.exists (fun m -> String.equal m b || go m) ns
    end
  in
  String.equal a b || go a

(* Shortest held -> ... -> held description through [acquired], for the
   message. *)
let cycle_text succs held acquired =
  if String.equal held acquired then held ^ " -> " ^ held
  else begin
    (* BFS from acquired back to held *)
    let q = Queue.create () in
    let pred = Hashtbl.create 16 in
    Queue.push acquired q;
    Hashtbl.replace pred acquired None;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let n = Queue.pop q in
      if String.equal n held then found := true
      else
        List.iter
          (fun m ->
             if not (Hashtbl.mem pred m) then begin
               Hashtbl.replace pred m (Some n);
               Queue.push m q
             end)
          (Option.value (Hashtbl.find_opt succs n) ~default:[])
    done;
    if not !found then held ^ " -> " ^ acquired ^ " -> ... -> " ^ held
    else begin
      let rec path n acc =
        match Hashtbl.find_opt pred n with
        | Some (Some p) -> path p (n :: acc)
        | _ -> n :: acc
      in
      String.concat " -> " (held :: List.rev (path held []))
    end
  end

(* ---------- rule ---------- *)

let finding ~waivers (loc : Location.t) message =
  let file = loc.Location.loc_start.Lexing.pos_fname in
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  let col =
    loc.Location.loc_start.Lexing.pos_cnum
    - loc.Location.loc_start.Lexing.pos_bol
  in
  if Waivers.waived waivers ~file ~line ~token:"lock-order" then None
  else
    Some (Finding.make ~file ~line ~col ~rule ~severity:Finding.Error message)

let check ~waivers ~spec project =
  let all = Concur.edges project in
  let succs : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Concur.edge) ->
       let prev = Option.value (Hashtbl.find_opt succs e.e_held) ~default:[] in
       if not (List.mem e.e_lock prev) then
         Hashtbl.replace succs e.e_held (e.e_lock :: prev))
    all;
  let rank =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i name -> Hashtbl.replace tbl name i) spec;
    tbl
  in
  List.filter_map
    (fun (e : Concur.edge) ->
       if reaches succs e.e_lock e.e_held then
         finding ~waivers e.e_loc
           (Printf.sprintf
              "acquiring %s (via %s) while holding %s closes a lock cycle \
               [%s]; some interleaving deadlocks — acquire locks in one \
               global order (waive: lock-order)"
              e.e_lock e.e_via e.e_held
              (cycle_text succs e.e_held e.e_lock))
       else
         match
           (Hashtbl.find_opt rank e.e_held, Hashtbl.find_opt rank e.e_lock)
         with
         | Some rh, Some rl when rl < rh ->
           finding ~waivers e.e_loc
             (Printf.sprintf
                "acquiring %s (via %s) while holding %s inverts the \
                 committed lock order (%s is rank %d, %s is rank %d in \
                 lock-order.spec) (waive: lock-order)"
                e.e_lock e.e_via e.e_held e.e_lock rl e.e_held rh)
         | _ -> None)
    all
