(** Orchestration for the typed tier: artifact loading, C1-C6, waiver
    staleness, coverage guard, rendering. *)

val tool_name : string

(** (rule, severity, one-line doc) for every rule the tool can emit. *)
val rule_docs : (string * Merlin_lint.Finding.severity * string) list

(** Run all typed rules over pre-loaded units (plus the loader's own
    findings); [src_roots] are source trees guarded for cmt coverage
    ([missing-cmt]); [lock_spec] is the committed lock order, outermost
    first, for C4's inversion check (cycles are flagged regardless).
    Sorted by file and position. *)
val analyze :
  ?src_roots:string list ->
  ?lock_spec:string list ->
  Cmt_load.t list * Merlin_lint.Finding.t list ->
  Merlin_lint.Finding.t list

(** Load every artifact under [roots], then {!analyze}. *)
val run :
  roots:string list ->
  src_roots:string list ->
  lock_spec:string list ->
  Merlin_lint.Finding.t list

type format = Text | Json | Sarif | Github

val render : format -> Merlin_lint.Finding.t list -> string
