(** Orchestration for the typed tier: artifact loading, C1-C9, waiver
    staleness, coverage guard, rendering. *)

val tool_name : string

(** (rule, severity, one-line doc) for every rule the tool can emit,
    analysis rules first. *)
val rule_docs : (string * Merlin_lint.Finding.severity * string) list

(** The short code ("C1".."C9") of an analysis rule; [None] for the
    driver-level diagnostics. *)
val rule_code : string -> string option

(** Resolve one --rules selector — a code ([C7], case-insensitive) or
    a rule name ([nondet-in-task]) — to the rule name. *)
val resolve_selector : string -> (string, string) result

(** Run the typed rules over pre-loaded units (plus the loader's own
    findings); [src_roots] are source trees guarded for cmt coverage
    ([missing-cmt]); [lock_spec] is the committed lock order, outermost
    first, for C4's inversion check (cycles are flagged regardless).
    [rules] restricts the run to those analysis rule names (resolve
    selectors first); the driver diagnostics always run, and the
    stale-waiver audit narrows to the active rules' tokens.  Sorted by
    file and position. *)
val analyze :
  ?rules:string list ->
  ?src_roots:string list ->
  ?lock_spec:string list ->
  Cmt_load.t list * Merlin_lint.Finding.t list ->
  Merlin_lint.Finding.t list

(** Load every artifact under [roots], then {!analyze}. *)
val run :
  ?rules:string list ->
  roots:string list ->
  src_roots:string list ->
  lock_spec:string list ->
  unit ->
  Merlin_lint.Finding.t list

type format = Text | Json | Sarif | Github

val render : format -> Merlin_lint.Finding.t list -> string
