(** C7: a nondeterministic source (direct, or through the call graph)
    reachable from a task-submission closure; waive deliberate
    telemetry with a same-line [check: nondet-ok]. *)

val rule : string

val check :
  waivers:Waivers.t ->
  purity:Purity.t ->
  Cmt_load.t list ->
  Merlin_lint.Finding.t list
