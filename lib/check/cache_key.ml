(* C8 — nondeterministic value in a cache/request key.

   The serving layer dedups work by [request_key = MD5(spec JSON ⊕ NUL
   ⊕ Net_io.fingerprint net)] and caches results in an [Lru] keyed by
   it; ROADMAP item 2 shares that key across daemon replicas and a
   persistent store.  The key is only sound if it is a deterministic
   function of the request: a wall-clock read, a [Random] draw or any
   other Purity source flowing into it poisons every replica that
   replays the computation.  Unlike C7 there is no telemetry
   exception — an impure key is always a bug — so the severity is
   error; [check: nondet-ok] still waives a deliberate site (e.g. a
   test probing cache-miss behavior).

   Mechanics: per compilation unit, (1) collect the let-bound idents
   whose right-hand side contains a nondeterministic use (taint,
   source-order, so chained lets propagate); (2) at every application
   of a key sink — [Wire.request_key] (all args), [Lru.find]/[Lru.add]
   (the key argument), [Net_io.fingerprint], [Scheduler.schedule]'s
   [~key] — flag a key argument whose subtree contains a
   nondeterministic use or a tainted ident.

   Known false negatives: taint through record/tuple fields, through
   function results ([let k = make_key () in] where [make_key] is
   local-but-unresolvable), and keys built in another unit and passed
   in. *)

module Finding = Merlin_lint.Finding

let rule = "impure-cache-key"

let token = "nondet-ok"

type key_sel = All | Pos of int | Label of string

(* (path suffix, key argument selector, display name) *)
let key_sinks =
  [ ([ "Wire"; "request_key" ], All, "Wire.request_key");
    ([ "Lru"; "find" ], Pos 1, "Lru.find");
    ([ "Lru"; "add" ], Pos 1, "Lru.add");
    ([ "Net_io"; "fingerprint" ], Pos 0, "Net_io.fingerprint");
    ([ "Scheduler"; "schedule" ], Label "key", "Scheduler.schedule") ]

let pos_arg args i =
  let rec go n = function
    | [] -> None
    | (Asttypes.Nolabel, Some e) :: rest ->
      if n = i then Some (e : Typedtree.expression) else go (n + 1) rest
    | _ :: rest -> go n rest
  in
  go 0 args

let key_args sel args =
  match sel with
  | All -> List.filter_map snd args
  | Pos i -> ( match pos_arg args i with Some a -> [ a ] | None -> [])
  | Label l ->
    List.filter_map
      (fun (lbl, a) ->
         match (lbl, a) with
         | Asttypes.Labelled l', Some a when String.equal l l' ->
           Some (a : Typedtree.expression)
         | _ -> None)
      args

let iter_exprs f root =
  let iter =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
           f e;
           Tast_iterator.default_iterator.expr sub e) }
  in
  iter.Tast_iterator.structure iter root

(* Let-bound idents whose right-hand side is nondeterministic, unit
   wide (binder idents are unique within a unit, so one flat set is
   collision-free).  A pass in source order lets [let a = Random.int n
   in let b = a + 1] taint [b] through [a]. *)
let tainted purity ~unit_name env str =
  let taint : (Ident.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let is_tainted root =
    let hit = ref false in
    let iter =
      { Tast_iterator.default_iterator with
        expr =
          (fun sub e ->
             (match e.Typedtree.exp_desc with
              | Typedtree.Texp_ident (Path.Pident id, _, _)
                when Hashtbl.mem taint id ->
                hit := true
              | _ -> ());
             Tast_iterator.default_iterator.expr sub e) }
    in
    iter.Tast_iterator.expr iter root;
    !hit
    || Option.is_some (Purity.nondet_use purity ~unit_name env root)
  in
  let vb_iter =
    { Tast_iterator.default_iterator with
      value_binding =
        (fun sub vb ->
           (match vb.Typedtree.vb_pat.Typedtree.pat_desc with
            | Typedtree.Tpat_var (id, _) ->
              if is_tainted vb.Typedtree.vb_expr then
                Hashtbl.replace taint id ()
            | _ -> ());
           Tast_iterator.default_iterator.value_binding sub vb) }
  in
  vb_iter.Tast_iterator.structure vb_iter str;
  taint

let check_unit purity waivers (u : Cmt_load.t) str =
  let env = Pathx.alias_env_of_structure str in
  let unit_name = u.Cmt_load.name in
  let taint = tainted purity ~unit_name env str in
  let findings = ref [] in
  let report loc sink via =
    let file = loc.Location.loc_start.Lexing.pos_fname in
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    let col =
      loc.Location.loc_start.Lexing.pos_cnum
      - loc.Location.loc_start.Lexing.pos_bol
    in
    if not (Waivers.waived waivers ~file ~line ~token) then
      findings :=
        Finding.make ~file ~line ~col ~rule ~severity:Finding.Error
          (Printf.sprintf
             "%s key derives from nondeterministic %s; cache keys must be \
              a deterministic function of the request or replays and \
              replicas disagree on what is cached"
             sink via)
        :: !findings
  in
  (* First tainted-ident occurrence in a key argument, for reporting
     at the use site. *)
  let tainted_use root =
    let best = ref None in
    let iter =
      { Tast_iterator.default_iterator with
        expr =
          (fun sub e ->
             (match e.Typedtree.exp_desc with
              | Typedtree.Texp_ident (Path.Pident id, _, _)
                when Hashtbl.mem taint id -> (
                let loc = e.Typedtree.exp_loc in
                let c = loc.Location.loc_start.Lexing.pos_cnum in
                match !best with
                | Some (c', _, _) when c' <= c -> ()
                | _ -> best := Some (c, loc, Ident.name id))
              | _ -> ());
             Tast_iterator.default_iterator.expr sub e) }
    in
    iter.Tast_iterator.expr iter root;
    Option.map (fun (_, loc, name) -> (loc, name)) !best
  in
  iter_exprs
    (fun e ->
       match e.Typedtree.exp_desc with
       | Typedtree.Texp_apply (head, args) -> (
         match head.Typedtree.exp_desc with
         | Typedtree.Texp_ident (p, _, _) -> (
           match
             List.find_opt
               (fun (suffix, _, _) -> Concur.suffixed env p suffix)
               key_sinks
           with
           | None -> ()
           | Some (_, sel, sink) ->
             List.iter
               (fun arg ->
                  match Purity.nondet_use purity ~unit_name env arg with
                  | Some (loc, trace) ->
                    report loc sink (Purity.render_trace trace)
                  | None -> (
                    match tainted_use arg with
                    | Some (loc, name) ->
                      report loc sink
                        (Printf.sprintf
                           "value (through let-bound %s)" name)
                    | None -> ()))
               (key_args sel args))
         | _ -> ())
       | _ -> ())
    str;
  List.rev !findings

let check ~waivers ~purity (units : Cmt_load.t list) =
  List.concat_map
    (fun (u : Cmt_load.t) ->
       match u.Cmt_load.impl with
       | None -> []
       | Some str -> check_unit purity waivers u str)
    units
