(* C3 — dead exports.

   A value exported by a library .mli but never referenced from any
   other compilation unit is API surface nobody pays for: it cannot be
   renamed, its behavior is frozen, and warn-error keeps its
   implementation alive.  The rule builds the whole-project reference
   set from every typedtree (paths in cmts are fully resolved, so
   [open]ed references still count) and reports unreferenced
   [Tsig_value] exports.

   Entry-point units (bin/bench/test/examples) are reference-graph
   roots, never targets; dune's generated alias units are skipped;
   names starting with [_] are deliberate keep-alives; a same-line
   [check: dead-export] waiver in the .mli suppresses one export. *)

module Finding = Merlin_lint.Finding

let rule = "dead-export"

(* The reference set: (compilation unit, exported member) pairs seen
   anywhere outside the unit itself.  A normalized reference
   [Merlin_exec; Pool; submit] registers both ([Merlin_exec], [Pool])
   and ([Merlin_exec__Pool], [submit]) so exports of alias-reexported
   units are found through either spelling. *)
type uses = (string * string, unit) Hashtbl.t

let record_use (uses : uses) ~unit_names ~from comps =
  let arr = Array.of_list comps in
  let n = Array.length arr in
  let buf = Buffer.create 32 in
  for k = 0 to n - 2 do
    if k > 0 then Buffer.add_string buf "__";
    Buffer.add_string buf arr.(k);
    let uname = Buffer.contents buf in
    if Hashtbl.mem unit_names uname && not (String.equal uname from) then
      Hashtbl.replace uses (uname, arr.(k + 1)) ()
  done

let collect_uses (units : Cmt_load.t list) : uses =
  let unit_names = Hashtbl.create 64 in
  List.iter
    (fun (u : Cmt_load.t) -> Hashtbl.replace unit_names u.Cmt_load.name ())
    units;
  let uses : uses = Hashtbl.create 256 in
  List.iter
    (fun (u : Cmt_load.t) ->
       match u.Cmt_load.impl with
       | None -> ()
       | Some str ->
         (* Alias-aware: [module Pool = Merlin_exec.Pool] makes later
            [Pool.submit] references count against Merlin_exec__Pool. *)
         let env = Pathx.alias_env_of_structure str in
         let record p =
           match Pathx.resolve env p with
           | None -> ()
           | Some comps ->
             record_use uses ~unit_names ~from:u.Cmt_load.name comps
         in
         let iter =
           { Tast_iterator.default_iterator with
             expr =
               (fun sub e ->
                  (match e.Typedtree.exp_desc with
                   | Typedtree.Texp_ident (p, _, _) -> record p
                   | _ -> ());
                  Tast_iterator.default_iterator.expr sub e);
             module_expr =
               (fun sub me ->
                  (match me.Typedtree.mod_desc with
                   | Typedtree.Tmod_ident (p, _) -> record p
                   | _ -> ());
                  Tast_iterator.default_iterator.module_expr sub me) }
         in
         iter.Tast_iterator.structure iter str)
    units;
  uses

let pretty_unit name = Pathx.to_string (Pathx.split_dune name)

let check ~waivers (units : Cmt_load.t list) =
  let uses = collect_uses units in
  List.concat_map
    (fun (u : Cmt_load.t) ->
       if Cmt_load.is_entry u || Cmt_load.is_alias_unit u then []
       else
         match u.Cmt_load.intf with
         | None -> []
         | Some sg ->
           List.filter_map
             (fun item ->
                match item.Typedtree.sig_desc with
                | Typedtree.Tsig_value vd ->
                  let name = Ident.name vd.Typedtree.val_id in
                  let loc = vd.Typedtree.val_loc in
                  let file = loc.Location.loc_start.Lexing.pos_fname in
                  let line = loc.Location.loc_start.Lexing.pos_lnum in
                  if
                    String.length name > 0
                    && name.[0] <> '_'
                    && (not (Hashtbl.mem uses (u.Cmt_load.name, name)))
                    && not
                         (Waivers.waived waivers ~file ~line
                            ~token:"dead-export")
                  then
                    Some
                      (Finding.make ~file ~line
                         ~col:
                           (loc.Location.loc_start.Lexing.pos_cnum
                           - loc.Location.loc_start.Lexing.pos_bol)
                         ~rule ~severity:Finding.Warning
                         (Printf.sprintf
                            "%s.%s is exported by its .mli but never \
                             referenced from another compilation unit"
                            (pretty_unit u.Cmt_load.name)
                            name))
                  else None
                | _ -> None)
             sg.Typedtree.sig_items)
    units
