(** Task-submission sites: applications of [Pool.submit], [Pool.map],
    [Pool.run_timeout] or [Flow_runner.run] with a literal closure
    argument.  These closures run on worker domains; C1 and C2 analyze
    exactly them. *)

(** The (path suffix, display name) table of functions whose closure
    arguments escape to worker domains.  Exposed so the test suite can
    assert that every site the byte-identity suites exercise
    ([Pool.map], the hier pmap, speculative waves) is audited by the
    task-closure rules (C1/C2/C7). *)
val sinks : (string list * string) list

type site = {
  sink : string;  (** display name, e.g. ["Pool.map"] *)
  closure : Typedtree.expression;  (** the literal [fun ...] argument *)
}

(** All sites in a structure, in source order.  Matching is suffix-based
    on normalized paths, with the unit's module-alias environment
    applied first. *)
val collect : Pathx.alias_env -> Typedtree.structure -> site list
