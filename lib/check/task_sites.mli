(** Task-submission sites: applications of [Pool.submit], [Pool.map],
    [Pool.run_timeout] or [Flow_runner.run] with a literal closure
    argument.  These closures run on worker domains; C1 and C2 analyze
    exactly them. *)

type site = {
  sink : string;  (** display name, e.g. ["Pool.map"] *)
  closure : Typedtree.expression;  (** the literal [fun ...] argument *)
}

(** All sites in a structure, in source order.  Matching is suffix-based
    on normalized paths, with the unit's module-alias environment
    applied first. *)
val collect : Pathx.alias_env -> Typedtree.structure -> site list
