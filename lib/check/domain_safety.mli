(** C1 — domain-unsafe capture (rule [domain-unsafe-capture], Error).

    Flags mutations, inside a task closure handed to the pool, of
    mutable state created outside that closure: refs, arrays, bytes,
    Hashtbl, Queue, Stack, Buffer and mutable record fields.  Exempt:
    mutations inside a [Mutex.protect] region, the pool implementation
    itself (lib/exec), [Atomic] (safe by construction), and lines
    waived with [check: domain-safe]. *)

val rule : string

val check : waivers:Waivers.t -> Cmt_load.t list -> Merlin_lint.Finding.t list
