(** C6 — fd-leak: every fd minted by a Unix producer (or a
    returns-fd-summarized project function) must reach [Unix.close]
    with its can-raise uses protected, or escape into a structure,
    a non-Unix call or the return value.  The [fd-escape] waiver token
    suppresses per line. *)

val rule : string

val check :
  waivers:Waivers.t -> Concur.project -> Merlin_lint.Finding.t list
