(** SARIF 2.1.0 rendering.  The output round-trips through
    [Merlin_lint.Baseline], so a CI SARIF artifact can be promoted to a
    baseline file verbatim. *)

(** The SARIF 2.1.0 log, serialized, newline-terminated. *)
val render :
  tool_name:string ->
  tool_version:string ->
  Merlin_lint.Finding.t list ->
  string
