(* Determinism & purity summaries for the C7-C9 rules.

   MERLIN's order-independence contracts ([Pool.map] byte-identical to
   [List.map], hier routing bit-identical at any -j, [request_key] a
   function of spec+net only) all reduce to one property: the code
   under them is a *deterministic* function of its inputs.  This
   module proves the property statically, per function, over the same
   resolved call graph Concur builds for C4-C6.

   Classification.  Every inventoried function is one of

   - *nondeterministic*: its body (any closure level) references a
     seeded-source-table entry — [Random.*] (unseeded; [Random.State]
     deliberately passes, a carried state is the caller's seed),
     wall-clock and CPU-clock reads, [Gc] statistics, [Domain.self],
     environment reads, temp-file creation, the monotonic [Clock] —
     or calls a function already classified nondeterministic;
   - *deterministic-effectful*: not nondeterministic, but it mutates
     state or performs I/O (effect table below, [Texp_setfield],
     [Texp_while]-free mutation is still mutation) directly or through
     a callee.  Same inputs, same outputs — but not replayable for
     free;
   - *pure*: neither.

   Both classifications are interprocedural fixpoints in the style of
   [Concur.acquires_fixpoint]: direct evidence first, then propagation
   over [fn_calls] until stable.  Nondeterminism carries a *trace* —
   the call chain from the classified function down to the source
   ([Flows.run > Flows.timed > Clock.timed]) — so a C7 finding three
   calls away from the [Random.int] still names it.

   Call-site expansion through higher-order helpers comes for free:
   [fn_calls] is built from every closure level, so a helper like
   [Pool.locked m (fun () -> Random.int 10)] charges the *caller*
   (whose closure level contains the [Random.int]), and a call to a
   nondet-summarized helper charges the call site.

   Known false negatives (DESIGN.md §7.4): calls through
   function-typed variables or functors (unresolvable, summarized
   optimistically as pure), [Hashtbl.hash] on mutable values (its
   result is deterministic for immutable arguments, which is how this
   repo uses it — distinguishing the two needs mutability tracking the
   typedtree does not give), and nondeterminism reached through
   first-class modules. *)

(* (path suffix, display name): references whose result differs run to
   run with identical inputs.  Suffix-matched like every other table,
   so a fixture's stub [Clock] and the real [Merlin_exec.Clock] both
   match — and [Random.State.int] does *not* match [Random.int] (its
   last two components are [State.int]). *)
let sources =
  [ ([ "Random"; "bits" ], "Random.bits");
    ([ "Random"; "int" ], "Random.int");
    ([ "Random"; "full_int" ], "Random.full_int");
    ([ "Random"; "int32" ], "Random.int32");
    ([ "Random"; "int64" ], "Random.int64");
    ([ "Random"; "nativeint" ], "Random.nativeint");
    ([ "Random"; "float" ], "Random.float");
    ([ "Random"; "bool" ], "Random.bool");
    ([ "Random"; "self_init" ], "Random.self_init");
    ([ "Unix"; "gettimeofday" ], "Unix.gettimeofday");
    ([ "Unix"; "time" ], "Unix.time");
    ([ "Sys"; "time" ], "Sys.time");
    ([ "Gc"; "stat" ], "Gc.stat");
    ([ "Gc"; "quick_stat" ], "Gc.quick_stat");
    ([ "Gc"; "allocated_bytes" ], "Gc.allocated_bytes");
    ([ "Gc"; "counters" ], "Gc.counters");
    ([ "Gc"; "minor_words" ], "Gc.minor_words");
    ([ "Domain"; "self" ], "Domain.self");
    ([ "Sys"; "getenv" ], "Sys.getenv");
    ([ "Sys"; "getenv_opt" ], "Sys.getenv_opt");
    ([ "Filename"; "temp_file" ], "Filename.temp_file");
    ([ "Filename"; "temp_dir" ], "Filename.temp_dir");
    ([ "Filename"; "open_temp_file" ], "Filename.open_temp_file");
    ([ "Clock"; "monotonic_s" ], "Clock.monotonic_s");
    ([ "Clock"; "elapsed_s" ], "Clock.elapsed_s");
    ([ "Clock"; "timed" ], "Clock.timed") ]

(* Path suffixes that make a function *effectful* without making it
   nondeterministic: mutation primitives and ordinary I/O.  Kept
   coarse — the classification feeds reporting granularity, not a
   rule's fire/no-fire decision. *)
let effect_suffixes =
  [ [ "Stdlib"; ":=" ]; [ "Stdlib"; "incr" ]; [ "Stdlib"; "decr" ];
    [ "Array"; "set" ]; [ "Array"; "unsafe_set" ]; [ "Array"; "fill" ];
    [ "Array"; "blit" ]; [ "Bytes"; "set" ]; [ "Bytes"; "fill" ];
    [ "Hashtbl"; "add" ]; [ "Hashtbl"; "replace" ]; [ "Hashtbl"; "remove" ];
    [ "Hashtbl"; "reset" ]; [ "Hashtbl"; "clear" ];
    [ "Queue"; "add" ]; [ "Queue"; "push" ]; [ "Queue"; "pop" ];
    [ "Queue"; "take" ]; [ "Queue"; "clear" ]; [ "Queue"; "transfer" ];
    [ "Stack"; "push" ]; [ "Stack"; "pop" ]; [ "Stack"; "clear" ];
    [ "Buffer"; "add_string" ]; [ "Buffer"; "add_char" ];
    [ "Buffer"; "add_bytes" ]; [ "Buffer"; "add_buffer" ];
    [ "Buffer"; "clear" ]; [ "Buffer"; "reset" ];
    [ "Mutex"; "lock" ]; [ "Mutex"; "unlock" ]; [ "Mutex"; "protect" ];
    [ "Condition"; "wait" ]; [ "Condition"; "signal" ];
    [ "Condition"; "broadcast" ];
    [ "Printf"; "printf" ]; [ "Printf"; "eprintf" ];
    [ "Printf"; "fprintf" ]; [ "Format"; "printf" ];
    [ "Format"; "eprintf" ]; [ "Format"; "fprintf" ];
    [ "Stdlib"; "print_string" ]; [ "Stdlib"; "print_endline" ];
    [ "Stdlib"; "prerr_endline" ]; [ "Stdlib"; "output_string" ];
    [ "Unix"; "read" ]; [ "Unix"; "write" ]; [ "Unix"; "close" ] ]

type klass = Pure | Det_effectful | Nondet of string list

type t = {
  project : Concur.project;
  nondet : (string, string list) Hashtbl.t;  (** fn_key -> trace *)
  effectful : (string, unit) Hashtbl.t;  (** fn_key present = effectful *)
}

let display (fn : Concur.fn) = fn.Concur.fn_unit ^ "." ^ fn.Concur.fn_name

(* Prepending a call-chain hop, keeping traces readable: the hop, at
   most two intermediates, always the ultimate source last. *)
let extend hop trace =
  let t = hop :: trace in
  if List.length t <= 4 then t
  else
    match (t, List.rev t) with
    | hd :: _, src :: _ -> [ hd; "..."; src ]
    | _ -> t

let source_of env p =
  Option.bind (Concur.comps_of env p) (fun comps ->
      List.find_map
        (fun (suffix, name) ->
           if Pathx.has_suffix ~suffix comps then Some name else None)
        sources)

(* All source-table references in a subtree, innermost levels
   included, as [(start cnum, loc, display)].  Also the building block
   of {!nondet_use}. *)
let iter_idents f root =
  let iter =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
           (match e.Typedtree.exp_desc with
            | Typedtree.Texp_ident (p, _, _) -> f p e.Typedtree.exp_loc
            | _ -> ());
           Tast_iterator.default_iterator.expr sub e) }
  in
  iter.Tast_iterator.expr iter root

let start_cnum (loc : Location.t) = loc.Location.loc_start.Lexing.pos_cnum

let direct_source env root =
  let best = ref None in
  iter_idents
    (fun p loc ->
       match source_of env p with
       | None -> ()
       | Some name -> (
         let c = start_cnum loc in
         match !best with
         | Some (c', _, _) when c' <= c -> ()
         | _ -> best := Some (c, loc, name)))
    root;
  !best

let direct_effect env root =
  let found = ref false in
  let iter =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
           (match e.Typedtree.exp_desc with
            | Typedtree.Texp_setfield _ -> found := true
            | Typedtree.Texp_ident (p, _, _) ->
              if
                List.exists
                  (fun suffix -> Concur.suffixed env p suffix)
                  effect_suffixes
              then found := true
            | _ -> ());
           Tast_iterator.default_iterator.expr sub e) }
  in
  iter.Tast_iterator.expr iter root;
  !found

let build ?(exempt_units = []) project =
  let fns = Concur.fns project in
  let nondet = Hashtbl.create 256 in
  let effectful = Hashtbl.create 256 in
  (* The pool implementation's clock reads are the *implementation* of
     the engine's telemetry, not nondeterminism that can reach a task
     result — the same reason C1/C2 exempt lib/exec.  Functions from
     exempt units are never classified nondeterministic, so a chain
     like [Pool.submit > Clock.monotonic_s] cannot taint every nested
     submit; their effectful classification stands
     (deterministic-effectful is exactly the pool's contract). *)
  let exempt (fn : Concur.fn) =
    List.exists (String.equal fn.Concur.fn_unit_name) exempt_units
  in
  (* Direct evidence once per function, then propagate over the call
     graph until stable (same shape as Concur.acquires_fixpoint). *)
  List.iter
    (fun (fn : Concur.fn) ->
       (if not (exempt fn) then
          match direct_source fn.Concur.fn_env fn.Concur.fn_expr with
          | Some (_, _, name) ->
            Hashtbl.replace nondet fn.Concur.fn_key [ name ]
          | None -> ());
       if direct_effect fn.Concur.fn_env fn.Concur.fn_expr then
         Hashtbl.replace effectful fn.Concur.fn_key ())
    fns;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (fn : Concur.fn) ->
         List.iter
           (fun ((callee : Concur.fn), _) ->
              (if
                 (not (Hashtbl.mem nondet fn.Concur.fn_key))
                 && not (exempt fn)
               then
                 match Hashtbl.find_opt nondet callee.Concur.fn_key with
                 | Some trace ->
                   Hashtbl.replace nondet fn.Concur.fn_key
                     (extend (display callee) trace);
                   changed := true
                 | None -> ());
              if
                Hashtbl.mem effectful callee.Concur.fn_key
                && not (Hashtbl.mem effectful fn.Concur.fn_key)
              then begin
                Hashtbl.replace effectful fn.Concur.fn_key ();
                changed := true
              end)
           fn.Concur.fn_calls)
      fns
  done;
  { project; nondet; effectful }

let classify t (fn : Concur.fn) =
  match Hashtbl.find_opt t.nondet fn.Concur.fn_key with
  | Some trace -> Nondet trace
  | None ->
    if Hashtbl.mem t.effectful fn.Concur.fn_key then Det_effectful else Pure

(* The first (source-order) nondeterministic reference in a subtree:
   a direct source-table hit, or a reference to a project function the
   fixpoint classified nondeterministic.  References count even
   unapplied — a nondet function passed as a value runs later with the
   same nondeterminism. *)
let nondet_use t ~unit_name env root =
  let best = ref None in
  let consider c loc trace =
    match !best with
    | Some (c', _, _) when c' <= c -> ()
    | _ -> best := Some (c, loc, trace)
  in
  iter_idents
    (fun p loc ->
       match source_of env p with
       | Some name -> consider (start_cnum loc) loc [ name ]
       | None -> (
         match Concur.resolve_ref t.project ~unit_name env p with
         | None -> ()
         | Some fn -> (
           match Hashtbl.find_opt t.nondet fn.Concur.fn_key with
           | Some trace ->
             consider (start_cnum loc) loc (extend (display fn) trace)
           | None -> ())))
    root;
  Option.map (fun (_, loc, trace) -> (loc, trace)) !best

let render_trace trace = String.concat " > " trace
