(** C3 — dead exports (rule [dead-export], Warning).

    Flags values exported by a library .mli that no other compilation
    unit references anywhere in the project.  Entry-point units
    (bin/bench/test/examples) are roots, not targets; dune alias units
    and [_]-prefixed names are skipped; a same-line
    [check: dead-export] waiver in the .mli suppresses one export. *)

val rule : string

val check : waivers:Waivers.t -> Cmt_load.t list -> Merlin_lint.Finding.t list
