(* Typed-tier waivers: a same-line comment carrying [check: <token>]
   suppresses one rule on that line.  Like the lint tier, waivers are
   audited — a waiver that suppressed nothing is itself reported, so
   waivers cannot rot when the code under them is fixed or moves.

   The comment grammar and the token list live in
   Merlin_lint.Waiver_mark (one definition for both tiers); the linter
   owns the complementary well-formedness check (unknown tokens). *)

module Finding = Merlin_lint.Finding

let tokens = Merlin_lint.Waiver_mark.check_tokens

type t = {
  files : (string, (int * string) list) Hashtbl.t;
  used : (string * int * string, unit) Hashtbl.t;
}

let create () = { files = Hashtbl.create 32; used = Hashtbl.create 32 }

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let register_file t path =
  if not (Hashtbl.mem t.files path) then
    let marks =
      if Sys.file_exists path then
        match read_file path with
        | text -> Merlin_lint.Waiver_mark.check_marks text
        | exception Sys_error _ -> []
      else []
    in
    Hashtbl.replace t.files path marks

let waived t ~file ~line ~token =
  register_file t file;
  let marks = Option.value (Hashtbl.find_opt t.files file) ~default:[] in
  if
    List.exists
      (fun (l, tok) -> l = line && String.equal tok token)
      marks
  then (
    Hashtbl.replace t.used (file, line, token) ();
    true)
  else false

(* Under a --rules filter only the active rules' tokens are auditable:
   a waiver for a deselected rule suppressed nothing *this run*, which
   says nothing about the full scan.  The fold iterates in bucket
   order; the sort below makes the result source-ordered — the
   in-check proof that rule C9's required shape composes. *)
let stale ?(tokens = tokens) t =
  List.sort Finding.compare_order
    (Hashtbl.fold
       (fun file marks acc ->
          List.fold_left
            (fun acc (line, token) ->
               if
                 List.exists (String.equal token) tokens
                 && not (Hashtbl.mem t.used (file, line, token))
               then
                 Finding.make ~file ~line ~col:0 ~rule:"stale-waiver"
                   ~severity:Finding.Warning
                   (Printf.sprintf
                      "stale waiver: no %s finding on this line to suppress"
                      token)
                 :: acc
               else acc)
            acc marks)
       t.files [])
