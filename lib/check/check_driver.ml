(* Orchestration for the typed tier: load cmt artifacts, run C1-C9,
   audit typed-tier waivers, flag library sources with no artifact
   (coverage guard), sort, render.

   The coverage guard matters because a cmt-based analyzer silently
   passes whatever was never compiled: a library source with no loaded
   artifact yields a [missing-cmt] warning, so the scan either sees a
   unit's typedtree or says that it did not.

   Rule selection.  [analyze ~rules] restricts the run to a subset of
   the analysis rules (C1-C9 by code or by name); the driver-level
   diagnostics (missing-cmt, cmt-error, stale-baseline) always run —
   they are statements about the scan, not about the code.  The
   stale-waiver audit narrows itself to the active rules' tokens: a
   waiver for a deselected rule suppressed nothing *this run*, which
   proves nothing. *)

module Finding = Merlin_lint.Finding

let tool_name = "merlin_check"

let tool_version = "0.1.0"

(* (code, rule, waiver token, severity, one-line doc) for the analysis
   rules; driver-level diagnostics carry no code or token. *)
let analysis_rules =
  [ ( "C1",
      Domain_safety.rule,
      "domain-safe",
      Finding.Error,
      "task closure mutates shared mutable state without Mutex.protect \
       (waive: domain-safe)" );
    ( "C2",
      Exn_flow.rule,
      "exn-flow",
      Finding.Warning,
      "unhandled raise inside a task closure surfaces only at await \
       (waive: exn-flow)" );
    ( "C3",
      Dead_export.rule,
      "dead-export",
      Finding.Warning,
      ".mli export never referenced from another compilation unit \
       (waive: dead-export)" );
    ( "C4",
      Lock_order.rule,
      "lock-order",
      Finding.Error,
      "lock acquisition closes a cycle in the project lock graph, or \
       inverts the committed --lock-order spec (waive: lock-order)" );
    ( "C5",
      Blocking.rule,
      "blocking-ok",
      Finding.Warning,
      "known-blocking call inside a held-lock region, or Condition.wait \
       with a second lock still held (waive: blocking-ok)" );
    ( "C6",
      Fd_leak.rule,
      "fd-escape",
      Finding.Error,
      "Unix descriptor neither reaches Unix.close on every path nor \
       escapes its binding scope (waive: fd-escape)" );
    ( "C7",
      Nondet_task.rule,
      "nondet-ok",
      Finding.Warning,
      "nondeterministic source reachable from a task closure; task \
       results must replay order-independently (waive: nondet-ok)" );
    ( "C8",
      Cache_key.rule,
      "nondet-ok",
      Finding.Error,
      "nondeterministic value flows into a cache/request key \
       (waive: nondet-ok)" );
    ( "C9",
      Order_fold.rule,
      "nondet-ok",
      Finding.Warning,
      "Hashtbl iteration order escapes without an intervening sort \
       (waive: nondet-ok)" ) ]

let driver_rules =
  [ ( "stale-baseline",
      Finding.Warning,
      "a baseline entry no longer matched by any finding — prune with \
       --prune-baseline" );
    ( "stale-waiver",
      Finding.Warning,
      "a check: waiver that suppressed nothing this run" );
    ("cmt-error", Finding.Warning, "a cmt artifact failed to load");
    ( "missing-cmt",
      Finding.Warning,
      "a library source has no cmt artifact in the scan — build first" ) ]

(* (rule, severity, doc) across both groups, for --list-rules. *)
let rule_docs =
  List.map (fun (_, rule, _, sev, doc) -> (rule, sev, doc)) analysis_rules
  @ driver_rules

let rule_code rule =
  List.find_map
    (fun (code, r, _, _, _) ->
       if String.equal r rule then Some code else None)
    analysis_rules

(* A --rules selector: a code ("C7", case-insensitive) or a rule name
   ("nondet-in-task").  Resolves to the rule name. *)
let resolve_selector s =
  let up = String.uppercase_ascii s in
  match
    List.find_opt
      (fun (code, rule, _, _, _) ->
         String.equal code up || String.equal rule s)
      analysis_rules
  with
  | Some (_, rule, _, _, _) -> Ok rule
  | None ->
    Error
      (Printf.sprintf
         "unknown rule %S (codes C1-C%d or rule names; --list-rules shows \
          the set)"
         s
         (List.length analysis_rules))

let strip_dot_slash path =
  if String.length path > 2 && String.equal (String.sub path 0 2) "./" then
    String.sub path 2 (String.length path - 2)
  else path

(* Library sources the artifact scan never covered. *)
let missing_cmts ~src_roots (units : Cmt_load.t list) =
  let covered = Hashtbl.create 64 in
  List.iter
    (fun (u : Cmt_load.t) ->
       match u.Cmt_load.source with
       | Some s -> Hashtbl.replace covered (strip_dot_slash s) ()
       | None -> ())
    units;
  let roots = List.filter Sys.file_exists src_roots in
  Merlin_lint.Driver.collect_files roots
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.filter_map (fun src ->
      if Hashtbl.mem covered (strip_dot_slash src) then None
      else
        Some
          (Finding.make ~file:src ~line:1 ~col:0 ~rule:"missing-cmt"
             ~severity:Finding.Warning
             "no cmt artifact for this source in the scan roots; run dune \
              build so the typed rules can see it"))

let analyze ?rules ?(src_roots = []) ?(lock_spec = [])
    (units, load_findings) =
  let active rule =
    match rules with
    | None -> true
    | Some rs -> List.exists (String.equal rule) rs
  in
  let waivers = Waivers.create () in
  List.iter
    (fun (u : Cmt_load.t) ->
       if not (Cmt_load.is_alias_unit u) then (
         Option.iter (Waivers.register_file waivers) u.Cmt_load.source;
         Option.iter (Waivers.register_file waivers) u.Cmt_load.intf_source))
    units;
  (* The call-graph project feeds C4-C6 and, through Purity, C7-C8;
     build each layer only when an active rule needs it. *)
  let project = lazy (Concur.build units) in
  let purity =
    lazy
      (let exempt_units =
         List.filter_map
           (fun (u : Cmt_load.t) ->
              if Cmt_load.is_pool_internal u then Some u.Cmt_load.name
              else None)
           units
       in
       Purity.build ~exempt_units (Lazy.force project))
  in
  let gated rule f = if active rule then f () else [] in
  let c1 = gated Domain_safety.rule (fun () -> Domain_safety.check ~waivers units) in
  let c2 = gated Exn_flow.rule (fun () -> Exn_flow.check ~waivers units) in
  let c3 = gated Dead_export.rule (fun () -> Dead_export.check ~waivers units) in
  let c4 =
    gated Lock_order.rule (fun () ->
        Lock_order.check ~waivers ~spec:lock_spec (Lazy.force project))
  in
  let c5 =
    gated Blocking.rule (fun () -> Blocking.check ~waivers (Lazy.force project))
  in
  let c6 =
    gated Fd_leak.rule (fun () -> Fd_leak.check ~waivers (Lazy.force project))
  in
  let c7 =
    gated Nondet_task.rule (fun () ->
        Nondet_task.check ~waivers ~purity:(Lazy.force purity) units)
  in
  let c8 =
    gated Cache_key.rule (fun () ->
        Cache_key.check ~waivers ~purity:(Lazy.force purity) units)
  in
  let c9 = gated Order_fold.rule (fun () -> Order_fold.check ~waivers units) in
  let missing = missing_cmts ~src_roots units in
  let tokens =
    List.filter_map
      (fun (_, rule, tok, _, _) -> if active rule then Some tok else None)
      analysis_rules
    |> List.sort_uniq String.compare
  in
  let stale = Waivers.stale ~tokens waivers in
  List.sort Finding.compare_order
    (load_findings @ c1 @ c2 @ c3 @ c4 @ c5 @ c6 @ c7 @ c8 @ c9 @ missing
     @ stale)

let run ?rules ~roots ~src_roots ~lock_spec () =
  analyze ?rules ~src_roots ~lock_spec (Cmt_load.load_roots roots)

type format = Text | Json | Sarif | Github

let render format findings =
  match format with
  | Text -> Merlin_lint.Driver.render_text findings
  | Json -> Merlin_lint.Driver.render_json findings
  | Sarif -> Sarif.render ~tool_name ~tool_version findings
  | Github -> Merlin_lint.Driver.render_github findings
