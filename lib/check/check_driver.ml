(* Orchestration for the typed tier: load cmt artifacts, run C1-C6,
   audit typed-tier waivers, flag library sources with no artifact
   (coverage guard), sort, render.

   The coverage guard matters because a cmt-based analyzer silently
   passes whatever was never compiled: a library source with no loaded
   artifact yields a [missing-cmt] warning, so the scan either sees a
   unit's typedtree or says that it did not. *)

module Finding = Merlin_lint.Finding

let tool_name = "merlin_check"

let tool_version = "0.1.0"

(* (rule, severity, one-line doc) for --rules; the analysis rules are
   defined in their modules, the driver-level diagnostics here. *)
let rule_docs =
  [ ( Domain_safety.rule,
      Finding.Error,
      "task closure mutates shared mutable state without Mutex.protect \
       (waive: domain-safe)" );
    ( Exn_flow.rule,
      Finding.Warning,
      "unhandled raise inside a task closure surfaces only at await \
       (waive: exn-flow)" );
    ( Dead_export.rule,
      Finding.Warning,
      ".mli export never referenced from another compilation unit \
       (waive: dead-export)" );
    ( Lock_order.rule,
      Finding.Error,
      "lock acquisition closes a cycle in the project lock graph, or \
       inverts the committed --lock-order spec (waive: lock-order)" );
    ( Blocking.rule,
      Finding.Warning,
      "known-blocking call inside a held-lock region, or Condition.wait \
       with a second lock still held (waive: blocking-ok)" );
    ( Fd_leak.rule,
      Finding.Error,
      "Unix descriptor neither reaches Unix.close on every path nor \
       escapes its binding scope (waive: fd-escape)" );
    ( "stale-baseline",
      Finding.Warning,
      "a baseline entry no longer matched by any finding — prune with \
       --prune-baseline" );
    ( "stale-waiver",
      Finding.Warning,
      "a check: waiver that suppressed nothing this run" );
    ("cmt-error", Finding.Warning, "a cmt artifact failed to load");
    ( "missing-cmt",
      Finding.Warning,
      "a library source has no cmt artifact in the scan — build first" ) ]

let strip_dot_slash path =
  if String.length path > 2 && String.equal (String.sub path 0 2) "./" then
    String.sub path 2 (String.length path - 2)
  else path

(* Library sources the artifact scan never covered. *)
let missing_cmts ~src_roots (units : Cmt_load.t list) =
  let covered = Hashtbl.create 64 in
  List.iter
    (fun (u : Cmt_load.t) ->
       match u.Cmt_load.source with
       | Some s -> Hashtbl.replace covered (strip_dot_slash s) ()
       | None -> ())
    units;
  let roots = List.filter Sys.file_exists src_roots in
  Merlin_lint.Driver.collect_files roots
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.filter_map (fun src ->
      if Hashtbl.mem covered (strip_dot_slash src) then None
      else
        Some
          (Finding.make ~file:src ~line:1 ~col:0 ~rule:"missing-cmt"
             ~severity:Finding.Warning
             "no cmt artifact for this source in the scan roots; run dune \
              build so the typed rules can see it"))

let analyze ?(src_roots = []) ?(lock_spec = []) (units, load_findings) =
  let waivers = Waivers.create () in
  List.iter
    (fun (u : Cmt_load.t) ->
       if not (Cmt_load.is_alias_unit u) then (
         Option.iter (Waivers.register_file waivers) u.Cmt_load.source;
         Option.iter (Waivers.register_file waivers) u.Cmt_load.intf_source))
    units;
  let c1 = Domain_safety.check ~waivers units in
  let c2 = Exn_flow.check ~waivers units in
  let c3 = Dead_export.check ~waivers units in
  let project = Concur.build units in
  let c4 = Lock_order.check ~waivers ~spec:lock_spec project in
  let c5 = Blocking.check ~waivers project in
  let c6 = Fd_leak.check ~waivers project in
  let missing = missing_cmts ~src_roots units in
  let stale = Waivers.stale waivers in
  List.sort Finding.compare_order
    (load_findings @ c1 @ c2 @ c3 @ c4 @ c5 @ c6 @ missing @ stale)

let run ~roots ~src_roots ~lock_spec =
  analyze ~src_roots ~lock_spec (Cmt_load.load_roots roots)

type format = Text | Json | Sarif | Github

let render format findings =
  match format with
  | Text -> Merlin_lint.Driver.render_text findings
  | Json -> Merlin_lint.Driver.render_json findings
  | Sarif -> Sarif.render ~tool_name ~tool_version findings
  | Github -> Merlin_lint.Driver.render_github findings
