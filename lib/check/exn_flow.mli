(** C2 — exception flow out of task closures (rule [task-exn-escape],
    Warning).

    Flags raising primitives ([raise], [failwith], ...), partial
    accessors ([Option.get], [List.hd], [Hashtbl.find], ...) and
    [assert] inside a pool task closure when no enclosing [try] or
    [match ... with exception] in that closure covers them: the
    exception surfaces only at await.  Lines waived with
    [check: exn-flow] are exempt.  Intraprocedural only. *)

val rule : string

val check : waivers:Waivers.t -> Cmt_load.t list -> Merlin_lint.Finding.t list
