(* C9 — Hashtbl iteration order escaping unsorted.

   [Hashtbl.iter]/[fold]/[to_seq*] visit buckets in an order that
   depends on insertion history and (under randomized hashing) the
   process seed.  A result built from such a traversal that escapes —
   into routed output, a serialized frame, a cache key, a report row —
   makes the output a function of memory layout, not of the input.
   The fix is always the same: sort the traversal's product
   ([List.sort] with a dedicated comparator) or iterate a sorted key
   list instead.

   The rule flags every Hashtbl-traversal application except

   - one nested inside an application whose subtree also contains a
     sort ([List.sort foo (Hashtbl.fold ...)], and pipelines
     [Hashtbl.fold ... |> List.sort foo], which typecheck as one
     [|>] application spanning both); or
   - one let-bound to an ident that is later used inside such a
     sorting application ([let rows = Hashtbl.fold ... in ...
     List.sort cmp rows]).

   Order-insensitive folds (a sum, a max) are flagged too — the
   analysis cannot see commutativity — and carry a same-line
   [check: nondet-ok] waiver when the author can.

   Known false negatives: a sort that drops keys the traversal
   depended on, sorts hidden behind helper functions, and traversal
   results escaping through mutation rather than binding. *)

module Finding = Merlin_lint.Finding

let rule = "order-sensitive-fold"

let token = "nondet-ok"

(* (path suffix, display name): traversals in bucket order. *)
let traversals =
  [ ([ "Hashtbl"; "iter" ], "Hashtbl.iter");
    ([ "Hashtbl"; "fold" ], "Hashtbl.fold");
    ([ "Hashtbl"; "to_seq" ], "Hashtbl.to_seq");
    ([ "Hashtbl"; "to_seq_keys" ], "Hashtbl.to_seq_keys");
    ([ "Hashtbl"; "to_seq_values" ], "Hashtbl.to_seq_values") ]

let sorters =
  [ [ "List"; "sort" ]; [ "List"; "sort_uniq" ]; [ "List"; "stable_sort" ];
    [ "List"; "fast_sort" ]; [ "Array"; "sort" ]; [ "Array"; "stable_sort" ];
    [ "Array"; "fast_sort" ] ]

let start_cnum (loc : Location.t) = loc.Location.loc_start.Lexing.pos_cnum

let end_cnum (loc : Location.t) = loc.Location.loc_end.Lexing.pos_cnum

let loc_file (loc : Location.t) = loc.Location.loc_start.Lexing.pos_fname

type span = { file : string; s_start : int; s_end : int }

let within spans (loc : Location.t) =
  let file = loc_file loc and c = start_cnum loc in
  List.exists
    (fun s ->
       String.equal s.file file && c >= s.s_start && c <= s.s_end)
    spans

let iter_exprs f str =
  let iter =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
           f e;
           Tast_iterator.default_iterator.expr sub e) }
  in
  iter.Tast_iterator.structure iter str

let subtree_has pred root =
  let found = ref false in
  let iter =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
           (match e.Typedtree.exp_desc with
            | Typedtree.Texp_ident (p, _, _) -> if pred p then found := true
            | _ -> ());
           Tast_iterator.default_iterator.expr sub e) }
  in
  iter.Tast_iterator.expr iter root;
  !found

let check_unit waivers (str : Typedtree.structure) =
  let env = Pathx.alias_env_of_structure str in
  let is_sorter p =
    List.exists (fun suffix -> Concur.suffixed env p suffix) sorters
  in
  (* Spans of applications that sort something in their subtree. *)
  let sorted_spans = ref [] in
  iter_exprs
    (fun e ->
       match e.Typedtree.exp_desc with
       | Typedtree.Texp_apply _ when subtree_has is_sorter e ->
         let loc = e.Typedtree.exp_loc in
         sorted_spans :=
           { file = loc_file loc;
             s_start = start_cnum loc;
             s_end = end_cnum loc }
           :: !sorted_spans
       | _ -> ())
    str;
  let sorted_spans = !sorted_spans in
  (* Traversal sites not already inside a sorting application. *)
  let sites = ref [] in
  iter_exprs
    (fun e ->
       match e.Typedtree.exp_desc with
       | Typedtree.Texp_apply (head, _) -> (
         match head.Typedtree.exp_desc with
         | Typedtree.Texp_ident (p, _, _) -> (
           match
             List.find_map
               (fun (suffix, name) ->
                  if Concur.suffixed env p suffix then Some name else None)
               traversals
           with
           | Some name when not (within sorted_spans e.Typedtree.exp_loc) ->
             sites := (e.Typedtree.exp_loc, name) :: !sites
           | _ -> ())
         | _ -> ())
       | _ -> ())
    str;
  let sites = List.rev !sites in
  (* A site let-bound to an ident later used inside a sorting
     application is sorted downstream; collect those binder idents and
     their sites, then look at every use. *)
  let bound_sites = ref [] in
  let vb_iter =
    { Tast_iterator.default_iterator with
      value_binding =
        (fun sub vb ->
           (match vb.Typedtree.vb_pat.Typedtree.pat_desc with
            | Typedtree.Tpat_var (id, _) ->
              let span = vb.Typedtree.vb_expr.Typedtree.exp_loc in
              let covered =
                List.filter
                  (fun ((loc : Location.t), _) ->
                     String.equal (loc_file loc) (loc_file span)
                     && start_cnum loc >= start_cnum span
                     && start_cnum loc <= end_cnum span)
                  sites
              in
              (match covered with
               | [] -> ()
               | _ :: _ -> bound_sites := (id, covered) :: !bound_sites)
            | _ -> ());
           Tast_iterator.default_iterator.value_binding sub vb) }
  in
  vb_iter.Tast_iterator.structure vb_iter str;
  let sorted_downstream = Hashtbl.create 8 in
  iter_exprs
    (fun e ->
       match e.Typedtree.exp_desc with
       | Typedtree.Texp_ident (Path.Pident id, _, _)
         when within sorted_spans e.Typedtree.exp_loc ->
         List.iter
           (fun (id', covered) ->
              if Ident.same id id' then
                List.iter
                  (fun ((loc : Location.t), _) ->
                     Hashtbl.replace sorted_downstream (start_cnum loc) ())
                  covered)
           !bound_sites
       | _ -> ())
    str;
  List.filter_map
    (fun ((loc : Location.t), name) ->
       if Hashtbl.mem sorted_downstream (start_cnum loc) then None
       else
         let file = loc.Location.loc_start.Lexing.pos_fname in
         let line = loc.Location.loc_start.Lexing.pos_lnum in
         let col =
           loc.Location.loc_start.Lexing.pos_cnum
           - loc.Location.loc_start.Lexing.pos_bol
         in
         if Waivers.waived waivers ~file ~line ~token then None
         else
           Some
             (Finding.make ~file ~line ~col ~rule
                ~severity:Finding.Warning
                (Printf.sprintf
                   "%s visits buckets in nondeterministic order and its \
                    result is never sorted; sort the product (List.sort \
                    with a dedicated comparator) before it escapes, or \
                    waive with nondet-ok if order provably cannot"
                   name)))
    sites

let check ~waivers (units : Cmt_load.t list) =
  List.concat_map
    (fun (u : Cmt_load.t) ->
       match u.Cmt_load.impl with
       | None -> []
       | Some str -> check_unit waivers str)
    units
