(** Shared concurrency machinery for the C4-C6 rules: per-project
    function inventory, lock naming, held-lock regions, and the
    interprocedural summaries (locks a call may acquire, functions
    returning fresh fds).

    Lock names are project-stable: field locks are named from their
    record type ([Pool.sm], [Lru.lock], [Server.lock], [Pool.future.fm]),
    module-level mutexes from their path, local idents as [Unit.name];
    unnameable mutexes (parameters, complex expressions) produce no
    site — a summary miss, never a wrong edge. *)

type fn = {
  fn_unit : string;
  fn_unit_name : string;
  fn_name : string;
  fn_key : string;
  fn_params : (Ident.t * bool) list;
  fn_expr : Typedtree.expression;
  fn_loc : Location.t;
  fn_env : Pathx.alias_env;
  mutable fn_protect_like : (int * int) option;
  mutable fn_acquires_sites : acquire list;
  mutable fn_regions : region list;
  mutable fn_blocking : bsite list;
  mutable fn_calls : (fn * Location.t) list;
  mutable fn_acquires : Set.Make(String).t;
  mutable fn_returns_fd : bool;
}

and acquire = { a_lock : string; a_loc : Location.t; a_via : string }

and region = {
  g_lock : string;
  g_file : string;
  g_open : int;
  g_start : int;
  g_end : int;
}

and bsite = { s_prim : string; s_loc : Location.t; s_wait_on : string option }

type project

(** Inventory every unit's top-level functions, detect protect-like
    helpers, extract sites and run both interprocedural fixpoints. *)
val build : Cmt_load.t list -> project

val fns : project -> fn list

(** An acquisition of [e_lock] (directly or through a call summary)
    while [e_held] is held. *)
type edge = {
  e_held : string;
  e_lock : string;
  e_loc : Location.t;
  e_via : string;
}

val edges : project -> edge list

(** A known-blocking call inside a held-lock region.  [b_wait_on] is
    [Condition.wait]'s own mutex when nameable. *)
type blocking_site = {
  b_prim : string;
  b_loc : Location.t;
  b_held : string list;
  b_wait_on : string option;
}

val blocking_sites : project -> blocking_site list

(** [producer_of project fn e]: display name when the application [e]
    yields a fresh fd (Unix producer table, or a call to a function the
    returns-fd summary covers). *)
val producer_of :
  project -> fn -> Typedtree.expression -> string option

(** Path suffix of [Unix.close], shared with the C6 rule. *)
val close_suffix : string list

(** Resolved-or-syntactic components of a reference, suffix-matchable
    (fixture stub modules included). *)
val comps_of : Pathx.alias_env -> Path.t -> string list option

val suffixed : Pathx.alias_env -> Path.t -> string list -> bool

(** Resolve a reference made from [unit_name] under a module-alias
    environment to a project function: plain local idents through the
    per-unit ident table, global or aliased paths through the key
    table.  The purity layer (C7-C9) resolves references from inside
    arbitrary closures with this, where no enclosing inventory function
    is at hand. *)
val resolve_ref :
  project -> unit_name:string -> Pathx.alias_env -> Path.t -> fn option
