(* Shared concurrency machinery for the C4-C6 rules: a per-project
   inventory of top-level functions with, for each one, the lock
   regions it opens, the acquisition/blocking/call sites inside it and
   two interprocedural summaries — the set of locks a call into it may
   acquire (C4/C5) and whether it returns a fresh file descriptor (C6).

   Lock identity.  A lock must get the same name wherever it is
   touched, or the project-wide lock graph falls apart.  Field locks
   ([t.lock], [pool.sm], [fut.fm]) are named from the *record type*
   of the label, which is spelled identically at every use site:
   type [t] of module [M] yields [M.label] (the conventional case,
   e.g. [Pool.sm], [Lru.lock], [Server.lock]); any other type name is
   kept ([Pool.future.fm]).  Module-level mutexes named by ident
   resolve to their last two path components; a plain local ident is
   qualified by its unit ([Unit.name]).  Unnameable mutexes (function
   parameters, complex expressions) yield no site at all — a summary
   miss, never a wrong edge.

   Held regions.  Two forms, both compared by character span within
   one function: the closure argument of [Mutex.protect m f] (or of a
   protect-like helper, below), and linear [Mutex.lock]/[Mutex.unlock]
   pairs replayed in source order *per closure level* — an unlock
   inside a nested [fun] does not close its parent's region, because
   it runs at a different time (this is exactly the [Fun.protect
   ~finally:(fun () -> Mutex.unlock m)] shape).  A lock never released
   at its own level holds to the end of that level.

   Protect-like helpers.  A function whose body locks one parameter
   and runs another (lib/exec's [locked m f]) acts as Mutex.protect at
   its call sites: the matching argument positions are detected once
   per function and call sites get an acquisition plus a region over
   the literal closure argument.

   Known false negatives (DESIGN.md §7): locks reached through
   functors or first-class modules, closures that escape a region and
   run later (their sites are attributed to the defining region), and
   calls through function-typed variables. *)

module SS = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)
(* ------------------------------------------------------------------ *)

let lock_suffix = [ "Mutex"; "lock" ]

let unlock_suffix = [ "Mutex"; "unlock" ]

let protect_suffix = [ "Mutex"; "protect" ]

let condition_wait_suffix = [ "Condition"; "wait" ]

(* (path suffix, display name): calls that can block indefinitely.
   Extensible in spirit via the blocking-ok waiver rather than
   per-project configuration — a deliberate blocking call under a lock
   carries its justification in the source line. *)
let blocking_table =
  [ ([ "Unix"; "accept" ], "Unix.accept");
    ([ "Unix"; "connect" ], "Unix.connect");
    ([ "Unix"; "read" ], "Unix.read");
    ([ "Unix"; "write" ], "Unix.write");
    ([ "Unix"; "select" ], "Unix.select");
    ([ "Unix"; "sleep" ], "Unix.sleep");
    ([ "Unix"; "sleepf" ], "Unix.sleepf");
    ([ "Unix"; "recv" ], "Unix.recv");
    ([ "Unix"; "send" ], "Unix.send");
    ([ "Unix"; "waitpid" ], "Unix.waitpid");
    ([ "Thread"; "join" ], "Thread.join");
    ([ "Thread"; "delay" ], "Thread.delay");
    ([ "Domain"; "join" ], "Domain.join");
    ([ "Pool"; "await" ], "Pool.await");
    ([ "Pool"; "await_timeout" ], "Pool.await_timeout");
    ([ "Pool"; "run_timeout" ], "Pool.run_timeout");
    ([ "Pool"; "map" ], "Pool.map");
    ([ "Pool"; "shutdown" ], "Pool.shutdown");
    ([ "Pool"; "with_pool" ], "Pool.with_pool");
    ([ "Scheduler"; "schedule" ], "Scheduler.schedule");
    ([ "Server"; "wait" ], "Server.wait");
    ([ "Server"; "stop" ], "Server.stop");
    ([ "Client"; "call" ], "Client.call");
    ([ "Wire"; "read_frame" ], "Wire.read_frame");
    ([ "Wire"; "write_frame" ], "Wire.write_frame") ]

(* (path suffix, display name): calls whose result is a fresh fd the
   caller must close or hand off. *)
let producer_table =
  [ ([ "Unix"; "socket" ], "Unix.socket");
    ([ "Unix"; "accept" ], "Unix.accept");
    ([ "Unix"; "openfile" ], "Unix.openfile");
    ([ "Unix"; "pipe" ], "Unix.pipe");
    ([ "Unix"; "socketpair" ], "Unix.socketpair");
    ([ "Unix"; "dup" ], "Unix.dup") ]

let close_suffix = [ "Unix"; "close" ]

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type acquire = {
  a_lock : string;
  a_loc : Location.t;
  a_via : string;  (** "Mutex.lock", "Mutex.protect" or the helper name *)
}

type region = {
  g_lock : string;
  g_file : string;
  g_open : int;  (** cnum of the acquisition that opened it (self-test) *)
  g_start : int;
  g_end : int;
}

type bsite = {
  s_prim : string;
  s_loc : Location.t;
  s_wait_on : string option;  (** [Condition.wait]'s own mutex *)
}

type fn = {
  fn_unit : string;  (** display unit, last path component: "Pool" *)
  fn_unit_name : string;  (** raw compilation unit name, for ident keys *)
  fn_name : string;
  fn_key : string;  (** normalized dotted path, for cross-unit calls *)
  fn_params : (Ident.t * bool) list;  (** binder, has function type *)
  fn_expr : Typedtree.expression;
  fn_loc : Location.t;
  fn_env : Pathx.alias_env;
  mutable fn_protect_like : (int * int) option;
      (** (mutex arg position, closure arg position) *)
  mutable fn_acquires_sites : acquire list;
  mutable fn_regions : region list;
  mutable fn_blocking : bsite list;
  mutable fn_calls : (fn * Location.t) list;
  mutable fn_acquires : SS.t;  (** fixpoint over the call graph *)
  mutable fn_returns_fd : bool;
}

type project = {
  fns : fn list;
  by_ident : (string, fn) Hashtbl.t;  (** "unit/ident-unique-name" *)
  by_key : (string, fn) Hashtbl.t;
}

let fns t = t.fns

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let comps_of env p =
  match Pathx.resolve env p with
  | Some comps -> Some comps
  | None -> Option.map Pathx.normalize (Pathx.flatten p)

let suffixed env p suffix =
  match comps_of env p with
  | Some comps -> Pathx.has_suffix ~suffix comps
  | None -> false

let app_head (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_apply (f, args) -> (
    match f.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> Some (p, args)
    | _ -> None)
  | _ -> None

(* The [i]-th positional (unlabelled, evaluated) argument. *)
let pos_arg args i =
  let rec go n = function
    | [] -> None
    | (Asttypes.Nolabel, Some e) :: rest ->
      if n = i then Some (e : Typedtree.expression) else go (n + 1) rest
    | _ :: rest -> go n rest
  in
  go 0 args

let start_cnum (loc : Location.t) = loc.Location.loc_start.Lexing.pos_cnum

let end_cnum (loc : Location.t) = loc.Location.loc_end.Lexing.pos_cnum

let loc_file (loc : Location.t) = loc.Location.loc_start.Lexing.pos_fname

let last2 comps =
  match List.rev comps with
  | b :: a :: _ -> Some (a ^ "." ^ b)
  | [ b ] -> Some b
  | [] -> None

(* Stable project-wide name of a mutex expression; [None] when the
   expression cannot be named (see header). *)
let lock_name ~unit_last env (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_field (_, _, lbl) -> (
    let field = lbl.Types.lbl_name in
    match Types.get_desc lbl.Types.lbl_res with
    | Types.Tconstr (p, _, _) -> (
      let comps =
        match Pathx.flatten p with
        | Some raw -> Pathx.normalize raw
        | None -> []
      in
      match List.rev comps with
      | tname :: modc :: _ ->
        Some
          (if String.equal tname "t" then modc ^ "." ^ field
           else modc ^ "." ^ tname ^ "." ^ field)
      | [ tname ] ->
        Some
          (if String.equal tname "t" then unit_last ^ "." ^ field
           else unit_last ^ "." ^ tname ^ "." ^ field)
      | [] -> Some (unit_last ^ "." ^ field))
    | _ -> Some (unit_last ^ "." ^ field))
  | Typedtree.Texp_ident (p, _, _) -> (
    match Pathx.resolve env p with
    | Some comps -> last2 comps
    | None -> (
      match p with
      | Path.Pident id -> Some (unit_last ^ "." ^ Ident.name id)
      | _ -> None))
  | _ -> None

let ident_occurs id root =
  let found = ref false in
  let iter =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
           (match e.Typedtree.exp_desc with
            | Typedtree.Texp_ident (Path.Pident id', _, _)
              when Ident.same id id' ->
              found := true
            | _ -> ());
           Tast_iterator.default_iterator.expr sub e) }
  in
  iter.Tast_iterator.expr iter root;
  !found

(* ------------------------------------------------------------------ *)
(* Function inventory                                                  *)
(* ------------------------------------------------------------------ *)

let is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

(* Curried parameter chain of a function expression: one ident per
   single-case [Texp_function] layer. *)
let rec peel_params acc (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function { param; cases = [ c ]; _ } ->
    let id =
      match c.Typedtree.c_lhs.Typedtree.pat_desc with
      | Typedtree.Tpat_var (id, _) -> id
      | Typedtree.Tpat_alias (_, id, _) -> id
      | _ -> param
    in
    let entry = (id, is_arrow c.Typedtree.c_lhs.Typedtree.pat_type) in
    peel_params (entry :: acc) c.Typedtree.c_rhs
  | _ -> (List.rev acc, e)

let unit_last name =
  match List.rev (Pathx.split_dune name) with
  | last :: _ -> last
  | [] -> name

let functions_of_unit (u : Cmt_load.t) =
  match u.Cmt_load.impl with
  | None -> []
  | Some str ->
    let env = Pathx.alias_env_of_structure str in
    let ulast = unit_last u.Cmt_load.name in
    let ucomps = Pathx.normalize (Pathx.split_dune u.Cmt_load.name) in
    List.concat_map
      (fun item ->
         match item.Typedtree.str_desc with
         | Typedtree.Tstr_value (_, vbs) ->
           List.filter_map
             (fun vb ->
                match
                  ( vb.Typedtree.vb_pat.Typedtree.pat_desc,
                    vb.Typedtree.vb_expr.Typedtree.exp_desc )
                with
                | Typedtree.Tpat_var (id, _), Typedtree.Texp_function _ ->
                  let params, _ = peel_params [] vb.Typedtree.vb_expr in
                  Some
                    ( id,
                      { fn_unit = ulast;
                        fn_unit_name = u.Cmt_load.name;
                        fn_name = Ident.name id;
                        fn_key =
                          Pathx.to_string (ucomps @ [ Ident.name id ]);
                        fn_params = params;
                        fn_expr = vb.Typedtree.vb_expr;
                        fn_loc = vb.Typedtree.vb_loc;
                        fn_env = env;
                        fn_protect_like = None;
                        fn_acquires_sites = [];
                        fn_regions = [];
                        fn_blocking = [];
                        fn_calls = [];
                        fn_acquires = SS.empty;
                        fn_returns_fd = false } )
                | _ -> None)
             vbs
         | _ -> [])
      str.Typedtree.str_items

(* ------------------------------------------------------------------ *)
(* Protect-like helpers                                                *)
(* ------------------------------------------------------------------ *)

(* [fn] acts as Mutex.protect when its body locks one parameter and
   mentions another, function-typed one (which it runs under the
   lock — lib/exec's [locked m f] is the shape in the wild). *)
let detect_protect_like fn =
  let locks_param id =
    let found = ref false in
    let iter =
      { Tast_iterator.default_iterator with
        expr =
          (fun sub e ->
             (match app_head e with
              | Some (p, args)
                when suffixed fn.fn_env p lock_suffix
                     || suffixed fn.fn_env p protect_suffix -> (
                match pos_arg args 0 with
                | Some
                    { Typedtree.exp_desc =
                        Typedtree.Texp_ident (Path.Pident id', _, _);
                      _ }
                  when Ident.same id id' ->
                  found := true
                | _ -> ())
              | _ -> ());
             Tast_iterator.default_iterator.expr sub e) }
    in
    iter.Tast_iterator.expr iter fn.fn_expr;
    !found
  in
  let indexed = List.mapi (fun i p -> (i, p)) fn.fn_params in
  match
    List.find_opt (fun (_, (id, _)) -> locks_param id) indexed
  with
  | None -> ()
  | Some (mi, _) -> (
    match
      List.find_opt
        (fun (i, (id, arrow)) ->
           i <> mi && arrow && ident_occurs id fn.fn_expr)
        indexed
    with
    | None -> ()
    | Some (ci, _) -> fn.fn_protect_like <- Some (mi, ci))

(* ------------------------------------------------------------------ *)
(* Per-level traversal                                                 *)
(* ------------------------------------------------------------------ *)

(* Calls [f root level_exprs] for each closure level of [top]: the
   function body and every nested function body, each with the list of
   expressions at that level only (no descent into deeper functions —
   their code runs at a different time). *)
let iter_levels f top =
  let pending = Queue.create () in
  Queue.push top pending;
  while not (Queue.is_empty pending) do
    let root = Queue.pop pending in
    let exprs = ref [] in
    let iter =
      { Tast_iterator.default_iterator with
        expr =
          (fun sub e ->
             exprs := e :: !exprs;
             match e.Typedtree.exp_desc with
             | Typedtree.Texp_function { cases; _ } ->
               List.iter
                 (fun c -> Queue.push c.Typedtree.c_rhs pending)
                 cases
             | _ -> Tast_iterator.default_iterator.expr sub e) }
    in
    iter.Tast_iterator.expr iter root;
    f root (List.rev !exprs)
  done

(* ------------------------------------------------------------------ *)
(* Site extraction                                                     *)
(* ------------------------------------------------------------------ *)

let region_of_closure ~lock ~open_loc (closure : Typedtree.expression) =
  let loc = closure.Typedtree.exp_loc in
  { g_lock = lock;
    g_file = loc_file loc;
    g_open = start_cnum open_loc;
    g_start = start_cnum loc;
    g_end = end_cnum loc }

(* One pass over [fn]: acquisition sites, protect regions, linear
   lock/unlock spans, blocking sites and resolved calls.  [resolve]
   maps a reference path to a project function (used both for call
   edges and to expand protect-like helpers). *)
let extract_sites resolve fn =
  let env = fn.fn_env and ulast = fn.fn_unit in
  (* A mutex that is one of [fn]'s own parameters has no stable name —
     the caller decides which lock it is.  Protect-like expansion names
     the actual argument at each call site instead; naming the param
     here would mint a phantom lock shared by every caller. *)
  let is_param id = List.exists (fun (p, _) -> Ident.same p id) fn.fn_params in
  let name_of (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (Path.Pident id, _, _) when is_param id -> None
    | _ -> lock_name ~unit_last:ulast env e
  in
  let acquires = ref [] and regions = ref [] in
  let blocking = ref [] and calls = ref [] in
  let add_acquire lock loc via =
    acquires := { a_lock = lock; a_loc = loc; a_via = via } :: !acquires
  in
  let classify_level root exprs =
    (* (cnum, loc, `Lock name | `Unlock name) in source order *)
    let events = ref [] in
    List.iter
      (fun (e : Typedtree.expression) ->
         let loc = e.Typedtree.exp_loc in
         match app_head e with
         | None -> ()
         | Some (p, args) ->
           let arg_name i = Option.bind (pos_arg args i) name_of in
           if suffixed env p lock_suffix then (
             match arg_name 0 with
             | Some lock ->
               add_acquire lock loc "Mutex.lock";
               events := (start_cnum loc, loc, `Lock lock) :: !events
             | None -> ())
           else if suffixed env p unlock_suffix then (
             match arg_name 0 with
             | Some lock ->
               events := (start_cnum loc, loc, `Unlock lock) :: !events
             | None -> ())
           else if suffixed env p protect_suffix then (
             match arg_name 0 with
             | None -> ()
             | Some lock ->
               add_acquire lock loc "Mutex.protect";
               Option.iter
                 (fun closure ->
                    regions :=
                      region_of_closure ~lock ~open_loc:loc closure
                      :: !regions)
                 (pos_arg args 1))
           else begin
             if suffixed env p condition_wait_suffix then
               blocking :=
                 { s_prim = "Condition.wait";
                   s_loc = loc;
                   s_wait_on = arg_name 1 }
                 :: !blocking
             else (
               match
                 List.find_opt
                   (fun (suffix, _) -> suffixed env p suffix)
                   blocking_table
               with
               | Some (_, display) ->
                 blocking :=
                   { s_prim = display; s_loc = loc; s_wait_on = None }
                   :: !blocking
               | None -> ());
             match resolve fn p with
             | None -> ()
             | Some callee ->
               calls := (callee, loc) :: !calls;
               (match callee.fn_protect_like with
                | None -> ()
                | Some (mi, ci) -> (
                  match Option.bind (pos_arg args mi) name_of with
                  | None -> ()
                  | Some lock ->
                    let via = callee.fn_unit ^ "." ^ callee.fn_name in
                    add_acquire lock loc via;
                    match pos_arg args ci with
                    | Some
                        ({ Typedtree.exp_desc = Typedtree.Texp_function _;
                           _ } as closure) ->
                      regions :=
                        region_of_closure ~lock ~open_loc:loc closure
                        :: !regions
                    | _ -> ()))
           end)
      exprs;
    (* Replay this level's lock/unlock events in source order. *)
    let level_end =
      List.fold_left
        (fun acc (e : Typedtree.expression) ->
           max acc (end_cnum e.Typedtree.exp_loc))
        (end_cnum root.Typedtree.exp_loc)
        exprs
    in
    let events =
      List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) !events
    in
    let open_spans = ref [] in
    let close lock cnum =
      match List.assoc_opt lock !open_spans with
      | None -> ()  (* unlock of something this level never locked *)
      | Some (opened, file) ->
        open_spans := List.remove_assoc lock !open_spans;
        regions :=
          { g_lock = lock;
            g_file = file;
            g_open = opened;
            g_start = opened;
            g_end = cnum }
          :: !regions
    in
    List.iter
      (fun (cnum, loc, ev) ->
         match ev with
         | `Lock lock ->
           if not (List.mem_assoc lock !open_spans) then
             open_spans := (lock, (cnum, loc_file loc)) :: !open_spans
         | `Unlock lock -> close lock cnum)
      events;
    List.iter
      (fun (lock, (opened, file)) ->
         regions :=
           { g_lock = lock;
             g_file = file;
             g_open = opened;
             g_start = opened;
             g_end = level_end }
           :: !regions)
      !open_spans
  in
  iter_levels classify_level fn.fn_expr;
  fn.fn_acquires_sites <- List.rev !acquires;
  fn.fn_regions <- !regions;
  fn.fn_blocking <- List.rev !blocking;
  fn.fn_calls <- List.rev !calls

(* Locks held at [loc] inside [fn]: regions containing its start,
   except the one this very site opened. *)
let held_at fn (loc : Location.t) =
  let file = loc_file loc and cnum = start_cnum loc in
  List.sort_uniq String.compare
    (List.filter_map
       (fun r ->
          if
            String.equal r.g_file file
            && cnum >= r.g_start && cnum <= r.g_end && cnum <> r.g_open
          then Some r.g_lock
          else None)
       fn.fn_regions)

(* ------------------------------------------------------------------ *)
(* Call resolution and fixpoints                                       *)
(* ------------------------------------------------------------------ *)

let ident_key unit_name id = unit_name ^ "/" ^ Ident.unique_name id

let resolve_ref project ~unit_name env p =
  let by_local () =
    match p with
    | Path.Pident id when not (Ident.global id) ->
      Hashtbl.find_opt project.by_ident (ident_key unit_name id)
    | _ -> None
  in
  match by_local () with
  | Some _ as hit -> hit
  | None -> (
    match Pathx.resolve env p with
    | Some comps -> Hashtbl.find_opt project.by_key (Pathx.to_string comps)
    | None -> None)

let resolve_call project fn p =
  resolve_ref project ~unit_name:fn.fn_unit_name fn.fn_env p

let acquires_fixpoint fns =
  let direct fn =
    List.fold_left
      (fun acc a -> SS.add a.a_lock acc)
      SS.empty fn.fn_acquires_sites
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
         let s =
           List.fold_left
             (fun acc (callee, _) -> SS.union acc callee.fn_acquires)
             (direct fn) fn.fn_calls
         in
         if not (SS.equal s fn.fn_acquires) then begin
           fn.fn_acquires <- s;
           changed := true
         end)
      fns
  done

(* Does this application produce a fresh fd?  Either a known Unix
   producer or a call to a project function summarized as returning
   one. *)
let producer_of project fn (e : Typedtree.expression) =
  match app_head e with
  | None -> None
  | Some (p, _) -> (
    match
      List.find_opt
        (fun (suffix, _) -> suffixed fn.fn_env p suffix)
        producer_table
    with
    | Some (_, display) -> Some display
    | None -> (
      match resolve_call project fn p with
      | Some callee when callee.fn_returns_fd ->
        Some (callee.fn_unit ^ "." ^ callee.fn_name)
      | _ -> None))

(* Tail positions of [fn]'s body that return a producer result, either
   directly or through a let-bound ident. *)
let tail_returns_fd project fn =
  let _, body = peel_params [] fn.fn_expr in
  let rec go bound (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_let (_, vbs, rest) ->
      let bound =
        List.fold_left
          (fun bound vb ->
             match vb.Typedtree.vb_pat.Typedtree.pat_desc with
             | Typedtree.Tpat_var (id, _)
               when Option.is_some
                      (producer_of project fn vb.Typedtree.vb_expr) ->
               id :: bound
             | _ -> bound)
          bound vbs
      in
      go bound rest
    | Typedtree.Texp_sequence (_, e2) -> go bound e2
    | Typedtree.Texp_ifthenelse (_, e1, e2) ->
      go bound e1 || (match e2 with Some e2 -> go bound e2 | None -> false)
    | Typedtree.Texp_match (_, cases, _) ->
      List.exists (fun c -> go bound c.Typedtree.c_rhs) cases
    | Typedtree.Texp_ident (Path.Pident id, _, _) ->
      List.exists (Ident.same id) bound
    | _ -> Option.is_some (producer_of project fn e)
  in
  go [] body

let returns_fd_fixpoint project =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
         if (not fn.fn_returns_fd) && tail_returns_fd project fn then begin
           fn.fn_returns_fd <- true;
           changed := true
         end)
      project.fns
  done

(* ------------------------------------------------------------------ *)
(* Build                                                               *)
(* ------------------------------------------------------------------ *)

let build (units : Cmt_load.t list) =
  let with_ids = List.concat_map functions_of_unit units in
  let fns = List.map snd with_ids in
  let project =
    { fns;
      by_ident = Hashtbl.create 128;
      by_key = Hashtbl.create 128 }
  in
  List.iter
    (fun (id, fn) ->
       Hashtbl.replace project.by_ident (ident_key fn.fn_unit_name id) fn;
       Hashtbl.replace project.by_key fn.fn_key fn)
    with_ids;
  List.iter detect_protect_like fns;
  let resolve fn p = resolve_call project fn p in
  List.iter (extract_sites resolve) fns;
  acquires_fixpoint fns;
  returns_fd_fixpoint project;
  project

(* ------------------------------------------------------------------ *)
(* Lock-graph edges (C4)                                               *)
(* ------------------------------------------------------------------ *)

type edge = {
  e_held : string;
  e_lock : string;
  e_loc : Location.t;
  e_via : string;
}

let edges project =
  List.concat_map
    (fun fn ->
       let from_acquires =
         List.concat_map
           (fun a ->
              List.map
                (fun held ->
                   { e_held = held;
                     e_lock = a.a_lock;
                     e_loc = a.a_loc;
                     e_via = a.a_via })
                (held_at fn a.a_loc))
           fn.fn_acquires_sites
       in
       let from_calls =
         List.concat_map
           (fun (callee, loc) ->
              match held_at fn loc with
              | [] -> []
              | held ->
                let via =
                  "call to " ^ callee.fn_unit ^ "." ^ callee.fn_name
                in
                List.concat_map
                  (fun h ->
                     List.map
                       (fun lock ->
                          { e_held = h;
                            e_lock = lock;
                            e_loc = loc;
                            e_via = via })
                       (SS.elements callee.fn_acquires))
                  held)
           fn.fn_calls
       in
       from_acquires @ from_calls)
    project.fns

(* ------------------------------------------------------------------ *)
(* Blocking sites (C5)                                                 *)
(* ------------------------------------------------------------------ *)

type blocking_site = {
  b_prim : string;
  b_loc : Location.t;
  b_held : string list;
  b_wait_on : string option;
}

let blocking_sites project =
  List.concat_map
    (fun fn ->
       List.filter_map
         (fun s ->
            match held_at fn s.s_loc with
            | [] -> None
            | held ->
              Some
                { b_prim = s.s_prim;
                  b_loc = s.s_loc;
                  b_held = held;
                  b_wait_on = s.s_wait_on })
         fn.fn_blocking)
    project.fns
