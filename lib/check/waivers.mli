(** Typed-tier waivers: a same-line [check: <token>] comment suppresses
    one typed rule on that line; waivers that suppress nothing are
    reported as [stale-waiver] warnings. *)

(** The tokens the typed rules consume: [domain-safe] (C1), [exn-flow]
    (C2), [dead-export] (C3), [lock-order] (C4), [blocking-ok] (C5),
    [fd-escape] (C6), [nondet-ok] (C7-C9).  One definition, re-exported
    from {!Merlin_lint.Waiver_mark}. *)
val tokens : string list

type t

val create : unit -> t

(** Scan a source file for waiver marks (idempotent; missing files scan
    as empty). *)
val register_file : t -> string -> unit

(** [waived t ~file ~line ~token] is true when the line carries the
    token's waiver; consumption is recorded for {!stale}. *)
val waived : t -> file:string -> line:int -> token:string -> bool

(** Warning findings for every known-token waiver never consumed by a
    rule, source-ordered.  Call after all rules ran.  [tokens] restricts
    the audit to the active rules' tokens (a waiver for a rule this run
    did not execute is not auditable); defaults to the full list. *)
val stale : ?tokens:string list -> t -> Merlin_lint.Finding.t list
