(** C8: a nondeterministic value (direct or through a tainted local
    binding) flows into a cache/request key — [Wire.request_key],
    [Lru.find]/[Lru.add] keys, [Net_io.fingerprint],
    [Scheduler.schedule ~key].  Error severity: an impure key is
    always a bug. *)

val rule : string

val check :
  waivers:Waivers.t ->
  purity:Purity.t ->
  Cmt_load.t list ->
  Merlin_lint.Finding.t list
