(** Loading [.cmt]/[.cmti] artifacts into per-compilation-unit records,
    merged by unit name.

    Stale artifacts from a different compiler are skipped by magic
    number; artifacts that still fail to load yield warning-severity
    [cmt-error] findings instead of aborting. *)

type t = {
  name : string;  (** compilation-unit name, e.g. [Merlin_exec__Pool] *)
  source : string option;  (** implementation source path from the cmt *)
  intf_source : string option;  (** interface source path from the cmti *)
  impl : Typedtree.structure option;
  intf : Typedtree.signature option;
}

(** Source under [bin/], [bench/], [test/] or [examples/]: a root of
    the reference graph, never a dead-export target. *)
val is_entry : t -> bool

(** Source under [lib/exec]: the pool implementation, exempt from the
    domain-safety rule (it owns the lock discipline the rule enforces
    on everyone else). *)
val is_pool_internal : t -> bool

(** A dune-generated library alias module ([*.ml-gen]). *)
val is_alias_unit : t -> bool

(** All [.cmt]/[.cmti] files under the given files/directories, sorted;
    fixture trees ([*_fixtures]) are skipped. *)
val collect_cmt_files : string list -> string list

val load_files : string list -> t list * Merlin_lint.Finding.t list

val load_roots : string list -> t list * Merlin_lint.Finding.t list
