(** C9: a [Hashtbl.iter]/[fold]/[to_seq*] traversal whose product
    escapes with no intervening sort — neither nested inside a sorting
    application nor let-bound to an ident later sorted.  Waive a
    provably order-insensitive fold with [check: nondet-ok]. *)

val rule : string

val check :
  waivers:Waivers.t -> Cmt_load.t list -> Merlin_lint.Finding.t list
