(* C2 — exception flow out of task closures.

   An exception escaping a pool task does not surface where it is
   raised: the pool stores it and re-raises at await, far from the
   offending net and after sibling tasks kept running.  The rule flags
   occurrences of raising primitives ([raise], [failwith], ...) and
   exception-partial accessors ([Option.get], [List.hd], [Hashtbl.find],
   ...) inside a task closure when no enclosing handler ([try] or
   [match ... with exception]) covers them in that closure.

   Intraprocedural by design: a closure calling a helper that raises is
   not seen (documented false negative).  [Texp_assert] counts as a
   raiser — [Assert_failure] at await is the least debuggable of all. *)

module Finding = Merlin_lint.Finding

let rule = "task-exn-escape"

(* Raising primitives, matched fully qualified. *)
let raisers =
  [ ([ "Stdlib"; "raise" ], "raise");
    ([ "Stdlib"; "raise_notrace" ], "raise_notrace");
    ([ "Stdlib"; "failwith" ], "failwith");
    ([ "Stdlib"; "invalid_arg" ], "invalid_arg") ]

(* Accessors that raise on the empty/absent case, matched by suffix so
   [Stdlib.Hashtbl.find] and a reexport both register. *)
let partial_accessors =
  [ ([ "Option"; "get" ], "Option.get");
    ([ "List"; "hd" ], "List.hd");
    ([ "List"; "tl" ], "List.tl");
    ([ "List"; "nth" ], "List.nth");
    ([ "List"; "find" ], "List.find");
    ([ "List"; "assoc" ], "List.assoc");
    ([ "Hashtbl"; "find" ], "Hashtbl.find");
    ([ "Queue"; "pop" ], "Queue.pop");
    ([ "Queue"; "take" ], "Queue.take");
    ([ "Queue"; "peek" ], "Queue.peek");
    ([ "Stack"; "pop" ], "Stack.pop");
    ([ "Stack"; "top" ], "Stack.top") ]

type region = { r_file : string; r_start : int; r_end : int }

let region_of (loc : Location.t) =
  { r_file = loc.Location.loc_start.Lexing.pos_fname;
    r_start = loc.Location.loc_start.Lexing.pos_cnum;
    r_end = loc.Location.loc_end.Lexing.pos_cnum }

let in_region regions (loc : Location.t) =
  let p = loc.Location.loc_start in
  List.exists
    (fun r ->
       String.equal r.r_file p.Lexing.pos_fname
       && p.Lexing.pos_cnum >= r.r_start
       && p.Lexing.pos_cnum <= r.r_end)
    regions

(* Does a computation pattern carry an exception case? *)
let rec has_exception_case : type k. k Typedtree.general_pattern -> bool =
  fun p ->
    match p.Typedtree.pat_desc with
    | Typedtree.Tpat_exception _ -> true
    | Typedtree.Tpat_or (a, b, _) -> has_exception_case a || has_exception_case b
    | Typedtree.Tpat_value _ -> false
    | _ -> false

(* Handler regions inside the closure: [try] expressions and matches
   with an [exception] case. *)
let handler_regions closure =
  let regions = ref [] in
  let iter =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
           (match e.Typedtree.exp_desc with
            | Typedtree.Texp_try _ ->
              regions := region_of e.Typedtree.exp_loc :: !regions
            | Typedtree.Texp_match (_, cases, _) ->
              if
                List.exists
                  (fun c -> has_exception_case c.Typedtree.c_lhs)
                  cases
              then regions := region_of e.Typedtree.exp_loc :: !regions
            | _ -> ());
           Tast_iterator.default_iterator.expr sub e) }
  in
  iter.Tast_iterator.expr iter closure;
  !regions

let raiser_name env p =
  let comps =
    match Pathx.resolve env p with
    | Some comps -> comps
    | None -> (
      match Pathx.flatten p with
      | Some raw -> Pathx.normalize raw
      | None -> [])
  in
  match
    List.find_opt (fun (path, _) -> List.equal String.equal path comps) raisers
  with
  | Some (_, name) -> Some name
  | None ->
    List.find_map
      (fun (suffix, name) ->
         if Pathx.has_suffix ~suffix comps then Some name else None)
      partial_accessors

let check_site env waivers (site : Task_sites.site) =
  let regions = handler_regions site.Task_sites.closure in
  let findings = ref [] in
  let report loc name =
    let file = loc.Location.loc_start.Lexing.pos_fname in
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    let col =
      loc.Location.loc_start.Lexing.pos_cnum
      - loc.Location.loc_start.Lexing.pos_bol
    in
    if
      (not (in_region regions loc))
      && not (Waivers.waived waivers ~file ~line ~token:"exn-flow")
    then
      findings :=
        Finding.make ~file ~line ~col ~rule ~severity:Finding.Warning
          (Printf.sprintf
             "%s may raise inside a %s task closure with no enclosing \
              handler; the exception only surfaces at await — handle it \
              in the task"
             name site.Task_sites.sink)
        :: !findings
  in
  let iter =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
           (match e.Typedtree.exp_desc with
            | Typedtree.Texp_ident (p, _, _) -> (
              match raiser_name env p with
              | Some name -> report e.Typedtree.exp_loc name
              | None -> ())
            | Typedtree.Texp_assert _ -> report e.Typedtree.exp_loc "assert"
            | _ -> ());
           Tast_iterator.default_iterator.expr sub e) }
  in
  iter.Tast_iterator.expr iter site.Task_sites.closure;
  List.rev !findings

let check ~waivers (units : Cmt_load.t list) =
  List.concat_map
    (fun (u : Cmt_load.t) ->
       if Cmt_load.is_pool_internal u then []
       else
         match u.Cmt_load.impl with
         | None -> []
         | Some str ->
           let env = Pathx.alias_env_of_structure str in
           List.concat_map (check_site env waivers) (Task_sites.collect env str))
    units
