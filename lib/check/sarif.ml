(* SARIF 2.1.0 rendering of findings: one run, one result per finding,
   rule metadata deduplicated into the driver's rules array.  The
   output is accepted back by Merlin_lint.Baseline (which reads both
   the native baseline format and SARIF), so a CI artifact can be
   promoted to a baseline verbatim. *)

module Finding = Merlin_lint.Finding
module Json = Merlin_report.Json

let version = "2.1.0"

let schema =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

let level_of = function
  | Finding.Error -> "error"
  | Finding.Warning -> "warning"

let result_of (f : Finding.t) =
  Json.Obj
    [ ("ruleId", Json.Str f.Finding.rule);
      ("level", Json.Str (level_of f.Finding.severity));
      ("message", Json.Obj [ ("text", Json.Str f.Finding.message) ]);
      ( "locations",
        Json.List
          [ Json.Obj
              [ ( "physicalLocation",
                  Json.Obj
                    [ ( "artifactLocation",
                        Json.Obj [ ("uri", Json.Str f.Finding.file) ] );
                      ( "region",
                        Json.Obj
                          [ ("startLine", Json.Num (float_of_int f.Finding.line));
                            ( "startColumn",
                              Json.Num (float_of_int (f.Finding.col + 1)) )
                          ] ) ] ) ] ] ) ]

let rule_ids findings =
  List.sort_uniq String.compare
    (List.map (fun (f : Finding.t) -> f.Finding.rule) findings)

let to_json ~tool_name ~tool_version findings =
  Json.Obj
    [ ("version", Json.Str version);
      ("$schema", Json.Str schema);
      ( "runs",
        Json.List
          [ Json.Obj
              [ ( "tool",
                  Json.Obj
                    [ ( "driver",
                        Json.Obj
                          [ ("name", Json.Str tool_name);
                            ("version", Json.Str tool_version);
                            ( "rules",
                              Json.List
                                (List.map
                                   (fun id ->
                                      Json.Obj [ ("id", Json.Str id) ])
                                   (rule_ids findings)) ) ] ) ] );
                ("results", Json.List (List.map result_of findings)) ] ] ) ]

let render ~tool_name ~tool_version findings =
  Json.to_string (to_json ~tool_name ~tool_version findings) ^ "\n"
