(* C6 — fd-leak.

   A file descriptor minted by a Unix producer (socket/accept/openfile/
   pipe/... — or by a project function the returns-fd summary covers,
   like Server.listen_unix) must, within the binding's scope, either

   - reach [Unix.close] on the normal path with every earlier
     can-raise use protected (inside a [Fun.protect] whose [~finally]
     closes it, or inside a [try] whose handler does), or
   - escape: be stored in a record/tuple/constructor, passed to a
     non-Unix function, or returned — ownership moved, someone else
     closes.

   Uses are classified per occurrence of the bound ident: an argument
   to [Unix.close] is a close; an argument to any other [Unix.*] call
   is a borrow (it can raise, and the fd is still ours); anything else
   — constructor field, non-Unix call argument, bare tail position —
   is an escape.  A binding with no close and no escape leaks on every
   path; a borrow before the close, outside every protected span,
   leaks on that borrow's raise edge.

   Known false negatives (DESIGN.md §7): fds in refs or arrays,
   producers called in argument position ([f (Unix.socket ...)]),
   double-close and use-after-close (different bugs), and conditional
   closes ([if keep then ... else Unix.close fd]) — path-insensitive
   by design.  Deliberate ownership transfers the classifier cannot
   see are waived with [check: fd-escape]. *)

module Finding = Merlin_lint.Finding

let rule = "fd-leak"

let fun_protect_suffix = [ "Fun"; "protect" ]

(* ---------- pattern idents ---------- *)

let rec value_pat_idents (p : Typedtree.pattern) =
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, _) -> [ id ]
  | Typedtree.Tpat_alias (inner, id, _) -> id :: value_pat_idents inner
  | Typedtree.Tpat_tuple ps -> List.concat_map value_pat_idents ps
  | _ -> []

(* ---------- occurrence classification ---------- *)

type uses = {
  mutable closes : int list;  (* cnums *)
  mutable borrows : (Location.t * string) list;
  mutable escapes : bool;
  mutable occ : (int * Location.t) list;  (* every occurrence *)
  mutable classified : int list;  (* cnums accounted for above *)
}

let is_ident id (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id', _, _) -> Ident.same id id'
  | _ -> false

let display_of env p =
  match Concur.comps_of env p with
  | Some comps -> (
    match List.rev comps with
    | b :: a :: _ -> a ^ "." ^ b
    | [ b ] -> b
    | [] -> Path.name p)
  | None -> Path.name p

(* Unix-module borrow: the component before the function name is
   "Unix" (real stdlib or a fixture stub). *)
let is_unix_call env p =
  match Concur.comps_of env p with
  | Some comps -> (
    match List.rev comps with
    | _ :: m :: _ -> String.equal m "Unix"
    | _ -> false)
  | None -> false

let start_cnum (loc : Location.t) = loc.Location.loc_start.Lexing.pos_cnum

let classify_uses env id scope =
  let u =
    { closes = []; borrows = []; escapes = false; occ = []; classified = [] }
  in
  let mark (e : Typedtree.expression) =
    u.classified <- start_cnum e.Typedtree.exp_loc :: u.classified
  in
  let escape_if_ident (e : Typedtree.expression) =
    if is_ident id e then begin
      u.escapes <- true;
      mark e
    end
  in
  let iter =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
           (match e.Typedtree.exp_desc with
            | Typedtree.Texp_ident (Path.Pident id', _, _)
              when Ident.same id id' ->
              u.occ <-
                (start_cnum e.Typedtree.exp_loc, e.Typedtree.exp_loc)
                :: u.occ
            | Typedtree.Texp_apply (f, args) -> (
              match f.Typedtree.exp_desc with
              | Typedtree.Texp_ident (p, _, _) ->
                List.iter
                  (fun (_, arg) ->
                     match arg with
                     | Some arg when is_ident id arg ->
                       mark arg;
                       if Concur.suffixed env p Concur.close_suffix then
                         u.closes <-
                           start_cnum arg.Typedtree.exp_loc :: u.closes
                       else if is_unix_call env p then
                         u.borrows <-
                           (e.Typedtree.exp_loc, display_of env p)
                           :: u.borrows
                       else u.escapes <- true
                     | _ -> ())
                  args
              | _ -> ())
            | Typedtree.Texp_record { fields; _ } ->
              Array.iter
                (fun (_, def) ->
                   match def with
                   | Typedtree.Overridden (_, e) -> escape_if_ident e
                   | Typedtree.Kept _ -> ())
                fields
            | Typedtree.Texp_tuple es -> List.iter escape_if_ident es
            | Typedtree.Texp_construct (_, _, es) ->
              List.iter escape_if_ident es
            | Typedtree.Texp_variant (_, eo) ->
              Option.iter escape_if_ident eo
            | Typedtree.Texp_array es -> List.iter escape_if_ident es
            | Typedtree.Texp_setfield (_, _, _, rhs) -> escape_if_ident rhs
            | Typedtree.Texp_let (_, vbs, _) ->
              (* [let alias = fd in ...]: tracking stops, assume moved *)
              List.iter
                (fun vb -> escape_if_ident vb.Typedtree.vb_expr)
                vbs
            | _ -> ());
           Tast_iterator.default_iterator.expr sub e) }
  in
  iter.Tast_iterator.expr iter scope;
  (* Occurrences nothing above accounted for are bare uses: tail
     position, comparison operands through aliases, ... — ownership
     has left this function. *)
  let bare =
    List.exists (fun (c, _) -> not (List.mem c u.classified)) u.occ
  in
  if bare then u.escapes <- true;
  u

(* ---------- protected spans ---------- *)

let closes_fd env id root =
  let found = ref false in
  let iter =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
           (match e.Typedtree.exp_desc with
            | Typedtree.Texp_apply
                ({ Typedtree.exp_desc = Typedtree.Texp_ident (p, _, _); _ },
                 args)
              when Concur.suffixed env p Concur.close_suffix ->
              if
                List.exists
                  (fun (_, a) ->
                     match a with Some a -> is_ident id a | None -> false)
                  args
              then found := true
            | _ -> ());
           Tast_iterator.default_iterator.expr sub e) }
  in
  iter.Tast_iterator.expr iter root;
  !found

(* Character spans inside which a raise cannot leak [id]: a [try]
   whose handler closes it, or a [Fun.protect] whose [~finally]
   closes it. *)
let guarded_spans env id scope =
  let spans = ref [] in
  let add (loc : Location.t) =
    spans :=
      ( loc.Location.loc_start.Lexing.pos_cnum,
        loc.Location.loc_end.Lexing.pos_cnum )
      :: !spans
  in
  let iter =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
           (match e.Typedtree.exp_desc with
            | Typedtree.Texp_try (_, handlers) ->
              if
                List.exists
                  (fun c -> closes_fd env id c.Typedtree.c_rhs)
                  handlers
              then add e.Typedtree.exp_loc
            | Typedtree.Texp_apply
                ({ Typedtree.exp_desc = Typedtree.Texp_ident (p, _, _); _ },
                 args)
              when Concur.suffixed env p fun_protect_suffix -> (
              match
                List.find_opt
                  (fun (lbl, _) ->
                     match lbl with
                     | Asttypes.Labelled "finally" -> true
                     | _ -> false)
                  args
              with
              | Some (_, Some finally) when closes_fd env id finally ->
                add e.Typedtree.exp_loc
              | _ -> ())
            | _ -> ());
           Tast_iterator.default_iterator.expr sub e) }
  in
  iter.Tast_iterator.expr iter scope;
  !spans

let in_span spans cnum =
  List.exists (fun (s, e) -> cnum >= s && cnum <= e) spans

(* ---------- bindings ---------- *)

type binding = {
  ids : Ident.t list;
  scope : Typedtree.expression;
  producer : string;
  bind_loc : Location.t;
}

let bindings_of project fn =
  let out = ref [] in
  let iter =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
           (match e.Typedtree.exp_desc with
            | Typedtree.Texp_let (_, vbs, body) ->
              List.iter
                (fun vb ->
                   match
                     Concur.producer_of project fn vb.Typedtree.vb_expr
                   with
                   | Some producer ->
                     out :=
                       { ids = value_pat_idents vb.Typedtree.vb_pat;
                         scope = body;
                         producer;
                         bind_loc = vb.Typedtree.vb_pat.Typedtree.pat_loc }
                       :: !out
                   | None -> ())
                vbs
            | Typedtree.Texp_match (scrut, cases, _) -> (
              match Concur.producer_of project fn scrut with
              | None -> ()
              | Some producer ->
                List.iter
                  (fun c ->
                     match c.Typedtree.c_lhs.Typedtree.pat_desc with
                     | Typedtree.Tpat_value arg ->
                       let pat =
                         (arg :> Typedtree.value Typedtree.general_pattern)
                       in
                       out :=
                         { ids = value_pat_idents pat;
                           scope = c.Typedtree.c_rhs;
                           producer;
                           bind_loc = pat.Typedtree.pat_loc }
                         :: !out
                     | _ -> ())
                  cases)
            | _ -> ());
           Tast_iterator.default_iterator.expr sub e) }
  in
  iter.Tast_iterator.expr iter fn.Concur.fn_expr;
  List.rev !out

(* ---------- rule ---------- *)

let finding ~waivers (loc : Location.t) message =
  let file = loc.Location.loc_start.Lexing.pos_fname in
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  let col =
    loc.Location.loc_start.Lexing.pos_cnum
    - loc.Location.loc_start.Lexing.pos_bol
  in
  if Waivers.waived waivers ~file ~line ~token:"fd-escape" then None
  else
    Some (Finding.make ~file ~line ~col ~rule ~severity:Finding.Error message)

let check_binding ~waivers env b =
  match b.ids with
  | [] ->
    (* The producer result was never even bound to a name. *)
    Option.to_list
      (finding ~waivers b.bind_loc
         (Printf.sprintf
            "%s result is dropped without reaching Unix.close; the \
             descriptor leaks on every path (waive: fd-escape)"
            b.producer))
  | ids ->
    List.concat_map
      (fun id ->
         let u = classify_uses env id b.scope in
         if u.escapes then []
         else if List.length u.closes = 0 then
           Option.to_list
             (finding ~waivers b.bind_loc
                (Printf.sprintf
                   "%s binds %s but no path reaches Unix.close and it \
                    never escapes this function; the descriptor leaks \
                    (waive: fd-escape)"
                   b.producer (Ident.name id)))
         else begin
           let last_close = List.fold_left max 0 u.closes in
           let spans = guarded_spans env id b.scope in
           List.filter_map
             (fun (loc, callee) ->
                let c = start_cnum loc in
                if c < last_close && not (in_span spans c) then
                  finding ~waivers loc
                    (Printf.sprintf
                       "%s can raise before %s reaches Unix.close; the \
                        descriptor from %s leaks on that path — close in \
                        a Fun.protect ~finally or an exception handler \
                        (waive: fd-escape)"
                       callee (Ident.name id) b.producer)
                else None)
             (List.rev u.borrows)
         end)
      ids

let check ~waivers project =
  List.concat_map
    (fun fn ->
       List.concat_map
         (check_binding ~waivers fn.Concur.fn_env)
         (bindings_of project fn))
    (Concur.fns project)
