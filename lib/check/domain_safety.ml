(* C1 — domain-unsafe capture.

   A closure handed to the pool runs on a worker domain.  If it mutates
   a ref, array, Hashtbl, Buffer, Queue, Stack or mutable record field
   that was created *outside* the closure, two tasks can race on it.
   The rule flags every such mutation unless it sits inside a
   [Mutex.protect] region, the unit is the pool implementation itself
   (lib/exec owns the lock discipline), or the line carries a
   [check: domain-safe] waiver.

   Mechanics: for each task closure we collect the idents bound inside
   it (patterns and for-loop indices), the source regions covered by
   [Mutex.protect] calls, and the mutation sites.  A mutation whose
   target's root ident is global or not bound inside the closure, and
   whose location is not inside a protect region, is a finding.

   Known false negatives (documented in DESIGN.md): closures reaching
   the pool through variables or functors, mutation through an alias
   bound inside the closure ([let r' = r in r' := ...]), and Atomic —
   deliberately exempt, it is safe by construction. *)

module Finding = Merlin_lint.Finding

let rule = "domain-unsafe-capture"

(* (path suffix, index of the mutated argument, display name).
   Ref primitives are matched fully qualified — the typedtree always
   spells them [Stdlib.(:=)] — so a user-defined [incr] does not
   trip the rule. *)
let mutators =
  [ ([ "Stdlib"; ":=" ], 0, ":=");
    ([ "Stdlib"; "incr" ], 0, "incr");
    ([ "Stdlib"; "decr" ], 0, "decr");
    ([ "Array"; "set" ], 0, "Array.set");
    ([ "Array"; "unsafe_set" ], 0, "Array.unsafe_set");
    ([ "Array"; "fill" ], 0, "Array.fill");
    ([ "Array"; "blit" ], 2, "Array.blit");
    ([ "Array"; "sort" ], 1, "Array.sort");
    ([ "Array"; "fast_sort" ], 1, "Array.fast_sort");
    ([ "Array"; "stable_sort" ], 1, "Array.stable_sort");
    ([ "Bytes"; "set" ], 0, "Bytes.set");
    ([ "Bytes"; "unsafe_set" ], 0, "Bytes.unsafe_set");
    ([ "Bytes"; "fill" ], 0, "Bytes.fill");
    ([ "Bytes"; "blit" ], 2, "Bytes.blit");
    ([ "Hashtbl"; "add" ], 0, "Hashtbl.add");
    ([ "Hashtbl"; "replace" ], 0, "Hashtbl.replace");
    ([ "Hashtbl"; "remove" ], 0, "Hashtbl.remove");
    ([ "Hashtbl"; "reset" ], 0, "Hashtbl.reset");
    ([ "Hashtbl"; "clear" ], 0, "Hashtbl.clear");
    ([ "Hashtbl"; "filter_map_inplace" ], 1, "Hashtbl.filter_map_inplace");
    ([ "Queue"; "add" ], 1, "Queue.add");
    ([ "Queue"; "push" ], 1, "Queue.push");
    ([ "Queue"; "pop" ], 0, "Queue.pop");
    ([ "Queue"; "take" ], 0, "Queue.take");
    ([ "Queue"; "clear" ], 0, "Queue.clear");
    ([ "Queue"; "transfer" ], 0, "Queue.transfer");
    ([ "Stack"; "push" ], 1, "Stack.push");
    ([ "Stack"; "pop" ], 0, "Stack.pop");
    ([ "Stack"; "clear" ], 0, "Stack.clear");
    ([ "Buffer"; "add_string" ], 0, "Buffer.add_string");
    ([ "Buffer"; "add_char" ], 0, "Buffer.add_char");
    ([ "Buffer"; "add_bytes" ], 0, "Buffer.add_bytes");
    ([ "Buffer"; "add_buffer" ], 0, "Buffer.add_buffer");
    ([ "Buffer"; "clear" ], 0, "Buffer.clear");
    ([ "Buffer"; "reset" ], 0, "Buffer.reset") ]

let iter_expressions f node_iter =
  let iter =
    { Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
           f e;
           Tast_iterator.default_iterator.expr sub e) }
  in
  node_iter iter

let iter_closure_exprs f (closure : Typedtree.expression) =
  iter_expressions f (fun iter -> iter.Tast_iterator.expr iter closure)

(* Idents bound anywhere inside the closure: pattern variables,
   aliases and for-loop indices. *)
let bound_idents closure =
  let bound = ref [] in
  let add id = bound := id :: !bound in
  let pat : type k. Tast_iterator.iterator -> k Typedtree.general_pattern -> unit
    =
    fun sub p ->
      (match p.Typedtree.pat_desc with
       | Typedtree.Tpat_var (id, _) -> add id
       | Typedtree.Tpat_alias (_, id, _) -> add id
       | _ -> ());
      Tast_iterator.default_iterator.pat sub p
  in
  let iter =
    { Tast_iterator.default_iterator with
      pat;
      expr =
        (fun sub e ->
           (match e.Typedtree.exp_desc with
            | Typedtree.Texp_for (id, _, _, _, _, _) -> add id
            | _ -> ());
           Tast_iterator.default_iterator.expr sub e) }
  in
  iter.Tast_iterator.expr iter closure;
  !bound

let is_bound bound id = List.exists (Ident.same id) bound

(* Source regions covered by a [Mutex.protect] application; a mutation
   located inside one is lock-protected. *)
type region = { r_file : string; r_start : int; r_end : int }

let region_of (loc : Location.t) =
  { r_file = loc.Location.loc_start.Lexing.pos_fname;
    r_start = loc.Location.loc_start.Lexing.pos_cnum;
    r_end = loc.Location.loc_end.Lexing.pos_cnum }

let in_region regions (loc : Location.t) =
  let p = loc.Location.loc_start in
  List.exists
    (fun r ->
       String.equal r.r_file p.Lexing.pos_fname
       && p.Lexing.pos_cnum >= r.r_start
       && p.Lexing.pos_cnum <= r.r_end)
    regions

let protect_regions env closure =
  let regions = ref [] in
  iter_closure_exprs
    (fun e ->
       match e.Typedtree.exp_desc with
       | Typedtree.Texp_apply (fn, _) -> (
         match fn.Typedtree.exp_desc with
         | Typedtree.Texp_ident (p, _, _) -> (
           match Pathx.resolve env p with
           | Some comps
             when Pathx.has_suffix ~suffix:[ "Mutex"; "protect" ] comps ->
             regions := region_of e.Typedtree.exp_loc :: !regions
           | _ -> ())
         | _ -> ())
       | _ -> ())
    closure;
  !regions

(* The root ident of a mutation target, looking through field and array
   projections: [t.buf] mutates whatever [t] is. *)
let rec root_ident e =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some p
  | Typedtree.Texp_field (base, _, _) -> root_ident base
  | _ -> None

(* A captured (hazardous) target: a global path, or a local ident not
   bound inside the closure.  Returns its display name. *)
let hazard env bound target =
  match root_ident target with
  | None -> None
  | Some p -> (
    match Pathx.head_ident p with
    | Some id when not (Ident.global id) ->
      if is_bound bound id then None else Some (Ident.name id)
    | _ -> (
      match Pathx.resolve env p with
      | Some comps -> Some (Pathx.to_string comps)
      | None -> Some (Path.name p)))

let nth_arg args idx =
  match List.nth_opt args idx with
  | Some (_, Some e) -> (Some e : Typedtree.expression option)
  | _ -> None

let check_site env waivers (site : Task_sites.site) =
  let bound = bound_idents site.Task_sites.closure in
  let regions = protect_regions env site.Task_sites.closure in
  let findings = ref [] in
  let report loc what name =
    let file = loc.Location.loc_start.Lexing.pos_fname in
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    let col =
      loc.Location.loc_start.Lexing.pos_cnum
      - loc.Location.loc_start.Lexing.pos_bol
    in
    if
      (not (in_region regions loc))
      && not (Waivers.waived waivers ~file ~line ~token:"domain-safe")
    then
      findings :=
        Finding.make ~file ~line ~col ~rule ~severity:Finding.Error
          (Printf.sprintf
             "%s task closure mutates %s (via %s) captured from outside \
              the task; races across domains — wrap in Mutex.protect or \
              keep the state task-local"
             site.Task_sites.sink name what)
        :: !findings
  in
  iter_closure_exprs
    (fun e ->
       match e.Typedtree.exp_desc with
       | Typedtree.Texp_setfield (target, _, label, _) -> (
         match hazard env bound target with
         | Some name ->
           report e.Typedtree.exp_loc
             (Printf.sprintf "field %s <-" label.Types.lbl_name)
             name
         | None -> ())
       | Typedtree.Texp_apply (fn, args) -> (
         match fn.Typedtree.exp_desc with
         | Typedtree.Texp_ident (p, _, _) -> (
           let comps =
             match Pathx.resolve env p with
             | Some comps -> comps
             | None -> (
               match Pathx.flatten p with
               | Some raw -> Pathx.normalize raw
               | None -> [])
           in
           match
             List.find_opt
               (fun (suffix, _, _) -> Pathx.has_suffix ~suffix comps)
               mutators
           with
           | None -> ()
           | Some (_, idx, display) -> (
             match nth_arg args idx with
             | None -> ()
             | Some target -> (
               match hazard env bound target with
               | Some name -> report e.Typedtree.exp_loc display name
               | None -> ())))
         | _ -> ())
       | _ -> ())
    site.Task_sites.closure;
  List.rev !findings

let check ~waivers (units : Cmt_load.t list) =
  List.concat_map
    (fun (u : Cmt_load.t) ->
       if Cmt_load.is_pool_internal u then []
       else
         match u.Cmt_load.impl with
         | None -> []
         | Some str ->
           let env = Pathx.alias_env_of_structure str in
           List.concat_map (check_site env waivers) (Task_sites.collect env str))
    units
