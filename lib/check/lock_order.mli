(** C4 — lock-order: cycles and committed-order inversions in the
    project lock graph (see {!Concur.edges}). *)

val rule : string

(** Parse a lock-order spec: one lock name per line, outermost first,
    ['#'] comments and blank lines ignored; duplicate names rejected. *)
val spec_of_string : string -> (string list, string) result

val load_spec : string -> (string list, string) result

(** [check ~waivers ~spec project]: error findings for every edge that
    closes a cycle, and for every non-cycle edge inverting [spec]'s
    ranking (edges with an unranked endpoint are cycle-checked only).
    The [lock-order] waiver token suppresses per line. *)
val check :
  waivers:Waivers.t ->
  spec:string list ->
  Concur.project ->
  Merlin_lint.Finding.t list
