(* C5 — blocking-under-lock.

   A call that can block indefinitely (socket ops, joins, pool waits —
   the table lives in Concur.blocking_table) inside a held-lock region
   stalls every other thread contending for that lock for as long as
   the call blocks; under the server's one lock per subsystem that is
   usually the whole daemon.

   [Condition.wait cv m] is the one legitimate way to block while
   holding [m] — the wait releases it.  It releases *only* [m],
   though, so waiting while a second lock is held (or on a mutex other
   than the one the enclosing region holds) keeps that other lock
   pinned for the duration: exactly the finding.  A wait whose mutex
   cannot be named is skipped rather than guessed at.

   Deliberate blocking under a lock (rare, but e.g. a shutdown path
   that joins under a state lock on purpose) is waived in place with
   [check: blocking-ok]. *)

module Finding = Merlin_lint.Finding

let rule = "blocking-under-lock"

let finding ~waivers (loc : Location.t) message =
  let file = loc.Location.loc_start.Lexing.pos_fname in
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  let col =
    loc.Location.loc_start.Lexing.pos_cnum
    - loc.Location.loc_start.Lexing.pos_bol
  in
  if Waivers.waived waivers ~file ~line ~token:"blocking-ok" then None
  else
    Some
      (Finding.make ~file ~line ~col ~rule ~severity:Finding.Warning message)

let check ~waivers project =
  List.filter_map
    (fun (s : Concur.blocking_site) ->
       if String.equal s.Concur.b_prim "Condition.wait" then (
         match s.Concur.b_wait_on with
         | None -> None  (* unnameable mutex: cannot tell good from bad *)
         | Some m -> (
           match
             List.filter
               (fun held -> not (String.equal held m))
               s.Concur.b_held
           with
           | [] -> None  (* the classic wait: only the waited mutex held *)
           | others ->
             finding ~waivers s.Concur.b_loc
               (Printf.sprintf
                  "Condition.wait releases only %s; %s stay(s) held for as \
                   long as the wait blocks — drop the outer lock first \
                   (waive: blocking-ok)"
                  m
                  (String.concat ", " others))))
       else
         finding ~waivers s.Concur.b_loc
           (Printf.sprintf
              "%s can block indefinitely while holding %s; every contender \
               on the lock stalls with it — move the call outside the \
               critical section (waive: blocking-ok)"
              s.Concur.b_prim
              (String.concat ", " s.Concur.b_held)))
    (Concur.blocking_sites project)
