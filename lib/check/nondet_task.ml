(* C7 — nondeterminism in a task closure.

   A closure handed to the pool (or to the flow orchestrator, the
   scheduler, or the hier farm — Task_sites' sink table) must be a
   deterministic function of its captures and arguments, or the
   order-independence contracts break: [Pool.map] stops being
   [List.map], hier routing stops being bit-identical across [-j], and
   a replayed request stops matching its cache entry.  The rule flags
   the first nondeterministic reference inside each task closure — a
   direct source-table hit ([Random.int], [Clock.monotonic_s], ...) or
   a call to a function Purity's fixpoint classified nondeterministic,
   with the call chain in the message.

   Telemetry is the legitimate exception: routing tasks time
   themselves ([Clock.timed] around the inner flow) and the runtime
   field is zeroed out of every determinism comparison.  Such paths
   carry a same-line [check: nondet-ok] waiver — visible, audited,
   grep-able.

   Like C1/C2, lib/exec itself is exempt (the pool's own telemetry is
   the implementation of the timers), and closures reaching a sink
   through a variable are not seen — a documented false negative. *)

module Finding = Merlin_lint.Finding

let rule = "nondet-in-task"

let token = "nondet-ok"

let check_site purity ~unit_name env waivers (site : Task_sites.site) =
  match
    Purity.nondet_use purity ~unit_name env site.Task_sites.closure
  with
  | None -> []
  | Some (loc, trace) ->
    let file = loc.Location.loc_start.Lexing.pos_fname in
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    let col =
      loc.Location.loc_start.Lexing.pos_cnum
      - loc.Location.loc_start.Lexing.pos_bol
    in
    if Waivers.waived waivers ~file ~line ~token then []
    else
      [ Finding.make ~file ~line ~col ~rule ~severity:Finding.Warning
          (Printf.sprintf
             "%s task closure reaches nondeterministic %s; task results \
              must be a pure function of task inputs for order-independent \
              replay — seed it, hoist it out of the task, or waive with \
              nondet-ok if it only feeds telemetry"
             site.Task_sites.sink
             (Purity.render_trace trace)) ]

let check ~waivers ~purity (units : Cmt_load.t list) =
  List.concat_map
    (fun (u : Cmt_load.t) ->
       if Cmt_load.is_pool_internal u then []
       else
         match u.Cmt_load.impl with
         | None -> []
         | Some str ->
           let env = Pathx.alias_env_of_structure str in
           List.concat_map
             (check_site purity ~unit_name:u.Cmt_load.name env waivers)
             (Task_sites.collect env str))
    units
