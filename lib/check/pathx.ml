(* Typedtree path utilities shared by the C1-C3 rules.

   References in cmt files keep the shape the programmer wrote
   ([Merlin_exec.Pool.submit] through the dune alias module,
   [Pool.submit] through a local [module Pool = ...] alias,
   [Merlin_exec__Pool.submit] when the mangled unit leaks through), so
   every rule works on a *normalized* component list: dune's [__]
   separators are split ([Merlin_exec__Pool] -> [Merlin_exec; Pool])
   and local module aliases are expanded to their global targets.
   Matching is then suffix-based, which also makes the rules hold on
   self-contained fixture code that stubs the [Pool] module. *)

let rec flatten_acc acc = function
  | Path.Pident id -> Some (Ident.name id :: acc)
  | Path.Pdot (p, s) -> flatten_acc (s :: acc) p
  | Path.Papply _ -> None
  | Path.Pextra_ty (p, _) -> flatten_acc acc p

(* Path components root-first; [None] for paths through functor
   applications (documented false-negative: first-class functors). *)
let flatten p = flatten_acc [] p

let rec head_ident = function
  | Path.Pident id -> Some id
  | Path.Pdot (p, _) -> head_ident p
  | Path.Papply _ -> None
  | Path.Pextra_ty (p, _) -> head_ident p

(* "Merlin_exec__Pool" -> ["Merlin_exec"; "Pool"]. *)
let split_dune name =
  let n = String.length name in
  let rec cut start i acc =
    if i + 1 >= n then List.rev (String.sub name start (n - start) :: acc)
    else if name.[i] = '_' && name.[i + 1] = '_' then
      let piece = String.sub name start (i - start) in
      let rec skip j = if j < n && name.[j] = '_' then skip (j + 1) else j in
      let next = skip (i + 2) in
      (* keep pieces like "Foo__" (trailing separator) as just "Foo" *)
      if next >= n then List.rev (piece :: acc)
      else cut next next (piece :: acc)
    else cut start (i + 1) acc
  in
  if n = 0 then [] else cut 0 0 []

let normalize comps = List.concat_map split_dune comps

(* Local module-alias environment: [module Pool = Merlin_exec.Pool]
   maps Pool's binder ident to the normalized global target.  Looked up
   by [Ident.same]; the handful of aliases per unit makes a list
   fine. *)
type alias_env = (Ident.t * string list) list ref

let empty_env () : alias_env = ref []

let lookup (env : alias_env) id =
  List.find_map
    (fun (id', target) -> if Ident.same id id' then Some target else None)
    !env

(* Resolve a reference path to normalized global components: global
   heads normalize directly, local heads go through the alias
   environment (chains were resolved at registration time), other
   locals are not global references at all. *)
let resolve (env : alias_env) path =
  match flatten path with
  | None -> None
  | Some comps -> (
    match head_ident path with
    | None -> None
    | Some id ->
      if Ident.global id then Some (normalize comps)
      else (
        match lookup env id with
        | Some prefix -> (
          match comps with
          | _ :: rest -> Some (prefix @ normalize rest)
          | [] -> None)
        | None -> None))

let register_alias (env : alias_env) id path =
  match resolve env path with
  | Some target -> env := (id, target) :: !env
  | None -> ()

(* Collect every local module alias in a structure, nested ones
   included, so later reference resolution can expand them.  Scoping is
   by unique binder ident, so shadowing cannot cross-talk. *)
let alias_env_of_structure str =
  let env = empty_env () in
  let rec register mb_id me =
    match (mb_id, me.Typedtree.mod_desc) with
    | Some id, Typedtree.Tmod_ident (p, _) -> register_alias env id p
    | Some _, Typedtree.Tmod_constraint (inner, _, _, _) ->
      register mb_id inner
    | _ -> ()
  in
  let iter =
    { Tast_iterator.default_iterator with
      module_binding =
        (fun sub mb ->
           register mb.Typedtree.mb_id mb.Typedtree.mb_expr;
           Tast_iterator.default_iterator.module_binding sub mb);
      expr =
        (fun sub e ->
           (match e.Typedtree.exp_desc with
            | Typedtree.Texp_letmodule (id, _, _, me, _) -> register id me
            | _ -> ());
           Tast_iterator.default_iterator.expr sub e) }
  in
  iter.Tast_iterator.structure iter str;
  env

(* [has_suffix ~suffix comps]: the last components of [comps] equal
   [suffix]. *)
let has_suffix ~suffix comps =
  let ls = List.length suffix and lc = List.length comps in
  ls <= lc
  &&
  let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
  List.equal String.equal suffix (drop (lc - ls) comps)

let to_string comps = String.concat "." comps
