(** C5 — blocking-under-lock: known-blocking calls inside held-lock
    regions, including [Condition.wait] on a different mutex than the
    one the region holds.  The [blocking-ok] waiver token suppresses
    per line. *)

val rule : string

val check :
  waivers:Waivers.t -> Concur.project -> Merlin_lint.Finding.t list
