(** Typedtree path utilities for the typed rules: normalization of
    dune-mangled unit names, local module-alias expansion, suffix
    matching.

    Paths through functor applications resolve to [None] everywhere —
    a documented false negative of the typed tier (DESIGN.md,
    "Correctness tooling"). *)

(** Path components root-first; [None] through functor applications. *)
val flatten : Path.t -> string list option

val head_ident : Path.t -> Ident.t option

(** ["Merlin_exec__Pool"] to [["Merlin_exec"; "Pool"]]. *)
val split_dune : string -> string list

(** {!split_dune} applied to every component. *)
val normalize : string list -> string list

(** Local [module X = Global.Path] aliases of one unit, keyed by binder
    ident (so shadowing cannot cross-talk). *)
type alias_env

(** Collect every local module alias in a structure (nested included). *)
val alias_env_of_structure : Typedtree.structure -> alias_env

(** Resolve a reference to normalized global components: global heads
    directly, local heads through the alias environment; plain locals
    are [None]. *)
val resolve : alias_env -> Path.t -> string list option

val has_suffix : suffix:string list -> string list -> bool

val to_string : string list -> string
