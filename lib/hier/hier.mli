(** Hierarchical buffered routing by two-level decomposition (Flow IV's
    engine).

    The flat DP flows blow up combinatorially beyond ~20 sinks.  This
    module scales them to 100–2000-sink nets with the Held & Kämmerling
    two-level recipe: {!Cluster.partition} the sinks, route every
    cluster independently with a caller-supplied flat router (farmed
    across the {!Merlin_exec.Pool} — clusters are independent), then
    model each routed cluster as a {e pseudo-sink} (position = the
    cluster tree's attachment point, cap = the load seen there, required
    time = the required time achieved there, both from
    {!Merlin_rtree.Eval.subtree}) and route the top-level net over the
    pseudo-sinks with the same machinery.  When the pseudo-sink net is
    itself too big for a flat flow (a 1000-sink net yields ~63 cluster
    roots), the two-level step is applied to it recursively — the
    decomposition depth is reported in [levels].  The cluster trees are
    stitched back under the top-level leaves and the result re-verified
    structurally ({!Merlin_rtree.Check.covers}) and electrically
    ({!Merlin_rtree.Eval.net}).

    The module is parametric in the router callback, so it sits below
    [lib/flows] in the dependency order and never constrains which flat
    algorithm runs per part.  Determinism: clustering is deterministic,
    [Pool.map] is deterministic for every pool size, and stitching is
    order-preserving — so the output is bit-identical with and without a
    pool, at any [-j]. *)

open Merlin_tech
open Merlin_net
open Merlin_rtree

(** Which part of the hierarchy a [route] callback invocation is
    solving: the whole (sub-)net when clustering yields a single
    cluster, cluster [i] of the current level, or a top-level net over
    pseudo-sinks.  Informational — deeper recursion levels reuse
    [Cluster_part] for their pseudo-sink groups and bottom out in a
    [Flat] call. *)
type part = Flat | Cluster_part of int | Top

type 'r t = {
  tree : Rtree.t;        (** the stitched full tree over the real sinks *)
  parts : 'r array;      (** every router-callback result, in invocation
                             order: first-level clusters first, then the
                             deeper levels down to the root-most route *)
  top : 'r option;       (** the root-most route; [None] iff the whole
                             net was routed flat ([levels = 1]) *)
  sizes : int array;     (** sinks per first-level cluster *)
  n_clusters : int;      (** first-level cluster count *)
  levels : int;          (** decomposition depth: 1 = flat, 2 = clusters
                             plus a flat top, 3+ = the top net was
                             decomposed again *)
  root_req : float;      (** required time at the driver input of the
                             stitched tree, ps (re-verification) *)
}

(** [route ~tech ~cluster ?pool ~route ~tree_of net] — the callback
    [route part subnet] must return a routed result for [subnet] whose
    tree [tree_of result] covers exactly [subnet]'s sinks.  Cluster
    sub-nets keep the original sink positions/caps/reqs but re-index ids
    to [0 .. m-1] (ascending original id); their source is the net
    source clamped into the cluster's bounding box, their driver is the
    net's driver.  With [?pool] the cluster calls of each level run on
    the pool ([Pool.map ~chunk:1]); without, sequentially — same result
    either way.

    Raises [Failure] if a stitched tree fails [Check.covers] (a router
    callback returned a tree not covering its sub-net). *)
val route :
  tech:Tech.t ->
  cluster:Cluster.config ->
  ?pool:Merlin_exec.Pool.t ->
  route:(part -> Net.t -> 'r) ->
  tree_of:('r -> Rtree.t) ->
  Net.t ->
  'r t
