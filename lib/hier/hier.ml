open Merlin_geometry
open Merlin_net
open Merlin_rtree

type part = Flat | Cluster_part of int | Top

type 'r t = {
  tree : Rtree.t;
  parts : 'r array;
  top : 'r option;
  sizes : int array;
  n_clusters : int;
  levels : int;
  root_req : float;
}

let clamp v lo hi = min (max v lo) hi

(* The cluster's virtual source: the net source pulled into the cluster
   bounding box, so the flat router builds the group facing its driver
   (the top level decides the real attachment afterwards). *)
let cluster_source (net : Net.t) pts =
  let box = Rect.bounding_box pts in
  Point.make
    (clamp net.Net.source.Point.x box.Rect.lo.Point.x box.Rect.hi.Point.x)
    (clamp net.Net.source.Point.y box.Rect.lo.Point.y box.Rect.hi.Point.y)

let sub_net (net : Net.t) ~index ids =
  let pts = Array.to_list (Array.map (fun id -> (Net.sink net id).Sink.pt) ids) in
  let sinks =
    Array.to_list
      (Array.mapi
         (fun j id ->
           let s = Net.sink net id in
           Sink.make ~id:j ~pt:s.Sink.pt ~cap:s.Sink.cap ~req:s.Sink.req)
         ids)
  in
  Net.make
    ~name:(Printf.sprintf "%s#c%d" net.Net.name index)
    ~source:(cluster_source net pts) ~driver:net.Net.driver sinks

(* Map a routed cluster tree's local leaves back to the original sinks. *)
let restore (net : Net.t) ids tree =
  let rec go = function
    | Rtree.Leaf s -> Rtree.Leaf (Net.sink net ids.(s.Sink.id))
    | Rtree.Node n ->
      Rtree.Node { n with Rtree.children = List.map go n.Rtree.children }
  in
  go tree

(* Substitute cluster subtrees for the top-level pseudo-sink leaves. *)
let stitch top_tree restored =
  let rec go = function
    | Rtree.Leaf s -> restored.(s.Sink.id)
    | Rtree.Node n ->
      Rtree.Node { n with Rtree.children = List.map go n.Rtree.children }
  in
  go top_tree

let verify (net : Net.t) tree =
  match Check.covers net tree with
  | Ok () -> ()
  | Error errs ->
    failwith
      (Format.asprintf "Hier.route: stitched tree invalid: %a"
         (Format.pp_print_list ~pp_sep:Format.pp_print_space Check.pp_error)
         errs)

let pmap pool f xs =
  match pool with
  | None -> List.map f xs
  | Some p -> Merlin_exec.Pool.map ~chunk:1 p f xs

let route ~tech ~cluster ?pool ~route ~tree_of (net : Net.t) =
  let rec go (net : Net.t) =
    let clusters = Cluster.partition cluster net in
    let k = Array.length clusters in
    let sizes = Array.map Array.length clusters in
    if k <= 1 then begin
      let r = route Flat net in
      let tree = tree_of r in
      verify net tree;
      let ev = Eval.net tech net tree in
      { tree;
        parts = [| r |];
        top = None;
        sizes;
        n_clusters = 1;
        levels = 1;
        root_req = ev.Eval.root_req }
    end
    else begin
      let subs =
        List.init k (fun i -> (i, sub_net net ~index:i clusters.(i)))
      in
      let cluster_parts =
        Array.of_list
          (pmap pool (fun (i, sub) -> route (Cluster_part i) sub) subs)
      in
      let restored =
        Array.mapi
          (fun i r -> restore net clusters.(i) (tree_of r))
          cluster_parts
      in
      let pseudo =
        Array.to_list
          (Array.mapi
             (fun i sub ->
               let ev = Eval.subtree tech sub in
               Sink.make ~id:i ~pt:(Rtree.attach_point sub) ~cap:ev.Eval.load
                 ~req:ev.Eval.req)
             restored)
      in
      let top_net =
        Net.make ~name:(net.Net.name ^ "#top") ~source:net.Net.source
          ~driver:net.Net.driver pseudo
      in
      (* The net over cluster roots can itself be too big for a flat
         flow (63 pseudo-sinks on a 1000-sink net): decompose it again
         whenever clustering would strictly shrink it.  The guard makes
         termination structural — [k_for] is monotone, so a forced
         [n_clusters = k] (no progress) falls through to a flat top
         route instead of recursing forever. *)
      let top_tree, top, tail_parts, levels =
        if Cluster.k_for cluster ~n_sinks:k < k then begin
          let sub = go top_net in
          (* The recursion bottoms out in a flat route ([sub.top = None],
             [sub.parts] a singleton): that innermost result is the
             root-most route of the whole hierarchy. *)
          let root_route =
            match sub.top with
            | Some r -> r
            | None -> sub.parts.(0)
          in
          (sub.tree, Some root_route, sub.parts, sub.levels + 1)
        end
        else begin
          let r = route Top top_net in
          let tree = tree_of r in
          verify top_net tree;
          (tree, Some r, [| r |], 2)
        end
      in
      let tree = stitch top_tree restored in
      verify net tree;
      let ev = Eval.net tech net tree in
      { tree;
        parts = Array.append cluster_parts tail_parts;
        top;
        sizes;
        n_clusters = k;
        levels;
        root_req = ev.Eval.root_req }
    end
  in
  go net
