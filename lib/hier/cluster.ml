open Merlin_geometry
open Merlin_net

type strategy = Kmeans | Sweep

type config = {
  target_size : int;
  n_clusters : int option;
  strategy : strategy;
  max_iters : int;
}

let default =
  { target_size = 10; n_clusters = None; strategy = Kmeans; max_iters = 16 }

let k_for cfg ~n_sinks =
  if cfg.target_size < 1 then invalid_arg "Cluster.k_for: target_size < 1";
  let k =
    match cfg.n_clusters with
    | Some k -> k
    | None -> (n_sinks + cfg.target_size - 1) / cfg.target_size
  in
  max 1 (min k n_sinks)

(* Contiguous runs of the x-sweep order: cluster j gets [n/k] sinks plus
   one of the [n mod k] leftovers, left to right. *)
let sweep_groups ~k (net : Net.t) =
  let order = Merlin_order.Heuristics.by_x_sweep net in
  let n = Array.length order in
  let base = n / k and extra = n mod k in
  let pos = ref 0 in
  Array.init k (fun j ->
      let size = base + if j < extra then 1 else 0 in
      let g = Array.sub order !pos size in
      pos := !pos + size;
      Array.sort Int.compare g;
      g)

(* Lloyd's algorithm with deterministic tie-breaking.  Seeds are the
   midpoints of k equal strides through the x-sweep order, so they span
   the layout without any randomness; assignment ties go to the lower
   center index; a cluster emptied by an update is reseeded with the
   sink farthest from its current center (lowest id on ties), at most
   once per sink per round. *)
let kmeans_groups ~k ~max_iters (net : Net.t) =
  let n = Net.n_sinks net in
  let pts = Array.map (fun s -> s.Sink.pt) net.Net.sinks in
  let order = Merlin_order.Heuristics.by_x_sweep net in
  let centers =
    Array.init k (fun j -> pts.(order.((((2 * j) + 1) * n) / (2 * k))))
  in
  let assign = Array.make n 0 in
  let assign_pass () =
    let changed = ref false in
    for i = 0 to n - 1 do
      let best = ref 0 and best_d = ref max_int in
      for j = 0 to k - 1 do
        let d = Point.manhattan pts.(i) centers.(j) in
        if d < !best_d then (
          best_d := d;
          best := j)
      done;
      if !best <> assign.(i) then (
        changed := true;
        assign.(i) <- !best)
    done;
    !changed
  in
  ignore (assign_pass ());
  let iter = ref 0 and moving = ref true in
  while !moving && !iter < max_iters do
    incr iter;
    let members = Array.make k [] in
    for i = n - 1 downto 0 do
      members.(assign.(i)) <- pts.(i) :: members.(assign.(i))
    done;
    let reseeded = Array.make n false in
    for j = 0 to k - 1 do
      match members.(j) with
      | [] ->
        let far = ref (-1) and far_d = ref (-1) in
        for i = 0 to n - 1 do
          if not reseeded.(i) then begin
            let d = Point.manhattan pts.(i) centers.(assign.(i)) in
            if d > !far_d then (
              far_d := d;
              far := i)
          end
        done;
        if !far >= 0 then (
          reseeded.(!far) <- true;
          centers.(j) <- pts.(!far))
      | ms -> centers.(j) <- Point.center_of_mass ms
    done;
    moving := assign_pass ()
  done;
  let groups = Array.make k [] in
  for i = n - 1 downto 0 do
    groups.(assign.(i)) <- i :: groups.(assign.(i))
  done;
  (* Duplicate centers can leave a group empty (ties go to the lower
     index); drop those rather than emit empty clusters. *)
  Array.of_list
    (List.filter_map
       (function [] -> None | g -> Some (Array.of_list g))
       (Array.to_list groups))

(* Geometry can hand k-means a group far above [target_size] (a dense
   blob attracts one center), and the flat DP cost per cluster is
   superlinear in its size — one oversized cluster dominates the whole
   run.  Split any such group into equal chunks along its local x-sweep
   (x, then y, then id), capping every routed cluster at [target].
   Chunks keep the ascending-id invariant.  Only applied when the
   cluster count is derived from [target_size]; a forced [n_clusters]
   is exact and left alone. *)
let split_oversized ~target (net : Net.t) groups =
  let sweep_cmp a b =
    let pa = (Net.sink net a).Sink.pt and pb = (Net.sink net b).Sink.pt in
    let c = Int.compare pa.Point.x pb.Point.x in
    if c <> 0 then c
    else
      let c = Int.compare pa.Point.y pb.Point.y in
      if c <> 0 then c else Int.compare a b
  in
  let split g =
    let len = Array.length g in
    if len <= target then [ g ]
    else begin
      let by_sweep = Array.copy g in
      Array.sort sweep_cmp by_sweep;
      let parts = (len + target - 1) / target in
      let base = len / parts and extra = len mod parts in
      let pos = ref 0 in
      List.init parts (fun j ->
          let size = base + if j < extra then 1 else 0 in
          let chunk = Array.sub by_sweep !pos size in
          pos := !pos + size;
          Array.sort Int.compare chunk;
          chunk)
    end
  in
  Array.of_list (List.concat_map split (Array.to_list groups))

let partition cfg (net : Net.t) =
  if cfg.target_size < 1 then invalid_arg "Cluster.partition: target_size < 1";
  if cfg.max_iters < 0 then invalid_arg "Cluster.partition: max_iters < 0";
  let n = Net.n_sinks net in
  let k = k_for cfg ~n_sinks:n in
  if k = 1 then [| Array.init n Fun.id |]
  else
    match cfg.strategy with
    | Sweep -> sweep_groups ~k net
    | Kmeans ->
      let groups = kmeans_groups ~k ~max_iters:cfg.max_iters net in
      (match cfg.n_clusters with
       | Some _ -> groups
       | None -> split_oversized ~target:cfg.target_size net groups)
