(** Deterministic sink clustering for the two-level hierarchical flow
    (Held & Kämmerling style): partition a net's sinks into geometric
    groups small enough for the DP-based flat flows to route.

    Both strategies are fully deterministic: geometric k-means is seeded
    by striding the {!Merlin_order.Heuristics.by_x_sweep} order (no
    randomness), nearest-center assignment breaks distance ties toward
    the lower center index, and empty clusters are reseeded with the
    farthest-from-center sink (ties toward the lower sink id). *)

open Merlin_net

(** [Kmeans] — Lloyd iterations on the Manhattan plane with
    center-of-mass centroids.  [Sweep] — split the x-sweep sink order
    into near-equal contiguous runs; cheaper, and the fallback shape the
    k-means seeding starts from. *)
type strategy = Kmeans | Sweep

type config = {
  target_size : int;       (** desired sinks per cluster (when
                               [n_clusters] is [None]) *)
  n_clusters : int option; (** force the cluster count, clamped to
                               [1 .. n_sinks] *)
  strategy : strategy;
  max_iters : int;         (** Lloyd iteration cap ([Kmeans] only) *)
}

(** [target_size = 10], [n_clusters = None], [Kmeans], [max_iters = 16]. *)
val default : config

(** The cluster count [partition] aims for, before empty-cluster
    pruning and oversize splitting: [n_clusters] clamped to
    [1 .. n_sinks], or [ceil (n_sinks / target_size)].  Also the
    hierarchical flow's recursion guard: a config under which
    [k_for ~n_sinks:k < k] fails cannot shrink a k-sink net further. *)
val k_for : config -> n_sinks:int -> int

(** [partition cfg net] splits the sink ids [0 .. n-1] into disjoint,
    nonempty groups covering every sink.  Each group is sorted by sink
    id; the groups themselves are in deterministic (seed-index) order.
    When the count is derived from [target_size] (and the strategy is
    [Kmeans]), groups larger than [target_size] are split into equal
    chunks along their local x-sweep, so no group exceeds
    [target_size]; a forced [n_clusters] is honored exactly instead.
    Raises [Invalid_argument] if [target_size < 1] or [max_iters < 0]. *)
val partition : config -> Net.t -> int array array
