(** Startup-only GC tuning for parallel runs.

    OCaml 5 minor collections are stop-the-world across every running
    domain, so allocation-heavy parallel work under the stock 256k-word
    minor heap is barrier-bound (measured 3.4x on the Table-1 bench at
    4 domains).  The minor-heap reservation is fixed when the runtime
    boots and {e cannot} be grown by [Gc.set] afterwards — it only
    changes what [Gc.get] reports.  The working lever is
    [OCAMLRUNPARAM=s=<words>] in the environment at exec time. *)

(** [true] iff [OCAMLRUNPARAM] already carries an [s=] entry, i.e. the
    minor heap was chosen by the user (or by a previous
    {!ensure_minor_heap} re-exec). *)
val has_minor_heap_setting : unit -> bool

(** [ensure_minor_heap ?words ()] re-execs the current binary with
    [OCAMLRUNPARAM] augmented by [s=words] (default 4M words = 32 MB
    per domain) unless an [s=] entry is already present.  Call it at
    startup, before spawning domains, when about to run parallel work.
    Returns normally when the setting is already in place or when exec
    fails; never returns when the re-exec happens. *)
val ensure_minor_heap : ?words:int -> unit -> unit
