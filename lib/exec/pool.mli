(** Fixed-size domain pool: futures, deterministic parallel map,
    per-task timeouts and telemetry.

    Built on [Domain] + [Mutex]/[Condition] only (no domainslib).  The
    design rules:

    - {b Determinism.}  {!map} returns results in input order and, for
      an effect-free [f], its output is bit-identical to [List.map f]
      for every pool size and chunk size.  Scheduling only decides
      {e when} each element is computed, never {e what}.
    - {b Helping await.}  {!await} first drains queued tasks itself
      before blocking, so a task that submits subtasks and awaits them
      can never deadlock the pool, for any pool size (including 0
      worker domains, where the caller executes everything inline at
      await time).
    - {b Exception transparency.}  An exception raised inside a task is
      captured with its backtrace and re-raised at {!await}.
    - {b Timeouts abandon, they do not kill.}  {!await_timeout} on an
      expired task returns {!Timed_out}; a queued task is cancelled in
      place, a running one keeps its domain until it finishes and its
      result is discarded.  OCaml offers no safe preemption, so a
      budget bounds the {e caller's} wait, not the worker's work. *)

type t

(** [create ~domains ()] spawns [domains] worker domains (default
    [Domain.recommended_domain_count ()]).  [domains = 0] is legal: the
    pool then executes tasks in the caller via the helping {!await}.
    Raises [Invalid_argument] outside [0, 512].

    Allocation-heavy parallel work wants a larger minor heap than the
    stock 256k words — OCaml 5 minor collections stop {e all} domains —
    and that can only be set at process startup; see
    {!Runparam.ensure_minor_heap}. *)
val create : ?domains:int -> unit -> t

(** Worker-domain count given to {!create}. *)
val size : t -> int

(** [shutdown t] drains the queue, joins the workers and rejects any
    later {!submit}.  Idempotent. *)
val shutdown : t -> unit

(** [with_pool ?domains f] runs [f pool] and shuts the pool down on the
    way out, exception or not. *)
val with_pool : ?domains:int -> (t -> 'a) -> 'a

(** {1 Futures} *)

type 'a future

(** Raised by {!await} on a future whose task was cancelled before it
    started. *)
exception Task_cancelled

(** [submit t f] enqueues [f] and returns its future.  Raises
    [Invalid_argument] after {!shutdown}. *)
val submit : t -> (unit -> 'a) -> 'a future

(** [await fut] blocks until the task finishes, helping to execute
    other queued tasks while it waits.  Re-raises the task's exception
    with its original backtrace; raises {!Task_cancelled} for a future
    killed by {!cancel}. *)
val await : 'a future -> 'a

(** [cancel fut] prevents a still-queued task from ever running; [true]
    iff it was removed before any domain picked it up (a started task
    cannot be stopped). *)
val cancel : 'a future -> bool

type 'a outcome =
  | Done of 'a
  | Timed_out
  | Failed of exn

(** [await_timeout ~timeout_s fut] waits at most [timeout_s] monotonic
    seconds (sleep-polling, never stealing work — stealing an unbounded
    task here would overshoot the deadline).  On expiry the task is
    cancelled if still queued, abandoned if running, and the pool's
    [timed_out] counter is bumped. *)
val await_timeout : timeout_s:float -> 'a future -> 'a outcome

(** [run_timeout t ~timeout_s f] = [await_timeout ~timeout_s (submit t f)]. *)
val run_timeout : t -> timeout_s:float -> (unit -> 'a) -> 'a outcome

(** {1 Deterministic parallel map} *)

(** [map ?chunk t f xs] applies [f] to every element of [xs] in
    parallel, [chunk] elements per task (default: input split in about
    4 tasks per executor), and returns the results in input order.  For
    effect-free [f] the result is bit-identical to [List.map f xs].  If
    any element raises, the first failure in input-chunk order is
    re-raised after all chunks settle.  Raises [Invalid_argument] on
    [chunk < 1]. *)
val map : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list

(** {1 Telemetry} *)

(** Log-decade histogram buckets, in seconds: [< 1us, < 10us, ...,
    < 10 s, >= 10 s].  Index [i] counts durations in decade [i]. *)
val hist_buckets : int

type domain_stat = {
  tasks : int;     (** tasks executed on this slot *)
  busy_s : float;  (** seconds spent inside task bodies *)
}

type stats = {
  domains : int;           (** worker-domain count *)
  age_s : float;           (** seconds since {!create} *)
  submitted : int;
  completed : int;         (** finished without raising *)
  failed : int;            (** finished by raising *)
  cancelled : int;         (** killed while queued *)
  timed_out : int;         (** {!await_timeout} expiries *)
  total_queue_wait_s : float;
  max_queue_wait_s : float;
  total_run_s : float;
  max_run_s : float;
  queue_wait_hist : int array;  (** length {!hist_buckets} *)
  run_hist : int array;         (** length {!hist_buckets} *)
  per_domain : domain_stat array;
      (** length [domains + 1]; the extra final slot counts tasks
          executed by helping/awaiting callers rather than workers *)
}

(** Consistent snapshot of the pool's counters. *)
val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
