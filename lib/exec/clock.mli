(** Monotonic time source for every runtime/speedup measurement.

    [Unix.gettimeofday] is wall-clock time: an NTP step (or a suspended
    container) moves it arbitrarily, which corrupts runtime columns and
    timeout deadlines.  All timing in this repository goes through the
    OS monotonic clock instead (CLOCK_MONOTONIC via the bechamel stub,
    which is a noalloc external). *)

(** Seconds on the monotonic clock.  The origin is unspecified (boot
    time on Linux); only differences are meaningful. *)
val monotonic_s : unit -> float

(** [elapsed_s t0] = [monotonic_s () -. t0]. *)
val elapsed_s : float -> float

(** [timed f] runs [f ()] and returns its result with the elapsed
    monotonic seconds. *)
val timed : (unit -> 'a) -> 'a * float
