let monotonic_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let elapsed_s t0 = monotonic_s () -. t0

let timed f =
  let t0 = monotonic_s () in
  let v = f () in
  (v, monotonic_s () -. t0)
