(* The OCaml 5 runtime reserves the minor-heap area for the maximum
   domain count once, at startup, from OCAMLRUNPARAM.  A later
   [Gc.set { minor_heap_size }] updates what [Gc.get] reports but
   cannot grow the reservation, so it silently changes nothing
   (measured: identical minor-collection counts either way).  The only
   reliable lever is the environment at exec time — hence the re-exec
   below. *)

let default_minor_heap_words = 4 * 1024 * 1024

let has_minor_heap_setting () =
  match Sys.getenv_opt "OCAMLRUNPARAM" with
  | None -> false
  | Some s ->
    List.exists
      (fun kv -> String.length kv >= 2 && kv.[0] = 's' && kv.[1] = '=')
      (String.split_on_char ',' s)

let ensure_minor_heap ?(words = default_minor_heap_words) () =
  if not (has_minor_heap_setting ()) then begin
    let setting = Printf.sprintf "s=%d" words in
    let v =
      match Sys.getenv_opt "OCAMLRUNPARAM" with
      | None | Some "" -> setting
      | Some cur -> setting ^ "," ^ cur
    in
    Unix.putenv "OCAMLRUNPARAM" v;
    (* On success exec does not return; the re-executed image sees the
       s= entry and falls through above.  If exec is unavailable
       (e.g. the binary moved), keep going with the stock heap — the
       tuning is a performance matter, never a correctness one. *)
    try Unix.execv Sys.executable_name Sys.argv
    with Unix.Unix_error (_, _, _) -> ()
  end
