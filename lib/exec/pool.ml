(* Domain pool on stdlib primitives only.

   Locking protocol: three independent mutexes, never held together —
   [qm] (task queue), each future's [fm] (its state machine), [sm]
   (telemetry).  Task bodies run with no lock held.

   Deadlock-freedom of the helping [await] rests on one discipline the
   API enforces by construction: a future exists only after its task is
   submitted.  So when [await fut] runs, [fut]'s task is queued, running
   or settled.  The helper blocks on [fut.fcv] only after observing an
   empty queue, at which point the task is running on some other domain
   (or settled), and that domain's completion broadcast wakes it up.
   Inductively the most deeply nested await across all domains always
   sits above a task that is actually executing, so progress is never
   lost, for any pool size. *)

exception Task_cancelled

type 'a state =
  | Queued
  | Started
  | Settled of ('a, exn * Printexc.raw_backtrace) result
  | Dropped

type entry = { exec : slot:int -> unit }

let hist_buckets = 9

(* Upper decade edges in seconds; durations >= 10 s land in the last
   bucket. *)
let hist_edges = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 |]

let bucket_of s =
  let rec go i =
    if i >= Array.length hist_edges then i
    else if s < hist_edges.(i) then i
    else go (i + 1)
  in
  go 0

type domain_stat = { tasks : int; busy_s : float }

type stats = {
  domains : int;
  age_s : float;
  submitted : int;
  completed : int;
  failed : int;
  cancelled : int;
  timed_out : int;
  total_queue_wait_s : float;
  max_queue_wait_s : float;
  total_run_s : float;
  max_run_s : float;
  queue_wait_hist : int array;
  run_hist : int array;
  per_domain : domain_stat array;
}

type t = {
  n_domains : int;
  created_at : float;
  q : entry Queue.t;
  qm : Mutex.t;
  qcv : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
  (* telemetry; every mutable field below is guarded by [sm] *)
  sm : Mutex.t;
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable cancelled : int;
  mutable timed_out : int;
  mutable total_wait : float;
  mutable max_wait : float;
  mutable total_run : float;
  mutable max_run : float;
  wait_hist : int array;
  run_hist_ : int array;
  slot_tasks : int array;
  slot_busy : float array;
}

type 'a future = {
  pool : t;
  fm : Mutex.t;
  fcv : Condition.t;
  mutable st : 'a state;
  submitted_at : float;
}

let size t = t.n_domains

(* ---- telemetry ---- *)

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let record_exec pool ~slot ~wait ~run ~ok =
  locked pool.sm (fun () ->
      if ok then pool.completed <- pool.completed + 1
      else pool.failed <- pool.failed + 1;
      pool.total_wait <- pool.total_wait +. wait;
      pool.max_wait <- Float.max pool.max_wait wait;
      pool.total_run <- pool.total_run +. run;
      pool.max_run <- Float.max pool.max_run run;
      pool.wait_hist.(bucket_of wait) <- pool.wait_hist.(bucket_of wait) + 1;
      pool.run_hist_.(bucket_of run) <- pool.run_hist_.(bucket_of run) + 1;
      pool.slot_tasks.(slot) <- pool.slot_tasks.(slot) + 1;
      pool.slot_busy.(slot) <- pool.slot_busy.(slot) +. run)

let stats pool =
  locked pool.sm (fun () ->
      { domains = pool.n_domains;
        age_s = Clock.elapsed_s pool.created_at;
        submitted = pool.submitted;
        completed = pool.completed;
        failed = pool.failed;
        cancelled = pool.cancelled;
        timed_out = pool.timed_out;
        total_queue_wait_s = pool.total_wait;
        max_queue_wait_s = pool.max_wait;
        total_run_s = pool.total_run;
        max_run_s = pool.max_run;
        queue_wait_hist = Array.copy pool.wait_hist;
        run_hist = Array.copy pool.run_hist_;
        per_domain =
          Array.init
            (pool.n_domains + 1)
            (fun i -> { tasks = pool.slot_tasks.(i); busy_s = pool.slot_busy.(i) }) })

let hist_labels =
  [| "<1us"; "<10us"; "<100us"; "<1ms"; "<10ms"; "<100ms"; "<1s"; "<10s";
     ">=10s" |]

let pp_hist ppf h =
  Array.iteri
    (fun i n -> if n > 0 then Format.fprintf ppf " %s:%d" hist_labels.(i) n)
    h

let pp_stats ppf (s : stats) =
  let executed = s.completed + s.failed in
  let mean total = if executed = 0 then 0.0 else total /. float_of_int executed in
  Format.fprintf ppf
    "@[<v>pool: %d domains, age %.2fs@,\
     tasks: %d submitted, %d completed, %d failed, %d cancelled, %d timed out@,\
     queue wait: mean %.2gs, max %.2gs; hist:%a@,\
     run time:   mean %.2gs, max %.2gs; hist:%a@,"
    s.domains s.age_s s.submitted s.completed s.failed s.cancelled s.timed_out
    (mean s.total_queue_wait_s) s.max_queue_wait_s pp_hist s.queue_wait_hist
    (mean s.total_run_s) s.max_run_s pp_hist s.run_hist;
  Array.iteri
    (fun i d ->
       let label =
         if i < s.domains then Printf.sprintf "domain %d" i else "helpers "
       in
       Format.fprintf ppf "%s: %d tasks, busy %.2fs (%.0f%%)@," label d.tasks
         d.busy_s
         (if s.age_s > 0.0 then 100.0 *. d.busy_s /. s.age_s else 0.0))
    s.per_domain;
  Format.fprintf ppf "@]"

(* ---- queue ---- *)

let enqueue pool entry =
  Mutex.lock pool.qm;
  if pool.closed then begin
    Mutex.unlock pool.qm;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push entry pool.q;
  Condition.signal pool.qcv;
  Mutex.unlock pool.qm

(* Pop one queued task and run it on [slot]; false when the queue was
   empty at the time of the check. *)
let try_help pool ~slot =
  Mutex.lock pool.qm;
  let e = Queue.take_opt pool.q in
  Mutex.unlock pool.qm;
  match e with
  | Some e ->
    e.exec ~slot;
    true
  | None -> false

let rec worker_loop pool slot =
  Mutex.lock pool.qm;
  while Queue.is_empty pool.q && not pool.closed do
    Condition.wait pool.qcv pool.qm
  done;
  let e = Queue.take_opt pool.q in
  Mutex.unlock pool.qm;
  match e with
  | None -> () (* closed and drained *)
  | Some e ->
    e.exec ~slot;
    worker_loop pool slot

(* ---- lifecycle ---- *)

let create ?domains () =
  let n =
    match domains with
    | Some n -> n
    | None -> Domain.recommended_domain_count ()
  in
  if n < 0 || n > 512 then
    invalid_arg "Pool.create: domains must be within [0, 512]";
  let pool =
    { n_domains = n;
      created_at = Clock.monotonic_s ();
      q = Queue.create ();
      qm = Mutex.create ();
      qcv = Condition.create ();
      closed = false;
      workers = [||];
      sm = Mutex.create ();
      submitted = 0;
      completed = 0;
      failed = 0;
      cancelled = 0;
      timed_out = 0;
      total_wait = 0.0;
      max_wait = 0.0;
      total_run = 0.0;
      max_run = 0.0;
      wait_hist = Array.make hist_buckets 0;
      run_hist_ = Array.make hist_buckets 0;
      slot_tasks = Array.make (n + 1) 0;
      slot_busy = Array.make (n + 1) 0.0 }
  in
  pool.workers <-
    Array.init n (fun i -> Domain.spawn (fun () -> worker_loop pool i));
  pool

let shutdown pool =
  Mutex.lock pool.qm;
  if pool.closed then Mutex.unlock pool.qm
  else begin
    pool.closed <- true;
    Condition.broadcast pool.qcv;
    Mutex.unlock pool.qm;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* ---- futures ---- *)

let submit pool f =
  let fut =
    { pool;
      fm = Mutex.create ();
      fcv = Condition.create ();
      st = Queued;
      submitted_at = Clock.monotonic_s () }
  in
  let exec ~slot =
    Mutex.lock fut.fm;
    match fut.st with
    | Dropped | Started | Settled _ ->
      (* Dropped: cancelled while queued.  Started/Settled cannot occur:
         the queue hands each entry to exactly one executor. *)
      Mutex.unlock fut.fm
    | Queued ->
      fut.st <- Started;
      Mutex.unlock fut.fm;
      let t0 = Clock.monotonic_s () in
      let res =
        match f () with
        | v -> Ok v
        | exception exn -> Error (exn, Printexc.get_raw_backtrace ())
      in
      let t1 = Clock.monotonic_s () in
      record_exec pool ~slot ~wait:(t0 -. fut.submitted_at) ~run:(t1 -. t0)
        ~ok:(match res with Ok _ -> true | Error _ -> false);
      Mutex.lock fut.fm;
      fut.st <- Settled res;
      Condition.broadcast fut.fcv;
      Mutex.unlock fut.fm
  in
  locked pool.sm (fun () -> pool.submitted <- pool.submitted + 1);
  enqueue pool { exec };
  fut

let rec await fut =
  Mutex.lock fut.fm;
  match fut.st with
  | Settled (Ok v) ->
    Mutex.unlock fut.fm;
    v
  | Settled (Error (exn, bt)) ->
    Mutex.unlock fut.fm;
    Printexc.raise_with_backtrace exn bt
  | Dropped ->
    Mutex.unlock fut.fm;
    raise Task_cancelled
  | Queued | Started ->
    Mutex.unlock fut.fm;
    (* Help first; block only once the queue is observed empty, at which
       point this future's task is running elsewhere (see header). *)
    if try_help fut.pool ~slot:fut.pool.n_domains then await fut
    else begin
      Mutex.lock fut.fm;
      (match fut.st with
       | Queued | Started -> Condition.wait fut.fcv fut.fm
       | Settled _ | Dropped -> ());
      Mutex.unlock fut.fm;
      await fut
    end

let cancel fut =
  Mutex.lock fut.fm;
  match fut.st with
  | Queued ->
    fut.st <- Dropped;
    Condition.broadcast fut.fcv;
    Mutex.unlock fut.fm;
    locked fut.pool.sm (fun () ->
        fut.pool.cancelled <- fut.pool.cancelled + 1);
    true
  | Started | Settled _ | Dropped ->
    Mutex.unlock fut.fm;
    false

type 'a outcome =
  | Done of 'a
  | Timed_out
  | Failed of exn

let await_timeout ~timeout_s fut =
  let deadline = Clock.monotonic_s () +. timeout_s in
  let rec loop () =
    Mutex.lock fut.fm;
    match fut.st with
    | Settled (Ok v) ->
      Mutex.unlock fut.fm;
      Done v
    | Settled (Error (exn, _)) ->
      Mutex.unlock fut.fm;
      Failed exn
    | Dropped ->
      Mutex.unlock fut.fm;
      Failed Task_cancelled
    | Queued | Started ->
      Mutex.unlock fut.fm;
      if Clock.monotonic_s () >= deadline then begin
        (* Expired: keep a queued task from ever starting; a running one
           is abandoned and its eventual result discarded. *)
        ignore (cancel fut);
        locked fut.pool.sm (fun () ->
            fut.pool.timed_out <- fut.pool.timed_out + 1);
        Timed_out
      end
      else begin
        Unix.sleepf 2e-4;
        loop ()
      end
  in
  loop ()

let run_timeout pool ~timeout_s f = await_timeout ~timeout_s (submit pool f)

(* ---- deterministic map ---- *)

let map ?chunk pool f xs =
  match xs with
  | [] -> []
  | _ :: _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Pool.map: chunk must be >= 1"
      | None -> max 1 (n / (4 * (pool.n_domains + 1)))
    in
    let n_chunks = (n + chunk - 1) / chunk in
    let futs =
      List.init n_chunks (fun ci ->
          submit pool (fun () ->
              let lo = ci * chunk in
              Array.init (min chunk (n - lo)) (fun k -> f arr.(lo + k))))
    in
    (* Await in chunk order: output order is the input order whatever
       the scheduling; the first failing chunk's exception wins. *)
    List.concat_map (fun fu -> Array.to_list (await fu)) futs
