(* Microbenchmark for the batch Pareto-frontier kernel.

     dune exec bench/curve_bench.exe -- [--smoke] [--json FILE]

   Two workloads, both seeded and deterministic:

   - add-vs-builder: P = 8*S candidates whose frontier is exactly S
     (a spine of S pairwise-incomparable points plus dominated noise),
     inserted one by one with the list reference (Curve_reference.add),
     one by one with the array-backed incremental add (Curve.add), and
     in one batch (Curve.Builder.push + build).  S in {16, 64, 256}.

   - join-product: the F x F join of two frontiers of size F, the inner
     loop shape of Star_ptree / Van_ginneken, incremental reference
     versus one batch build.

   Results go to stdout as a table and optionally to a JSON file; the
   before/after summary lives in BENCH_curve.json at the repo root. *)

open Merlin_curves

let smoke = Array.exists (( = ) "--smoke") Sys.argv

let json_path =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = "--json" then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* A spine of exactly [s] pairwise-incomparable points: required time
   descending, load ascending, area descending. *)
let spine s =
  List.init s (fun j ->
      Solution.make
        ~req:(float_of_int (s - j))
        ~load:(float_of_int j)
        ~area:(float_of_int (2 * (s - j)))
        j)

(* Spine plus dominated noise, shuffled: the frontier of the bag is the
   spine, so the surviving-curve size is controlled exactly. *)
let bag ~rand ~mult s =
  let sp = spine s in
  let noise =
    List.concat_map
      (fun (p : int Solution.t) ->
         List.init (mult - 1) (fun _ ->
             Solution.make
               ~req:(p.Solution.req -. (0.5 +. Random.State.float rand 3.0))
               ~load:(p.Solution.load +. (0.5 +. Random.State.float rand 3.0))
               ~area:(p.Solution.area +. (0.5 +. Random.State.float rand 3.0))
               p.Solution.data))
      sp
  in
  let arr = Array.of_list (sp @ noise) in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rand (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  arr

let checksum c = Curve.fold (fun acc s -> acc +. s.Solution.req) 0.0 c

let time_it reps f =
  (* One warm-up call keeps first-use allocation effects out of the
     measurement. *)
  let sink = ref (f ()) in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    sink := f ()
  done;
  let dt = Unix.gettimeofday () -. t0 in
  (dt /. float_of_int reps, !sink)

type row = {
  workload : string;
  frontier : int;
  candidates : int;
  ref_us : float;
  add_us : float;
  batch_us : float;
}

let rows : row list ref = ref []

let report ~workload ~frontier ~candidates ~ref_us ~add_us ~batch_us =
  rows := { workload; frontier; candidates; ref_us; add_us; batch_us } :: !rows;
  Printf.printf "| %-12s | %8d | %10d | %12.1f | %12.1f | %12.1f | %7.1fx |\n%!"
    workload frontier candidates ref_us add_us batch_us (ref_us /. batch_us)

let run_adds ~rand ~reps s =
  let mult = 8 in
  let candidates = bag ~rand ~mult s in
  let n = Array.length candidates in
  let ref_s, ref_out =
    time_it reps (fun () ->
        Array.fold_left Curve_reference.add Curve_reference.empty candidates)
  in
  let add_s, add_out =
    time_it reps (fun () -> Array.fold_left Curve.add Curve.empty candidates)
  in
  let batch_s, batch_out =
    time_it reps (fun () ->
        let bld = Curve.Builder.create () in
        Array.iter (Curve.Builder.add bld) candidates;
        Curve.Builder.build bld)
  in
  let ref_sum =
    List.fold_left
      (fun acc s -> acc +. s.Solution.req)
      0.0
      (Curve_reference.to_list ref_out)
  in
  if
    checksum batch_out <> ref_sum
    || checksum add_out <> ref_sum
    || Curve.size batch_out <> s
  then failwith "Curve_bench.run_adds: implementations disagree";
  report ~workload:"add" ~frontier:s ~candidates:n ~ref_us:(ref_s *. 1e6)
    ~add_us:(add_s *. 1e6) ~batch_us:(batch_s *. 1e6)

let run_join ~reps f =
  let left = spine f
  and right = List.map (fun s -> Solution.map (fun d -> -d) s) (spine f) in
  let join (a : int Solution.t) (b : int Solution.t) =
    ( min a.Solution.req b.Solution.req,
      a.Solution.load +. b.Solution.load,
      a.Solution.area +. b.Solution.area )
  in
  let ref_s, ref_out =
    time_it reps (fun () ->
        List.fold_left
          (fun acc a ->
             List.fold_left
               (fun acc b ->
                  let req, load, area = join a b in
                  Curve_reference.add acc
                    (Solution.make ~req ~load ~area (a.Solution.data, b.Solution.data)))
               acc right)
          Curve_reference.empty left)
  in
  let batch_s, batch_out =
    time_it reps (fun () ->
        let bld = Curve.Builder.create () in
        List.iter
          (fun a ->
             List.iter
               (fun b ->
                  let req, load, area = join a b in
                  Curve.Builder.push bld ~req ~load ~area
                    (a.Solution.data, b.Solution.data))
               right)
          left;
        Curve.Builder.build bld)
  in
  if Curve.size batch_out <> Curve_reference.size ref_out then
    failwith "Curve_bench.run_join: implementations disagree";
  report ~workload:"join-product" ~frontier:f ~candidates:(f * f)
    ~ref_us:(ref_s *. 1e6) ~add_us:nan ~batch_us:(batch_s *. 1e6)

let () =
  let rand = Random.State.make [| 2026; 8; 7 |] in
  let sizes = [ 16; 64; 256 ] in
  let reps s = if smoke then 3 else max 5 (20000 / s) in
  Printf.printf
    "| workload     | frontier | candidates |   ref us/op  |   add us/op  |  batch us/op |  ref/batch |\n";
  Printf.printf
    "|--------------|----------|------------|--------------|--------------|--------------|---------|\n";
  List.iter (fun s -> run_adds ~rand ~reps:(reps s) s) sizes;
  List.iter (fun f -> run_join ~reps:(reps f) f) sizes;
  match json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let row_json r =
      Printf.sprintf
        "    {\"workload\":\"%s\",\"frontier\":%d,\"candidates\":%d,\"ref_us\":%.2f,\"add_us\":%.2f,\"batch_us\":%.2f}"
        r.workload r.frontier r.candidates r.ref_us r.add_us r.batch_us
    in
    Printf.fprintf oc "{\n  \"bench\": \"curve_kernel\",\n  \"rows\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.rev_map row_json !rows));
    close_out oc
