(* Benchmark harness: regenerates the paper's Table 1 and Table 2 plus the
   ablations documented in DESIGN.md, and provides Bechamel micro
   benchmarks ("speed").

     dune exec bench/main.exe -- [table1|table2|hier|curve|serve|ablations|speed|all]
                                 [--full|--smoke] [--seconds N]
                                 [-j N] [--stats] [--json FILE]

   Default is a "quick" profile sized for a laptop-class single core (the
   larger paper nets run with the scaled knob presets of
   Merlin_core.Config); --full uses the paper's own settings where
   feasible and the complete net/circuit list; --smoke is a sub-minute
   subset used by the @bench-smoke dune alias.

   -j N runs the per-net/per-circuit/per-config work on a Merlin_exec
   domain pool with N workers; row order, ratio averages and JSON output
   are independent of N by the pool's deterministic map.  --stats dumps
   the pool telemetry on exit; --json FILE writes the rows of the single
   table being run (with jobs and git rev) for machine-readable perf
   trajectories, e.g. BENCH_table1.json. *)

open Merlin_tech
open Merlin_net
open Merlin_report.Report
module Flows = Merlin_flows.Flows
module FR = Merlin_circuit.Flow_runner
module Pool = Merlin_exec.Pool
module Clock = Merlin_exec.Clock
module Json = Merlin_report.Json

let tech = Tech.default
let buffers = Buffer_lib.default

type opts = {
  full : bool;
  smoke : bool;
  jobs : int;
  show_stats : bool;
  json : string option;
  seconds : float;
}

(* One worker pool for the whole invocation (None when -j 1): tables
   reuse it so --stats aggregates across everything that ran. *)
let pmap pool f xs =
  match pool with
  | None -> List.map f xs
  | Some p -> Pool.map ~chunk:1 p f xs

let progress fmt = Printf.eprintf (fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)
(* ------------------------------------------------------------------ *)

let git_rev () =
  match
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = input_line ic in
    ignore (Unix.close_process_in ic);
    line
  with
  | line -> line
  | exception End_of_file -> "unknown"
  | exception Sys_error _ -> "unknown"
  | exception Unix.Unix_error _ -> "unknown"

(* BENCH_*.json documents are built from the repository's shared JSON
   layer (Merlin_report.Json), the same one behind the metrics wire
   schema and the serving protocol, so every machine-readable artifact
   prints numbers and escapes strings identically. *)

let js s = Json.Str s
let jf f = Json.Num f
let ji i = Json.Num (float_of_int i)

(* Frontier-kernel telemetry: candidate counts per DP step (see
   Star_ptree).  Counts are representation-independent — one increment
   per candidate solution offered to the frontier — so before/after
   kernel comparisons in BENCH_curve.json share the same scale. *)
let counter_fields () =
  let c a = ji (Atomic.get a) in
  let open Merlin_core.Star_ptree in
  [ ("n_join_adds", c n_join_adds); ("n_close_adds", c n_close_adds);
    ("n_pull_adds", c n_pull_adds); ("n_base_adds", c n_base_adds);
    ("n_cells", c n_cells); ("n_pulls", c n_pulls);
    ("n_joins", c n_joins); ("n_join_survivors", c n_join_survivors);
    ("bytes_join", c bytes_join); ("bytes_close", c bytes_close);
    ("bytes_pull", c bytes_pull); ("bytes_base", c bytes_base) ]

let write_json ~opts ~table ~wall_s rows =
  match opts.json with
  | None -> ()
  | Some file ->
    let doc =
      Json.Obj
        ([ ("table", js table);
           ("jobs", ji opts.jobs);
           ("git_rev", js (git_rev ()));
           ("wall_s", jf wall_s) ]
        @ counter_fields ()
        @ [ ("rows", Json.List rows) ])
    in
    let oc = open_out file in
    output_string oc (Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    progress "[%s] wrote %s" table file

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 ~opts pool () =
  let nets = Net_gen.table1_nets tech in
  let nets =
    if opts.full then nets
    else if opts.smoke then
      (* Smoke profile: the small nets only; must stay sub-minute. *)
      List.filter (fun (_, _, net) -> Net.n_sinks net <= 10) nets
    else
      (* Quick profile: skip the largest nets (35-73 sinks); see
         EXPERIMENTS.md for their full-run rows. *)
      List.filter (fun (_, _, net) -> Net.n_sinks net <= 24) nets
  in
  let header =
    [ "circuit"; "net"; "sinks";
      "I:area"; "I:delay"; "I:rt(s)";
      "II:a/I"; "II:d/I"; "II:rt/I";
      "III:a/I"; "III:d/I"; "III:rt/I"; "loops" ]
  in
  let cfg3 net =
    if opts.full && Net.n_sinks net <= 16 then Merlin_core.Config.paper_table1
    else if opts.full then Merlin_core.Config.scaled (Net.n_sinks net)
    else begin
      (* Quick/smoke profiles: tight knobs so the whole table fits a
         coffee break (or a CI smoke slot); --full restores the scaled
         presets. *)
      let base = Merlin_core.Config.scaled (Net.n_sinks net) in
      let iters = if opts.smoke then 1 else 2 in
      let cand = if opts.smoke then 8 else 12 in
      { base with
        Merlin_core.Config.max_iters = iters;
        candidate_limit = min cand base.Merlin_core.Config.candidate_limit;
        max_curve = min 5 base.Merlin_core.Config.max_curve;
        quant_req = Float.max 20.0 base.Merlin_core.Config.quant_req;
        quant_load = Float.max 15.0 base.Merlin_core.Config.quant_load;
        quant_area = Float.max 10.0 base.Merlin_core.Config.quant_area }
    end
  in
  let row (circuit, name, net) =
    progress "[table1] %s %s (n=%d)..." circuit name (Net.n_sinks net);
    let run algo = Flows.run { Flows.tech; buffers; algo } net in
    let m1 = run (Flows.Lttree_ptree { max_fanout = 10 }) in
    let m2 = run (Flows.Ptree_vg { refine_seg = None }) in
    let m3 =
      run
        (Flows.Merlin
           { cfg = Some (cfg3 net);
             objective = Merlin_core.Objective.Best_req })
    in
    (circuit, name, Net.n_sinks net, m1, m2, m3)
  in
  let rows, wall_s = Clock.timed (fun () -> pmap pool row nets) in
  progress "[table1] wall %.2fs (jobs=%d)" wall_s opts.jobs;
  (* Ratios are derived after the parallel map, in row order, so the
     averages are bit-identical for every -j. *)
  let ratios2 =
    List.map
      (fun (_, _, _, m1, m2, _) ->
         ( ratio m2.Flows.area m1.Flows.area,
           ratio m2.Flows.delay m1.Flows.delay,
           ratio m2.Flows.runtime m1.Flows.runtime ))
      rows
  and ratios3 =
    List.map
      (fun (_, _, _, m1, _, m3) ->
         ( ratio m3.Flows.area m1.Flows.area,
           ratio m3.Flows.delay m1.Flows.delay,
           ratio m3.Flows.runtime m1.Flows.runtime ))
      rows
  in
  let cells =
    List.map2
      (fun (circuit, name, sinks, m1, _, m3) ((a2, d2, t2), (a3, d3, t3)) ->
         [ S circuit; S name; I sinks;
           F m1.Flows.area; F m1.Flows.delay; F m1.Flows.runtime;
           R a2; R d2; R t2; R a3; R d3; R t3; I m3.Flows.loops ])
      rows
      (List.combine ratios2 ratios3)
  in
  let avg sel rs = mean (List.map sel rs) in
  let avg_row =
    [ S "Average"; S ""; S ""; S ""; S ""; S "";
      R (avg (fun (a, _, _) -> a) ratios2);
      R (avg (fun (_, d, _) -> d) ratios2);
      R (avg (fun (_, _, t) -> t) ratios2);
      R (avg (fun (a, _, _) -> a) ratios3);
      R (avg (fun (_, d, _) -> d) ratios3);
      R (avg (fun (_, _, t) -> t) ratios3); S "" ]
  in
  print
    ~title:
      "Table 1: per-net buffer area, delay and runtime (Flow I absolute; \
       Flows II/III as ratios over Flow I)"
    ~header (cells @ [ avg_row ]);
  Printf.printf
    "Paper averages for reference: II = 0.71/0.81/1.95, III = 0.88/0.46/13.49\n%!";
  let json_rows =
    List.map
      (fun (circuit, name, sinks, m1, m2, m3) ->
         Json.Obj
           [ ("circuit", js circuit); ("net", js name); ("sinks", ji sinks);
             ("area1", jf m1.Flows.area); ("delay1", jf m1.Flows.delay);
             ("runtime1", jf m1.Flows.runtime);
             ("area2", jf m2.Flows.area); ("delay2", jf m2.Flows.delay);
             ("runtime2", jf m2.Flows.runtime);
             ("area3", jf m3.Flows.area); ("delay3", jf m3.Flows.delay);
             ("runtime3", jf m3.Flows.runtime); ("loops3", ji m3.Flows.loops) ])
      rows
  in
  write_json ~opts ~table:"table1" ~wall_s json_rows

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let table2 ~opts pool () =
  let scale_down = if opts.full then 60 else if opts.smoke then 300 else 200 in
  let circuits =
    List.map (fun (name, _, _, _) -> name) Merlin_circuit.Circuit_gen.table2_specs
  in
  let circuits =
    if opts.full then circuits
    else if opts.smoke then [ "B9" ]
    else (* Quick profile: a representative subset. *)
      [ "C432"; "B9"; "Duke2" ]
  in
  let header =
    [ "circuit"; "gates";
      "I:area"; "I:delay"; "I:rt(s)";
      "II:a/I"; "II:d/I"; "II:rt/I";
      "III:a/I"; "III:d/I"; "III:rt/I" ]
  in
  let row name =
    progress "[table2] %s..." name;
    let netlist =
      Merlin_circuit.Placement.place
        (Merlin_circuit.Circuit_gen.generate ~scale_down ~name ())
    in
    (* Each circuit stays on the sequential per-net schedule (jobs
       unset): row results are identical to a -j 1 run, and -j
       parallelism comes from running circuits concurrently. *)
    let r1 = FR.run ~tech ~buffers ~flow:FR.Flow1 netlist in
    let r2 = FR.run ~tech ~buffers ~flow:FR.Flow2 netlist in
    let r3 = FR.run ~tech ~buffers ~flow:FR.Flow3 netlist in
    (name, Array.length netlist.Merlin_circuit.Netlist.gates, r1, r2, r3)
  in
  let rows, wall_s = Clock.timed (fun () -> pmap pool row circuits) in
  progress "[table2] wall %.2fs (jobs=%d)" wall_s opts.jobs;
  let ratios2 =
    List.map
      (fun (_, _, r1, r2, _) ->
         ( ratio r2.FR.area r1.FR.area,
           ratio r2.FR.delay r1.FR.delay,
           ratio r2.FR.runtime r1.FR.runtime ))
      rows
  and ratios3 =
    List.map
      (fun (_, _, r1, _, r3) ->
         ( ratio r3.FR.area r1.FR.area,
           ratio r3.FR.delay r1.FR.delay,
           ratio r3.FR.runtime r1.FR.runtime ))
      rows
  in
  let cells =
    List.map2
      (fun (name, gates, r1, _, _) ((a2, d2, t2), (a3, d3, t3)) ->
         [ S name; I gates;
           F r1.FR.area; F r1.FR.delay; F r1.FR.runtime;
           R a2; R d2; R t2; R a3; R d3; R t3 ])
      rows
      (List.combine ratios2 ratios3)
  in
  let avg sel rs = mean (List.map sel rs) in
  let avg_row =
    [ S "Average"; S ""; S ""; S ""; S "";
      R (avg (fun (a, _, _) -> a) ratios2);
      R (avg (fun (_, d, _) -> d) ratios2);
      R (avg (fun (_, _, t) -> t) ratios2);
      R (avg (fun (a, _, _) -> a) ratios3);
      R (avg (fun (_, d, _) -> d) ratios3);
      R (avg (fun (_, _, t) -> t) ratios3) ]
  in
  print
    ~title:
      "Table 2: post-layout circuit area, critical delay and total runtime \
       (Flow I absolute; Flows II/III as ratios over Flow I)"
    ~header (cells @ [ avg_row ]);
  Printf.printf
    "Paper averages for reference: II = 1.02/1.05/0.91, III = 1.07/0.85/1.85\n%!";
  let json_rows =
    List.map
      (fun (name, gates, r1, r2, r3) ->
         Json.Obj
           [ ("circuit", js name); ("gates", ji gates);
             ("area1", jf r1.FR.area); ("delay1", jf r1.FR.delay);
             ("runtime1", jf r1.FR.runtime);
             ("area2", jf r2.FR.area); ("delay2", jf r2.FR.delay);
             ("runtime2", jf r2.FR.runtime);
             ("area3", jf r3.FR.area); ("delay3", jf r3.FR.delay);
             ("runtime3", jf r3.FR.runtime);
             ("nets3", ji r3.FR.nets_optimized) ])
      rows
  in
  write_json ~opts ~table:"table2" ~wall_s json_rows

(* ------------------------------------------------------------------ *)
(* Flow IV: hierarchical routing on large nets                          *)
(* ------------------------------------------------------------------ *)

let hier_table ~opts pool () =
  let hier_algo =
    match Flows.default_algo "hier" with
    | Some algo -> algo
    | None -> assert false
  in
  (* The flat reference runs MERLIN under the same tight knobs the hier
     flow uses per cluster, so the comparison rows isolate what the
     decomposition itself costs/buys — not a config difference. *)
  let flat_algo =
    Flows.Merlin
      { cfg = Some Flows.hier_merlin_cfg;
        objective = Merlin_core.Objective.Best_req }
  in
  let run ?pool algo net = Flows.run ?pool { Flows.tech; buffers; algo } net in

  (* Part 1: hier vs flat on nets where flat is still feasible. *)
  let cmp_sizes = if opts.smoke then [ 12 ] else [ 12; 16; 20 ] in
  let cmp_row n =
    progress "[hier] flat-vs-hier n=%d..." n;
    let net =
      Net_gen.large_net ~seed:42 ~name:(Printf.sprintf "cmp%d" n)
        ~shape:Net_gen.Clustered ~n tech
    in
    let flat = run flat_algo net in
    let h = run hier_algo net in
    (n, flat, h)
  in
  (* Part 2: hier alone where the flat DP flows are infeasible. *)
  let shapes =
    if opts.smoke then [ Net_gen.Clustered ]
    else [ Net_gen.Clock_grid; Net_gen.High_fanout; Net_gen.Clustered ]
  in
  let sizes =
    if opts.smoke then [ 60 ]
    else if opts.full then [ 100; 300; 1000; 2000 ]
    else [ 100; 300; 1000 ]
  in
  let scale_row (shape, n) =
    progress "[hier] %s n=%d..." (Net_gen.shape_name shape) n;
    let net =
      Net_gen.large_net ~seed:42
        ~name:(Printf.sprintf "%s%d" (Net_gen.shape_name shape) n)
        ~shape ~n tech
    in
    (* Sequential per row: rows are farmed across the pool instead
       (nested pool use would deadlock-free help, but row-level
       parallelism keeps the per-row runtime column honest). *)
    (shape, n, run hier_algo net)
  in
  let scale_inputs = List.concat_map (fun s -> List.map (fun n -> (s, n)) sizes) shapes in
  let (cmp_rows, scale_rows), wall_s =
    Clock.timed (fun () ->
        (pmap pool cmp_row cmp_sizes, pmap pool scale_row scale_inputs))
  in
  progress "[hier] wall %.2fs (jobs=%d)" wall_s opts.jobs;
  let cmp_cells =
    List.map
      (fun (n, flat, h) ->
         [ I n;
           F flat.Flows.area; F flat.Flows.delay; F flat.Flows.runtime;
           R (ratio h.Flows.area flat.Flows.area);
           R (ratio h.Flows.delay flat.Flows.delay);
           R (ratio h.Flows.runtime flat.Flows.runtime);
           I h.Flows.clusters ])
      cmp_rows
  in
  print
    ~title:
      "Flow IV vs flat MERLIN, same per-cluster knobs (flat absolute; \
       hier as ratios over flat)"
    ~header:
      [ "sinks"; "flat:area"; "flat:delay"; "flat:rt(s)";
        "IV:a/flat"; "IV:d/flat"; "IV:rt/flat"; "clusters" ]
    cmp_cells;
  let scale_cells =
    List.map
      (fun (shape, n, h) ->
         [ S (Net_gen.shape_name shape); I n; I h.Flows.clusters;
           F h.Flows.runtime; I h.Flows.wirelength; F h.Flows.delay;
           F h.Flows.area; I h.Flows.n_buffers ])
      scale_rows
  in
  print
    ~title:
      "Flow IV scaling: two-level hierarchical routing on generated \
       large nets (flat *PTREE is infeasible at these sizes)"
    ~header:
      [ "shape"; "sinks"; "clusters"; "rt(s)"; "wirelen"; "delay";
        "area"; "buffers" ]
    scale_cells;
  let json_rows =
    List.map
      (fun (n, flat, h) ->
         Json.Obj
           [ ("kind", js "cmp"); ("sinks", ji n);
             ("flat_area", jf flat.Flows.area);
             ("flat_delay", jf flat.Flows.delay);
             ("flat_runtime", jf flat.Flows.runtime);
             ("area", jf h.Flows.area); ("delay", jf h.Flows.delay);
             ("runtime", jf h.Flows.runtime);
             ("clusters", ji h.Flows.clusters) ])
      cmp_rows
    @ List.map
        (fun (shape, n, h) ->
           Json.Obj
             [ ("kind", js "scale");
               ("shape", js (Net_gen.shape_name shape)); ("sinks", ji n);
               ("clusters", ji h.Flows.clusters);
               ("runtime", jf h.Flows.runtime);
               ("wirelength", ji h.Flows.wirelength);
               ("delay", jf h.Flows.delay); ("area", jf h.Flows.area);
               ("n_buffers", ji h.Flows.n_buffers) ])
        scale_rows
  in
  write_json ~opts ~table:"hier" ~wall_s json_rows

(* ------------------------------------------------------------------ *)
(* Curve-kernel workload: bytes moved and frontier width               *)
(* ------------------------------------------------------------------ *)

(* Committed allocation budget for the exact-mode workload below:
   bytes allocated per join build (Gc.allocated_bytes delta around the
   join kernel entry point; the guarded exact rows measured 15.3K at
   n=10 and 13.8K at n=12 with the arena-reused, tuple-free kernel —
   see EXPERIMENTS.md "Bytes moved").  The --smoke run fails when the
   measured value exceeds this by more than 25%, so an accidental
   return to per-build scratch or per-candidate boxing cannot land
   silently.  Recalibrate (with the measured value from a quiet
   machine, recorded in EXPERIMENTS.md) when the kernel deliberately
   changes. *)
let alloc_budget_bytes_per_join = 16000.0

type kernel_snap = {
  k_joins : int;
  k_join_adds : int;
  k_join_survivors : int;
  k_bytes_join : int;
  k_bytes_close : int;
  k_bytes_pull : int;
  k_bytes_base : int;
}

let snap_kernel () =
  let g = Atomic.get in
  let open Merlin_core.Star_ptree in
  { k_joins = g n_joins;
    k_join_adds = g n_join_adds;
    k_join_survivors = g n_join_survivors;
    k_bytes_join = g bytes_join;
    k_bytes_close = g bytes_close;
    k_bytes_pull = g bytes_pull;
    k_bytes_base = g bytes_base }

let snap_delta a b =
  { k_joins = b.k_joins - a.k_joins;
    k_join_adds = b.k_join_adds - a.k_join_adds;
    k_join_survivors = b.k_join_survivors - a.k_join_survivors;
    k_bytes_join = b.k_bytes_join - a.k_bytes_join;
    k_bytes_close = b.k_bytes_close - a.k_bytes_close;
    k_bytes_pull = b.k_bytes_pull - a.k_bytes_pull;
    k_bytes_base = b.k_bytes_base - a.k_bytes_base }

let per j v = if j = 0 then 0.0 else float_of_int v /. float_of_int j

(* One row of the curve workload: the full MERLIN flow (Flow III) on a
   seeded net under the scaled config with the given frontier knobs.
   Exact mode (epsilon 0, cap off) is the reference the golden route
   pins; the other rows form Ablation G (quality/runtime/bytes vs the
   epsilon and frontier-cap knobs). *)
let curve_row ~label ~n ~epsilon ~max_frontier () =
  progress "[curve] %s (n=%d eps=%g cap=%d)..." label n epsilon max_frontier;
  let net = Net_gen.random_net ~seed:42 ~name:(Printf.sprintf "curve%d" n) ~n tech in
  let cfg =
    { (Merlin_core.Config.scaled n) with
      Merlin_core.Config.max_iters = 2;
      curve_epsilon = epsilon;
      max_frontier }
  in
  let before = snap_kernel () in
  let m =
    Flows.run
      { Flows.tech; buffers;
        algo =
          Flows.Merlin
            { cfg = Some cfg; objective = Merlin_core.Objective.Best_req } }
      net
  in
  let d = snap_delta before (snap_kernel ()) in
  (label, n, epsilon, max_frontier, m, d)

let curve_table ~opts () =
  let rows_spec =
    if opts.smoke then
      [ ("exact-n10", 10, 0.0, 0);
        ("eps20-n10", 10, 20.0, 0);
        ("cap4-n10", 10, 0.0, 4) ]
    else
      [ ("exact-n10", 10, 0.0, 0);
        ("exact-n12", 12, 0.0, 0);
        (* Ablation G: epsilon sweep (quantised-metric slack, in the
           units of the req/load/area coordinates) ... *)
        ("eps10-n12", 12, 10.0, 0);
        ("eps20-n12", 12, 20.0, 0);
        ("eps40-n12", 12, 40.0, 0);
        (* ... and frontier-cap sweep (max survivors kept per build). *)
        ("cap8-n12", 12, 0.0, 8);
        ("cap5-n12", 12, 0.0, 5);
        ("cap3-n12", 12, 0.0, 3) ]
  in
  let header =
    [ "row"; "eps"; "cap"; "req (ps)"; "area"; "rt(s)";
      "joins"; "adds/join"; "B/join"; "front/join" ]
  in
  let rows, wall_s =
    Clock.timed (fun () ->
        (* Sequential on purpose: Gc.allocated_bytes deltas are
           per-domain, and one domain keeps every row's bytes columns
           attributable to that row alone. *)
        List.map
          (fun (label, n, epsilon, max_frontier) ->
             curve_row ~label ~n ~epsilon ~max_frontier ())
          rows_spec)
  in
  progress "[curve] wall %.2fs" wall_s;
  let cells =
    List.map
      (fun (label, _n, eps, cap, m, d) ->
         [ S label; F eps; I cap; F m.Flows.root_req; F m.Flows.area;
           F m.Flows.runtime; I d.k_joins;
           F (per d.k_joins d.k_join_adds);
           F (per d.k_joins d.k_bytes_join);
           F (per d.k_joins d.k_join_survivors) ])
      rows
  in
  print
    ~title:
      "Curve kernel: bytes allocated and frontier width per join build \
       (exact mode plus Ablation G epsilon/frontier-cap sweeps)"
    ~header cells;
  let json_rows =
    List.map
      (fun (label, n, eps, cap, m, d) ->
         Json.Obj
           [ ("row", js label); ("sinks", ji n); ("epsilon", jf eps);
             ("max_frontier", ji cap); ("req", jf m.Flows.root_req);
             ("area", jf m.Flows.area); ("runtime", jf m.Flows.runtime);
             ("joins", ji d.k_joins); ("join_adds", ji d.k_join_adds);
             ("join_survivors", ji d.k_join_survivors);
             ("bytes_join", ji d.k_bytes_join);
             ("bytes_close", ji d.k_bytes_close);
             ("bytes_pull", ji d.k_bytes_pull);
             ("bytes_base", ji d.k_bytes_base);
             ("bytes_per_join", jf (per d.k_joins d.k_bytes_join));
             ("frontier_per_join", jf (per d.k_joins d.k_join_survivors)) ])
      rows
  in
  write_json ~opts ~table:"curve" ~wall_s
    (json_rows
     @ [ Json.Obj [ ("row", js "budget");
                    ("bytes_per_join_budget", jf alloc_budget_bytes_per_join) ] ]);
  (* The emitter must keep producing documents the repo's own JSON layer
     parses: read the file straight back.  Any Parse_error here fails the
     @bench-smoke alias. *)
  (match opts.json with
   | None -> ()
   | Some file ->
     let ic = open_in_bin file in
     let len = in_channel_length ic in
     let raw = really_input_string ic len in
     close_in ic;
     let doc = Json.of_string raw in
     (match Json.member "rows" doc with
      | Some (Json.List (_ :: _)) -> ()
      | Some _ | None ->
        failwith "Bench.curve_table: emitted JSON lost its rows"));
  (* Allocation-regression guard: the exact rows must stay within 25% of
     the committed budget. *)
  if opts.smoke then
    List.iter
      (fun (label, _, eps, cap, _, d) ->
         if eps = 0.0 && cap = 0 then begin
           let bpj = per d.k_joins d.k_bytes_join in
           if bpj > alloc_budget_bytes_per_join *. 1.25 then
             failwith
               (Printf.sprintf
                  "Bench.curve_table: %s allocates %.0f bytes/join, over \
                   budget %.0f x1.25 — the zero-allocation kernel regressed"
                  label bpj alloc_budget_bytes_per_join)
         end)
      rows

(* ------------------------------------------------------------------ *)
(* Serving throughput: cold vs warm vs restart vs ECO                  *)
(* ------------------------------------------------------------------ *)

module Serve = Merlin_serve

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let serve_stat path stats =
  let rec go j = function
    | [] -> (
      match Json.to_num j with
      | Some f -> int_of_float f
      | None ->
        failwith
          ("Bench.serve_stat: not a number: " ^ String.concat "." path))
    | k :: rest -> (
      match Json.member k j with
      | Some v -> go v rest
      | None -> failwith ("Bench.serve_stat: missing " ^ String.concat "." path))
  in
  go stats path

let serve_stats client =
  match
    Serve.Client.call client
      (Serve.Wire.Admin { job = "stats"; op = Serve.Wire.Stats })
  with
  | Ok (Serve.Wire.Stats_reply { stats; _ }) -> stats
  | Ok _ -> failwith "Bench.serve_stats: unexpected reply to a stats request"
  | Error msg -> failwith ("Bench.serve_stats: " ^ msg)

(* Whole-netlist serving over the v2 wire protocol: extract every
   optimizable net of a generated circuit, then measure four batch
   submissions against a daemon backed by the persistent store —

     cold     empty caches, every net computed on the pool;
     warm     same daemon again, answered by the memory LRU;
     restart  a fresh daemon over the same store directory, answered by
              the persistent tier without a single pool task;
     eco      ~25% of the nets perturbed, submitted with the original
              fingerprint manifest — only the changed nets re-route.

   The --smoke profile asserts the cache story instead of just printing
   it: warm throughput must be at least cold's, the restarted daemon
   must serve 100% hits with zero pool submissions, and ECO must route
   exactly the changed nets. *)
let serve_table ~opts () =
  let scale_down = if opts.full then 60 else if opts.smoke then 300 else 200 in
  let netlist =
    Merlin_circuit.Placement.place
      (Merlin_circuit.Circuit_gen.generate ~scale_down ~name:"B9" ())
  in
  let nets = FR.nets ~tech netlist in
  let n = List.length nets in
  if n = 0 then failwith "Bench.serve_table: circuit yields no optimizable nets";
  progress "[serve] B9 yields %d optimizable nets (jobs=%d)" n opts.jobs;
  let spec =
    { Flows.tech; buffers;
      algo =
        Flows.Merlin
          { cfg =
              Some
                { Merlin_core.Config.default with
                  Merlin_core.Config.candidate_limit = 8;
                  max_curve = 5;
                  buffer_trials = 4;
                  max_iters = 1 };
            objective = Merlin_core.Objective.Best_req } }
  in
  let store_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "merlin-bench-store-%d" (Unix.getpid ()))
  in
  let socket tag =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "merlin-bench-%s-%d.sock" tag (Unix.getpid ()))
  in
  let start tag =
    Serve.Server.start
      { (Serve.Server.default_config ~socket_path:(socket tag)) with
        Serve.Server.domains = Some opts.jobs;
        cache_capacity = max 256 n;
        store_dir = Some store_dir }
  in
  let run_row client ~row ?manifest nets =
    progress "[serve] %s..." row;
    match
      Serve.Client.run_batch client
        { Serve.Wire.job = row; spec; nets; deadline_s = None;
          want_tree = false; manifest }
        ~on_progress:(fun _ -> ())
    with
    | Error msg -> failwith ("Bench.serve_table: " ^ row ^ ": " ^ msg)
    | Ok s -> (row, s)
  in
  let bump_req (net : Net.t) =
    Net.make ~name:net.Net.name ~source:net.Net.source ~driver:net.Net.driver
      (Array.to_list
         (Array.map
            (fun (s : Sink.t) ->
               Sink.make ~id:s.Sink.id ~pt:s.Sink.pt ~cap:s.Sink.cap
                 ~req:(s.Sink.req +. 50.0))
            net.Net.sinks))
  in
  let eco_nets =
    List.mapi
      (fun i (name, net) ->
         if i mod 4 = 0 then (name, bump_req net) else (name, net))
      nets
  in
  let changed = (n + 3) / 4 in
  let manifest =
    List.map (fun (name, net) -> (name, Net_io.fingerprint net)) nets
  in
  let (rows, restart_submitted), wall_s =
    Clock.timed (fun () ->
        let server1 = start "a" in
        let c1 = Serve.Client.connect_unix (socket "a") in
        let cold = run_row c1 ~row:"cold" nets in
        let warm = run_row c1 ~row:"warm" nets in
        let eco = run_row c1 ~row:"eco" ~manifest eco_nets in
        Serve.Client.close c1;
        Serve.Server.stop server1;
        let server2 = start "b" in
        let c2 = Serve.Client.connect_unix (socket "b") in
        let restart = run_row c2 ~row:"restart" nets in
        let restart_submitted =
          serve_stat [ "pool"; "submitted" ] (serve_stats c2)
        in
        Serve.Client.close c2;
        Serve.Server.stop server2;
        ([ cold; warm; restart; eco ], restart_submitted))
  in
  rm_rf store_dir;
  progress "[serve] wall %.2fs (jobs=%d)" wall_s opts.jobs;
  let throughput (s : Serve.Wire.summary) =
    if s.Serve.Wire.wall_s > 0.0 then
      float_of_int s.Serve.Wire.total /. s.Serve.Wire.wall_s
    else 0.0
  in
  let cells =
    List.map
      (fun (row, (s : Serve.Wire.summary)) ->
         [ S row; I s.Serve.Wire.total; I s.Serve.Wire.routed;
           I s.Serve.Wire.hits; I s.Serve.Wire.unchanged;
           I s.Serve.Wire.failed; F s.Serve.Wire.wall_s; F (throughput s) ])
      rows
  in
  print
    ~title:
      "Batch serving: whole-netlist throughput over the v2 wire protocol \
       (cold pool run, warm LRU, daemon restart over the persistent \
       store, ECO re-route)"
    ~header:
      [ "row"; "nets"; "routed"; "hits"; "unchanged"; "failed"; "wall(s)";
        "nets/s" ]
    cells;
  let json_rows =
    List.map
      (fun (row, (s : Serve.Wire.summary)) ->
         Json.Obj
           [ ("row", js row); ("nets", ji s.Serve.Wire.total);
             ("routed", ji s.Serve.Wire.routed); ("hits", ji s.Serve.Wire.hits);
             ("unchanged", ji s.Serve.Wire.unchanged);
             ("failed", ji s.Serve.Wire.failed);
             ("cancelled", ji s.Serve.Wire.cancelled);
             ("wall_s", jf s.Serve.Wire.wall_s);
             ("nets_per_s", jf (throughput s)) ])
      rows
    @ [ Json.Obj
          [ ("row", js "restart-pool");
            ("pool_submitted", ji restart_submitted);
            ("changed", ji changed) ] ]
  in
  write_json ~opts ~table:"serve" ~wall_s json_rows;
  (* Parse the emitted document straight back; @bench-smoke fails on a
     Parse_error or a lost rows array, same as the curve table. *)
  (match opts.json with
   | None -> ()
   | Some file ->
     let ic = open_in_bin file in
     let len = in_channel_length ic in
     let raw = really_input_string ic len in
     close_in ic;
     let doc = Json.of_string raw in
     (match Json.member "rows" doc with
      | Some (Json.List (_ :: _)) -> ()
      | Some _ | None ->
        failwith "Bench.serve_table: emitted JSON lost its rows"));
  if opts.smoke then begin
    let find row =
      match List.assoc_opt row rows with
      | Some s -> s
      | None -> failwith ("Bench.serve_table: missing row " ^ row)
    in
    let cold = find "cold" and warm = find "warm" in
    let restart = find "restart" and eco = find "eco" in
    if cold.Serve.Wire.routed <> n then
      failwith "Bench.serve_table: cold run did not route every net";
    if warm.Serve.Wire.hits <> n || throughput warm < throughput cold then
      failwith
        "Bench.serve_table: warm run slower than cold — the memory cache \
         regressed";
    if restart.Serve.Wire.hits <> n || restart_submitted <> 0 then
      failwith
        "Bench.serve_table: restarted daemon touched the pool — the \
         persistent store regressed";
    if eco.Serve.Wire.routed <> changed
       || eco.Serve.Wire.unchanged <> n - changed
    then
      failwith
        "Bench.serve_table: ECO did not route exactly the changed nets"
  end

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_neighborhood pool () =
  progress "[ablations] A: neighborhood sizes";
  (* Ablation A: Theorem 1 -- neighborhood size is a Fibonacci number. *)
  let header = [ "n"; "enumerated"; "closed form F(n+1)"; "paper Binet(n+2)" ] in
  let rows =
    pmap pool
      (fun n ->
         let enumerated =
           if n <= 14 then
             I (List.length
                  (Merlin_order.Order.neighborhood (Merlin_order.Order.identity n)))
           else S "-"
         in
         [ I n; enumerated;
           I (Merlin_order.Order.neighborhood_size n);
           F (Merlin_order.Order.theorem1_closed_form n) ])
      [ 1; 2; 3; 4; 5; 6; 8; 10; 12; 16; 20 ]
  in
  print ~title:"Ablation A (Theorem 1): |N(Pi)| vs closed form" ~header rows

let run_merlin_with ?candidates ?init ~cfg net =
  let out, t =
    Clock.timed (fun () ->
        Merlin_core.Merlin.run ?candidates ?init ~cfg ~tech ~buffers net)
  in
  match out with
  | None -> (nan, nan, 0, t)
  | Some out ->
    ( out.Merlin_core.Merlin.best.Merlin_curves.Solution.req,
      out.Merlin_core.Merlin.best.Merlin_curves.Solution.area,
      out.Merlin_core.Merlin.loops,
      t )

let ablation_candidates pool () =
  progress "[ablations] B: candidate sets";
  (* Ablation B: Section III.1's claim that the candidate-set choice does
     not matter much once its size is linear in n. *)
  let net = Net_gen.random_net ~seed:101 ~name:"ablB" ~n:8 tech in
  let cfg = Merlin_core.Config.scaled 8 in
  let pts = Net.terminals net in
  let sets =
    [ ("reduced Hanan (default)", None);
      ("full Hanan (capped 36)",
       Some (Array.of_list (Merlin_geometry.Hanan.reduced pts ~limit:36)));
      ("center of mass",
       Some (Array.of_list (Merlin_geometry.Hanan.center_of_mass_set pts ~limit:24)));
      ("terminals only", Some (Array.of_list pts)) ]
  in
  let header = [ "candidate set"; "k"; "req (ps)"; "buf area"; "time (s)" ] in
  let rows =
    pmap pool
      (fun (name, candidates) ->
         let k =
           match candidates with
           | Some c -> Array.length c
           | None ->
             Array.length (Merlin_core.Bubble_construct.candidate_set cfg net)
         in
         let req, area, _, t = run_merlin_with ?candidates ~cfg net in
         [ S name; I k; F req; F area; F t ])
      sets
  in
  print ~title:"Ablation B: candidate-location set choice (n=8)" ~header rows

let ablation_alpha pool () =
  progress "[ablations] C: alpha sweep";
  (* Ablation C: quality/runtime vs the branching bound alpha. *)
  let net = Net_gen.random_net ~seed:103 ~name:"ablC" ~n:8 tech in
  let header = [ "alpha"; "req (ps)"; "buf area"; "loops"; "time (s)" ] in
  let rows =
    pmap pool
      (fun alpha ->
         let cfg = { (Merlin_core.Config.scaled 8) with Merlin_core.Config.alpha } in
         let req, area, loops, t = run_merlin_with ~cfg net in
         [ I alpha; F req; F area; I loops; F t ])
      [ 2; 4; 6; 10; 15 ]
  in
  print ~title:"Ablation C: branching bound alpha (n=8)" ~header rows

let ablation_initial_order pool () =
  progress "[ablations] D: initial orders";
  (* Ablation D: Section IV's claim that the initial order has a small
     effect on final quality. *)
  let net = Net_gen.random_net ~seed:104 ~name:"ablD" ~n:8 tech in
  let cfg = Merlin_core.Config.scaled 8 in
  let orders =
    [ ("TSP (paper setup)", Merlin_order.Tsp.order net);
      ("required time", Merlin_order.Heuristics.by_required_time net);
      ("x sweep", Merlin_order.Heuristics.by_x_sweep net);
      ("random#1", Merlin_order.Heuristics.random ~seed:1 net);
      ("random#2", Merlin_order.Heuristics.random ~seed:2 net) ]
  in
  let header = [ "initial order"; "req (ps)"; "buf area"; "loops"; "time (s)" ] in
  let rows =
    pmap pool
      (fun (name, init) ->
         let req, area, loops, t = run_merlin_with ~init ~cfg net in
         [ S name; F req; F area; I loops; F t ])
      orders
  in
  print ~title:"Ablation D: initial sink order (n=8)" ~header rows

let ablation_placement pool () =
  progress "[ablations] E: chain placement";
  (* Ablation E: the Flush_ends restriction vs the paper's full chain
     placement. *)
  let header = [ "n"; "placement"; "req (ps)"; "merges"; "time (s)" ] in
  let configs =
    List.concat_map
      (fun n ->
         List.map
           (fun placement -> (n, placement))
           [ ("all positions (paper)", Merlin_core.Config.All_positions);
             ("flush ends (fast)", Merlin_core.Config.Flush_ends) ])
      [ 6; 8 ]
  in
  let rows =
    pmap pool
      (fun (n, (name, placement)) ->
         let net = Net_gen.random_net ~seed:105 ~name:"ablE" ~n tech in
         let order = Merlin_order.Tsp.order net in
         let cfg =
           { (Merlin_core.Config.scaled n) with
             Merlin_core.Config.chain_placement = placement }
         in
         let r, t =
           Clock.timed (fun () ->
               Merlin_core.Bubble_construct.construct ~cfg ~tech ~buffers net
                 order)
         in
         let req =
           match
             Merlin_curves.Curve.best_req r.Merlin_core.Bubble_construct.curve
           with
           | Some s -> s.Merlin_curves.Solution.req
           | None -> nan
         in
         [ I n; S name; F req; I r.Merlin_core.Bubble_construct.merges; F t ])
      configs
  in
  print ~title:"Ablation E: chain placement restriction" ~header rows

let ablation_bubbling pool () =
  progress "[ablations] F: bubbling on/off";
  (* Ablation F: the paper's core contribution.  With bubbling disabled
     the engine is an order-constrained hierarchical construction for the
     single initial order; the outer loop then has no move to make. *)
  let header =
    [ "n"; "seed"; "bubbling"; "req (ps)"; "buf area"; "loops"; "time (s)" ]
  in
  let configs =
    List.concat_map
      (fun (n, seed) ->
         List.map
           (fun toggle -> (n, seed, toggle))
           [ ("on (MERLIN)", true); ("off (fixed order)", false) ])
      [ (8, 42); (8, 77); (10, 7) ]
  in
  let rows =
    pmap pool
      (fun (n, seed, (label, bubbling)) ->
         let net = Net_gen.random_net ~seed ~name:"ablF" ~n tech in
         let cfg =
           { (Merlin_core.Config.scaled n) with Merlin_core.Config.bubbling }
         in
         let req, area, loops, t = run_merlin_with ~cfg net in
         [ I n; I seed; S label; F req; F area; I loops; F t ])
      configs
  in
  print ~title:"Ablation F: local order-perturbation (bubbling)" ~header rows

let ablations ~opts pool () =
  let (), wall_s =
    Clock.timed (fun () ->
        ablation_neighborhood pool ();
        ablation_candidates pool ();
        ablation_alpha pool ();
        ablation_initial_order pool ();
        ablation_placement pool ();
        ablation_bubbling pool ())
  in
  progress "[ablations] wall %.2fs (jobs=%d)" wall_s opts.jobs

(* ------------------------------------------------------------------ *)
(* Bechamel micro benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let speed ~seconds () =
  let open Bechamel in
  let net8 = Net_gen.random_net ~seed:42 ~name:"bench8" ~n:8 tech in
  let net16 = Net_gen.random_net ~seed:43 ~name:"bench16" ~n:16 tech in
  let fast3 =
    { (Merlin_core.Config.scaled 8) with
      Merlin_core.Config.max_iters = 1;
      candidate_limit = 10;
      max_curve = 5 }
  in
  let star net =
    Merlin_rtree.Rtree.node net.Net.source
      (Array.to_list (Array.map Merlin_rtree.Rtree.leaf net.Net.sinks))
  in
  let tests =
    [ Test.make ~name:"tsp-order-n16"
        (Staged.stage (fun () -> ignore (Merlin_order.Tsp.order net16)));
      Test.make ~name:"lttree-n16"
        (Staged.stage (fun () ->
             ignore
               (Merlin_lttree.Lttree.best ~buffers ~max_fanout:10
                  ~driver:net16.Net.driver
                  (Array.to_list net16.Net.sinks))));
      Test.make ~name:"ptree-route-n8"
        (Staged.stage (fun () -> ignore (Merlin_ptree.Ptree.route ~tech net8)));
      Test.make ~name:"van-ginneken-n8"
        (Staged.stage (fun () ->
             ignore
               (Merlin_ginneken.Van_ginneken.insert ~tech ~buffers net8
                  (star net8))));
      Test.make ~name:"merlin-n5-1loop"
        (Staged.stage (fun () ->
             let net = Net_gen.random_net ~seed:5 ~name:"b5" ~n:5 tech in
             ignore (Merlin_core.Merlin.run ~cfg:fast3 ~tech ~buffers net))) ]
  in
  let header = [ "benchmark"; "time/run" ] in
  let rows =
    List.map
      (fun test ->
         let cfg =
           Benchmark.cfg ~limit:2000 ~quota:(Time.second seconds) ()
         in
         let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
         let ols =
           Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
         in
         let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
         (* Bechamel hands results back in a Hashtbl; fold to pairs and
            sort by benchmark name so the table order is a function of
            the test set, not of bucket layout (rule C9). *)
         Hashtbl.fold
           (fun name result acc ->
              let estimate =
                match Analyze.OLS.estimates result with
                | Some [ e ] -> e
                | Some _ | None -> nan
              in
              let pretty =
                if Float.is_nan estimate then "-"
                else if estimate > 1e9 then Printf.sprintf "%.2f s" (estimate /. 1e9)
                else if estimate > 1e6 then Printf.sprintf "%.2f ms" (estimate /. 1e6)
                else Printf.sprintf "%.1f us" (estimate /. 1e3)
              in
              (name, pretty) :: acc)
           results []
         |> List.sort (fun (a, _) (b, _) -> String.compare a b)
         |> List.map (fun (name, pretty) -> [ S name; S pretty ]))
      tests
    |> List.concat
  in
  print ~title:"Bechamel micro benchmarks (monotonic clock per run)" ~header rows

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let smoke = List.mem "--smoke" args in
  let show_stats = List.mem "--stats" args in
  let rec find_value keys = function
    | k :: v :: _ when List.mem k keys -> Some v
    | _ :: rest -> find_value keys rest
    | [] -> None
  in
  let seconds =
    match find_value [ "--seconds" ] args with
    | Some v -> float_of_string v
    | None -> 1.0
  in
  let jobs =
    match find_value [ "-j"; "--jobs" ] args with
    | Some v -> max 1 (int_of_string v)
    | None -> 1
  in
  let json = find_value [ "--json" ] args in
  let opts = { full; smoke; jobs; show_stats; json; seconds } in
  (* Must happen before any domain exists (it may re-exec the process);
     see Runparam. *)
  if jobs > 1 then Merlin_exec.Runparam.ensure_minor_heap ();
  let pool = if jobs > 1 then Some (Pool.create ~domains:jobs ()) else None in
  let what =
    List.find_opt
      (fun a ->
         List.mem a
           [ "table1"; "table2"; "hier"; "curve"; "serve"; "ablations";
             "speed"; "all" ])
      args
  in
  (match what with
   | Some "table1" -> table1 ~opts pool ()
   | Some "table2" -> table2 ~opts pool ()
   | Some "hier" -> hier_table ~opts pool ()
   | Some "curve" -> curve_table ~opts ()
   | Some "serve" -> serve_table ~opts ()
   | Some "ablations" -> ablations ~opts pool ()
   | Some "speed" -> speed ~seconds ()
   | Some "all" | None ->
     (* JSON targets one table per file; ignore it for `all`. *)
     let opts = { opts with json = None } in
     table1 ~opts pool ();
     table2 ~opts pool ();
     hier_table ~opts pool ();
     serve_table ~opts ();
     ablations ~opts pool ();
     speed ~seconds ()
   | Some _ -> assert false);
  match pool with
  | None -> ()
  | Some p ->
    if show_stats then Format.eprintf "%a@." Pool.pp_stats (Pool.stats p);
    Pool.shutdown p
