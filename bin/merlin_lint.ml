(* merlin_lint: project lint pass over the repository sources.

   Usage: merlin_lint [--format text|json|github] [--baseline FILE]
   [--rules R1,R3,...] [--list-rules] [PATH...].  Default paths:
   lib bin bench examples test.  --rules restricts the run to a
   comma-separated subset of the rules, by code (R1-R7) or by name
   (poly-compare); the stale-waiver post-pass always runs, narrowed to
   the active rules.  Exit codes: 0 clean, 1 error-severity findings
   (after baseline subtraction), 2 usage/IO failure — including an
   unknown --rules selector. *)

let rule_code i = Printf.sprintf "R%d" (i + 1)

(* A --rules selector: a code ("R3", case-insensitive) or a rule name
   ("physical-eq"). *)
let resolve_selector s =
  let up = String.uppercase_ascii s in
  let indexed = List.mapi (fun i r -> (i, r)) Merlin_lint.Rules.all in
  match
    List.find_opt
      (fun (i, (module R : Merlin_lint.Rule.S)) ->
         String.equal (rule_code i) up || String.equal R.name s)
      indexed
  with
  | Some (_, r) -> Ok r
  | None ->
    Error
      (Printf.sprintf
         "unknown rule %S (codes R1-R%d or rule names; --list-rules shows \
          the set)"
         s
         (List.length Merlin_lint.Rules.all))

let () =
  let format = ref "text" in
  let paths = ref [] in
  let baseline = ref None in
  let rules = ref None in
  let spec =
    [ ( "--format",
        Arg.Symbol ([ "text"; "json"; "github" ], fun s -> format := s),
        " output format (default text; github emits Actions annotations)" );
      ( "--baseline",
        Arg.String (fun s -> baseline := Some s),
        "FILE subtract findings recorded in FILE (native or SARIF) \
         before reporting" );
      ( "--rules",
        Arg.String (fun s -> rules := Some s),
        "R1,R3,... run only these rules (codes or names)" );
      ( "--list-rules",
        Arg.Unit
          (fun () ->
             List.iteri
               (fun i (module R : Merlin_lint.Rule.S) ->
                  Printf.printf "%-4s %-18s %-7s %s\n" (rule_code i) R.name
                    (Merlin_lint.Finding.severity_to_string R.severity)
                    R.doc)
               Merlin_lint.Rules.all;
             Printf.printf "%-4s %-18s %-7s %s\n" "-" "stale-waiver" "warning"
               "a lint:/check: waiver that suppresses nothing (driver \
                post-pass)";
             exit 0),
        " list the rule set and exit" ) ]
  in
  let usage =
    "merlin_lint [--format text|json|github] [--baseline FILE] \
     [--rules R1,R3,...] [PATH...]"
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths =
    match List.rev !paths with
    | [] -> [ "lib"; "bin"; "bench"; "examples"; "test" ]
    | ps -> ps
  in
  let rules =
    match !rules with
    | None -> Merlin_lint.Rules.all
    | Some s ->
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun s -> String.length s > 0)
      |> List.map (fun sel ->
          match resolve_selector sel with
          | Ok r -> r
          | Error msg ->
            prerr_endline ("merlin_lint: --rules: " ^ msg);
            exit 2)
  in
  let baseline =
    match !baseline with
    | None -> []
    | Some file -> (
      match Merlin_lint.Baseline.load file with
      | Ok b -> b
      | Error msg ->
        prerr_endline ("merlin_lint: --baseline " ^ file ^ ": " ^ msg);
        exit 2)
  in
  match Merlin_lint.Driver.lint_paths ~rules paths with
  | findings ->
    let findings = Merlin_lint.Baseline.apply baseline findings in
    print_string
      (match !format with
       | "json" -> Merlin_lint.Driver.render_json findings
       | "github" -> Merlin_lint.Driver.render_github findings
       | _ -> Merlin_lint.Driver.render_text findings);
    if Merlin_lint.Driver.has_errors findings then exit 1
  | exception Sys_error msg ->
    prerr_endline ("merlin_lint: " ^ msg);
    exit 2
