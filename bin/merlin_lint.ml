(* merlin_lint: project lint pass over the repository sources.

   Usage: merlin_lint [--format text|json|github] [--baseline FILE]
   [PATH...].  Default paths: lib bin bench examples test.  Exit codes:
   0 clean, 1 error-severity findings (after baseline subtraction),
   2 usage/IO failure. *)

let () =
  let format = ref "text" in
  let paths = ref [] in
  let baseline = ref None in
  let spec =
    [ ( "--format",
        Arg.Symbol ([ "text"; "json"; "github" ], fun s -> format := s),
        " output format (default text; github emits Actions annotations)" );
      ( "--baseline",
        Arg.String (fun s -> baseline := Some s),
        "FILE subtract findings recorded in FILE (native or SARIF) \
         before reporting" );
      ( "--rules",
        Arg.Unit
          (fun () ->
             List.iter
               (fun (module R : Merlin_lint.Rule.S) ->
                  Printf.printf "%-18s %-7s %s\n" R.name
                    (Merlin_lint.Finding.severity_to_string R.severity)
                    R.doc)
               Merlin_lint.Rules.all;
             Printf.printf "%-18s %-7s %s\n" "stale-waiver" "warning"
               "a lint:/check: waiver that suppresses nothing (driver \
                post-pass)";
             exit 0),
        " list the rule set and exit" ) ]
  in
  let usage =
    "merlin_lint [--format text|json|github] [--baseline FILE] [PATH...]"
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths =
    match List.rev !paths with
    | [] -> [ "lib"; "bin"; "bench"; "examples"; "test" ]
    | ps -> ps
  in
  let baseline =
    match !baseline with
    | None -> []
    | Some file -> (
      match Merlin_lint.Baseline.load file with
      | Ok b -> b
      | Error msg ->
        prerr_endline ("merlin_lint: --baseline " ^ file ^ ": " ^ msg);
        exit 2)
  in
  match Merlin_lint.Driver.lint_paths paths with
  | findings ->
    let findings = Merlin_lint.Baseline.apply baseline findings in
    print_string
      (match !format with
       | "json" -> Merlin_lint.Driver.render_json findings
       | "github" -> Merlin_lint.Driver.render_github findings
       | _ -> Merlin_lint.Driver.render_text findings);
    if Merlin_lint.Driver.has_errors findings then exit 1
  | exception Sys_error msg ->
    prerr_endline ("merlin_lint: " ^ msg);
    exit 2
