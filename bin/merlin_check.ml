(* merlin_check: typedtree-based whole-project analyzer.

   Usage:
     merlin_check [--format text|json|sarif|github] [--sarif]
                  [--rules C1,C7,...] [--list-rules]
                  [--baseline FILE] [--write-baseline FILE]
                  [--prune-baseline] [--strict-baseline]
                  [--lock-order FILE] [--src-root DIR]... [ROOT...]

   ROOTs are files or directories scanned for .cmt/.cmti artifacts
   (default "."), so the tool is normally run from the dune build
   directory after a build.  --src-root trees (default "lib") are
   guarded for artifact coverage: a source there with no loaded cmt is
   itself a finding.  --lock-order names the committed lock-hierarchy
   spec for the C4 inversion check (a ./lock-order.spec is picked up
   automatically); cycles are flagged with or without a spec.
   --rules restricts the run to a comma-separated subset of the
   analysis rules, by code (C1-C9) or by name (nondet-in-task); the
   driver diagnostics (missing-cmt, cmt-error, stale-baseline) always
   run.

   Baseline hygiene mirrors waiver hygiene: entries the current run no
   longer needs are reported as [stale-baseline] warnings.
   --prune-baseline rewrites the --baseline file without them;
   --strict-baseline makes an unpruned stale entry fail the run, so CI
   can insist the committed inventory stays exact.

   Exit codes: 0 nothing survives the baseline (and, under
   --strict-baseline, no stale entries remain), 1 otherwise (warnings
   included: the baseline, not the severity, is the accepted-findings
   mechanism), 2 usage/IO failure — including an unknown --rules
   selector.  A --rules filter does not change the semantics of exit 1:
   whatever the selected rules report past the baseline fails the
   run. *)

module Finding = Merlin_lint.Finding

let default_spec_file = "lock-order.spec"

let stale_baseline_findings stale =
  List.map
    (fun (e : Merlin_lint.Baseline.entry) ->
       Finding.make ~file:e.Merlin_lint.Baseline.file ~line:1 ~col:0
         ~rule:"stale-baseline" ~severity:Finding.Warning
         (Printf.sprintf
            "baseline entry for [%s] no longer matches any finding (%d \
             unconsumed): %s"
            e.Merlin_lint.Baseline.rule e.Merlin_lint.Baseline.count
            e.Merlin_lint.Baseline.message))
    stale

let () =
  let format = ref Merlin_check.Check_driver.Text in
  let roots = ref [] in
  let src_roots = ref [] in
  let baseline = ref None in
  let write_baseline = ref None in
  let lock_order = ref None in
  let prune = ref false in
  let strict = ref false in
  let rules = ref None in
  let set_format s =
    format :=
      match s with
      | "json" -> Merlin_check.Check_driver.Json
      | "sarif" -> Merlin_check.Check_driver.Sarif
      | "github" -> Merlin_check.Check_driver.Github
      | _ -> Merlin_check.Check_driver.Text
  in
  let spec =
    [ ( "--format",
        Arg.Symbol ([ "text"; "json"; "sarif"; "github" ], set_format),
        " output format (default text; github emits Actions annotations)" );
      ( "--sarif",
        Arg.Unit (fun () -> set_format "sarif"),
        " shorthand for --format sarif" );
      ( "--baseline",
        Arg.String (fun s -> baseline := Some s),
        "FILE subtract findings recorded in FILE (native or SARIF) \
         before reporting" );
      ( "--write-baseline",
        Arg.String (fun s -> write_baseline := Some s),
        "FILE record the current findings as the accepted baseline and \
         exit" );
      ( "--prune-baseline",
        Arg.Set prune,
        " rewrite the --baseline file without entries this run no \
         longer needs" );
      ( "--strict-baseline",
        Arg.Set strict,
        " fail (exit 1) when the baseline carries stale entries" );
      ( "--lock-order",
        Arg.String (fun s -> lock_order := Some s),
        "FILE committed lock order, outermost first, for the C4 \
         inversion check (default ./lock-order.spec when present)" );
      ( "--src-root",
        Arg.String (fun s -> src_roots := s :: !src_roots),
        "DIR source tree guarded for cmt coverage (repeatable; default \
         lib)" );
      ( "--rules",
        Arg.String (fun s -> rules := Some s),
        "C1,C7,... run only these analysis rules (codes or names); \
         driver diagnostics always run" );
      ( "--list-rules",
        Arg.Unit
          (fun () ->
             List.iter
               (fun (name, sev, doc) ->
                  Printf.printf "%-4s %-22s %-7s %s\n"
                    (Option.value
                       (Merlin_check.Check_driver.rule_code name)
                       ~default:"-")
                    name
                    (Merlin_lint.Finding.severity_to_string sev)
                    doc)
               Merlin_check.Check_driver.rule_docs;
             exit 0),
        " list the rule set and exit" ) ]
  in
  let usage =
    "merlin_check [--format text|json|sarif|github] [--rules C1,C7,...] \
     [--baseline FILE] [--write-baseline FILE] [--prune-baseline] \
     [--strict-baseline] [--lock-order FILE] [--src-root DIR]... [ROOT...]"
  in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  let rules =
    match !rules with
    | None -> None
    | Some s ->
      Some
        (String.split_on_char ',' s
         |> List.map String.trim
         |> List.filter (fun s -> String.length s > 0)
         |> List.map (fun sel ->
             match Merlin_check.Check_driver.resolve_selector sel with
             | Ok rule -> rule
             | Error msg ->
               prerr_endline ("merlin_check: --rules: " ^ msg);
               exit 2))
  in
  let roots = match List.rev !roots with [] -> [ "." ] | ps -> ps in
  let src_roots =
    match List.rev !src_roots with [] -> [ "lib" ] | ps -> ps
  in
  if !prune && Option.is_none !baseline then (
    prerr_endline "merlin_check: --prune-baseline needs --baseline FILE";
    exit 2);
  let lock_spec =
    let file =
      match !lock_order with
      | Some f -> Some f
      | None ->
        if Sys.file_exists default_spec_file then Some default_spec_file
        else None
    in
    match file with
    | None -> []
    | Some f -> (
      match Merlin_check.Lock_order.load_spec f with
      | Ok s -> s
      | Error msg ->
        prerr_endline ("merlin_check: --lock-order " ^ f ^ ": " ^ msg);
        exit 2)
  in
  let baseline_entries =
    match !baseline with
    | None -> []
    | Some file -> (
      match Merlin_lint.Baseline.load file with
      | Ok b -> b
      | Error msg ->
        prerr_endline ("merlin_check: --baseline " ^ file ^ ": " ^ msg);
        exit 2)
  in
  match Merlin_check.Check_driver.run ?rules ~roots ~src_roots ~lock_spec () with
  | findings -> (
    match !write_baseline with
    | Some file ->
      Merlin_lint.Baseline.save file (Merlin_lint.Baseline.of_findings findings);
      Printf.printf "merlin_check: wrote %d finding(s) to %s\n"
        (List.length findings) file
    | None ->
      let survivors, stale, live =
        Merlin_lint.Baseline.apply_detailed baseline_entries findings
      in
      let stale_rendered, stale_open =
        if !prune then (
          (match !baseline with
           | Some file -> Merlin_lint.Baseline.save file live
           | None -> ());
          Printf.eprintf "merlin_check: pruned %d stale entr%s from %s\n"
            (List.length stale)
            (match stale with [ _ ] -> "y" | _ -> "ies")
            (Option.value !baseline ~default:"");
          ([], []))
        else (stale_baseline_findings stale, stale)
      in
      let shown =
        List.sort Finding.compare_order (survivors @ stale_rendered)
      in
      print_string (Merlin_check.Check_driver.render !format shown);
      let failed =
        (match survivors with [] -> false | _ :: _ -> true)
        || (!strict && (match stale_open with [] -> false | _ :: _ -> true))
      in
      if failed then exit 1)
  | exception Sys_error msg ->
    prerr_endline ("merlin_check: " ^ msg);
    exit 2
