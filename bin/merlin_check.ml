(* merlin_check: typedtree-based whole-project analyzer.

   Usage:
     merlin_check [--format text|json|sarif] [--sarif]
                  [--baseline FILE] [--write-baseline FILE]
                  [--src-root DIR]... [ROOT...]

   ROOTs are files or directories scanned for .cmt/.cmti artifacts
   (default "."), so the tool is normally run from the dune build
   directory after a build.  --src-root trees (default "lib") are
   guarded for artifact coverage: a source there with no loaded cmt is
   itself a finding.

   Exit codes: 0 nothing survives the baseline, 1 any finding survives
   (warnings included: the baseline, not the severity, is the accepted-
   findings mechanism), 2 usage/IO failure. *)

let () =
  let format = ref Merlin_check.Check_driver.Text in
  let roots = ref [] in
  let src_roots = ref [] in
  let baseline = ref None in
  let write_baseline = ref None in
  let set_format s =
    format :=
      match s with
      | "json" -> Merlin_check.Check_driver.Json
      | "sarif" -> Merlin_check.Check_driver.Sarif
      | _ -> Merlin_check.Check_driver.Text
  in
  let spec =
    [ ( "--format",
        Arg.Symbol ([ "text"; "json"; "sarif" ], set_format),
        " output format (default text)" );
      ( "--sarif",
        Arg.Unit (fun () -> set_format "sarif"),
        " shorthand for --format sarif" );
      ( "--baseline",
        Arg.String (fun s -> baseline := Some s),
        "FILE subtract findings recorded in FILE (native or SARIF) \
         before reporting" );
      ( "--write-baseline",
        Arg.String (fun s -> write_baseline := Some s),
        "FILE record the current findings as the accepted baseline and \
         exit" );
      ( "--src-root",
        Arg.String (fun s -> src_roots := s :: !src_roots),
        "DIR source tree guarded for cmt coverage (repeatable; default \
         lib)" );
      ( "--rules",
        Arg.Unit
          (fun () ->
             List.iter
               (fun (name, sev, doc) ->
                  Printf.printf "%-22s %-7s %s\n" name
                    (Merlin_lint.Finding.severity_to_string sev)
                    doc)
               Merlin_check.Check_driver.rule_docs;
             exit 0),
        " list the rule set and exit" ) ]
  in
  let usage =
    "merlin_check [--format text|json|sarif] [--baseline FILE] \
     [--write-baseline FILE] [--src-root DIR]... [ROOT...]"
  in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  let roots = match List.rev !roots with [] -> [ "." ] | ps -> ps in
  let src_roots =
    match List.rev !src_roots with [] -> [ "lib" ] | ps -> ps
  in
  let baseline =
    match !baseline with
    | None -> []
    | Some file -> (
      match Merlin_lint.Baseline.load file with
      | Ok b -> b
      | Error msg ->
        prerr_endline ("merlin_check: --baseline " ^ file ^ ": " ^ msg);
        exit 2)
  in
  match Merlin_check.Check_driver.run ~roots ~src_roots with
  | findings -> (
    match !write_baseline with
    | Some file ->
      Merlin_lint.Baseline.save file (Merlin_lint.Baseline.of_findings findings);
      Printf.printf "merlin_check: wrote %d finding(s) to %s\n"
        (List.length findings) file
    | None ->
      let findings = Merlin_lint.Baseline.apply baseline findings in
      print_string (Merlin_check.Check_driver.render !format findings);
      (match findings with [] -> () | _ :: _ -> exit 1))
  | exception Sys_error msg ->
    prerr_endline ("merlin_check: " ^ msg);
    exit 2
