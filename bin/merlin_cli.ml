(* Command-line interface to the buffered routing tree flows.

     merlin-cli gen --sinks 12 --seed 7 -o net.txt
     merlin-cli gen --sinks 12 --nets 20 -o netlist.txt
     merlin-cli route net.txt --flow merlin --alpha 10
     merlin-cli route --random 10 --flow all -j 3 --stats
     merlin-cli route net.txt --objective area:50 --json
     merlin-cli circuit --name B9 --flow all -j 4 --stats
     merlin-cli serve --socket /tmp/merlin.sock -j 4 --store /var/cache/merlin
     merlin-cli submit net.txt --socket /tmp/merlin.sock --deadline 10
     merlin-cli submit --netlist netlist.txt --save-manifest routed.mf
     merlin-cli submit --netlist netlist.txt --eco routed.mf
     merlin-cli submit --admin stats --socket /tmp/merlin.sock

   Helpers return [(_, string) result] and errors surface through
   [Term.term_result'] — Cmdliner owns every exit path, so `--help`,
   usage errors and our own diagnostics all behave consistently (no
   [exit] from inside argument processing). *)

open Cmdliner
open Merlin_tech
open Merlin_net
module Flows = Merlin_flows.Flows
module FR = Merlin_circuit.Flow_runner
module Pool = Merlin_exec.Pool
module Json = Merlin_report.Json
module Metrics = Merlin_report.Metrics
module Serve = Merlin_serve

let tech = Tech.default
let buffers = Buffer_lib.default

let ( let* ) = Result.bind

let parse_shape = function
  | None -> Ok None
  | Some s -> (
    match Net_gen.shape_of_string s with
    | Some shape -> Ok (Some shape)
    | None ->
      Error
        (Printf.sprintf "unknown shape %s (clock-grid|high-fanout|clustered)" s))

let load_net ?shape file random seed =
  match (file, random) with
  | Some path, _ -> (
    match Net_io.load path with
    | net -> Ok net
    | exception Sys_error msg -> Error msg
    | exception Failure msg -> Error msg)
  | None, Some n -> (
    let* shape = parse_shape shape in
    match shape with
    | None -> Ok (Net_gen.random_net ~seed ~name:"random" ~n tech)
    | Some shape ->
      Ok (Net_gen.large_net ~seed ~name:"random" ~shape ~n tech))
  | None, None -> Error "either a net file or --random N is required"

let parse_objective = function
  | None -> Ok Merlin_core.Objective.Best_req
  | Some s -> (
    match String.split_on_char ':' s with
    | [ "best" ] -> Ok Merlin_core.Objective.Best_req
    | [ "area"; v ] -> (
      match float_of_string_opt v with
      | Some v -> Ok (Merlin_core.Objective.Max_req_under_area v)
      | None -> Error (Printf.sprintf "invalid area budget %S" v))
    | [ "req"; v ] -> (
      match float_of_string_opt v with
      | Some v -> Ok (Merlin_core.Objective.Min_area_over_req v)
      | None -> Error (Printf.sprintf "invalid req floor %S" v))
    | _ -> Error "objective must be best, area:<budget> or req:<floor>")

(* The hierarchical flow's clustering knobs, from the CLI options. *)
let make_cluster ~cluster_size ~clusters =
  let d = Merlin_hier.Cluster.default in
  { d with
    Merlin_hier.Cluster.target_size =
      Option.value cluster_size ~default:d.Merlin_hier.Cluster.target_size;
    n_clusters = clusters }

(* The knobs shared by `route` and `submit`: one flow name plus the
   optional alpha/objective/clustering overrides, resolved against the
   net. *)
let make_algo ~flow ~alpha ~objective ?(cluster_size = None) ?(clusters = None)
    net =
  let* objective = parse_objective objective in
  match Flows.default_algo flow with
  | Some (Flows.Merlin _) ->
    let base = Merlin_core.Config.scaled (Net.n_sinks net) in
    let cfg =
      match alpha with
      | None -> base
      | Some alpha -> { base with Merlin_core.Config.alpha }
    in
    Ok (Flows.Merlin { cfg = Some cfg; objective })
  | Some (Flows.Hier _) ->
    Ok
      (Flows.Hier
         { cluster = make_cluster ~cluster_size ~clusters;
           inner = Flows.Merlin { cfg = Some Flows.hier_merlin_cfg; objective }
         })
  | Some algo -> Ok algo
  | None ->
    Error
      (Printf.sprintf "unknown flow %s (merlin|lttree-ptree|ptree-vg|hier)"
         flow)

let run_spec ?pool spec net =
  match Flows.run ?pool spec net with
  | m -> Ok m
  | exception Flows.Infeasible msg -> Error msg

let print_metrics (m : Flows.metrics) =
  Format.printf
    "%-16s area=%.2f delay=%.1fps req=%.1fps buffers=%d wirelength=%d \
     loops=%d runtime=%.2fs@."
    m.Flows.flow m.Flows.area m.Flows.delay m.Flows.root_req m.Flows.n_buffers
    m.Flows.wirelength m.Flows.loops m.Flows.runtime

let emit_metrics ~json ~with_tree m =
  if json then
    print_endline
      (Json.to_string (Metrics.to_json (Flows.wire_metrics ~with_tree m)))
  else print_metrics m

let dump_stats pool =
  Format.eprintf "%a@." Pool.pp_stats (Pool.stats pool)

(* Curve-kernel telemetry (process-lifetime totals): frontier adds and
   Gc.allocated_bytes deltas per *PTREE entry point, see Star_ptree. *)
let dump_curve_stats () =
  let g = Atomic.get in
  let open Merlin_core.Star_ptree in
  let joins = g n_joins in
  let per v = if joins = 0 then 0.0 else float_of_int v /. float_of_int joins in
  Format.eprintf
    "curve kernel: joins=%d adds/join=%.1f front/join=%.1f B/join=%.0f \
     bytes=[join %d; close %d; pull %d; base %d]@."
    joins
    (per (g n_join_adds))
    (per (g n_join_survivors))
    (per (g bytes_join))
    (g bytes_join) (g bytes_close) (g bytes_pull) (g bytes_base)

let setup_verbose verbose =
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end

(* ---- route ---- *)

let route file random seed shape flow alpha objective cluster_size clusters
    json show_tree verbose jobs stats =
  (* May re-exec the process; must run before any domain is spawned. *)
  if jobs > 1 then Merlin_exec.Runparam.ensure_minor_heap ();
  setup_verbose verbose;
  let* net = load_net ?shape file random seed in
  if not json then Format.printf "%a@." Net.pp net;
  let cfg =
    let base = Merlin_core.Config.scaled (Net.n_sinks net) in
    match alpha with
    | None -> base
    | Some alpha -> { base with Merlin_core.Config.alpha }
  in
  let* objective = parse_objective objective in
  let run_flow3_verbose () =
    (* Rich human output for the headline flow: evaluation, hierarchy
       and (optionally) the routing tree. *)
    match Merlin_core.Merlin.run ~cfg ~objective ~tech ~buffers net with
    | None -> Error "objective infeasible on the final solution curve"
    | Some out ->
      let ev = Merlin_rtree.Eval.net tech net out.Merlin_core.Merlin.tree in
      Format.printf
        "MERLIN: req=%.1fps delay=%.1fps area=%.2f buffers=%d loops=%d@."
        ev.Merlin_rtree.Eval.root_req ev.Merlin_rtree.Eval.net_delay
        ev.Merlin_rtree.Eval.area
        (Merlin_rtree.Rtree.n_buffers out.Merlin_core.Merlin.tree)
        out.Merlin_core.Merlin.loops;
      Format.printf "hierarchy: %a@." Merlin_core.Catree.pp
        out.Merlin_core.Merlin.hierarchy;
      if show_tree then
        Format.printf "tree:@.%a@." Merlin_rtree.Rtree.pp
          out.Merlin_core.Merlin.tree;
      Ok 0
  in
  let emit = emit_metrics ~json ~with_tree:show_tree in
  let single algo =
    let* m = run_spec { Flows.tech; buffers; algo } net in
    emit m;
    Ok 0
  in
  let res =
    match flow with
  | "merlin" when not json -> run_flow3_verbose ()
  | "merlin" -> single (Flows.Merlin { cfg = Some cfg; objective })
  | "lttree-ptree" -> single (Flows.Lttree_ptree { max_fanout = 10 })
  | "ptree-vg" -> single (Flows.Ptree_vg { refine_seg = None })
  | "hier" ->
    (* Two-level decomposition; with -j the clusters route in parallel
       on the pool (bit-identical to sequential). *)
    let algo =
      Flows.Hier
        { cluster = make_cluster ~cluster_size ~clusters;
          inner = Flows.Merlin { cfg = Some Flows.hier_merlin_cfg; objective } }
    in
    let spec = { Flows.tech; buffers; algo } in
    (* Decomposition telemetry goes to stderr with the pool stats so
       --json stdout stays a clean metrics document. *)
    let dump_hier (m : Flows.metrics) =
      if stats then
        Format.eprintf "hier: levels=%d clusters=%d sizes=[%s]@." m.Flows.levels
          m.Flows.clusters
          (String.concat ";" (List.map string_of_int m.Flows.cluster_sizes))
    in
    if jobs > 1 then
      Pool.with_pool ~domains:jobs (fun pool ->
          let* m = run_spec ~pool spec net in
          emit m;
          dump_hier m;
          if stats then dump_stats pool;
          Ok 0)
    else
      let* m = run_spec spec net in
      emit m;
      dump_hier m;
      Ok 0
  | "all" when jobs > 1 ->
    (* The three flows are independent; run them as pool tasks.  The
       deterministic map keeps the output order I, II, III. *)
    let specs =
      [ Flows.Lttree_ptree { max_fanout = 10 };
        Flows.Ptree_vg { refine_seg = None };
        Flows.Merlin { cfg = Some cfg; objective = Merlin_core.Objective.Best_req } ]
    in
    Pool.with_pool ~domains:jobs (fun pool ->
        let ms =
          Pool.map ~chunk:1 pool
            (* Flows.run's only nondeterminism is its runtime telemetry
               (Clock.timed); trees and metrics are replay-identical. *)
            (fun algo -> Flows.run { Flows.tech; buffers; algo } net) (* check: nondet-ok *)
            specs
        in
        List.iter emit ms;
        if stats then dump_stats pool;
        Ok 0)
  | "all" ->
    List.iter emit (Flows.all ~tech ~buffers ~cfg3:cfg net);
    Ok 0
    | other ->
      Error
        (Printf.sprintf
           "unknown flow %s (merlin|lttree-ptree|ptree-vg|hier|all)" other)
  in
  if stats then dump_curve_stats ();
  res

(* ---- circuit ---- *)

let circuit name scale_down flow min_sinks jobs net_timeout stats =
  if jobs > 1 then Merlin_exec.Runparam.ensure_minor_heap ();
  let* netlist =
    match Merlin_circuit.Circuit_gen.generate ~scale_down ~name () with
    | nl -> Ok (Merlin_circuit.Placement.place nl)
    | exception Invalid_argument msg -> Error msg
  in
  let print_result (r : FR.result) =
    Format.printf
      "%-16s area=%.2f delay=%.1fps buffers=%d wirelength=%d nets=%d%s \
       runtime=%.2fs@."
      (FR.flow_name r.FR.flow) r.FR.area r.FR.delay r.FR.n_buffers
      r.FR.wirelength r.FR.nets_optimized
      (if r.FR.nets_timed_out > 0 then
         Printf.sprintf " timed-out=%d" r.FR.nets_timed_out
       else "")
      r.FR.runtime
  in
  let* flows =
    match flow with
    | "merlin" -> Ok [ FR.Flow3 ]
    | "lttree-ptree" -> Ok [ FR.Flow1 ]
    | "ptree-vg" -> Ok [ FR.Flow2 ]
    | "hier" -> Ok [ FR.Flow4 ]
    | "all" -> Ok [ FR.Flow1; FR.Flow2; FR.Flow3 ]
    | other ->
      Error
        (Printf.sprintf
           "unknown flow %s (merlin|lttree-ptree|ptree-vg|hier|all)" other)
  in
  Format.printf "%s: %d gates, %d nodes@." name
    (Array.length netlist.Merlin_circuit.Netlist.gates)
    (Merlin_circuit.Netlist.n_nodes netlist);
  let run pool =
    List.iter
      (fun flow ->
         print_result
           (FR.run ~tech ~buffers ~flow ~min_sinks ~jobs ?pool
              ?net_timeout_s:net_timeout netlist))
      flows
  in
  if jobs > 1 then
    Pool.with_pool ~domains:jobs (fun pool ->
        run (Some pool);
        if stats then dump_stats pool)
  else run None;
  Ok 0

(* ---- gen ---- *)

let gen sinks seed shape nets output =
  let* shape = parse_shape shape in
  let make ~name ~seed =
    match shape with
    | None -> Net_gen.random_net ~seed ~name ~n:sinks tech
    | Some shape -> Net_gen.large_net ~seed ~name ~shape ~n:sinks tech
  in
  match nets with
  | None ->
    let net = make ~name:"generated" ~seed in
    (match output with
     | Some path ->
       Net_io.save path net;
       Printf.printf "wrote %s (%d sinks)\n" path sinks
     | None -> print_string (Net_io.to_string net));
    Ok 0
  | Some k when k >= 1 ->
    (* A whole netlist for `submit --netlist`: distinct names (ECO
       manifest keys) and distinct seeds per net. *)
    let netlist =
      List.init k (fun i ->
          make ~name:(Printf.sprintf "gen#n%d" i) ~seed:(seed + i))
    in
    (match output with
     | Some path ->
       Net_io.save_many path netlist;
       Printf.printf "wrote %s (%d nets, %d sinks each)\n" path k sinks
     | None -> print_string (Net_io.to_string_many netlist));
    Ok 0
  | Some k -> Error (Printf.sprintf "--nets %d: need at least 1" k)

(* ---- serve ---- *)

let parse_tcp = function
  | None -> Ok None
  | Some s -> (
    match String.rindex_opt s ':' with
    | None -> Error (Printf.sprintf "--tcp %S: expected HOST:PORT" s)
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (Some (host, p))
      | _ -> Error (Printf.sprintf "--tcp %S: invalid port %S" s port)))

let serve socket_path tcp jobs cache_capacity store_dir default_deadline_s
    verbose =
  setup_verbose verbose;
  (* The pool spawns domains at startup; grow the minor heap first. *)
  Merlin_exec.Runparam.ensure_minor_heap ();
  let* tcp = parse_tcp tcp in
  let cfg =
    { (Serve.Server.default_config ~socket_path) with
      Serve.Server.tcp;
      domains = jobs;
      cache_capacity;
      store_dir;
      default_deadline_s }
  in
  match Serve.Server.start cfg with
  | server ->
    Printf.printf "merlin-serve: listening on %s%s\n%!" socket_path
      (match tcp with
       | None -> ""
       | Some (h, p) -> Printf.sprintf " and %s:%d" h p);
    Serve.Server.wait server;
    Printf.printf "merlin-serve: drained, bye\n%!";
    Ok 0
  | exception Unix.Unix_error (err, _, arg) ->
    Error
      (Printf.sprintf "cannot listen on %s: %s %s" socket_path
         (Unix.error_message err) arg)
  | exception Invalid_argument msg -> Error msg  (* bad --store path *)

(* ---- submit ---- *)

let print_wire_metrics ~cached (m : Metrics.t) =
  Format.printf
    "%-16s area=%.2f delay=%.1fps req=%.1fps buffers=%d wirelength=%d \
     loops=%d runtime=%.2fs%s@."
    m.Metrics.flow m.Metrics.area m.Metrics.delay m.Metrics.root_req
    m.Metrics.n_buffers m.Metrics.wirelength m.Metrics.loops
    m.Metrics.runtime
    (match cached with Serve.Wire.Hit -> "  [cached]" | Serve.Wire.Miss -> "");
  match m.Metrics.tree with
  | Some tree -> Format.printf "tree:@.%a@." Merlin_rtree.Rtree.pp tree
  | None -> ()

let refused_error kind message =
  Error
    (Printf.sprintf "%s: %s" (Serve.Wire.error_kind_to_string kind) message)

(* The batch spec is one algo for every net, so per-net knobs cannot be
   resolved against a single sink count: MERLIN runs with [cfg = None]
   (the server scales per net) unless --alpha pins a config. *)
let make_batch_algo ~flow ~alpha ~objective =
  let* objective = parse_objective objective in
  match Flows.default_algo flow with
  | Some (Flows.Merlin _) ->
    let cfg =
      match alpha with
      | None -> None
      | Some alpha -> Some { Merlin_core.Config.default with alpha }
    in
    Ok (Flows.Merlin { cfg; objective })
  | Some (Flows.Hier _) ->
    Ok
      (Flows.Hier
         { cluster = Merlin_hier.Cluster.default;
           inner = Flows.Merlin { cfg = Some Flows.hier_merlin_cfg; objective }
         })
  | Some algo -> Ok algo
  | None ->
    Error
      (Printf.sprintf "unknown flow %s (merlin|lttree-ptree|ptree-vg|hier)"
         flow)

(* Netlist files may repeat a net name; manifest keys must not. *)
let unique_names nets =
  let seen = Hashtbl.create 16 in
  List.map
    (fun (net : Net.t) ->
       let base = net.Net.name in
       let n =
         match Hashtbl.find_opt seen base with None -> 0 | Some n -> n
       in
       Hashtbl.replace seen base (n + 1);
       ((if n = 0 then base else Printf.sprintf "%s#%d" base n), net))
    nets

(* An ECO manifest is one `<fingerprint> <name>` line per routed net
   (names may contain anything but newlines; fingerprints are hex, so
   the first space is an unambiguous separator). *)
let parse_manifest text =
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let line = String.trim line in
      if String.equal line "" then go acc (lineno + 1) rest
      else
        match String.index_opt line ' ' with
        | None ->
          Error
            (Printf.sprintf
               "manifest line %d: expected `<fingerprint> <name>`" lineno)
        | Some i ->
          let fp = String.sub line 0 i in
          let name = String.sub line (i + 1) (String.length line - i - 1) in
          go ((name, fp) :: acc) (lineno + 1) rest)
  in
  go [] 1 (String.split_on_char '\n' text)

let load_manifest path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> parse_manifest text
  | exception Sys_error msg -> Error msg

let save_manifest_file path entries =
  match
    Out_channel.with_open_bin path (fun oc ->
        List.iter
          (fun (name, fp) -> Printf.fprintf oc "%s %s\n" fp name)
          entries)
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let render_progress ~json ~total (p : Serve.Wire.progress) =
  let tag =
    Printf.sprintf "[%d/%d] %s" (p.Serve.Wire.index + 1) total
      p.Serve.Wire.name
  in
  match p.Serve.Wire.status with
  | Serve.Wire.Routed { cached; metrics } ->
    (* --json: one canonical metrics object per routed net on stdout;
       everything human goes to stderr. *)
    if json then print_endline (Json.to_string (Metrics.to_json metrics))
    else
      Format.printf
        "%s: area=%.2f delay=%.1fps req=%.1fps buffers=%d runtime=%.2fs%s@."
        tag metrics.Metrics.area metrics.Metrics.delay metrics.Metrics.root_req
        metrics.Metrics.n_buffers metrics.Metrics.runtime
        (match cached with
         | Serve.Wire.Hit -> "  [cached]"
         | Serve.Wire.Miss -> "")
  | Serve.Wire.Unchanged ->
    if not json then Format.printf "%s: unchanged@." tag
  | Serve.Wire.Net_failed { kind; message } ->
    Format.eprintf "%s: %s: %s@." tag
      (Serve.Wire.error_kind_to_string kind)
      message
  | Serve.Wire.Cancelled -> Format.eprintf "%s: cancelled@." tag

let submit_batch client ~netlist_path ~flow ~alpha ~objective ~deadline_s
    ~want_tree ~json ~job ~eco ~save_manifest =
  let* nets =
    match Net_io.load_many netlist_path with
    | nets -> Ok (unique_names nets)
    | exception Sys_error msg -> Error msg
    | exception Failure msg -> Error msg
  in
  let* () =
    match nets with
    | [] -> Error "netlist file contains no nets"
    | _ :: _ -> Ok ()
  in
  let* algo = make_batch_algo ~flow ~alpha ~objective in
  let* manifest =
    match eco with
    | None -> Ok None
    | Some path -> Result.map Option.some (load_manifest path)
  in
  let total = List.length nets in
  let batch =
    { Serve.Wire.job;
      spec = { Flows.tech; buffers; algo };
      nets;
      deadline_s;
      want_tree;
      manifest }
  in
  let* summary =
    Serve.Client.run_batch client batch
      ~on_progress:(render_progress ~json ~total)
  in
  let report fmt = if json then Format.eprintf fmt else Format.printf fmt in
  report
    "batch %s: total=%d routed=%d hits=%d unchanged=%d failed=%d \
     cancelled=%d wall=%.2fs@."
    job summary.Serve.Wire.total summary.Serve.Wire.routed
    summary.Serve.Wire.hits summary.Serve.Wire.unchanged
    summary.Serve.Wire.failed summary.Serve.Wire.cancelled
    summary.Serve.Wire.wall_s;
  let* () =
    match save_manifest with
    | None -> Ok ()
    | Some path ->
      let* () =
        save_manifest_file path
          (List.map (fun (name, net) -> (name, Net_io.fingerprint net)) nets)
      in
      if not json then Format.printf "manifest written to %s@." path;
      Ok ()
  in
  if summary.Serve.Wire.failed > 0 || summary.Serve.Wire.cancelled > 0 then
    Error
      (Printf.sprintf "batch incomplete: %d failed, %d cancelled of %d"
         summary.Serve.Wire.failed summary.Serve.Wire.cancelled
         summary.Serve.Wire.total)
  else Ok 0

let submit file random seed socket_path flow alpha objective deadline_s
    want_tree json id admin netlist_file eco save_manifest =
  let* client =
    match Serve.Client.connect_unix socket_path with
    | c -> Ok c
    | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "cannot connect to %s: %s (is `merlin-cli serve` \
                         running?)" socket_path (Unix.error_message err))
  in
  Fun.protect ~finally:(fun () -> Serve.Client.close client) @@ fun () ->
  let admin_op =
    match admin with
    | Some "stats" -> Some (Ok Serve.Wire.Stats)
    | Some "ping" -> Some (Ok Serve.Wire.Ping)
    | Some "drain" -> Some (Ok Serve.Wire.Drain)
    | Some "shutdown" -> Some (Ok Serve.Wire.Shutdown)
    | Some other ->
      Some
        (Error
           (Printf.sprintf "unknown admin op %s (stats|ping|drain|shutdown)"
              other))
    | None -> None
  in
  match (admin_op, netlist_file) with
  | Some op, _ ->
    let* op = op in
    let* reply = Serve.Client.call client (Serve.Wire.Admin { job = id; op }) in
    (match reply with
     | Serve.Wire.Stats_reply { stats; _ } ->
       print_endline (Json.to_string stats);
       Ok 0
     | Serve.Wire.Pong _ ->
       print_endline "pong";
       Ok 0
     | Serve.Wire.Admin_ok { what; _ } ->
       print_endline what;
       Ok 0
     | Serve.Wire.Refused { kind; message; _ } -> refused_error kind message
     | Serve.Wire.Reply _ | Serve.Wire.Progress _ | Serve.Wire.Batch_done _ ->
       Error "unexpected reply to an admin request")
  | None, Some netlist_path ->
    submit_batch client ~netlist_path ~flow ~alpha ~objective ~deadline_s
      ~want_tree ~json ~job:id ~eco ~save_manifest
  | None, None ->
    let* net = load_net file random seed in
    let* algo = make_algo ~flow ~alpha ~objective net in
    let* reply =
      Serve.Client.call client
        (Serve.Wire.Route
           { Serve.Wire.job = id;
             spec = { Flows.tech; buffers; algo };
             net;
             deadline_s;
             want_tree })
    in
    (match reply with
     | Serve.Wire.Reply { cached; metrics; _ } ->
       if json then print_endline (Json.to_string (Metrics.to_json metrics))
       else print_wire_metrics ~cached metrics;
       Ok 0
     | Serve.Wire.Refused { kind; message; _ } -> refused_error kind message
     | Serve.Wire.Stats_reply _ | Serve.Wire.Pong _ | Serve.Wire.Admin_ok _
     | Serve.Wire.Progress _ | Serve.Wire.Batch_done _ ->
       Error "unexpected reply to a route request")

(* ---- cmdliner plumbing ---- *)

let file_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"NET" ~doc:"Net file (Net_io format)")

let random_arg =
  Arg.(value & opt (some int) None & info [ "random" ] ~docv:"N" ~doc:"Use a random net with $(docv) sinks")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed")

let flow_arg =
  Arg.(
    value & opt string "merlin"
    & info [ "flow"; "algo" ]
        ~doc:"merlin | lttree-ptree | ptree-vg | hier | all")

let shape_arg =
  Arg.(
    value & opt (some string) None
    & info [ "shape" ] ~docv:"SHAPE"
        ~doc:"Large-net shape for generated nets: clock-grid | high-fanout \
              | clustered (default: the paper's small-net recipe)")

let cluster_size_arg =
  Arg.(
    value & opt (some int) None
    & info [ "cluster-size" ] ~docv:"N"
        ~doc:"Hier flow: target sinks per cluster (default 10)")

let clusters_arg =
  Arg.(
    value & opt (some int) None
    & info [ "clusters" ] ~docv:"K"
        ~doc:"Hier flow: force the cluster count")

let alpha_arg =
  Arg.(value & opt (some int) None & info [ "alpha" ] ~doc:"Max branching factor of the C-alpha tree")

let objective_arg =
  Arg.(value & opt (some string) None & info [ "objective" ] ~doc:"best | area:<budget> | req:<floor>")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit metrics as JSON (the versioned Metrics wire schema)")

let tree_arg = Arg.(value & flag & info [ "tree" ] ~doc:"Print/include the routing tree")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for parallel execution (1 = sequential)")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Dump execution-engine telemetry to stderr")

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/merlin-serve.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let route_cmd =
  Cmd.v
    (Cmd.info "route" ~doc:"Build a buffered routing tree for a net")
    (Term.term_result'
       Term.(
         const route $ file_arg $ random_arg $ seed_arg $ shape_arg $ flow_arg
         $ alpha_arg $ objective_arg $ cluster_size_arg $ clusters_arg
         $ json_arg $ tree_arg $ verbose_arg $ jobs_arg $ stats_arg))

let circuit_cmd =
  let name_arg =
    Arg.(
      value & opt string "B9"
      & info [ "name" ] ~docv:"CIRCUIT"
          ~doc:"Table-2 circuit name (see Circuit_gen.table2_specs)")
  in
  let scale_down =
    Arg.(
      value & opt int 200
      & info [ "scale-down" ] ~docv:"K" ~doc:"Divide the published gate count by $(docv)")
  in
  let min_sinks =
    Arg.(
      value & opt int 2
      & info [ "min-sinks" ] ~doc:"Skip nets with fewer sinks")
  in
  let net_timeout =
    Arg.(
      value & opt (some float) None
      & info [ "net-timeout" ] ~docv:"S"
          ~doc:"Per-net optimization budget in seconds; expired nets keep \
                their star routing (non-deterministic — off by default)")
  in
  Cmd.v
    (Cmd.info "circuit"
       ~doc:"Run a full-circuit flow (Table 2 style) on the execution engine")
    (Term.term_result'
       Term.(
         const circuit $ name_arg $ scale_down $ flow_arg $ min_sinks
         $ jobs_arg $ net_timeout $ stats_arg))

let gen_cmd =
  let sinks = Arg.(value & opt int 8 & info [ "sinks" ] ~doc:"Sink count") in
  let nets =
    Arg.(
      value & opt (some int) None
      & info [ "nets" ] ~docv:"K"
          ~doc:"Generate a $(docv)-net netlist file (for submit --netlist)")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file")
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"Generate a random net (paper Section IV recipe, or a large-net \
             shape with --shape)")
    (Term.term_result'
       Term.(const gen $ sinks $ seed_arg $ shape_arg $ nets $ output))

let serve_cmd =
  let tcp_arg =
    Arg.(
      value & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Additionally listen on a TCP socket")
  in
  let serve_jobs =
    Arg.(
      value & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: recommended domain count)")
  in
  let cache_arg =
    Arg.(
      value & opt int 256
      & info [ "cache" ] ~docv:"N" ~doc:"Result-cache capacity (entries)")
  in
  let store_arg =
    Arg.(
      value & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:"Persistent result-cache directory (survives restarts)")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "default-deadline" ] ~docv:"S"
          ~doc:"Budget applied to requests that carry no deadline")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the routing-service daemon (length-prefixed JSON over a \
             Unix socket)")
    (Term.term_result'
       Term.(
         const serve $ socket_arg $ tcp_arg $ serve_jobs $ cache_arg
         $ store_arg $ deadline_arg $ verbose_arg))

let submit_cmd =
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"S" ~doc:"Per-request compute budget")
  in
  let id_arg =
    Arg.(
      value & opt string "cli"
      & info [ "id" ] ~doc:"Request id echoed in the reply")
  in
  let admin_arg =
    Arg.(
      value & opt (some string) None
      & info [ "admin" ] ~docv:"OP"
          ~doc:"Send an admin op instead of a route: stats | ping | drain \
                | shutdown")
  in
  let netlist_arg =
    Arg.(
      value & opt (some string) None
      & info [ "netlist" ] ~docv:"FILE"
          ~doc:"Submit every net of a multi-net file as one batch job with \
                streamed progress")
  in
  let eco_arg =
    Arg.(
      value & opt (some string) None
      & info [ "eco" ] ~docv:"MANIFEST"
          ~doc:"ECO mode for --netlist: only re-route nets whose fingerprint \
                differs from $(docv) (written by --save-manifest)")
  in
  let save_manifest_arg =
    Arg.(
      value & opt (some string) None
      & info [ "save-manifest" ] ~docv:"FILE"
          ~doc:"After a --netlist batch, write its fingerprint manifest for \
                a later --eco run")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a routing request (or a whole-netlist batch) to a \
             running daemon")
    (Term.term_result'
       Term.(
         const submit $ file_arg $ random_arg $ seed_arg $ socket_arg
         $ flow_arg $ alpha_arg $ objective_arg $ deadline_arg $ tree_arg
         $ json_arg $ id_arg $ admin_arg $ netlist_arg $ eco_arg
         $ save_manifest_arg))

let main =
  Cmd.group
    (Cmd.info "merlin-cli" ~version:"1.0.0"
       ~doc:"MERLIN buffered routing tree generation (DAC 1999 reproduction)")
    [ route_cmd; gen_cmd; circuit_cmd; serve_cmd; submit_cmd ]

let () = exit (Cmd.eval' main)
