(* Command-line interface to the buffered routing tree flows.

     merlin-cli gen --sinks 12 --seed 7 -o net.txt
     merlin-cli route net.txt --flow merlin --alpha 10
     merlin-cli route --random 10 --flow all -j 3 --stats
     merlin-cli route net.txt --objective area:50
     merlin-cli circuit --name B9 --flow all -j 4 --stats
*)

open Cmdliner
open Merlin_tech
open Merlin_net
module Flows = Merlin_flows.Flows
module FR = Merlin_circuit.Flow_runner
module Pool = Merlin_exec.Pool

let tech = Tech.default
let buffers = Buffer_lib.default

let load_net file random seed =
  match (file, random) with
  | Some path, _ -> Net_io.load path
  | None, Some n -> Net_gen.random_net ~seed ~name:"random" ~n tech
  | None, None ->
    prerr_endline "either a net file or --random N is required";
    exit 2

let parse_objective = function
  | None -> Merlin_core.Objective.Best_req
  | Some s ->
    (match String.split_on_char ':' s with
     | [ "best" ] -> Merlin_core.Objective.Best_req
     | [ "area"; v ] ->
       Merlin_core.Objective.Max_req_under_area (float_of_string v)
     | [ "req"; v ] ->
       Merlin_core.Objective.Min_area_over_req (float_of_string v)
     | _ ->
       prerr_endline "objective must be best, area:<budget> or req:<floor>";
       exit 2)

let print_metrics (m : Flows.metrics) =
  Format.printf
    "%-16s area=%.2f delay=%.1fps req=%.1fps buffers=%d wirelength=%d \
     loops=%d runtime=%.2fs@."
    m.Flows.flow m.Flows.area m.Flows.delay m.Flows.root_req m.Flows.n_buffers
    m.Flows.wirelength m.Flows.loops m.Flows.runtime

let dump_stats pool =
  Format.eprintf "%a@." Pool.pp_stats (Pool.stats pool)

(* ---- route ---- *)

let route file random seed flow alpha objective show_tree verbose jobs stats =
  (* May re-exec the process; must run before any domain is spawned. *)
  if jobs > 1 then Merlin_exec.Runparam.ensure_minor_heap ();
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let net = load_net file random seed in
  Format.printf "%a@." Net.pp net;
  let cfg =
    let base = Merlin_core.Config.scaled (Net.n_sinks net) in
    match alpha with
    | None -> base
    | Some alpha -> { base with Merlin_core.Config.alpha }
  in
  let objective = parse_objective objective in
  let run_flow3 () =
    match Merlin_core.Merlin.run ~cfg ~objective ~tech ~buffers net with
    | None ->
      prerr_endline "objective infeasible on the final solution curve";
      exit 1
    | Some out ->
      let ev = Merlin_rtree.Eval.net tech net out.Merlin_core.Merlin.tree in
      Format.printf
        "MERLIN: req=%.1fps delay=%.1fps area=%.2f buffers=%d loops=%d@."
        ev.Merlin_rtree.Eval.root_req ev.Merlin_rtree.Eval.net_delay
        ev.Merlin_rtree.Eval.area
        (Merlin_rtree.Rtree.n_buffers out.Merlin_core.Merlin.tree)
        out.Merlin_core.Merlin.loops;
      Format.printf "hierarchy: %a@." Merlin_core.Catree.pp
        out.Merlin_core.Merlin.hierarchy;
      if show_tree then
        Format.printf "tree:@.%a@." Merlin_rtree.Rtree.pp
          out.Merlin_core.Merlin.tree
  in
  (match flow with
   | "merlin" -> run_flow3 ()
   | "lttree-ptree" -> print_metrics (Flows.flow1 ~tech ~buffers net)
   | "ptree-vg" -> print_metrics (Flows.flow2 ~tech ~buffers net)
   | "all" when jobs > 1 ->
     (* The three flows are independent; run them as pool tasks.  The
        deterministic map keeps the output order I, II, III. *)
     Pool.with_pool ~domains:jobs (fun pool ->
         let ms =
           Pool.map ~chunk:1 pool
             (fun f -> f ())
             [ (fun () -> Flows.flow1 ~tech ~buffers net);
               (fun () -> Flows.flow2 ~tech ~buffers net);
               (fun () -> Flows.flow3 ~tech ~buffers ~cfg net) ]
         in
         List.iter print_metrics ms;
         if stats then dump_stats pool)
   | "all" -> List.iter print_metrics (Flows.all ~tech ~buffers ~cfg3:cfg net)
   | other ->
     Printf.eprintf "unknown flow %s (merlin|lttree-ptree|ptree-vg|all)\n" other;
     exit 2);
  0

(* ---- circuit ---- *)

let circuit name scale_down flow min_sinks jobs net_timeout stats =
  if jobs > 1 then Merlin_exec.Runparam.ensure_minor_heap ();
  let netlist =
    match
      Merlin_circuit.Circuit_gen.generate ~scale_down ~name ()
    with
    | nl -> Merlin_circuit.Placement.place nl
    | exception Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let print_result (r : FR.result) =
    Format.printf
      "%-16s area=%.2f delay=%.1fps buffers=%d wirelength=%d nets=%d%s \
       runtime=%.2fs@."
      (FR.flow_name r.FR.flow) r.FR.area r.FR.delay r.FR.n_buffers
      r.FR.wirelength r.FR.nets_optimized
      (if r.FR.nets_timed_out > 0 then
         Printf.sprintf " timed-out=%d" r.FR.nets_timed_out
       else "")
      r.FR.runtime
  in
  let flows =
    match flow with
    | "merlin" -> [ FR.Flow3 ]
    | "lttree-ptree" -> [ FR.Flow1 ]
    | "ptree-vg" -> [ FR.Flow2 ]
    | "all" -> [ FR.Flow1; FR.Flow2; FR.Flow3 ]
    | other ->
      Printf.eprintf "unknown flow %s (merlin|lttree-ptree|ptree-vg|all)\n"
        other;
      exit 2
  in
  Format.printf "%s: %d gates, %d nodes@." name
    (Array.length netlist.Merlin_circuit.Netlist.gates)
    (Merlin_circuit.Netlist.n_nodes netlist);
  let run pool =
    List.iter
      (fun flow ->
         print_result
           (FR.run ~tech ~buffers ~flow ~min_sinks ~jobs ?pool
              ?net_timeout_s:net_timeout netlist))
      flows
  in
  if jobs > 1 then
    Pool.with_pool ~domains:jobs (fun pool ->
        run (Some pool);
        if stats then dump_stats pool)
  else run None;
  0

(* ---- gen ---- *)

let gen sinks seed output =
  let net = Net_gen.random_net ~seed ~name:"generated" ~n:sinks tech in
  (match output with
   | Some path ->
     Net_io.save path net;
     Printf.printf "wrote %s (%d sinks)\n" path sinks
   | None -> print_string (Net_io.to_string net));
  0

(* ---- cmdliner plumbing ---- *)

let file_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"NET" ~doc:"Net file (Net_io format)")

let random_arg =
  Arg.(value & opt (some int) None & info [ "random" ] ~docv:"N" ~doc:"Use a random net with $(docv) sinks")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed")

let flow_arg =
  Arg.(value & opt string "merlin" & info [ "flow" ] ~doc:"merlin | lttree-ptree | ptree-vg | all")

let alpha_arg =
  Arg.(value & opt (some int) None & info [ "alpha" ] ~doc:"Max branching factor of the C-alpha tree")

let objective_arg =
  Arg.(value & opt (some string) None & info [ "objective" ] ~doc:"best | area:<budget> | req:<floor>")

let tree_arg = Arg.(value & flag & info [ "tree" ] ~doc:"Print the routing tree")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for parallel execution (1 = sequential)")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Dump execution-engine telemetry to stderr")

let route_cmd =
  Cmd.v
    (Cmd.info "route" ~doc:"Build a buffered routing tree for a net")
    Term.(
      const route $ file_arg $ random_arg $ seed_arg $ flow_arg $ alpha_arg
      $ objective_arg $ tree_arg $ verbose_arg $ jobs_arg $ stats_arg)

let circuit_cmd =
  let name_arg =
    Arg.(
      value & opt string "B9"
      & info [ "name" ] ~docv:"CIRCUIT"
          ~doc:"Table-2 circuit name (see Circuit_gen.table2_specs)")
  in
  let scale_down =
    Arg.(
      value & opt int 200
      & info [ "scale-down" ] ~docv:"K" ~doc:"Divide the published gate count by $(docv)")
  in
  let min_sinks =
    Arg.(
      value & opt int 2
      & info [ "min-sinks" ] ~doc:"Skip nets with fewer sinks")
  in
  let net_timeout =
    Arg.(
      value & opt (some float) None
      & info [ "net-timeout" ] ~docv:"S"
          ~doc:"Per-net optimization budget in seconds; expired nets keep \
                their star routing (non-deterministic — off by default)")
  in
  Cmd.v
    (Cmd.info "circuit"
       ~doc:"Run a full-circuit flow (Table 2 style) on the execution engine")
    Term.(
      const circuit $ name_arg $ scale_down $ flow_arg $ min_sinks $ jobs_arg
      $ net_timeout $ stats_arg)

let gen_cmd =
  let sinks = Arg.(value & opt int 8 & info [ "sinks" ] ~doc:"Sink count") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a random net (paper Section IV recipe)")
    Term.(const gen $ sinks $ seed_arg $ output)

let main =
  Cmd.group
    (Cmd.info "merlin-cli" ~version:"1.0.0"
       ~doc:"MERLIN buffered routing tree generation (DAC 1999 reproduction)")
    [ route_cmd; gen_cmd; circuit_cmd ]

let () = exit (Cmd.eval' main)
