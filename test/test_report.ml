open Merlin_report.Report
module Json = Merlin_report.Json
module Metrics = Merlin_report.Metrics

let test_cells () =
  Alcotest.(check string) "string" "x" (cell_to_string (S "x"));
  Alcotest.(check string) "int" "42" (cell_to_string (I 42));
  Alcotest.(check string) "float small" "3.14" (cell_to_string (F 3.14159));
  Alcotest.(check string) "float big" "12345" (cell_to_string (F 12345.4));
  Alcotest.(check string) "ratio" "0.46" (cell_to_string (R 0.456));
  Alcotest.(check string) "nan" "-" (cell_to_string (F nan))

let test_means () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (mean []);
  Alcotest.(check (float 1e-6)) "geomean" 2.0 (geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (ratio 1.0 2.0);
  Alcotest.(check (float 1e-9)) "ratio by zero" 0.0 (ratio 1.0 0.0)

let test_print_does_not_raise () =
  (* Smoke: ragged rows and empty tables render without exceptions. *)
  print ~title:"t" ~header:[ "a"; "b" ] [ [ S "x" ]; [ I 1; F 2.0; R 3.0 ] ];
  print ~title:"empty" ~header:[ "only" ] []

(* ---------------- metrics wire format ---------------- *)

let sample_tree () =
  let b = Merlin_tech.Buffer_lib.default.(0) in
  let sink id x y =
    Merlin_rtree.Rtree.leaf
      (Merlin_net.Sink.make ~id ~pt:(Merlin_geometry.Point.make x y) ~cap:7.5
         ~req:(1000.0 /. 3.0))
  in
  Merlin_rtree.Rtree.node
    (Merlin_geometry.Point.make 5 5)
    [ sink 0 0 40;
      Merlin_rtree.Rtree.node ~buffer:b
        (Merlin_geometry.Point.make 60 5)
        [ sink 1 90 0; sink 2 90 30 ] ]

let sample_metrics tree =
  { Metrics.flow = "III:MERLIN";
    area = 48.25;
    delay = 1056.71;
    root_req = 2564.0 /. 3.0;
    runtime = 0.125;
    n_buffers = 1;
    wirelength = 8393;
    loops = 2;
    clusters = 0;
    levels = 0;
    cluster_sizes = [];
    tree }

let roundtrip name m =
  let j = Metrics.to_json m in
  match Metrics.of_json j with
  | Error msg -> Alcotest.fail (name ^ ": " ^ msg)
  | Ok m' ->
    Alcotest.(check string) name (Json.to_string j)
      (Json.to_string (Metrics.to_json m'));
    (* The document must also survive a text round trip: parse back the
       printed form and re-encode byte-identically (shortest-decimal
       float printing). *)
    Alcotest.(check string) (name ^ " via text") (Json.to_string j)
      (Json.to_string (Json.of_string (Json.to_string j)))

let test_metrics_roundtrip () =
  roundtrip "without tree" (sample_metrics None);
  roundtrip "with tree" (sample_metrics (Some (sample_tree ())));
  (* Flow IV documents carry a cluster count; flat documents omit the
     field entirely (schema v1 compatibility), and the decoder defaults
     it to 0. *)
  roundtrip "with clusters" { (sample_metrics None) with Metrics.clusters = 7 };
  (* ... and the full hier triple: count, depth and per-cluster sizes. *)
  roundtrip "with hier fields"
    { (sample_metrics None) with
      Metrics.clusters = 3;
      levels = 2;
      cluster_sizes = [ 4; 5; 3 ] }

let test_metrics_clusters_field () =
  let flat = Metrics.to_json (sample_metrics None) in
  Alcotest.(check bool) "flat document has no clusters field" true
    (match Json.member "clusters" flat with None -> true | Some _ -> false);
  Alcotest.(check bool) "flat document has no levels field" true
    (match Json.member "levels" flat with None -> true | Some _ -> false);
  Alcotest.(check bool) "flat document has no cluster_sizes field" true
    (match Json.member "cluster_sizes" flat with
     | None -> true
     | Some _ -> false);
  (let hier =
     Metrics.to_json
       { (sample_metrics None) with
         Metrics.clusters = 3;
         levels = 2;
         cluster_sizes = [ 4; 5; 3 ] }
   in
   match Metrics.of_json hier with
   | Ok m ->
     Alcotest.(check int) "levels encoded" 2 m.Metrics.levels;
     Alcotest.(check (list int)) "cluster_sizes encoded" [ 4; 5; 3 ]
       m.Metrics.cluster_sizes
   | Error msg -> Alcotest.fail msg);
  let hier =
    Metrics.to_json { (sample_metrics None) with Metrics.clusters = 7 }
  in
  (match Json.member "clusters" hier with
   | Some (Json.Num v) -> Alcotest.(check int) "clusters encoded" 7 (int_of_float v)
   | Some _ | None -> Alcotest.fail "hier document lacks clusters field");
  match Metrics.of_json flat with
  | Ok m ->
    Alcotest.(check int) "decoder defaults clusters" 0 m.Metrics.clusters;
    Alcotest.(check int) "decoder defaults levels" 0 m.Metrics.levels;
    Alcotest.(check (list int)) "decoder defaults cluster_sizes" []
      m.Metrics.cluster_sizes
  | Error msg -> Alcotest.fail msg

let test_metrics_versioning () =
  let j = Metrics.to_json (sample_metrics None) in
  (match Json.member "v" j with
   | Some (Json.Num v) ->
     Alcotest.(check int) "carries the schema version" Metrics.version
       (int_of_float v)
   | Some _ | None -> Alcotest.fail "no version field");
  let bumped =
    match j with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) -> if String.equal k "v" then (k, Json.Num 999.0) else (k, v))
           fields)
    | _ -> Alcotest.fail "metrics not an object"
  in
  match Metrics.of_json bumped with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoder accepted a future schema version"

let suite =
  ( "report",
    [ Alcotest.test_case "cells" `Quick test_cells;
      Alcotest.test_case "means" `Quick test_means;
      Alcotest.test_case "print smoke" `Quick test_print_does_not_raise;
      Alcotest.test_case "metrics json round trip" `Quick
        test_metrics_roundtrip;
      Alcotest.test_case "metrics clusters field" `Quick
        test_metrics_clusters_field;
      Alcotest.test_case "metrics schema version" `Quick
        test_metrics_versioning ] )
