(* End-to-end smoke test of the routing-service daemon (@serve-smoke).

   Boots a server on an ephemeral Unix socket (plus an ephemeral TCP
   port), then checks, over real sockets:

   - N concurrent submits return byte-identical metrics to direct
     in-process [Flows.run] calls (runtime zeroed on both sides — wall
     clock is the one legitimately non-deterministic field);
   - a repeated request is answered from the cache: [cached] flips to
     true, the cache hit counter increments and the pool's submitted
     counter does not move;
   - a request with a tiny deadline gets a structured timeout reply and
     the daemon keeps serving afterwards;
   - the TCP listener answers;
   - drain refuses new routes while ping still answers;
   - shutdown via the protocol unblocks [Server.wait]. *)

open Merlin_tech
open Merlin_net
module Flows = Merlin_flows.Flows
module Json = Merlin_report.Json
module Metrics = Merlin_report.Metrics
module Serve = Merlin_serve

let tech = Tech.default
let buffers = Buffer_lib.default

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let check name b = if not b then fail "%s" name

let spec algo = { Flows.tech; buffers; algo }

let fast_merlin =
  Flows.Merlin
    { cfg =
        Some
          { Merlin_core.Config.default with
            Merlin_core.Config.candidate_limit = 8;
            max_curve = 5;
            buffer_trials = 4;
            max_iters = 1 };
      objective = Merlin_core.Objective.Best_req }

(* The four concurrent requests: distinct nets, one per flow.  The hier
   request exercises the daemon's nested pool use: the scheduled job
   farms its clusters as pool tasks from inside a pool task (helping
   await keeps that deadlock-free), and the reply must still be
   byte-identical to a poolless in-process run. *)
let requests =
  [| ( "r-flow1",
       spec (Flows.Lttree_ptree { max_fanout = 10 }),
       Net_gen.random_net ~seed:11 ~name:"smoke1" ~n:6 tech );
     ( "r-flow2",
       spec (Flows.Ptree_vg { refine_seg = None }),
       Net_gen.random_net ~seed:12 ~name:"smoke2" ~n:6 tech );
     ( "r-flow3",
       spec fast_merlin,
       Net_gen.random_net ~seed:13 ~name:"smoke3" ~n:5 tech );
     ( "r-flow4",
       spec
         (Flows.Hier
            { cluster = { Merlin_hier.Cluster.default with target_size = 6 };
              inner = fast_merlin }),
       Net_gen.large_net ~seed:14 ~name:"smoke4" ~shape:Net_gen.Clustered
         ~n:18 tech ) |]

let metrics_fingerprint (m : Metrics.t) =
  Json.to_string (Metrics.to_json { m with Metrics.runtime = 0.0 })

let expect_reply ~ctx = function
  | Ok (Serve.Wire.Reply { id; cached; metrics }) -> (id, cached, metrics)
  | Ok other ->
    fail "%s: unexpected reply %s" ctx (Serve.Wire.encode_server other)
  | Error msg -> fail "%s: %s" ctx msg

let stat_of path stats =
  let rec go j = function
    | [] -> (match Json.to_num j with Some f -> int_of_float f | None -> fail "stats: %s not a number" (String.concat "." path))
    | k :: rest -> (
      match Json.member k j with
      | Some v -> go v rest
      | None -> fail "stats: missing %s" (String.concat "." path))
  in
  go stats path

let get_stats client =
  match Serve.Client.call client Serve.Wire.Stats with
  | Ok (Serve.Wire.Stats_reply s) -> s
  | Ok other -> fail "stats: unexpected reply %s" (Serve.Wire.encode_server other)
  | Error msg -> fail "stats: %s" msg

let () =
  let socket_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "merlin-smoke-%d.sock" (Unix.getpid ()))
  in
  let server =
    Serve.Server.start
      { (Serve.Server.default_config ~socket_path) with
        Serve.Server.tcp = Some ("127.0.0.1", 0);
        domains = Some 2;
        cache_capacity = 8 }
  in

  (* --- concurrent submits, byte-identical to direct Flows.run --- *)
  let replies = Array.make (Array.length requests) None in
  let threads =
    Array.mapi
      (fun i (id, spec, net) ->
         Thread.create
           (fun () ->
              let client = Serve.Client.connect_unix socket_path in
              let reply =
                expect_reply ~ctx:id
                  (Serve.Client.call client
                     (Serve.Wire.Route
                        { Serve.Wire.id; spec; net; deadline_s = None;
                          want_tree = true }))
              in
              Serve.Client.close client;
              replies.(i) <- Some reply)
           ())
      requests
  in
  Array.iter Thread.join threads;
  Array.iteri
    (fun i (id, spec, net) ->
       match replies.(i) with
       | None -> fail "%s: no reply" id
       | Some (rid, _, metrics) ->
         check (id ^ ": echoes id") (String.equal rid id);
         let direct =
           Flows.wire_metrics ~with_tree:true (Flows.run spec net)
         in
         if
           not
             (String.equal
                (metrics_fingerprint metrics)
                (metrics_fingerprint direct))
         then
           fail "%s: server metrics differ from direct Flows.run\n  srv: %s\n  dir: %s"
             id
             (metrics_fingerprint metrics)
             (metrics_fingerprint direct))
    requests;
  (match replies.(3) with
   | Some (_, _, m) ->
     check "hier reply carries a cluster count" (m.Metrics.clusters > 1);
     check "hier reply carries a decomposition depth" (m.Metrics.levels >= 2);
     check "hier reply sizes match the cluster count"
       (List.length m.Metrics.cluster_sizes = m.Metrics.clusters)
   | None -> fail "r-flow4: no reply");
  print_endline "smoke: concurrent submits byte-identical to direct runs";

  (* --- repeated request answered from the cache, no new pool task --- *)
  let client = Serve.Client.connect_unix socket_path in
  let before = get_stats client in
  let id, spec0, net0 = requests.(0) in
  let _, again_cached, again_metrics =
    expect_reply ~ctx:"repeat"
      (Serve.Client.call client
         (Serve.Wire.Route
            { Serve.Wire.id; spec = spec0; net = net0; deadline_s = None;
              want_tree = true }))
  in
  check "repeat: served from cache"
    (match again_cached with Serve.Wire.Hit -> true | Serve.Wire.Miss -> false);
  check "repeat: same bytes"
    (String.equal
       (metrics_fingerprint again_metrics)
       (metrics_fingerprint
          (Flows.wire_metrics ~with_tree:true (Flows.run spec0 net0))));
  let after = get_stats client in
  let hits j = stat_of [ "cache"; "hits" ] j
  and submitted j = stat_of [ "pool"; "submitted" ] j in
  check "repeat: cache hit counted" (hits after = hits before + 1);
  check "repeat: no new pool task" (submitted after = submitted before);
  print_endline "smoke: repeated request hit the cache without a pool task";

  (* --- tiny deadline: structured timeout, daemon survives --- *)
  let slow_net = Net_gen.random_net ~seed:99 ~name:"slow" ~n:10 tech in
  (match
     Serve.Client.call client
       (Serve.Wire.Route
          { Serve.Wire.id = "r-deadline";
            spec = spec (Flows.Merlin { cfg = None; objective = Merlin_core.Objective.Best_req });
            net = slow_net;
            deadline_s = Some 1e-4;
            want_tree = false })
   with
   | Ok (Serve.Wire.Refused { kind = Serve.Wire.Timeout; id = Some rid; _ }) ->
     check "deadline: echoes id" (String.equal rid "r-deadline")
   | Ok other ->
     fail "deadline: expected a timeout, got %s" (Serve.Wire.encode_server other)
   | Error msg -> fail "deadline: %s" msg);
  (match Serve.Client.call client Serve.Wire.Ping with
   | Ok Serve.Wire.Pong -> ()
   | Ok other ->
     fail "post-timeout ping: %s" (Serve.Wire.encode_server other)
   | Error msg -> fail "post-timeout ping: %s" msg);
  print_endline "smoke: deadline exceeded produced a structured timeout reply";

  (* --- TCP listener answers --- *)
  (match Serve.Server.tcp_port server with
   | None -> fail "no TCP port bound"
   | Some port ->
     let tcp = Serve.Client.connect_tcp "127.0.0.1" port in
     (match Serve.Client.call tcp Serve.Wire.Ping with
      | Ok Serve.Wire.Pong -> ()
      | Ok other -> fail "tcp ping: %s" (Serve.Wire.encode_server other)
      | Error msg -> fail "tcp ping: %s" msg);
     Serve.Client.close tcp);
  print_endline "smoke: TCP listener answers";

  (* --- drain refuses routes, then shutdown unblocks wait --- *)
  (match Serve.Client.call client Serve.Wire.Drain with
   | Ok (Serve.Wire.Admin_ok _) -> ()
   | Ok other -> fail "drain: %s" (Serve.Wire.encode_server other)
   | Error msg -> fail "drain: %s" msg);
  (match
     Serve.Client.call client
       (Serve.Wire.Route
          { Serve.Wire.id = "r-drained"; spec = spec0; net = net0;
            deadline_s = None; want_tree = false })
   with
   | Ok (Serve.Wire.Refused { kind = Serve.Wire.Draining; _ }) -> ()
   | Ok other ->
     fail "draining: expected a refusal, got %s" (Serve.Wire.encode_server other)
   | Error msg -> fail "draining: %s" msg);
  (match Serve.Client.call client Serve.Wire.Shutdown with
   | Ok (Serve.Wire.Admin_ok _) -> ()
   | Ok other -> fail "shutdown: %s" (Serve.Wire.encode_server other)
   | Error msg -> fail "shutdown: %s" msg);
  Serve.Client.close client;
  Serve.Server.wait server;
  Serve.Server.stop server;  (* idempotent after wait *)
  check "socket unlinked" (not (Sys.file_exists socket_path));
  print_endline "smoke: drain refused new work and shutdown unblocked wait";
  print_endline "serve smoke OK"
