(* End-to-end smoke test of the routing-service daemon (@serve-smoke).

   Boots a server on an ephemeral Unix socket (plus an ephemeral TCP
   port), then checks, over real sockets:

   - N concurrent submits return byte-identical metrics to direct
     in-process [Flows.run] calls (runtime zeroed on both sides — wall
     clock is the one legitimately non-deterministic field);
   - a repeated request is answered from the cache: [cached] flips to
     true, the cache hit counter increments and the pool's submitted
     counter does not move;
   - a request with a tiny deadline gets a structured timeout reply and
     the daemon keeps serving afterwards;
   - the TCP listener answers;
   - a whole-netlist batch streams one progress frame per net and is
     byte-identical to per-net [Flows.run] at every pool size tested
     (-j 1, 2 and 4);
   - an ECO batch re-routes exactly the nets whose fingerprint changed
     versus the manifest and answers the rest [Unchanged] without a
     pool task;
   - a daemon restarted over a warm persistent store answers a repeated
     batch entirely from the store: all hits, zero pool submissions;
   - draining mid-batch cancels the queued nets but still delivers the
     terminal summary;
   - drain refuses new routes while ping still answers;
   - shutdown via the protocol unblocks [Server.wait]. *)

open Merlin_tech
open Merlin_net
module Flows = Merlin_flows.Flows
module Json = Merlin_report.Json
module Metrics = Merlin_report.Metrics
module Serve = Merlin_serve

let tech = Tech.default
let buffers = Buffer_lib.default

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt

let check name b = if not b then fail "%s" name

let spec algo = { Flows.tech; buffers; algo }

let fast_merlin =
  Flows.Merlin
    { cfg =
        Some
          { Merlin_core.Config.default with
            Merlin_core.Config.candidate_limit = 8;
            max_curve = 5;
            buffer_trials = 4;
            max_iters = 1 };
      objective = Merlin_core.Objective.Best_req }

(* The four concurrent requests: distinct nets, one per flow.  The hier
   request exercises the daemon's nested pool use: the scheduled job
   farms its clusters as pool tasks from inside a pool task (helping
   await keeps that deadlock-free), and the reply must still be
   byte-identical to a poolless in-process run. *)
let requests =
  [| ( "r-flow1",
       spec (Flows.Lttree_ptree { max_fanout = 10 }),
       Net_gen.random_net ~seed:11 ~name:"smoke1" ~n:6 tech );
     ( "r-flow2",
       spec (Flows.Ptree_vg { refine_seg = None }),
       Net_gen.random_net ~seed:12 ~name:"smoke2" ~n:6 tech );
     ( "r-flow3",
       spec fast_merlin,
       Net_gen.random_net ~seed:13 ~name:"smoke3" ~n:5 tech );
     ( "r-flow4",
       spec
         (Flows.Hier
            { cluster = { Merlin_hier.Cluster.default with target_size = 6 };
              inner = fast_merlin }),
       Net_gen.large_net ~seed:14 ~name:"smoke4" ~shape:Net_gen.Clustered
         ~n:18 tech ) |]

let metrics_fingerprint (m : Metrics.t) =
  Json.to_string (Metrics.to_json { m with Metrics.runtime = 0.0 })

let expect_reply ~ctx = function
  | Ok (Serve.Wire.Reply { job; cached; metrics }) -> (job, cached, metrics)
  | Ok other ->
    fail "%s: unexpected reply %s" ctx (Serve.Wire.encode_server other)
  | Error msg -> fail "%s: %s" ctx msg

let stat_of path stats =
  let rec go j = function
    | [] -> (match Json.to_num j with Some f -> int_of_float f | None -> fail "stats: %s not a number" (String.concat "." path))
    | k :: rest -> (
      match Json.member k j with
      | Some v -> go v rest
      | None -> fail "stats: missing %s" (String.concat "." path))
  in
  go stats path

let get_stats client =
  match
    Serve.Client.call client
      (Serve.Wire.Admin { job = "stats"; op = Serve.Wire.Stats })
  with
  | Ok (Serve.Wire.Stats_reply { stats; _ }) -> stats
  | Ok other -> fail "stats: unexpected reply %s" (Serve.Wire.encode_server other)
  | Error msg -> fail "stats: %s" msg

let ping ~ctx client =
  match
    Serve.Client.call client
      (Serve.Wire.Admin { job = "ping"; op = Serve.Wire.Ping })
  with
  | Ok (Serve.Wire.Pong _) -> ()
  | Ok other -> fail "%s: unexpected reply %s" ctx (Serve.Wire.encode_server other)
  | Error msg -> fail "%s: %s" ctx msg

(* --- batch fixtures ------------------------------------------------ *)

let batch_spec = spec fast_merlin

let batch_nets =
  List.init 6 (fun i ->
      let name = Printf.sprintf "bn%d" i in
      (name, Net_gen.random_net ~seed:(20 + i) ~name ~n:(4 + (i mod 3)) tech))

(* Direct per-net reference runs, computed once: the batch path must be
   byte-identical to these at every pool size. *)
let direct_fps =
  List.map
    (fun (name, net) ->
       ( name,
         metrics_fingerprint
           (Flows.wire_metrics ~with_tree:true (Flows.run batch_spec net)) ))
    batch_nets

(* Submit [nets] as one batch and drain the stream; returns the
   per-index statuses and the terminal summary, checking frame-level
   invariants (job echoed, seq strictly increasing, every index
   reported exactly once). *)
let run_batch_on ~ctx ?manifest client nets =
  let total = List.length nets in
  let statuses = Array.make total None in
  let last_seq = ref 0 in
  match
    Serve.Client.run_batch client
      { Serve.Wire.job = ctx; spec = batch_spec; nets; deadline_s = None;
        want_tree = true; manifest }
      ~on_progress:(fun p ->
          check (ctx ^ ": job echoed on progress")
            (String.equal p.Serve.Wire.job ctx);
          check (ctx ^ ": seq strictly increasing")
            (p.Serve.Wire.seq = !last_seq + 1);
          last_seq := p.Serve.Wire.seq;
          check (ctx ^ ": index in range")
            (p.Serve.Wire.index >= 0 && p.Serve.Wire.index < total);
          (match statuses.(p.Serve.Wire.index) with
           | Some _ -> fail "%s: index %d reported twice" ctx p.Serve.Wire.index
           | None -> ());
          statuses.(p.Serve.Wire.index) <- Some p.Serve.Wire.status)
  with
  | Error msg -> fail "%s: %s" ctx msg
  | Ok summary ->
    check (ctx ^ ": summary total") (summary.Serve.Wire.total = total);
    Array.iteri
      (fun i s ->
         match s with
         | None -> fail "%s: no progress frame for net %d" ctx i
         | Some _ -> ())
      statuses;
    (Array.map Option.get statuses, summary)

let check_all_routed ~ctx ~expect_cached statuses =
  Array.iteri
    (fun i -> function
       | Serve.Wire.Routed { cached; metrics } ->
         let name, _ = List.nth batch_nets i in
         let expected = List.assoc name direct_fps in
         if not (String.equal (metrics_fingerprint metrics) expected) then
           fail "%s: net %s differs from direct Flows.run" ctx name;
         (match (expect_cached, cached) with
          | Some Serve.Wire.Hit, Serve.Wire.Miss ->
            fail "%s: net %s expected a cache hit" ctx name
          | Some Serve.Wire.Miss, Serve.Wire.Hit ->
            fail "%s: net %s expected a cache miss" ctx name
          | _ -> ())
       | _ -> fail "%s: net %d not routed" ctx i)
    statuses

let fresh_socket tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "merlin-smoke-%s-%d.sock" tag (Unix.getpid ()))

let with_server ?(domains = 2) ?store_dir tag f =
  let socket_path = fresh_socket tag in
  let server =
    Serve.Server.start
      { (Serve.Server.default_config ~socket_path) with
        Serve.Server.domains = Some domains;
        cache_capacity = 8;
        store_dir }
  in
  let client = Serve.Client.connect_unix socket_path in
  let r = f client in
  Serve.Client.close client;
  Serve.Server.stop server;
  r

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let () =
  let socket_path = fresh_socket "main" in
  let server =
    Serve.Server.start
      { (Serve.Server.default_config ~socket_path) with
        Serve.Server.tcp = Some ("127.0.0.1", 0);
        domains = Some 2;
        cache_capacity = 8 }
  in

  (* --- concurrent submits, byte-identical to direct Flows.run --- *)
  let replies = Array.make (Array.length requests) None in
  let threads =
    Array.mapi
      (fun i (job, spec, net) ->
         Thread.create
           (fun () ->
              let client = Serve.Client.connect_unix socket_path in
              let reply =
                expect_reply ~ctx:job
                  (Serve.Client.call client
                     (Serve.Wire.Route
                        { Serve.Wire.job; spec; net; deadline_s = None;
                          want_tree = true }))
              in
              Serve.Client.close client;
              replies.(i) <- Some reply)
           ())
      requests
  in
  Array.iter Thread.join threads;
  Array.iteri
    (fun i (job, spec, net) ->
       match replies.(i) with
       | None -> fail "%s: no reply" job
       | Some (rjob, _, metrics) ->
         check (job ^ ": echoes job id") (String.equal rjob job);
         let direct =
           Flows.wire_metrics ~with_tree:true (Flows.run spec net)
         in
         if
           not
             (String.equal
                (metrics_fingerprint metrics)
                (metrics_fingerprint direct))
         then
           fail "%s: server metrics differ from direct Flows.run\n  srv: %s\n  dir: %s"
             job
             (metrics_fingerprint metrics)
             (metrics_fingerprint direct))
    requests;
  (match replies.(3) with
   | Some (_, _, m) ->
     check "hier reply carries a cluster count" (m.Metrics.clusters > 1);
     check "hier reply carries a decomposition depth" (m.Metrics.levels >= 2);
     check "hier reply sizes match the cluster count"
       (List.length m.Metrics.cluster_sizes = m.Metrics.clusters)
   | None -> fail "r-flow4: no reply");
  print_endline "smoke: concurrent submits byte-identical to direct runs";

  (* --- repeated request answered from the cache, no new pool task --- *)
  let client = Serve.Client.connect_unix socket_path in
  let before = get_stats client in
  let job, spec0, net0 = requests.(0) in
  let _, again_cached, again_metrics =
    expect_reply ~ctx:"repeat"
      (Serve.Client.call client
         (Serve.Wire.Route
            { Serve.Wire.job; spec = spec0; net = net0; deadline_s = None;
              want_tree = true }))
  in
  check "repeat: served from cache"
    (match again_cached with Serve.Wire.Hit -> true | Serve.Wire.Miss -> false);
  check "repeat: same bytes"
    (String.equal
       (metrics_fingerprint again_metrics)
       (metrics_fingerprint
          (Flows.wire_metrics ~with_tree:true (Flows.run spec0 net0))));
  let after = get_stats client in
  let hits j = stat_of [ "cache"; "hits" ] j
  and submitted j = stat_of [ "pool"; "submitted" ] j in
  check "repeat: cache hit counted" (hits after = hits before + 1);
  check "repeat: no new pool task" (submitted after = submitted before);
  print_endline "smoke: repeated request hit the cache without a pool task";

  (* --- tiny deadline: structured timeout, daemon survives --- *)
  let slow_net = Net_gen.random_net ~seed:99 ~name:"slow" ~n:10 tech in
  (match
     Serve.Client.call client
       (Serve.Wire.Route
          { Serve.Wire.job = "r-deadline";
            spec = spec (Flows.Merlin { cfg = None; objective = Merlin_core.Objective.Best_req });
            net = slow_net;
            deadline_s = Some 1e-4;
            want_tree = false })
   with
   | Ok (Serve.Wire.Refused { kind = Serve.Wire.Timeout; job = rjob; _ }) ->
     check "deadline: echoes job id" (String.equal rjob "r-deadline")
   | Ok other ->
     fail "deadline: expected a timeout, got %s" (Serve.Wire.encode_server other)
   | Error msg -> fail "deadline: %s" msg);
  ping ~ctx:"post-timeout ping" client;
  print_endline "smoke: deadline exceeded produced a structured timeout reply";

  (* --- TCP listener answers --- *)
  (match Serve.Server.tcp_port server with
   | None -> fail "no TCP port bound"
   | Some port ->
     let tcp = Serve.Client.connect_tcp "127.0.0.1" port in
     ping ~ctx:"tcp ping" tcp;
     Serve.Client.close tcp);
  print_endline "smoke: TCP listener answers";

  (* --- batch: byte-identical to per-net runs at every pool size --- *)
  List.iter
    (fun dj ->
       with_server ~domains:dj (Printf.sprintf "j%d" dj) (fun bclient ->
           let ctx = Printf.sprintf "batch-j%d" dj in
           let statuses, summary = run_batch_on ~ctx bclient batch_nets in
           check_all_routed ~ctx ~expect_cached:(Some Serve.Wire.Miss) statuses;
           check (ctx ^ ": summary counts routed work")
             (summary.Serve.Wire.routed = List.length batch_nets
              && summary.Serve.Wire.hits = 0
              && summary.Serve.Wire.unchanged = 0
              && summary.Serve.Wire.failed = 0
              && summary.Serve.Wire.cancelled = 0)))
    [ 1; 2; 4 ];
  print_endline
    "smoke: batch byte-identical to per-net runs at -j 1, 2 and 4";

  (* --- ECO: only changed-fingerprint nets are re-routed --- *)
  with_server "eco" (fun bclient ->
      let statuses, _ = run_batch_on ~ctx:"eco-base" bclient batch_nets in
      check_all_routed ~ctx:"eco-base" ~expect_cached:None statuses;
      let manifest =
        List.map (fun (name, net) -> (name, Net_io.fingerprint net)) batch_nets
      in
      let changed = [ 1; 4 ] in
      let bump_req (net : Net.t) =
        Net.make ~name:net.Net.name ~source:net.Net.source
          ~driver:net.Net.driver
          (Array.to_list
             (Array.map
                (fun (s : Sink.t) ->
                   Sink.make ~id:s.Sink.id ~pt:s.Sink.pt ~cap:s.Sink.cap
                     ~req:(s.Sink.req +. 50.0))
                net.Net.sinks))
      in
      let eco_nets =
        List.mapi
          (fun i (name, net) ->
             if List.mem i changed then (name, bump_req net) else (name, net))
          batch_nets
      in
      let before = get_stats bclient in
      let statuses, summary = run_batch_on ~ctx:"eco" ~manifest bclient eco_nets in
      let after = get_stats bclient in
      check "eco: summary splits routed vs unchanged"
        (summary.Serve.Wire.routed = List.length changed
         && summary.Serve.Wire.unchanged
            = List.length batch_nets - List.length changed
         && summary.Serve.Wire.hits = 0
         && summary.Serve.Wire.failed = 0
         && summary.Serve.Wire.cancelled = 0);
      Array.iteri
        (fun i s ->
           match (List.mem i changed, s) with
           | true, Serve.Wire.Routed { cached = Serve.Wire.Miss; _ } -> ()
           | false, Serve.Wire.Unchanged -> ()
           | _, _ -> fail "eco: net %d has the wrong status" i)
        statuses;
      check "eco: pool ran exactly the changed nets"
        (stat_of [ "pool"; "submitted" ] after
         = stat_of [ "pool"; "submitted" ] before + List.length changed));
  print_endline "smoke: ECO re-routed exactly the changed nets";

  (* --- persistent store: restart serves the batch without the pool --- *)
  let store_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "merlin-smoke-store-%d" (Unix.getpid ()))
  in
  with_server ~store_dir "store1" (fun bclient ->
      let statuses, summary = run_batch_on ~ctx:"store-cold" bclient batch_nets in
      check_all_routed ~ctx:"store-cold" ~expect_cached:(Some Serve.Wire.Miss)
        statuses;
      check "store-cold: all routed"
        (summary.Serve.Wire.routed = List.length batch_nets);
      let stats = get_stats bclient in
      check "store-cold: every result written to the store"
        (stat_of [ "cache"; "store"; "writes" ] stats = List.length batch_nets));
  with_server ~store_dir "store2" (fun bclient ->
      let statuses, summary = run_batch_on ~ctx:"store-warm" bclient batch_nets in
      check_all_routed ~ctx:"store-warm" ~expect_cached:(Some Serve.Wire.Hit)
        statuses;
      check "store-warm: everything a cache hit"
        (summary.Serve.Wire.hits = List.length batch_nets
         && summary.Serve.Wire.routed = 0);
      let stats = get_stats bclient in
      check "store-warm: zero pool submissions"
        (stat_of [ "pool"; "submitted" ] stats = 0);
      check "store-warm: hits came from the persistent tier"
        (stat_of [ "cache"; "store"; "hits" ] stats >= List.length batch_nets));
  rm_rf store_dir;
  print_endline
    "smoke: restart over a warm store served the batch with zero pool tasks";

  (* --- drain mid-batch cancels the queued nets --- *)
  let drain_socket = fresh_socket "drain" in
  let drain_server =
    Serve.Server.start
      { (Serve.Server.default_config ~socket_path:drain_socket) with
        Serve.Server.domains = Some 1;
        cache_capacity = 8 }
  in
  (* One heavy net first so the drain lands while it computes; the rest
     queue behind it on the single-worker pool and must be cancelled. *)
  let heavy_nets =
    ( "heavy",
      Net_gen.large_net ~seed:77 ~name:"heavy" ~shape:Net_gen.Clustered ~n:60
        tech )
    :: List.init 6 (fun i ->
           let name = Printf.sprintf "queued%d" i in
           (name, Net_gen.random_net ~seed:(40 + i) ~name ~n:5 tech))
  in
  let drain_result = ref None in
  (* Drive the stream by hand with [send]/[read] — the low-level half
     of the session API — instead of [run_batch]. *)
  let batch_thread =
    Thread.create
      (fun () ->
         let c = Serve.Client.connect_unix drain_socket in
         (match
            Serve.Client.send c
              (Serve.Wire.Batch
                 { Serve.Wire.job = "drain-batch"; spec = batch_spec;
                   nets = heavy_nets; deadline_s = None; want_tree = false;
                   manifest = None })
          with
          | Ok () -> ()
          | Error msg -> fail "drain-batch send: %s" msg);
         let rec drain () =
           match Serve.Client.read c with
           | Ok (Serve.Wire.Progress _) -> drain ()
           | Ok (Serve.Wire.Batch_done { summary; _ }) ->
             drain_result := Some summary
           | Ok other ->
             fail "drain-batch: unexpected frame %s"
               (Serve.Wire.encode_server other)
           | Error msg -> fail "drain-batch read: %s" msg
         in
         drain ();
         Serve.Client.close c)
      ()
  in
  let admin = Serve.Client.connect_unix drain_socket in
  let rec wait_active tries =
    if tries = 0 then fail "drain-batch: batch never became active";
    let s = get_stats admin in
    if stat_of [ "server"; "active" ] s >= 1
       && stat_of [ "pool"; "submitted" ] s >= 1
    then ()
    else (Thread.delay 0.005; wait_active (tries - 1))
  in
  wait_active 2000;
  (match
     Serve.Client.call admin
       (Serve.Wire.Admin { job = "drain"; op = Serve.Wire.Drain })
   with
   | Ok (Serve.Wire.Admin_ok _) -> ()
   | Ok other -> fail "drain: %s" (Serve.Wire.encode_server other)
   | Error msg -> fail "drain: %s" msg);
  Thread.join batch_thread;
  (match !drain_result with
   | None -> fail "drain-batch: no summary"
   | Some s ->
     check "drain-batch: queued nets cancelled" (s.Serve.Wire.cancelled >= 1);
     check "drain-batch: every net accounted for"
       (s.Serve.Wire.routed + s.Serve.Wire.hits + s.Serve.Wire.unchanged
        + s.Serve.Wire.failed + s.Serve.Wire.cancelled
        = List.length heavy_nets));
  (* A fresh batch on the draining server is refused as a stream. *)
  (match
     Serve.Client.run_batch admin
       { Serve.Wire.job = "post-drain"; spec = batch_spec;
         nets = [ List.nth batch_nets 0 ]; deadline_s = None;
         want_tree = false; manifest = None }
       ~on_progress:(fun _ -> ())
   with
   | Error _ -> ()
   | Ok _ -> fail "post-drain: draining server accepted a batch");
  Serve.Client.close admin;
  Serve.Server.stop drain_server;
  print_endline "smoke: drain mid-batch cancelled the queued nets";

  (* --- drain refuses routes, then shutdown unblocks wait --- *)
  (match
     Serve.Client.call client
       (Serve.Wire.Admin { job = "drain"; op = Serve.Wire.Drain })
   with
   | Ok (Serve.Wire.Admin_ok _) -> ()
   | Ok other -> fail "drain: %s" (Serve.Wire.encode_server other)
   | Error msg -> fail "drain: %s" msg);
  (match
     Serve.Client.call client
       (Serve.Wire.Route
          { Serve.Wire.job = "r-drained"; spec = spec0; net = net0;
            deadline_s = None; want_tree = false })
   with
   | Ok (Serve.Wire.Refused { kind = Serve.Wire.Draining; _ }) -> ()
   | Ok other ->
     fail "draining: expected a refusal, got %s" (Serve.Wire.encode_server other)
   | Error msg -> fail "draining: %s" msg);
  (match
     Serve.Client.call client
       (Serve.Wire.Admin { job = "bye"; op = Serve.Wire.Shutdown })
   with
   | Ok (Serve.Wire.Admin_ok _) -> ()
   | Ok other -> fail "shutdown: %s" (Serve.Wire.encode_server other)
   | Error msg -> fail "shutdown: %s" msg);
  Serve.Client.close client;
  Serve.Server.wait server;
  Serve.Server.stop server;  (* idempotent after wait *)
  check "socket unlinked" (not (Sys.file_exists socket_path));
  print_endline "smoke: drain refused new work and shutdown unblocked wait";
  print_endline "serve smoke OK"
