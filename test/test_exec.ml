(* Execution-engine tests: deterministic map, exception propagation,
   timeouts, nested-submit deadlock freedom, and the end-to-end claim
   that a parallel Flow_runner.run matches the sequential one. *)

open Merlin_tech
module Pool = Merlin_exec.Pool
module Clock = Merlin_exec.Clock
module FR = Merlin_circuit.Flow_runner

let tech = Tech.default
let buffers = Buffer_lib.default

let qtest ?(count = 50) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* ---- Pool.map determinism (the qcheck property) ---- *)

(* Pool sizes the issue calls out, plus the inline-at-await edge case. *)
let pool_sizes = [ 0; 1; 2; 8 ]

let arb_map_case =
  QCheck.make
    ~print:(fun (xs, chunk) ->
      Printf.sprintf "[%s] chunk=%d"
        (String.concat ";" (List.map string_of_int xs))
        chunk)
    QCheck.Gen.(
      pair (list_size (int_range 0 200) (int_range (-1000) 1000)) (int_range 1 37))

let test_map_matches_list_map =
  qtest "Pool.map f xs = List.map f xs (sizes 0/1/2/8)" arb_map_case
    (fun (xs, chunk) ->
      let f x = (x * 31) + (x mod 7) in
      let expect = List.map f xs in
      List.for_all
        (fun domains ->
          Pool.with_pool ~domains (fun pool ->
              Pool.map ~chunk pool f xs = expect))
        pool_sizes)

let test_map_preserves_order () =
  (* Tasks with deliberately inverted runtimes: the first elements take
     longest, so any completion-order bug would reorder the output. *)
  Pool.with_pool ~domains:4 (fun pool ->
      let n = 24 in
      let xs = List.init n (fun i -> i) in
      let f i =
        let until = Clock.monotonic_s () +. (0.002 *. float_of_int (n - i)) in
        while Clock.monotonic_s () < until do
          ignore (Sys.opaque_identity i)
        done;
        i * 2
      in
      Alcotest.(check (list int)) "order kept" (List.map (fun i -> i * 2) xs)
        (Pool.map ~chunk:1 pool f xs))

(* ---- exception propagation ---- *)

exception Boom of int

let test_exception_propagates () =
  Pool.with_pool ~domains:2 (fun pool ->
      let fu = Pool.submit pool (fun () -> raise (Boom 42)) (* check: exn-flow *) in
      (match Pool.await fu with
       | _ -> Alcotest.fail "await should re-raise"
       | exception Boom 42 -> ());
      (* The pool must survive a failed task. *)
      Alcotest.(check int) "pool still works" 7
        (Pool.await (Pool.submit pool (fun () -> 7)));
      let s = Pool.stats pool in
      Alcotest.(check int) "failed counted" 1 s.Pool.failed)

let test_map_first_exception () =
  Pool.with_pool ~domains:2 (fun pool ->
      match Pool.map ~chunk:1 pool (fun x -> if x = 3 then raise (Boom x) else x) (* check: exn-flow *)
              [ 1; 2; 3; 4 ] with
      | _ -> Alcotest.fail "map should re-raise"
      | exception Boom 3 -> ())

(* ---- timeouts ---- *)

let test_timeout () =
  Pool.with_pool ~domains:1 (fun pool ->
      (* One long task occupies the single worker; the second task then
         sits in the queue past its deadline and must come back
         Timed_out without ever running. *)
      let slow =
        Pool.submit pool (fun () ->
            (* Deliberate wall-time busy-wait: this task exists to hog
               the single worker, not to produce a value. *)
            let until = Clock.monotonic_s () +. 0.3 in (* check: nondet-ok *)
            while Clock.monotonic_s () < until do
              ignore (Sys.opaque_identity 0)
            done;
            "slow")
      in
      let quick = Pool.submit pool (fun () -> "quick") in
      (match Pool.await_timeout ~timeout_s:0.02 quick with
       | Pool.Timed_out -> ()
       | Pool.Done v -> Alcotest.failf "expected Timed_out, got Done %s" v
       | Pool.Failed e -> raise e);
      Alcotest.(check string) "slow task unaffected" "slow" (Pool.await slow);
      let s = Pool.stats pool in
      Alcotest.(check int) "timed_out counted" 1 s.Pool.timed_out)

let test_timeout_done () =
  Pool.with_pool ~domains:2 (fun pool ->
      match Pool.run_timeout ~timeout_s:5.0 pool (fun () -> 99) with
      | Pool.Done v -> Alcotest.(check int) "value" 99 v
      | Pool.Timed_out -> Alcotest.fail "generous deadline expired"
      | Pool.Failed e -> raise e)

let test_cancel () =
  Pool.with_pool ~domains:1 (fun pool ->
      let slow =
        Pool.submit pool (fun () ->
            (* Deliberate wall-time busy-wait, as above. *)
            let until = Clock.monotonic_s () +. 0.1 in (* check: nondet-ok *)
            while Clock.monotonic_s () < until do
              ignore (Sys.opaque_identity 0)
            done)
      in
      let queued = Pool.submit pool (fun () -> Alcotest.fail "must not run") in
      Alcotest.(check bool) "queued task cancels" true (Pool.cancel queued);
      (match Pool.await queued with
       | () -> Alcotest.fail "await of cancelled task should raise"
       | exception Pool.Task_cancelled -> ());
      Pool.await slow;
      Alcotest.(check bool) "settled task does not cancel" false
        (Pool.cancel slow))

(* ---- nested submit: awaiting inside a task must not deadlock ---- *)

let test_nested_submit () =
  (* Every task on the 1-domain pool submits and awaits a child task.
     Without helping-await the single worker would block forever on the
     first child.  Guard with a wall-clock alarm so a regression fails
     the test instead of hanging the suite. *)
  Pool.with_pool ~domains:1 (fun pool ->
      let t0 = Clock.monotonic_s () in
      let outer =
        Pool.map ~chunk:1 pool
          (fun i -> i + Pool.await (Pool.submit pool (fun () -> i * 10)))
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list int)) "nested results" [ 11; 22; 33; 44 ] outer;
      Alcotest.(check bool) "finished promptly (no deadlock)" true
        (Clock.elapsed_s t0 < 10.0))

(* ---- telemetry sanity ---- *)

let test_stats () =
  Pool.with_pool ~domains:2 (fun pool ->
      ignore (Pool.map pool (fun x -> x) (List.init 20 (fun i -> i)));
      let s = Pool.stats pool in
      Alcotest.(check int) "domains" 2 s.Pool.domains;
      Alcotest.(check bool) "submitted > 0" true (s.Pool.submitted > 0);
      Alcotest.(check int) "all completed" s.Pool.submitted s.Pool.completed;
      Alcotest.(check int) "per-domain rows" 3 (Array.length s.Pool.per_domain);
      let hist_total = Array.fold_left ( + ) 0 s.Pool.run_hist in
      Alcotest.(check int) "run hist covers completions" s.Pool.completed
        hist_total)

(* ---- end to end: parallel Flow_runner equals sequential ---- *)

let test_flow_runner_parallel_matches_sequential () =
  let netlist =
    Merlin_circuit.Placement.place
      (Merlin_circuit.Circuit_gen.generate ~scale_down:300 ~name:"B9" ())
  in
  List.iter
    (fun flow ->
      let seq = FR.run ~tech ~buffers ~flow netlist in
      let par = FR.run ~tech ~buffers ~flow ~jobs:4 netlist in
      let name = FR.flow_name flow in
      Alcotest.(check (float 0.0)) (name ^ " area") seq.FR.area par.FR.area;
      Alcotest.(check (float 0.0)) (name ^ " delay") seq.FR.delay par.FR.delay;
      Alcotest.(check int) (name ^ " buffers") seq.FR.n_buffers par.FR.n_buffers;
      Alcotest.(check int) (name ^ " wirelength") seq.FR.wirelength
        par.FR.wirelength;
      Alcotest.(check int) (name ^ " nets") seq.FR.nets_optimized
        par.FR.nets_optimized;
      Alcotest.(check int) (name ^ " timeouts") 0 par.FR.nets_timed_out)
    [ FR.Flow1; FR.Flow2; FR.Flow3 ]

(* ---- clock ---- *)

let test_clock_monotonic () =
  let t0 = Clock.monotonic_s () in
  let t1 = Clock.monotonic_s () in
  Alcotest.(check bool) "non-decreasing" true (t1 >= t0);
  let (v, dt) = Clock.timed (fun () -> 5) in
  Alcotest.(check int) "timed value" 5 v;
  Alcotest.(check bool) "timed non-negative" true (dt >= 0.0)

let suite =
  ( "exec",
    [ test_map_matches_list_map;
      Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
      Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
      Alcotest.test_case "map re-raises first exn" `Quick test_map_first_exception;
      Alcotest.test_case "timeout -> Timed_out" `Quick test_timeout;
      Alcotest.test_case "timeout -> Done" `Quick test_timeout_done;
      Alcotest.test_case "cancel queued task" `Quick test_cancel;
      Alcotest.test_case "nested submit no deadlock" `Quick test_nested_submit;
      Alcotest.test_case "stats sanity" `Quick test_stats;
      Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic;
      Alcotest.test_case "flow_runner jobs:4 = sequential" `Slow
        test_flow_runner_parallel_matches_sequential ] )
