open Merlin_curves

let sol ?(data = 0) req load area = Solution.make ~req ~load ~area data

let arb_sol =
  QCheck.make
    ~print:(fun s -> Format.asprintf "%a" Solution.pp s)
    QCheck.Gen.(
      map3
        (fun r l a -> sol (float_of_int r) (float_of_int l) (float_of_int a))
        (int_range 0 20) (int_range 0 20) (int_range 0 20))

let arb_sols = QCheck.list_of_size (QCheck.Gen.int_range 0 40) arb_sol

let qtest name ?(count = 300) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* Reference implementation: keep exactly the solutions not strictly
   dominated by any other (and dedup equal coordinates). *)
let brute_frontier sols =
  let key s = (s.Solution.req, s.Solution.load, s.Solution.area) in
  let cmp3 a b =
    let (ar, al, aa) = key a and (br, bl, ba) = key b in
    let c = Float.compare ar br in
    if c <> 0 then c
    else
      let c = Float.compare al bl in
      if c <> 0 then c else Float.compare aa ba
  in
  let sols = List.sort_uniq cmp3 sols in
  List.filter
    (fun s ->
       not
         (List.exists
            (fun x -> Solution.dominates x s && key x <> key s)
            sols))
    sols

(* The invariant pair checked by Contract: strict compare_key order and
   pairwise non-inferiority. *)
let key_sorted c =
  let rec ok = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Solution.compare_key a b < 0 && ok rest
  in
  ok (Curve.to_list c)

let invariants c = Curve.is_frontier c && key_sorted c

let test_dominates () =
  let a = sol 10.0 2.0 3.0 and b = sol 8.0 4.0 5.0 in
  Alcotest.(check bool) "a dominates b" true (Solution.dominates a b);
  Alcotest.(check bool) "b does not dominate a" false (Solution.dominates b a);
  Alcotest.(check bool) "self" true (Solution.dominates a a)

let test_add_prunes () =
  let c = Curve.of_list [ sol 10.0 2.0 3.0; sol 8.0 4.0 5.0 ] in
  Alcotest.(check int) "dominated dropped" 1 (Curve.size c);
  let c = Curve.add c (sol 12.0 1.0 1.0) in
  Alcotest.(check int) "new dominator replaces" 1 (Curve.size c)

let test_incomparable_kept () =
  let c =
    Curve.of_list [ sol 10.0 2.0 3.0; sol 12.0 5.0 3.0; sol 8.0 2.0 1.0 ]
  in
  Alcotest.(check int) "three incomparable" 3 (Curve.size c)

let test_best_queries () =
  let c =
    Curve.of_list
      [ sol ~data:1 10.0 2.0 8.0; sol ~data:2 7.0 2.0 4.0; sol ~data:3 4.0 2.0 1.0 ]
  in
  let req s = s.Solution.req in
  Alcotest.(check (float 0.0)) "best req" 10.0
    (req (Option.get (Curve.best_req c)));
  Alcotest.(check (float 0.0)) "best under area 5" 7.0
    (req (Option.get (Curve.best_under_area c ~area:5.0)));
  Alcotest.(check bool) "infeasible area" true
    (Option.is_none (Curve.best_under_area c ~area:0.5));
  Alcotest.(check (float 0.0)) "min area with req >= 6" 4.0
    (Option.get (Curve.best_min_area c ~req:6.0)).Solution.area;
  Alcotest.(check bool) "infeasible req" true
    (Option.is_none (Curve.best_min_area c ~req:11.0))

let test_cap_keeps_extremes () =
  (* A genuine 20-point frontier: req and load grow together. *)
  let c = Curve.of_list (List.init 20 (fun i ->
      sol (float_of_int i) (float_of_int i) 0.0)) in
  Alcotest.(check int) "full frontier" 20 (Curve.size c);
  let capped = Curve.cap ~max_size:5 c in
  Alcotest.(check bool) "within cap" true (Curve.size capped <= 5);
  let reqs = List.map (fun s -> s.Solution.req) (Curve.to_list capped) in
  Alcotest.(check bool) "max req kept" true (List.mem 19.0 reqs);
  Alcotest.(check bool) "min load kept" true (List.mem 0.0 reqs)

let test_cap_keeps_min_area () =
  (* req up, load up, area up: min area is the last element and must be
     kept (the van Ginneken "unbuffered variant survives" guarantee). *)
  let c = Curve.of_list (List.init 30 (fun i ->
      sol (float_of_int i) (float_of_int i) (float_of_int i))) in
  let capped = Curve.cap ~max_size:6 c in
  let areas = List.map (fun s -> s.Solution.area) (Curve.to_list capped) in
  Alcotest.(check bool) "min area kept" true (List.mem 0.0 areas)

let test_quantise_pessimistic () =
  let c = Curve.of_list [ sol 9.9 2.1 3.3 ] in
  let q = Curve.quantise ~req_grid:2.0 ~load_grid:1.0 ~area_grid:2.0 c in
  match Curve.to_list q with
  | [ s ] ->
    Alcotest.(check (float 0.0)) "req down" 8.0 s.Solution.req;
    Alcotest.(check (float 0.0)) "load up" 3.0 s.Solution.load;
    Alcotest.(check (float 0.0)) "area up" 4.0 s.Solution.area
  | _ -> Alcotest.fail "expected one solution"

let props =
  [ qtest "of_list is a frontier" arb_sols (fun sols ->
        Curve.is_frontier (Curve.of_list sols));
    qtest "of_list matches brute force frontier size" arb_sols (fun sols ->
        Curve.size (Curve.of_list sols)
        = List.length (brute_frontier sols));
    qtest "add keeps the best req" arb_sols (fun sols ->
        List.is_empty sols
        ||
        let c = Curve.of_list sols in
        let best =
          List.fold_left (fun acc s -> max acc s.Solution.req) neg_infinity sols
        in
        (Option.get (Curve.best_req c)).Solution.req = best);
    qtest "union = of_list of concat" (QCheck.pair arb_sols arb_sols)
      (fun (a, b) ->
         let u = Curve.union (Curve.of_list a) (Curve.of_list b) in
         Curve.size u = Curve.size (Curve.of_list (a @ b)));
    qtest "cap never exceeds" arb_sols (fun sols ->
        Curve.size (Curve.cap ~max_size:4 (Curve.of_list sols)) <= 4);
    qtest "quantise still a frontier" arb_sols (fun sols ->
        Curve.is_frontier
          (Curve.quantise ~req_grid:3.0 ~load_grid:2.0 ~area_grid:5.0
             (Curve.of_list sols)));
    qtest "of_list satisfies curve invariants" arb_sols (fun sols ->
        invariants (Curve.of_list sols));
    qtest "union satisfies curve invariants" (QCheck.pair arb_sols arb_sols)
      (fun (a, b) ->
         invariants (Curve.union (Curve.of_list a) (Curve.of_list b)));
    qtest "cap satisfies curve invariants" arb_sols (fun sols ->
        invariants (Curve.cap ~max_size:4 (Curve.of_list sols)));
    qtest "quantise satisfies curve invariants" arb_sols (fun sols ->
        invariants
          (Curve.quantise ~req_grid:3.0 ~load_grid:2.0 ~area_grid:5.0
             (Curve.of_list sols)));
    qtest "quantise_load satisfies curve invariants" arb_sols (fun sols ->
        invariants (Curve.quantise_load ~grid:2.5 (Curve.of_list sols)));
    qtest "operations pass enabled contracts" (QCheck.pair arb_sols arb_sols)
      (fun (a, b) ->
         Contract.set_enabled true;
         Fun.protect
           ~finally:(fun () -> Contract.set_enabled false)
           (fun () ->
              let c = Curve.union (Curve.of_list a) (Curve.of_list b) in
              let c = Curve.cap ~max_size:4 c in
              let c =
                Curve.quantise ~req_grid:3.0 ~load_grid:2.0 ~area_grid:5.0 c
              in
              invariants c));
    qtest "best_under_area matches brute force"
      (QCheck.pair arb_sols (QCheck.float_range 0.0 20.0))
      (fun (sols, budget) ->
         let c = Curve.of_list sols in
         let brute =
           List.filter (fun s -> s.Solution.area <= budget) (Curve.to_list c)
           |> List.fold_left
                (fun acc s ->
                   match acc with
                   | None -> Some s
                   | Some b -> if s.Solution.req > b.Solution.req then Some s else acc)
                None
         in
         match (Curve.best_under_area c ~area:budget, brute) with
         | None, None -> true
         | Some a, Some b -> a.Solution.req = b.Solution.req
         | _ -> false) ]

let test_contract_rejects () =
  Contract.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Contract.set_enabled false)
    (fun () ->
       Alcotest.check_raises "unsorted rejected"
         (Invalid_argument
            "Contract.check: unit: solutions out of compare_key order")
         (fun () ->
            ignore (Contract.check ~name:"unit" [ sol 1.0 1.0 1.0; sol 5.0 0.0 0.0 ]));
       Alcotest.check_raises "inferior solution rejected"
         (Invalid_argument
            "Contract.check: unit: curve holds an inferior solution")
         (fun () ->
            ignore (Contract.check ~name:"unit" [ sol 5.0 0.0 0.0; sol 1.0 1.0 1.0 ]));
       (* Sorted frontier passes both check flavours. *)
       let ok = [ sol 5.0 0.0 1.0; sol 1.0 0.0 0.0 ] in
       Alcotest.(check int) "valid curve accepted" 2
         (List.length (Contract.check ~name:"unit" ok));
       Alcotest.(check int) "sorted check accepts" 2
         (List.length (Contract.check_sorted ~name:"unit" ok)))

let test_contract_disabled () =
  Contract.set_enabled false;
  (* With contracts off, even a bogus list flows through untouched. *)
  Alcotest.(check int) "no check when disabled" 2
    (List.length (Contract.check ~name:"unit" [ sol 1.0 1.0 1.0; sol 5.0 0.0 0.0 ]))

let suite =
  ( "curves",
    [ Alcotest.test_case "dominates" `Quick test_dominates;
      Alcotest.test_case "contract rejects violations" `Quick
        test_contract_rejects;
      Alcotest.test_case "contract disabled is transparent" `Quick
        test_contract_disabled;
      Alcotest.test_case "add prunes" `Quick test_add_prunes;
      Alcotest.test_case "incomparable kept" `Quick test_incomparable_kept;
      Alcotest.test_case "best queries" `Quick test_best_queries;
      Alcotest.test_case "cap keeps extremes" `Quick test_cap_keeps_extremes;
      Alcotest.test_case "cap keeps min area" `Quick test_cap_keeps_min_area;
      Alcotest.test_case "quantise pessimistic" `Quick test_quantise_pessimistic ]
    @ props )
