(* Unit tests for the serving layer: LRU and two-tier cache behaviour,
   persistent-store crash safety, wire-protocol round trips for every
   v2 frame kind (qcheck), v1 compatibility decoding and the
   cache-key/fingerprint semantics. *)

open Merlin_tech
open Merlin_net
module Flows = Merlin_flows.Flows
module Json = Merlin_report.Json
module Metrics = Merlin_report.Metrics
module Wire = Merlin_serve.Wire
module Lru = Merlin_serve.Lru
module Store = Merlin_serve.Store
module Cache = Merlin_serve.Cache
module Scheduler = Merlin_serve.Scheduler
module Pool = Merlin_exec.Pool

let tech = Tech.default
let buffers = Buffer_lib.default

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* ---------------- LRU ---------------- *)

let test_lru_basic () =
  let c = Lru.create ~capacity:4 in
  Alcotest.(check (option int)) "miss" None (Lru.find c "a");
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "hit b" (Some 2) (Lru.find c "b");
  Lru.add c "a" 10;
  Alcotest.(check (option int)) "refresh value" (Some 10) (Lru.find c "a");
  let s = Lru.stats c in
  Alcotest.(check int) "size" 2 s.Lru.size;
  Alcotest.(check int) "hits" 3 s.Lru.hits;
  Alcotest.(check int) "misses" 1 s.Lru.misses;
  Alcotest.(check int) "evictions" 0 s.Lru.evictions

let test_lru_evicts_least_recent () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* Touch a so b becomes the LRU entry. *)
  Alcotest.(check (option int)) "touch a" (Some 1) (Lru.find c "a");
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find c "c");
  Alcotest.(check int) "one eviction" 1 (Lru.stats c).Lru.evictions

let test_lru_capacity_one () =
  let c = Lru.create ~capacity:1 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check (option int)) "a evicted" None (Lru.find c "a");
  Alcotest.(check (option int)) "b kept" (Some 2) (Lru.find c "b");
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity must be >= 1") (fun () ->
      ignore (Lru.create ~capacity:0))

(* ---------------- store & two-tier cache ---------------- *)

let fresh_dir =
  let seq = ref 0 in
  fun () ->
    incr seq;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "merlin-store-test-%d-%d" (Unix.getpid ()) !seq)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_store_roundtrip () =
  with_dir (fun dir ->
      let s = Store.open_dir dir in
      Alcotest.(check (option string)) "cold miss" None (Store.find s "k1");
      Store.add s "k1" "payload one";
      Store.add s "k2" "";
      Alcotest.(check (option string)) "hit" (Some "payload one")
        (Store.find s "k1");
      Alcotest.(check (option string)) "empty payload ok" (Some "")
        (Store.find s "k2");
      (* A second handle on the same directory sees the blobs: the
         store is the persistence, not the process. *)
      let s2 = Store.open_dir dir in
      Alcotest.(check (option string)) "reopened hit" (Some "payload one")
        (Store.find s2 "k1");
      let st = Store.stats s in
      Alcotest.(check int) "writes" 2 st.Store.writes;
      Alcotest.(check int) "hits" 2 st.Store.hits;
      Alcotest.(check int) "misses" 1 st.Store.misses;
      Alcotest.(check int) "errors" 0 st.Store.errors;
      Alcotest.check_raises "bad key rejected"
        (Invalid_argument "Store.find: invalid store key \"a/b\"") (fun () ->
          ignore (Store.find s "a/b")))

(* Crash safety: damaged blobs read as misses (and recompute works),
   never as exceptions; half-written tmp files are invisible. *)
let test_store_corruption () =
  with_dir (fun dir ->
      let s = Store.open_dir dir in
      Store.add s "trunc" "a payload long enough to truncate";
      Store.add s "garbage" "some payload";
      (* Truncate one blob mid-payload, overwrite the other with noise. *)
      let path key = Filename.concat dir (key ^ ".blob") in
      Unix.truncate (path "trunc") 10;
      Out_channel.with_open_bin (path "garbage") (fun oc ->
          output_string oc "!!! not a merlin-store blob !!!");
      Alcotest.(check (option string)) "truncated reads as miss" None
        (Store.find s "trunc");
      Alcotest.(check (option string)) "garbage reads as miss" None
        (Store.find s "garbage");
      Alcotest.(check int) "both damages counted" 2
        (Store.stats s).Store.errors;
      (* Recompute-and-rewrite heals the entry. *)
      Store.add s "trunc" "recomputed";
      Alcotest.(check (option string)) "healed" (Some "recomputed")
        (Store.find s "trunc");
      (* A half-written tmp file (no rename yet) is not a blob. *)
      Out_channel.with_open_bin
        (Filename.concat dir ".tmp-999-1")
        (fun oc -> output_string oc "partial");
      Alcotest.(check (option string)) "partial write invisible" None
        (Store.find s "tmp-999-1"))

let string_codec =
  { Cache.encode = Fun.id; decode = (fun s -> Some s) }

let test_cache_two_tier () =
  with_dir (fun dir ->
      let store = Store.open_dir dir in
      let c = Cache.create ~store:(store, string_codec) ~capacity:2 () in
      Alcotest.(check (option string)) "cold miss" None (Cache.find c "a");
      Cache.add c "a" "alpha";
      Alcotest.(check (option string)) "memory hit" (Some "alpha")
        (Cache.find c "a");
      (* Evict "a" from the memory tier; the store still has it and the
         find promotes it back. *)
      Cache.add c "b" "beta";
      Cache.add c "c" "gamma";
      Alcotest.(check (option string)) "store fallback after eviction"
        (Some "alpha") (Cache.find c "a");
      (* A fresh cache over the same store = a daemon restart: values
         come back from disk without any compute. *)
      let c2 = Cache.create ~store:(store, string_codec) ~capacity:2 () in
      Alcotest.(check (option string)) "warm restart" (Some "beta")
        (Cache.find c2 "b");
      let st = Cache.stats c2 in
      Alcotest.(check bool) "store stats attached" true
        (match st.Cache.store with Some _ -> true | None -> false);
      (* A codec that rejects the blob turns a store hit into a miss. *)
      let never =
        { Cache.encode = Fun.id; decode = (fun _ -> None) }
      in
      let c3 = Cache.create ~store:(store, never) ~capacity:2 () in
      Alcotest.(check (option string)) "undecodable blob is a miss" None
        (Cache.find c3 "a"))

let test_cache_memory_only () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" 1;
  Alcotest.(check (option int)) "hit" (Some 1) (Cache.find c "a");
  Alcotest.(check bool) "no store stats" true
    (match (Cache.stats c).Cache.store with None -> true | Some _ -> false)

(* ---------------- scheduler dedup ---------------- *)

(* Simultaneous identical submits must put exactly one task on the
   pool: the first miss leads, everyone else joins (or, arriving after
   the leader published, hits the cache).  Both late-arrival shapes
   report [Hit], so the assertions hold under every interleaving —
   while the pre-dedup scheduler fails them deterministically (each
   thread submitted its own task).  The job sleeps so the threads pile
   up on the pending entry and the join path actually runs. *)
let test_schedule_dedup () =
  Pool.with_pool ~domains:2 (fun pool ->
      let sched = Scheduler.create ~cache:(Cache.create ~capacity:8 ()) pool in
      let n = 8 in
      let job () =
        Thread.delay 0.05;
        42
      in
      let results = Array.make n None in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () ->
                 results.(i) <- Some (Scheduler.schedule sched ~key:"k" job))
              ())
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "one pool task for n identical submits" 1
        (Pool.stats pool).Pool.submitted;
      let misses = ref 0 in
      Array.iter
        (fun r ->
           match r with
           | Some (Scheduler.Done { value; cached }) ->
             Alcotest.(check int) "every thread got the value" 42 value;
             (match cached with Wire.Miss -> incr misses | Wire.Hit -> ())
           | Some _ -> Alcotest.fail "non-Done outcome from schedule"
           | None -> Alcotest.fail "thread finished without an outcome")
        results;
      Alcotest.(check int) "exactly the leader reports a miss" 1 !misses)

(* ---------------- generators ---------------- *)

let gen_name =
  QCheck.Gen.(
    map (String.concat "") (list_size (int_range 1 8) (map (String.make 1) (char_range 'a' 'z'))))

(* Finite floats with both "round" and awkward decimal expansions, so
   the shortest-round-trip printer is actually exercised. *)
let gen_float =
  QCheck.Gen.(
    oneof
      [ map float_of_int (int_range (-10000) 10000);
        float_range (-1e6) 1e6;
        map (fun f -> f /. 3.0) (float_range 0.0 1e4) ])

let gen_model =
  QCheck.Gen.(
    map
      (fun (d0, r_drive, k_slew, s0) ->
         Delay_model.make ~d0 ~r_drive ~k_slew ~s0)
      (quad gen_float gen_float gen_float gen_float))

let gen_tech =
  QCheck.Gen.(
    map
      (fun (name, (r, c, a)) ->
         { Tech.name; unit_wire_res = r; unit_wire_cap = c; unit_wire_area = a })
      (pair gen_name (triple gen_float gen_float gen_float)))

let gen_buffer =
  QCheck.Gen.(
    map
      (fun (name, area, input_cap, model) ->
         { Buffer_lib.name; area; input_cap; model })
      (quad gen_name gen_float gen_float gen_model))

let gen_buffers =
  QCheck.Gen.(map Array.of_list (list_size (int_range 1 4) gen_buffer))

let gen_objective =
  QCheck.Gen.(
    oneof
      [ return Merlin_core.Objective.Best_req;
        map (fun b -> Merlin_core.Objective.Max_req_under_area b) gen_float;
        map (fun b -> Merlin_core.Objective.Min_area_over_req b) gen_float ])

let gen_cfg =
  QCheck.Gen.(
    map
      (fun (alpha, bubbling, full_hanan, max_iters) ->
         { Merlin_core.Config.default with
           Merlin_core.Config.alpha = alpha;
           bubbling;
           full_hanan;
           max_iters })
      (quad (int_range 2 20) bool bool (int_range 1 8)))

let gen_flat_algo =
  QCheck.Gen.(
    oneof
      [ map (fun max_fanout -> Flows.Lttree_ptree { max_fanout }) (int_range 2 20);
        map
          (fun refine_seg -> Flows.Ptree_vg { refine_seg })
          (opt (int_range 1 10));
        map2
          (fun cfg objective -> Flows.Merlin { cfg; objective })
          (opt gen_cfg) gen_objective ])

let gen_cluster =
  QCheck.Gen.(
    map
      (fun (target_size, n_clusters, strategy, max_iters) ->
         { Merlin_hier.Cluster.target_size; n_clusters; strategy; max_iters })
      (quad (int_range 1 32)
         (opt (int_range 1 8))
         (oneofl [ Merlin_hier.Cluster.Kmeans; Merlin_hier.Cluster.Sweep ])
         (int_range 0 32)))

(* The wire protocol rejects nested hier, so the generator only nests a
   flat inner flow. *)
let gen_algo =
  QCheck.Gen.(
    oneof
      [ gen_flat_algo;
        map2
          (fun cluster inner -> Flows.Hier { cluster; inner })
          gen_cluster gen_flat_algo ])

let gen_spec =
  QCheck.Gen.(
    map
      (fun (tech, buffers, algo) -> { Flows.tech; buffers; algo })
      (triple gen_tech gen_buffers gen_algo))

let gen_net =
  QCheck.Gen.(
    map2
      (fun n seed -> Net_gen.random_net ~seed ~name:"wire" ~n tech)
      (int_range 1 8) (int_range 0 1000))

let gen_request =
  QCheck.Gen.(
    map
      (fun (job, spec, net, (deadline_s, want_tree)) ->
         { Wire.job; spec; net; deadline_s; want_tree })
      (quad gen_name gen_spec gen_net
         (pair (opt (float_range 0.001 100.0)) bool)))

let gen_named_nets =
  QCheck.Gen.(
    map
      (List.mapi (fun i net -> (Printf.sprintf "net%d" i, net)))
      (list_size (int_range 1 4) gen_net))

let gen_batch =
  QCheck.Gen.(
    map
      (fun ((job, spec, nets), (deadline_s, want_tree, with_manifest)) ->
         let manifest =
           if with_manifest then
             (* A plausible ECO manifest: some entries match the net's
                real fingerprint, some don't, some name unknown nets. *)
             Some
               (("ghost", "0123456789abcdef")
               :: List.mapi
                    (fun i (name, net) ->
                       ( name,
                         if i mod 2 = 0 then Net_io.fingerprint net
                         else "fedcba9876543210" ))
                    nets)
           else None
         in
         { Wire.job; spec; nets; deadline_s; want_tree; manifest })
      (pair
         (triple gen_name gen_spec gen_named_nets)
         (triple (opt (float_range 0.001 100.0)) bool bool)))

let arb_spec = QCheck.make ~print:(fun s -> Json.to_string (Wire.spec_to_json s)) gen_spec

let arb_request =
  QCheck.make
    ~print:(fun r -> Wire.encode_client (Wire.Route r))
    gen_request

let arb_batch =
  QCheck.make ~print:(fun b -> Wire.encode_client (Wire.Batch b)) gen_batch

(* ---------------- wire round trips ---------------- *)

let spec_roundtrip spec =
  let j = Wire.spec_to_json spec in
  match Wire.spec_of_json j with
  | Error msg -> QCheck.Test.fail_reportf "spec decode failed: %s" msg
  | Ok spec' ->
    (* Structural equality through the canonical encoding: the decoder
       must reconstruct a spec that re-encodes byte-identically. *)
    String.equal (Json.to_string j) (Json.to_string (Wire.spec_to_json spec'))

let client_msg_roundtrip m =
  let text = Wire.encode_client m in
  match Wire.decode_client text with
  | Error msg -> QCheck.Test.fail_reportf "client decode failed: %s" msg
  | Ok (Wire.V1, _) -> QCheck.Test.fail_reportf "own encoding decoded as v1"
  | Ok (Wire.V2, msg) -> String.equal text (Wire.encode_client msg)

let client_roundtrip r = client_msg_roundtrip (Wire.Route r)

let batch_roundtrip b = client_msg_roundtrip (Wire.Batch b)

let admin_roundtrip () =
  List.iter
    (fun op ->
       let m = Wire.Admin { job = "adm1"; op } in
       match Wire.decode_client (Wire.encode_client m) with
       | Ok (Wire.V2, m') ->
         Alcotest.(check string) "admin msg" (Wire.encode_client m)
           (Wire.encode_client m')
       | Ok (Wire.V1, _) -> Alcotest.fail "own encoding decoded as v1"
       | Error msg -> Alcotest.fail msg)
    [ Wire.Stats; Wire.Ping; Wire.Drain; Wire.Shutdown ]

let sample_metrics =
  { Metrics.flow = "III:MERLIN";
    area = 48.25;
    delay = 1056.71;
    root_req = 2564.0 /. 3.0;
    runtime = 0.125;
    n_buffers = 4;
    wirelength = 8393;
    loops = 2;
    clusters = 3;
    levels = 2;
    cluster_sizes = [ 4; 5; 3 ];
    tree = None }

(* Every v2 server frame kind re-encodes byte-identically through the
   decoder. *)
let server_msg_roundtrip () =
  let metrics = sample_metrics in
  let statuses =
    [ Wire.Routed { cached = Wire.Hit; metrics };
      Wire.Routed { cached = Wire.Miss; metrics };
      Wire.Unchanged;
      Wire.Net_failed { kind = Wire.Timeout; message = "too slow" };
      Wire.Cancelled ]
  in
  let progress =
    List.mapi
      (fun i status ->
         Wire.Progress
           { job = "b1"; seq = i + 1; index = i; name = Printf.sprintf "n%d" i;
             status })
      statuses
  in
  List.iter
    (fun m ->
       match Wire.decode_server (Wire.encode_server m) with
       | Ok (Wire.V2, m') ->
         Alcotest.(check string) "server msg" (Wire.encode_server m)
           (Wire.encode_server m')
       | Ok (Wire.V1, _) -> Alcotest.fail "own encoding decoded as v1"
       | Error msg -> Alcotest.fail msg)
    ([ Wire.Reply { job = "r1"; cached = Wire.Hit; metrics };
       Wire.Reply { job = "r2"; cached = Wire.Miss; metrics };
       Wire.Refused
         { job = "r3"; kind = Wire.Timeout; message = "deadline exceeded" };
       Wire.Refused { job = ""; kind = Wire.Bad_request; message = "nope" };
       Wire.Batch_done
         { job = "b1";
           seq = 6;
           summary =
             { Wire.total = 5; routed = 2; hits = 1; unchanged = 1; failed = 1;
               cancelled = 0; wall_s = 1.5 } };
       Wire.Stats_reply { job = "s"; stats = Json.Obj [ ("x", Json.Num 1.0) ] };
       Wire.Pong { job = "p" };
       Wire.Admin_ok { job = "d"; what = "draining" } ]
    @ progress)

(* v1 frames — the pre-envelope grammar — must keep decoding, with the
   v1 [id] mapped to [job] and admin frames getting job "". *)
let v1_compat_decode () =
  let spec =
    { Flows.tech; buffers; algo = Flows.Lttree_ptree { max_fanout = 10 } }
  in
  let net = Net_gen.random_net ~seed:5 ~name:"v1" ~n:4 tech in
  let v1_route =
    Json.to_string
      (Json.Obj
         [ ("v", Json.Num 1.0);
           ("type", Json.Str "route");
           ("id", Json.Str "legacy");
           ("spec", Wire.spec_to_json spec);
           ("net", Json.Str (Net_io.to_string net)) ])
  in
  (match Wire.decode_client v1_route with
   | Ok (Wire.V1, Wire.Route r) ->
     Alcotest.(check string) "v1 id becomes job" "legacy" r.Wire.job;
     Alcotest.(check string) "net survives"
       (Net_io.fingerprint net)
       (Net_io.fingerprint r.Wire.net);
     Alcotest.(check string) "spec survives (same cache key)"
       (Wire.request_key spec net)
       (Wire.request_key r.Wire.spec r.Wire.net)
   | Ok _ -> Alcotest.fail "v1 route decoded to the wrong shape"
   | Error msg -> Alcotest.fail msg);
  (match Wire.decode_client "{\"v\":1,\"type\":\"ping\"}" with
   | Ok (Wire.V1, Wire.Admin { job = ""; op = Wire.Ping }) -> ()
   | Ok _ -> Alcotest.fail "v1 ping decoded to the wrong shape"
   | Error msg -> Alcotest.fail msg);
  (* Replies rendered for a v1 peer round trip through the v1 grammar
     and carry the v1 field names. *)
  let reply =
    Wire.Reply { job = "legacy"; cached = Wire.Hit; metrics = sample_metrics }
  in
  let text = Wire.encode_server ~proto:Wire.V1 reply in
  Alcotest.(check bool) "v1 reply carries id" true
    (let sub = "\"id\":\"legacy\"" in
     let rec contains i =
       i + String.length sub <= String.length text
       && (String.equal (String.sub text i (String.length sub)) sub
           || contains (i + 1))
     in
     contains 0);
  (match Wire.decode_server text with
   | Ok (Wire.V1, Wire.Reply { job = "legacy"; cached = Wire.Hit; _ }) -> ()
   | Ok _ -> Alcotest.fail "v1 reply decoded to the wrong shape"
   | Error msg -> Alcotest.fail msg);
  (* The v1 grammar has no multi-frame kinds: encoding them as v1 is a
     caller bug. *)
  Alcotest.check_raises "no v1 progress"
    (Invalid_argument "Wire.encode_server: v1 cannot carry multi-frame replies")
    (fun () ->
       ignore
         (Wire.encode_server ~proto:Wire.V1
            (Wire.Progress
               { job = "b"; seq = 1; index = 0; name = "n"; status = Wire.Unchanged })))

let decode_rejects () =
  let is_error = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "garbage" true (is_error (Wire.decode_client "{x"));
  Alcotest.(check bool) "not a message" true
    (is_error (Wire.decode_client "{\"v\":1}"));
  Alcotest.(check bool) "wrong version" true
    (is_error (Wire.decode_client "{\"v\":99,\"type\":\"ping\"}"));
  Alcotest.(check bool) "unknown v1 type" true
    (is_error (Wire.decode_client "{\"v\":1,\"type\":\"frobnicate\"}"));
  Alcotest.(check bool) "v1 has no batch" true
    (is_error
       (Wire.decode_client "{\"v\":1,\"type\":\"batch\",\"id\":\"x\"}"));
  Alcotest.(check bool) "unknown v2 type" true
    (is_error
       (Wire.decode_client
          "{\"v\":2,\"job\":\"x\",\"seq\":0,\"type\":\"frobnicate\"}"));
  Alcotest.(check bool) "v2 without job" true
    (is_error (Wire.decode_client "{\"v\":2,\"type\":\"ping\"}"));
  Alcotest.(check bool) "bad net text" true
    (is_error
       (Wire.decode_client
          "{\"v\":1,\"type\":\"route\",\"id\":\"x\",\"spec\":{},\"net\":\"zz\"}"));
  Alcotest.(check bool) "batch with bad manifest" true
    (is_error
       (Wire.decode_client
          "{\"v\":2,\"job\":\"x\",\"seq\":0,\"type\":\"batch\",\"spec\":{},\"nets\":[],\"manifest\":[{\"name\":3}]}"))

(* ---------------- cache keys ---------------- *)

let mk_sink id (x, y, cap, req) =
  Sink.make ~id ~pt:(Merlin_geometry.Point.make x y) ~cap ~req

let test_fingerprint_sink_order () =
  let a = (0, 0, 5.0, 100.0) and b = (900, 40, 9.0, 250.0) in
  let mk name sinks =
    Net.make ~name ~source:(Merlin_geometry.Point.make 10 10)
      ~driver:Net.default_driver
      (List.mapi mk_sink sinks)
  in
  let net_ab = mk "n" [ a; b ] and net_ba = mk "n" [ b; a ] in
  Alcotest.(check bool) "sink order changes the fingerprint" false
    (String.equal (Net_io.fingerprint net_ab) (Net_io.fingerprint net_ba));
  let renamed = mk "other-name" [ a; b ] in
  Alcotest.(check string) "renaming does not change the fingerprint"
    (Net_io.fingerprint net_ab) (Net_io.fingerprint renamed)

let test_fingerprint_survives_save_load () =
  List.iter
    (fun seed ->
       let net = Net_gen.random_net ~seed ~name:"fp" ~n:7 tech in
       let reloaded = Net_io.of_string (Net_io.to_string net) in
       Alcotest.(check string)
         (Printf.sprintf "seed %d reload keeps the key" seed)
         (Net_io.fingerprint net)
         (Net_io.fingerprint reloaded))
    [ 1; 2; 3; 42 ]

let test_request_key_separates () =
  let net = Net_gen.random_net ~seed:7 ~name:"k" ~n:5 tech in
  let net' = Net_gen.random_net ~seed:8 ~name:"k" ~n:5 tech in
  let spec algo = { Flows.tech; buffers; algo } in
  let s1 = spec (Flows.Lttree_ptree { max_fanout = 10 }) in
  let s2 = spec (Flows.Ptree_vg { refine_seg = None }) in
  Alcotest.(check bool) "different nets, different keys" false
    (String.equal (Wire.request_key s1 net) (Wire.request_key s1 net'));
  Alcotest.(check bool) "different algos, different keys" false
    (String.equal (Wire.request_key s1 net) (Wire.request_key s2 net));
  let reloaded = Net_io.of_string (Net_io.to_string net) in
  Alcotest.(check string) "reloaded net, same key" (Wire.request_key s1 net)
    (Wire.request_key s1 reloaded)

let suite =
  ( "serve",
    [ Alcotest.test_case "lru basic" `Quick test_lru_basic;
      Alcotest.test_case "lru eviction order" `Quick test_lru_evicts_least_recent;
      Alcotest.test_case "lru capacity one" `Quick test_lru_capacity_one;
      Alcotest.test_case "store round trip" `Quick test_store_roundtrip;
      Alcotest.test_case "store survives corruption" `Quick
        test_store_corruption;
      Alcotest.test_case "two-tier cache" `Quick test_cache_two_tier;
      Alcotest.test_case "memory-only cache" `Quick test_cache_memory_only;
      Alcotest.test_case "scheduler dedups in-flight keys" `Quick
        test_schedule_dedup;
      qtest "spec json round trip" arb_spec spec_roundtrip;
      qtest ~count:60 "route msg round trip" arb_request client_roundtrip;
      qtest ~count:60 "batch msg round trip" arb_batch batch_roundtrip;
      Alcotest.test_case "admin msg round trip" `Quick admin_roundtrip;
      Alcotest.test_case "server msg round trip" `Quick server_msg_roundtrip;
      Alcotest.test_case "v1 compatibility decode" `Quick v1_compat_decode;
      Alcotest.test_case "decoder rejects bad input" `Quick decode_rejects;
      Alcotest.test_case "fingerprint vs sink order" `Quick
        test_fingerprint_sink_order;
      Alcotest.test_case "fingerprint save/load" `Quick
        test_fingerprint_survives_save_load;
      Alcotest.test_case "request keys separate" `Quick
        test_request_key_separates ] )
