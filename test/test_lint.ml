(* merlin_lint rule tests: for each rule R1-R6 a known-bad snippet that
   must be flagged (with the right rule and line) and a known-good
   snippet that must pass.  The executable-level exit codes are checked
   by the fixture rules in test/dune over test/lint_fixtures/. *)

module Driver = Merlin_lint.Driver
module Finding = Merlin_lint.Finding

let spans ~filename src =
  List.map
    (fun f -> (f.Finding.rule, f.Finding.line))
    (Driver.lint_string ~filename src)

let check_spans name expected ~filename src =
  Alcotest.(check (list (pair string int))) name expected (spans ~filename src)

let test_poly_compare () =
  check_spans "structured literal flagged" [ ("poly-compare", 2) ]
    ~filename:"lib/fix.ml" "let x = 1\nlet is_empty l = l = []\n";
  check_spans "constructor operand flagged" [ ("poly-compare", 1) ]
    ~filename:"lib/fix.ml" "let f o p = o = Some p\n";
  check_spans "first-class compare flagged" [ ("poly-compare", 1) ]
    ~filename:"lib/fix.ml" "let sort l = List.sort compare l\n";
  check_spans "pattern match passes" [] ~filename:"lib/fix.ml"
    "let is_empty = function [] -> true | _ :: _ -> false\n";
  check_spans "scalar comparison passes" [] ~filename:"lib/fix.ml"
    "let f x = x = 3 && x <> 5\n"

let test_raising_accessor () =
  check_spans "Hashtbl.find in lib flagged" [ ("raising-accessor", 1) ]
    ~filename:"lib/fix.ml" "let f tbl k = Hashtbl.find tbl k\n";
  check_spans "List.hd in lib flagged" [ ("raising-accessor", 1) ]
    ~filename:"lib/fix.ml" "let f l = List.hd l\n";
  check_spans "allowed outside lib" [] ~filename:"bin/fix.ml"
    "let f tbl k = Hashtbl.find tbl k\n";
  check_spans "_opt form passes" [] ~filename:"lib/fix.ml"
    "let f tbl k = Hashtbl.find_opt tbl k\n"

let test_physical_eq () =
  check_spans "== flagged" [ ("physical-eq", 1) ] ~filename:"lib/fix.ml"
    "let same a b = a == b\n";
  check_spans "!= flagged" [ ("physical-eq", 1) ] ~filename:"bin/fix.ml"
    "let diff a b = a != b\n";
  check_spans "waiver accepted" [] ~filename:"lib/fix.ml"
    "let same a b = a == b (* l\105nt: physical-eq *)\n"

let test_error_prefix () =
  check_spans "bare message flagged" [ ("error-prefix", 1) ]
    ~filename:"lib/fix.ml" "let f () = failwith \"boom\"\n";
  check_spans "module-only prefix flagged" [ ("error-prefix", 1) ]
    ~filename:"lib/fix.ml" "let f () = invalid_arg \"Fix: boom\"\n";
  check_spans "sprintf format flagged" [ ("error-prefix", 2) ]
    ~filename:"lib/fix.ml"
    "let f n =\n  invalid_arg (Printf.sprintf \"bad %d\" n)\n";
  check_spans "Module.function prefix passes" [] ~filename:"lib/fix.ml"
    "let f () = failwith \"Fix.f: boom\"\n";
  check_spans "prefixed sprintf passes" [] ~filename:"lib/fix.ml"
    "let f n = invalid_arg (Printf.sprintf \"Fix.f: bad %d\" n)\n"

let test_catch_all () =
  check_spans "with _ flagged" [ ("catch-all", 1) ] ~filename:"lib/fix.ml"
    "let safe f = try f () with _ -> 0\n";
  check_spans "or-pattern catch-all flagged" [ ("catch-all", 1) ]
    ~filename:"lib/fix.ml" "let safe f = try f () with Not_found | _ -> 0\n";
  check_spans "specific exception passes" [] ~filename:"lib/fix.ml"
    "let safe f = try f () with Not_found -> 0\n"

let test_curve_add_in_loop () =
  check_spans "fold callback flagged in core" [ ("curve-add-in-loop", 1) ]
    ~filename:"lib/core/fix.ml"
    "let f c sols = List.fold_left (fun acc s -> Curve.add acc s) c sols\n";
  check_spans "iter callback flagged in core" [ ("curve-add-in-loop", 1) ]
    ~filename:"lib/core/fix.ml"
    "let f acc sols = Array.iter (fun s -> acc := Curve.add !acc s) sols\n";
  check_spans "for-loop body flagged in core" [ ("curve-add-in-loop", 3) ]
    ~filename:"lib/core/fix.ml"
    "let f c arr =\n\
    \  let acc = ref c in\n\
    \  for i = 0 to 3 do acc := Curve.add !acc arr.(i) done;\n\
    \  !acc\n";
  check_spans "nested loops report the site once" [ ("curve-add-in-loop", 2) ]
    ~filename:"lib/core/fix.ml"
    "let f acc l r =\n\
    \  List.iter (fun a -> List.iter (fun b -> acc := Curve.add !acc (a, b)) r) l\n";
  check_spans "single add outside loops passes" [] ~filename:"lib/core/fix.ml"
    "let f c s = Curve.add c s\n";
  check_spans "outside lib/core passes" [] ~filename:"lib/curves/fix.ml"
    "let f acc sols = List.iter (fun s -> acc := Curve.add !acc s) sols\n";
  check_spans "waiver accepted" [] ~filename:"lib/core/fix.ml"
    "let f acc sols =\n\
    \  List.iter (fun s -> acc := Curve.add !acc s) sols (* l\105nt: curve-add-in-loop *)\n"

let test_builder_create_in_loop () =
  check_spans "iter callback flagged in core" [ ("builder-create-in-loop", 2) ]
    ~filename:"lib/core/fix.ml"
    "let f cells =\n\
    \  List.iter (fun c -> ignore (Curve.Builder.create ())) cells\n";
  check_spans "for-loop body flagged in lttree" [ ("builder-create-in-loop", 1) ]
    ~filename:"lib/lttree/fix.ml"
    "let f n = for _i = 1 to n do ignore (Curve.Builder.create ()) done\n";
  check_spans "qualified form flagged" [ ("builder-create-in-loop", 1) ]
    ~filename:"lib/core/fix.ml"
    "let f l = List.iter (fun _ -> ignore (Merlin_curves.Curve.Builder.create ())) l\n";
  check_spans "hoisted create passes" [] ~filename:"lib/core/fix.ml"
    "let f cells =\n\
    \  let bld = Curve.Builder.create () in\n\
    \  List.iter (fun c -> fill bld c) cells\n";
  check_spans "outside the hot paths passes" [] ~filename:"lib/flows/fix.ml"
    "let f l = List.iter (fun _ -> ignore (Curve.Builder.create ())) l\n";
  check_spans "waiver accepted" [] ~filename:"lib/core/fix.ml"
    "let f l =\n\
    \  List.iter (fun _ -> ignore (Curve.Builder.create ())) l (* l\105nt: builder-create-in-loop *)\n"

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let test_mli_sibling () =
  let dir = Filename.temp_file "merlin_lint" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let libdir = Filename.concat dir "lib" in
  Sys.mkdir libdir 0o755;
  let ml = Filename.concat libdir "orphan.ml" in
  write_file ml "let x = 1\n";
  let rules =
    List.map
      (fun f -> f.Finding.rule)
      (Driver.lint_paths [ dir ])
  in
  Alcotest.(check (list string)) "orphan .ml flagged" [ "mli-sibling" ] rules;
  write_file (ml ^ "i") "val x : int\n";
  Alcotest.(check (list string)) "sibling .mli silences" []
    (List.map (fun f -> f.Finding.rule) (Driver.lint_paths [ dir ]))

let test_parse_error () =
  match Driver.lint_string ~filename:"lib/fix.ml" "let = \n" with
  | [ f ] ->
    Alcotest.(check string) "rule" "parse-error" f.Finding.rule;
    Alcotest.(check bool) "is error" true (Finding.is_error f)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let test_render () =
  let findings =
    Driver.lint_string ~filename:"lib/fix.ml" "let same a b = a == b\n"
  in
  Alcotest.(check bool) "has errors" true (Driver.has_errors findings);
  let text = Driver.render_text findings in
  Alcotest.(check bool) "text span" true
    (contains text "lib/fix.ml:1:17 [physical-eq]");
  let json = Driver.render_json findings in
  Alcotest.(check bool) "json rule" true
    (contains json "\"rule\":\"physical-eq\"");
  Alcotest.(check bool) "json errors" true (contains json "\"errors\":1")

let suite =
  ( "lint",
    [ Alcotest.test_case "R1 poly-compare" `Quick test_poly_compare;
      Alcotest.test_case "R2 raising-accessor" `Quick test_raising_accessor;
      Alcotest.test_case "R3 physical-eq" `Quick test_physical_eq;
      Alcotest.test_case "R4 error-prefix" `Quick test_error_prefix;
      Alcotest.test_case "R5 catch-all" `Quick test_catch_all;
      Alcotest.test_case "R6 mli-sibling" `Quick test_mli_sibling;
      Alcotest.test_case "R7 curve-add-in-loop" `Quick test_curve_add_in_loop;
      Alcotest.test_case "R8 builder-create-in-loop" `Quick
        test_builder_create_in_loop;
      Alcotest.test_case "parse error reported" `Quick test_parse_error;
      Alcotest.test_case "rendering" `Quick test_render ] )
