open Merlin_geometry
open Merlin_tech
open Merlin_circuit

let tech = Tech.default
let buffers = Buffer_lib.default

let small_circuit () =
  Placement.place (Circuit_gen.random ~seed:3 ~n_gates:25 ~n_inputs:6 ~name:"tiny")

let test_gen_validates () =
  List.iter
    (fun seed ->
       let nl = Circuit_gen.random ~seed ~n_gates:40 ~n_inputs:8 ~name:"g" in
       Netlist.validate nl;
       Alcotest.(check int) "gate count" 40 (Array.length nl.Netlist.gates);
       Alcotest.(check bool) "has outputs" true
         (List.length nl.Netlist.outputs > 0))
    [ 1; 2; 3 ]

let test_gen_deterministic () =
  let a = Circuit_gen.generate ~name:"C432" () in
  let b = Circuit_gen.generate ~name:"C432" () in
  Alcotest.(check int) "same gates" (Array.length a.Netlist.gates)
    (Array.length b.Netlist.gates);
  Array.iteri
    (fun i ga ->
       let gb = b.Netlist.gates.(i) in
       Alcotest.(check string) "same kind" ga.Netlist.kind.Gate.name
         gb.Netlist.kind.Gate.name;
       Alcotest.(check bool) "same fanins" true (ga.Netlist.fanins = gb.Netlist.fanins))
    a.Netlist.gates

let test_table2_specs () =
  Alcotest.(check int) "15 circuits" 15 (List.length Circuit_gen.table2_specs);
  List.iter
    (fun (name, area, delay, runtime) ->
       Alcotest.(check bool) (name ^ " positive") true
         (area > 0.0 && delay > 0.0 && runtime > 0.0))
    Circuit_gen.table2_specs

let test_scaling_follows_area () =
  let big = Circuit_gen.generate ~name:"C7552" () in
  let small = Circuit_gen.generate ~name:"B9" () in
  Alcotest.(check bool) "larger benchmark has more gates" true
    (Array.length big.Netlist.gates > Array.length small.Netlist.gates)

let test_placement_in_die () =
  let nl = small_circuit () in
  let side = Placement.die_side nl in
  Array.iter
    (fun p ->
       Alcotest.(check bool) "inside die" true
         (p.Point.x >= 0 && p.Point.x <= side && p.Point.y >= 0 && p.Point.y <= side))
    nl.Netlist.positions

let test_fanouts () =
  let nl = Circuit_gen.random ~seed:5 ~n_gates:20 ~n_inputs:5 ~name:"fo" in
  let fo = Netlist.fanouts nl in
  (* Every gate's fanins appear in the fanout lists. *)
  Array.iteri
    (fun g gate ->
       Array.iter
         (fun node ->
            Alcotest.(check bool) "fanout recorded" true (List.mem g fo.(node)))
         gate.Netlist.fanins)
    nl.Netlist.gates

let test_sta_basics () =
  let nl = small_circuit () in
  let sta = Sta.init nl in
  let r = Sta.analyse ~tech sta in
  Alcotest.(check bool) "critical positive" true (r.Sta.critical > 0.0);
  Alcotest.(check (float 1e-9)) "default clock = critical" r.Sta.critical r.Sta.clock;
  (* Arrival ordering along edges: a gate is never ready before its
     fanins. *)
  Array.iteri
    (fun g gate ->
       let node = Netlist.node_of_gate nl g in
       Array.iter
         (fun fanin ->
            Alcotest.(check bool) "causality" true
              (r.Sta.ready.(node) >= r.Sta.ready.(fanin)))
         gate.Netlist.fanins)
    nl.Netlist.gates;
  (* At the default clock no required time is above the clock. *)
  Array.iter
    (fun req -> Alcotest.(check bool) "required <= clock" true (req <= r.Sta.clock +. 1e-6))
    r.Sta.required

let test_sta_slack_nonnegative_at_default_clock () =
  let nl = small_circuit () in
  let sta = Sta.init nl in
  let r = Sta.analyse ~tech sta in
  Array.iteri
    (fun node ready ->
       Alcotest.(check bool)
         (Printf.sprintf "node %d slack" node)
         true
         (r.Sta.required.(node) -. ready >= -1e-6))
    r.Sta.ready

let test_net_for_optimization () =
  let nl = small_circuit () in
  let sta = Sta.init nl in
  let r = Sta.analyse ~tech sta in
  let found = ref 0 in
  for node = 0 to Netlist.n_nodes nl - 1 do
    match Sta.net_for_optimization sta r node with
    | None ->
      Alcotest.(check (list int)) "no fanouts" [] (Sta.sink_gates sta node)
    | Some net ->
      incr found;
      Alcotest.(check int) "one sink per fanout gate"
        (List.length (Sta.sink_gates sta node))
        (Merlin_net.Net.n_sinks net)
  done;
  Alcotest.(check bool) "some nets exist" true (!found > 0)

let test_better_routing_reduces_delay () =
  (* Replacing the star of the most critical multi-sink net with a
     buffered routing must not increase the critical path. *)
  let nl = small_circuit () in
  let sta = Sta.init nl in
  let r = Sta.analyse ~tech sta in
  let candidate = ref None in
  for node = 0 to Netlist.n_nodes nl - 1 do
    if List.length (Sta.sink_gates sta node) >= 3 && Option.is_none !candidate
    then
      candidate := Some node
  done;
  match !candidate with
  | None -> () (* no multi-sink nets in this synthetic instance *)
  | Some node ->
    let net = Option.get (Sta.net_for_optimization sta r node) in
    let m =
      Merlin_flows.Flows.run
        { Merlin_flows.Flows.tech;
          buffers;
          algo = Merlin_flows.Flows.Ptree_vg { refine_seg = None } }
        net
    in
    let sta' = Sta.with_routing sta ~node m.Merlin_flows.Flows.tree in
    let r' = Sta.analyse ~tech ~clock:r.Sta.clock sta' in
    Alcotest.(check bool) "critical did not explode" true
      (r'.Sta.critical <= r.Sta.critical *. 1.10 +. 1.0)

let test_flow_runner_smoke () =
  let nl =
    Placement.place (Circuit_gen.random ~seed:11 ~n_gates:15 ~n_inputs:4 ~name:"smoke")
  in
  let res = Flow_runner.run ~tech ~buffers ~flow:Flow_runner.Flow2 nl in
  Alcotest.(check bool) "area at least gate area" true
    (res.Flow_runner.area >= Netlist.gate_area nl -. 1e-9);
  Alcotest.(check bool) "positive delay" true (res.Flow_runner.delay > 0.0);
  Alcotest.(check bool) "optimized some nets" true
    (res.Flow_runner.nets_optimized > 0)

(* [Flow_runner.nets] is the batch-serving extraction path: it must
   name every optimizable net uniquely and honour the sink floor. *)
let test_flow_runner_nets () =
  let nl =
    Placement.place (Circuit_gen.random ~seed:11 ~n_gates:15 ~n_inputs:4 ~name:"smoke")
  in
  let nets = Flow_runner.nets ~tech nl in
  Alcotest.(check bool) "found optimizable nets" true (List.length nets > 0);
  let names = List.map fst nets in
  Alcotest.(check int) "names are unique"
    (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun (name, net) ->
       Alcotest.(check string) "name matches the net" name
         net.Merlin_net.Net.name;
       Alcotest.(check bool) "sink floor honoured" true
         (Merlin_net.Net.n_sinks net >= 2))
    nets;
  let strict = Flow_runner.nets ~tech ~min_sinks:4 nl in
  List.iter
    (fun (_, net) ->
       Alcotest.(check bool) "raised floor honoured" true
         (Merlin_net.Net.n_sinks net >= 4))
    strict;
  Alcotest.(check bool) "raising the floor only shrinks the list" true
    (List.length strict <= List.length nets)

let suite =
  ( "circuit",
    [ Alcotest.test_case "gen validates" `Quick test_gen_validates;
      Alcotest.test_case "gen deterministic" `Quick test_gen_deterministic;
      Alcotest.test_case "table2 specs" `Quick test_table2_specs;
      Alcotest.test_case "scaling follows area" `Quick test_scaling_follows_area;
      Alcotest.test_case "placement in die" `Quick test_placement_in_die;
      Alcotest.test_case "fanouts" `Quick test_fanouts;
      Alcotest.test_case "sta basics" `Quick test_sta_basics;
      Alcotest.test_case "sta slack at default clock" `Quick
        test_sta_slack_nonnegative_at_default_clock;
      Alcotest.test_case "net for optimization" `Quick test_net_for_optimization;
      Alcotest.test_case "routing replacement" `Slow test_better_routing_reduces_delay;
      Alcotest.test_case "flow runner smoke" `Slow test_flow_runner_smoke;
      Alcotest.test_case "flow runner nets" `Quick test_flow_runner_nets ] )
