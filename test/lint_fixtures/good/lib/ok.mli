val is_empty : 'a list -> bool

val compare_ids : int -> int -> int

val lookup : ('a, 'b) Hashtbl.t -> 'a -> 'b option

val same_repr : 'a -> 'a -> bool

val boom : unit -> 'a

val safe : (unit -> int) -> int
