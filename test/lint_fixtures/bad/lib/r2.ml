(* R2 fixture: raising accessor in lib/. *)
let lookup tbl k = Hashtbl.find tbl k
