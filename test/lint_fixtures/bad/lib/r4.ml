(* R4 fixture: failwith message without a Module.function: prefix. *)
let boom () = failwith "boom"
