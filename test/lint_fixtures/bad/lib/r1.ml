(* R1 fixture: polymorphic equality on structured data. *)
let is_empty l = l = []
