(* R3 fixture: unwaived physical equality. *)
let same a b = a == b
