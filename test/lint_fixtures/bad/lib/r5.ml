(* R5 fixture: catch-all exception handler. *)
let safe f = try f () with _ -> 0
