val iter_build : 'a list -> unit

val loop_build : 'a array -> unit

val hoisted : unit -> 'b Curve.Builder.b
