(* R7 fixture: per-candidate Curve.add inside loops in the DP core. *)

let fold_fill curve sols =
  List.fold_left (fun acc s -> Curve.add acc s) curve sols

let iter_fill curve sols =
  let acc = ref curve in
  List.iter (fun s -> acc := Curve.add !acc s) sols;
  !acc

let loop_fill curve arr =
  let acc = ref curve in
  for i = 0 to Array.length arr - 1 do
    acc := Curve.add !acc arr.(i)
  done;
  !acc

(* A single insert outside any loop is the sanctioned use and passes. *)
let single curve s = Curve.add curve s
