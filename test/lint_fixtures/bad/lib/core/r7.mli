val fold_fill : 'a -> 'b list -> 'a

val iter_fill : 'a -> 'b list -> 'a

val loop_fill : 'a -> 'b array -> 'a

val single : 'a -> 'b -> 'a
