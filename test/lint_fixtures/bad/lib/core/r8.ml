(* R8 fixture: per-batch Curve.Builder.create inside loops in a DP hot
   path — the arena discipline hoists one builder per context instead. *)

let iter_build cells =
  List.iter
    (fun cell ->
       let bld = Curve.Builder.create () in
       ignore (Curve.Builder.build (fill bld cell)))
    cells

let loop_build cells =
  for i = 0 to Array.length cells - 1 do
    let bld = Curve.Builder.create () in
    ignore (Curve.Builder.build (fill bld cells.(i)))
  done

(* A builder created once, outside any loop, is the sanctioned use. *)
let hoisted () = Curve.Builder.create ()
