val boom : unit -> 'a
