(* R6 fixture: a lib module with no sibling .mli. *)
let orphan = 42
