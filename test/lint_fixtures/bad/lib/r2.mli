val lookup : ('a, 'b) Hashtbl.t -> 'a -> 'b
