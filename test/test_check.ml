(* merlin_check tests: the typed rules against compiled fixtures, and
   the SARIF -> baseline round-trip property.

   Fixtures under check_fixtures/ are plain sources (not part of any
   dune stanza); the test copies them to a temp directory, compiles
   them there with ocamlc -bin-annot and runs the analyzer on the
   resulting artifacts.  Compiling outside the build tree keeps the
   fixtures' deliberate violations out of the repository-wide @check
   scan. *)

module Cmt_load = Merlin_check.Cmt_load
module Check_driver = Merlin_check.Check_driver
module Finding = Merlin_lint.Finding

let qtest ?(count = 50) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* ---- fixture compilation ---- *)

let fixture_files =
  (* exports.mli/.ml must precede user.ml: ocamlc needs the cmi. *)
  [ "exports.mli"; "exports.ml"; "user.ml"; "c1_pos.ml"; "c1_neg.ml";
    "c1_waived.ml"; "c2_pos.ml"; "c2_neg.ml"; "stale.ml"; "c4_pos.ml";
    "c4_neg.ml"; "c4_waived.ml"; "c5_pos.ml"; "c5_neg.ml"; "c5_waived.ml";
    "c6_pos.ml"; "c6_neg.ml"; "c6_waived.ml"; "c7_pos.ml"; "c7_neg.ml";
    "c7_waived.ml"; "c8_pos.ml"; "c8_neg.ml"; "c8_waived.ml"; "c9_pos.ml";
    "c9_neg.ml"; "c9_waived.ml" ]

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

(* Compile once, analyze once; every test case reads this. *)
let analysis =
  lazy
    (let dir = Filename.temp_dir "merlin_fixt" "" in
     List.iter
       (fun name ->
          write_file (Filename.concat dir name)
            (read_file (Filename.concat "check_fixtures" name)))
       fixture_files;
     let srcs =
       List.map (fun name -> Filename.quote (Filename.concat dir name))
         fixture_files
     in
     let cmd =
       Printf.sprintf "ocamlc -bin-annot -I %s -c %s" (Filename.quote dir)
         (String.concat " " srcs)
     in
     if Sys.command cmd <> 0 then
       failwith "Test_check.analysis: fixture compilation failed";
     let units, errs =
       Cmt_load.load_files (Cmt_load.collect_cmt_files [ dir ])
     in
     (units, errs, Check_driver.analyze (units, errs)))

let findings_for base =
  let _, _, findings = Lazy.force analysis in
  List.filter
    (fun (f : Finding.t) ->
       String.equal (Filename.basename f.Finding.file) base)
    findings

let contains text sub =
  let n = String.length sub and m = String.length text in
  let rec scan i =
    i + n <= m && (String.equal (String.sub text i n) sub || scan (i + 1))
  in
  scan 0

let count_rule rule findings =
  List.length
    (List.filter
       (fun (f : Finding.t) -> String.equal f.Finding.rule rule)
       findings)

(* ---- loader ---- *)

let test_loader () =
  let units, errs, _ = Lazy.force analysis in
  Alcotest.(check int) "no load errors" 0 (List.length errs);
  (* exports.ml + exports.mli merge into one unit *)
  Alcotest.(check int) "one unit per module" (List.length fixture_files - 1)
    (List.length units);
  let exports =
    List.find
      (fun (u : Cmt_load.t) -> String.equal u.Cmt_load.name "Exports")
      units
  in
  Alcotest.(check bool) "impl loaded" true (Option.is_some exports.Cmt_load.impl);
  Alcotest.(check bool) "intf loaded" true (Option.is_some exports.Cmt_load.intf)

(* ---- C1 ---- *)

let test_c1_positive () =
  let fs = findings_for "c1_pos.ml" in
  (* incr on a ref, a mutable-field set and a Hashtbl.replace *)
  Alcotest.(check int) "three captures" 3
    (count_rule "domain-unsafe-capture" fs);
  Alcotest.(check bool) "names the ref" true
    (List.exists
       (fun (f : Finding.t) ->
          Finding.is_error f && contains f.Finding.message "hits")
       fs)

let test_c1_negative () =
  Alcotest.(check int) "clean file" 0 (List.length (findings_for "c1_neg.ml"))

let test_c1_waived () =
  let fs = findings_for "c1_waived.ml" in
  Alcotest.(check int) "no capture reported" 0
    (count_rule "domain-unsafe-capture" fs);
  (* the waiver was consumed, so it must not be stale either *)
  Alcotest.(check int) "no stale waiver" 0 (count_rule "stale-waiver" fs)

(* ---- C2 ---- *)

let test_c2_positive () =
  let fs = findings_for "c2_pos.ml" in
  (* failwith, List.hd and Option.get, each unhandled *)
  Alcotest.(check int) "three escapes" 3 (count_rule "task-exn-escape" fs)

let test_c2_negative () =
  Alcotest.(check int) "handled raisers" 0
    (List.length (findings_for "c2_neg.ml"))

(* ---- C3 ---- *)

let test_c3 () =
  let fs = findings_for "exports.mli" in
  Alcotest.(check int) "one dead export" 1 (count_rule "dead-export" fs);
  let dead =
    List.find (fun (f : Finding.t) -> String.equal f.Finding.rule "dead-export") fs
  in
  Alcotest.(check bool) "it is Exports.dead" true
    (String.equal dead.Finding.message
       "Exports.dead is exported by its .mli but never referenced from \
        another compilation unit")

(* ---- C4 ---- *)

let test_c4_positive () =
  let fs = findings_for "c4_pos.ml" in
  (* both directions of the AB/BA cycle close it *)
  Alcotest.(check int) "both inversions flagged" 2 (count_rule "lock-order" fs);
  Alcotest.(check bool) "message shows the cycle" true
    (List.exists
       (fun (f : Finding.t) ->
          Finding.is_error f && contains f.Finding.message "closes a lock cycle"
          && contains f.Finding.message "C4_pos.locks.a")
       fs)

let test_c4_negative () =
  Alcotest.(check int) "consistent nesting is clean" 0
    (List.length (findings_for "c4_neg.ml"))

(* Re-analyze with a committed order that ranks b above a: c4_neg's
   consistent a-then-b nesting becomes a spec inversion. *)
let test_c4_spec_inversion () =
  let units, errs, _ = Lazy.force analysis in
  let fs =
    Check_driver.analyze
      ~lock_spec:[ "C4_neg.locks.b"; "C4_neg.locks.a" ]
      (units, errs)
    |> List.filter (fun (f : Finding.t) ->
        String.equal (Filename.basename f.Finding.file) "c4_neg.ml")
  in
  Alcotest.(check int) "one inversion per nesting site" 2
    (count_rule "lock-order" fs);
  Alcotest.(check bool) "names the committed order" true
    (List.exists
       (fun (f : Finding.t) ->
          contains f.Finding.message "inverts the committed lock order")
       fs)

let test_spec_parse () =
  (match
     Merlin_check.Lock_order.spec_of_string
       "# outermost first\n\nServer.lock\n  Lru.lock  \n\t\n# tail\n"
   with
   | Ok entries ->
     Alcotest.(check (list string)) "comments and blanks dropped"
       [ "Server.lock"; "Lru.lock" ] entries
   | Error msg -> Alcotest.fail msg);
  match Merlin_check.Lock_order.spec_of_string "A.x\nB.y\nA.x\n" with
  | Ok _ -> Alcotest.fail "duplicate lock accepted"
  | Error msg ->
    Alcotest.(check bool) "duplicate named" true (contains msg "A.x")

let test_c4_waived () =
  let fs = findings_for "c4_waived.ml" in
  Alcotest.(check int) "cycle waived" 0 (count_rule "lock-order" fs);
  Alcotest.(check int) "waivers consumed" 0 (count_rule "stale-waiver" fs)

(* ---- C5 ---- *)

let test_c5_positive () =
  let fs = findings_for "c5_pos.ml" in
  Alcotest.(check int) "join under lock + wrong-mutex wait" 2
    (count_rule "blocking-under-lock" fs);
  Alcotest.(check bool) "wait finding names the pinned lock" true
    (List.exists
       (fun (f : Finding.t) ->
          contains f.Finding.message "Condition.wait releases only"
          && contains f.Finding.message "C5_pos.s.m")
       fs)

let test_c5_negative () =
  Alcotest.(check int) "classic wait and post-region join are clean" 0
    (List.length (findings_for "c5_neg.ml"))

let test_c5_waived () =
  let fs = findings_for "c5_waived.ml" in
  Alcotest.(check int) "deliberate join waived" 0
    (count_rule "blocking-under-lock" fs);
  Alcotest.(check int) "waiver consumed" 0 (count_rule "stale-waiver" fs)

(* ---- C6 ---- *)

let test_c6_positive () =
  let fs = findings_for "c6_pos.ml" in
  Alcotest.(check int) "raise-edge leak + never-closed" 2
    (count_rule "fd-leak" fs);
  Alcotest.(check bool) "raise edge names the borrow" true
    (List.exists
       (fun (f : Finding.t) ->
          contains f.Finding.message "Unix.send can raise before")
       fs);
  Alcotest.(check bool) "never-closed reported at the binding" true
    (List.exists
       (fun (f : Finding.t) ->
          contains f.Finding.message "no path reaches Unix.close")
       fs)

let test_c6_negative () =
  Alcotest.(check int) "finally/handler/escape shapes are clean" 0
    (List.length (findings_for "c6_neg.ml"))

let test_c6_waived () =
  let fs = findings_for "c6_waived.ml" in
  Alcotest.(check int) "lifetime fd waived" 0 (count_rule "fd-leak" fs);
  Alcotest.(check int) "waiver consumed" 0 (count_rule "stale-waiver" fs)

(* ---- C7 ---- *)

let test_c7_positive () =
  let fs = findings_for "c7_pos.ml" in
  Alcotest.(check int) "direct draw + nondet helper" 2
    (count_rule "nondet-in-task" fs);
  (* The interprocedural finding carries the call chain to the
     source. *)
  Alcotest.(check bool) "trace names the helper chain" true
    (List.exists
       (fun (f : Finding.t) ->
          contains f.Finding.message "C7_pos.jitter > Random.float")
       fs)

let test_c7_negative () =
  Alcotest.(check int) "seeded state and pure helper are clean" 0
    (List.length (findings_for "c7_neg.ml"))

let test_c7_waived () =
  let fs = findings_for "c7_waived.ml" in
  Alcotest.(check int) "telemetry clock read waived" 0
    (count_rule "nondet-in-task" fs);
  Alcotest.(check int) "waiver consumed" 0 (count_rule "stale-waiver" fs)

(* ---- C8 ---- *)

let test_c8_positive () =
  let fs = findings_for "c8_pos.ml" in
  Alcotest.(check int) "direct key, tainted let, request_key" 3
    (count_rule "impure-cache-key" fs);
  Alcotest.(check bool) "impure keys are errors" true
    (List.for_all
       (fun (f : Finding.t) ->
          (not (String.equal f.Finding.rule "impure-cache-key"))
          || Finding.is_error f)
       fs);
  Alcotest.(check bool) "taint names the let binder" true
    (List.exists
       (fun (f : Finding.t) ->
          contains f.Finding.message "through let-bound key")
       fs)

let test_c8_negative () =
  Alcotest.(check int) "request-derived keys are clean" 0
    (List.length (findings_for "c8_neg.ml"))

let test_c8_waived () =
  let fs = findings_for "c8_waived.ml" in
  Alcotest.(check int) "deliberate miss probe waived" 0
    (count_rule "impure-cache-key" fs);
  Alcotest.(check int) "waiver consumed" 0 (count_rule "stale-waiver" fs)

(* ---- C9 ---- *)

let test_c9_positive () =
  let fs = findings_for "c9_pos.ml" in
  Alcotest.(check int) "unsorted fold + iter" 2
    (count_rule "order-sensitive-fold" fs);
  Alcotest.(check bool) "names the traversal" true
    (List.exists
       (fun (f : Finding.t) -> contains f.Finding.message "Hashtbl.iter")
       fs)

let test_c9_negative () =
  Alcotest.(check int) "sorted directly and downstream are clean" 0
    (List.length (findings_for "c9_neg.ml"))

let test_c9_waived () =
  let fs = findings_for "c9_waived.ml" in
  Alcotest.(check int) "commutative fold waived" 0
    (count_rule "order-sensitive-fold" fs);
  Alcotest.(check int) "waiver consumed" 0 (count_rule "stale-waiver" fs)

(* ---- purity summaries (the machinery under C7-C9) ---- *)

let test_purity_classify () =
  let units, _, _ = Lazy.force analysis in
  let project = Merlin_check.Concur.build units in
  let purity = Merlin_check.Purity.build project in
  let classify unit name =
    match
      List.find_opt
        (fun (fn : Merlin_check.Concur.fn) ->
           String.equal fn.Merlin_check.Concur.fn_unit unit
           && String.equal fn.Merlin_check.Concur.fn_name name)
        (Merlin_check.Concur.fns project)
    with
    | Some fn -> Merlin_check.Purity.classify purity fn
    | None -> Alcotest.failf "function %s.%s not inventoried" unit name
  in
  (match classify "C7_pos" "jitter" with
   | Merlin_check.Purity.Nondet trace ->
     Alcotest.(check (list string)) "direct trace is the source"
       [ "Random.float" ] trace
   | Merlin_check.Purity.Pure | Merlin_check.Purity.Det_effectful ->
     Alcotest.fail "jitter must be nondeterministic");
  (* The fixpoint charges the caller with the chain to the source. *)
  (match classify "C7_pos" "sample" with
   | Merlin_check.Purity.Nondet trace ->
     Alcotest.(check (list string)) "propagated trace"
       [ "C7_pos.jitter"; "Random.float" ] trace
   | Merlin_check.Purity.Pure | Merlin_check.Purity.Det_effectful ->
     Alcotest.fail "sample must be nondeterministic");
  (match classify "C7_neg" "double" with
   | Merlin_check.Purity.Pure -> ()
   | Merlin_check.Purity.Det_effectful | Merlin_check.Purity.Nondet _ ->
     Alcotest.fail "double must be pure");
  (* Seeded state draws are deterministic; the state mutation makes
     the function effectful at most. *)
  (match classify "C7_neg" "keyed" with
   | Merlin_check.Purity.Nondet _ ->
     Alcotest.fail "seeded Random.State must not be nondeterministic"
   | Merlin_check.Purity.Pure | Merlin_check.Purity.Det_effectful -> ());
  match classify "C9_pos" "dump" with
  | Merlin_check.Purity.Det_effectful -> ()
  | Merlin_check.Purity.Pure -> Alcotest.fail "printing is an effect"
  | Merlin_check.Purity.Nondet _ ->
    Alcotest.fail "printing must not be nondeterministic"

let test_purity_sources_table () =
  (* Every source's display name is exactly its dotted suffix — the
     message vocabulary stays greppable against the table. *)
  List.iter
    (fun (suffix, name) ->
       Alcotest.(check string) name name (String.concat "." suffix))
    Merlin_check.Purity.sources;
  (* The seeds the issue calls out are present. *)
  List.iter
    (fun name ->
       Alcotest.(check bool) name true
         (List.exists
            (fun (_, n) -> String.equal n name)
            Merlin_check.Purity.sources))
    [ "Random.int"; "Unix.gettimeofday"; "Sys.time"; "Gc.stat";
      "Domain.self"; "Sys.getenv"; "Filename.temp_file";
      "Clock.monotonic_s"; "Clock.timed" ]

(* Every sink the byte-identity suites exercise (Pool.map in
   test_exec, the hier pmap, the scheduler's speculative waves) must
   be audited by the task-closure rules — otherwise "order
   independent" is only tested, never statically guarded. *)
let test_task_sinks_cover_identity_suites () =
  let displays = List.map snd Merlin_check.Task_sites.sinks in
  List.iter
    (fun sink ->
       Alcotest.(check bool) sink true
         (List.exists (String.equal sink) displays))
    [ "Pool.submit"; "Pool.map"; "Pool.run_timeout"; "Flow_runner.run";
      "Scheduler.schedule"; "Hier.route" ]

(* ---- --rules selectors ---- *)

let test_rule_selectors () =
  (match Check_driver.resolve_selector "C7" with
   | Ok name -> Alcotest.(check string) "code" "nondet-in-task" name
   | Error msg -> Alcotest.fail msg);
  (match Check_driver.resolve_selector "c9" with
   | Ok name ->
     Alcotest.(check string) "lowercase code" "order-sensitive-fold" name
   | Error msg -> Alcotest.fail msg);
  (match Check_driver.resolve_selector "impure-cache-key" with
   | Ok name -> Alcotest.(check string) "name" "impure-cache-key" name
   | Error msg -> Alcotest.fail msg);
  match Check_driver.resolve_selector "C42" with
  | Ok name -> Alcotest.failf "bogus selector resolved to %s" name
  | Error msg ->
    Alcotest.(check bool) "error names the selector" true
      (contains msg "C42")

(* A filtered run analyzes only the selected rules, and a waiver for
   an inactive rule is not reported stale. *)
let test_rules_filter () =
  let units, errs, _ = Lazy.force analysis in
  let fs = Check_driver.analyze ~rules:[ "order-sensitive-fold" ] (units, errs) in
  let in_file base rule =
    count_rule rule
      (List.filter
         (fun (f : Finding.t) ->
            String.equal (Filename.basename f.Finding.file) base)
         fs)
  in
  Alcotest.(check int) "C9 still fires" 2 (in_file "c9_pos.ml" "order-sensitive-fold");
  Alcotest.(check int) "C1 gated off" 0 (in_file "c1_pos.ml" "domain-unsafe-capture");
  Alcotest.(check int) "C8 gated off" 0 (in_file "c8_pos.ml" "impure-cache-key");
  (* c1_waived's domain-safe waiver is unconsumed in this run, but its
     rule is inactive — it must not be called stale. *)
  Alcotest.(check int) "inactive waiver not stale" 0
    (in_file "c1_waived.ml" "stale-waiver");
  (* c9_waived's nondet-ok token belongs to an active rule and is
     consumed. *)
  Alcotest.(check int) "active waiver consumed" 0
    (in_file "c9_waived.ml" "stale-waiver")

(* ---- waiver staleness ---- *)

let test_stale_waiver () =
  let fs = findings_for "stale.ml" in
  Alcotest.(check int) "stale waiver reported" 1 (count_rule "stale-waiver" fs)

let test_tokens () =
  List.iter
    (fun tok ->
       Alcotest.(check bool) tok true
         (List.exists (String.equal tok) Merlin_check.Waivers.tokens))
    [ "domain-safe"; "exn-flow"; "dead-export"; "lock-order"; "blocking-ok";
      "fd-escape"; "nondet-ok" ]

(* ---- SARIF round-trip (qcheck) ---- *)

let arb_findings =
  let open QCheck.Gen in
  let ident =
    string_size ~gen:(oneof [ char_range 'a' 'z'; return '-' ]) (int_range 1 12)
  in
  let message =
    (* printable plus the JSON-hostile characters: quotes, backslashes,
       newlines, non-ASCII bytes are exercised via printable unicode *)
    string_size ~gen:(oneof [ printable; return '"'; return '\\' ])
      (int_range 0 40)
  in
  let rule =
    (* random idents plus the real rule names, so the new concurrency
       rules' identifiers demonstrably survive the round trip *)
    oneof
      [ ident;
        oneofl
          [ "lock-order"; "blocking-under-lock"; "fd-leak";
            "domain-unsafe-capture"; "stale-baseline"; "nondet-in-task";
            "impure-cache-key"; "order-sensitive-fold" ] ]
  in
  let finding =
    map
      (fun (rule, file, msg, err) ->
         Finding.make ~file ~line:1 ~col:0 ~rule
           ~severity:(if err then Finding.Error else Finding.Warning)
           msg)
      (quad rule ident message bool)
  in
  QCheck.make
    ~print:(fun fs ->
      String.concat "\n" (List.map Finding.to_text fs))
    (list_size (int_range 0 20) finding)

let entry_equal (a : Merlin_lint.Baseline.entry) (b : Merlin_lint.Baseline.entry)
  =
  String.equal a.Merlin_lint.Baseline.rule b.Merlin_lint.Baseline.rule
  && String.equal a.Merlin_lint.Baseline.file b.Merlin_lint.Baseline.file
  && String.equal a.Merlin_lint.Baseline.message b.Merlin_lint.Baseline.message
  && a.Merlin_lint.Baseline.count = b.Merlin_lint.Baseline.count

(* Both render paths must load back to the same baseline: the SARIF log
   (what CI archives) and the native format (what the repo commits). *)
let sarif_roundtrip findings =
  let entries = Merlin_lint.Baseline.of_findings findings in
  let sarif =
    Merlin_check.Sarif.render ~tool_name:Check_driver.tool_name
      ~tool_version:"test" findings
  in
  match Merlin_lint.Baseline.of_string sarif with
  | Error msg -> QCheck.Test.fail_reportf "baseline rejected SARIF: %s" msg
  | Ok parsed -> (
    List.equal entry_equal entries parsed
    &&
    match
      Merlin_lint.Baseline.of_string (Merlin_lint.Baseline.to_string entries)
    with
    | Error msg -> QCheck.Test.fail_reportf "baseline rejected native: %s" msg
    | Ok native -> List.equal entry_equal entries native)

(* ---- GitHub annotations ---- *)

let test_github_render () =
  let fs =
    [ Finding.make ~file:"lib/serve/server.ml" ~line:12 ~col:4
        ~rule:"fd-leak" ~severity:Finding.Error "plain message";
      Finding.make ~file:"lib/a.ml" ~line:3 ~col:0 ~rule:"lock-order"
        ~severity:Finding.Warning "50% held\nsecond line" ]
  in
  Alcotest.(check string) "annotation lines"
    "::error file=lib/serve/server.ml,line=12,col=4::[fd-leak] plain \
     message\n\
     ::warning file=lib/a.ml,line=3,col=0::[lock-order] 50%25 \
     held%0Asecond line\n"
    (Merlin_lint.Driver.render_github fs)

(* ---- baseline staleness ---- *)

let test_baseline_prune () =
  let f rule file msg =
    Finding.make ~file ~line:1 ~col:0 ~rule ~severity:Finding.Warning msg
  in
  let baseline =
    Merlin_lint.Baseline.of_findings
      [ f "dead-export" "a.mli" "A.x is dead";
        f "dead-export" "a.mli" "A.x is dead";
        f "fd-leak" "b.ml" "gone";
        (* determinism-tier entries prune like any other rule *)
        f "nondet-in-task" "c.ml" "was waived away";
        f "order-sensitive-fold" "d.ml" "now sorted" ]
  in
  (* one of the two A.x findings remains; the rest match nothing *)
  let current = [ f "dead-export" "a.mli" "A.x is dead" ] in
  let survivors, stale, live =
    Merlin_lint.Baseline.apply_detailed baseline current
  in
  Alcotest.(check int) "nothing new" 0 (List.length survivors);
  Alcotest.(check (list (pair string int)))
    "stale residue: half of A.x, all of the rest"
    [ ("dead-export", 1); ("fd-leak", 1); ("nondet-in-task", 1);
      ("order-sensitive-fold", 1) ]
    (List.map
       (fun (e : Merlin_lint.Baseline.entry) ->
          (e.Merlin_lint.Baseline.rule, e.Merlin_lint.Baseline.count))
       stale);
  Alcotest.(check (list (pair string int)))
    "live part keeps one A.x"
    [ ("dead-export", 1) ]
    (List.map
       (fun (e : Merlin_lint.Baseline.entry) ->
          (e.Merlin_lint.Baseline.rule, e.Merlin_lint.Baseline.count))
       live);
  (* pruning then re-applying the live part absorbs exactly the current
     findings with nothing stale left *)
  let survivors', stale', _ =
    Merlin_lint.Baseline.apply_detailed live current
  in
  Alcotest.(check int) "pruned baseline still absorbs" 0
    (List.length survivors');
  Alcotest.(check int) "and is exact" 0 (List.length stale')

let suite =
  ( "check",
    [ Alcotest.test_case "loader merges units" `Quick test_loader;
      Alcotest.test_case "C1 flags shared mutation" `Quick test_c1_positive;
      Alcotest.test_case "C1 accepts local/locked" `Quick test_c1_negative;
      Alcotest.test_case "C1 honors waiver" `Quick test_c1_waived;
      Alcotest.test_case "C2 flags unhandled raise" `Quick test_c2_positive;
      Alcotest.test_case "C2 accepts handled raise" `Quick test_c2_negative;
      Alcotest.test_case "C3 dead vs used vs waived" `Quick test_c3;
      Alcotest.test_case "C4 flags lock cycle" `Quick test_c4_positive;
      Alcotest.test_case "C4 accepts consistent nesting" `Quick
        test_c4_negative;
      Alcotest.test_case "C4 spec inversion" `Quick test_c4_spec_inversion;
      Alcotest.test_case "C4 spec parser" `Quick test_spec_parse;
      Alcotest.test_case "C4 honors waiver" `Quick test_c4_waived;
      Alcotest.test_case "C5 flags blocking under lock" `Quick
        test_c5_positive;
      Alcotest.test_case "C5 accepts classic wait" `Quick test_c5_negative;
      Alcotest.test_case "C5 honors waiver" `Quick test_c5_waived;
      Alcotest.test_case "C6 flags leaking descriptors" `Quick
        test_c6_positive;
      Alcotest.test_case "C6 accepts discharged ownership" `Quick
        test_c6_negative;
      Alcotest.test_case "C6 honors waiver" `Quick test_c6_waived;
      Alcotest.test_case "C7 flags nondet in task" `Quick test_c7_positive;
      Alcotest.test_case "C7 accepts seeded state" `Quick test_c7_negative;
      Alcotest.test_case "C7 honors waiver" `Quick test_c7_waived;
      Alcotest.test_case "C8 flags impure keys" `Quick test_c8_positive;
      Alcotest.test_case "C8 accepts request keys" `Quick test_c8_negative;
      Alcotest.test_case "C8 honors waiver" `Quick test_c8_waived;
      Alcotest.test_case "C9 flags unsorted traversal" `Quick
        test_c9_positive;
      Alcotest.test_case "C9 accepts sorted product" `Quick test_c9_negative;
      Alcotest.test_case "C9 honors waiver" `Quick test_c9_waived;
      Alcotest.test_case "purity fixpoint classifies" `Quick
        test_purity_classify;
      Alcotest.test_case "purity source table" `Quick
        test_purity_sources_table;
      Alcotest.test_case "task sinks cover identity suites" `Quick
        test_task_sinks_cover_identity_suites;
      Alcotest.test_case "--rules selectors" `Quick test_rule_selectors;
      Alcotest.test_case "--rules filtered analysis" `Quick
        test_rules_filter;
      Alcotest.test_case "stale waiver reported" `Quick test_stale_waiver;
      Alcotest.test_case "waiver tokens" `Quick test_tokens;
      Alcotest.test_case "github annotations" `Quick test_github_render;
      Alcotest.test_case "baseline prune split" `Quick test_baseline_prune;
      qtest ~count:100 "SARIF round-trips through baseline" arb_findings
        sarif_roundtrip ])
