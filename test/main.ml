(* Aggregated alcotest runner for every library in the repository. *)

let () =
  Alcotest.run "merlin-repro"
    [ Test_geometry.suite;
      Test_tech.suite;
      Test_curves.suite;
      Test_curve_kernel.suite;
      Test_order.suite;
      Test_net.suite;
      Test_rtree.suite;
      Test_lttree.suite;
      Test_ptree.suite;
      Test_ginneken.suite;
      Test_core.suite;
      Test_report.suite;
      Test_serve.suite;
      Test_flows.suite;
      Test_hier.suite;
      Test_circuit.suite;
      Test_exec.suite;
      Test_lint.suite;
      Test_check.suite ]
