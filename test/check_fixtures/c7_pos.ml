(* C7 positive: task closures reaching nondeterminism, directly and
   through a helper.  The stub Pool keeps the fixture self-contained;
   merlin_check matches sink names by path suffix. *)

module Pool = struct
  let map f xs = List.map f xs
  let submit f = f ()
end

(* Direct source-table hit inside the task closure: the draw comes
   from the global generator, so replaying the task can differ. *)
let shuffle_keys xs = Pool.map (fun x -> (x, Random.int 1000)) xs

(* Interprocedural: the closure itself is clean; the helper it calls
   draws from the global generator.  The finding's trace must name
   the chain down to the source. *)
let jitter () = Random.float 1.0

let sample () = Pool.submit (fun () -> jitter ())
