(* C8 negative: keys that are a deterministic function of the
   request.  Same stub Lru as c8_pos. *)

module Lru = struct
  type ('k, 'v) t = ('k * 'v) list ref

  let find (t : ('k, 'v) t) k = List.assoc_opt k !t

  let add (t : ('k, 'v) t) k v = t := (k, v) :: !t
end

let lookup (t : (int, string) Lru.t) name = Lru.find t (String.length name)

let insert (t : (string, int) Lru.t) name v =
  let key = name ^ "!" in
  Lru.add t key v
