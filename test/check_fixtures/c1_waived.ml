(* C1 waived: the same shared-ref mutation as c1_pos, but the line
   carries a domain-safe waiver (here: the counter is only read after
   the pool is drained, and torn increments are acceptable). *)

module Pool = struct
  let map f xs = List.map f xs
end

let count xs =
  let hits = ref 0 in
  let _ =
    Pool.map
      (fun x ->
         incr hits (* check: domain-safe *);
         x)
      xs
  in
  !hits
