(* C4 positive: AB/BA lock inversion.  [ab] nests b inside a, [ba]
   nests a inside b — the lock graph has a cycle, so some interleaving
   of the two deadlocks.  Both inner acquisitions must be flagged. *)

type locks = { a : Mutex.t; b : Mutex.t }

let make () = { a = Mutex.create (); b = Mutex.create () }

let ab t = Mutex.protect t.a (fun () -> Mutex.protect t.b (fun () -> ()))

let ba t = Mutex.protect t.b (fun () -> Mutex.protect t.a (fun () -> ()))
