(* Stale-waiver fixture: a domain-safe waiver on a line where C1 has
   nothing to suppress must itself be reported. *)

let double x = x + x (* check: domain-safe *)
