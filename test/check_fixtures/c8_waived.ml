(* C8 waived: a test probing cache-miss behavior deliberately uses a
   key that never hits; the same-line waiver records the intent. *)

module Lru = struct
  type ('k, 'v) t = ('k * 'v) list ref

  let find (t : ('k, 'v) t) k = List.assoc_opt k !t
end

let probe_miss (t : (int, string) Lru.t) =
  Lru.find t (Random.bits ()) (* check: nondet-ok *)
