(* C7 waived: the clock read only feeds telemetry (the caller strips
   it before any determinism comparison), and the same-line waiver
   records that.  The stub Clock stands in for Merlin_exec.Clock. *)

module Pool = struct
  let submit f = f ()
end

module Clock = struct
  let monotonic_s () = 0.0
end

let stamped () =
  Pool.submit (fun () -> Clock.monotonic_s ()) (* check: nondet-ok *)
