(* C7 negative: deterministic task closures.  A carried
   [Random.State] is the caller's seed — [Random.State.int] must not
   suffix-match the unseeded [Random.int] — and a pure helper keeps
   an interprocedural call clean. *)

module Pool = struct
  let map f xs = List.map f xs
end

(* Seeded per element: same inputs, same draws, any replay. *)
let keyed xs =
  Pool.map (fun x -> x + Random.State.int (Random.State.make [| x |]) 7) xs

let double x = x * 2

let doubled xs = Pool.map (fun x -> double x) xs
