(* C1 negative: closure-local mutable state and lock-protected shared
   state are both fine. *)

module Pool = struct
  let map f xs = List.map f xs
end

let sum xs =
  let m = Mutex.create () in
  let total = ref 0 in
  let _ =
    Pool.map
      (fun x ->
         (* task-local ref: created inside the closure *)
         let local = ref x in
         incr local;
         (* shared ref, but mutated under the lock *)
         Mutex.protect m (fun () -> total := !total + !local);
         x)
      xs
  in
  !total

let squares xs =
  let _ =
    Pool.map
      (fun x ->
         let buf = Buffer.create 8 in
         Buffer.add_string buf (string_of_int (x * x));
         Buffer.contents buf)
      xs
  in
  ()
