(* C5 negative: the classic condition-variable wait (only the waited
   mutex is held — the wait releases exactly it), and a blocking join
   performed after the critical section ends. *)

module Thread = struct
  type t = unit

  let join (_ : t) = ()
end

type s = { m : Mutex.t; cv : Condition.t; mutable ready : bool }

let make () =
  { m = Mutex.create (); cv = Condition.create (); ready = false }

let wait_ready t =
  Mutex.protect t.m (fun () ->
      while not t.ready do
        Condition.wait t.cv t.m
      done)

let join_outside t th =
  Mutex.protect t.m (fun () -> t.ready <- false);
  Thread.join th
