(* C4 waived: the same AB/BA cycle as c4_pos, with both closing
   acquisitions waived in place — no lock-order findings, and no stale
   waivers either (both were consumed). *)

type locks = { a : Mutex.t; b : Mutex.t }

let make () = { a = Mutex.create (); b = Mutex.create () }

let ab t =
  Mutex.protect t.a (fun () ->
      Mutex.protect t.b (fun () -> ()) (* check: lock-order *))

let ba t =
  Mutex.protect t.b (fun () ->
      Mutex.protect t.a (fun () -> ()) (* check: lock-order *))
