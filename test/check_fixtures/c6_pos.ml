(* C6 positive: a descriptor that leaks on a raise edge (the send can
   fail before the close runs, with no handler or finally to clean up)
   and one that no path ever closes.  The local Unix stub stands in for
   the real library (the analyzer matches by path suffix). *)

module Unix = struct
  type file_descr = int

  let socket (_ : int) (_ : int) (_ : int) : file_descr = 0

  let send (_ : file_descr) (_ : bytes) (_ : int) (_ : int) : int = 0

  let close (_ : file_descr) = ()
end

let leak_on_send () =
  let fd = Unix.socket 0 0 0 in
  let n = Unix.send fd (Bytes.create 1) 0 1 in
  Unix.close fd;
  n

let never_closed () =
  let _fd = Unix.socket 0 0 0 in
  ()
