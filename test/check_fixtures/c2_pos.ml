(* C2 positive: raising primitives and partial accessors inside a task
   closure with no enclosing handler. *)

module Pool = struct
  let submit f = f ()
  let map f xs = List.map f xs
end

let first_or_fail xs =
  Pool.submit (fun () ->
      match xs with
      | [] -> failwith "empty input"
      | x :: _ -> x)

let heads xss = Pool.map (fun xs -> List.hd xs) xss

let forced opts = Pool.map (fun o -> Option.get o) opts
