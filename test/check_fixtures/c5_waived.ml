(* C5 waived: a deliberate join under the state lock (a shutdown path
   that wants no new work admitted while it drains), waived in place. *)

module Thread = struct
  type t = unit

  let join (_ : t) = ()
end

type s = { m : Mutex.t }

let make () = { m = Mutex.create () }

let shutdown_join t th =
  Mutex.protect t.m (fun () -> Thread.join th (* check: blocking-ok *))
