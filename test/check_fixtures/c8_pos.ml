(* C8 positive: nondeterminism flowing into cache/request keys — a
   direct draw in the key argument, taint through chained let
   bindings, and a wall-clock read inside a request-key build.  The
   stub Lru/Wire mirror the serving layer's shapes (the analyzer
   matches by path suffix). *)

module Lru = struct
  type ('k, 'v) t = ('k * 'v) list ref

  let create () : ('k, 'v) t = ref []

  let find (t : ('k, 'v) t) k = List.assoc_opt k !t

  let add (t : ('k, 'v) t) k v = t := (k, v) :: !t
end

module Wire = struct
  let request_key a b = a ^ "\000" ^ b
end

let lookup (t : (int, string) Lru.t) = Lru.find t (Random.int 100)

let insert (t : (int, string) Lru.t) v =
  let salt = Random.bits () in
  let key = salt + 1 in
  Lru.add t key v

let req () = Wire.request_key "spec" (string_of_float (Sys.time ()))

let touch () = ignore (Lru.create () : (int, string) Lru.t)
