(* C9 waived: integer summation is commutative and associative, so
   bucket order provably cannot change the total; the analysis cannot
   see commutativity, the same-line waiver records it. *)

let total (tbl : (string, int) Hashtbl.t) =
  Hashtbl.fold (fun _ v acc -> acc + v) tbl 0 (* check: nondet-ok *)
