(* C9 positive: Hashtbl traversal products escaping unsorted — the
   returned list and the printed report both depend on bucket
   order. *)

let names (tbl : (string, int) Hashtbl.t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let dump (tbl : (string, int) Hashtbl.t) =
  Hashtbl.iter (fun k v -> print_string (k ^ "=" ^ string_of_int v)) tbl
