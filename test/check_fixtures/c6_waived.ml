(* C6 waived: a descriptor deliberately kept open for the process
   lifetime (think: a pidfile or a self-pipe installed once at
   startup), waived at the binding. *)

module Unix = struct
  type file_descr = int

  let socket (_ : int) (_ : int) (_ : int) : file_descr = 0
end

let lifetime_fd () =
  let _fd = Unix.socket 0 0 0 in (* check: fd-escape *)
  ()
