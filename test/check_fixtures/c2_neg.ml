(* C2 negative: the same raisers, but every one is covered by a handler
   inside the closure, so nothing escapes to await. *)

module Pool = struct
  let submit f = f ()
  let map f xs = List.map f xs
end

let first_or_zero xs =
  Pool.submit (fun () ->
      try List.hd xs with Failure _ -> 0)

let heads xss =
  Pool.map
    (fun xs -> match List.hd xs with n -> n | exception Failure _ -> 0)
    xss
