(* C1 positive: a task closure mutating state created outside it.
   The stub Pool keeps the fixture self-contained; merlin_check matches
   sink names by path suffix. *)

module Pool = struct
  let map f xs = List.map f xs
  let submit f = f ()
end

(* The seeded mutation from the acceptance criterion: an unguarded
   [incr] on a shared ref inside a [Pool.map] closure. *)
let count_evens xs =
  let hits = ref 0 in
  let _ =
    Pool.map
      (fun x ->
         if x mod 2 = 0 then incr hits;
         x)
      xs
  in
  !hits

type cell = { mutable value : int }

let bump_all cells =
  let total = { value = 0 } in
  let _ =
    Pool.map (fun (c : cell) -> total.value <- total.value + c.value) cells
  in
  total.value

let tally keys =
  let seen = Hashtbl.create 8 in
  let _ = Pool.submit (fun () -> Hashtbl.replace seen "k" (List.length keys)) in
  Hashtbl.length seen
