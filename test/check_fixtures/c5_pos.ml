(* C5 positive: a known-blocking call inside a held-lock region, and a
   Condition.wait whose mutex is not the only lock held.  The local
   Thread stub stands in for the real threads library (the analyzer
   matches by path suffix). *)

module Thread = struct
  type t = unit

  let join (_ : t) = ()
end

type s = { m : Mutex.t; m2 : Mutex.t; cv : Condition.t }

let make () =
  { m = Mutex.create (); m2 = Mutex.create (); cv = Condition.create () }

let bad_join t th = Mutex.protect t.m (fun () -> Thread.join th)

let bad_wait t =
  Mutex.protect t.m (fun () ->
      Mutex.protect t.m2 (fun () -> Condition.wait t.cv t.m2))
