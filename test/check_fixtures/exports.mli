(* C3 fixture interface: [used] is referenced by user.ml, [dead] by
   nobody, [waived] by nobody but carries a waiver, [_kept] is exempt
   by naming convention. *)

val used : int -> int

val dead : int -> int

val waived : int -> int (* check: dead-export *)

val _kept : int -> int
