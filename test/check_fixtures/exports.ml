let used x = x + 1

let dead x = x - 1

let waived x = x * 2

let _kept x = x
