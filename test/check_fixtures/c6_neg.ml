(* C6 negative: every shape that legitimately discharges ownership —
   a Fun.protect whose finally closes, a try whose handler closes
   before re-raising, and escape by return (the caller owns it now). *)

module Unix = struct
  type file_descr = int

  let socket (_ : int) (_ : int) (_ : int) : file_descr = 0

  let send (_ : file_descr) (_ : bytes) (_ : int) (_ : int) : int = 0

  let close (_ : file_descr) = ()
end

let protected () =
  let fd = Unix.socket 0 0 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> ignore (Unix.send fd (Bytes.create 1) 0 1))

let with_handler () =
  let fd = Unix.socket 0 0 0 in
  (try ignore (Unix.send fd (Bytes.create 1) 0 1)
   with e ->
     Unix.close fd;
     raise e);
  Unix.close fd

let make_socket () =
  let fd = Unix.socket 0 0 0 in
  fd
