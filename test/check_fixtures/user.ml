(* C3 fixture: the cross-unit reference that keeps Exports.used alive. *)

let result = Exports.used 41
