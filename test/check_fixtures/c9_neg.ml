(* C9 negative: traversal products sorted before they escape — once
   directly inside the sorting application, once through a let
   binding sorted downstream. *)

let sorted_names (tbl : (string, int) Hashtbl.t) =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let sorted_rows (tbl : (string, int) Hashtbl.t) =
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows
