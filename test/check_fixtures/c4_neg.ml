(* C4 negative: every function nests b inside a, never the reverse —
   an acyclic lock graph, clean without a spec.  The spec-inversion
   test re-analyzes this unit with the order [b; a] committed, which
   turns the same consistent nesting into an inversion finding. *)

type locks = { a : Mutex.t; b : Mutex.t }

let make () = { a = Mutex.create (); b = Mutex.create () }

let ab1 t = Mutex.protect t.a (fun () -> Mutex.protect t.b (fun () -> ()))

let ab2 t =
  Mutex.protect t.a (fun () ->
      Mutex.protect t.b (fun () -> Mutex.create ()))
