open Merlin_geometry
open Merlin_tech
open Merlin_net
open Merlin_curves
module Lttree = Merlin_lttree.Lttree

let tech = Tech.default
let buffers = Buffer_lib.default

let mk_sinks n seed =
  let net = Net_gen.random_net ~seed ~name:"lt" ~n tech in
  Array.to_list net.Net.sinks

let sink_ids sinks =
  List.sort Int.compare (List.map (fun s -> s.Sink.id) sinks)

let test_plan_covers_all () =
  List.iter
    (fun n ->
       let sinks = mk_sinks n 5 in
       let best = Lttree.best ~buffers ~max_fanout:4 ~driver:Net.default_driver sinks in
       Alcotest.(check (list int)) "all sinks exactly once" (sink_ids sinks)
         (sink_ids (Lttree.plan_sinks best.Solution.data)))
    [ 1; 2; 5; 9; 14 ]

let test_single_sink () =
  let sinks = mk_sinks 1 3 in
  let best = Lttree.best ~buffers ~max_fanout:4 ~driver:Net.default_driver sinks in
  Alcotest.(check int) "one level" 1 (Lttree.n_levels best.Solution.data);
  Alcotest.(check (float 1e-9)) "no buffer area" 0.0
    (Lttree.plan_area best.Solution.data)

let test_curve_is_frontier () =
  let sinks = mk_sinks 8 11 in
  let c = Lttree.curve ~buffers ~max_fanout:5 sinks in
  Alcotest.(check bool) "frontier" true (Curve.is_frontier c);
  Alcotest.(check bool) "nonempty" false (Curve.is_empty c)

let test_respects_max_fanout () =
  let sinks = mk_sinks 13 7 in
  let c = Lttree.curve ~buffers ~max_fanout:3 sinks in
  let rec chain_width_ok (c : Lttree.chain) =
    let width =
      List.length c.Lttree.directs
      + (match c.Lttree.chain with None -> 0 | Some _ -> 1)
    in
    width <= 3
    && (match c.Lttree.chain with None -> true | Some sub -> chain_width_ok sub)
  in
  Curve.iter
    (fun sol ->
       let p = sol.Solution.data in
       let root_width =
         List.length p.Lttree.root_directs
         + (match p.Lttree.root_chain with None -> 0 | Some _ -> 1)
       in
       Alcotest.(check bool) "root width" true (root_width <= 3);
       match p.Lttree.root_chain with
       | None -> ()
       | Some c -> Alcotest.(check bool) "chain widths" true (chain_width_ok c))
    c

let test_area_matches_buffers () =
  let sinks = mk_sinks 9 13 in
  let c = Lttree.curve ~buffers ~max_fanout:4 sinks in
  Curve.iter
    (fun sol ->
       Alcotest.(check (float 1e-6)) "solution area = plan area"
         sol.Solution.area
         (Lttree.plan_area sol.Solution.data))
    c

let test_buffering_helps_under_load () =
  (* With many heavy sinks, a chain must beat driving everything flat. *)
  let sinks =
    List.init 12 (fun id ->
        Sink.make ~id ~pt:(Point.make id id) ~cap:40.0
          ~req:(1000.0 +. (50.0 *. float_of_int id)))
  in
  let weak_driver = Delay_model.make ~d0:50.0 ~r_drive:9000.0 ~k_slew:0.1 ~s0:30.0 in
  let best = Lttree.best ~buffers ~max_fanout:13 ~driver:weak_driver sinks in
  Alcotest.(check bool) "uses at least one buffer" true
    (Lttree.plan_area best.Solution.data > 0.0);
  (* Flat star required time for comparison. *)
  let total = List.fold_left (fun a s -> a +. s.Sink.cap) 0.0 sinks in
  let flat = 1000.0 -. Delay_model.delay weak_driver ~load:total in
  Alcotest.(check bool) "beats the flat star" true (best.Solution.req > flat)

let test_rejects_bad_args () =
  Alcotest.check_raises "no sinks" (Invalid_argument "Lttree.curve: no sinks")
    (fun () -> ignore (Lttree.curve ~buffers ~max_fanout:4 []));
  Alcotest.check_raises "fanout 1" (Invalid_argument "Lttree.curve: max_fanout < 2")
    (fun () -> ignore (Lttree.curve ~buffers ~max_fanout:1 (mk_sinks 2 1)))

let qtest name ?(count = 30) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let props =
  [ qtest "plans always cover the sinks"
      QCheck.(pair (int_range 1 12) (int_range 0 500))
      (fun (n, seed) ->
         let sinks = mk_sinks n seed in
         let c = Lttree.curve ~buffers ~max_fanout:5 sinks in
         Curve.to_list c
         |> List.for_all (fun sol ->
                sink_ids (Lttree.plan_sinks sol.Solution.data) = sink_ids sinks));
    qtest "wider fanout never hurts"
      QCheck.(int_range 0 200)
      (fun seed ->
         let sinks = mk_sinks 8 seed in
         let best mf =
           (Lttree.best ~buffers ~max_fanout:mf ~driver:Net.default_driver sinks)
             .Solution.req
         in
         best 9 >= best 3 -. 1e-9) ]

let suite =
  ( "lttree",
    [ Alcotest.test_case "plan covers all" `Quick test_plan_covers_all;
      Alcotest.test_case "single sink" `Quick test_single_sink;
      Alcotest.test_case "curve frontier" `Quick test_curve_is_frontier;
      Alcotest.test_case "max fanout respected" `Quick test_respects_max_fanout;
      Alcotest.test_case "area accounting" `Quick test_area_matches_buffers;
      Alcotest.test_case "buffering helps" `Quick test_buffering_helps_under_load;
      Alcotest.test_case "bad args" `Quick test_rejects_bad_args ]
    @ props )
