open Merlin_geometry

let point_gen =
  QCheck.Gen.(map2 Point.make (int_range (-500) 500) (int_range (-500) 500))

let arb_point = QCheck.make ~print:Point.to_string point_gen

let arb_points =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map Point.to_string l))
    QCheck.Gen.(list_size (int_range 1 12) point_gen)

let qtest name ?(count = 200) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let test_manhattan_basics () =
  let a = Point.make 0 0 and b = Point.make 3 4 in
  Alcotest.(check int) "distance" 7 (Point.manhattan a b);
  Alcotest.(check int) "self" 0 (Point.manhattan a a)

let test_l_corner () =
  let a = Point.make 1 2 and b = Point.make 5 9 in
  let c = Point.l_corner a b in
  Alcotest.(check int) "corner breaks the route exactly"
    (Point.manhattan a b)
    (Point.manhattan a c + Point.manhattan c b)

let test_center_of_mass () =
  let pts = [ Point.make 0 0; Point.make 10 20; Point.make 20 10 ] in
  Alcotest.(check bool) "average" true
    (Point.equal (Point.center_of_mass pts) (Point.make 10 10));
  Alcotest.check_raises "empty" (Invalid_argument "Point.center_of_mass: empty list")
    (fun () -> ignore (Point.center_of_mass []))

let test_rect_contains () =
  let r = Rect.make (Point.make 4 9) (Point.make 1 2) in
  Alcotest.(check bool) "normalised lo" true (Point.equal r.Rect.lo (Point.make 1 2));
  Alcotest.(check bool) "inside" true (Rect.contains r (Point.make 2 5));
  Alcotest.(check bool) "outside" false (Rect.contains r (Point.make 0 5));
  Alcotest.(check int) "half perimeter" 10 (Rect.half_perimeter r)

let test_rect_inflate () =
  let r = Rect.make (Point.make 0 0) (Point.make 2 2) in
  let big = Rect.inflate r 3 in
  Alcotest.(check bool) "grown" true (Rect.contains big (Point.make (-3) (-3)));
  Alcotest.(check int) "dims" 8 (Rect.width big)

let test_hanan_small () =
  let pts = [ Point.make 0 0; Point.make 2 3; Point.make 5 1 ] in
  let grid = Hanan.full_grid pts in
  Alcotest.(check int) "3x3 grid" 9 (List.length grid);
  List.iter
    (fun p ->
       Alcotest.(check bool)
         (Printf.sprintf "terminal %s kept" (Point.to_string p))
         true
         (List.exists (Point.equal p) grid))
    pts

let test_hanan_reduced_keeps_terminals () =
  let pts =
    List.init 10 (fun i -> Point.make (i * 17 mod 97) (i * 31 mod 83))
  in
  let reduced = Hanan.reduced pts ~limit:15 in
  Alcotest.(check bool) "within limit" true (List.length reduced <= 15);
  List.iter
    (fun p ->
       Alcotest.(check bool) "terminal kept" true
         (List.exists (Point.equal p) reduced))
    pts

let props =
  [ qtest "manhattan symmetric" (QCheck.pair arb_point arb_point)
      (fun (a, b) -> Point.manhattan a b = Point.manhattan b a);
    qtest "manhattan triangle"
      (QCheck.triple arb_point arb_point arb_point)
      (fun (a, b, c) ->
         Point.manhattan a c <= Point.manhattan a b + Point.manhattan b c);
    qtest "bounding box contains all" arb_points (fun pts ->
        let box = Rect.bounding_box pts in
        List.for_all (Rect.contains box) pts);
    qtest "center of mass inside box" arb_points (fun pts ->
        let box = Rect.bounding_box pts in
        Rect.contains box (Point.center_of_mass pts));
    qtest "hanan grid size" arb_points (fun pts ->
        let xs = List.sort_uniq Int.compare (List.map (fun p -> p.Point.x) pts) in
        let ys = List.sort_uniq Int.compare (List.map (fun p -> p.Point.y) pts) in
        List.length (Hanan.full_grid pts) = List.length xs * List.length ys);
    qtest "hanan contains terminals" arb_points (fun pts ->
        let grid = Hanan.full_grid pts in
        List.for_all (fun p -> List.exists (Point.equal p) grid) pts);
    qtest "com set bounded" arb_points (fun pts ->
        List.length (Hanan.center_of_mass_set pts ~limit:20) <= 20);
    qtest "reduced bounded" arb_points (fun pts ->
        List.length (Hanan.reduced pts ~limit:7) <= 7) ]

let suite =
  ( "geometry",
    [ Alcotest.test_case "manhattan basics" `Quick test_manhattan_basics;
      Alcotest.test_case "l corner on route" `Quick test_l_corner;
      Alcotest.test_case "center of mass" `Quick test_center_of_mass;
      Alcotest.test_case "rect contains" `Quick test_rect_contains;
      Alcotest.test_case "rect inflate" `Quick test_rect_inflate;
      Alcotest.test_case "hanan 3x3" `Quick test_hanan_small;
      Alcotest.test_case "hanan reduced" `Quick test_hanan_reduced_keeps_terminals ]
    @ props )
