open Merlin_curves

(* Observational equivalence of the array-backed batch kernel (Curve,
   Curve.Builder) against the retained list implementation
   (Curve_reference).  Payloads are the push indices, so the properties
   check not just the frontier coordinates but which candidate won each
   tie — the batch kernel must keep the first-pushed among equal keys,
   exactly like folding Curve_reference.add over the same sequence. *)

let sol ~data req load area = Solution.make ~req ~load ~area data

(* Small integer coordinates so random bags are dense in ties and
   dominations. *)
let gen_coords =
  QCheck.Gen.(
    triple (int_range 0 8) (int_range 0 8) (int_range 0 8)
    |> map (fun (r, l, a) ->
        (float_of_int r, float_of_int l, float_of_int a)))

let arb_bag =
  QCheck.make
    ~print:(fun bag ->
      String.concat "; "
        (List.map (fun (r, l, a) -> Printf.sprintf "(%g,%g,%g)" r l a) bag))
    QCheck.Gen.(list_size (int_range 0 60) gen_coords)

let bag_to_sols bag =
  List.mapi (fun i (r, l, a) -> sol ~data:i r l a) bag

let obs c =
  List.map
    (fun s -> (s.Solution.req, s.Solution.load, s.Solution.area, s.Solution.data))
    (Curve.to_list c)

let obs_ref c =
  List.map
    (fun s -> (s.Solution.req, s.Solution.load, s.Solution.area, s.Solution.data))
    (Curve_reference.to_list c)

let qtest name ?(count = 500) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let equiv =
  [ qtest "of_list = reference (coords and tie winners)" arb_bag (fun bag ->
        let sols = bag_to_sols bag in
        obs (Curve.of_list sols) = obs_ref (Curve_reference.of_list sols));
    qtest "Builder.build = reference fold add" arb_bag (fun bag ->
        let sols = bag_to_sols bag in
        let bld = Curve.Builder.create () in
        List.iter (Curve.Builder.add bld) sols;
        obs (Curve.Builder.build bld)
        = obs_ref
            (List.fold_left Curve_reference.add Curve_reference.empty sols));
    qtest "incremental add = reference add" arb_bag (fun bag ->
        let sols = bag_to_sols bag in
        obs (List.fold_left Curve.add Curve.empty sols)
        = obs_ref
            (List.fold_left Curve_reference.add Curve_reference.empty sols));
    qtest "union = reference union" (QCheck.pair arb_bag arb_bag)
      (fun (ba, bb) ->
         let sa = bag_to_sols ba
         and sb = List.mapi (fun i (r, l, a) -> sol ~data:(1000 + i) r l a) bb in
         obs (Curve.union (Curve.of_list sa) (Curve.of_list sb))
         = obs_ref
             (Curve_reference.union (Curve_reference.of_list sa)
                (Curve_reference.of_list sb)));
    qtest "quantise = reference quantise" arb_bag (fun bag ->
        let sols = bag_to_sols bag in
        obs
          (Curve.quantise ~req_grid:3.0 ~load_grid:2.0 ~area_grid:5.0
             (Curve.of_list sols))
        = obs_ref
            (Curve_reference.quantise ~req_grid:3.0 ~load_grid:2.0
               ~area_grid:5.0
               (Curve_reference.of_list sols)));
    qtest "quantise_load = reference" arb_bag (fun bag ->
        let sols = bag_to_sols bag in
        obs (Curve.quantise_load ~grid:2.5 (Curve.of_list sols))
        = obs_ref
            (Curve_reference.quantise_load ~grid:2.5
               (Curve_reference.of_list sols)));
    qtest "build ~grids = quantise-then-add reference" arb_bag (fun bag ->
        (* The fused quantise-during-sweep path of the DP cores: pushing
           raw costs with grids must equal quantising each candidate and
           folding reference add in the same order. *)
        let sols = bag_to_sols bag in
        let bld = Curve.Builder.create () in
        List.iter (Curve.Builder.add bld) sols;
        let batch = Curve.Builder.build ~grids:(3.0, 2.0, 5.0) bld in
        let reference =
          List.fold_left
            (fun acc s ->
               Curve_reference.add acc
                 (Solution.quantise ~req_grid:3.0 ~load_grid:2.0 ~area_grid:5.0
                    s))
            Curve_reference.empty sols
        in
        obs batch = obs_ref reference);
    qtest "map_solutions = reference map_solutions" arb_bag (fun bag ->
        let sols = bag_to_sols bag in
        let shift s =
          { s with Solution.req = s.Solution.req +. 1.0;
                   Solution.load = s.Solution.load *. 2.0 }
        in
        let a = Curve.map_solutions shift (Curve.of_list sols)
        and b =
          Curve_reference.map_solutions shift (Curve_reference.of_list sols)
        in
        Curve.size a = Curve_reference.size b && obs a = obs_ref b);
    qtest "cap = reference cap" arb_bag (fun bag ->
        let sols = bag_to_sols bag in
        obs (Curve.cap ~max_size:5 (Curve.of_list sols))
        = obs_ref
            (Curve_reference.cap ~max_size:5 (Curve_reference.of_list sols)));
    qtest "best_min_area early-exit = reference fold"
      (QCheck.pair arb_bag (QCheck.float_range 0.0 9.0))
      (fun (bag, req) ->
         let sols = bag_to_sols bag in
         let a = Curve.best_min_area (Curve.of_list sols) ~req
         and b =
           Curve_reference.best_min_area (Curve_reference.of_list sols) ~req
         in
         match (a, b) with
         | None, None -> true
         | Some x, Some y ->
           x.Solution.area = y.Solution.area
           && x.Solution.req = y.Solution.req
           && x.Solution.data = y.Solution.data
         | _ -> false) ]

(* The arena/knob surface of the builder (DESIGN.md §9): cleared-and-
   reused builders, the neutral settings of the epsilon / max_frontier
   knobs, and the approximation guarantees of the non-neutral ones. *)
let build_bag ?grids ?epsilon ?max_frontier bag =
  let bld = Curve.Builder.create () in
  List.iter (Curve.Builder.add bld) (bag_to_sols bag);
  Curve.Builder.build ?grids ?epsilon ?max_frontier bld

let modes =
  [ qtest "cleared builder = fresh (across grids/exact cycles)"
      (QCheck.pair arb_bag arb_bag)
      (fun (b1, b2) ->
         (* One long-lived builder runs exact and quantised builds over
            two bags; after every clear it must be observationally a
            fresh builder, scratch reuse notwithstanding. *)
         let bld = Curve.Builder.create () in
         let cycle ?grids bag =
           Curve.Builder.clear bld;
           List.iter (Curve.Builder.add bld) (bag_to_sols bag);
           obs (Curve.Builder.build ?grids bld)
         in
         let g = (3.0, 2.0, 5.0) in
         cycle ~grids:g b1 = obs (build_bag ~grids:g b1)
         && cycle b2 = obs (build_bag b2)
         && cycle ~grids:g b2 = obs (build_bag ~grids:g b2)
         && cycle b1 = obs (build_bag b1));
    qtest "push_cost = push" arb_bag (fun bag ->
        let bld = Curve.Builder.create () in
        let c = Curve.Builder.new_cost () in
        List.iteri
          (fun i (r, l, a) ->
             c.Curve.Builder.creq <- r;
             c.Curve.Builder.cload <- l;
             c.Curve.Builder.carea <- a;
             Curve.Builder.push_cost bld c i)
          bag;
        obs (Curve.Builder.build bld) = obs (build_bag bag));
    qtest "epsilon 0 and unbounded max_frontier = exact"
      arb_bag
      (fun bag ->
         let g = (3.0, 2.0, 5.0) in
         obs (build_bag ~epsilon:0.0 ~max_frontier:max_int bag)
         = obs (build_bag bag)
         && obs (build_bag ~grids:g ~epsilon:0.0 ~max_frontier:max_int bag)
            = obs (build_bag ~grids:g bag));
    qtest "epsilon build: subset of exact, prunes only eps-dominated"
      (QCheck.pair arb_bag (QCheck.float_range 0.5 3.0))
      (fun (bag, eps) ->
         let exact = Curve.to_list (build_bag bag) in
         let pruned = Curve.to_list (build_bag ~epsilon:eps bag) in
         let in_exact s =
           List.exists
             (fun k ->
                k.Solution.req = s.Solution.req
                && k.Solution.load = s.Solution.load
                && k.Solution.area = s.Solution.area
                && k.Solution.data = s.Solution.data)
             exact
         in
         let eps_covered s =
           List.exists
             (fun k ->
                k.Solution.req >= s.Solution.req
                && k.Solution.load <= s.Solution.load +. eps
                && k.Solution.area <= s.Solution.area +. eps)
             pruned
         in
         List.for_all in_exact pruned && List.for_all eps_covered exact);
    qtest "max_frontier keeps the best-req prefix of the exact frontier"
      (QCheck.pair arb_bag (QCheck.int_range 2 8))
      (fun (bag, cap) ->
         let exact = obs (build_bag bag) in
         let capped = obs (build_bag ~max_frontier:cap bag) in
         capped = List.filteri (fun i _ -> i < cap) exact) ]

(* Regression for the batch cap: the four extreme points — best required
   time, least load, least area, and the last curve element — survive
   capping whenever the cap has room for them. *)
let test_cap_preserves_extremes () =
  let rand = Random.State.make [| 42 |] in
  for _trial = 1 to 50 do
    let bag =
      List.init 80 (fun i ->
          sol ~data:i
            (float_of_int (Random.State.int rand 40))
            (float_of_int (Random.State.int rand 40))
            (float_of_int (Random.State.int rand 40)))
    in
    let c = Curve.of_list bag in
    if Curve.size c > 6 then begin
      let capped = Curve.cap ~max_size:6 c in
      let full = Curve.to_list c and kept = Curve.to_list capped in
      let extreme proj =
        List.fold_left
          (fun acc s -> if proj s < proj acc then s else acc)
          (List.hd full) full
      in
      let mem s =
        List.exists
          (fun x ->
             x.Solution.req = s.Solution.req
             && x.Solution.load = s.Solution.load
             && x.Solution.area = s.Solution.area)
          kept
      in
      let last = List.nth full (List.length full - 1) in
      Alcotest.(check bool) "best req kept" true (mem (List.hd full));
      Alcotest.(check bool) "min load kept" true
        (mem (extreme (fun s -> s.Solution.load)));
      Alcotest.(check bool) "min area kept" true
        (mem (extreme (fun s -> s.Solution.area)));
      Alcotest.(check bool) "last point kept" true (mem last);
      Alcotest.(check bool) "within cap" true (Curve.size capped <= 6)
    end
  done

(* The builder reports and clears its pending candidates. *)
let test_builder_lifecycle () =
  let bld = Curve.Builder.create ~hint:2 () in
  Alcotest.(check int) "fresh builder empty" 0 (Curve.Builder.length bld);
  for i = 1 to 10 do
    Curve.Builder.push bld ~req:(float_of_int i) ~load:1.0 ~area:1.0 i
  done;
  Alcotest.(check int) "ten pushed" 10 (Curve.Builder.length bld);
  let c = Curve.Builder.build bld in
  Alcotest.(check int) "frontier of ten" 1 (Curve.size c);
  Curve.Builder.clear bld;
  Alcotest.(check int) "cleared" 0 (Curve.Builder.length bld);
  Alcotest.(check int) "empty build" 0 (Curve.size (Curve.Builder.build bld))

(* Under MERLIN_CHECK the batch results must satisfy the full array
   contracts too. *)
let test_batch_contracts () =
  Contract.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Contract.set_enabled false)
    (fun () ->
       let rand = Random.State.make [| 7 |] in
       for _trial = 1 to 20 do
         let bld = Curve.Builder.create () in
         for i = 0 to 99 do
           Curve.Builder.push bld
             ~req:(float_of_int (Random.State.int rand 30))
             ~load:(float_of_int (Random.State.int rand 30))
             ~area:(float_of_int (Random.State.int rand 30))
             i
         done;
         let c = Curve.Builder.build ~grids:(2.0, 3.0, 0.0) bld in
         Alcotest.(check bool) "contracted build is a frontier" true
           (Curve.is_frontier c)
       done)

let suite =
  ( "curve_kernel",
    [ Alcotest.test_case "cap preserves the four extreme points" `Quick
        test_cap_preserves_extremes;
      Alcotest.test_case "builder lifecycle" `Quick test_builder_lifecycle;
      Alcotest.test_case "batch results pass contracts" `Quick
        test_batch_contracts ]
    @ equiv @ modes )
