open Merlin_tech
open Merlin_net
open Merlin_rtree
module Flows = Merlin_flows.Flows

let tech = Tech.default
let buffers = Buffer_lib.default

let fast_cfg3 =
  { Merlin_core.Config.default with
    Merlin_core.Config.candidate_limit = 8;
    max_curve = 5;
    buffer_trials = 4;
    max_iters = 2 }

let mk_net n seed = Net_gen.random_net ~seed ~name:"fl" ~n tech
let run algo net = Flows.run { Flows.tech; buffers; algo } net
let flow1 = Flows.Lttree_ptree { max_fanout = 10 }
let flow2 = Flows.Ptree_vg { refine_seg = None }

let flow3 =
  Flows.Merlin { cfg = Some fast_cfg3; objective = Merlin_core.Objective.Best_req }

let check_metrics net (m : Flows.metrics) =
  Alcotest.(check bool) (m.Flows.flow ^ " tree valid") true
    (Check.is_valid net m.Flows.tree);
  Alcotest.(check (float 1e-6)) (m.Flows.flow ^ " area = tree buffer area")
    (Rtree.buffer_area m.Flows.tree) m.Flows.area;
  Alcotest.(check int) (m.Flows.flow ^ " buffer count")
    (Rtree.n_buffers m.Flows.tree) m.Flows.n_buffers;
  Alcotest.(check bool) (m.Flows.flow ^ " delay positive") true (m.Flows.delay > 0.0);
  Alcotest.(check bool) (m.Flows.flow ^ " runtime nonnegative") true
    (m.Flows.runtime >= 0.0)

let test_all_flows_valid () =
  List.iter
    (fun (n, seed) ->
       let net = mk_net n seed in
       let results = Flows.all ~tech ~buffers ~cfg3:fast_cfg3 net in
       Alcotest.(check int) "three flows" 3 (List.length results);
       List.iter (check_metrics net) results)
    [ (2, 1); (5, 2) ]

let test_flow_metrics_consistent_with_eval () =
  let net = mk_net 4 9 in
  let m = run flow2 net in
  let ev = Eval.net tech net m.Flows.tree in
  Alcotest.(check (float 1e-6)) "delay" ev.Eval.net_delay m.Flows.delay;
  Alcotest.(check (float 1e-6)) "req" ev.Eval.root_req m.Flows.root_req

let test_flow1_single_sink () =
  let net = mk_net 1 3 in
  let m = run flow1 net in
  check_metrics net m

let test_flow3_reports_loops () =
  let net = mk_net 3 5 in
  let m = run flow3 net in
  Alcotest.(check bool) "at least one loop" true (m.Flows.loops >= 1);
  Alcotest.(check bool) "bounded loops" true
    (m.Flows.loops <= fast_cfg3.Merlin_core.Config.max_iters)

let test_merlin_beats_or_matches_flow1 () =
  (* The headline claim at net level: the unified approach does not lose
     to the sequential logic-then-layout flow. *)
  List.iter
    (fun seed ->
       let net = mk_net 6 seed in
       let m1 = run flow1 net in
       let m3 = run flow3 net in
       Alcotest.(check bool)
         (Printf.sprintf "seed %d: MERLIN req >= Flow I req" seed)
         true
         (m3.Flows.root_req >= m1.Flows.root_req -. 1.0))
    [ 2; 7; 12 ]

let suite =
  ( "flows",
    [ Alcotest.test_case "all flows valid" `Slow test_all_flows_valid;
      Alcotest.test_case "metrics = evaluator" `Quick
        test_flow_metrics_consistent_with_eval;
      Alcotest.test_case "flow1 single sink" `Quick test_flow1_single_sink;
      Alcotest.test_case "flow3 loops" `Quick test_flow3_reports_loops;
      Alcotest.test_case "merlin >= flow1" `Slow test_merlin_beats_or_matches_flow1 ] )
