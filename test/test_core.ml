open Merlin_geometry
open Merlin_tech
open Merlin_net
open Merlin_rtree
open Merlin_curves
open Merlin_order
open Merlin_core

let tech = Tech.default
let buffers = Buffer_lib.default

(* Small configuration so core tests stay fast. *)
let tiny_cfg =
  { Config.default with
    Config.candidate_limit = 10;
    max_curve = 6;
    buffer_trials = 5;
    max_iters = 3 }

let mk_net n seed = Net_gen.random_net ~seed ~name:"core" ~n tech

(* ---------- Grouping ---------- *)

let test_stretch () =
  Alcotest.(check (list int)) "Fig 10" [ 0; 1; 1; 2 ]
    (List.map Grouping.stretch Grouping.all)

let test_covered_fig13 () =
  (* len = 4, r = 9 (0-based positions). *)
  let cov e = Grouping.covered ~r:9 ~len:4 e in
  Alcotest.(check (list int)) "chi0" [ 6; 7; 8; 9 ] (cov Grouping.Chi0);
  Alcotest.(check (list int)) "chi1 skips r-1" [ 5; 6; 7; 9 ] (cov Grouping.Chi1);
  Alcotest.(check (list int)) "chi2 skips second slot" [ 5; 7; 8; 9 ] (cov Grouping.Chi2);
  Alcotest.(check (list int)) "chi3 skips both" [ 4; 6; 7; 9 ] (cov Grouping.Chi3)

let test_covered_len1 () =
  Alcotest.(check (list int)) "chi0" [ 9 ] (Grouping.covered ~r:9 ~len:1 Grouping.Chi0);
  Alcotest.(check (list int)) "chi1" [ 9 ] (Grouping.covered ~r:9 ~len:1 Grouping.Chi1);
  Alcotest.(check (list int)) "chi2" [ 8 ] (Grouping.covered ~r:9 ~len:1 Grouping.Chi2);
  Alcotest.(check bool) "chi3 invalid at len 1" false
    (Grouping.valid ~len:1 Grouping.Chi3)

let test_slots_partition () =
  (* Window slots are exactly covered + skipped. *)
  List.iter
    (fun e ->
       List.iter
         (fun len ->
            if Grouping.valid ~len e then begin
              let r = 20 in
              let start = Grouping.window_start ~r ~len e in
              let slots = List.init (len + Grouping.stretch e) (fun i -> start + i) in
              let covered = Grouping.covered ~r ~len e in
              let skipped =
                Option.to_list (Grouping.skipped_left ~r ~len e)
                @ Option.to_list (Grouping.skipped_right ~r ~len e)
              in
              Alcotest.(check (list int))
                (Format.asprintf "%a len=%d" Grouping.pp e len)
                slots
                (List.sort Int.compare (covered @ skipped));
              Alcotest.(check int) "covered count" len (List.length covered)
            end)
         [ 1; 2; 3; 5 ])
    Grouping.all

(* ---------- Catree ---------- *)

let test_catree_basics () =
  let t =
    Catree.level
      [ Catree.Direct 0;
        Catree.Chain (Catree.level [ Catree.Direct 1; Catree.Direct 2 ]);
        Catree.Direct 3 ]
  in
  Alcotest.(check (list int)) "dfs order" [ 0; 1; 2; 3 ] (Catree.sinks_in_order t);
  Alcotest.(check int) "depth" 2 (Catree.depth t);
  Alcotest.(check int) "branching" 3 (Catree.max_branching t);
  Alcotest.(check bool) "well formed alpha 3" true (Catree.well_formed ~alpha:3 t);
  Alcotest.(check bool) "not well formed alpha 2" false (Catree.well_formed ~alpha:2 t);
  Alcotest.check_raises "two chains"
    (Invalid_argument "Catree.level: more than one internal child") (fun () ->
        ignore
          (Catree.level
             [ Catree.Chain (Catree.leaf 0); Catree.Chain (Catree.leaf 1) ]))

(* ---------- Objective ---------- *)

let test_objective () =
  let sol r a = Solution.make ~req:r ~load:1.0 ~area:a () in
  let c = Curve.of_list [ sol 10.0 8.0; sol 6.0 3.0; sol 2.0 1.0 ] in
  let req o = (Option.get (Objective.choose o c)).Solution.req in
  Alcotest.(check (float 0.0)) "best req" 10.0 (req Objective.Best_req);
  Alcotest.(check (float 0.0)) "variant I" 6.0
    (req (Objective.Max_req_under_area 5.0));
  Alcotest.(check (float 0.0)) "variant II picks min area" 1.0
    (Option.get (Objective.choose (Objective.Min_area_over_req 1.0) c)).Solution.area;
  Alcotest.(check bool) "infeasible" true
    (Option.is_none (Objective.choose (Objective.Max_req_under_area 0.5) c))

(* ---------- Star_ptree ---------- *)

let star_run net terminals =
  let candidates = Bubble_construct.candidate_set tiny_cfg net in
  let active = Array.init (Array.length candidates) (fun i -> i) in
  Star_ptree.run ~tech ~buffers ~trials:5 ~max_curve:8 ~grids:(0.0, 0.0, 0.0)
    ~bbox_slack:0.4 ~candidates ~active ~terminals ()

let test_star_single_sink () =
  let net = mk_net 3 1 in
  let out = star_run net [| Star_ptree.Sink_term (Net.sink net 0) |] in
  Array.iter
    (fun curve ->
       Curve.iter
         (fun sol ->
            let tree = sol.Solution.data.Build.tree in
            Alcotest.(check (list int)) "covers sink 0" [ 0 ]
              (Rtree.sink_ids_in_order tree))
         curve)
    out;
  Alcotest.(check bool) "some curve nonempty" true
    (Array.exists (fun c -> not (Curve.is_empty c)) out)

let test_star_order_preserved () =
  let net = mk_net 4 2 in
  let terminals =
    Array.map (fun s -> Star_ptree.Sink_term s) net.Net.sinks
  in
  let out = star_run net terminals in
  Array.iter
    (fun curve ->
       Curve.iter
         (fun sol ->
            Alcotest.(check (list int)) "terminal order preserved" [ 0; 1; 2; 3 ]
              (Rtree.sink_ids_in_order sol.Solution.data.Build.tree))
         curve)
    out

let test_star_internal_consistency () =
  (* Engine coordinates without quantisation match the evaluator. *)
  let net = mk_net 3 5 in
  let terminals = Array.map (fun s -> Star_ptree.Sink_term s) net.Net.sinks in
  let out = star_run net terminals in
  Array.iter
    (fun curve ->
       Curve.iter
         (fun sol ->
            let ev = Eval.subtree tech sol.Solution.data.Build.tree in
            Alcotest.(check (float 1e-6)) "req" ev.Eval.req sol.Solution.req;
            Alcotest.(check (float 1e-6)) "load" ev.Eval.load sol.Solution.load;
            Alcotest.(check (float 1e-6)) "area" ev.Eval.buf_area sol.Solution.area)
         curve)
    out

(* ---------- Bubble_construct ---------- *)

let construct ?(cfg = tiny_cfg) net order =
  Bubble_construct.construct ~cfg ~tech ~buffers net order

let test_bubble_valid_and_in_neighborhood () =
  (* Lemma 5: every realized order is in N(Pi); plus tree validity,
     hierarchy well-formedness and the engine/evaluator agreement. *)
  List.iter
    (fun (n, seed) ->
       let net = mk_net n seed in
       let order = Tsp.order net in
       let r = construct net order in
       Alcotest.(check bool) "final curve nonempty" false
         (Curve.is_empty r.Bubble_construct.curve);
       Curve.iter
         (fun sol ->
            let tree = sol.Solution.data.Build.tree in
            Alcotest.(check bool) "tree covers the net" true (Check.is_valid net tree);
            let realized = Bubble_construct.realized_order sol in
            Alcotest.(check bool) "Lemma 5: realized in N(order)" true
              (Order.in_neighborhood order realized);
            let h = Bubble_construct.hierarchy sol in
            Alcotest.(check bool) "C-alpha well formed" true
              (Catree.well_formed ~alpha:tiny_cfg.Config.alpha h);
            Alcotest.(check (list int)) "hierarchy order = tree DFS order"
              (Catree.sinks_in_order h)
              (Rtree.sink_ids_in_order tree))
         r.Bubble_construct.curve)
    [ (2, 3); (3, 4); (4, 5); (5, 6) ]

let test_bubble_pessimistic_req () =
  (* Quantisation rounds required time down and load/area up, so the
     engine's claim never exceeds what the evaluator certifies. *)
  let net = mk_net 4 8 in
  let r = construct net (Tsp.order net) in
  Curve.iter
    (fun sol ->
       let ev = Eval.net tech net sol.Solution.data.Build.tree in
       Alcotest.(check bool) "engine req <= eval req" true
         (sol.Solution.req <= ev.Eval.root_req +. 1e-6);
       Alcotest.(check bool) "engine area >= eval area" true
         (sol.Solution.area >= ev.Eval.area -. 1e-6))
    r.Bubble_construct.curve

let test_bubble_covers_swap () =
  (* Lemma 6 witness: two sinks whose optimal connection order is the
     reverse of the given order; bubbling must find the swap. *)
  let s0 = Sink.make ~id:0 ~pt:(Point.make 2000 0) ~cap:5.0 ~req:3000.0 in
  let s1 = Sink.make ~id:1 ~pt:(Point.make 1000 0) ~cap:5.0 ~req:1200.0 in
  let net = Net.make ~name:"swap" ~source:Point.origin ~driver:Net.default_driver [ s0; s1 ] in
  (* Give the engine the "wrong" order (s0 before s1). *)
  let r = construct net (Order.of_list [ 0; 1 ]) in
  let orders =
    Curve.to_list r.Bubble_construct.curve
    |> List.map (fun sol -> Order.to_list (Bubble_construct.realized_order sol))
    |> List.sort_uniq (List.compare Int.compare)
  in
  Alcotest.(check bool) "the swapped order was explored" true
    (List.length orders >= 1);
  (* The best solution should chain s1 (closer, less critical window)
     without being forced through s0 first; at minimum both orders are
     reachable across the curve or the best solution is valid. *)
  let best = Option.get (Curve.best_req r.Bubble_construct.curve) in
  Alcotest.(check bool) "best is valid" true
    (Check.is_valid net best.Solution.data.Build.tree)

let test_bubble_rejects_bad_order () =
  let net = mk_net 3 1 in
  Alcotest.check_raises "bad order"
    (Invalid_argument "Bubble_construct.construct: bad order") (fun () ->
        ignore (construct net (Order.of_list [ 0; 1 ])))

let test_single_sink_net () =
  let net = mk_net 1 2 in
  let r = construct net (Order.identity 1) in
  let best = Option.get (Curve.best_req r.Bubble_construct.curve) in
  Alcotest.(check bool) "valid" true (Check.is_valid net best.Solution.data.Build.tree)

(* ---------- Merlin ---------- *)

let test_bubbling_off_keeps_order () =
  (* With chi_1..chi_3 disabled the engine cannot perturb the order, so
     every solution realises exactly the initial order. *)
  let cfg = { tiny_cfg with Config.bubbling = false } in
  List.iter
    (fun seed ->
       let net = mk_net 4 seed in
       let order = Tsp.order net in
       let r = Bubble_construct.construct ~cfg ~tech ~buffers net order in
       Curve.iter
         (fun sol ->
            Alcotest.(check (list int)) "order fixed" (Order.to_list order)
              (Order.to_list (Bubble_construct.realized_order sol)))
         r.Bubble_construct.curve)
    [ 3; 9; 21 ]

let test_merlin_converges () =
  List.iter
    (fun (n, seed) ->
       let net = mk_net n seed in
       match Merlin.run ~cfg:tiny_cfg ~tech ~buffers net with
       | None -> Alcotest.fail "unexpected infeasible"
       | Some out ->
         Alcotest.(check bool) "loops within bound" true
           (out.Merlin.loops <= tiny_cfg.Config.max_iters);
         Alcotest.(check bool) "valid tree" true (Check.is_valid net out.Merlin.tree);
         Alcotest.(check int) "history length = loops" out.Merlin.loops
           (List.length out.Merlin.req_history);
         (* Theorem 7 analogue under pruning: the returned solution is the
            best ever seen. *)
         let best_seen =
           List.fold_left max neg_infinity out.Merlin.req_history
         in
         Alcotest.(check (float 1e-9)) "returns the best iterate" best_seen
           out.Merlin.best.Solution.req)
    [ (3, 31); (4, 32); (5, 33) ]

let test_merlin_respects_area_budget () =
  let net = mk_net 4 41 in
  match
    Merlin.run ~cfg:tiny_cfg ~objective:(Objective.Max_req_under_area 20.0)
      ~tech ~buffers net
  with
  | None -> () (* a tight budget may be infeasible; that is a valid answer *)
  | Some out ->
    Alcotest.(check bool) "area within budget" true
      (out.Merlin.best.Solution.area <= 20.0 +. 1e-9)

let test_merlin_variant2 () =
  let net = mk_net 4 42 in
  (* First find the best achievable req, then ask for a bit less with
     minimum area. *)
  let unconstrained = Option.get (Merlin.run ~cfg:tiny_cfg ~tech ~buffers net) in
  let target = unconstrained.Merlin.best.Solution.req -. 100.0 in
  match
    Merlin.run ~cfg:tiny_cfg ~objective:(Objective.Min_area_over_req target)
      ~tech ~buffers net
  with
  | None -> Alcotest.fail "relaxed target should be feasible"
  | Some out ->
    Alcotest.(check bool) "meets the floor" true
      (out.Merlin.best.Solution.req >= target -. 1e-9);
    Alcotest.(check bool) "area no larger than unconstrained best" true
      (out.Merlin.best.Solution.area
       <= unconstrained.Merlin.best.Solution.area +. 1e-9)

let test_config_presets () =
  Config.validate Config.default;
  Config.validate Config.paper_table1;
  Config.validate Config.paper_table2;
  List.iter (fun n -> Config.validate (Config.scaled n)) [ 1; 5; 15; 30; 80 ];
  Alcotest.(check int) "table 1 alpha" 15 Config.paper_table1.Config.alpha;
  Alcotest.(check int) "table 2 alpha" 10 Config.paper_table2.Config.alpha;
  Alcotest.(check int) "table 2 loop bound" 3 Config.paper_table2.Config.max_iters;
  Alcotest.check_raises "bad alpha" (Invalid_argument "Config.validate: alpha < 2")
    (fun () -> Config.validate { Config.default with Config.alpha = 1 })

let suite =
  ( "core",
    [ Alcotest.test_case "grouping stretch" `Quick test_stretch;
      Alcotest.test_case "grouping covered (Fig 13)" `Quick test_covered_fig13;
      Alcotest.test_case "grouping len 1" `Quick test_covered_len1;
      Alcotest.test_case "grouping slots partition" `Quick test_slots_partition;
      Alcotest.test_case "catree basics" `Quick test_catree_basics;
      Alcotest.test_case "objective variants" `Quick test_objective;
      Alcotest.test_case "star single sink" `Quick test_star_single_sink;
      Alcotest.test_case "star order preserved" `Quick test_star_order_preserved;
      Alcotest.test_case "star engine = evaluator" `Quick test_star_internal_consistency;
      Alcotest.test_case "bubble: validity, Lemma 5, C-alpha" `Slow
        test_bubble_valid_and_in_neighborhood;
      Alcotest.test_case "bubble: pessimistic quantisation" `Quick
        test_bubble_pessimistic_req;
      Alcotest.test_case "bubble: swap coverage" `Quick test_bubble_covers_swap;
      Alcotest.test_case "bubble: bad order" `Quick test_bubble_rejects_bad_order;
      Alcotest.test_case "bubble: single sink" `Quick test_single_sink_net;
      Alcotest.test_case "bubbling off keeps order" `Quick test_bubbling_off_keeps_order;
      Alcotest.test_case "merlin converges (Thm 7)" `Slow test_merlin_converges;
      Alcotest.test_case "merlin area budget (variant I)" `Quick
        test_merlin_respects_area_budget;
      Alcotest.test_case "merlin min area (variant II)" `Quick test_merlin_variant2;
      Alcotest.test_case "config presets" `Quick test_config_presets ] )
