open Merlin_order
open Merlin_tech
open Merlin_net

let arb_perm =
  QCheck.make
    ~print:(fun o -> Format.asprintf "%a" Order.pp o)
    QCheck.Gen.(
      int_range 1 8 >|= fun n ->
      let st = Random.State.make [| n; 99 |] in
      let a = Array.init n (fun i -> i) in
      for i = n - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- t
      done;
      a)

let qtest name ?(count = 100) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let test_identity () =
  Alcotest.(check bool) "is permutation" true (Order.is_permutation (Order.identity 5));
  Alcotest.(check (list int)) "values" [ 0; 1; 2; 3; 4 ]
    (Order.to_list (Order.identity 5))

let test_positions () =
  let o = Order.of_list [ 2; 0; 1 ] in
  let pos = Order.positions o in
  Alcotest.(check int) "sink 2 at position 0" 0 pos.(2);
  Alcotest.(check int) "sink 0 at position 1" 1 pos.(0);
  Alcotest.(check int) "sink 1 at position 2" 2 pos.(1)

let test_swap () =
  let o = Order.of_list [ 0; 1; 2 ] in
  Alcotest.(check (list int)) "swap 0" [ 1; 0; 2 ] (Order.to_list (Order.swap_at o 0));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Order.swap_at: index out of range") (fun () ->
        ignore (Order.swap_at o 2))

let test_neighborhood_def4 () =
  (* Example 2 of the paper. *)
  let pi = Order.identity 9 in
  let pi' = Order.of_list [ 0; 2; 1; 3; 4; 5; 7; 6; 8 ] in
  Alcotest.(check bool) "paper example 2" true (Order.in_neighborhood pi pi');
  let far = Order.of_list [ 2; 0; 1; 3; 4; 5; 6; 7; 8 ] in
  Alcotest.(check bool) "rotation is too far" false (Order.in_neighborhood pi far)

let test_neighborhood_enumeration () =
  (* |N| = F(n+1): 1, 2, 3, 5, 8, 13 for n = 1..6.  Theorem 1 prints the
     Binet form with an n+2 index; enumeration pins the indexing down. *)
  List.iter
    (fun (n, expect) ->
       let nb = Order.neighborhood (Order.identity n) in
       Alcotest.(check int) (Printf.sprintf "count n=%d" n) expect (List.length nb);
       Alcotest.(check int) "closed form" expect (Order.neighborhood_size n))
    [ (1, 1); (2, 2); (3, 3); (4, 5); (5, 8); (6, 13) ]

let test_theorem1_closed_form_is_integer () =
  for n = 1 to 20 do
    let v = Order.theorem1_closed_form n in
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "integer for n=%d" n)
      (Float.round v) v;
    (* The paper's Binet form is the next Fibonacci number up from the
       enumerated count: Binet(n) = F(n+2) = |N| for n+1 sinks. *)
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "one index up for n=%d" n)
      (float_of_int (Order.neighborhood_size (n + 1)))
      v
  done

let test_tsp_improves () =
  let tech = Tech.default in
  let net = Net_gen.random_net ~seed:5 ~name:"tsp" ~n:10 tech in
  let nn = Tsp.order net in
  let id = Order.identity 10 in
  Alcotest.(check bool) "tour no longer than identity order" true
    (Tsp.tour_length net nn <= Tsp.tour_length net id)

let props =
  [ qtest "neighborhood members satisfy Def 4" arb_perm (fun o ->
        List.for_all (Order.in_neighborhood o) (Order.neighborhood o));
    qtest "neighborhood members distinct" arb_perm (fun o ->
        let nb = List.map Order.to_list (Order.neighborhood o) in
        List.length nb
        = List.length (List.sort_uniq (List.compare Int.compare) nb));
    qtest "neighborhood closed-form count" arb_perm (fun o ->
        List.length (Order.neighborhood o)
        = Order.neighborhood_size (Order.length o));
    qtest "in_neighborhood symmetric (Definition 1)"
      (QCheck.pair arb_perm arb_perm)
      (fun (a, b) ->
         Order.length a <> Order.length b
         || Order.in_neighborhood a b = Order.in_neighborhood b a);
    qtest "swap stays in neighborhood" arb_perm (fun o ->
        Order.length o < 2
        || List.for_all
             (fun i -> Order.in_neighborhood o (Order.swap_at o i))
             (List.init (Order.length o - 1) (fun i -> i)));
    qtest "neighborhood members are permutations" arb_perm (fun o ->
        List.for_all Order.is_permutation (Order.neighborhood o)) ]

let heuristics_tests =
  let tech = Tech.default in
  let net = Net_gen.random_net ~seed:11 ~name:"h" ~n:9 tech in
  [ Alcotest.test_case "required time order sorted" `Quick (fun () ->
        let o = Heuristics.by_required_time net in
        let reqs =
          List.map (fun i -> (Net.sink net i).Sink.req) (Order.to_list o)
        in
        Alcotest.(check bool) "sorted" true
          (List.sort Float.compare reqs = reqs));
    Alcotest.test_case "random order is permutation" `Quick (fun () ->
        Alcotest.(check bool) "perm" true
          (Order.is_permutation (Heuristics.random ~seed:3 net)));
    Alcotest.test_case "random order deterministic" `Quick (fun () ->
        Alcotest.(check bool) "equal" true
          (Order.equal (Heuristics.random ~seed:3 net)
             (Heuristics.random ~seed:3 net)));
    Alcotest.test_case "x sweep is permutation" `Quick (fun () ->
        Alcotest.(check bool) "perm" true
          (Order.is_permutation (Heuristics.by_x_sweep net))) ]

let suite =
  ( "order",
    [ Alcotest.test_case "identity" `Quick test_identity;
      Alcotest.test_case "positions" `Quick test_positions;
      Alcotest.test_case "swap" `Quick test_swap;
      Alcotest.test_case "neighborhood def4" `Quick test_neighborhood_def4;
      Alcotest.test_case "neighborhood counts (Thm 1)" `Quick
        test_neighborhood_enumeration;
      Alcotest.test_case "closed form integral" `Quick
        test_theorem1_closed_form_is_integer;
      Alcotest.test_case "tsp improves" `Quick test_tsp_improves ]
    @ props @ heuristics_tests )
