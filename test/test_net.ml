open Merlin_geometry
open Merlin_tech
open Merlin_net

let tech = Tech.default

let test_net_validation () =
  let s0 = Sink.make ~id:0 ~pt:(Point.make 1 1) ~cap:5.0 ~req:100.0 in
  let s1 = Sink.make ~id:1 ~pt:(Point.make 2 2) ~cap:5.0 ~req:100.0 in
  let net = Net.make ~name:"t" ~source:Point.origin ~driver:Net.default_driver [ s0; s1 ] in
  Alcotest.(check int) "two sinks" 2 (Net.n_sinks net);
  Alcotest.(check (float 1e-9)) "total cap" 10.0 (Net.total_sink_cap net);
  Alcotest.check_raises "bad ids"
    (Invalid_argument "Net.make: sink at index 0 has id 1") (fun () ->
        ignore (Net.make ~name:"t" ~source:Point.origin ~driver:Net.default_driver [ s1 ]));
  Alcotest.check_raises "empty" (Invalid_argument "Net.make: no sinks")
    (fun () ->
       ignore (Net.make ~name:"t" ~source:Point.origin ~driver:Net.default_driver []))

let test_bounding_box_covers_source () =
  let net = Net_gen.random_net ~seed:1 ~name:"g" ~n:5 tech in
  let box = Net.bounding_box net in
  Alcotest.(check bool) "source inside" true (Rect.contains box net.Net.source);
  Array.iter
    (fun s ->
       Alcotest.(check bool) "sink inside" true (Rect.contains box s.Sink.pt))
    net.Net.sinks

let test_gen_deterministic () =
  let a = Net_gen.random_net ~seed:9 ~name:"d" ~n:7 tech in
  let b = Net_gen.random_net ~seed:9 ~name:"d" ~n:7 tech in
  Alcotest.(check string) "identical" (Net_io.to_string a) (Net_io.to_string b);
  let c = Net_gen.random_net ~seed:10 ~name:"d" ~n:7 tech in
  Alcotest.(check bool) "different seed differs" true
    (Net_io.to_string a <> Net_io.to_string c)

let test_box_side_recipe () =
  (* Box sized so the corner-to-corner wire Elmore delay is about one gate
     delay (paper Section IV). *)
  let target = 150.0 in
  let side = Net_gen.box_side tech ~target_delay:target in
  let wire = Tech.wire_elmore tech ~len:side ~load:0.0 in
  Alcotest.(check bool) "within 10%" true (abs_float (wire -. target) /. target < 0.1)

let test_table1_specs () =
  Alcotest.(check int) "18 nets" 18 (List.length Net_gen.table1_specs);
  let nets = Net_gen.table1_nets tech in
  Alcotest.(check int) "all instantiated" 18 (List.length nets);
  List.iter2
    (fun (_, _, n) (_, _, net) ->
       Alcotest.(check int) "sink count" n (Net.n_sinks net))
    Net_gen.table1_specs nets;
  let _, _, net9 = List.nth nets 8 in
  Alcotest.(check int) "net9 is the 73-sink net" 73 (Net.n_sinks net9)

let test_io_roundtrip () =
  let net = Net_gen.random_net ~seed:21 ~name:"rt" ~n:6 tech in
  let net' = Net_io.of_string (Net_io.to_string net) in
  Alcotest.(check string) "roundtrip" (Net_io.to_string net) (Net_io.to_string net')

let test_io_many_roundtrip () =
  let nets =
    List.init 4 (fun i ->
        Net_gen.random_net ~seed:(30 + i) ~name:(Printf.sprintf "m%d" i)
          ~n:(3 + i) tech)
  in
  let back = Net_io.of_string_many (Net_io.to_string_many nets) in
  Alcotest.(check int) "count survives" (List.length nets) (List.length back);
  List.iter2
    (fun a b ->
       Alcotest.(check string) "net bytes survive" (Net_io.to_string a)
         (Net_io.to_string b))
    nets back;
  Alcotest.(check int) "empty netlist" 0
    (List.length (Net_io.of_string_many (Net_io.to_string_many [])));
  let path = Filename.temp_file "merlin-nets" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Net_io.save_many path nets;
       List.iter2
         (fun a b ->
            Alcotest.(check string) "file bytes survive" (Net_io.to_string a)
              (Net_io.to_string b))
         nets (Net_io.load_many path))

let test_io_errors () =
  Alcotest.check_raises "garbage" (Failure "Net_io.of_string: line 1: unrecognised line \"what\"")
    (fun () -> ignore (Net_io.of_string "what"));
  Alcotest.check_raises "missing net" (Failure "Net_io.of_string: missing 'net' line")
    (fun () -> ignore (Net_io.of_string "source 0 0\ndriver 1 1 1 1\nsink 0 0 0 1 1"))

let qtest name ?(count = 50) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let props =
  [ qtest "generated nets parse back"
      QCheck.(pair (int_range 1 20) (int_range 0 1000))
      (fun (n, seed) ->
         let net = Net_gen.random_net ~seed ~name:"p" ~n tech in
         let back = Net_io.of_string (Net_io.to_string net) in
         Net_io.to_string back = Net_io.to_string net);
    qtest "sink ids consecutive" QCheck.(int_range 1 30) (fun n ->
        let net = Net_gen.random_net ~seed:3 ~name:"p" ~n tech in
        Array.for_all (fun s -> s.Sink.id >= 0 && s.Sink.id < n) net.Net.sinks);
    (* Seeds are folded into [0, 2^30) before reaching Random.State, so
       net streams are identical across word sizes; small seeds map to
       themselves, keeping every historical stream (and the golden
       route) byte-identical. *)
    qtest "normalize_seed is the identity on small seeds"
      QCheck.(int_bound 0x3FFF_FFFF)
      (fun s -> Net_gen.normalize_seed s = s);
    qtest "normalize_seed lands in [0, 2^30)" QCheck.int (fun s ->
        let v = Net_gen.normalize_seed s in
        0 <= v && v < 0x4000_0000);
    qtest "large nets are seed-deterministic" ~count:20
      QCheck.(pair (int_range 50 200) (int_range 0 1000))
      (fun (n, seed) ->
         List.for_all
           (fun shape ->
              let gen () =
                Net_gen.large_net ~seed ~name:"L" ~shape ~n tech
              in
              Net.n_sinks (gen ()) = n
              && String.equal
                   (Net_io.to_string (gen ()))
                   (Net_io.to_string (gen ())))
           [ Net_gen.Clock_grid; Net_gen.High_fanout; Net_gen.Clustered ]);
    qtest "large nets roundtrip through Net_io" ~count:10
      QCheck.(int_range 100 400)
      (fun n ->
         let net =
           Net_gen.large_net ~seed:7 ~name:"L" ~shape:Net_gen.Clustered ~n
             tech
         in
         let back = Net_io.of_string (Net_io.to_string net) in
         String.equal (Net_io.to_string back) (Net_io.to_string net)) ]

let test_shape_names () =
  List.iter
    (fun shape ->
       match Net_gen.shape_of_string (Net_gen.shape_name shape) with
       | Some s ->
         Alcotest.(check string) "roundtrip" (Net_gen.shape_name shape)
           (Net_gen.shape_name s)
       | None -> Alcotest.fail "shape name did not parse back")
    [ Net_gen.Clock_grid; Net_gen.High_fanout; Net_gen.Clustered ];
  Alcotest.(check bool) "unknown shape rejected" true
    (match Net_gen.shape_of_string "torus" with None -> true | Some _ -> false)

let suite =
  ( "net",
    [ Alcotest.test_case "validation" `Quick test_net_validation;
      Alcotest.test_case "bounding box" `Quick test_bounding_box_covers_source;
      Alcotest.test_case "gen deterministic" `Quick test_gen_deterministic;
      Alcotest.test_case "box side recipe" `Quick test_box_side_recipe;
      Alcotest.test_case "table1 specs" `Quick test_table1_specs;
      Alcotest.test_case "io roundtrip" `Quick test_io_roundtrip;
      Alcotest.test_case "io many roundtrip" `Quick test_io_many_roundtrip;
      Alcotest.test_case "io errors" `Quick test_io_errors;
      Alcotest.test_case "shape names" `Quick test_shape_names ]
    @ props )
