open Merlin_tech
open Merlin_net
open Merlin_rtree
module Flows = Merlin_flows.Flows
module Cluster = Merlin_hier.Cluster
module Hier = Merlin_hier.Hier
module Pool = Merlin_exec.Pool
module Json = Merlin_report.Json

let tech = Tech.default
let buffers = Buffer_lib.default

let qtest name ?(count = 50) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

(* ---------------- Cluster.partition invariants ---------------- *)

let mk_net n seed =
  Net_gen.large_net ~seed ~name:"hier" ~shape:Net_gen.Clustered ~n tech

let gen_cfg =
  QCheck.Gen.(
    map
      (fun (target_size, n_clusters, strategy, max_iters) ->
         { Cluster.target_size; n_clusters; strategy; max_iters })
      (quad (int_range 1 32)
         (opt (int_range 1 12))
         (oneofl [ Cluster.Kmeans; Cluster.Sweep ])
         (int_range 0 24)))

let arb_partition_input =
  QCheck.make
    ~print:(fun (n, seed, cfg) ->
      Printf.sprintf "n=%d seed=%d target=%d k=%s strat=%s iters=%d" n seed
        cfg.Cluster.target_size
        (match cfg.Cluster.n_clusters with
         | None -> "auto"
         | Some k -> string_of_int k)
        (match cfg.Cluster.strategy with
         | Cluster.Kmeans -> "kmeans"
         | Cluster.Sweep -> "sweep")
        cfg.Cluster.max_iters)
    QCheck.Gen.(triple (int_range 1 200) (int_range 0 500) gen_cfg)

let partition_invariants (n, seed, cfg) =
  let net = mk_net n seed in
  let groups = Cluster.partition cfg net in
  let seen = Array.make n 0 in
  Array.iter (Array.iter (fun id -> seen.(id) <- seen.(id) + 1)) groups;
  let covers = Array.for_all (fun c -> c = 1) seen in
  let nonempty = Array.for_all (fun g -> Array.length g > 0) groups in
  let sorted =
    Array.for_all
      (fun g ->
         let ok = ref true in
         Array.iteri (fun i id -> if i > 0 && g.(i - 1) >= id then ok := false) g;
         !ok)
      groups
  in
  let forced_exact =
    match cfg.Cluster.n_clusters with
    | Some k -> Array.length groups = max 1 (min k n)
    | None -> true
  in
  (* Derived counts split oversized k-means groups down to target_size. *)
  let capped =
    match (cfg.Cluster.n_clusters, cfg.Cluster.strategy) with
    | None, Cluster.Kmeans ->
      Array.for_all (fun g -> Array.length g <= cfg.Cluster.target_size) groups
    | (Some _ | None), _ -> true
  in
  let groups' = Cluster.partition cfg net in
  let deterministic =
    Array.length groups = Array.length groups'
    && Array.for_all2
         (fun a b ->
            Array.length a = Array.length b && Array.for_all2 Int.equal a b)
         groups groups'
  in
  covers && nonempty && sorted && forced_exact && capped && deterministic

let test_partition_single () =
  let net = mk_net 17 3 in
  let cfg = { Cluster.default with n_clusters = Some 1 } in
  let groups = Cluster.partition cfg net in
  Alcotest.(check int) "one group" 1 (Array.length groups);
  Alcotest.(check int) "whole net" 17 (Array.length groups.(0))

let test_partition_errors () =
  let net = mk_net 5 1 in
  Alcotest.check_raises "target_size"
    (Invalid_argument "Cluster.partition: target_size < 1") (fun () ->
      ignore (Cluster.partition { Cluster.default with target_size = 0 } net));
  Alcotest.check_raises "max_iters"
    (Invalid_argument "Cluster.partition: max_iters < 0") (fun () ->
      ignore (Cluster.partition { Cluster.default with max_iters = -1 } net))

(* ---------------- Hier.route mechanics (cheap star router) ----------- *)

(* A star router is enough to exercise clustering, pseudo-sink
   construction, recursion and stitching without any DP cost. *)
let star (net : Net.t) =
  Rtree.node net.Net.source
    (Array.to_list (Array.map Rtree.leaf net.Net.sinks))

let star_route ~cluster ?pool net =
  Hier.route ~tech ~cluster ?pool
    ~route:(fun _part sub -> star sub)
    ~tree_of:Fun.id net

let hier_star_props (n, seed, cfg) =
  let net = mk_net n seed in
  let h = star_route ~cluster:cfg net in
  let valid = match Check.covers net h.Hier.tree with Ok () -> true | Error _ -> false in
  let sizes_cover = Array.fold_left ( + ) 0 h.Hier.sizes = n in
  let counts =
    h.Hier.n_clusters = Array.length h.Hier.sizes
    && Array.length h.Hier.parts >= h.Hier.n_clusters
    && h.Hier.levels >= 1
    && (h.Hier.levels = 1) = (match h.Hier.top with None -> true | Some _ -> false)
  in
  valid && sizes_cover && counts

let test_star_recursion_depth () =
  (* 120 sinks at target 5 -> 24+ first-level clusters; k_for(24) = 5 <
     24, so the top net must be decomposed again. *)
  let net = mk_net 120 11 in
  let cluster = { Cluster.default with target_size = 5 } in
  let h = star_route ~cluster net in
  Alcotest.(check bool) "three or more levels" true (h.Hier.levels >= 3);
  Alcotest.(check bool) "covers" true
    (match Check.covers net h.Hier.tree with Ok () -> true | Error _ -> false)

let test_star_pool_identical () =
  let net = mk_net 90 5 in
  let cluster = { Cluster.default with target_size = 7 } in
  let seq = star_route ~cluster net in
  Pool.with_pool ~domains:4 (fun pool ->
      let par = star_route ~cluster ~pool net in
      Alcotest.(check string) "same stitched tree at -j 4"
        (Format.asprintf "%a" Rtree.pp seq.Hier.tree)
        (Format.asprintf "%a" Rtree.pp par.Hier.tree))

(* ---------------- Flow IV equivalence and determinism ---------------- *)

let flat_algo =
  Flows.Merlin
    { cfg = Some Flows.hier_merlin_cfg;
      objective = Merlin_core.Objective.Best_req }

let run ?pool algo net = Flows.run ?pool { Flows.tech; buffers; algo } net

(* Canonical byte form of a metrics record with the fields that
   legitimately differ between a hier run and its flat equivalent
   (flow label, decomposition shape, wall time) normalized away. *)
let canon (m : Flows.metrics) =
  Json.to_string
    (Merlin_report.Metrics.to_json
       (Flows.wire_metrics ~with_tree:true
          { m with
            Flows.flow = "X";
            clusters = 0;
            levels = 0;
            cluster_sizes = [];
            runtime = 0.0 }))

let single_cluster_equiv (n, seed) =
  let net = mk_net n seed in
  let hier1 =
    Flows.Hier
      { cluster = { Cluster.default with n_clusters = Some 1 };
        inner = flat_algo }
  in
  String.equal (canon (run hier1 net)) (canon (run flat_algo net))

let test_single_cluster_equiv_larger () =
  (* One representative net near the flat feasibility edge. *)
  let net = mk_net 14 42 in
  let hier1 =
    Flows.Hier
      { cluster = { Cluster.default with n_clusters = Some 1 };
        inner = flat_algo }
  in
  Alcotest.(check string) "k=1 is byte-identical to flat at n=14"
    (canon (run flat_algo net))
    (canon (run hier1 net))

let test_flow_pool_identical () =
  let net = mk_net 40 42 in
  let algo =
    match Flows.default_algo "hier" with Some a -> a | None -> assert false
  in
  let seq = run algo net in
  Pool.with_pool ~domains:4 (fun pool ->
      let par = run ~pool algo net in
      Alcotest.(check string) "flow IV metrics identical at -j 4" (canon seq)
        (canon par);
      Alcotest.(check int) "same cluster count" seq.Flows.clusters
        par.Flows.clusters)

let test_hier_large_net_valid () =
  let net =
    Net_gen.large_net ~seed:9 ~name:"grid" ~shape:Net_gen.Clock_grid ~n:100
      tech
  in
  let algo =
    match Flows.default_algo "hier" with Some a -> a | None -> assert false
  in
  let m = run algo net in
  Alcotest.(check bool) "valid" true (Check.is_valid net m.Flows.tree);
  Alcotest.(check bool) "clustered" true (m.Flows.clusters > 1);
  Alcotest.(check bool) "delay positive" true (m.Flows.delay > 0.0)

let test_nested_hier_rejected () =
  let net = mk_net 4 1 in
  let nested =
    Flows.Hier
      { cluster = Cluster.default;
        inner = Flows.Hier { cluster = Cluster.default; inner = flat_algo } }
  in
  Alcotest.check_raises "nested hier"
    (Invalid_argument "Flows.run: hier inner flow must be flat") (fun () ->
      ignore (run nested net))

let suite =
  ( "hier",
    [ qtest "partition invariants" ~count:60 arb_partition_input
        partition_invariants;
      Alcotest.test_case "partition k=1" `Quick test_partition_single;
      Alcotest.test_case "partition errors" `Quick test_partition_errors;
      qtest "star route invariants" ~count:40 arb_partition_input
        hier_star_props;
      Alcotest.test_case "star recursion depth" `Quick
        test_star_recursion_depth;
      Alcotest.test_case "star pool -j4 = sequential" `Quick
        test_star_pool_identical;
      qtest "k=1 hier = flat (byte-identical)" ~count:6
        (QCheck.make
           ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
           QCheck.Gen.(pair (int_range 1 8) (int_range 0 200)))
        single_cluster_equiv;
      Alcotest.test_case "k=1 hier = flat at n=14" `Slow
        test_single_cluster_equiv_larger;
      Alcotest.test_case "flow IV pool -j4 = sequential" `Slow
        test_flow_pool_identical;
      Alcotest.test_case "flow IV routes a 100-sink net" `Slow
        test_hier_large_net_valid;
      Alcotest.test_case "nested hier rejected" `Quick
        test_nested_hier_rejected ] )
