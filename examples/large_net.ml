(* Large nets: generate a 300-sink clustered net and route it with
   Flow IV, the two-level hierarchical decomposition (lib/hier).  The
   flat DP flows are infeasible at this size; hier clusters the sinks,
   routes every cluster with tight MERLIN knobs, then routes the
   cluster roots as pseudo-sinks — recursively, until the top net fits
   a flat run. *)
open Merlin_tech
open Merlin_net
open Merlin_rtree
module Flows = Merlin_flows.Flows

let () =
  let tech = Tech.default in
  let buffers = Buffer_lib.default in
  let net =
    Net_gen.large_net ~seed:42 ~name:"blobs" ~shape:Net_gen.Clustered ~n:300
      tech
  in
  Format.printf "net %s: %d sinks@." net.Net.name (Net.n_sinks net);
  let algo =
    match Flows.default_algo "hier" with
    | Some algo -> algo
    | None -> assert false
  in
  let m = Flows.run { Flows.tech; buffers; algo } net in
  Format.printf
    "hier: clusters=%d buffers=%d wirelen=%d delay=%.0fps area=%.1f \
     time=%.2fs@."
    m.Flows.clusters m.Flows.n_buffers m.Flows.wirelength m.Flows.delay
    m.Flows.area m.Flows.runtime;
  Format.printf "valid=%b@." (Check.is_valid net m.Flows.tree);
  (* The same decomposition with the cluster size forced down: more,
     smaller clusters — faster per cluster, more stitching. *)
  let small =
    Flows.Hier
      { cluster = { Merlin_hier.Cluster.default with target_size = 5 };
        inner =
          Flows.Merlin
            { cfg = Some Flows.hier_merlin_cfg;
              objective = Merlin_core.Objective.Best_req } }
  in
  let ms = Flows.run { Flows.tech; buffers; algo = small } net in
  Format.printf
    "hier(target=5): clusters=%d buffers=%d wirelen=%d delay=%.0fps \
     time=%.2fs@."
    ms.Flows.clusters ms.Flows.n_buffers ms.Flows.wirelength ms.Flows.delay
    ms.Flows.runtime
