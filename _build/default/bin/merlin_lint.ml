(* merlin_lint: project lint pass over the repository sources.

   Usage: merlin_lint [--format text|json] [PATH...]
   Default paths: lib bin bench examples.  Exit codes: 0 clean,
   1 error-severity findings, 2 usage/IO failure. *)

let () =
  let json = ref false in
  let paths = ref [] in
  let spec =
    [ ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> json := s = "json"),
        " output format (default text)" );
      ( "--rules",
        Arg.Unit
          (fun () ->
             List.iter
               (fun (module R : Merlin_lint.Rule.S) ->
                  Printf.printf "%-18s %-7s %s\n" R.name
                    (Merlin_lint.Finding.severity_to_string R.severity)
                    R.doc)
               Merlin_lint.Rules.all;
             exit 0),
        " list the rule set and exit" ) ]
  in
  let usage = "merlin_lint [--format text|json] [PATH...]" in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let paths =
    match List.rev !paths with
    | [] -> [ "lib"; "bin"; "bench"; "examples" ]
    | ps -> ps
  in
  match Merlin_lint.Driver.lint_paths paths with
  | findings ->
    print_string
      (if !json then Merlin_lint.Driver.render_json findings
       else Merlin_lint.Driver.render_text findings);
    if Merlin_lint.Driver.has_errors findings then exit 1
  | exception Sys_error msg ->
    prerr_endline ("merlin_lint: " ^ msg);
    exit 2
