open Merlin_geometry
open Merlin_tech
open Merlin_net
open Merlin_rtree

let tech = Tech.default

let sink id x y = Sink.make ~id ~pt:(Point.make x y) ~cap:5.0 ~req:1000.0

let small_tree () =
  let s0 = sink 0 100 0 and s1 = sink 1 100 200 in
  Rtree.node (Point.make 50 50) [ Rtree.leaf s0; Rtree.leaf s1 ]

let test_structure () =
  let t = small_tree () in
  Alcotest.(check (list int)) "sink order" [ 0; 1 ] (Rtree.sink_ids_in_order t);
  Alcotest.(check int) "wirelength" (50 + 50 + 50 + 150) (Rtree.wirelength t);
  Alcotest.(check int) "nodes" 3 (Rtree.n_nodes t);
  Alcotest.(check int) "no buffers" 0 (Rtree.n_buffers t);
  Alcotest.check_raises "empty children" (Invalid_argument "Rtree.node: empty children")
    (fun () -> ignore (Rtree.node Point.origin []))

let test_buffer_accounting () =
  let b = Buffer_lib.default.(3) in
  let t = Rtree.node ~buffer:b (Point.make 50 50) [ Rtree.leaf (sink 0 0 0) ] in
  Alcotest.(check int) "one buffer" 1 (Rtree.n_buffers t);
  Alcotest.(check (float 1e-9)) "area" b.Buffer_lib.area (Rtree.buffer_area t)

let test_refine_preserves () =
  let t = small_tree () in
  let r = Rtree.refine ~max_seg:30 t in
  Alcotest.(check int) "wirelength preserved" (Rtree.wirelength t) (Rtree.wirelength r);
  Alcotest.(check (list int)) "sinks preserved" (Rtree.sink_ids_in_order t)
    (Rtree.sink_ids_in_order r);
  Alcotest.(check bool) "more nodes" true (Rtree.n_nodes r > Rtree.n_nodes t)

let test_eval_wire_shielding () =
  (* A buffer hides downstream capacitance from the upstream load. *)
  let s = sink 0 1000 0 in
  let unbuffered = Rtree.node Point.origin [ Rtree.leaf s ] in
  let b = Buffer_lib.strongest Buffer_lib.default in
  let buffered =
    Rtree.node Point.origin
      [ Rtree.node ~buffer:b (Point.make 500 0) [ Rtree.leaf s ] ]
  in
  let e1 = Eval.subtree tech unbuffered and e2 = Eval.subtree tech buffered in
  Alcotest.(check bool) "buffer reduces load" true (e2.Eval.load < e1.Eval.load)

let test_eval_matches_manual () =
  let s = sink 0 100 0 in
  let t = Rtree.node Point.origin [ Rtree.leaf s ] in
  let e = Eval.subtree tech t in
  let expect_req = 1000.0 -. Tech.wire_elmore tech ~len:100 ~load:5.0 in
  let expect_load = 5.0 +. Tech.wire_cap tech 100 in
  Alcotest.(check (float 1e-9)) "req" expect_req e.Eval.req;
  Alcotest.(check (float 1e-9)) "load" expect_load e.Eval.load

(* Cross-evaluator invariant: required time at the driver equals the
   minimum over sinks of (required - arrival), since both use the same
   Elmore model. *)
let test_req_arrival_duality () =
  List.iter
    (fun seed ->
       let net = Net_gen.random_net ~seed ~name:"dual" ~n:6 tech in
       let tree =
         Rtree.node net.Net.source
           (Array.to_list (Array.map Rtree.leaf net.Net.sinks))
       in
       let ev = Eval.net tech net tree in
       let arr = Eval.sink_arrivals tech net tree in
       let min_slack =
         List.fold_left
           (fun acc (id, a) -> min acc ((Net.sink net id).Sink.req -. a))
           infinity arr
       in
       Alcotest.(check (float 1e-6)) "duality" min_slack ev.Eval.root_req)
    [ 1; 2; 3; 4; 5 ]

let test_check_covers () =
  let net =
    Net.make ~name:"c" ~source:Point.origin ~driver:Net.default_driver
      [ sink 0 10 10; sink 1 20 20 ]
  in
  let good = Rtree.node Point.origin [ Rtree.leaf (Net.sink net 0); Rtree.leaf (Net.sink net 1) ] in
  Alcotest.(check bool) "valid" true (Check.is_valid net good);
  let missing = Rtree.node Point.origin [ Rtree.leaf (Net.sink net 0) ] in
  (match Check.covers net missing with
   | Error [ Check.Missing_sink 1 ] -> ()
   | _ -> Alcotest.fail "expected missing sink 1");
  let dup =
    Rtree.node Point.origin
      [ Rtree.leaf (Net.sink net 0); Rtree.leaf (Net.sink net 0); Rtree.leaf (Net.sink net 1) ]
  in
  (match Check.covers net dup with
   | Error [ Check.Duplicate_sink 0 ] -> ()
   | _ -> Alcotest.fail "expected duplicate sink 0");
  let mismatch = Rtree.node Point.origin [ Rtree.leaf (sink 0 99 99); Rtree.leaf (Net.sink net 1) ] in
  (match Check.covers net mismatch with
   | Error [ Check.Sink_mismatch 0 ] -> ()
   | _ -> Alcotest.fail "expected mismatch")

let test_refine_elmore_invariant () =
  (* A uniform distributed wire's Elmore delay is invariant under
     subdivision, so refining must not change the evaluation at all. *)
  List.iter
    (fun seed ->
       let net = Net_gen.random_net ~seed ~name:"inv" ~n:5 tech in
       let star =
         Rtree.node net.Net.source
           (Array.to_list (Array.map Rtree.leaf net.Net.sinks))
       in
       let a = Eval.subtree tech star in
       let b = Eval.subtree tech (Rtree.refine ~max_seg:77 star) in
       Alcotest.(check (float 1e-6)) "req invariant" a.Eval.req b.Eval.req;
       Alcotest.(check (float 1e-6)) "load invariant" a.Eval.load b.Eval.load)
    [ 3; 4; 5 ]

let qtest name ?(count = 50) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let props =
  [ qtest "star tree is always valid" QCheck.(pair (int_range 1 15) (int_range 0 999))
      (fun (n, seed) ->
         let net = Net_gen.random_net ~seed ~name:"p" ~n tech in
         let star =
           Rtree.node net.Net.source
             (Array.to_list (Array.map Rtree.leaf net.Net.sinks))
         in
         Check.is_valid net star);
    qtest "longer root wire lowers req" QCheck.(int_range 1 999) (fun seed ->
        let net = Net_gen.random_net ~seed ~name:"p" ~n:4 tech in
        let star pt =
          Rtree.node pt (Array.to_list (Array.map Rtree.leaf net.Net.sinks))
        in
        let near = Eval.subtree tech (star (Net.sink net 0).Sink.pt) in
        (* Moving the join point far away can only add wire. *)
        let far_pt = Point.make 100000 100000 in
        let far = Eval.subtree tech (star far_pt) in
        far.Eval.req < near.Eval.req);
    qtest "refine wirelength invariant"
      QCheck.(pair (int_range 1 10) (int_range 10 500))
      (fun (n, seg) ->
         let net = Net_gen.random_net ~seed:77 ~name:"p" ~n tech in
         let star =
           Rtree.node net.Net.source
             (Array.to_list (Array.map Rtree.leaf net.Net.sinks))
         in
         Rtree.wirelength (Rtree.refine ~max_seg:seg star) = Rtree.wirelength star) ]

let suite =
  ( "rtree",
    [ Alcotest.test_case "structure" `Quick test_structure;
      Alcotest.test_case "buffer accounting" `Quick test_buffer_accounting;
      Alcotest.test_case "refine preserves" `Quick test_refine_preserves;
      Alcotest.test_case "refine Elmore invariant" `Quick test_refine_elmore_invariant;
      Alcotest.test_case "buffer shields load" `Quick test_eval_wire_shielding;
      Alcotest.test_case "eval matches manual" `Quick test_eval_matches_manual;
      Alcotest.test_case "req/arrival duality" `Quick test_req_arrival_duality;
      Alcotest.test_case "check covers" `Quick test_check_covers ]
    @ props )
