open Merlin_geometry
open Merlin_tech
open Merlin_net
open Merlin_rtree
open Merlin_order
open Merlin_curves
module Ptree = Merlin_ptree.Ptree

let tech = Tech.default

let mk_net n seed = Net_gen.random_net ~seed ~name:"pt" ~n tech

let test_route_valid () =
  List.iter
    (fun (n, seed) ->
       let net = mk_net n seed in
       let tree = Ptree.route ~tech net in
       Alcotest.(check bool) "covers sinks" true (Check.is_valid net tree);
       Alcotest.(check int) "no buffers in PTREE" 0 (Rtree.n_buffers tree);
       Alcotest.(check bool) "rooted at source" true
         (Point.equal (Rtree.attach_point tree) net.Net.source))
    [ (1, 1); (2, 2); (5, 3); (9, 4) ]

let test_respects_order () =
  (* The P_Tree property: the embedding preserves the sink order. *)
  List.iter
    (fun seed ->
       let net = mk_net 6 seed in
       let order = Tsp.order net in
       let tree = Ptree.route ~tech ~order net in
       Alcotest.(check (list int)) "DFS order = given order"
         (Order.to_list order)
         (Rtree.sink_ids_in_order tree))
    [ 10; 11; 12 ]

let test_better_than_star_on_a_line () =
  (* Sinks in a line far from the source: a path beats the star. *)
  let sinks =
    List.init 5 (fun id ->
        Sink.make ~id ~pt:(Point.make (1000 + (id * 100)) 0) ~cap:5.0 ~req:2000.0)
  in
  let net =
    Net.make ~name:"line" ~source:Point.origin ~driver:Net.default_driver sinks
  in
  let tree = Ptree.route ~tech net in
  let star = Rtree.node net.Net.source (List.map Rtree.leaf sinks) in
  let e_tree = Eval.net tech net tree and e_star = Eval.net tech net star in
  Alcotest.(check bool) "ptree at least as fast" true
    (e_tree.Eval.root_req >= e_star.Eval.root_req);
  Alcotest.(check bool) "ptree shorter wire" true
    (e_tree.Eval.wirelength <= e_star.Eval.wirelength)

let test_curve_measured_at_driver () =
  let net = mk_net 4 9 in
  let candidates = Ptree.candidate_set net in
  let c = Ptree.curve ~tech ~candidates ~order:(Tsp.order net) net in
  Alcotest.(check bool) "nonempty" false (Curve.is_empty c);
  Curve.iter
    (fun sol ->
       let ev = Eval.net tech net sol.Solution.data.Merlin_core.Build.tree in
       Alcotest.(check (float 1e-6)) "curve req matches evaluator"
         ev.Eval.root_req sol.Solution.req)
    c

let test_rejects_bad_order () =
  let net = mk_net 4 1 in
  let candidates = Ptree.candidate_set net in
  Alcotest.check_raises "bad order" (Invalid_argument "Ptree.curve: bad order")
    (fun () ->
       ignore (Ptree.curve ~tech ~candidates ~order:(Order.of_list [ 0; 0; 1; 2 ]) net))

let qtest name ?(count = 25) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let props =
  [ qtest "route always valid" QCheck.(pair (int_range 1 10) (int_range 0 300))
      (fun (n, seed) ->
         let net = mk_net n seed in
         Check.is_valid net (Ptree.route ~tech net));
    qtest "wirelength at least bbox half-perimeter of terminals"
      QCheck.(pair (int_range 2 8) (int_range 0 300))
      (fun (n, seed) ->
         let net = mk_net n seed in
         let tree = Ptree.route ~tech net in
         let box = Net.bounding_box net in
         (Eval.net tech net tree).Eval.wirelength >= Rect.half_perimeter box) ]

let suite =
  ( "ptree",
    [ Alcotest.test_case "route valid" `Quick test_route_valid;
      Alcotest.test_case "respects order" `Quick test_respects_order;
      Alcotest.test_case "line beats star" `Quick test_better_than_star_on_a_line;
      Alcotest.test_case "curve at driver" `Quick test_curve_measured_at_driver;
      Alcotest.test_case "rejects bad order" `Quick test_rejects_bad_order ]
    @ props )
