open Merlin_geometry
open Merlin_tech
open Merlin_net
open Merlin_rtree
open Merlin_curves
module VG = Merlin_ginneken.Van_ginneken

let tech = Tech.default
let buffers = Buffer_lib.default

let mk_net n seed = Net_gen.random_net ~seed ~name:"vg" ~n tech

let star net =
  Rtree.node net.Net.source
    (Array.to_list (Array.map Rtree.leaf net.Net.sinks))

let test_insert_never_worse () =
  List.iter
    (fun seed ->
       let net = mk_net 6 seed in
       let tree = star net in
       let buffered = VG.insert ~tech ~buffers net tree in
       let before = Eval.net tech net tree and after = Eval.net tech net buffered in
       Alcotest.(check bool) "req not worse" true
         (after.Eval.root_req >= before.Eval.root_req -. 1e-9);
       Alcotest.(check bool) "still valid" true (Check.is_valid net buffered))
    [ 1; 2; 3; 4 ]

let test_long_wire_gets_buffered () =
  (* A single sink across a very long wire: repeaters must win. *)
  let s = Sink.make ~id:0 ~pt:(Point.make 8000 0) ~cap:6.0 ~req:5000.0 in
  let net = Net.make ~name:"long" ~source:Point.origin ~driver:Net.default_driver [ s ] in
  let tree = star net in
  let buffered = VG.insert ~tech ~buffers ~refine_seg:500 net tree in
  Alcotest.(check bool) "buffers inserted" true (Rtree.n_buffers buffered > 0);
  let before = Eval.net tech net tree and after = Eval.net tech net buffered in
  Alcotest.(check bool) "strictly better" true
    (after.Eval.root_req > before.Eval.root_req)

let test_curve_contains_unbuffered () =
  let net = mk_net 4 9 in
  let tree = star net in
  let c = VG.curve ~tech ~buffers tree in
  Alcotest.(check bool) "frontier" true (Curve.is_frontier c);
  let zero_area =
    Curve.to_list c |> List.exists (fun s -> s.Solution.area = 0.0)
  in
  Alcotest.(check bool) "area-0 (unbuffered) point survives" true zero_area

let test_preserves_wirelength () =
  (* Buffer insertion never reroutes. *)
  let net = mk_net 5 17 in
  let tree = star net in
  let buffered = VG.insert ~tech ~buffers net tree in
  Alcotest.(check int) "same wirelength" (Rtree.wirelength tree)
    (Rtree.wirelength buffered)

let test_rejects_unrooted_tree () =
  let net = mk_net 3 1 in
  let bad = Rtree.node (Point.make 12345 4242) (Array.to_list (Array.map Rtree.leaf net.Net.sinks)) in
  Alcotest.check_raises "unrooted"
    (Invalid_argument "Van_ginneken.insert: tree not rooted at the net source")
    (fun () -> ignore (VG.insert ~tech ~buffers net bad))

let test_trials_subset_not_better () =
  let net = mk_net 6 23 in
  let tree = star net in
  let full = VG.insert ~tech ~buffers net tree in
  let coarse = VG.insert ~tech ~buffers ~trials:4 net tree in
  let e_full = Eval.net tech net full and e_coarse = Eval.net tech net coarse in
  (* Under curve caps "more buffer choices" is only near-monotone; allow a
     small pruning artefact. *)
  let margin = 10.0 +. (0.02 *. abs_float e_coarse.Eval.root_req) in
  Alcotest.(check bool) "full library at least as good (within pruning)" true
    (e_full.Eval.root_req >= e_coarse.Eval.root_req -. margin)

let qtest name ?(count = 25) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let props =
  [ qtest "insert keeps validity" QCheck.(pair (int_range 1 8) (int_range 0 300))
      (fun (n, seed) ->
         let net = mk_net n seed in
         Check.is_valid net (VG.insert ~tech ~buffers net (star net)));
    qtest "refined insertion at least as good as node-only"
      QCheck.(int_range 0 100)
      (fun seed ->
         let net = mk_net 4 seed in
         let tree = star net in
         let node_only = VG.insert ~tech ~buffers net tree in
         let refined = VG.insert ~tech ~buffers ~refine_seg:300 net tree in
         let r t = (Eval.net tech net t).Eval.root_req in
         r refined >= r node_only -. (10.0 +. (0.02 *. abs_float (r node_only)))) ]

let suite =
  ( "van_ginneken",
    [ Alcotest.test_case "never worse" `Quick test_insert_never_worse;
      Alcotest.test_case "long wire buffered" `Quick test_long_wire_gets_buffered;
      Alcotest.test_case "unbuffered survives" `Quick test_curve_contains_unbuffered;
      Alcotest.test_case "wirelength preserved" `Quick test_preserves_wirelength;
      Alcotest.test_case "rejects unrooted" `Quick test_rejects_unrooted_tree;
      Alcotest.test_case "library subset" `Quick test_trials_subset_not_better ]
    @ props )
