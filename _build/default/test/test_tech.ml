open Merlin_tech

let qtest name ?(count = 100) arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let test_wire_monotone () =
  let t = Tech.default in
  let d1 = Tech.wire_elmore t ~len:100 ~load:10.0 in
  let d2 = Tech.wire_elmore t ~len:200 ~load:10.0 in
  let d3 = Tech.wire_elmore t ~len:200 ~load:20.0 in
  Alcotest.(check bool) "longer is slower" true (d2 > d1);
  Alcotest.(check bool) "heavier is slower" true (d3 > d2);
  Alcotest.(check (float 1e-9)) "zero wire" 0.0 (Tech.wire_elmore t ~len:0 ~load:10.0)

let test_wire_quadratic () =
  (* Unloaded wire delay grows quadratically with length. *)
  let t = Tech.default in
  let d len = Tech.wire_elmore t ~len ~load:0.0 in
  Alcotest.(check (float 1e-6)) "4x for 2x length" (4.0 *. d 100) (d 200)

let test_delay_model () =
  let m = Delay_model.make ~d0:50.0 ~r_drive:1000.0 ~k_slew:0.0 ~s0:20.0 in
  Alcotest.(check (float 1e-9)) "linear in load" 50.1
    (Delay_model.delay m ~load:0.1);
  let d, slew = Delay_model.delay_slew m ~load:100.0 ~slew_in:0.0 in
  Alcotest.(check (float 1e-9)) "delay" 150.0 d;
  Alcotest.(check bool) "slew grows with load" true (slew > 20.0)

let test_library_shape () =
  let lib = Buffer_lib.default in
  Alcotest.(check int) "34 buffers as in the paper" 34 (Array.length lib);
  let weakest = Buffer_lib.weakest lib and strongest = Buffer_lib.strongest lib in
  Alcotest.(check bool) "weakest has least input cap" true
    (Array.for_all (fun b -> weakest.Buffer_lib.input_cap <= b.Buffer_lib.input_cap) lib);
  Alcotest.(check bool) "strongest drives best" true
    (Array.for_all
       (fun b ->
          strongest.Buffer_lib.model.Delay_model.r_drive
          <= b.Buffer_lib.model.Delay_model.r_drive)
       lib);
  Alcotest.(check bool) "strength costs area" true
    (strongest.Buffer_lib.area > weakest.Buffer_lib.area)

let test_library_monotone () =
  let lib = Buffer_lib.default in
  for i = 0 to Array.length lib - 2 do
    Alcotest.(check bool) "drive resistance decreasing" true
      (lib.(i + 1).Buffer_lib.model.Delay_model.r_drive
       <= lib.(i).Buffer_lib.model.Delay_model.r_drive);
    Alcotest.(check bool) "area increasing" true
      (lib.(i + 1).Buffer_lib.area >= lib.(i).Buffer_lib.area)
  done

let test_synthetic_sizes () =
  Alcotest.(check int) "n=1" 1 (Array.length (Buffer_lib.synthetic ~n:1));
  Alcotest.(check int) "n=7" 7 (Array.length (Buffer_lib.synthetic ~n:7));
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Buffer_lib.synthetic: n < 1") (fun () ->
        ignore (Buffer_lib.synthetic ~n:0))

let props =
  [ qtest "wire cap linear" QCheck.(int_range 0 10000) (fun len ->
        let t = Tech.default in
        abs_float (Tech.wire_cap t (2 * len) -. (2.0 *. Tech.wire_cap t len))
        < 1e-9);
    qtest "buffer delay monotone in load"
      QCheck.(pair (int_range 0 33) (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
      (fun (i, (l1, l2)) ->
         let b = Buffer_lib.default.(i) in
         let lo = min l1 l2 and hi = max l1 l2 in
         Buffer_lib.delay b ~load:lo <= Buffer_lib.delay b ~load:hi) ]

let suite =
  ( "tech",
    [ Alcotest.test_case "wire monotone" `Quick test_wire_monotone;
      Alcotest.test_case "wire quadratic" `Quick test_wire_quadratic;
      Alcotest.test_case "delay model" `Quick test_delay_model;
      Alcotest.test_case "library shape" `Quick test_library_shape;
      Alcotest.test_case "library monotone" `Quick test_library_monotone;
      Alcotest.test_case "synthetic sizes" `Quick test_synthetic_sizes ]
    @ props )
