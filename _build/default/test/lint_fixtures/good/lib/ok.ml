(* Known-good counterparts: the sanctioned form for every rule. *)

let is_empty = function [] -> true | _ :: _ -> false

let compare_ids a b = Int.compare a b

let lookup tbl k = Hashtbl.find_opt tbl k

let same_repr a b = a == b (* lint: physical-eq *)

let boom () = failwith "Ok.boom: deliberate failure"

let safe f = try f () with Not_found -> 0
