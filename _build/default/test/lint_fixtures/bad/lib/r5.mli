val safe : (unit -> int) -> int
