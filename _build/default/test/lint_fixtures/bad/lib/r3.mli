val same : 'a -> 'a -> bool
