val boom : unit -> 'a
