val is_empty : 'a list -> bool
