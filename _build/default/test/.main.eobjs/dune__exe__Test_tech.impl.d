test/test_tech.ml: Alcotest Array Buffer_lib Delay_model Merlin_tech QCheck QCheck_alcotest Tech
