test/test_curves.ml: Alcotest Contract Curve Format Fun List Merlin_curves Option QCheck QCheck_alcotest Solution
