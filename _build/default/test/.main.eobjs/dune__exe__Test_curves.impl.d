test/test_curves.ml: Alcotest Curve Format List Merlin_curves Option QCheck QCheck_alcotest Solution
