test/test_lint.ml: Alcotest Filename List Merlin_lint String Sys
