test/main.mli:
