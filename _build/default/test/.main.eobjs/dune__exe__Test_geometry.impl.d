test/test_geometry.ml: Alcotest Hanan List Merlin_geometry Point Printf QCheck QCheck_alcotest Rect String
