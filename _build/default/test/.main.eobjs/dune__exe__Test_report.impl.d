test/test_report.ml: Alcotest Merlin_report
