test/test_lttree.ml: Alcotest Array Buffer_lib Curve Delay_model List Merlin_curves Merlin_geometry Merlin_lttree Merlin_net Merlin_tech Net Net_gen Point QCheck QCheck_alcotest Sink Solution Tech
