test/test_flows.ml: Alcotest Buffer_lib Check Eval List Merlin_core Merlin_flows Merlin_net Merlin_rtree Merlin_tech Net_gen Printf Rtree Tech
