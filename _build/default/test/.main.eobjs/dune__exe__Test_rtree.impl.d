test/test_rtree.ml: Alcotest Array Buffer_lib Check Eval List Merlin_geometry Merlin_net Merlin_rtree Merlin_tech Net Net_gen Point QCheck QCheck_alcotest Rtree Sink Tech
