test/test_circuit.ml: Alcotest Array Buffer_lib Circuit_gen Flow_runner Gate List Merlin_circuit Merlin_flows Merlin_geometry Merlin_net Merlin_tech Netlist Option Placement Point Printf Sta Tech
