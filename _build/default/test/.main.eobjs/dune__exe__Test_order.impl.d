test/test_order.ml: Alcotest Array Float Format Heuristics List Merlin_net Merlin_order Merlin_tech Net Net_gen Order Printf QCheck QCheck_alcotest Random Sink Tech Tsp
