test/main.ml: Alcotest Test_circuit Test_core Test_curves Test_flows Test_geometry Test_ginneken Test_lint Test_lttree Test_net Test_order Test_ptree Test_report Test_rtree Test_tech
