test/test_net.ml: Alcotest Array List Merlin_geometry Merlin_net Merlin_tech Net Net_gen Net_io Point QCheck QCheck_alcotest Rect Sink Tech
