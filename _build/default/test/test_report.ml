open Merlin_report.Report

let test_cells () =
  Alcotest.(check string) "string" "x" (cell_to_string (S "x"));
  Alcotest.(check string) "int" "42" (cell_to_string (I 42));
  Alcotest.(check string) "float small" "3.14" (cell_to_string (F 3.14159));
  Alcotest.(check string) "float big" "12345" (cell_to_string (F 12345.4));
  Alcotest.(check string) "ratio" "0.46" (cell_to_string (R 0.456));
  Alcotest.(check string) "nan" "-" (cell_to_string (F nan))

let test_means () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (mean []);
  Alcotest.(check (float 1e-6)) "geomean" 2.0 (geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (ratio 1.0 2.0);
  Alcotest.(check (float 1e-9)) "ratio by zero" 0.0 (ratio 1.0 0.0)

let test_print_does_not_raise () =
  (* Smoke: ragged rows and empty tables render without exceptions. *)
  print ~title:"t" ~header:[ "a"; "b" ] [ [ S "x" ]; [ I 1; F 2.0; R 3.0 ] ];
  print ~title:"empty" ~header:[ "only" ] []

let suite =
  ( "report",
    [ Alcotest.test_case "cells" `Quick test_cells;
      Alcotest.test_case "means" `Quick test_means;
      Alcotest.test_case "print smoke" `Quick test_print_does_not_raise ] )
