(* Full-circuit flow (Table 2 shape) on one synthetic benchmark: generate
   the circuit, place it, optimize every net with each flow, and report
   post-layout area / critical delay / runtime. *)

open Merlin_tech
module FR = Merlin_circuit.Flow_runner
open Merlin_report.Report

let () =
  let tech = Tech.default in
  let buffers = Buffer_lib.default in
  let netlist =
    Merlin_circuit.Placement.place
      (Merlin_circuit.Circuit_gen.generate ~scale_down:150 ~name:"B9" ())
  in
  Format.printf "%a@." Merlin_circuit.Netlist.pp_stats netlist;
  let sta = Merlin_circuit.Sta.init netlist in
  let before = Merlin_circuit.Sta.analyse ~tech sta in
  Format.printf "pre-optimization critical delay: %.1f ps@."
    before.Merlin_circuit.Sta.critical;
  let results = FR.run_all ~tech ~buffers netlist in
  let header =
    [ "flow"; "area"; "delay(ps)"; "rt(s)"; "bufs"; "wirelen"; "nets" ]
  in
  let rows =
    List.map
      (fun (r : FR.result) ->
         [ S (FR.flow_name r.FR.flow); F r.FR.area; F r.FR.delay; F r.FR.runtime;
           I r.FR.n_buffers; I r.FR.wirelength; I r.FR.nets_optimized ])
      results
  in
  print ~title:("Post-layout results for " ^ netlist.Merlin_circuit.Netlist.name)
    ~header rows
