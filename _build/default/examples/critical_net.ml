(* The paper's motivating scenario: one timing-critical net, compared
   across the three experimental flows of Section IV (Table 1 shape):
   LTTREE+PTREE, PTREE+van Ginneken, and MERLIN. *)

open Merlin_tech
open Merlin_net
module Flows = Merlin_flows.Flows
open Merlin_report.Report

let () =
  let tech = Tech.default in
  let buffers = Buffer_lib.default in
  let net = Net_gen.random_net ~seed:99 ~name:"critical" ~n:12 tech in
  Format.printf "%a@." Net.pp net;
  let results = Flows.all ~tech ~buffers net in
  let flow1 = List.hd results in
  let header =
    [ "flow"; "buf area"; "delay(ps)"; "req(ps)"; "rt(s)"; "bufs"; "wl";
      "area/I"; "delay/I" ]
  in
  let rows =
    List.map
      (fun (m : Flows.metrics) ->
         [ S m.Flows.flow; F m.Flows.area; F m.Flows.delay; F m.Flows.root_req;
           F m.Flows.runtime; I m.Flows.n_buffers; I m.Flows.wirelength;
           R (ratio m.Flows.area flow1.Flows.area);
           R (ratio m.Flows.delay flow1.Flows.delay) ])
      results
  in
  print ~title:"One critical net, three flows" ~header rows
