(* Quickstart: build one random net, run MERLIN, print the outcome. *)
open Merlin_tech
open Merlin_net
open Merlin_rtree
open Merlin_curves

let () =
  let tech = Tech.default in
  let buffers = Buffer_lib.default in
  let net = Net_gen.random_net ~seed:42 ~name:"quickstart" ~n:8 tech in
  Format.printf "%a@." Net.pp net;
  let t0 = Unix.gettimeofday () in
  match Merlin_core.Merlin.run ~tech ~buffers net with
  | None -> print_endline "infeasible"
  | Some out ->
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "loops=%d merges=%d time=%.2fs@." out.Merlin_core.Merlin.loops
      out.Merlin_core.Merlin.merges dt;
    let best = out.Merlin_core.Merlin.best in
    Format.printf "best: req=%.1f area=%.2f buffers=%d wirelen=%d@."
      best.Solution.req best.Solution.area
      (Rtree.n_buffers out.Merlin_core.Merlin.tree)
      (Rtree.wirelength out.Merlin_core.Merlin.tree);
    let ev = Eval.net tech net out.Merlin_core.Merlin.tree in
    Format.printf "eval: root_req=%.1f delay=%.1f area=%.2f (check req match)@."
      ev.Eval.root_req ev.Eval.net_delay ev.Eval.area;
    Format.printf "order=%a@." Merlin_order.Order.pp out.Merlin_core.Merlin.order;
    Format.printf "curve size=%d valid=%b@."
      (Curve.size out.Merlin_core.Merlin.curve)
      (Check.is_valid net out.Merlin_core.Merlin.tree)
