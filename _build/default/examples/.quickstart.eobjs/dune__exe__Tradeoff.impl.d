examples/tradeoff.ml: Buffer_lib Curve Format List Merlin_core Merlin_curves Merlin_net Merlin_order Merlin_rtree Merlin_tech Net Net_gen Option Solution Tech
