examples/circuit_flow.mli:
