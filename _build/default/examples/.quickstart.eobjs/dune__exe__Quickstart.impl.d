examples/quickstart.ml: Buffer_lib Check Curve Eval Format Merlin_core Merlin_curves Merlin_net Merlin_order Merlin_rtree Merlin_tech Net Net_gen Rtree Solution Tech Unix
