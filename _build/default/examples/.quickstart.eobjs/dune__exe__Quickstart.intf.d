examples/quickstart.mli:
