examples/critical_net.mli:
