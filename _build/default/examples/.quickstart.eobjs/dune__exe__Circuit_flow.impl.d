examples/circuit_flow.ml: Buffer_lib Format List Merlin_circuit Merlin_report Merlin_tech Tech
