examples/critical_net.ml: Buffer_lib Format List Merlin_flows Merlin_net Merlin_report Merlin_tech Net Net_gen Tech
