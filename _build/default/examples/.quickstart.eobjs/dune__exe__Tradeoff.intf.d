examples/tradeoff.mli:
