(* Trade-off exploration: the two problem variants of paper Section III.1
   on one net.

   MERLIN's engine returns a full three-dimensional non-inferior curve, so
   variant I (max required time under an area cap) and variant II (min
   area over a required-time floor) are just different selections from the
   same run.  This example prints the final curve and walks both
   variants. *)

open Merlin_tech
open Merlin_net
open Merlin_curves
module Core = Merlin_core

let () =
  let tech = Tech.default in
  let buffers = Buffer_lib.default in
  let net = Net_gen.random_net ~seed:7 ~name:"tradeoff" ~n:7 tech in
  let cfg = Core.Config.scaled 7 in
  let order = Merlin_order.Tsp.order net in
  let result = Core.Bubble_construct.construct ~cfg ~tech ~buffers net order in
  let curve = result.Core.Bubble_construct.curve in
  Format.printf "Net %s: final non-inferior curve (%d points)@." net.Net.name
    (Curve.size curve);
  Format.printf "  %-10s %-10s %-10s %s@." "req(ps)" "load(fF)" "area" "buffers";
  Curve.iter
    (fun sol ->
       Format.printf "  %-10.1f %-10.2f %-10.2f %d@." sol.Solution.req
         sol.Solution.load sol.Solution.area
         (Merlin_rtree.Rtree.n_buffers sol.Solution.data.Core.Build.tree))
    curve;
  (* Variant I: maximise required time subject to an area budget. *)
  Format.printf "@.Variant I (max req s.t. area <= budget):@.";
  List.iter
    (fun budget ->
       match Core.Objective.choose (Core.Objective.Max_req_under_area budget) curve with
       | None -> Format.printf "  budget %6.1f: infeasible@." budget
       | Some s ->
         Format.printf "  budget %6.1f: req=%8.1f area=%6.2f@." budget
           s.Solution.req s.Solution.area)
    [ 0.0; 10.0; 40.0; 160.0 ];
  (* Variant II: minimise area subject to a required-time floor. *)
  let best = Option.get (Curve.best_req curve) in
  Format.printf "@.Variant II (min area s.t. req >= floor):@.";
  List.iter
    (fun slack ->
       let floor = best.Solution.req -. slack in
       match Core.Objective.choose (Core.Objective.Min_area_over_req floor) curve with
       | None -> Format.printf "  floor %8.1f: infeasible@." floor
       | Some s ->
         Format.printf "  floor %8.1f: req=%8.1f area=%6.2f@." floor
           s.Solution.req s.Solution.area)
    [ 0.0; 50.0; 200.0; 500.0 ]
