(* Benchmark harness: regenerates the paper's Table 1 and Table 2 plus the
   ablations documented in DESIGN.md, and provides Bechamel micro
   benchmarks ("speed").

     dune exec bench/main.exe -- [table1|table2|ablations|speed|all]
                                 [--full] [--seconds N]

   Default is a "quick" profile sized for a laptop-class single core (the
   larger paper nets run with the scaled knob presets of
   Merlin_core.Config); --full uses the paper's own settings where
   feasible and the complete net/circuit list. *)

open Merlin_tech
open Merlin_net
open Merlin_report.Report
module Flows = Merlin_flows.Flows
module FR = Merlin_circuit.Flow_runner

let tech = Tech.default
let buffers = Buffer_lib.default

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 ~full () =
  let nets = Net_gen.table1_nets tech in
  let nets =
    if full then nets
    else
      (* Quick profile: skip the largest nets (35-73 sinks); see
         EXPERIMENTS.md for their full-run rows. *)
      List.filter (fun (_, _, net) -> Net.n_sinks net <= 24) nets
  in
  let header =
    [ "circuit"; "net"; "sinks";
      "I:area"; "I:delay"; "I:rt(s)";
      "II:a/I"; "II:d/I"; "II:rt/I";
      "III:a/I"; "III:d/I"; "III:rt/I"; "loops" ]
  in
  let ratios2 = ref [] and ratios3 = ref [] in
  let row (circuit, name, net) =
    Printf.eprintf "[table1] %s %s (n=%d)...\n%!" circuit name (Net.n_sinks net);
    let cfg3 =
      if full && Net.n_sinks net <= 16 then Merlin_core.Config.paper_table1
      else if full then Merlin_core.Config.scaled (Net.n_sinks net)
      else begin
        (* Quick profile: tight knobs so the whole table fits a coffee
           break on one core; --full restores the scaled presets. *)
        let base = Merlin_core.Config.scaled (Net.n_sinks net) in
        { base with
          Merlin_core.Config.max_iters = 2;
          candidate_limit = min 12 base.Merlin_core.Config.candidate_limit;
          max_curve = min 5 base.Merlin_core.Config.max_curve;
          quant_req = Float.max 20.0 base.Merlin_core.Config.quant_req;
          quant_load = Float.max 15.0 base.Merlin_core.Config.quant_load;
          quant_area = Float.max 10.0 base.Merlin_core.Config.quant_area }
      end
    in
    let m1 = Flows.flow1 ~tech ~buffers net in
    let m2 = Flows.flow2 ~tech ~buffers net in
    let m3 = Flows.flow3 ~tech ~buffers ~cfg:cfg3 net in
    let r_a2 = ratio m2.Flows.area m1.Flows.area
    and r_d2 = ratio m2.Flows.delay m1.Flows.delay
    and r_t2 = ratio m2.Flows.runtime m1.Flows.runtime
    and r_a3 = ratio m3.Flows.area m1.Flows.area
    and r_d3 = ratio m3.Flows.delay m1.Flows.delay
    and r_t3 = ratio m3.Flows.runtime m1.Flows.runtime in
    ratios2 := (r_a2, r_d2, r_t2) :: !ratios2;
    ratios3 := (r_a3, r_d3, r_t3) :: !ratios3;
    [ S circuit; S name; I (Net.n_sinks net);
      F m1.Flows.area; F m1.Flows.delay; F m1.Flows.runtime;
      R r_a2; R r_d2; R r_t2;
      R r_a3; R r_d3; R r_t3; I m3.Flows.loops ]
  in
  let rows = List.map row nets in
  let avg sel rs = mean (List.map sel rs) in
  let avg_row =
    [ S "Average"; S ""; S ""; S ""; S ""; S "";
      R (avg (fun (a, _, _) -> a) !ratios2);
      R (avg (fun (_, d, _) -> d) !ratios2);
      R (avg (fun (_, _, t) -> t) !ratios2);
      R (avg (fun (a, _, _) -> a) !ratios3);
      R (avg (fun (_, d, _) -> d) !ratios3);
      R (avg (fun (_, _, t) -> t) !ratios3); S "" ]
  in
  print
    ~title:
      "Table 1: per-net buffer area, delay and runtime (Flow I absolute; \
       Flows II/III as ratios over Flow I)"
    ~header (rows @ [ avg_row ]);
  Printf.printf
    "Paper averages for reference: II = 0.71/0.81/1.95, III = 0.88/0.46/13.49\n%!"

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let table2 ~full () =
  let scale_down = if full then 60 else 200 in
  let circuits =
    List.map (fun (name, _, _, _) -> name) Merlin_circuit.Circuit_gen.table2_specs
  in
  let circuits =
    if full then circuits
    else (* Quick profile: a representative subset. *)
      [ "C432"; "B9"; "Duke2" ]
  in
  let header =
    [ "circuit"; "gates";
      "I:area"; "I:delay"; "I:rt(s)";
      "II:a/I"; "II:d/I"; "II:rt/I";
      "III:a/I"; "III:d/I"; "III:rt/I" ]
  in
  let ratios2 = ref [] and ratios3 = ref [] in
  let row name =
    Printf.eprintf "[table2] %s...\n%!" name;
    let netlist =
      Merlin_circuit.Placement.place
        (Merlin_circuit.Circuit_gen.generate ~scale_down ~name ())
    in
    let r1 = FR.run ~tech ~buffers ~flow:FR.Flow1 netlist in
    let r2 = FR.run ~tech ~buffers ~flow:FR.Flow2 netlist in
    let r3 = FR.run ~tech ~buffers ~flow:FR.Flow3 netlist in
    let ra2 = ratio r2.FR.area r1.FR.area
    and rd2 = ratio r2.FR.delay r1.FR.delay
    and rt2 = ratio r2.FR.runtime r1.FR.runtime
    and ra3 = ratio r3.FR.area r1.FR.area
    and rd3 = ratio r3.FR.delay r1.FR.delay
    and rt3 = ratio r3.FR.runtime r1.FR.runtime in
    ratios2 := (ra2, rd2, rt2) :: !ratios2;
    ratios3 := (ra3, rd3, rt3) :: !ratios3;
    [ S name; I (Array.length netlist.Merlin_circuit.Netlist.gates);
      F r1.FR.area; F r1.FR.delay; F r1.FR.runtime;
      R ra2; R rd2; R rt2; R ra3; R rd3; R rt3 ]
  in
  let rows = List.map row circuits in
  let avg sel rs = mean (List.map sel rs) in
  let avg_row =
    [ S "Average"; S ""; S ""; S ""; S "";
      R (avg (fun (a, _, _) -> a) !ratios2);
      R (avg (fun (_, d, _) -> d) !ratios2);
      R (avg (fun (_, _, t) -> t) !ratios2);
      R (avg (fun (a, _, _) -> a) !ratios3);
      R (avg (fun (_, d, _) -> d) !ratios3);
      R (avg (fun (_, _, t) -> t) !ratios3) ]
  in
  print
    ~title:
      "Table 2: post-layout circuit area, critical delay and total runtime \
       (Flow I absolute; Flows II/III as ratios over Flow I)"
    ~header (rows @ [ avg_row ]);
  Printf.printf
    "Paper averages for reference: II = 1.02/1.05/0.91, III = 1.07/0.85/1.85\n%!"

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let progress fmt = Printf.eprintf (fmt ^^ "\n%!")

let ablation_neighborhood () =
  progress "[ablations] A: neighborhood sizes";
  (* Ablation A: Theorem 1 -- neighborhood size is a Fibonacci number. *)
  let header = [ "n"; "enumerated"; "closed form F(n+1)"; "paper Binet(n+2)" ] in
  let rows =
    List.map
      (fun n ->
         let enumerated =
           if n <= 14 then
             I (List.length
                  (Merlin_order.Order.neighborhood (Merlin_order.Order.identity n)))
           else S "-"
         in
         [ I n; enumerated;
           I (Merlin_order.Order.neighborhood_size n);
           F (Merlin_order.Order.theorem1_closed_form n) ])
      [ 1; 2; 3; 4; 5; 6; 8; 10; 12; 16; 20 ]
  in
  print ~title:"Ablation A (Theorem 1): |N(Pi)| vs closed form" ~header rows

let run_merlin_with ?candidates ?init ~cfg net =
  let t0 = Unix.gettimeofday () in
  match Merlin_core.Merlin.run ?candidates ?init ~cfg ~tech ~buffers net with
  | None -> (nan, nan, 0, Unix.gettimeofday () -. t0)
  | Some out ->
    ( out.Merlin_core.Merlin.best.Merlin_curves.Solution.req,
      out.Merlin_core.Merlin.best.Merlin_curves.Solution.area,
      out.Merlin_core.Merlin.loops,
      Unix.gettimeofday () -. t0 )

let ablation_candidates () =
  progress "[ablations] B: candidate sets";
  (* Ablation B: Section III.1's claim that the candidate-set choice does
     not matter much once its size is linear in n. *)
  let net = Net_gen.random_net ~seed:101 ~name:"ablB" ~n:8 tech in
  let cfg = Merlin_core.Config.scaled 8 in
  let pts = Net.terminals net in
  let sets =
    [ ("reduced Hanan (default)", None);
      ("full Hanan (capped 36)",
       Some (Array.of_list (Merlin_geometry.Hanan.reduced pts ~limit:36)));
      ("center of mass",
       Some (Array.of_list (Merlin_geometry.Hanan.center_of_mass_set pts ~limit:24)));
      ("terminals only", Some (Array.of_list pts)) ]
  in
  let header = [ "candidate set"; "k"; "req (ps)"; "buf area"; "time (s)" ] in
  let rows =
    List.map
      (fun (name, candidates) ->
         let k =
           match candidates with
           | Some c -> Array.length c
           | None ->
             Array.length (Merlin_core.Bubble_construct.candidate_set cfg net)
         in
         let req, area, _, t = run_merlin_with ?candidates ~cfg net in
         [ S name; I k; F req; F area; F t ])
      sets
  in
  print ~title:"Ablation B: candidate-location set choice (n=8)" ~header rows

let ablation_alpha () =
  progress "[ablations] C: alpha sweep";
  (* Ablation C: quality/runtime vs the branching bound alpha. *)
  let net = Net_gen.random_net ~seed:103 ~name:"ablC" ~n:8 tech in
  let header = [ "alpha"; "req (ps)"; "buf area"; "loops"; "time (s)" ] in
  let rows =
    List.map
      (fun alpha ->
         let cfg = { (Merlin_core.Config.scaled 8) with Merlin_core.Config.alpha } in
         let req, area, loops, t = run_merlin_with ~cfg net in
         [ I alpha; F req; F area; I loops; F t ])
      [ 2; 4; 6; 10; 15 ]
  in
  print ~title:"Ablation C: branching bound alpha (n=8)" ~header rows

let ablation_initial_order () =
  progress "[ablations] D: initial orders";
  (* Ablation D: Section IV's claim that the initial order has a small
     effect on final quality. *)
  let net = Net_gen.random_net ~seed:104 ~name:"ablD" ~n:8 tech in
  let cfg = Merlin_core.Config.scaled 8 in
  let orders =
    [ ("TSP (paper setup)", Merlin_order.Tsp.order net);
      ("required time", Merlin_order.Heuristics.by_required_time net);
      ("x sweep", Merlin_order.Heuristics.by_x_sweep net);
      ("random#1", Merlin_order.Heuristics.random ~seed:1 net);
      ("random#2", Merlin_order.Heuristics.random ~seed:2 net) ]
  in
  let header = [ "initial order"; "req (ps)"; "buf area"; "loops"; "time (s)" ] in
  let rows =
    List.map
      (fun (name, init) ->
         let req, area, loops, t = run_merlin_with ~init ~cfg net in
         [ S name; F req; F area; I loops; F t ])
      orders
  in
  print ~title:"Ablation D: initial sink order (n=8)" ~header rows

let ablation_placement () =
  progress "[ablations] E: chain placement";
  (* Ablation E: the Flush_ends restriction vs the paper's full chain
     placement. *)
  let header = [ "n"; "placement"; "req (ps)"; "merges"; "time (s)" ] in
  let rows =
    List.concat_map
      (fun n ->
         let net = Net_gen.random_net ~seed:105 ~name:"ablE" ~n tech in
         let order = Merlin_order.Tsp.order net in
         List.map
           (fun (name, placement) ->
              let cfg =
                { (Merlin_core.Config.scaled n) with
                  Merlin_core.Config.chain_placement = placement }
              in
              let t0 = Unix.gettimeofday () in
              let r =
                Merlin_core.Bubble_construct.construct ~cfg ~tech ~buffers net order
              in
              let req =
                match
                  Merlin_curves.Curve.best_req r.Merlin_core.Bubble_construct.curve
                with
                | Some s -> s.Merlin_curves.Solution.req
                | None -> nan
              in
              [ I n; S name; F req; I r.Merlin_core.Bubble_construct.merges;
                F (Unix.gettimeofday () -. t0) ])
           [ ("all positions (paper)", Merlin_core.Config.All_positions);
             ("flush ends (fast)", Merlin_core.Config.Flush_ends) ])
      [ 6; 8 ]
  in
  print ~title:"Ablation E: chain placement restriction" ~header rows

let ablation_bubbling () =
  progress "[ablations] F: bubbling on/off";
  (* Ablation F: the paper's core contribution.  With bubbling disabled
     the engine is an order-constrained hierarchical construction for the
     single initial order; the outer loop then has no move to make. *)
  let header =
    [ "n"; "seed"; "bubbling"; "req (ps)"; "buf area"; "loops"; "time (s)" ]
  in
  let rows =
    List.concat_map
      (fun (n, seed) ->
         let net = Net_gen.random_net ~seed ~name:"ablF" ~n tech in
         List.map
           (fun (label, bubbling) ->
              let cfg =
                { (Merlin_core.Config.scaled n) with Merlin_core.Config.bubbling }
              in
              let req, area, loops, t = run_merlin_with ~cfg net in
              [ I n; I seed; S label; F req; F area; I loops; F t ])
           [ ("on (MERLIN)", true); ("off (fixed order)", false) ])
      [ (8, 42); (8, 77); (10, 7) ]
  in
  print ~title:"Ablation F: local order-perturbation (bubbling)" ~header rows

let ablations () =
  ablation_neighborhood ();
  ablation_candidates ();
  ablation_alpha ();
  ablation_initial_order ();
  ablation_placement ();
  ablation_bubbling ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let speed ~seconds () =
  let open Bechamel in
  let net8 = Net_gen.random_net ~seed:42 ~name:"bench8" ~n:8 tech in
  let net16 = Net_gen.random_net ~seed:43 ~name:"bench16" ~n:16 tech in
  let fast3 =
    { (Merlin_core.Config.scaled 8) with
      Merlin_core.Config.max_iters = 1;
      candidate_limit = 10;
      max_curve = 5 }
  in
  let star net =
    Merlin_rtree.Rtree.node net.Net.source
      (Array.to_list (Array.map Merlin_rtree.Rtree.leaf net.Net.sinks))
  in
  let tests =
    [ Test.make ~name:"tsp-order-n16"
        (Staged.stage (fun () -> ignore (Merlin_order.Tsp.order net16)));
      Test.make ~name:"lttree-n16"
        (Staged.stage (fun () ->
             ignore
               (Merlin_lttree.Lttree.best ~buffers ~max_fanout:10
                  ~driver:net16.Net.driver
                  (Array.to_list net16.Net.sinks))));
      Test.make ~name:"ptree-route-n8"
        (Staged.stage (fun () -> ignore (Merlin_ptree.Ptree.route ~tech net8)));
      Test.make ~name:"van-ginneken-n8"
        (Staged.stage (fun () ->
             ignore
               (Merlin_ginneken.Van_ginneken.insert ~tech ~buffers net8
                  (star net8))));
      Test.make ~name:"merlin-n5-1loop"
        (Staged.stage (fun () ->
             let net = Net_gen.random_net ~seed:5 ~name:"b5" ~n:5 tech in
             ignore (Merlin_core.Merlin.run ~cfg:fast3 ~tech ~buffers net))) ]
  in
  let header = [ "benchmark"; "time/run" ] in
  let rows =
    List.map
      (fun test ->
         let cfg =
           Benchmark.cfg ~limit:2000 ~quota:(Time.second seconds) ()
         in
         let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
         let ols =
           Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
         in
         let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
         Hashtbl.fold
           (fun name result acc ->
              let estimate =
                match Analyze.OLS.estimates result with
                | Some [ e ] -> e
                | Some _ | None -> nan
              in
              let pretty =
                if Float.is_nan estimate then "-"
                else if estimate > 1e9 then Printf.sprintf "%.2f s" (estimate /. 1e9)
                else if estimate > 1e6 then Printf.sprintf "%.2f ms" (estimate /. 1e6)
                else Printf.sprintf "%.1f us" (estimate /. 1e3)
              in
              [ S name; S pretty ] :: acc)
           results [])
      tests
    |> List.concat
  in
  print ~title:"Bechamel micro benchmarks (monotonic clock per run)" ~header rows

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let seconds =
    let rec find = function
      | "--seconds" :: v :: _ -> float_of_string v
      | _ :: rest -> find rest
      | [] -> 1.0
    in
    find args
  in
  let what =
    List.find_opt
      (fun a -> List.mem a [ "table1"; "table2"; "ablations"; "speed"; "all" ])
      args
  in
  match what with
  | Some "table1" -> table1 ~full ()
  | Some "table2" -> table2 ~full ()
  | Some "ablations" -> ablations ()
  | Some "speed" -> speed ~seconds ()
  | Some "all" | None ->
    table1 ~full ();
    table2 ~full ();
    ablations ();
    speed ~seconds ()
  | Some _ -> assert false
