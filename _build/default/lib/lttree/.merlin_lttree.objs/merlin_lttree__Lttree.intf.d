lib/lttree/lttree.mli: Buffer_lib Curve Delay_model Merlin_curves Merlin_net Merlin_tech Sink Solution
