lib/lttree/lttree.ml: Array Buffer_lib Curve Delay_model Float List Merlin_curves Merlin_net Merlin_tech Sink Solution
