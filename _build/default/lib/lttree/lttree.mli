(** LT-Tree type-I fanout optimization [To90] — the logic-domain phase of
    the paper's Setup/Flow I.

    An LT-Tree of type I permits at most one internal node among the
    immediate children of every internal node and no left sibling for
    internal nodes: the buffers form a chain, each link driving a group of
    sinks directly plus the next link.  With sinks ordered by required
    time (most critical first, attached nearest the root) the optimal
    chain is found by dynamic programming over order suffixes,
    propagating (required time, load, buffer area) curves.  Interconnect
    delay is not part of this phase (sink positions are unknown in the
    logic domain, paper Section II); the embedding into the plane is done
    by the flow driver. *)

open Merlin_tech
open Merlin_net
open Merlin_curves

(** A chain link: a buffer driving [directs] plus optionally the next
    link. *)
type chain = {
  buffer : Buffer_lib.buffer;
  directs : Sink.t list;
  chain : chain option;
}

(** The root level, driven by the net driver itself. *)
type plan = { root_directs : Sink.t list; root_chain : chain option }

val plan_sinks : plan -> Sink.t list

(** Sinks transitively driven by a chain link, level order. *)
val chain_sinks : chain -> Sink.t list

val plan_area : plan -> float

val n_levels : plan -> int

(** [curve ~tech ~buffers ~max_fanout sinks] is the non-inferior
    (req, load, area) curve of LT-Tree-I plans for the sinks, each level
    limited to [max_fanout] children.  Sinks are sorted internally by
    required time.  Raises [Invalid_argument] on an empty sink list. *)
val curve :
  buffers:Buffer_lib.t -> max_fanout:int -> Sink.t list -> plan Curve.t

(** [best ~buffers ~max_fanout ~driver sinks] picks the plan maximising
    the required time at the driver input (gate delay of [driver]
    applied). *)
val best :
  buffers:Buffer_lib.t ->
  max_fanout:int ->
  driver:Delay_model.t ->
  Sink.t list ->
  plan Solution.t
