(** The three experimental setups of the paper's Section IV, each taking a
    net to a buffered routing tree:

    - Flow I: fanout optimization with LTTREE (required-time sink order)
      followed by PTREE routing of every level (TSP order), buffers
      embedded at the center of mass of the sinks they drive.
    - Flow II: PTREE routing of the whole net (TSP order) followed by
      van Ginneken buffer insertion on the fixed tree.
    - Flow III: MERLIN hierarchical buffered routing generation.

    All flows report the same figures of merit, measured with the same
    Elmore/4-parameter evaluator. *)

open Merlin_tech
open Merlin_net
open Merlin_rtree

type metrics = {
  flow : string;
  area : float;        (** total buffer area, 1000 lambda^2 *)
  delay : float;       (** net delay (max sink req - root req), ps *)
  root_req : float;    (** required time at the driver input, ps *)
  runtime : float;     (** wall-clock seconds *)
  n_buffers : int;
  wirelength : int;    (** grid units *)
  loops : int;         (** MERLIN iterations (1 for flows I and II) *)
  tree : Rtree.t;
}

(** [flow1 ~tech ~buffers net] — LTTREE + PTREE. [max_fanout] bounds the
    LT-tree level width (default 10). *)
val flow1 :
  tech:Tech.t -> buffers:Buffer_lib.t -> ?max_fanout:int -> Net.t -> metrics

(** [flow2 ~tech ~buffers net] — PTREE + van Ginneken.  As in the paper,
    buffer sites are the fixed routing's own Steiner points; [refine_seg]
    optionally splits long edges to add interior sites (a stronger flow
    than the paper's Setup II). *)
val flow2 :
  tech:Tech.t -> buffers:Buffer_lib.t -> ?refine_seg:int -> Net.t -> metrics

(** [flow3 ~tech ~buffers net] — MERLIN, with {!Merlin_core.Config.scaled}
    knobs by default. *)
val flow3 :
  tech:Tech.t ->
  buffers:Buffer_lib.t ->
  ?cfg:Merlin_core.Config.t ->
  Net.t ->
  metrics

(** All three flows on one net, in order I, II, III. *)
val all :
  tech:Tech.t ->
  buffers:Buffer_lib.t ->
  ?cfg3:Merlin_core.Config.t ->
  Net.t ->
  metrics list
