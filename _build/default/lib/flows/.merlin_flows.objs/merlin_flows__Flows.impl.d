lib/flows/flows.ml: Array Buffer_lib Eval List Merlin_core Merlin_curves Merlin_geometry Merlin_ginneken Merlin_lttree Merlin_net Merlin_ptree Merlin_rtree Merlin_tech Net Point Rtree Sink Unix
