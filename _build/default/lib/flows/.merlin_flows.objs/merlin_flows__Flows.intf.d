lib/flows/flows.mli: Buffer_lib Merlin_core Merlin_net Merlin_rtree Merlin_tech Net Rtree Tech
