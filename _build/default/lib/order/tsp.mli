(** TSP-based initial sink ordering.

    [LCLH96] (and the paper's Setups I-III) order sinks along a travelling
    salesman tour so that consecutive sinks are physically close, which is
    what makes an alphabetic (order-respecting) routing structure cheap.
    We build the tour with nearest-neighbour construction from the net
    source followed by 2-opt improvement under the Manhattan metric —
    deterministic, no randomness. *)

open Merlin_net

(** [order net] is the TSP sink order of [net]. *)
val order : Net.t -> Order.t

(** [tour_length net order] is the Manhattan length of the open tour
    source -> sinks in [order]. *)
val tour_length : Net.t -> Order.t -> int
