(** Alternative initial sink orders, used by the baselines and by the
    ablation that checks MERLIN's insensitivity to the starting order. *)

open Merlin_net

(** Increasing required time: the most critical sinks first, the order the
    LTTREE setup of the paper uses. *)
val by_required_time : Net.t -> Order.t

(** Left-to-right sweep by x coordinate (ties by y). *)
val by_x_sweep : Net.t -> Order.t

(** Uniform random order, deterministic in [seed]. *)
val random : seed:int -> Net.t -> Order.t
