(** Sink orders (Definition 3) and their local neighborhoods
    (Definition 4).

    An order is stored in sequence form: [t.(pos)] is the sink id at
    position [pos].  The paper's function form "Pi(i) = position of sink i"
    is {!positions}. *)

type t = int array

(** [identity n] is [(0, 1, ..., n-1)]. *)
val identity : int -> t

val of_list : int list -> t

val to_list : t -> int list

val length : t -> int

val equal : t -> t -> bool

(** [is_permutation t] checks that [t] contains each of [0..n-1] exactly
    once. *)
val is_permutation : t -> bool

(** [positions t] is the inverse map: [(positions t).(sink) = pos]. *)
val positions : t -> int array

(** [swap_at t i] swaps positions [i] and [i+1] (Definition 5 addresses
    elements; on the sequence form that is exactly an adjacent position
    swap).  Raises [Invalid_argument] if [i] is out of [0 .. n-2]. *)
val swap_at : t -> int -> t

(** [in_neighborhood a b] — Definition 4: every sink's position differs by
    at most one between [a] and [b].  Raises [Invalid_argument] on length
    mismatch. *)
val in_neighborhood : t -> t -> bool

(** [neighborhood a] enumerates N(a) — every order reachable by a set of
    non-overlapping adjacent swaps (Lemma 4).  Exponential size; intended
    for tests and small n. *)
val neighborhood : t -> t list

(** [neighborhood_size n] is |N(Pi)| for any order of [n] sinks: the
    Fibonacci number F(n+1) (F(1) = F(2) = 1).  Theorem 1 states the
    closed form; enumeration (see tests) confirms the F(n+1) indexing. *)
val neighborhood_size : int -> int

(** Binet's closed form as printed in Theorem 1 (with the paper's n+2
    index); always an integer for integer [n]. *)
val theorem1_closed_form : int -> float

val pp : Format.formatter -> t -> unit
