lib/order/order.mli: Format
