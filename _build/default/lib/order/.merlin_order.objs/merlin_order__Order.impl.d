lib/order/order.ml: Array Format List
