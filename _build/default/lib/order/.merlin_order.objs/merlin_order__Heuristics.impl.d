lib/order/heuristics.ml: Array Float List Merlin_geometry Merlin_net Net Order Point Random Sink
