lib/order/tsp.ml: Array List Merlin_geometry Merlin_net Net Order Point Sink
