lib/order/heuristics.mli: Merlin_net Net Order
