lib/order/tsp.mli: Merlin_net Net Order
