type t = int array

let identity n = Array.init n (fun i -> i)

let of_list = Array.of_list

let to_list = Array.to_list

let length = Array.length

let equal a b = a = b

let is_permutation t =
  let n = Array.length t in
  let seen = Array.make n false in
  Array.for_all
    (fun v ->
       if v < 0 || v >= n || seen.(v) then false
       else begin seen.(v) <- true; true end)
    t

let positions t =
  let n = Array.length t in
  let pos = Array.make n (-1) in
  Array.iteri (fun p sink -> pos.(sink) <- p) t;
  pos

let swap_at t i =
  let n = Array.length t in
  if i < 0 || i > n - 2 then invalid_arg "Order.swap_at: index out of range";
  let t' = Array.copy t in
  t'.(i) <- t.(i + 1);
  t'.(i + 1) <- t.(i);
  t'

let in_neighborhood a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Order.in_neighborhood: lengths differ";
  let pa = positions a and pb = positions b in
  let ok = ref true in
  for sink = 0 to n - 1 do
    if abs (pa.(sink) - pb.(sink)) > 1 then ok := false
  done;
  !ok

(* Lemma 4: members of N(Pi) = subsets of non-overlapping adjacent swaps.
   At each position either keep the element or swap it with the next one
   and jump two positions ahead. *)
let neighborhood a =
  let n = Array.length a in
  let rec go pos prefix =
    if pos = n then [ List.rev prefix ]
    else if pos = n - 1 then [ List.rev (a.(pos) :: prefix) ]
    else
      let keep = go (pos + 1) (a.(pos) :: prefix) in
      let swapped = go (pos + 2) (a.(pos) :: a.(pos + 1) :: prefix) in
      keep @ swapped
  in
  List.map Array.of_list (go 0 [])

let neighborhood_size n =
  if n < 1 then invalid_arg "Order.neighborhood_size: n < 1";
  let rec fib a b k = if k = 0 then a else fib b (a + b) (k - 1) in
  (* fib 1 1 k = F(k+1) with F(1) = F(2) = 1; |N| = F(n+1). *)
  fib 1 1 n

let theorem1_closed_form n =
  let s5 = sqrt 5.0 in
  let phi = (1.0 +. s5) /. 2.0 and psi = (1.0 -. s5) /. 2.0 in
  let k = float_of_int (n + 2) in
  ((phi ** k) -. (psi ** k)) /. s5

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       (fun ppf i -> Format.fprintf ppf "s%d" i))
    (Array.to_list t)
