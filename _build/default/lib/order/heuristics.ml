open Merlin_geometry
open Merlin_net

let sort_ids (net : Net.t) cmp =
  let ids = List.init (Net.n_sinks net) (fun i -> i) in
  Order.of_list (List.sort cmp ids)

let by_required_time net =
  let req i = (Net.sink net i).Sink.req in
  sort_ids net (fun a b -> Float.compare (req a) (req b))

let by_x_sweep net =
  let pt i = (Net.sink net i).Sink.pt in
  sort_ids net (fun a b -> Point.compare (pt a) (pt b))

let random ~seed net =
  let n = Net.n_sinks net in
  let st = Random.State.make [| seed; n |] in
  let arr = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  arr
