open Merlin_geometry
open Merlin_net

let tour_length (net : Net.t) order =
  let pt i = (Net.sink net i).Sink.pt in
  let n = Order.length order in
  let rec walk i prev acc =
    if i >= n then acc
    else
      let here = pt order.(i) in
      walk (i + 1) here (acc + Point.manhattan prev here)
  in
  walk 0 net.Net.source 0

let nearest_neighbour (net : Net.t) =
  let n = Net.n_sinks net in
  let used = Array.make n false in
  let pt i = (Net.sink net i).Sink.pt in
  let rec pick from acc remaining =
    if remaining = 0 then List.rev acc
    else begin
      let best = ref (-1) and best_d = ref max_int in
      for i = 0 to n - 1 do
        if not used.(i) then begin
          let d = Point.manhattan from (pt i) in
          if d < !best_d then begin best := i; best_d := d end
        end
      done;
      used.(!best) <- true;
      pick (pt !best) (!best :: acc) (remaining - 1)
    end
  in
  Order.of_list (pick net.Net.source [] n)

(* Classic 2-opt on the open tour: reversing the segment (i..j) helps iff
   d(p_{i-1}, p_j) + d(p_i, p_{j+1}) < d(p_{i-1}, p_i) + d(p_j, p_{j+1}),
   where position -1 is the source and position n has no successor. *)
let two_opt (net : Net.t) order =
  let n = Order.length order in
  let tour = Array.copy order in
  let pt pos =
    if pos < 0 then net.Net.source else (Net.sink net tour.(pos)).Sink.pt
  in
  let gain i j =
    let before = Point.manhattan (pt (i - 1)) (pt i) in
    let after = Point.manhattan (pt (i - 1)) (pt j) in
    let tail_before, tail_after =
      if j + 1 >= n then (0, 0)
      else (Point.manhattan (pt j) (pt (j + 1)), Point.manhattan (pt i) (pt (j + 1)))
    in
    before + tail_before - after - tail_after
  in
  let reverse i j =
    let a = ref i and b = ref j in
    while !a < !b do
      let tmp = tour.(!a) in
      tour.(!a) <- tour.(!b);
      tour.(!b) <- tmp;
      incr a;
      decr b
    done
  in
  let improved = ref true in
  while !improved do
    improved := false;
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        if gain i j > 0 then begin
          reverse i j;
          improved := true
        end
      done
    done
  done;
  tour

let order net = two_opt net (nearest_neighbour net)
