(** Full-circuit experiment driver (Table 2).

    For a placed circuit, applies one of the paper's three flows to every
    net (most critical first, required times refreshed from STA between
    nets), then reports post-layout area, critical-path delay and total
    runtime — the three columns of Table 2. *)

open Merlin_tech

type flow = Flow1 | Flow2 | Flow3

val flow_name : flow -> string

type result = {
  circuit : string;
  flow : flow;
  area : float;          (** gates + buffers, 1000 lambda^2 *)
  delay : float;         (** post-optimization critical path, ps *)
  runtime : float;       (** wall-clock seconds for the whole flow *)
  n_buffers : int;
  wirelength : int;
  nets_optimized : int;
}

(** [run ~tech ~buffers ~flow netlist] — the netlist must be placed.
    [min_sinks] skips nets with fewer sinks (default 2: single-sink nets
    keep their direct wire).  [merlin_cfg] overrides Flow-3 knobs
    (default {!Merlin_core.Config.scaled} per net, capped at the paper's
    Table-2 setting of at most 3 loops). *)
val run :
  tech:Tech.t ->
  buffers:Buffer_lib.t ->
  flow:flow ->
  ?min_sinks:int ->
  ?merlin_cfg:(int -> Merlin_core.Config.t) ->
  Netlist.t ->
  result

(** All three flows on one circuit. *)
val run_all :
  tech:Tech.t ->
  buffers:Buffer_lib.t ->
  ?min_sinks:int ->
  Netlist.t ->
  result list
