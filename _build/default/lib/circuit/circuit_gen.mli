(** Seeded synthetic benchmark circuits.

    The paper evaluates on mapped MCNC/ISCAS-85 benchmarks inside SIS; the
    netlists themselves are not part of the paper, so we substitute
    structurally similar synthetic circuits (DESIGN.md section 3): random
    layered DAGs whose gate counts follow the published area of each
    benchmark (Table 2, column "Area" for Flow I), scaled down by
    [scale_down] to keep full-flow experiments tractable on one core.
    Generation is deterministic per circuit name. *)

open Merlin_geometry

(** The 15 Table-2 circuits: (name, paper Flow-I area in 1000 lambda^2,
    paper Flow-I delay in ns, paper Flow-I runtime in s). *)
val table2_specs : (string * float * float * float) list

(** [generate ?scale_down ~name ()] builds the synthetic stand-in for the
    named benchmark ([scale_down] default 40: a 3574 k-lambda^2 circuit
    becomes ~45 gates).  Unknown names get a medium default size.
    Positions are zeroed; call {!Placement.place}. *)
val generate : ?scale_down:int -> name:string -> unit -> Netlist.t

(** [random ~seed ~n_gates ~n_inputs] is the raw generator underneath. *)
val random : seed:int -> n_gates:int -> n_inputs:int -> name:string -> Netlist.t

(** Re-exported for tests: zero position array helper. *)
val no_positions : n:int -> Point.t array
