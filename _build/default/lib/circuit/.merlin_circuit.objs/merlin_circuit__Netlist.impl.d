lib/circuit/netlist.ml: Array Format Gate List Merlin_geometry Point Printf
