lib/circuit/circuit_gen.ml: Array Gate Hashtbl List Merlin_geometry Netlist Point Random
