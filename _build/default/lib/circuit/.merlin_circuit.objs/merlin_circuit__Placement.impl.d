lib/circuit/placement.ml: Array List Merlin_geometry Netlist Point Random
