lib/circuit/circuit_gen.mli: Merlin_geometry Netlist Point
