lib/circuit/sta.mli: Delay_model Merlin_net Merlin_rtree Merlin_tech Net Netlist Rtree Tech
