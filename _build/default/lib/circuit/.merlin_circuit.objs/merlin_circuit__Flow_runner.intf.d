lib/circuit/flow_runner.mli: Buffer_lib Merlin_core Merlin_tech Netlist Tech
