lib/circuit/gate.ml: Array Delay_model List Merlin_tech Random
