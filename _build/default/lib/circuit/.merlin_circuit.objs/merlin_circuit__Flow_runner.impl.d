lib/circuit/flow_runner.ml: Array Float List Merlin_core Merlin_flows Merlin_net Merlin_rtree Net Netlist Sta Unix
