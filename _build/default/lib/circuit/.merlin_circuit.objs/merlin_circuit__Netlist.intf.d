lib/circuit/netlist.mli: Format Gate Merlin_geometry Point
