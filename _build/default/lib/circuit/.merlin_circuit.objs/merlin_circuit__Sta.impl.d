lib/circuit/sta.ml: Array Delay_model Eval Gate Hashtbl Int List Merlin_net Merlin_rtree Merlin_tech Net Netlist Printf Rtree Sink
