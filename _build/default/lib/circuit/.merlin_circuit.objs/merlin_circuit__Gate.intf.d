lib/circuit/gate.mli: Delay_model Merlin_tech Random
