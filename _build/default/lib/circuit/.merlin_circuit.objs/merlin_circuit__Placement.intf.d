lib/circuit/placement.mli: Netlist
