open Merlin_tech

type kind = {
  name : string;
  n_inputs : int;
  area : float;
  input_cap : float;
  model : Delay_model.t;
}

let make name n_inputs ~area ~input_cap ~d0 ~r =
  { name;
    n_inputs;
    area;
    input_cap;
    model = Delay_model.make ~d0 ~r_drive:r ~k_slew:0.12 ~s0:30.0 }

let library =
  [| make "INV" 1 ~area:1.2 ~input_cap:3.5 ~d0:35.0 ~r:6500.0;
     make "BUF" 1 ~area:1.8 ~input_cap:4.0 ~d0:55.0 ~r:5200.0;
     make "NAND2" 2 ~area:1.9 ~input_cap:4.2 ~d0:55.0 ~r:7000.0;
     make "NOR2" 2 ~area:2.0 ~input_cap:4.4 ~d0:60.0 ~r:7800.0;
     make "NAND3" 3 ~area:2.6 ~input_cap:4.6 ~d0:75.0 ~r:8200.0;
     make "NOR3" 3 ~area:2.8 ~input_cap:4.8 ~d0:82.0 ~r:9000.0;
     make "XOR2" 2 ~area:3.4 ~input_cap:5.4 ~d0:95.0 ~r:7600.0;
     make "AOI22" 4 ~area:3.2 ~input_cap:4.5 ~d0:88.0 ~r:8600.0 |]

let pick ~rng ~n_inputs =
  let matching =
    Array.of_list
      (Array.to_list library |> List.filter (fun k -> k.n_inputs = n_inputs))
  in
  if Array.length matching = 0 then
    invalid_arg "Gate.pick: no kind with that arity"
  else matching.(Random.State.int rng (Array.length matching))

let input_pad = make "PAD" 0 ~area:0.0 ~input_cap:0.0 ~d0:20.0 ~r:1500.0
