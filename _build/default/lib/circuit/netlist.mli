(** Combinational gate-level netlists.

    Signal nodes are encoded as integers: node [i] for [i < n_inputs] is
    primary input [i]; node [n_inputs + g] is the output of gate [g].
    Gates are stored in topological order (every fanin refers to a primary
    input or an earlier gate), which the STA relies on. *)

open Merlin_geometry

type gate = {
  kind : Gate.kind;
  fanins : int array;  (** signal nodes, length = kind.n_inputs *)
}

type t = {
  name : string;
  n_inputs : int;
  gates : gate array;
  outputs : int list;  (** signal nodes observed as primary outputs *)
  positions : Point.t array;
      (** one per signal node (pad or gate output pin); filled by
          {!Placement.place} *)
}

val n_nodes : t -> int

(** [node_of_gate t g] is the signal node of gate [g]'s output. *)
val node_of_gate : t -> int -> int

(** [gate_of_node t node] is [Some g] when [node] is a gate output. *)
val gate_of_node : t -> int -> int option

(** [fanouts t] maps each signal node to the gates reading it, in gate
    order. *)
val fanouts : t -> int list array

(** Sum of gate areas (1000 lambda^2). *)
val gate_area : t -> float

(** [validate t] checks topological order, arities and output references;
    raises [Invalid_argument] on violation. *)
val validate : t -> unit

val pp_stats : Format.formatter -> t -> unit
