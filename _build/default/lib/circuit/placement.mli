(** Grid placement of a netlist.

    Cells are spread over a die sized from the total gate area; primary
    inputs sit on the left edge, primary outputs attract toward the right
    edge, and a few sweeps of center-of-mass refinement (force-directed
    lite) pull connected cells together.  Deterministic in [seed]. *)

val die_side : Netlist.t -> int

(** [place ?seed ?sweeps netlist] returns the netlist with positions
    filled (a new record; the input's position array is not mutated). *)
val place : ?seed:int -> ?sweeps:int -> Netlist.t -> Netlist.t
