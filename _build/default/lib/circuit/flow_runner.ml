open Merlin_net

type flow = Flow1 | Flow2 | Flow3

let flow_name = function
  | Flow1 -> "I:LTTREE+PTREE"
  | Flow2 -> "II:PTREE+VG"
  | Flow3 -> "III:MERLIN"

type result = {
  circuit : string;
  flow : flow;
  area : float;
  delay : float;
  runtime : float;
  n_buffers : int;
  wirelength : int;
  nets_optimized : int;
}

let default_merlin_cfg n =
  let cfg = Merlin_core.Config.scaled n in
  (* Table 2 setup: at most 3 MERLIN loops per net, alpha = 10. *)
  { cfg with
    Merlin_core.Config.max_iters = min 3 cfg.Merlin_core.Config.max_iters;
    alpha = min 10 (max 2 cfg.Merlin_core.Config.alpha) }

let optimize_net ~tech ~buffers ~flow ~merlin_cfg net =
  let m =
    match flow with
    | Flow1 -> Merlin_flows.Flows.flow1 ~tech ~buffers net
    | Flow2 -> Merlin_flows.Flows.flow2 ~tech ~buffers net
    | Flow3 ->
      Merlin_flows.Flows.flow3 ~tech ~buffers
        ~cfg:(merlin_cfg (Net.n_sinks net))
        net
  in
  m.Merlin_flows.Flows.tree

let run ~tech ~buffers ~flow ?(min_sinks = 2) ?merlin_cfg netlist =
  let merlin_cfg =
    match merlin_cfg with Some f -> f | None -> default_merlin_cfg
  in
  let t0 = Unix.gettimeofday () in
  let sta = ref (Sta.init netlist) in
  let report = ref (Sta.analyse ~tech !sta) in
  (* Most critical nets first: order by driver slack. *)
  let nodes =
    List.init (Netlist.n_nodes netlist) (fun node -> node)
    |> List.filter (fun node ->
           List.length (Sta.sink_gates !sta node) >= min_sinks)
    |> List.sort
         (fun a b ->
            let slack r node = r.Sta.required.(node) -. r.Sta.ready.(node) in
            Float.compare (slack !report a) (slack !report b))
  in
  let optimized = ref 0 in
  List.iter
    (fun node ->
       match Sta.net_for_optimization !sta !report node with
       | None -> ()
       | Some net ->
         let tree = optimize_net ~tech ~buffers ~flow ~merlin_cfg net in
         sta := Sta.with_routing !sta ~node tree;
         incr optimized;
         (* Refresh timing so later nets see updated required times. *)
         report := Sta.analyse ~tech ~clock:!report.Sta.clock !sta)
    nodes;
  let final = Sta.analyse ~tech !sta in
  { circuit = netlist.Netlist.name;
    flow;
    area = Netlist.gate_area netlist +. Sta.total_buffer_area !sta;
    delay = final.Sta.critical;
    runtime = Unix.gettimeofday () -. t0;
    n_buffers =
      Array.fold_left
        (fun acc r ->
           match r with
           | None -> acc
           | Some t -> acc + Merlin_rtree.Rtree.n_buffers t)
        0 !sta.Sta.routing;
    wirelength = Sta.total_wirelength !sta;
    nets_optimized = !optimized }

let run_all ~tech ~buffers ?min_sinks netlist =
  [ run ~tech ~buffers ~flow:Flow1 ?min_sinks netlist;
    run ~tech ~buffers ~flow:Flow2 ?min_sinks netlist;
    run ~tech ~buffers ~flow:Flow3 ?min_sinks netlist ]
