(** Static timing analysis over a placed netlist with per-net routing.

    Arrival times propagate forward in topological order; every net's
    driver-to-pin delays come from its routing tree through the shared
    Elmore/4-parameter evaluator, so gate sizing, buffers and wire lengths
    all speak the same language as the optimization flows.  Required times
    propagate backward from the primary outputs against a clock target. *)

open Merlin_tech
open Merlin_net
open Merlin_rtree

type t = {
  netlist : Netlist.t;
  routing : Rtree.t option array;
      (** per signal node; [None] means the default star routing *)
  gen : int;
      (** generation id stamped by {!init}; keys the fanout memo so no
          physical equality on the netlist is needed *)
}

(** [init netlist] — all nets on default star routing. *)
val init : Netlist.t -> t

(** [with_routing t ~node tree] replaces one net's routing. *)
val with_routing : t -> node:int -> Rtree.t -> t

(** [star_tree net] is the default routing: a direct wire from the source
    to every sink. *)
val star_tree : Net.t -> Rtree.t

(** [driver_model t node] — the pad model for primary inputs, the gate's
    model otherwise. *)
val driver_model : t -> int -> Delay_model.t

(** [sink_gates t node] — gates reading [node], fixed order (net sink [i]
    corresponds to the [i]-th element). *)
val sink_gates : t -> int -> int list

type report = {
  ready : float array;
      (** per node: when its output signal is ready to drive its net *)
  required : float array;
      (** per node: required ready time to meet the clock *)
  critical : float;  (** critical path delay, ps *)
  clock : float;     (** the target used for required times *)
}

(** [analyse ?clock ~tech t] runs full STA.  Default clock: the critical
    delay itself (zero worst slack). *)
val analyse : ?clock:float -> tech:Tech.t -> t -> report

(** [net_for_optimization ~tech t report node] is the optimization view of
    a net: source at the node position, driver model, fanout pins as sinks
    with capacitive loads and the report's required times.  [None] if the
    node has no fanouts. *)
val net_for_optimization : t -> report -> int -> Net.t option

(** Total buffer area added by the current routing (1000 lambda^2). *)
val total_buffer_area : t -> float

(** Total wirelength of the current routing (grid units). *)
val total_wirelength : t -> int
