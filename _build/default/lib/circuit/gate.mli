(** Combinational gate kinds of the synthetic standard-cell library used
    by the full-flow (Table 2) experiments. *)

open Merlin_tech

type kind = {
  name : string;
  n_inputs : int;
  area : float;       (** 1000 lambda^2 *)
  input_cap : float;  (** fF per input pin *)
  model : Delay_model.t;
}

(** The synthetic library: inverter, buffer, 2/3-input NAND/NOR, 2-input
    XOR and AOI cells, with areas and drives on the same scale as
    {!Buffer_lib.default}. *)
val library : kind array

(** [pick ~rng ~n_inputs] draws a kind with the given arity (uniformly
    among matching kinds). *)
val pick : rng:Random.State.t -> n_inputs:int -> kind

(** A strong driver standing in for a primary-input pad. *)
val input_pad : kind
