open Merlin_geometry

(* Die area = gate area / utilisation; in grid units where one unit of the
   synthetic process is 1 lambda, 1000 lambda^2 of cells maps to a square
   of ~32 lambda on a side; the 4x factor keeps wire delays on the order
   of a gate delay across the die, matching the Table-1 recipe. *)
let die_side netlist =
  let area = Netlist.gate_area netlist in
  max 400 (4 * int_of_float (32.0 *. sqrt area))

let place ?(seed = 7) ?(sweeps = 4) (netlist : Netlist.t) =
  let n = Netlist.n_nodes netlist in
  let side = die_side netlist in
  let rng = Random.State.make [| seed; n; side |] in
  let pos = Array.make n Point.origin in
  (* Primary inputs on the left edge. *)
  for i = 0 to netlist.Netlist.n_inputs - 1 do
    pos.(i) <- Point.make 0 (Random.State.int rng (side + 1))
  done;
  for g = 0 to Array.length netlist.Netlist.gates - 1 do
    pos.(netlist.Netlist.n_inputs + g) <-
      Point.make (Random.State.int rng (side + 1)) (Random.State.int rng (side + 1))
  done;
  (* Pull outputs toward the right edge so paths stretch across the die. *)
  List.iter
    (fun node ->
       if node >= netlist.Netlist.n_inputs then
         pos.(node) <- Point.make side (Random.State.int rng (side + 1)))
    netlist.Netlist.outputs;
  let fanouts = Netlist.fanouts netlist in
  let clamp v = max 0 (min side v) in
  for _sweep = 1 to sweeps do
    Array.iteri
      (fun g gate ->
         let node = netlist.Netlist.n_inputs + g in
         if not (List.mem node netlist.Netlist.outputs) then begin
           let neighbours =
             Array.to_list (Array.map (fun f -> pos.(f)) gate.Netlist.fanins)
             @ List.map
                 (fun fo -> pos.(netlist.Netlist.n_inputs + fo))
                 fanouts.(node)
           in
           match neighbours with
           | [] -> ()
           | pts ->
             let com = Point.center_of_mass pts in
             (* Move halfway toward the center of mass; a jitter term keeps
                cells from collapsing onto one spot. *)
             let jitter () = Random.State.int rng (1 + (side / 40)) in
             pos.(node) <-
               Point.make
                 (clamp (((pos.(node).Point.x + com.Point.x) / 2) + jitter ()))
                 (clamp (((pos.(node).Point.y + com.Point.y) / 2) + jitter ()))
         end)
      netlist.Netlist.gates
  done;
  { netlist with Netlist.positions = pos }
