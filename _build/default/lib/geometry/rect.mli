(** Axis-aligned rectangles (bounding boxes) on the grid. *)

type t = { lo : Point.t; hi : Point.t }

(** [make a b] normalises so that [lo] is the componentwise minimum. *)
val make : Point.t -> Point.t -> t

(** [bounding_box pts] is the smallest rectangle containing every point.
    Raises [Invalid_argument] on the empty list. *)
val bounding_box : Point.t list -> t

val width : t -> int

val height : t -> int

(** [half_perimeter r] is width + height — the HPWL lower bound on the
    wirelength of any rectilinear tree spanning the box corners. *)
val half_perimeter : t -> int

val contains : t -> Point.t -> bool

val center : t -> Point.t

(** [inflate r margin] grows the rectangle by [margin] on every side. *)
val inflate : t -> int -> t

val pp : Format.formatter -> t -> unit
