type t = { lo : Point.t; hi : Point.t }

let make a b =
  let lo = Point.make (min a.Point.x b.Point.x) (min a.Point.y b.Point.y) in
  let hi = Point.make (max a.Point.x b.Point.x) (max a.Point.y b.Point.y) in
  { lo; hi }

let bounding_box = function
  | [] -> invalid_arg "Rect.bounding_box: empty list"
  | p :: rest ->
    let expand acc q = make (Point.make (min acc.lo.Point.x q.Point.x) (min acc.lo.Point.y q.Point.y))
        (Point.make (max acc.hi.Point.x q.Point.x) (max acc.hi.Point.y q.Point.y))
    in
    List.fold_left expand (make p p) rest

let width r = r.hi.Point.x - r.lo.Point.x

let height r = r.hi.Point.y - r.lo.Point.y

let half_perimeter r = width r + height r

let contains r p =
  p.Point.x >= r.lo.Point.x && p.Point.x <= r.hi.Point.x
  && p.Point.y >= r.lo.Point.y && p.Point.y <= r.hi.Point.y

let center r = Point.midpoint r.lo r.hi

let inflate r margin =
  { lo = Point.make (r.lo.Point.x - margin) (r.lo.Point.y - margin);
    hi = Point.make (r.hi.Point.x + margin) (r.hi.Point.y + margin) }

let pp ppf r = Format.fprintf ppf "[%a..%a]" Point.pp r.lo Point.pp r.hi
