let dedup_sorted pts = List.sort_uniq Point.compare pts

let full_grid pts =
  let xs = List.sort_uniq Int.compare (List.map (fun p -> p.Point.x) pts) in
  let ys = List.sort_uniq Int.compare (List.map (fun p -> p.Point.y) pts) in
  List.concat_map (fun x -> List.map (fun y -> Point.make x y) ys) xs

(* Keep the terminals, then fill the budget with the grid points nearest to
   the center of mass — a dense core where Steiner points pay off most. *)
let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | p :: rest -> p :: take (k - 1) rest

(* Order candidates: the terminals themselves first, then grid points by
   distance to the center of mass; truncate hard at [limit]. *)
let select pts extras ~limit =
  let terminals = dedup_sorted pts in
  let com = Point.center_of_mass pts in
  let others =
    extras
    |> List.filter (fun p -> not (List.exists (Point.equal p) terminals))
    |> List.map (fun p -> (Point.manhattan com p, p))
    |> List.sort (fun (d1, p1) (d2, p2) ->
           let c = Int.compare d1 d2 in
           if c <> 0 then c else Point.compare p1 p2)
    |> List.map snd
  in
  let kept_terminals = take limit terminals in
  let budget = max 0 (limit - List.length kept_terminals) in
  dedup_sorted (kept_terminals @ take budget others)

let reduced pts ~limit =
  let grid = full_grid pts in
  if List.length grid <= limit then grid else select pts grid ~limit

let center_of_mass_set pts ~limit =
  let arr = Array.of_list pts in
  let n = Array.length arr in
  let acc = ref [] in
  for len = 1 to n do
    for i = 0 to n - len do
      let window = Array.to_list (Array.sub arr i len) in
      acc := Point.center_of_mass window :: !acc
    done
  done;
  let all = dedup_sorted (pts @ !acc) in
  if List.length all <= limit then all else select pts !acc ~limit
