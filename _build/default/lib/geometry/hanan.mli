(** Candidate-location generation for buffer/Steiner placement.

    The Hanan grid of a net is the grid formed by the intersections of the
    horizontal and vertical lines running through its terminals [Ha66].  The
    paper also allows reduced candidate sets (a heuristic subset) and
    center-of-mass points of sink subsets; it reports that the choice does
    not matter much as long as the candidate count is linear in the sink
    count (Section III.1). *)

(** [full_grid pts] is the complete Hanan grid of [pts]: all (x, y) pairs
    with x and y drawn from terminal coordinates.  Size is at most
    |xs| * |ys|.  Deduplicated, sorted. *)
val full_grid : Point.t list -> Point.t list

(** [reduced pts ~limit] subsamples the Hanan grid down to at most [limit]
    points, always keeping the terminals themselves, then preferring grid
    points closest to the terminal center of mass (the heuristic alluded to
    in the paper's Table 2 setup). *)
val reduced : Point.t list -> limit:int -> Point.t list

(** [center_of_mass_set pts ~limit] is the candidate set built from centers
    of mass of contiguous subsets of [pts] (windows of every length),
    deduplicated and capped at [limit]. *)
val center_of_mass_set : Point.t list -> limit:int -> Point.t list
