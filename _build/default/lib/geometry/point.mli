(** Integer grid points on the layout plane.

    Coordinates are in abstract grid units (lambda).  All routing in this
    library is rectilinear, so the only metric that matters is the Manhattan
    (L1) distance. *)

type t = { x : int; y : int }

val make : int -> int -> t

val origin : t

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

(** [manhattan a b] is the L1 distance |ax-bx| + |ay-by|. *)
val manhattan : t -> t -> int

(** [add a b] is componentwise sum. *)
val add : t -> t -> t

(** [midpoint a b] rounds both coordinates toward [a]. *)
val midpoint : t -> t -> t

(** [center_of_mass pts] is the componentwise average (integer division).
    Raises [Invalid_argument] on the empty list. *)
val center_of_mass : t list -> t

(** [l_corner a b] is the corner point of the lower L-shaped rectilinear
    route from [a] to [b] (horizontal first). *)
val l_corner : t -> t -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
