type t = { x : int; y : int }

let make x y = { x; y }

let origin = { x = 0; y = 0 }

let equal a b = a.x = b.x && a.y = b.y

let compare a b =
  let c = Int.compare a.x b.x in
  if c <> 0 then c else Int.compare a.y b.y

let hash a = (a.x * 1_000_003) lxor a.y

let manhattan a b = abs (a.x - b.x) + abs (a.y - b.y)

let add a b = { x = a.x + b.x; y = a.y + b.y }

let midpoint a b = { x = a.x + ((b.x - a.x) / 2); y = a.y + ((b.y - a.y) / 2) }

let center_of_mass = function
  | [] -> invalid_arg "Point.center_of_mass: empty list"
  | pts ->
    let n = List.length pts in
    let sx = List.fold_left (fun acc p -> acc + p.x) 0 pts in
    let sy = List.fold_left (fun acc p -> acc + p.y) 0 pts in
    { x = sx / n; y = sy / n }

let l_corner a b = { x = b.x; y = a.y }

let pp ppf p = Format.fprintf ppf "(%d,%d)" p.x p.y

let to_string p = Format.asprintf "%a" pp p
