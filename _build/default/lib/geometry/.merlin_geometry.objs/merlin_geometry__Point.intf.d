lib/geometry/point.mli: Format
