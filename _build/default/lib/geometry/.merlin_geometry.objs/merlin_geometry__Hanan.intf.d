lib/geometry/hanan.mli: Point
