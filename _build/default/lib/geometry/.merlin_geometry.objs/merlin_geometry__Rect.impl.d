lib/geometry/rect.ml: Format List Point
