lib/geometry/hanan.ml: Array Int List Point
