lib/ptree/ptree.mli: Curve Merlin_core Merlin_curves Merlin_geometry Merlin_net Merlin_order Merlin_rtree Merlin_tech Net Order Point Tech
