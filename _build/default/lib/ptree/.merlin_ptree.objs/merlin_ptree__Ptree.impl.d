lib/ptree/ptree.ml: Array Build Curve Delay_model Hanan Merlin_core Merlin_curves Merlin_geometry Merlin_net Merlin_order Merlin_tech Net Order Point Solution Star_ptree Tsp
