(** PTREE — the permutation-constrained routing DP of Lillis et al.
    [LCLH96], used by the paper's Setups I and II.

    Given a sink order, PTREE finds non-inferior rectilinear routing
    embeddings into a candidate-location set (classically the Hanan grid).
    It is exactly the paper's *PTREE restricted to an empty buffer
    library, and is implemented that way: the returned structures contain
    no buffers, and the curve trades required time against load (the
    area dimension stays zero). *)

open Merlin_geometry
open Merlin_tech
open Merlin_net
open Merlin_curves
open Merlin_order

(** [candidate_set ?limit net] is the (possibly reduced) Hanan grid of the
    net terminals; default [limit] 40. *)
val candidate_set : ?limit:int -> Net.t -> Point.t array

(** [curve ~tech ~candidates ~order net] is the non-inferior solution
    curve of order-respecting routings measured at the driver input
    (source wire and driver gate delay applied).  Raises
    [Invalid_argument] if [order] is not a permutation of the net's
    sinks. *)
val curve :
  tech:Tech.t ->
  ?max_curve:int ->
  ?bbox_slack:float ->
  candidates:Point.t array ->
  order:Order.t ->
  Net.t ->
  Merlin_core.Build.t Curve.t

(** [route ~tech net] — TSP order, default candidates, best-required-time
    routing tree. *)
val route :
  tech:Tech.t ->
  ?max_curve:int ->
  ?candidates:Point.t array ->
  ?order:Order.t ->
  Net.t ->
  Merlin_rtree.Rtree.t
