type ctx = {
  filename : string;
  in_lib : bool;
  line_waived : token:string -> line:int -> bool;
  emit : Finding.t -> unit;
}

module type S = sig
  val name : string

  val severity : Finding.severity

  val doc : string

  val hooks : ctx -> Ast_iterator.iterator -> Ast_iterator.iterator

  val files : string list -> Finding.t list
end

let report ctx ~rule ~severity ?waiver ~loc message =
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  let waived =
    match waiver with
    | Some token -> ctx.line_waived ~token ~line
    | None -> false
  in
  if not waived then
    ctx.emit (Finding.of_location ~rule ~severity ~message loc)

let path_in_lib path =
  let rec has_lib = function
    | [] -> false
    | "lib" :: _ -> true
    | _ :: rest -> has_lib rest
  in
  has_lib (String.split_on_char '/' path)

(* No AST hooks: pass the iterator through unchanged. *)
let no_hooks _ctx iterator = iterator

let no_files _paths = []
