lib/lint/rule.mli: Ast_iterator Finding Location
