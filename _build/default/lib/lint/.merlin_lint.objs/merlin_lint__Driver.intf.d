lib/lint/driver.mli: Finding Rule
