lib/lint/driver.ml: Array Ast_iterator Filename Finding Format Lexer Lexing List Location Parse Printf Rule Rules String Syntaxerr Sys
