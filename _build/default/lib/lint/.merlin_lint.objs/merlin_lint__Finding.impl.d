lib/lint/finding.ml: Buffer Char Int Lexing Location Printf String
