lib/lint/rules.ml: Ast_iterator Asttypes Filename Finding List Longident Parsetree Printf Rule String Sys
