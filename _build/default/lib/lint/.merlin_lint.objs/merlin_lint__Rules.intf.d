lib/lint/rules.mli: Rule
