lib/lint/finding.mli: Location
