lib/lint/rule.ml: Ast_iterator Finding Lexing Location String
