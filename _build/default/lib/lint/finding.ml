type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
}

let make ~file ~line ~col ~rule ~severity message =
  { file; line; col; rule; severity; message }

let is_error f = match f.severity with Error -> true | Warning -> false

let of_location ~rule ~severity ~message (loc : Location.t) =
  let pos = loc.Location.loc_start in
  { file = pos.Lexing.pos_fname;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    rule;
    severity;
    message }

(* Sort by file, then position, then rule, for stable reports. *)
let compare_order a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_text f =
  Printf.sprintf "%s:%d:%d [%s] %s" f.file f.line f.col f.rule f.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\"}"
    (json_escape f.file) f.line f.col (json_escape f.rule)
    (severity_to_string f.severity)
    (json_escape f.message)
