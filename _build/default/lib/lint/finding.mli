(** Lint findings: one rule violation at one source location. *)

type severity = Error | Warning

val severity_to_string : severity -> string

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;   (** 0-based, matching compiler diagnostics *)
  rule : string;
  severity : severity;
  message : string;
}

val make :
  file:string -> line:int -> col:int -> rule:string -> severity:severity ->
  string -> t

val is_error : t -> bool

(** Build a finding from a parsetree location (uses [loc_start]). *)
val of_location :
  rule:string -> severity:severity -> message:string -> Location.t -> t

(** File, then position, then rule — for stable reports. *)
val compare_order : t -> t -> int

(** [file:line:col [rule] message] *)
val to_text : t -> string

val to_json : t -> string
