lib/report/report.ml: Float List Printf String
