lib/report/report.mli:
