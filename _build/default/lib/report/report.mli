(** Fixed-width table rendering for the benchmark harness — the same
    row/column shapes as the paper's Tables 1 and 2. *)

type cell = S of string | I of int | F of float | R of float  (** R: ratio, 2 decimals *)

val cell_to_string : cell -> string

(** [print ~title ~header rows] renders a fixed-width table to stdout. *)
val print : title:string -> header:string list -> cell list list -> unit

(** [mean xs] — arithmetic mean; 0 on empty. *)
val mean : float list -> float

(** [geomean xs] — geometric mean of positive values; 0 on empty. *)
val geomean : float list -> float

(** [ratio a b] = a /. b, infinity-safe (0 when [b] = 0). *)
val ratio : float -> float -> float
