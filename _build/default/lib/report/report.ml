type cell = S of string | I of int | F of float | R of float

let cell_to_string = function
  | S s -> s
  | I i -> string_of_int i
  | F f ->
    if Float.is_nan f then "-"
    else if abs_float f >= 1000.0 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.2f" f
  | R r -> if Float.is_nan r then "-" else Printf.sprintf "%.2f" r

let print ~title ~header rows =
  let rows_s = List.map (List.map cell_to_string) rows in
  let all = header :: rows_s in
  let n_cols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all
  in
  let width c =
    List.fold_left
      (fun acc row ->
         match List.nth_opt row c with
         | Some s -> max acc (String.length s)
         | None -> acc)
      0 all
  in
  let widths = List.init n_cols width in
  let render_row row =
    let padded =
      List.mapi
        (fun c w ->
           let s = match List.nth_opt row c with Some s -> s | None -> "" in
           let pad = String.make (max 0 (w - String.length s)) ' ' in
           pad ^ s)
        widths
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let sep =
    "|"
    ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "|"
  in
  print_newline ();
  print_endline ("== " ^ title ^ " ==");
  print_endline (render_row header);
  print_endline sep;
  List.iter (fun r -> print_endline (render_row r)) rows_s;
  flush stdout

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let logs = List.map (fun x -> log (max 1e-12 x)) xs in
    exp (mean logs)

let ratio a b = if b = 0.0 then 0.0 else a /. b
