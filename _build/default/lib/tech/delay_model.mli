(** Four-parameter gate/buffer delay model.

    The paper computes gate delays with the 4-parameter equation of [LSP98]
    and wire delays with the Elmore model.  [LSP98] fits a delay linear in
    the output load with input-slew derating; we reproduce the same
    functional family:

      delay(ps)    = d0 + r * c_load + k_s * slew_in
      slew_out(ps) = s0 + s_f * (r * c_load)

    where [d0] is intrinsic delay (ps), [r] the effective drive resistance
    (ohm, applied to fF loads with the ps conversion folded in), [k_s] the
    slew-derating coefficient and [s0]/[s_f] the output-slew fit.  The
    dynamic programs use a nominal input slew (the curves would otherwise
    need a fourth dimension; the paper's own DP ignores slew for the same
    reason), so by default [slew_in] is the nominal slew of the model. *)

type t = {
  d0 : float;      (** intrinsic delay, ps *)
  r_drive : float; (** effective drive resistance, ohm *)
  k_slew : float;  (** delay derating per ps of input slew *)
  s0 : float;      (** intrinsic output slew, ps *)
}

val make : d0:float -> r_drive:float -> k_slew:float -> s0:float -> t

(** Nominal input slew (ps) assumed by the dynamic programs. *)
val nominal_slew : float

(** [delay t ~load] is the gate delay in ps at nominal input slew for a
    [load] in fF. *)
val delay : t -> load:float -> float

(** [delay_slew t ~load ~slew_in] is the full 4-parameter evaluation,
    returning [(delay, slew_out)]. *)
val delay_slew : t -> load:float -> slew_in:float -> float * float

val pp : Format.formatter -> t -> unit
