lib/tech/buffer_lib.ml: Array Delay_model Format Printf
