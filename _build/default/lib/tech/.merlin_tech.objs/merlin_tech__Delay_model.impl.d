lib/tech/delay_model.ml: Format Tech
