lib/tech/tech.mli: Format
