lib/tech/buffer_lib.mli: Delay_model Format
