lib/tech/tech.ml: Format
