lib/tech/delay_model.mli: Format
