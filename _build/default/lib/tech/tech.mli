(** Process technology constants.

    Units used throughout the library:
    - distance: grid units (lambda) — integers, see {!Merlin_geometry.Point}
    - resistance: ohm
    - capacitance: femtofarad (fF)
    - time: picosecond (ps); note ohm * fF = 1e-15 ohm*F = 1e-3 ps, the
      conversion is folded into {!wire_delay_factor}
    - area: units of 1000 lambda^2, matching the paper's tables.

    The default process is a synthetic 0.35um-class profile calibrated so
    that the interconnect delay across a Table-1-style bounding box is of
    the same order as a gate delay, which is exactly how the paper sizes
    its experiments (Section IV). *)

type t = {
  name : string;
  unit_wire_res : float;  (** ohm per grid unit *)
  unit_wire_cap : float;  (** fF per grid unit *)
  unit_wire_area : float; (** 1000 lambda^2 of routing area per grid unit *)
}

(** Synthetic 0.35um-class default process. *)
val default : t

(** [ps_per_ohm_ff] converts ohm*fF products to picoseconds (1e-3). *)
val ps_per_ohm_ff : float

(** [wire_res t len] is the total resistance of a wire of [len] grid
    units. *)
val wire_res : t -> int -> float

(** [wire_cap t len] is the total capacitance of a wire of [len] grid
    units. *)
val wire_cap : t -> int -> float

(** [wire_elmore t ~len ~load] is the Elmore delay (ps) of a uniform wire
    of [len] grid units driving [load] fF:
    R_w * (C_w / 2 + load) scaled to ps. *)
val wire_elmore : t -> len:int -> load:float -> float

val pp : Format.formatter -> t -> unit
