(** Buffer library.

    The paper uses an industrial 0.35um standard-cell library containing 34
    buffers of different strengths.  We build a synthetic family with the
    same cardinality: drive strength grows geometrically while input
    capacitance and cell area grow with the strength, the trade-off that
    makes buffer selection a real optimization problem. *)

type buffer = {
  name : string;
  area : float;       (** cell area, 1000 lambda^2 *)
  input_cap : float;  (** fF *)
  model : Delay_model.t;
}

type t = buffer array

(** [delay b ~load] is the delay through buffer [b] driving [load] fF at
    nominal slew. *)
val delay : buffer -> load:float -> float

(** The 34-buffer synthetic library of the default process. *)
val default : t

(** [synthetic ~n] builds a graded library of [n] buffers.
    Raises [Invalid_argument] if [n < 1]. *)
val synthetic : n:int -> t

(** Smallest-input-cap buffer of a library (used as a unit inverter
    stand-in).  Raises [Invalid_argument] on an empty library. *)
val weakest : t -> buffer

(** Strongest (lowest drive resistance) buffer. *)
val strongest : t -> buffer

val pp_buffer : Format.formatter -> buffer -> unit
