type buffer = {
  name : string;
  area : float;
  input_cap : float;
  model : Delay_model.t;
}

type t = buffer array

let delay b ~load = Delay_model.delay b.model ~load

(* Geometric sizing: strength s in [1, s_max]; drive resistance falls as
   1/s, input cap and area grow sub-linearly with s (buffers are staged
   internally, so input cap does not grow proportionally to strength). *)
let synthetic ~n =
  if n < 1 then invalid_arg "Buffer_lib.synthetic: n < 1";
  let base_res = 8000.0 and base_cap = 4.0 and base_area = 1.6 in
  let s_max = 64.0 in
  let make_buffer i =
    let frac = if n = 1 then 0.0 else float_of_int i /. float_of_int (n - 1) in
    let strength = s_max ** frac in
    let model =
      Delay_model.make
        ~d0:(45.0 +. (18.0 *. log (1.0 +. strength)))
        ~r_drive:(base_res /. strength)
        ~k_slew:0.12
        ~s0:(25.0 +. (4.0 *. log (1.0 +. strength)))
    in
    { name = Printf.sprintf "BUF_X%02d" (i + 1);
      area = base_area *. (strength ** 0.75);
      input_cap = base_cap *. (strength ** 0.5);
      model }
  in
  Array.init n make_buffer

let default = synthetic ~n:34

let weakest lib =
  if Array.length lib = 0 then invalid_arg "Buffer_lib.weakest: empty library";
  Array.fold_left (fun acc b -> if b.input_cap < acc.input_cap then b else acc)
    lib.(0) lib

let strongest lib =
  if Array.length lib = 0 then
    invalid_arg "Buffer_lib.strongest: empty library";
  Array.fold_left
    (fun acc b ->
       if b.model.Delay_model.r_drive < acc.model.Delay_model.r_drive then b
       else acc)
    lib.(0) lib

let pp_buffer ppf b =
  Format.fprintf ppf "%s area=%.2f cin=%.2ffF %a" b.name b.area b.input_cap
    Delay_model.pp b.model
