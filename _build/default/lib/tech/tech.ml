type t = {
  name : string;
  unit_wire_res : float;
  unit_wire_cap : float;
  unit_wire_area : float;
}

let default =
  { name = "synthetic-0.35um";
    unit_wire_res = 0.4;
    unit_wire_cap = 0.08;
    unit_wire_area = 0.003 }

let ps_per_ohm_ff = 1e-3

let wire_res t len = t.unit_wire_res *. float_of_int len

let wire_cap t len = t.unit_wire_cap *. float_of_int len

let wire_elmore t ~len ~load =
  let r = wire_res t len in
  let c = wire_cap t len in
  ps_per_ohm_ff *. r *. ((c /. 2.0) +. load)

let pp ppf t =
  Format.fprintf ppf "%s (r=%g ohm/u, c=%g fF/u)" t.name t.unit_wire_res
    t.unit_wire_cap
