type t = { d0 : float; r_drive : float; k_slew : float; s0 : float }

let make ~d0 ~r_drive ~k_slew ~s0 = { d0; r_drive; k_slew; s0 }

let nominal_slew = 40.0

let slew_fraction = 0.35

let delay_slew t ~load ~slew_in =
  let rc = Tech.ps_per_ohm_ff *. t.r_drive *. load in
  let d = t.d0 +. rc +. (t.k_slew *. slew_in) in
  let slew_out = t.s0 +. (slew_fraction *. rc) in
  (d, slew_out)

let delay t ~load = fst (delay_slew t ~load ~slew_in:nominal_slew)

let pp ppf t =
  Format.fprintf ppf "d0=%.1fps r=%.0fohm ks=%.2f s0=%.1fps" t.d0 t.r_drive
    t.k_slew t.s0
