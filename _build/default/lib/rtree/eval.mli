(** Electrical evaluation of buffered routing trees: Elmore wire delay
    [El48] plus the 4-parameter gate delay model for buffers and the
    driver. *)

open Merlin_tech
open Merlin_net

type summary = {
  req : float;       (** required time at the tree's attachment point, ps *)
  load : float;      (** capacitance seen at the attachment point, fF *)
  buf_area : float;  (** total buffer area, 1000 lambda^2 *)
  wirelen : int;     (** total wirelength, grid units *)
}

(** [subtree tech t] is the bottom-up (required time, load) evaluation of
    [t] at its own attachment point: moving up through a wire subtracts the
    Elmore delay of that wire and adds its capacitance; a buffer subtracts
    its gate delay and shields the downstream load behind its input pin. *)
val subtree : Tech.t -> Rtree.t -> summary

type net_result = {
  root_req : float;     (** required time at the driver input, ps *)
  driver_load : float;  (** load presented to the driver, fF *)
  net_delay : float;    (** max sink required time - root_req, ps *)
  area : float;         (** total buffer area *)
  wirelength : int;
}

(** [net tech net tree] connects [tree] to the driver of [net] (wire from
    the source position to the attachment point, then the driver's gate
    delay) and reports the paper's two figures of merit: required time at
    the root and total buffer area.  [net_delay] normalises the required
    time into a delay so that "smaller is better" matches the paper's
    tables. *)
val net : Tech.t -> Net.t -> Rtree.t -> net_result

(** [sink_arrivals tech net tree] is the Elmore arrival time at every sink,
    taking the driver gate delay as time origin reference: arrival 0 at the
    driver input.  Returned as (sink id, arrival) pairs in sink-order. *)
val sink_arrivals : Tech.t -> Net.t -> Rtree.t -> (int * float) list
