(** Buffered rectilinear routing trees.

    A tree connects a root attachment point down to sink leaves.  Every
    internal node sits at a grid point and may carry a buffer; the wire
    between a node and each child is the rectilinear (L-shaped) route
    between their locations, so its electrical length is the Manhattan
    distance.  This single structure represents the output of every
    algorithm in the repository: P_Trees, LT-Trees after embedding,
    van-Ginneken-buffered trees and MERLIN's *P_Tree/C-alpha hierarchies. *)

open Merlin_geometry
open Merlin_tech
open Merlin_net

type t =
  | Leaf of Sink.t
  | Node of node

and node = {
  loc : Point.t;
  buffer : Buffer_lib.buffer option;
  children : t list;  (** nonempty; order is meaningful (sink order) *)
}

(** [node ?buffer loc children] — raises [Invalid_argument] on an empty
    child list. *)
val node : ?buffer:Buffer_lib.buffer -> Point.t -> t list -> t

val leaf : Sink.t -> t

(** The point where a parent wire attaches to this subtree. *)
val attach_point : t -> Point.t

(** Sinks in left-to-right depth-first order — the realised sink order of
    the structure (cf. the paper's SINK_ORDER in Fig. 14). *)
val sinks_in_order : t -> Sink.t list

val sink_ids_in_order : t -> int list

(** All buffers used in the tree. *)
val buffers : t -> Buffer_lib.buffer list

val n_buffers : t -> int

(** Total buffer area (1000 lambda^2). *)
val buffer_area : t -> float

(** Total wirelength in grid units (edges between node locations; the root
    attachment wire is not included since the tree does not know its
    driver). *)
val wirelength : t -> int

val n_nodes : t -> int

(** [refine ~max_seg tree] subdivides every edge longer than [max_seg]
    grid units by inserting unbuffered degree-1 nodes along the L-shaped
    route, preserving total wirelength.  Used to create interior buffer
    sites for van Ginneken style insertion.  Raises [Invalid_argument] if
    [max_seg < 1]. *)
val refine : max_seg:int -> t -> t

val pp : Format.formatter -> t -> unit
