open Merlin_geometry
open Merlin_tech
open Merlin_net

type t = Leaf of Sink.t | Node of node

and node = {
  loc : Point.t;
  buffer : Buffer_lib.buffer option;
  children : t list;
}

let node ?buffer loc children =
  (match children with
   | [] -> invalid_arg "Rtree.node: empty children"
   | _ :: _ -> ());
  Node { loc; buffer; children }

let leaf s = Leaf s

let attach_point = function Leaf s -> s.Sink.pt | Node n -> n.loc

let rec fold f acc = function
  | Leaf _ as t -> f acc t
  | Node n as t -> List.fold_left (fold f) (f acc t) n.children

let sinks_in_order t =
  let rec collect acc = function
    | Leaf s -> s :: acc
    | Node n -> List.fold_left collect acc n.children
  in
  List.rev (collect [] t)

let sink_ids_in_order t = List.map (fun s -> s.Sink.id) (sinks_in_order t)

let buffers t =
  let take acc = function
    | Leaf _ -> acc
    | Node { buffer = Some b; _ } -> b :: acc
    | Node { buffer = None; _ } -> acc
  in
  List.rev (fold take [] t)

let n_buffers t = List.length (buffers t)

let buffer_area t =
  List.fold_left (fun acc b -> acc +. b.Buffer_lib.area) 0.0 (buffers t)

let wirelength t =
  let add acc = function
    | Leaf _ -> acc
    | Node n ->
      List.fold_left
        (fun acc child -> acc + Point.manhattan n.loc (attach_point child))
        acc n.children
  in
  fold add 0 t

let n_nodes t = fold (fun acc _ -> acc + 1) 0 t

(* Walk the L-shaped route from [src] to [dst] (horizontal leg first) and
   emit intermediate points every [max_seg] units. *)
let route_points ~max_seg src dst =
  let corner = Point.l_corner src dst in
  let steps_between a b =
    let len = Point.manhattan a b in
    let n = len / max_seg in
    let frac k =
      Point.make
        (a.Point.x + ((b.Point.x - a.Point.x) * k * max_seg / max 1 len))
        (a.Point.y + ((b.Point.y - a.Point.y) * k * max_seg / max 1 len))
    in
    List.init n frac |> List.filter (fun p -> not (Point.equal p a))
  in
  let mids = steps_between src corner @ (corner :: steps_between corner dst) in
  List.filter (fun p -> not (Point.equal p src) && not (Point.equal p dst)) mids

let refine ~max_seg t =
  if max_seg < 1 then invalid_arg "Rtree.refine: max_seg < 1";
  let rec chain points child =
    match points with
    | [] -> child
    | p :: rest -> Node { loc = p; buffer = None; children = [ chain rest child ] }
  in
  let rec go = function
    | Leaf _ as t -> t
    | Node n ->
      let refine_child child =
        let child = go child in
        let dst = attach_point child in
        if Point.manhattan n.loc dst <= max_seg then child
        else chain (route_points ~max_seg n.loc dst) child
      in
      Node { n with children = List.map refine_child n.children }
  in
  go t

let rec pp ppf = function
  | Leaf s -> Format.fprintf ppf "%a" Sink.pp s
  | Node n ->
    let buf_tag =
      match n.buffer with
      | None -> ""
      | Some b -> Printf.sprintf "[%s]" b.Buffer_lib.name
    in
    Format.fprintf ppf "@[<v 2>%a%s@,%a@]" Point.pp n.loc buf_tag
      (Format.pp_print_list pp) n.children
