lib/rtree/eval.ml: Array Buffer_lib Delay_model List Merlin_geometry Merlin_net Merlin_tech Net Point Rtree Sink Tech
