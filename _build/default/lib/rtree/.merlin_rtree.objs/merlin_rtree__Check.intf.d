lib/rtree/check.mli: Format Merlin_net Net Rtree
