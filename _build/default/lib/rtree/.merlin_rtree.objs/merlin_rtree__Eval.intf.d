lib/rtree/eval.mli: Merlin_net Merlin_tech Net Rtree Tech
