lib/rtree/rtree.mli: Buffer_lib Format Merlin_geometry Merlin_net Merlin_tech Point Sink
