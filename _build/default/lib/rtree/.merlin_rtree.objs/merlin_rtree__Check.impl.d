lib/rtree/check.ml: Array Format List Merlin_net Net Result Rtree Sink
