lib/rtree/rtree.ml: Buffer_lib Format List Merlin_geometry Merlin_net Merlin_tech Point Printf Sink
