(** Structural validity checks for routing trees produced by the
    algorithms. *)

open Merlin_net

type error =
  | Missing_sink of int        (** a net sink absent from the tree *)
  | Duplicate_sink of int      (** a sink appearing more than once *)
  | Unknown_sink of int        (** a tree sink not present in the net *)
  | Sink_mismatch of int       (** same id but different position/load/req *)

val pp_error : Format.formatter -> error -> unit

(** [covers net tree] verifies the tree connects exactly the net's sinks,
    each exactly once and unmodified. *)
val covers : Net.t -> Rtree.t -> (unit, error list) result

(** [is_valid net tree] is [covers] collapsed to a boolean. *)
val is_valid : Net.t -> Rtree.t -> bool
