open Merlin_net

type error =
  | Missing_sink of int
  | Duplicate_sink of int
  | Unknown_sink of int
  | Sink_mismatch of int

let pp_error ppf = function
  | Missing_sink i -> Format.fprintf ppf "missing sink %d" i
  | Duplicate_sink i -> Format.fprintf ppf "duplicate sink %d" i
  | Unknown_sink i -> Format.fprintf ppf "unknown sink %d" i
  | Sink_mismatch i -> Format.fprintf ppf "sink %d differs from the net's" i

let covers (net : Net.t) tree =
  let n = Net.n_sinks net in
  let seen = Array.make n 0 in
  let errors = ref [] in
  let record e = errors := e :: !errors in
  let visit s =
    let id = s.Sink.id in
    if id < 0 || id >= n then record (Unknown_sink id)
    else begin
      seen.(id) <- seen.(id) + 1;
      if seen.(id) = 2 then record (Duplicate_sink id);
      if seen.(id) = 1 && not (Sink.equal s (Net.sink net id)) then
        record (Sink_mismatch id)
    end
  in
  List.iter visit (Rtree.sinks_in_order tree);
  Array.iteri (fun id count -> if count = 0 then record (Missing_sink id)) seen;
  match List.rev !errors with [] -> Ok () | errs -> Error errs

let is_valid net tree = Result.is_ok (covers net tree)
