open Merlin_geometry
open Merlin_tech
open Merlin_net

type summary = { req : float; load : float; buf_area : float; wirelen : int }

let wire_up tech ~len (req, load) =
  if len = 0 then (req, load)
  else
    ( req -. Tech.wire_elmore tech ~len ~load,
      load +. Tech.wire_cap tech len )

let rec subtree tech = function
  | Rtree.Leaf s -> { req = s.Sink.req; load = s.Sink.cap; buf_area = 0.0; wirelen = 0 }
  | Rtree.Node n ->
    let absorb acc child =
      let c = subtree tech child in
      let len = Point.manhattan n.Rtree.loc (Rtree.attach_point child) in
      let req, load = wire_up tech ~len (c.req, c.load) in
      { req = min acc.req req;
        load = acc.load +. load;
        buf_area = acc.buf_area +. c.buf_area;
        wirelen = acc.wirelen + len + c.wirelen }
    in
    let joined =
      List.fold_left absorb
        { req = infinity; load = 0.0; buf_area = 0.0; wirelen = 0 }
        n.Rtree.children
    in
    (match n.Rtree.buffer with
     | None -> joined
     | Some b ->
       { joined with
         req = joined.req -. Buffer_lib.delay b ~load:joined.load;
         load = b.Buffer_lib.input_cap;
         buf_area = joined.buf_area +. b.Buffer_lib.area })

type net_result = {
  root_req : float;
  driver_load : float;
  net_delay : float;
  area : float;
  wirelength : int;
}

let net tech (net : Net.t) tree =
  let s = subtree tech tree in
  let len = Point.manhattan net.Net.source (Rtree.attach_point tree) in
  let req, load = wire_up tech ~len (s.req, s.load) in
  let root_req = req -. Delay_model.delay net.Net.driver ~load in
  let max_sink_req =
    Array.fold_left (fun acc sk -> max acc sk.Sink.req) neg_infinity
      net.Net.sinks
  in
  { root_req;
    driver_load = load;
    net_delay = max_sink_req -. root_req;
    area = s.buf_area;
    wirelength = s.wirelen + len }

(* Arrival times need downstream capacitances first (they determine every
   stage delay), then a top-down accumulation. *)
let sink_arrivals tech (net : Net.t) tree =
  let rec downstream_cap = function
    | Rtree.Leaf s -> s.Sink.cap
    | Rtree.Node n ->
      (match n.Rtree.buffer with
       | Some b -> b.Buffer_lib.input_cap
       | None ->
         List.fold_left
           (fun acc child ->
              let len = Point.manhattan n.Rtree.loc (Rtree.attach_point child) in
              acc +. Tech.wire_cap tech len +. downstream_cap child)
           0.0 n.Rtree.children)
  in
  (* Capacitance below a node *after* its own buffer (the load its driver
     stage actually sees once we are inside the stage). *)
  let inner_cap = function
    | Rtree.Leaf s -> s.Sink.cap
    | Rtree.Node n ->
      List.fold_left
        (fun acc child ->
           let len = Point.manhattan n.Rtree.loc (Rtree.attach_point child) in
           acc +. Tech.wire_cap tech len +. downstream_cap child)
        0.0 n.Rtree.children
  in
  let rec walk t_arr = function
    | Rtree.Leaf s -> [ (s.Sink.id, t_arr) ]
    | Rtree.Node n ->
      let t_arr =
        match n.Rtree.buffer with
        | None -> t_arr
        | Some b ->
          t_arr +. Buffer_lib.delay b ~load:(inner_cap (Rtree.Node n))
      in
      List.concat_map
        (fun child ->
           let len = Point.manhattan n.Rtree.loc (Rtree.attach_point child) in
           let d =
             Tech.wire_elmore tech ~len ~load:(downstream_cap child)
           in
           walk (t_arr +. d) child)
        n.Rtree.children
  in
  let root_cap = downstream_cap tree in
  let len = Point.manhattan net.Net.source (Rtree.attach_point tree) in
  let driver_load = root_cap +. Tech.wire_cap tech len in
  let t0 = Delay_model.delay net.Net.driver ~load:driver_load in
  let t0 = t0 +. Tech.wire_elmore tech ~len ~load:root_cap in
  walk t0 tree
