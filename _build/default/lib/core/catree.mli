(** C-alpha tree hierarchy descriptors (Definition 2).

    A level of the hierarchy holds its members in sink order; at most one
    member is an internal node (the continuation of the buffer chain,
    Lemma 2) and the branching factor is bounded by alpha.  MERLIN's
    solutions carry this descriptor alongside the geometric routing tree so
    the structural claims of the paper can be checked on every output. *)

type t = { members : member list }

and member =
  | Direct of int  (** a sink id connected directly at this level *)
  | Chain of t     (** the inner sub-group (next link of the chain) *)

(** Single-sink level. *)
val leaf : int -> t

(** [level members] — raises [Invalid_argument] if [members] is empty or
    contains more than one [Chain]. *)
val level : member list -> t

(** Sink ids in hierarchy DFS order — the realised sink order. *)
val sinks_in_order : t -> int list

val n_sinks : t -> int

(** Number of links of the internal-node chain (levels). *)
val depth : t -> int

(** Maximum branching factor over all levels. *)
val max_branching : t -> int

(** [well_formed ~alpha t] checks Definition 2: at most one internal child
    per level and branching factor at most [alpha]. *)
val well_formed : alpha:int -> t -> bool

val pp : Format.formatter -> t -> unit
