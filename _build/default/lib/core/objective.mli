(** The two problem variants of Section III.1, plus the unconstrained
    "best required time" used when a table reports both area and delay of
    the fastest structure. *)

open Merlin_curves

type t =
  | Best_req  (** maximise required time, ties to smaller area *)
  | Max_req_under_area of float
      (** variant I: maximise required time subject to area <= budget *)
  | Min_area_over_req of float
      (** variant II: minimise area subject to required time >= floor *)

(** [choose obj curve] picks the curve point satisfying the variant, or
    [None] if the constraint is infeasible on this curve. *)
val choose : t -> 'a Curve.t -> 'a Solution.t option

val pp : Format.formatter -> t -> unit
