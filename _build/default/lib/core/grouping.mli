(** The abstract grouping structures chi_0..chi_3 of the bubbling
    technique (paper Fig. 6, Fig. 10 STRETCH, Fig. 13 SINK_SET).

    A group covering [len] sinks with structure [e] and right window end
    [r] (a 0-based position in the initial order) occupies the window
    [r - len - stretch e + 1 .. r]; the bubble slots — the second window
    slot for a left bubble, the second-to-last for a right bubble — are
    not covered and their sinks "bubble out" to the facing side of the
    group when it is absorbed by an enclosing group. *)

type t =
  | Chi0  (** no bubble *)
  | Chi1  (** bubble on the right side *)
  | Chi2  (** bubble on the left side *)
  | Chi3  (** bubbles on both sides *)

val all : t list

(** Fig. 10: the window stretch (0, 1, 1, 2). *)
val stretch : t -> int

val code : t -> int

(** [valid ~len e] — Chi3 needs at least two covered sinks. *)
val valid : len:int -> t -> bool

(** [window_start ~r ~len e] is [r - len - stretch e + 1]. *)
val window_start : r:int -> len:int -> t -> int

(** [covered ~r ~len e] — Fig. 13: the [len] covered positions of the
    window, ascending.  Requires [valid ~len e]. *)
val covered : r:int -> len:int -> t -> int list

(** The left-bubble slot of the window, if any. *)
val skipped_left : r:int -> len:int -> t -> int option

(** The right-bubble slot of the window, if any. *)
val skipped_right : r:int -> len:int -> t -> int option

val pp : Format.formatter -> t -> unit
