open Merlin_net
open Merlin_curves
open Merlin_order

let src = Logs.Src.create "merlin" ~doc:"MERLIN search engine"

module Log = (val Logs.src_log src : Logs.LOG)

type outcome = {
  best : Build.t Solution.t;
  curve : Build.t Curve.t;
  tree : Merlin_rtree.Rtree.t;
  hierarchy : Catree.t;
  order : Order.t;
  loops : int;
  req_history : float list;
  merges : int;
}

let run ?candidates ?(cfg = Config.default) ?(objective = Objective.Best_req)
    ?init ~tech ~buffers (net : Net.t) =
  let init = match init with Some o -> o | None -> Tsp.order net in
  (* Theorem 7 guarantees strict improvement until the fixed point; under
     quantised curves we additionally stop once the improvement falls
     below one required-time bucket. *)
  let tolerance = max cfg.Config.quant_req 1e-6 in
  let outcome_of result (best : Build.t Solution.t) history total_merges =
    { best;
      curve = result.Bubble_construct.curve;
      tree = best.Solution.data.Build.tree;
      hierarchy = Bubble_construct.hierarchy best;
      order = Bubble_construct.realized_order best;
      loops = List.length history;
      req_history = List.rev history;
      merges = total_merges }
  in
  (* Keep the best outcome seen: under quantised curves a later loop can
     be marginally worse, and the search must never return it. *)
  let rec loop order loops history total_merges best_so_far =
    let result =
      Bubble_construct.construct ?candidates ~cfg ~tech ~buffers net order
    in
    let total_merges = total_merges + result.Bubble_construct.merges in
    match Objective.choose objective result.Bubble_construct.curve with
    | None ->
      Option.map
        (fun (res, best) -> outcome_of res best history total_merges)
        best_so_far
    | Some best ->
      let next = Bubble_construct.realized_order best in
      let improved, best_so_far =
        match best_so_far with
        | Some (_, prev) when prev.Solution.req >= best.Solution.req -. 1e-12 ->
          (false, best_so_far)
        | _ -> (true, Some (result, best))
      in
      let small_step =
        match history with
        | prev :: _ -> best.Solution.req -. prev < tolerance
        | [] -> false
      in
      let history = best.Solution.req :: history in
      Log.debug (fun m ->
          m "loop %d: req=%.1f order=%a" loops best.Solution.req Order.pp next);
      if
        Order.equal next order || small_step || (not improved)
        || loops >= cfg.Config.max_iters
      then
        Option.map
          (fun (res, b) -> outcome_of res b history total_merges)
          best_so_far
      else loop next (loops + 1) history total_merges best_so_far
  in
  loop init 1 [] 0 None
