(** MERLIN — the outer local-neighborhood-search engine (paper Fig. 14).

    Starting from an initial sink order (TSP by default, as in the paper's
    Setup III), each iteration runs {!Bubble_construct} — which optimally
    searches the whole neighborhood N(Pi) — takes the realised sink order
    of the best structure, and repeats until the order is a fixed point.
    Theorem 7 guarantees the best cost strictly improves until the last
    visit, so termination needs no other safeguard; [max_iters] is kept as
    a defensive bound. *)

open Merlin_tech
open Merlin_net
open Merlin_curves
open Merlin_order

type outcome = {
  best : Build.t Solution.t;  (** chosen per the objective *)
  curve : Build.t Curve.t;    (** final non-inferior curve at the driver *)
  tree : Merlin_rtree.Rtree.t;
  hierarchy : Catree.t;
  order : Order.t;            (** realised sink order of [best] *)
  loops : int;                (** iterations until convergence *)
  req_history : float list;   (** best required time per loop, oldest first *)
  merges : int;               (** total *PTREE invocations *)
}

(** [run ?cfg ?objective ?init ~tech ~buffers net] runs the full search.
    Defaults: {!Config.default}, {!Objective.Best_req}, TSP initial order.
    Returns [None] when the objective is infeasible on the final curve
    (only possible for constrained objectives). *)
val run :
  ?candidates:Merlin_geometry.Point.t array ->
  ?cfg:Config.t ->
  ?objective:Objective.t ->
  ?init:Order.t ->
  tech:Tech.t ->
  buffers:Buffer_lib.t ->
  Net.t ->
  outcome option
