(** BUBBLE_CONSTRUCT — the inner optimization engine (paper Fig. 9).

    Bottom-up over sub-group length L, grouping structure E and right
    window border R, each sub-group absorbs one already-built sub-group
    (the C-alpha chain continuation) plus at most alpha-1 direct sinks;
    the level routing is a *P_Tree built by {!Star_ptree}; three
    dimensional solution curves are pruned to the non-inferior frontier
    after every step.  The four grouping structures chi_0..chi_3 let the
    sink order deviate from the initial order by one position per sink, so
    the final curve covers the whole neighborhood N(Pi) (Lemmas 5 and 6). *)

open Merlin_geometry
open Merlin_tech
open Merlin_net
open Merlin_curves
open Merlin_order

type result = {
  curve : Build.t Curve.t;
      (** final non-inferior curve measured at the driver input: [req] is
          the required time at the root, [area] the total buffer area *)
  candidates : Point.t array;  (** candidate set actually used *)
  merges : int;  (** number of *PTREE merge invocations (cost metric) *)
}

(** [candidate_set cfg net] is the candidate-location set the engine uses:
    the (possibly reduced) Hanan grid of the net's terminals, capped at
    [cfg.candidate_limit]. *)
val candidate_set : Config.t -> Net.t -> Point.t array

(** [construct ~cfg ~tech ~buffers net order] runs the engine for the
    given initial sink order.  [candidates] overrides the candidate set
    (the net source is appended if missing); by default it comes from
    {!candidate_set}.  Raises [Invalid_argument] if [order] is not a
    permutation of the net's sinks. *)
val construct :
  ?candidates:Point.t array ->
  cfg:Config.t ->
  tech:Tech.t ->
  buffers:Buffer_lib.t ->
  Net.t ->
  Order.t ->
  result

(** The C-alpha hierarchy of a solution from the final curve. *)
val hierarchy : Build.t Solution.t -> Catree.t

(** The realised sink order of a solution (paper SINK_ORDER), read from
    the hierarchy. *)
val realized_order : Build.t Solution.t -> Order.t
