type t = { members : member list }

and member = Direct of int | Chain of t

let leaf id = { members = [ Direct id ] }

let count_chains members =
  List.length
    (List.filter (function Chain _ -> true | Direct _ -> false) members)

let level members =
  (match members with
   | [] -> invalid_arg "Catree.level: empty"
   | _ :: _ -> ());
  if count_chains members > 1 then
    invalid_arg "Catree.level: more than one internal child";
  { members }

let rec sinks_in_order t =
  List.concat_map
    (function Direct id -> [ id ] | Chain sub -> sinks_in_order sub)
    t.members

let n_sinks t = List.length (sinks_in_order t)

let rec depth t =
  let sub_depth =
    List.fold_left
      (fun acc -> function Direct _ -> acc | Chain sub -> max acc (depth sub))
      0 t.members
  in
  1 + sub_depth

let rec max_branching t =
  List.fold_left
    (fun acc -> function Direct _ -> acc | Chain sub -> max acc (max_branching sub))
    (List.length t.members)
    t.members

let rec well_formed ~alpha t =
  (match t.members with [] -> false | _ :: _ -> true)
  && count_chains t.members <= 1
  && List.length t.members <= alpha
  && List.for_all
       (function Direct _ -> true | Chain sub -> well_formed ~alpha sub)
       t.members

let rec pp ppf t =
  let pp_member ppf = function
    | Direct id -> Format.fprintf ppf "s%d" id
    | Chain sub -> pp ppf sub
  in
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       pp_member)
    t.members
