type t = Chi0 | Chi1 | Chi2 | Chi3

let all = [ Chi0; Chi1; Chi2; Chi3 ]

let stretch = function Chi0 -> 0 | Chi1 | Chi2 -> 1 | Chi3 -> 2

let code = function Chi0 -> 0 | Chi1 -> 1 | Chi2 -> 2 | Chi3 -> 3

let valid ~len = function
  | Chi0 | Chi1 | Chi2 -> len >= 1
  | Chi3 -> len >= 2

let window_start ~r ~len e = r - len - stretch e + 1

let skipped_left ~r ~len e =
  match e with
  | Chi0 | Chi1 -> None
  | Chi2 | Chi3 -> Some (window_start ~r ~len e + 1)

let skipped_right ~r ~len:_ e =
  match e with
  | Chi0 | Chi2 -> None
  | Chi1 | Chi3 -> Some (r - 1)

let covered ~r ~len e =
  if not (valid ~len e) then invalid_arg "Grouping.covered: invalid structure";
  let start = window_start ~r ~len e in
  let slots = List.init (len + stretch e) (fun i -> start + i) in
  let sl = skipped_left ~r ~len e and sr = skipped_right ~r ~len e in
  let differs opt pos = match opt with Some p -> p <> pos | None -> true in
  List.filter (fun pos -> differs sl pos && differs sr pos) slots

let pp ppf e = Format.fprintf ppf "chi%d" (code e)
