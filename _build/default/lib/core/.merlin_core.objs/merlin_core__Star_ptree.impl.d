lib/core/star_ptree.ml: Array Build Curve Merlin_curves Merlin_geometry Merlin_net Merlin_rtree Rect Solution
