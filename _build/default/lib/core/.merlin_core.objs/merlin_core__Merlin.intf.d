lib/core/merlin.mli: Buffer_lib Build Catree Config Curve Merlin_curves Merlin_geometry Merlin_net Merlin_order Merlin_rtree Merlin_tech Net Objective Order Solution Tech
