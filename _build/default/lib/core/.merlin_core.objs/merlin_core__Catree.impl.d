lib/core/catree.ml: Format List
