lib/core/config.mli:
