lib/core/config.ml:
