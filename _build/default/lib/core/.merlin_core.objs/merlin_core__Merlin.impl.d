lib/core/merlin.ml: Bubble_construct Build Catree Config Curve List Logs Merlin_curves Merlin_net Merlin_order Merlin_rtree Net Objective Option Order Solution Tsp
