lib/core/bubble_construct.mli: Buffer_lib Build Catree Config Curve Merlin_curves Merlin_geometry Merlin_net Merlin_order Merlin_tech Net Order Point Solution Tech
