lib/core/build.mli: Buffer_lib Catree Merlin_curves Merlin_geometry Merlin_net Merlin_rtree Merlin_tech Point Rtree Sink Solution Tech
