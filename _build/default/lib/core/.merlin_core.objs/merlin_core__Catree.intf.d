lib/core/catree.mli: Format
