lib/core/grouping.ml: Format List
