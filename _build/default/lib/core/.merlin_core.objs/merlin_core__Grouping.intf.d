lib/core/grouping.mli: Format
