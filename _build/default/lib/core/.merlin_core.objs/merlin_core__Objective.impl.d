lib/core/objective.ml: Curve Format Merlin_curves
