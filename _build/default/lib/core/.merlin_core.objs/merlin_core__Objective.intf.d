lib/core/objective.mli: Curve Format Merlin_curves Solution
